#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every tracked *.md file (or the whole tree minus build/hidden dirs
when git is unavailable) for inline links/images `[text](target)` and
reference definitions `[label]: target`, and checks that every *relative*
target resolves to an existing file or directory. Absolute URLs
(scheme://... or mailto:) and pure in-page anchors (#...) are skipped;
anchors on relative targets are checked only for file existence, not
heading existence.

Usage: tools/check_markdown_links.py [repo_root]
Exit status: 0 when all links resolve, 1 otherwise (one line per breakage).
"""

import re
import subprocess
import sys
from pathlib import Path

SKIP_DIRS = {".git", "build", "build-debug", "build-tsan", "node_modules"}

# Inline links/images: [text](target "optional title")
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Reference definitions: [label]: target
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
# Fenced code blocks — links inside them are examples, not navigation.
FENCE = re.compile(r"```.*?```", re.DOTALL)

EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # scheme: (http, mailto…)


def markdown_files(root: Path):
    try:
        out = subprocess.run(
            ["git", "ls-files", "--cached", "--others", "--exclude-standard",
             "*.md", "**/*.md"],
            cwd=root, capture_output=True, text=True, check=True,
        ).stdout
        files = [root / line for line in out.splitlines() if line]
        if files:
            return files
    except (subprocess.CalledProcessError, FileNotFoundError):
        pass
    return [
        p for p in root.rglob("*.md")
        if not any(part in SKIP_DIRS for part in p.parts)
    ]


def targets_in(text: str):
    text = FENCE.sub("", text)
    for match in INLINE_LINK.finditer(text):
        yield match.group(1)
    for match in REF_DEF.finditer(text):
        yield match.group(1)


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path.cwd()
    root = root.resolve()
    files = sorted(markdown_files(root))
    broken = []
    checked = 0
    for md in files:
        text = md.read_text(encoding="utf-8", errors="replace")
        for target in targets_in(text):
            if EXTERNAL.match(target) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if path_part.startswith("/"):
                resolved = root / path_part.lstrip("/")
            else:
                resolved = md.parent / path_part
            checked += 1
            if not resolved.exists():
                broken.append(
                    f"{md.relative_to(root)}: broken link -> {target}")
    for line in broken:
        print(line)
    print(f"checked {checked} intra-repo links in "
          f"{len(files)} markdown files: {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
