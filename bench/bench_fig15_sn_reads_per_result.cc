// Figure 15: page reads per result element for the SN benchmark (200 range queries of fixed
// volume, random location and aspect ratio, cold cache per query).
// Paper claim: FLAT's per-result reads fall with density (seed cost amortizes); every R-Tree's rise.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);
  SweepOptions options;
  options.volume_fraction = kSnVolumeFraction;
  options.kinds = bench::kLineup;
  const auto points = RunDensitySweep(flags, options);
  std::cout << "Figure 15: page reads per result element, SN benchmark\n"
            << "(paper: FLAT's per-result reads fall with density (seed cost amortizes); every R-Tree's rise)\n\n";
  bench::PrintPerResult(points, flags);
  return 0;
}
