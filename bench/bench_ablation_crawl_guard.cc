// Ablation: why must the crawl be gated on the *partition* MBR rather than
// the page MBR? Section VI (Figures 8/9) argues the page-MBR guard can stop
// the BFS early and lose results. This bench runs both guards on clustered
// (concave) data and reports recall and I/O; the page-MBR guard is cheaper
// precisely because it is wrong.
#include <iostream>

#include "benchutil/flags.h"
#include "benchutil/table.h"
#include "core/flat_index.h"
#include "data/nbody_generator.h"
#include "data/query_generator.h"
#include "storage/buffer_pool.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);

  // Strongly clustered particles: lots of empty space inside query ranges,
  // the regime where page MBRs leave gaps.
  NBodyParams params;
  params.count = flags.Scaled(120000);
  params.clusters = 40;
  params.background_fraction = 0.0;
  params.cluster_scale = 0.015;
  params.seed = flags.seed();
  Dataset dataset = GenerateNBody(params);

  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, dataset.elements);
  IoStats stats;
  BufferPool pool(&file, &stats);

  std::cout << "Ablation: crawl guard = partition MBR (correct) vs page MBR "
               "(Figure 8/9 failure)\n\n";
  Table table({"query volume frac", "queries", "recall(partition)",
               "recall(page)", "reads/q(partition)", "reads/q(page)"});
  for (double fraction : {1e-5, 1e-4, 1e-3, 1e-2}) {
    RangeWorkloadParams wp;
    wp.count = flags.queries();
    wp.volume_fraction = fraction;
    wp.min_aspect = 0.05;  // elongated queries cross cluster gaps
    wp.max_aspect = 20.0;
    wp.seed = flags.seed() + 1;
    auto queries = GenerateRangeWorkload(dataset.bounds, wp);

    uint64_t oracle_total = 0, partition_total = 0, page_total = 0;
    IoStats partition_io, page_io;
    for (const Aabb& q : queries) {
      oracle_total += dataset.BruteForceRange(q).size();
      std::vector<uint64_t> got;
      IoStats before = stats;
      pool.Clear();
      index.RangeQuery(&pool, q, &got, FlatIndex::CrawlGuard::kPartitionMbr);
      partition_io += stats.DeltaSince(before);
      partition_total += got.size();

      got.clear();
      before = stats;
      pool.Clear();
      index.RangeQuery(&pool, q, &got, FlatIndex::CrawlGuard::kPageMbr);
      page_io += stats.DeltaSince(before);
      page_total += got.size();
    }
    auto recall = [&](uint64_t got) {
      return oracle_total > 0
                 ? FormatNumber(100.0 * got / oracle_total, 2) + "%"
                 : "n/a";
    };
    table.AddRow({FormatNumber(fraction, 6),
                  FormatNumber(static_cast<double>(queries.size()), 0),
                  recall(partition_total), recall(page_total),
                  FormatNumber(static_cast<double>(partition_io.TotalReads()) /
                                   queries.size(), 1),
                  FormatNumber(static_cast<double>(page_io.TotalReads()) /
                                   queries.size(), 1)});
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::cout << "\nExpected: the partition-MBR guard always reaches 100% "
               "recall; the page-MBR\nguard loses results on at least some "
               "query sizes.\n";
  return 0;
}
