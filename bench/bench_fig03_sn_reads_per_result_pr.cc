// Figure 3 (table): page reads per result element for structural-
// neighborhood range queries on a bulkloaded Priority R-Tree, as density
// grows. Paper values: 1.73 ... 2.33 over 50M..450M elements — the per-
// result cost *rises* with density, the scalability failure that motivates
// FLAT.
#include <iostream>

#include "benchutil/experiment.h"
#include "benchutil/reference.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);

  SweepOptions options;
  options.volume_fraction = kSnVolumeFraction;
  options.kinds = {IndexKind::kPrTree};
  const auto points = RunDensitySweep(flags, options);

  std::cout << "Figure 3: page reads per result element, SN benchmark, "
               "PR-Tree\n\n";
  Table table({"elements", "reads/result (measured)", "paper (50M..450M)",
               "results"});
  for (size_t i = 0; i < points.size(); ++i) {
    const auto& r = points[i].by_kind.at(IndexKind::kPrTree).workload;
    const double per_result =
        r.result_elements > 0
            ? static_cast<double>(r.io.TotalReads()) / r.result_elements
            : 0.0;
    table.AddRow({DensityLabel(points[i].elements),
                  FormatNumber(per_result, 2),
                  i < paper::kFig3PrReadsPerResult.size()
                      ? FormatNumber(paper::kFig3PrReadsPerResult[i], 2)
                      : "",
                  FormatNumber(static_cast<double>(r.result_elements), 0)});
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::cout
      << "\nReproduction check: the PR-Tree pays a substantial multiple of "
         "one page read per\nresult element at every density, and its total "
         "reads grow with density.\nKnown deviation (EXPERIMENTS.md): at "
         "1/1000 scale the per-result cost falls as the\nfixed traversal "
         "floor amortizes, while the paper's full-scale trees (two levels\n"
         "taller, overlap compounding across levels) show it rising "
         "1.73 -> 2.33.\n";
  return 0;
}
