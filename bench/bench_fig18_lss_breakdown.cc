// Figure 18: I/O breakdown for the LSS benchmark (200 range queries of fixed
// volume, random location and aspect ratio, cold cache per query).
// Paper claim: leaf/object pages dominate for both; the R-Tree's non-leaf overhead still exceeds FLAT's seed+metadata.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);
  SweepOptions options;
  options.volume_fraction = kLssVolumeFraction;
  options.kinds = bench::kLineup;
  const auto points = RunDensitySweep(flags, options);
  std::cout << "Figure 18: I/O breakdown, LSS benchmark\n"
            << "(paper: leaf/object pages dominate for both; the R-Tree's non-leaf overhead still exceeds FLAT's seed+metadata)\n\n";
  bench::PrintBreakdown(points, flags);
  return 0;
}
