// Micro-benchmarks (google-benchmark) for the geometric and structural
// primitives on FLAT's hot paths: MBR intersection tests (Section VII-E.2
// attributes most of FLAT's CPU time to them), space-filling-curve keys,
// STR tiling, and end-to-end index probes.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "core/flat_index.h"
#include "data/neuron_generator.h"
#include "data/query_generator.h"
#include "geometry/box_kernels.h"
#include "geometry/hilbert.h"
#include "geometry/morton.h"
#include "geometry/rng.h"
#include "rtree/bulkload.h"
#include "rtree/node.h"
#include "rtree/pack.h"
#include "storage/buffer_pool.h"

namespace {

using namespace flat;

void BM_AabbIntersects(benchmark::State& state) {
  Rng rng(1);
  Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  std::vector<Aabb> boxes;
  for (int i = 0; i < 1024; ++i) {
    boxes.push_back(Aabb::FromCenterHalfExtents(rng.PointIn(universe),
                                                Vec3(2, 3, 1)));
  }
  const Aabb query(Vec3(20, 20, 20), Vec3(60, 60, 60));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(boxes[i++ & 1023].Intersects(query));
  }
}
BENCHMARK(BM_AabbIntersects);

// --- Node-gate primitives -------------------------------------------------
// A synthetic object page at full 4 KiB fanout (73 RTreeEntry slots), gated
// against a query that intersects some of the boxes: the per-page inner
// loop of the crawl. Scalar is the pre-SIMD reference sweep; the other
// variants are what the crawl runs now (SoA transpose + vector gate) and
// its AoS dispatch used on seed-tree node descents.

struct NodePageFixture {
  std::vector<char> page;
  uint16_t count = 0;
  Aabb query;
  SoaBoxes soa;
  std::vector<uint8_t> hits;

  NodePageFixture() {
    Rng rng(42);
    const Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
    const uint32_t fanout = NodeCapacity(kDefaultPageSize);
    page.assign(kDefaultPageSize, 0);
    NodeWriter writer(page.data(), kDefaultPageSize);
    writer.Init(/*level=*/0);
    for (uint32_t i = 0; i < fanout; ++i) {
      writer.Append(RTreeEntry{
          Aabb::FromCenterHalfExtents(rng.PointIn(universe), Vec3(2, 3, 1)),
          i});
    }
    count = writer.count();
    query = Aabb(Vec3(20, 20, 20), Vec3(60, 60, 60));
    soa.Assign(page.data() + kNodeHeaderSize, sizeof(RTreeEntry), count);
    hits.resize(soa.padded_count());
  }
};

NodePageFixture& NodePage() {
  static NodePageFixture fixture;
  return fixture;
}

void BM_NodeGateScalar(benchmark::State& state) {
  auto& f = NodePage();
  for (auto _ : state) {
    IntersectsBatchScalar(f.page.data() + kNodeHeaderSize, sizeof(RTreeEntry),
                          f.count, f.query, f.hits.data());
    benchmark::DoNotOptimize(f.hits.data());
  }
  state.SetItemsProcessed(state.iterations() * f.count);
}
BENCHMARK(BM_NodeGateScalar);

void BM_NodeGateSimdAos(benchmark::State& state) {
  auto& f = NodePage();
  for (auto _ : state) {
    IntersectsBatch(f.page.data() + kNodeHeaderSize, sizeof(RTreeEntry),
                    f.count, f.query, f.hits.data());
    benchmark::DoNotOptimize(f.hits.data());
  }
  state.SetItemsProcessed(state.iterations() * f.count);
}
BENCHMARK(BM_NodeGateSimdAos);

void BM_NodeGateSoa(benchmark::State& state) {
  // Transpose + gate: the full per-page cost of the crawl's SoA path.
  auto& f = NodePage();
  for (auto _ : state) {
    f.soa.Assign(f.page.data() + kNodeHeaderSize, sizeof(RTreeEntry),
                 f.count);
    IntersectsSoa(f.soa, f.query, f.hits.data());
    benchmark::DoNotOptimize(f.hits.data());
  }
  state.SetItemsProcessed(state.iterations() * f.count);
}
BENCHMARK(BM_NodeGateSoa);

void BM_NodeGateSoaGateOnly(benchmark::State& state) {
  // SoA already resident: the steady-state vector gate alone.
  auto& f = NodePage();
  for (auto _ : state) {
    IntersectsSoa(f.soa, f.query, f.hits.data());
    benchmark::DoNotOptimize(f.hits.data());
  }
  state.SetItemsProcessed(state.iterations() * f.count);
}
BENCHMARK(BM_NodeGateSoaGateOnly);

// --- Containment-gate primitives ------------------------------------------
// The covered-child test behind aggregate pruning (rtree/aggregates.h): the
// same page as the node gates, against a query large enough to contain most
// of the boxes — the mix RangeCountViaAggregates sees on viewport queries.

void BM_CoverGateScalar(benchmark::State& state) {
  auto& f = NodePage();
  const Aabb cover(Vec3(5, 5, 5), Vec3(95, 95, 95));
  for (auto _ : state) {
    ContainsBatchScalar(f.page.data() + kNodeHeaderSize, sizeof(RTreeEntry),
                        f.count, cover, f.hits.data());
    benchmark::DoNotOptimize(f.hits.data());
  }
  state.SetItemsProcessed(state.iterations() * f.count);
}
BENCHMARK(BM_CoverGateScalar);

void BM_CoverGateSimdAos(benchmark::State& state) {
  auto& f = NodePage();
  const Aabb cover(Vec3(5, 5, 5), Vec3(95, 95, 95));
  for (auto _ : state) {
    ContainsBatch(f.page.data() + kNodeHeaderSize, sizeof(RTreeEntry),
                  f.count, cover, f.hits.data());
    benchmark::DoNotOptimize(f.hits.data());
  }
  state.SetItemsProcessed(state.iterations() * f.count);
}
BENCHMARK(BM_CoverGateSimdAos);

void BM_CoverGateSoa(benchmark::State& state) {
  // SoA already resident (the descent shares the transpose with the
  // intersection gate): the steady-state containment gate alone.
  auto& f = NodePage();
  const Aabb cover(Vec3(5, 5, 5), Vec3(95, 95, 95));
  for (auto _ : state) {
    ContainsSoa(f.soa, cover, f.hits.data());
    benchmark::DoNotOptimize(f.hits.data());
  }
  state.SetItemsProcessed(state.iterations() * f.count);
}
BENCHMARK(BM_CoverGateSoa);

void BM_SphereGateScalarLoop(benchmark::State& state) {
  // Pre-SIMD sphere path: per-element IntersectsSphere over the page.
  auto& f = NodePage();
  const Vec3 center(50, 50, 50);
  const double radius = 20.0;
  for (auto _ : state) {
    NodeView elements(f.page.data());
    for (uint16_t i = 0; i < f.count; ++i) {
      f.hits[i] = elements.BoxAt(i).IntersectsSphere(center, radius);
    }
    benchmark::DoNotOptimize(f.hits.data());
  }
  state.SetItemsProcessed(state.iterations() * f.count);
}
BENCHMARK(BM_SphereGateScalarLoop);

void BM_SphereGateSoa(benchmark::State& state) {
  auto& f = NodePage();
  const Vec3 center(50, 50, 50);
  const double radius = 20.0;
  for (auto _ : state) {
    f.soa.Assign(f.page.data() + kNodeHeaderSize, sizeof(RTreeEntry),
                 f.count);
    SphereGateSoa(f.soa, center, radius, f.hits.data());
    benchmark::DoNotOptimize(f.hits.data());
  }
  state.SetItemsProcessed(state.iterations() * f.count);
}
BENCHMARK(BM_SphereGateSoa);

// --- Page lookup primitives -----------------------------------------------
// Arena PageFile address arithmetic vs. the former one-allocation-per-page
// layout (reconstructed locally). Both variants run the same random page
// order and read a varied in-page offset — what a crawl's header + entry
// sweep does; reading only byte 0 of page-aligned storage would alias every
// access onto one L1 set and benchmark the cache geometry, not the lookup.

constexpr size_t kLookupPages = 4096;

std::vector<PageId> LookupOrder() {
  Rng rng(7);
  std::vector<PageId> order(kLookupPages);
  for (size_t i = 0; i < kLookupPages; ++i) {
    order[i] = static_cast<PageId>(rng.UniformInt(0, kLookupPages - 1));
  }
  return order;
}

inline size_t LookupOffset(PageId id) { return (id % 61) * 64; }

void BM_PageLookupArena(benchmark::State& state) {
  static PageFile* file = [] {
    auto* f = new PageFile(kDefaultPageSize);
    for (size_t i = 0; i < kLookupPages; ++i) {
      f->Allocate(PageCategory::kObject);
      f->MutableData(static_cast<PageId>(i))[LookupOffset(
          static_cast<PageId>(i))] = static_cast<char>(i);
    }
    return f;
  }();
  const std::vector<PageId> order = LookupOrder();
  size_t i = 0;
  int64_t sum = 0;
  for (auto _ : state) {
    const PageId id = order[i++ & (kLookupPages - 1)];
    sum += file->Data(id)[LookupOffset(id)];
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_PageLookupArena);

void BM_PageLookupPtrChase(benchmark::State& state) {
  // The pre-arena layout: every page its own heap allocation behind a
  // pointer array, so each Data(id) chases one extra pointer into a
  // scattered allocation. The spacer allocations reproduce how pages were
  // actually laid out: the old Allocate ran interleaved with the build's
  // vector allocations (neighbor lists, drafts), so consecutive pages did
  // not sit back to back — a fresh-heap back-to-back layout would flatter
  // this variant with locality it never had in practice.
  static std::vector<std::unique_ptr<char[]>>* pages = [] {
    auto* p = new std::vector<std::unique_ptr<char[]>>();
    Rng srng(11);
    std::vector<std::unique_ptr<char[]>> spacers;
    for (size_t i = 0; i < kLookupPages; ++i) {
      p->push_back(std::make_unique<char[]>(kDefaultPageSize));
      (*p)[i][LookupOffset(static_cast<PageId>(i))] = static_cast<char>(i);
      spacers.push_back(
          std::make_unique<char[]>(srng.UniformInt(64, 2048)));
    }
    return p;  // spacers freed here; the page scatter they forced remains
  }();
  const std::vector<PageId> order = LookupOrder();
  size_t i = 0;
  int64_t sum = 0;
  for (auto _ : state) {
    const PageId id = order[i++ & (kLookupPages - 1)];
    sum += (*pages)[id][LookupOffset(id)];
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_PageLookupPtrChase);

void BM_HilbertEncode(benchmark::State& state) {
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Hilbert3D::Encode(v & 0x1fffff, (v * 7) & 0x1fffff,
                          (v * 13) & 0x1fffff, 21));
    ++v;
  }
}
BENCHMARK(BM_HilbertEncode);

void BM_MortonEncode(benchmark::State& state) {
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Morton3D::Encode(
        v & 0x1fffff, (v * 7) & 0x1fffff, (v * 13) & 0x1fffff, 21));
    ++v;
  }
}
BENCHMARK(BM_MortonEncode);

void BM_StrOrder(benchmark::State& state) {
  NeuronParams params;
  params.total_elements = static_cast<size_t>(state.range(0));
  Dataset dataset = GenerateNeurons(params);
  for (auto _ : state) {
    auto copy = dataset.elements;
    StrOrder(&copy, 73);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StrOrder)->Arg(10000)->Arg(50000);

struct IndexFixture {
  PageFile file;
  FlatIndex flat;
  RTree str;
  PageFile str_file;
  std::vector<Aabb> queries;

  IndexFixture() {
    NeuronParams params;
    params.total_elements = 100000;
    Dataset dataset = GenerateNeurons(params);
    flat = FlatIndex::Build(&file, dataset.elements);
    str = BulkloadStr(&str_file, dataset.elements);
    RangeWorkloadParams wp;
    wp.count = 256;
    wp.volume_fraction = kDefaultQueryFraction;
    queries = GenerateRangeWorkload(dataset.bounds, wp);
  }

  static constexpr double kDefaultQueryFraction = 5e-6;
};

IndexFixture& Fixture() {
  static IndexFixture fixture;
  return fixture;
}

void BM_FlatRangeQuery(benchmark::State& state) {
  auto& f = Fixture();
  IoStats stats;
  BufferPool pool(&f.file, &stats);
  std::vector<uint64_t> out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    pool.Clear();
    f.flat.RangeQuery(&pool, f.queries[i++ & 255], &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FlatRangeQuery);

void BM_StrRangeQuery(benchmark::State& state) {
  auto& f = Fixture();
  IoStats stats;
  BufferPool pool(&f.str_file, &stats);
  std::vector<uint64_t> out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    pool.Clear();
    f.str.RangeQuery(&pool, f.queries[i++ & 255], &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_StrRangeQuery);

void BM_FlatSeedOnly(benchmark::State& state) {
  auto& f = Fixture();
  IoStats stats;
  BufferPool pool(&f.file, &stats);
  size_t i = 0;
  for (auto _ : state) {
    pool.Clear();
    benchmark::DoNotOptimize(f.flat.Seed(&pool, f.queries[i++ & 255]));
  }
}
BENCHMARK(BM_FlatSeedOnly);

}  // namespace

BENCHMARK_MAIN();
