// Micro-benchmarks (google-benchmark) for the geometric and structural
// primitives on FLAT's hot paths: MBR intersection tests (Section VII-E.2
// attributes most of FLAT's CPU time to them), space-filling-curve keys,
// STR tiling, and end-to-end index probes.
#include <benchmark/benchmark.h>

#include "core/flat_index.h"
#include "data/neuron_generator.h"
#include "data/query_generator.h"
#include "geometry/hilbert.h"
#include "geometry/morton.h"
#include "geometry/rng.h"
#include "rtree/bulkload.h"
#include "rtree/pack.h"
#include "storage/buffer_pool.h"

namespace {

using namespace flat;

void BM_AabbIntersects(benchmark::State& state) {
  Rng rng(1);
  Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  std::vector<Aabb> boxes;
  for (int i = 0; i < 1024; ++i) {
    boxes.push_back(Aabb::FromCenterHalfExtents(rng.PointIn(universe),
                                                Vec3(2, 3, 1)));
  }
  const Aabb query(Vec3(20, 20, 20), Vec3(60, 60, 60));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(boxes[i++ & 1023].Intersects(query));
  }
}
BENCHMARK(BM_AabbIntersects);

void BM_HilbertEncode(benchmark::State& state) {
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Hilbert3D::Encode(v & 0x1fffff, (v * 7) & 0x1fffff,
                          (v * 13) & 0x1fffff, 21));
    ++v;
  }
}
BENCHMARK(BM_HilbertEncode);

void BM_MortonEncode(benchmark::State& state) {
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Morton3D::Encode(
        v & 0x1fffff, (v * 7) & 0x1fffff, (v * 13) & 0x1fffff, 21));
    ++v;
  }
}
BENCHMARK(BM_MortonEncode);

void BM_StrOrder(benchmark::State& state) {
  NeuronParams params;
  params.total_elements = static_cast<size_t>(state.range(0));
  Dataset dataset = GenerateNeurons(params);
  for (auto _ : state) {
    auto copy = dataset.elements;
    StrOrder(&copy, 73);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StrOrder)->Arg(10000)->Arg(50000);

struct IndexFixture {
  PageFile file;
  FlatIndex flat;
  RTree str;
  PageFile str_file;
  std::vector<Aabb> queries;

  IndexFixture() {
    NeuronParams params;
    params.total_elements = 100000;
    Dataset dataset = GenerateNeurons(params);
    flat = FlatIndex::Build(&file, dataset.elements);
    str = BulkloadStr(&str_file, dataset.elements);
    RangeWorkloadParams wp;
    wp.count = 256;
    wp.volume_fraction = kDefaultQueryFraction;
    queries = GenerateRangeWorkload(dataset.bounds, wp);
  }

  static constexpr double kDefaultQueryFraction = 5e-6;
};

IndexFixture& Fixture() {
  static IndexFixture fixture;
  return fixture;
}

void BM_FlatRangeQuery(benchmark::State& state) {
  auto& f = Fixture();
  IoStats stats;
  BufferPool pool(&f.file, &stats);
  std::vector<uint64_t> out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    pool.Clear();
    f.flat.RangeQuery(&pool, f.queries[i++ & 255], &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FlatRangeQuery);

void BM_StrRangeQuery(benchmark::State& state) {
  auto& f = Fixture();
  IoStats stats;
  BufferPool pool(&f.str_file, &stats);
  std::vector<uint64_t> out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    pool.Clear();
    f.str.RangeQuery(&pool, f.queries[i++ & 255], &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_StrRangeQuery);

void BM_FlatSeedOnly(benchmark::State& state) {
  auto& f = Fixture();
  IoStats stats;
  BufferPool pool(&f.file, &stats);
  size_t i = 0;
  for (auto _ : state) {
    pool.Clear();
    benchmark::DoNotOptimize(f.flat.Seed(&pool, f.queries[i++ & 255]));
  }
}
BENCHMARK(BM_FlatSeedOnly);

}  // namespace

BENCHMARK_MAIN();
