// Figure 12: total page reads for the SN benchmark (200 range queries of fixed
// volume, random location and aspect ratio, cold cache per query).
// Paper claim: the best R-Tree (PR) reads 2x..8x more pages than FLAT, growing with density.
//
// --json switches to the compressed-vs-exact contender pair (the
// BENCH_compressed.json baseline): at each density point the same data set is
// built once with exact interior seed pages and once with the quantized
// format (FlatIndex::BuildOptions::compressed_seed_pages), and the SN
// workload runs against both, cold cache per query.
//
// Self-validating gates (non-zero exit on violation):
//   * every query returns the same result SET on both builds (ids compared
//     sorted — the builds may legitimately pick different seed records, so
//     crawl emission ORDER can differ while the set cannot);
//   * the compressed build's total page reads never exceed the exact
//     build's at any point;
//   * at the densest point the seed-internal read reduction reaches >= 2x
//     (the categories compressed pages can shrink; object and seed-leaf
//     pages are byte-identical between the builds).
#include <algorithm>
#include <vector>

#include "bench/bench_common.h"
#include "data/query_generator.h"
#include "storage/buffer_pool.h"

namespace {

using namespace flat;

struct PairRun {
  uint64_t total_reads = 0;
  uint64_t seed_internal_reads = 0;
  uint64_t seed_leaf_reads = 0;
  uint64_t object_reads = 0;
  uint64_t result_elements = 0;
  uint64_t total_pages = 0;
  uint64_t seed_internal_pages = 0;
  int seed_height = 0;
  /// Sorted ids per query, for the set-identity gate.
  std::vector<std::vector<uint64_t>> sorted_ids;
};

PairRun RunPair(IndexKind kind, const Dataset& dataset,
                const std::vector<Aabb>& queries) {
  Contender contender = BuildContender(kind, dataset.elements);
  PairRun run;
  run.total_pages = contender.total_pages();
  run.seed_internal_pages = contender.flat.build_stats().seed_internal_pages;
  run.seed_height = contender.flat.build_stats().seed_height;

  IoStats io;
  BufferPool pool(contender.file.get(), &io);
  run.sorted_ids.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    pool.Clear();  // cold cache before each query, as in the paper
    contender.RangeQuery(&pool, queries[i], &run.sorted_ids[i]);
    std::sort(run.sorted_ids[i].begin(), run.sorted_ids[i].end());
    run.result_elements += run.sorted_ids[i].size();
  }
  run.total_reads = io.TotalReads();
  run.seed_internal_reads = io.ReadsIn(PageCategory::kSeedInternal);
  run.seed_leaf_reads = io.ReadsIn(PageCategory::kSeedLeaf);
  run.object_reads = io.ReadsIn(PageCategory::kObject);
  return run;
}

int RunCompressedComparison(const BenchFlags& flags) {
  const size_t points[] = {flags.Scaled(100000), flags.Scaled(200000),
                           flags.Scaled(400000)};
  std::cerr << "# compressed-vs-exact SN page reads, " << flags.queries()
            << " queries per point, cold cache per query\n";

  bool identical = true;
  bool reads_bounded = true;
  double max_internal_reduction = 0.0;
  std::cout << "{\n"
            << "  \"bench\": \"fig12_sn_page_reads\",\n"
            << "  \"workload\": \"sn_range_compressed_vs_exact\",\n"
            << "  \"queries\": " << flags.queries() << ",\n"
            << "  \"points\": [\n";
  for (size_t p = 0; p < 3; ++p) {
    Dataset dataset = NeuronDatasetAt(points[p], flags.seed());
    RangeWorkloadParams workload;
    workload.count = flags.queries();
    workload.volume_fraction = kSnVolumeFraction;
    workload.seed = flags.seed() + 1;
    const std::vector<Aabb> queries =
        GenerateRangeWorkload(dataset.bounds, workload);

    const PairRun exact = RunPair(IndexKind::kFlat, dataset, queries);
    const PairRun compressed =
        RunPair(IndexKind::kFlatCompressed, dataset, queries);

    const bool point_identical = exact.sorted_ids == compressed.sorted_ids;
    identical = identical && point_identical;
    reads_bounded =
        reads_bounded && compressed.total_reads <= exact.total_reads;
    const double internal_reduction =
        compressed.seed_internal_reads > 0
            ? static_cast<double>(exact.seed_internal_reads) /
                  compressed.seed_internal_reads
            : 0.0;
    max_internal_reduction =
        std::max(max_internal_reduction, internal_reduction);

    std::cout << "    {\"elements\": " << dataset.elements.size()
              << ", \"results\": " << exact.result_elements << ",\n"
              << "     \"exact\": {\"total_reads\": " << exact.total_reads
              << ", \"seed_internal_reads\": " << exact.seed_internal_reads
              << ", \"seed_leaf_reads\": " << exact.seed_leaf_reads
              << ", \"object_reads\": " << exact.object_reads
              << ", \"seed_internal_pages\": " << exact.seed_internal_pages
              << ", \"seed_height\": " << exact.seed_height
              << ", \"total_pages\": " << exact.total_pages << "},\n"
              << "     \"compressed\": {\"total_reads\": "
              << compressed.total_reads
              << ", \"seed_internal_reads\": "
              << compressed.seed_internal_reads
              << ", \"seed_leaf_reads\": " << compressed.seed_leaf_reads
              << ", \"object_reads\": " << compressed.object_reads
              << ", \"seed_internal_pages\": "
              << compressed.seed_internal_pages
              << ", \"seed_height\": " << compressed.seed_height
              << ", \"total_pages\": " << compressed.total_pages << "},\n"
              << "     \"seed_internal_reduction\": " << internal_reduction
              << ", \"identical_results\": "
              << (point_identical ? "true" : "false") << "}"
              << (p + 1 < 3 ? "," : "") << "\n";
  }
  std::cout << "  ],\n"
            << "  \"identical_results\": " << (identical ? "true" : "false")
            << ",\n"
            << "  \"compressed_reads_bounded\": "
            << (reads_bounded ? "true" : "false") << ",\n"
            << "  \"max_seed_internal_reduction\": " << max_internal_reduction
            << "\n"
            << "}\n";

  if (!identical) {
    std::cerr << "ERROR: compressed build returned different result sets "
                 "than the exact build\n";
    return 1;
  }
  if (!reads_bounded) {
    std::cerr << "ERROR: compressed build read more pages than the exact "
                 "build\n";
    return 1;
  }
  if (max_internal_reduction < 2.0) {
    std::cerr << "ERROR: seed-internal read reduction "
              << max_internal_reduction << "x never reached the 2x gate\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);
  if (flags.GetInt("json", 0) != 0) return RunCompressedComparison(flags);

  SweepOptions options;
  options.volume_fraction = kSnVolumeFraction;
  options.kinds = bench::kLineup;
  const auto points = RunDensitySweep(flags, options);
  std::cout << "Figure 12: total page reads, SN benchmark\n"
            << "(paper: the best R-Tree (PR) reads 2x..8x more pages than FLAT, growing with density)\n\n";
  bench::PrintTotalReads(points, flags);
  return 0;
}
