// Figure 12: total page reads for the SN benchmark (200 range queries of fixed
// volume, random location and aspect ratio, cold cache per query).
// Paper claim: the best R-Tree (PR) reads 2x..8x more pages than FLAT, growing with density.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);
  SweepOptions options;
  options.volume_fraction = kSnVolumeFraction;
  options.kinds = bench::kLineup;
  const auto points = RunDensitySweep(flags, options);
  std::cout << "Figure 12: total page reads, SN benchmark\n"
            << "(paper: the best R-Tree (PR) reads 2x..8x more pages than FLAT, growing with density)\n\n";
  bench::PrintTotalReads(points, flags);
  return 0;
}
