// Figure 14: I/O breakdown for the SN benchmark (200 range queries of fixed
// volume, random location and aspect ratio, cold cache per query).
// Paper claim: FLAT's seed reads stay constant while metadata+object grow; the PR-Tree's non-leaf/leaf ratio grows from 2 to 2.8.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);
  SweepOptions options;
  options.volume_fraction = kSnVolumeFraction;
  options.kinds = bench::kLineup;
  const auto points = RunDensitySweep(flags, options);
  std::cout << "Figure 14: I/O breakdown, SN benchmark\n"
            << "(paper: FLAT's seed reads stay constant while metadata+object grow; the PR-Tree's non-leaf/leaf ratio grows from 2 to 2.8)\n\n";
  bench::PrintBreakdown(points, flags);
  return 0;
}
