// Figure 2: point-query page reads on bulkloaded R-Tree variants as density
// grows. "The point query is an excellent indication of overlap in an
// R-Tree: the number of disk pages read ... in an R-Tree without overlap is
// equal to the height of the tree."
//
// Paper reference: tree height 5; the PR-Tree grows to >450 page reads per
// point query at 450 M elements — ~90x the no-overlap ideal.
#include <iostream>

#include "benchutil/experiment.h"
#include "benchutil/reference.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);

  SweepOptions options;
  options.point_queries = true;
  options.volume_fraction = 1.0;  // any positive value; points ignore it
  options.kinds = {IndexKind::kHilbert, IndexKind::kStr, IndexKind::kPrTree};
  const auto points = RunDensitySweep(flags, options);

  std::cout << "Figure 2: page reads per point query vs. density\n"
            << "(paper: overlap grows with density; PR-Tree reaches >"
            << paper::kFig2PrPagesAtMaxDensity
            << " reads/query at 450M elements against a tree height of "
            << paper::kFig2PrTreeHeight << ")\n\n";

  Table table({"elements", "Hilbert reads/q", "STR reads/q", "PR reads/q",
               "Hilbert height", "STR height", "PR height"});
  for (const DensityPoint& p : points) {
    const double q = static_cast<double>(flags.queries());
    table.AddRow(
        {DensityLabel(p.elements),
         FormatNumber(p.by_kind.at(IndexKind::kHilbert).workload.io
                          .TotalReads() / q, 1),
         FormatNumber(
             p.by_kind.at(IndexKind::kStr).workload.io.TotalReads() / q, 1),
         FormatNumber(
             p.by_kind.at(IndexKind::kPrTree).workload.io.TotalReads() / q,
             1),
         FormatNumber(p.by_kind.at(IndexKind::kHilbert).tree_stats.height, 0),
         FormatNumber(p.by_kind.at(IndexKind::kStr).tree_stats.height, 0),
         FormatNumber(p.by_kind.at(IndexKind::kPrTree).tree_stats.height,
                      0)});
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::cout << "\nReproduction check: reads/query must grow with density for "
               "every variant\nand exceed the tree height by a growing "
               "factor (overlap).\n";
  return 0;
}
