// Figure 4: total bytes retrieved vs. the result-set size for large-
// spatial-subvolume queries on the three bulkloaded R-Trees. Paper: the
// best R-Tree (PR) retrieves 3x the result size at 50M elements, growing to
// 4x at 450M — overhead dominated by non-leaf pages.
#include <iostream>

#include "benchutil/experiment.h"
#include "benchutil/reference.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "rtree/entry.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);

  SweepOptions options;
  options.volume_fraction = kLssVolumeFraction;
  options.kinds = {IndexKind::kHilbert, IndexKind::kStr, IndexKind::kPrTree};
  const auto points = RunDensitySweep(flags, options);

  std::cout << "Figure 4: data retrieved vs. result size, LSS benchmark\n"
            << "(paper: PR-Tree retrieved/result ratio grows "
            << paper::kFig4RetrievedOverResultMin << "x -> "
            << paper::kFig4RetrievedOverResultMax << "x)\n\n";

  Table table({"elements", "result MiB", "Hilbert MiB", "STR MiB", "PR MiB",
               "PR/result"});
  for (const DensityPoint& p : points) {
    const auto& pr = p.by_kind.at(IndexKind::kPrTree).workload;
    const double result_mib =
        pr.result_elements * sizeof(RTreeEntry) / 1048576.0;
    auto mib = [&](IndexKind kind) {
      return p.by_kind.at(kind).workload.io.BytesRead(kDefaultPageSize) /
             1048576.0;
    };
    table.AddRow({DensityLabel(p.elements), FormatNumber(result_mib, 2),
                  FormatNumber(mib(IndexKind::kHilbert), 2),
                  FormatNumber(mib(IndexKind::kStr), 2),
                  FormatNumber(mib(IndexKind::kPrTree), 2),
                  FormatNumber(result_mib > 0
                                   ? mib(IndexKind::kPrTree) / result_mib
                                   : 0.0,
                               2)});
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::cout << "\nReproduction check: every R-Tree retrieves a substantial "
               "multiple (>3x) of the\nresult size at every density, with "
               "Hilbert < STR < PR as in the paper's Figure 4.\nKnown "
               "deviation (EXPERIMENTS.md): the multiple eases with density "
               "at 1/1000 scale\ninstead of rising 3 -> 4, because the "
               "fixed traversal floor amortizes faster\nthan overlap "
               "compounds in our two-levels-shorter trees.\n";
  return 0;
}
