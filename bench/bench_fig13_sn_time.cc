// Figure 13: execution time (DiskModel-simulated) for the SN benchmark (200 range queries of fixed
// volume, random location and aspect ratio, cold cache per query).
// Paper claim: time tracks page reads (97.8-98.8% of time is disk I/O in the paper).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);
  SweepOptions options;
  options.volume_fraction = kSnVolumeFraction;
  options.kinds = bench::kLineup;
  const auto points = RunDensitySweep(flags, options);
  std::cout << "Figure 13: execution time (DiskModel-simulated), SN benchmark\n"
            << "(paper: time tracks page reads (97.8-98.8% of time is disk I/O in the paper))\n\n";
  bench::PrintSimulatedTime(points, flags);
  return 0;
}
