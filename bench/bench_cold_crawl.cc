// Cold-cache crawl over the real disk backend: the paper's central scenario
// (crawl queries are 97.8-98.8 % I/O-bound, Section VII-E.2) executed
// against a DiskPageFile reopened from disk, with the OS page cache dropped
// before every timed pass — actual page faults, not DiskModel arithmetic.
//
// Two timed configurations over the SN range workload:
//   prefetch off  (depth 0)  — the crawl reads every page synchronously.
//   prefetch on   (--depth, default 32) — the BFS frontier hints the next
//                 wave's pages (madvise/fadvise + background touch) while
//                 the SIMD gates process the current one.
//
// Self-validating: both configurations must return bit-identical id
// sequences and logical read counts to the in-memory PageFile reference —
// any divergence exits non-zero (the CI bench-smoke contract). Wall-clock
// speedup is reported but never asserted: on a machine whose page cache
// cannot really be dropped (containers, overlayfs) the two passes
// legitimately tie.
//
// Flags: --scale --queries --seed --repeats=N --depth=N --pread (force the
// pread fallback instead of mmap) --json (the BENCH_disk.json baseline).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "benchutil/experiment.h"
#include "benchutil/flags.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "core/crawl_scratch.h"
#include "core/flat_index.h"
#include "data/query_generator.h"
#include "storage/buffer_pool.h"
#include "storage/disk_page_file.h"
#include "storage/io_stats.h"
#include "storage/page_file.h"
#include "storage/persistence.h"

namespace {

using namespace flat;

struct ColdRun {
  int prefetch_depth = 0;
  double best_seconds = 0.0;
  uint64_t page_reads = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_wasted = 0;
  uint64_t pages_touched = 0;  // by the background toucher, cumulative
  bool identical = true;
};

// One cold configuration: `repeats` passes over the workload, each preceded
// by DropOsCache, keeping the best wall time. Results are validated against
// `expected` on every pass.
ColdRun RunColdPass(const FlatIndex& index, DiskPageFile* disk,
                    const std::vector<Aabb>& queries,
                    const std::vector<std::vector<uint64_t>>& expected,
                    int depth, int repeats) {
  using Clock = std::chrono::steady_clock;
  ColdRun run;
  run.prefetch_depth = depth;
  CrawlScratch scratch;
  std::vector<uint64_t> ids;
  for (int rep = 0; rep < repeats; ++rep) {
    disk->DropOsCache();
    IoStats io;
    BufferPool pool(disk, &io);
    pool.set_prefetch_depth(depth);
    const auto t0 = Clock::now();
    for (size_t i = 0; i < queries.size(); ++i) {
      pool.Clear();
      ids.clear();
      index.RangeQuery(&pool, queries[i], &ids, &scratch);
      if (ids != expected[i]) run.identical = false;
    }
    pool.Clear();  // charge the last query's pending hints as waste
    const double seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (rep == 0 || seconds < run.best_seconds) run.best_seconds = seconds;
    // Logical reads are identical on every pass; keep the last pass's
    // counters (prefetch totals are per pass, not cumulative).
    run.page_reads = io.TotalReads();
    run.prefetch_issued = io.PrefetchIssued();
    run.prefetch_hits = io.PrefetchHits();
    run.prefetch_wasted = io.PrefetchWasted();
  }
  run.pages_touched = disk->pages_touched();
  return run;
}

// Flush the freshly written page file to stable storage so
// posix_fadvise(DONTNEED) can actually evict it (dirty pages are pinned).
void SyncFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return;
  ::fsync(::fileno(f));
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags(argc, argv);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const int depth = static_cast<int>(flags.GetInt("depth", 32));
  const bool json = flags.GetInt("json", 0) != 0;
  const bool force_pread = flags.GetInt("pread", 0) != 0;
  std::ostream& info = json ? std::cerr : std::cout;

  // The Figure-13 workload on the microcircuit data set, served from disk.
  Dataset dataset = NeuronDatasetAt(flags.Scaled(100000), flags.seed());
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, dataset.elements);

  RangeWorkloadParams workload;
  workload.count = flags.queries();
  workload.volume_fraction = kSnVolumeFraction;
  workload.seed = flags.seed() + 1;
  const std::vector<Aabb> queries =
      GenerateRangeWorkload(dataset.bounds, workload);

  // Serial in-memory reference: the oracle both disk configurations must
  // reproduce bit-for-bit.
  std::vector<std::vector<uint64_t>> expected(queries.size());
  uint64_t expected_reads = 0;
  {
    IoStats io;
    BufferPool pool(&file, &io);
    CrawlScratch scratch;
    for (size_t i = 0; i < queries.size(); ++i) {
      pool.Clear();
      index.RangeQuery(&pool, queries[i], &expected[i], &scratch);
    }
    expected_reads = io.TotalReads();
  }

  // Persist and reopen disk-backed.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("bench_cold_crawl_" + std::to_string(::getpid()) + ".pgf"))
          .string();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    SavePageFile(file, out);
  }
  SyncFile(path);

  DiskPageFile::Options options;
  options.use_mmap = !force_pread;
  options.async_prefetch = flags.GetInt("touch", 1) != 0;
  auto disk = DiskPageFile::Open(path, options);
  FlatIndex reopened = FlatIndex::Attach(disk.get(), index.descriptor());
  const uint64_t file_bytes = std::filesystem::file_size(path);

  info << "# " << dataset.elements.size() << " neuron elements, "
       << queries.size() << " SN range queries, " << file_bytes
       << " file bytes, backend "
       << (disk->mmap_backed() ? "mmap" : "pread") << ", prefetch depth "
       << depth << ", " << repeats << " cold repeats\n";

  const ColdRun off =
      RunColdPass(reopened, disk.get(), queries, expected, 0, repeats);
  const ColdRun on =
      RunColdPass(reopened, disk.get(), queries, expected, depth, repeats);

  std::error_code ec;
  std::filesystem::remove(path, ec);

  const bool reads_match =
      off.page_reads == expected_reads && on.page_reads == expected_reads;
  const double speedup =
      on.best_seconds > 0 ? off.best_seconds / on.best_seconds : 0.0;

  if (json) {
    std::cout << "{\n"
              << "  \"bench\": \"cold_crawl\",\n"
              << "  \"workload\": \"fig13_sn_range_cold\",\n"
              << "  \"backend\": \""
              << (disk->mmap_backed() ? "mmap" : "pread") << "\",\n"
              << "  \"elements\": " << dataset.elements.size() << ",\n"
              << "  \"queries\": " << queries.size() << ",\n"
              << "  \"file_bytes\": " << file_bytes << ",\n"
              << "  \"page_reads\": " << expected_reads << ",\n"
              << "  \"runs\": [\n";
    const ColdRun* runs[] = {&off, &on};
    for (int i = 0; i < 2; ++i) {
      const ColdRun& r = *runs[i];
      std::cout << "    {\"prefetch_depth\": " << r.prefetch_depth
                << ", \"seconds\": " << r.best_seconds
                << ", \"queries_per_s\": "
                << (r.best_seconds > 0 ? queries.size() / r.best_seconds : 0.0)
                << ", \"page_reads\": " << r.page_reads
                << ", \"prefetch_issued\": " << r.prefetch_issued
                << ", \"prefetch_hits\": " << r.prefetch_hits
                << ", \"prefetch_wasted\": " << r.prefetch_wasted
                << ", \"pages_touched\": " << r.pages_touched
                << ", \"identical\": " << (r.identical ? "true" : "false")
                << "}" << (i == 0 ? "," : "") << "\n";
    }
    std::cout << "  ],\n"
              << "  \"speedup_prefetch\": " << speedup << ",\n"
              << "  \"reads_match_memory_backend\": "
              << (reads_match ? "true" : "false") << "\n"
              << "}\n";
  } else {
    Table table({"prefetch", "seconds", "queries/s", "page reads", "issued",
                 "hits", "wasted", "identical"});
    for (const ColdRun* r : {&off, &on}) {
      table.AddRow(
          {FormatNumber(static_cast<double>(r->prefetch_depth), 0),
           FormatNumber(r->best_seconds, 4),
           FormatNumber(
               r->best_seconds > 0 ? queries.size() / r->best_seconds : 0.0,
               0),
           FormatNumber(static_cast<double>(r->page_reads), 0),
           FormatNumber(static_cast<double>(r->prefetch_issued), 0),
           FormatNumber(static_cast<double>(r->prefetch_hits), 0),
           FormatNumber(static_cast<double>(r->prefetch_wasted), 0),
           r->identical ? "yes" : "NO"});
    }
    flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
    std::cout << "prefetch speedup: " << speedup << "x (advisory; ties are "
              << "legitimate where the page cache cannot be dropped)\n";
  }

  if (!off.identical || !on.identical || !reads_match) {
    std::cerr << "ERROR: disk backend diverged from the in-memory reference "
                 "(results or logical read counts)\n";
    return 1;
  }
  return 0;
}
