// Figure 20: distribution of the number of neighbor pointers per partition
// as density grows. Paper: the median stays the same (~30) and the mode
// sharpens with increasing density — so metadata grows only linearly.
#include <algorithm>
#include <iostream>
#include <map>

#include "benchutil/experiment.h"
#include "benchutil/reference.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "core/flat_index.h"
#include "storage/page_file.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);

  std::cout << "Figure 20: neighbor-pointer distribution per partition vs. "
               "density\n(paper: median ~"
            << paper::kFig20MedianPointers
            << ", stable across the density sweep)\n\n";

  Table table({"elements", "partitions", "min", "p25", "median", "p75",
               "p95", "max", "mean"});
  std::map<size_t, std::vector<uint32_t>> histograms;
  for (size_t count : DensitySweepCounts(flags)) {
    Dataset dataset = NeuronDatasetAt(count, flags.seed());
    PageFile file;
    FlatIndex index = FlatIndex::Build(&file, dataset.elements);

    std::vector<uint32_t> counts;
    counts.reserve(index.partition_profiles().size());
    double mean = 0.0;
    for (const auto& profile : index.partition_profiles()) {
      counts.push_back(profile.neighbor_count);
      mean += profile.neighbor_count;
    }
    mean /= counts.size();
    std::sort(counts.begin(), counts.end());
    auto pct = [&](double f) {
      return counts[std::min(counts.size() - 1,
                             static_cast<size_t>(f * counts.size()))];
    };
    table.AddRow({DensityLabel(count),
                  FormatNumber(static_cast<double>(counts.size()), 0),
                  FormatNumber(counts.front(), 0), FormatNumber(pct(0.25), 0),
                  FormatNumber(pct(0.5), 0), FormatNumber(pct(0.75), 0),
                  FormatNumber(pct(0.95), 0), FormatNumber(counts.back(), 0),
                  FormatNumber(mean, 1)});
    histograms[count] = std::move(counts);
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);

  // Coarse histogram of the densest point, mirroring the figure's x-axis.
  const auto& densest = histograms.rbegin()->second;
  std::cout << "\nHistogram at the densest point (bucket width 5):\n";
  std::map<uint32_t, size_t> buckets;
  for (uint32_t c : densest) buckets[c / 5 * 5]++;
  for (const auto& [bucket, n] : buckets) {
    std::cout << "  " << bucket << "-" << bucket + 4 << ": " << n << "\n";
  }
  std::cout << "\nReproduction check: the median must stay within a narrow "
               "band across the sweep\n(metadata grows linearly with the "
               "data set).\n";
  return 0;
}
