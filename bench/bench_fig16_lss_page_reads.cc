// Figure 16: total page reads for the LSS benchmark (200 range queries of fixed
// volume, random location and aspect ratio, cold cache per query).
// Paper claim: FLAT needs fewer page reads; the gap (2x-6x) is smaller than for SN.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);
  SweepOptions options;
  options.volume_fraction = kLssVolumeFraction;
  options.kinds = bench::kLineup;
  const auto points = RunDensitySweep(flags, options);
  std::cout << "Figure 16: total page reads, LSS benchmark\n"
            << "(paper: FLAT needs fewer page reads; the gap (2x-6x) is smaller than for SN)\n\n";
  bench::PrintTotalReads(points, flags);
  return 0;
}
