// Figure 17: execution time (DiskModel-simulated) for the LSS benchmark (200 range queries of fixed
// volume, random location and aspect ratio, cold cache per query).
// Paper claim: same shape as the page-read curves.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);
  SweepOptions options;
  options.volume_fraction = kLssVolumeFraction;
  options.kinds = bench::kLineup;
  const auto points = RunDensitySweep(flags, options);
  std::cout << "Figure 17: execution time (DiskModel-simulated), LSS benchmark\n"
            << "(paper: same shape as the page-read curves)\n\n";
  bench::PrintSimulatedTime(points, flags);
  return 0;
}
