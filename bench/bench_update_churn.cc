// Update churn on the dynamic ShardedFlatStore: rounds of mixed
// insert/erase traffic followed by a validated range-query batch and a
// compaction, measuring write throughput, query latency as the overlay
// window grows, and the cost of folding the window back into a bulkloaded
// base. Every query batch is validated against a brute-force oracle mirror
// of the store, so the bench doubles as an end-to-end correctness gate.
//
// Flags: --scale --seed --threads=N (default 4) --shards=K (default 4)
// --rounds=N (default 4) --ops=N (churn ops per round, default 5000)
// --queries=N (validated queries per round, default 200)
// --json (emit the run as a JSON document, e.g. for a BENCH_update.json
// baseline). Exits non-zero if any query diverges from the oracle.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <unordered_map>
#include <vector>

#include "benchutil/flags.h"
#include "benchutil/table.h"
#include "data/query_generator.h"
#include "data/uniform_generator.h"
#include "engine/query_engine.h"
#include "geometry/rng.h"
#include "shard/sharded_flat_store.h"

int main(int argc, char** argv) {
  using namespace flat;
  using Clock = std::chrono::steady_clock;
  BenchFlags flags(argc, argv);

  UniformBoxParams params;
  params.count = flags.Scaled(100000);
  params.seed = flags.seed();
  Dataset dataset = GenerateUniformBoxes(params);

  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 4));
  const size_t shards = static_cast<size_t>(flags.GetInt("shards", 4));
  const size_t rounds = static_cast<size_t>(flags.GetInt("rounds", 4));
  const size_t ops_per_round = static_cast<size_t>(flags.GetInt("ops", 5000));
  const size_t queries_per_round =
      static_cast<size_t>(flags.GetInt("queries", 200));
  const uint64_t id_space = dataset.elements.size() * 2;

  ShardedFlatStore store = ShardedFlatStore::Build(
      dataset.elements, {.num_shards = shards, .num_threads = threads});

  // Brute-force oracle mirror, updated in lockstep with the store.
  std::unordered_map<uint64_t, Aabb> oracle;
  for (const RTreeEntry& e : dataset.elements) oracle[e.id] = e.box;
  auto oracle_range = [&](const Aabb& box) {
    std::vector<uint64_t> ids;
    for (const auto& [id, b] : oracle) {
      if (b.Intersects(box)) ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  };

  std::ostream& info = flags.GetInt("json", 0) != 0 ? std::cerr : std::cout;
  info << "# " << dataset.elements.size() << " uniform elements, " << rounds
       << " rounds x (" << ops_per_round << " churn ops + "
       << queries_per_round << " validated queries + compact), K=" << shards
       << ", " << threads << " worker threads\n";

  struct Point {
    size_t round = 0;
    double write_seconds = 0.0;
    double query_seconds = 0.0;
    double compact_seconds = 0.0;
    uint64_t overlay_ops = 0;       // window size when the queries ran
    uint64_t overlay_probes = 0;    // total overlay probes across the batch
    uint64_t page_reads = 0;        // total page reads across the batch
    uint64_t folded_ops = 0;
    uint64_t merged_elements = 0;
    uint64_t generation = 0;
    bool identical = true;
  };
  std::vector<Point> points;

  Rng rng(flags.seed() + 17);
  RangeWorkloadParams workload;
  workload.count = queries_per_round;
  workload.volume_fraction = 2e-5;
  bool all_identical = true;

  for (size_t round = 0; round < rounds; ++round) {
    Point p;
    p.round = round;

    // Churn: ~2/3 upserting inserts, ~1/3 deletes, ids colliding with the
    // base so every operation class (fresh insert, move, mask) is exercised.
    const auto t_write = Clock::now();
    for (size_t i = 0; i < ops_per_round; ++i) {
      const uint64_t id = static_cast<uint64_t>(
          rng.UniformInt(0, static_cast<int64_t>(id_space) - 1));
      if (rng.Bernoulli(1.0 / 3.0)) {
        store.Erase(id);
        oracle.erase(id);
      } else {
        const Vec3 center = rng.PointIn(dataset.bounds);
        const double frac = rng.Uniform(0.0005, 0.01);
        const RTreeEntry entry{
            Aabb::FromCenterHalfExtents(center,
                                        dataset.bounds.Extents() * (frac / 2)),
            id};
        store.Insert(entry);
        oracle[id] = entry.box;
      }
    }
    p.write_seconds =
        std::chrono::duration<double>(Clock::now() - t_write).count();
    p.overlay_ops = store.overlay_op_count();

    // Validated query batch over the overlaid store.
    workload.seed = flags.seed() + 100 + round;
    const std::vector<Aabb> boxes =
        GenerateRangeWorkload(dataset.bounds, workload);
    std::vector<Query> batch;
    batch.reserve(boxes.size());
    for (const Aabb& box : boxes) batch.push_back(Query::Range(box));
    BatchStats stats;
    const auto t_query = Clock::now();
    const std::vector<QueryResult> results = store.RunBatch(batch, &stats);
    p.query_seconds =
        std::chrono::duration<double>(Clock::now() - t_query).count();
    p.page_reads = stats.io.TotalReads();
    p.overlay_probes = stats.io.OverlayProbes();
    for (size_t i = 0; i < boxes.size(); ++i) {
      if (results[i].ids != oracle_range(boxes[i])) {
        p.identical = false;
        all_identical = false;
        break;
      }
    }

    // Fold the window back into a bulkloaded base.
    const ShardedFlatStore::CompactionStats cstats = store.Compact();
    p.compact_seconds = cstats.seconds;
    p.folded_ops = cstats.folded_ops;
    p.merged_elements = cstats.merged_elements;
    p.generation = cstats.generation;
    points.push_back(p);
  }

  // Post-compaction sanity: the final folded store still mirrors the oracle.
  const Aabb everything(Vec3(-1e18, -1e18, -1e18), Vec3(1e18, 1e18, 1e18));
  const bool final_identical =
      store.RangeQuery(everything) == oracle_range(everything);
  all_identical = all_identical && final_identical;

  if (flags.GetInt("json", 0) != 0) {
    std::cout << "{\n"
              << "  \"bench\": \"update_churn\",\n"
              << "  \"elements\": " << dataset.elements.size() << ",\n"
              << "  \"shards\": " << shards << ",\n"
              << "  \"threads\": " << threads << ",\n"
              << "  \"ops_per_round\": " << ops_per_round << ",\n"
              << "  \"queries_per_round\": " << queries_per_round << ",\n"
              << "  \"final_identical_to_oracle\": "
              << (final_identical ? "true" : "false") << ",\n"
              << "  \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::cout << "    {\"round\": " << p.round
                << ", \"write_seconds\": " << p.write_seconds
                << ", \"overlay_ops\": " << p.overlay_ops
                << ", \"query_seconds\": " << p.query_seconds
                << ", \"page_reads\": " << p.page_reads
                << ", \"overlay_probes\": " << p.overlay_probes
                << ", \"compact_seconds\": " << p.compact_seconds
                << ", \"folded_ops\": " << p.folded_ops
                << ", \"merged_elements\": " << p.merged_elements
                << ", \"generation\": " << p.generation
                << ", \"identical_to_oracle\": "
                << (p.identical ? "true" : "false") << "}"
                << (i + 1 < points.size() ? "," : "") << "\n";
    }
    std::cout << "  ]\n}\n";
  } else {
    Table table({"round", "write s", "overlay ops", "query s", "page reads",
                 "probes", "compact s", "merged", "gen", "identical"});
    for (const Point& p : points) {
      table.AddRow({FormatNumber(static_cast<double>(p.round), 0),
                    FormatNumber(p.write_seconds, 4),
                    FormatNumber(static_cast<double>(p.overlay_ops), 0),
                    FormatNumber(p.query_seconds, 4),
                    FormatNumber(static_cast<double>(p.page_reads), 0),
                    FormatNumber(static_cast<double>(p.overlay_probes), 0),
                    FormatNumber(p.compact_seconds, 4),
                    FormatNumber(static_cast<double>(p.merged_elements), 0),
                    FormatNumber(static_cast<double>(p.generation), 0),
                    p.identical ? "yes" : "NO"});
    }
    flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  }

  if (!all_identical) {
    std::cerr << "ERROR: dynamic store diverged from the brute-force oracle\n";
    return 1;
  }
  return 0;
}
