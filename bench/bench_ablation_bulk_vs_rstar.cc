// Ablation: why does the paper compare only against *bulkloaded* R-Trees?
// "Bulkloaded trees outperform other R-Tree variants such as the R*-Tree,
// primarily due to better page utilization" (Section VII). This bench
// measures page utilization, index size, build time, and SN query I/O for a
// consecutively-inserted R*-tree against the bulkloaded variants.
#include <iostream>

#include "benchutil/contender.h"
#include "benchutil/experiment.h"
#include "benchutil/flags.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "data/query_generator.h"
#include "rtree/node.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);
  // R* insertion is O(n log n) with big constants; default to a mid-sweep
  // density point.
  const size_t count = flags.Scaled(150000);
  Dataset dataset = NeuronDatasetAt(count, flags.seed());

  RangeWorkloadParams wp;
  wp.count = flags.queries();
  wp.volume_fraction = kSnVolumeFraction;
  wp.seed = flags.seed() + 1;
  auto queries = GenerateRangeWorkload(dataset.bounds, wp);
  DiskModel disk;

  std::cout << "Ablation: bulkloaded R-Trees vs dynamic R*-tree ("
            << count << " elements, SN workload)\n\n";
  Table table({"index", "build s", "size MiB", "leaf fill", "SN reads/q"});
  for (IndexKind kind : {IndexKind::kStr, IndexKind::kHilbert,
                         IndexKind::kPrTree, IndexKind::kTgs,
                         IndexKind::kRStar, IndexKind::kFlat}) {
    Contender contender = BuildContender(kind, dataset.elements);
    double fill = 0.0;
    if (kind == IndexKind::kFlat) {
      fill = static_cast<double>(count) /
             (contender.flat.build_stats().object_pages *
              NodeCapacity(kDefaultPageSize));
    } else {
      auto stats = contender.rtree.ComputeStats();
      fill = static_cast<double>(stats.leaf_entries) /
             (stats.leaf_pages * NodeCapacity(kDefaultPageSize));
    }
    WorkloadResult r = RunWorkload(contender, queries, disk);
    table.AddRow({IndexKindName(kind),
                  FormatNumber(contender.build_seconds, 2),
                  FormatNumber(contender.size_bytes() / 1048576.0, 1),
                  FormatNumber(fill * 100.0, 1) + "%",
                  FormatNumber(static_cast<double>(r.io.TotalReads()) /
                                   queries.size(),
                               1)});
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::cout << "\nExpected: ~100% leaf fill for the bulkloaded variants, "
               "well below for R*;\nR* also builds orders of magnitude "
               "slower, justifying the paper's choice.\n";
  return 0;
}
