// Figure 22 (table): index size and build time, FLAT vs PR-Tree, on the
// non-neuroscience data sets of Section VIII. The proprietary/third-party
// data is replaced by synthetic equivalents (see the src/data/ generator
// headers and docs/benchmarks.md): Nuage cosmology
// snapshots -> Plummer-cluster n-body sets; the 173M-triangle brain surface
// mesh -> folded-sheet mesh; the Lucy statue scan -> composite-shell mesh.
// Paper: FLAT needs modestly more space and time than the PR-Tree's *size*,
// but builds far faster than the PR-Tree.
#include <iostream>

#include "benchutil/contender.h"
#include "benchutil/flags.h"
#include "benchutil/reference.h"
#include "benchutil/table.h"
#include "data/mesh_generator.h"
#include "data/nbody_generator.h"

namespace {

using namespace flat;

std::vector<Dataset> MakeOtherDatasets(const BenchFlags& flags) {
  std::vector<Dataset> datasets;
  // Nuage dark matter / stars: 16.8M vertices each; gas: 12.4M (scaled).
  for (auto [name, count, clusters] :
       {std::tuple<const char*, size_t, size_t>{"Nuage (dark matter)",
                                                168000, 96},
        {"Nuage (stars)", 168000, 48},
        {"Nuage (gas)", 124000, 64}}) {
    NBodyParams params;
    params.count = flags.Scaled(count);
    params.clusters = clusters;
    params.seed = flags.seed() + datasets.size();
    Dataset d = GenerateNBody(params);
    d.name = name;
    datasets.push_back(std::move(d));
  }
  {
    MeshParams params;  // 173M triangles scaled
    params.kind = MeshKind::kFoldedSheet;
    params.target_triangles = flags.Scaled(173000);
    params.seed = flags.seed() + 10;
    Dataset d = GenerateMesh(params);
    d.name = "Brain Mesh";
    datasets.push_back(std::move(d));
  }
  {
    MeshParams params;  // 252M triangles scaled
    params.kind = MeshKind::kStatue;
    params.target_triangles = flags.Scaled(252000);
    params.seed = flags.seed() + 11;
    Dataset d = GenerateMesh(params);
    d.name = "Lucy Statue";
    datasets.push_back(std::move(d));
  }
  return datasets;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);

  std::cout << "Figure 22: index size and build time on other data sets "
               "(FLAT vs PR-Tree)\n\n";
  Table table({"dataset", "elements", "FLAT MiB", "PR MiB", "FLAT build s",
               "PR build s", "paper size MB (F/PR)", "paper build s (F/PR)"});
  size_t row = 0;
  for (Dataset& dataset : MakeOtherDatasets(flags)) {
    Contender flat = BuildContender(IndexKind::kFlat, dataset.elements);
    Contender pr = BuildContender(IndexKind::kPrTree, dataset.elements);
    const auto& paper_row = paper::kFig22[row++];
    table.AddRow(
        {dataset.name,
         FormatNumber(static_cast<double>(dataset.size()), 0),
         FormatNumber(flat.size_bytes() / 1048576.0, 1),
         FormatNumber(pr.size_bytes() / 1048576.0, 1),
         FormatNumber(flat.build_seconds, 2),
         FormatNumber(pr.build_seconds, 2),
         FormatNumber(paper_row.flat_size_mb, 0) + "/" +
             FormatNumber(paper_row.pr_size_mb, 0),
         FormatNumber(paper_row.flat_build_s, 0) + "/" +
             FormatNumber(paper_row.pr_build_s, 0)});
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::cout << "\nReproduction check: FLAT slightly larger than the PR-Tree "
               "on every data set,\nbut several times faster to build.\n";
  return 0;
}
