// Shared rendering for the SN/LSS benchmark families (Figures 12-19): each
// figure binary runs the density sweep for its workload and prints one view
// (total reads, simulated time, breakdown, or per-result reads).
#ifndef FLAT_BENCH_BENCH_COMMON_H_
#define FLAT_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <string>
#include <vector>

#include "benchutil/experiment.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"

namespace flat {
namespace bench {

inline const std::vector<IndexKind> kLineup = {
    IndexKind::kFlat, IndexKind::kPrTree, IndexKind::kStr,
    IndexKind::kHilbert};

inline void PrintTotalReads(const std::vector<DensityPoint>& points,
                            const BenchFlags& flags) {
  // The paper's headline ratio compares FLAT against the PR-Tree, "the best
  // R-Tree" in its experiments (our Hilbert baseline is stronger than the
  // paper's — see EXPERIMENTS.md).
  Table table({"elements", "FLAT", "PR-Tree", "STR", "Hilbert", "PR/FLAT",
               "STR/FLAT"});
  for (const DensityPoint& p : points) {
    const double flat = static_cast<double>(
        p.by_kind.at(IndexKind::kFlat).workload.io.TotalReads());
    std::vector<std::string> row = {DensityLabel(p.elements)};
    for (IndexKind kind : kLineup) {
      row.push_back(FormatNumber(
          static_cast<double>(
              p.by_kind.at(kind).workload.io.TotalReads()), 0));
    }
    row.push_back(FormatNumber(
        p.by_kind.at(IndexKind::kPrTree).workload.io.TotalReads() / flat,
        2));
    row.push_back(FormatNumber(
        p.by_kind.at(IndexKind::kStr).workload.io.TotalReads() / flat, 2));
    table.AddRow(row);
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
}

inline void PrintSimulatedTime(const std::vector<DensityPoint>& points,
                               const BenchFlags& flags) {
  Table table({"elements", "FLAT s", "PR-Tree s", "STR s", "Hilbert s"});
  for (const DensityPoint& p : points) {
    std::vector<std::string> row = {DensityLabel(p.elements)};
    for (IndexKind kind : kLineup) {
      row.push_back(
          FormatNumber(p.by_kind.at(kind).workload.simulated_ms / 1e3, 3));
    }
    table.AddRow(row);
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
}

inline void PrintBreakdown(const std::vector<DensityPoint>& points,
                           const BenchFlags& flags) {
  const double page_mib = kDefaultPageSize / 1048576.0;
  Table table({"elements", "FLAT seed MiB", "FLAT meta MiB", "FLAT obj MiB",
               "PR non-leaf MiB", "PR leaf MiB", "PR nonleaf/leaf"});
  for (const DensityPoint& p : points) {
    const IoStats& flat_io = p.by_kind.at(IndexKind::kFlat).workload.io;
    const IoStats& pr_io = p.by_kind.at(IndexKind::kPrTree).workload.io;
    const double pr_nonleaf =
        pr_io.ReadsIn(PageCategory::kRTreeInternal) * page_mib;
    const double pr_leaf = pr_io.ReadsIn(PageCategory::kRTreeLeaf) * page_mib;
    table.AddRow(
        {DensityLabel(p.elements),
         FormatNumber(flat_io.ReadsIn(PageCategory::kSeedInternal) * page_mib,
                      3),
         FormatNumber(flat_io.ReadsIn(PageCategory::kSeedLeaf) * page_mib, 3),
         FormatNumber(flat_io.ReadsIn(PageCategory::kObject) * page_mib, 3),
         FormatNumber(pr_nonleaf, 3), FormatNumber(pr_leaf, 3),
         FormatNumber(pr_leaf > 0 ? pr_nonleaf / pr_leaf : 0.0, 2)});
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
}

inline void PrintPerResult(const std::vector<DensityPoint>& points,
                           const BenchFlags& flags) {
  Table table({"elements", "results", "FLAT", "PR-Tree", "STR", "Hilbert"});
  for (const DensityPoint& p : points) {
    const uint64_t results =
        p.by_kind.at(IndexKind::kFlat).workload.result_elements;
    std::vector<std::string> row = {
        DensityLabel(p.elements),
        FormatNumber(static_cast<double>(results), 0)};
    for (IndexKind kind : kLineup) {
      const auto& w = p.by_kind.at(kind).workload;
      row.push_back(FormatNumber(
          w.result_elements > 0
              ? static_cast<double>(w.io.TotalReads()) / w.result_elements
              : 0.0,
          3));
    }
    table.AddRow(row);
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
}

}  // namespace bench
}  // namespace flat

#endif  // FLAT_BENCH_BENCH_COMMON_H_
