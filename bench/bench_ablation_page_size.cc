// Ablation: page-size sensitivity. The paper fixes 4 KiB pages (and 85
// elements per page); this bench sweeps the page size for FLAT and the
// PR-Tree. Smaller pages mean taller trees and finer partitions; larger
// pages amortize the hierarchy but read more data per hit.
#include <iostream>

#include "benchutil/contender.h"
#include "benchutil/experiment.h"
#include "benchutil/flags.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "data/query_generator.h"
#include "rtree/node.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);
  const size_t count = flags.Scaled(200000);
  Dataset dataset = NeuronDatasetAt(count, flags.seed());

  RangeWorkloadParams wp;
  wp.count = flags.queries();
  wp.volume_fraction = kSnVolumeFraction;
  wp.seed = flags.seed() + 1;
  auto queries = GenerateRangeWorkload(dataset.bounds, wp);
  DiskModel disk;

  std::cout << "Ablation: page-size sweep (" << count
            << " elements, SN workload)\n\n";
  Table table({"page size", "slots/page", "FLAT reads/q", "FLAT MiB/q",
               "PR reads/q", "PR MiB/q", "FLAT size MiB", "PR size MiB"});
  for (uint32_t page_size : {1024u, 2048u, 4096u, 8192u, 16384u}) {
    Contender flat = BuildContender(IndexKind::kFlat, dataset.elements,
                                    page_size);
    Contender pr = BuildContender(IndexKind::kPrTree, dataset.elements,
                                  page_size);
    WorkloadResult fr = RunWorkload(flat, queries, disk);
    WorkloadResult prr = RunWorkload(pr, queries, disk);
    const double q = static_cast<double>(queries.size());
    table.AddRow(
        {FormatBytes(page_size),
         FormatNumber(static_cast<double>(NodeCapacity(page_size)), 0),
         FormatNumber(fr.io.TotalReads() / q, 1),
         FormatNumber(fr.io.BytesRead(page_size) / q / 1048576.0, 3),
         FormatNumber(prr.io.TotalReads() / q, 1),
         FormatNumber(prr.io.BytesRead(page_size) / q / 1048576.0, 3),
         FormatNumber(flat.size_bytes() / 1048576.0, 1),
         FormatNumber(pr.size_bytes() / 1048576.0, 1)});
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::cout << "\nExpected: page reads fall as pages grow (fewer, bigger "
               "reads) while bytes\nper query rise; FLAT keeps its advantage "
               "over the PR-Tree across sizes.\n";
  return 0;
}
