// Figure 11: index size vs. density for FLAT and the PR-Tree, broken into
// object/leaf pages, non-leaf pages, and (FLAT only) seed tree + metadata.
// Paper: FLAT is slightly larger (the metadata), both grow linearly, and
// "the size of the total index predominantly depends on the number of
// elements".
#include <iostream>

#include "benchutil/experiment.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);

  SweepOptions options;
  options.volume_fraction = 0.0;
  options.kinds = {IndexKind::kPrTree, IndexKind::kFlat};
  const auto points = RunDensitySweep(flags, options);

  std::cout << "Figure 11: index size vs. density (FLAT vs PR-Tree)\n\n";
  Table table({"elements", "FLAT object MiB", "FLAT seed+meta MiB",
               "FLAT total MiB", "PR leaf MiB", "PR non-leaf MiB",
               "PR total MiB", "FLAT/PR"});
  const double page_mib = kDefaultPageSize / 1048576.0;
  for (const DensityPoint& p : points) {
    const auto& flat_r = p.by_kind.at(IndexKind::kFlat);
    const auto& pr_r = p.by_kind.at(IndexKind::kPrTree);
    const double object =
        flat_r.pages_in[static_cast<int>(PageCategory::kObject)] * page_mib;
    const double seed_meta =
        (flat_r.pages_in[static_cast<int>(PageCategory::kSeedLeaf)] +
         flat_r.pages_in[static_cast<int>(PageCategory::kSeedInternal)]) *
        page_mib;
    const double pr_leaf =
        pr_r.pages_in[static_cast<int>(PageCategory::kRTreeLeaf)] * page_mib;
    const double pr_internal =
        pr_r.pages_in[static_cast<int>(PageCategory::kRTreeInternal)] *
        page_mib;
    table.AddRow({DensityLabel(p.elements), FormatNumber(object, 2),
                  FormatNumber(seed_meta, 2),
                  FormatNumber(object + seed_meta, 2),
                  FormatNumber(pr_leaf, 2), FormatNumber(pr_internal, 2),
                  FormatNumber(pr_leaf + pr_internal, 2),
                  FormatNumber((object + seed_meta) /
                                   (pr_leaf + pr_internal), 3)});
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::cout << "\nReproduction check: both indexes grow linearly with the "
               "element count;\nFLAT is consistently but only modestly "
               "larger (its metadata).\n";
  return 0;
}
