// Figure 11: index size vs. density for FLAT and the PR-Tree, broken into
// object/leaf pages, non-leaf pages, and (FLAT only) seed tree + metadata.
// Paper: FLAT is slightly larger (the metadata), both grow linearly, and
// "the size of the total index predominantly depends on the number of
// elements".
// --json switches to the compressed-vs-exact index size comparison (part of
// the BENCH_compressed.json baseline): the quantized interior format packs
// 252 children per 4 KiB page instead of 73, so the seed tree's internal
// level count and page count shrink while object and seed-leaf pages stay
// byte-identical. Exits non-zero if the compressed build is ever larger.
#include <iostream>

#include "benchutil/experiment.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"

namespace {

int RunCompressedComparison(const flat::BenchFlags& flags) {
  using namespace flat;
  const size_t points[] = {flags.Scaled(100000), flags.Scaled(200000),
                           flags.Scaled(400000)};
  std::cerr << "# compressed-vs-exact index size\n";

  bool bounded = true;
  std::cout << "{\n"
            << "  \"bench\": \"fig11_index_size\",\n"
            << "  \"workload\": \"index_size_compressed_vs_exact\",\n"
            << "  \"points\": [\n";
  for (size_t p = 0; p < 3; ++p) {
    Dataset dataset = NeuronDatasetAt(points[p], flags.seed());
    const Contender exact =
        BuildContender(IndexKind::kFlat, dataset.elements);
    const Contender compressed =
        BuildContender(IndexKind::kFlatCompressed, dataset.elements);

    const auto& exact_stats = exact.flat.build_stats();
    const auto& comp_stats = compressed.flat.build_stats();
    bounded = bounded && compressed.total_pages() <= exact.total_pages() &&
              comp_stats.seed_internal_pages <=
                  exact_stats.seed_internal_pages;
    const double internal_reduction =
        comp_stats.seed_internal_pages > 0
            ? static_cast<double>(exact_stats.seed_internal_pages) /
                  comp_stats.seed_internal_pages
            : 0.0;

    std::cout << "    {\"elements\": " << dataset.elements.size() << ",\n"
              << "     \"exact\": {\"total_pages\": " << exact.total_pages()
              << ", \"size_bytes\": " << exact.size_bytes()
              << ", \"seed_internal_pages\": "
              << exact_stats.seed_internal_pages
              << ", \"seed_height\": " << exact_stats.seed_height << "},\n"
              << "     \"compressed\": {\"total_pages\": "
              << compressed.total_pages()
              << ", \"size_bytes\": " << compressed.size_bytes()
              << ", \"seed_internal_pages\": "
              << comp_stats.seed_internal_pages
              << ", \"seed_height\": " << comp_stats.seed_height << "},\n"
              << "     \"seed_internal_page_reduction\": "
              << internal_reduction << "}" << (p + 1 < 3 ? "," : "") << "\n";
  }
  std::cout << "  ],\n"
            << "  \"compressed_size_bounded\": "
            << (bounded ? "true" : "false") << "\n"
            << "}\n";

  if (!bounded) {
    std::cerr << "ERROR: compressed build produced a larger index than the "
                 "exact build\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);
  if (flags.GetInt("json", 0) != 0) return RunCompressedComparison(flags);

  SweepOptions options;
  options.volume_fraction = 0.0;
  options.kinds = {IndexKind::kPrTree, IndexKind::kFlat};
  const auto points = RunDensitySweep(flags, options);

  std::cout << "Figure 11: index size vs. density (FLAT vs PR-Tree)\n\n";
  Table table({"elements", "FLAT object MiB", "FLAT seed+meta MiB",
               "FLAT total MiB", "PR leaf MiB", "PR non-leaf MiB",
               "PR total MiB", "FLAT/PR"});
  const double page_mib = kDefaultPageSize / 1048576.0;
  for (const DensityPoint& p : points) {
    const auto& flat_r = p.by_kind.at(IndexKind::kFlat);
    const auto& pr_r = p.by_kind.at(IndexKind::kPrTree);
    const double object =
        flat_r.pages_in[static_cast<int>(PageCategory::kObject)] * page_mib;
    const double seed_meta =
        (flat_r.pages_in[static_cast<int>(PageCategory::kSeedLeaf)] +
         flat_r.pages_in[static_cast<int>(PageCategory::kSeedInternal)]) *
        page_mib;
    const double pr_leaf =
        pr_r.pages_in[static_cast<int>(PageCategory::kRTreeLeaf)] * page_mib;
    const double pr_internal =
        pr_r.pages_in[static_cast<int>(PageCategory::kRTreeInternal)] *
        page_mib;
    table.AddRow({DensityLabel(p.elements), FormatNumber(object, 2),
                  FormatNumber(seed_meta, 2),
                  FormatNumber(object + seed_meta, 2),
                  FormatNumber(pr_leaf, 2), FormatNumber(pr_internal, 2),
                  FormatNumber(pr_leaf + pr_internal, 2),
                  FormatNumber((object + seed_meta) /
                                   (pr_leaf + pr_internal), 3)});
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::cout << "\nReproduction check: both indexes grow linearly with the "
               "element count;\nFLAT is consistently but only modestly "
               "larger (its metadata).\n";
  return 0;
}
