// Figure 21 and the two in-text experiments of Section VII-E.1, on the
// artificial uniform data set ("10 million elements uniformly randomly
// distributed in a volume of 8 mm^3", scaled down):
//   (a) growing the partition volume grows the average neighbor count;
//   (b) growing the element volume 5x adds ~10% pointers;
//   (c) sweeping the element aspect ratio (fixed volume 18 um^3, sides drawn
//       in [5, 35] um) grows the mean pointer count 17.4 -> 22.9.
#include <iostream>

#include "benchutil/flags.h"
#include "benchutil/reference.h"
#include "benchutil/table.h"
#include "core/partitioner.h"
#include "data/uniform_generator.h"
#include "rtree/node.h"
#include "storage/page.h"

namespace {

using namespace flat;

double MeanPointers(const std::vector<PartitionInfo>& partitions) {
  return static_cast<double>(TotalNeighborPointers(partitions)) /
         partitions.size();
}

double MeanPartitionVolume(const std::vector<PartitionInfo>& partitions) {
  double total = 0.0;
  for (const auto& p : partitions) total += p.partition_mbr.Volume();
  return total / partitions.size();
}

std::vector<PartitionInfo> PartitionDataset(Dataset dataset) {
  auto partitions = StrPartition(&dataset.elements,
                                 NodeCapacity(kDefaultPageSize),
                                 dataset.bounds);
  ComputeNeighbors(&partitions);
  return partitions;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);
  const size_t count = flags.Scaled(100000);
  // The paper uses 10M elements in 8 mm^3 (2000 um cube). Scaling the count
  // down requires shrinking the universe by cbrt(count/10M) so elements keep
  // their size *relative to the page tiles* — the quantity all three
  // pointer experiments actually probe.
  const double universe_side =
      2000.0 * std::cbrt(static_cast<double>(count) / 1e7);

  // (a) Partition-volume sweep: inflate every partition MBR and recount.
  {
    UniformBoxParams params;
    params.count = count;
    params.universe_side_um = universe_side;
    params.shape = BoxShapeMode::kCube;
    params.side_um = 5.0;
    params.seed = flags.seed();
    Dataset dataset = GenerateUniformBoxes(params);
    auto base = StrPartition(&dataset.elements,
                             NodeCapacity(kDefaultPageSize), dataset.bounds);

    std::cout << "Figure 21: average partition volume vs. average neighbor "
                 "pointers\n(paper: monotonically increasing)\n\n";
    Table table({"inflation um", "avg partition volume um^3",
                 "avg neighbor pointers"});
    for (double inflation : {0.0, 2.0, 4.0, 6.0, 8.0, 10.0}) {
      auto inflated = base;
      for (auto& p : inflated) {
        p.partition_mbr = p.partition_mbr.Inflated(inflation);
      }
      ComputeNeighbors(&inflated);
      table.AddRow({FormatNumber(inflation, 1),
                    FormatNumber(MeanPartitionVolume(inflated), 0),
                    FormatNumber(MeanPointers(inflated), 1)});
    }
    flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  }

  // (b) Element-volume sweep: scale cube elements 1x..5x in volume.
  {
    std::cout << "\nIn-text experiment: element volume x5 => ~"
              << paper::kVolumeSweepPointerIncrease * 100
              << "% more pointers (paper)\n\n";
    Table table({"element volume um^3", "avg neighbor pointers",
                 "increase vs 1x"});
    double baseline = 0.0;
    for (double volume_factor : {1.0, 2.0, 3.0, 4.0, 5.0}) {
      UniformBoxParams params;
      params.count = count;
      params.universe_side_um = universe_side;
      params.shape = BoxShapeMode::kCube;
      params.side_um = 5.0 * std::cbrt(volume_factor);
      params.seed = flags.seed();  // same positions, bigger elements
      auto partitions = PartitionDataset(GenerateUniformBoxes(params));
      const double mean = MeanPointers(partitions);
      if (volume_factor == 1.0) baseline = mean;
      table.AddRow(
          {FormatNumber(std::pow(params.side_um, 3.0), 0),
           FormatNumber(mean, 1),
           FormatNumber((mean / baseline - 1.0) * 100.0, 1) + "%"});
    }
    flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  }

  // (c) Aspect-ratio sweep: fixed element volume, growing aspect range.
  {
    std::cout << "\nIn-text experiment: aspect-ratio sweep (paper: mean "
                 "pointers grow "
              << paper::kAspectSweepPointersMin << " -> "
              << paper::kAspectSweepPointersMax << ")\n\n";
    Table table({"side range um", "avg neighbor pointers"});
    for (double spread : {0.0, 5.0, 10.0, 15.0}) {
      UniformBoxParams params;
      params.count = count;
      params.universe_side_um = universe_side;
      params.shape = BoxShapeMode::kFixedVolumeRandomAspect;
      params.element_volume_um3 = 18.0;
      params.min_side_um = 20.0 - spread;
      params.max_side_um = 20.0 + spread;
      params.seed = flags.seed();
      auto partitions = PartitionDataset(GenerateUniformBoxes(params));
      table.AddRow({"[" + FormatNumber(params.min_side_um, 0) + ", " +
                        FormatNumber(params.max_side_um, 0) + "]",
                    FormatNumber(MeanPointers(partitions), 1)});
    }
    flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
    std::cout << "\nReproduction check: pointers grow with partition volume, "
                 "grow mildly (~10%)\nwith a 5x element-volume increase, and "
                 "grow with aspect-ratio spread.\n";
  }
  return 0;
}
