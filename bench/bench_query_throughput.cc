// CPU hot-path throughput over the Figure-13 workload: the SN benchmark's
// range queries (fixed volume, random location/aspect) on the microcircuit
// data set, executed serially and through the QueryEngine, plus a
// node-gate kernel comparison (scalar vs. the compiled SIMD path) over the
// index's real object pages.
//
// Everything self-validates: engine results must be bit-identical to the
// serial reference (with matching per-category IoStats) and the SIMD gate
// must agree with the scalar gate on every page — any divergence exits
// non-zero, which is what the CI benchmark-smoke step relies on.
//
// Flags: --scale --queries (default 200, the paper's workload) --seed
// --threads-max=N --repeats=N --json (machine-readable output, e.g. the
// BENCH_hotpath.json baseline).
//
// Single-core machines (like the reference container) cannot show wall-clock
// engine speedup > 1; CPU time per query and the kernel ns/box comparison
// are still meaningful there, which is why this bench reports both.
#include <chrono>
#include <ctime>
#include <iostream>
#include <thread>
#include <vector>

#include "benchutil/experiment.h"
#include "benchutil/flags.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "benchutil/throughput.h"
#include "core/flat_index.h"
#include "data/query_generator.h"
#include "engine/query_engine.h"
#include "geometry/box_kernels.h"
#include "rtree/entry.h"
#include "rtree/node.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace {

using namespace flat;

struct KernelComparison {
  double scalar_ns_per_box = 0.0;
  double simd_ns_per_box = 0.0;
  double speedup = 0.0;
  uint64_t boxes_gated = 0;
  bool identical = true;
};

// Times the node-gate primitive both ways over the index's real object
// pages: the scalar AoS sweep the crawl used to run, and the compiled
// kernel path (SoA transpose + vector gate, exactly what the crawl does
// now). Validates hit-for-hit equality on every page/query pair.
KernelComparison CompareNodeGateKernels(const PageFile& file,
                                        const std::vector<Aabb>& queries,
                                        int repeats) {
  using Clock = std::chrono::steady_clock;
  KernelComparison cmp;

  std::vector<PageId> object_pages;
  for (PageId id = 0; id < file.page_count(); ++id) {
    if (file.category(id) == PageCategory::kObject) object_pages.push_back(id);
  }
  if (object_pages.empty() || queries.empty()) return cmp;

  SoaBoxes soa;
  std::vector<uint8_t> scalar_hits(256), simd_hits(256);

  // Correctness sweep first (not timed): every page against every query.
  for (PageId id : object_pages) {
    const char* page = file.Data(id);
    const uint16_t n = NodeView(page).count();
    soa.Assign(page + kNodeHeaderSize, sizeof(RTreeEntry), n);
    if (scalar_hits.size() < soa.padded_count()) {
      scalar_hits.resize(soa.padded_count());
      simd_hits.resize(soa.padded_count());
    }
    for (const Aabb& q : queries) {
      IntersectsBatchScalar(page + kNodeHeaderSize, sizeof(RTreeEntry), n, q,
                            scalar_hits.data());
      IntersectsSoa(soa, q, simd_hits.data());
      for (uint16_t i = 0; i < n; ++i) {
        if (scalar_hits[i] != simd_hits[i]) cmp.identical = false;
      }
    }
  }

  // Timed passes: best of `repeats`, whole-index sweeps per query.
  uint64_t boxes = 0;
  for (PageId id : object_pages) boxes += NodeView(file.Data(id)).count();
  cmp.boxes_gated = boxes * queries.size();

  double best_scalar = -1.0, best_simd = -1.0;
  uint64_t sink = 0;  // kept observable via the volatile store below
  for (int rep = 0; rep < repeats; ++rep) {
    auto t0 = Clock::now();
    for (const Aabb& q : queries) {
      for (PageId id : object_pages) {
        const char* page = file.Data(id);
        const uint16_t n = NodeView(page).count();
        IntersectsBatchScalar(page + kNodeHeaderSize, sizeof(RTreeEntry), n,
                              q, scalar_hits.data());
        sink += scalar_hits[0];
      }
    }
    const double scalar_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (best_scalar < 0 || scalar_s < best_scalar) best_scalar = scalar_s;

    t0 = Clock::now();
    for (const Aabb& q : queries) {
      for (PageId id : object_pages) {
        const char* page = file.Data(id);
        const uint16_t n = NodeView(page).count();
        soa.Assign(page + kNodeHeaderSize, sizeof(RTreeEntry), n);
        IntersectsSoa(soa, q, simd_hits.data());
        sink += simd_hits[0];
      }
    }
    const double simd_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (best_simd < 0 || simd_s < best_simd) best_simd = simd_s;
  }
  volatile uint64_t observed = sink;  // the gates must not be optimized out
  (void)observed;
  cmp.scalar_ns_per_box = best_scalar * 1e9 / cmp.boxes_gated;
  cmp.simd_ns_per_box = best_simd * 1e9 / cmp.boxes_gated;
  cmp.speedup =
      cmp.simd_ns_per_box > 0 ? cmp.scalar_ns_per_box / cmp.simd_ns_per_box
                              : 0.0;
  return cmp;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags(argc, argv);

  // The Figure-13 data set and workload: microcircuit neurons, SN-volume
  // range queries (see benchutil/experiment.h for the scaling rationale).
  Dataset dataset = NeuronDatasetAt(flags.Scaled(100000), flags.seed());
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, dataset.elements);

  RangeWorkloadParams workload;
  workload.count = flags.queries();  // default 200, as in the paper
  workload.volume_fraction = kSnVolumeFraction;
  workload.seed = flags.seed() + 1;
  std::vector<Aabb> boxes = GenerateRangeWorkload(dataset.bounds, workload);
  std::vector<Query> batch;
  batch.reserve(boxes.size());
  for (const Aabb& box : boxes) batch.push_back(Query::Range(box));

  const int repeats = static_cast<int>(flags.GetInt("repeats", 5));
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t max_threads = static_cast<size_t>(flags.GetInt(
      "threads-max", static_cast<int64_t>(std::max<size_t>(hw, 4))));
  std::vector<size_t> thread_counts;
  for (size_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  const bool json = flags.GetInt("json", 0) != 0;
  std::ostream& info = json ? std::cerr : std::cout;
  info << "# " << dataset.elements.size() << " neuron elements, "
       << batch.size() << " SN range queries (Fig. 13 workload), kernel ISA "
       << BoxKernelIsa() << ", " << hw << " hardware threads\n";
  if (hw < 2) {
    info << "# NOTE: single-core machine — engine wall-clock speedup is "
            "bounded by 1.0; CPU-time per query and kernel ns/box remain "
            "meaningful\n";
  }

  // CPU time per query over the serial loop (the hot-path figure the
  // tentpole targets: everything here is user-space compute, no real I/O).
  double cpu_us_per_query = 0.0;
  {
    const std::clock_t c0 = std::clock();
    const SerialReference warm = RunSerialReference(index, batch);
    const std::clock_t c1 = std::clock();
    (void)warm;
    cpu_us_per_query = 1e6 * static_cast<double>(c1 - c0) /
                       (CLOCKS_PER_SEC * std::max<size_t>(1, batch.size()));
  }

  const std::vector<ThroughputPoint> points =
      RunThroughputSweep(index, batch, thread_counts, repeats);

  // Node-gate kernel comparison over the real object pages, using a sample
  // of the workload's queries.
  std::vector<Aabb> gate_queries(
      boxes.begin(), boxes.begin() + std::min<size_t>(boxes.size(), 16));
  const KernelComparison kernels =
      CompareNodeGateKernels(file, gate_queries, repeats);

  if (json) {
    std::cout << "{\n"
              << "  \"bench\": \"query_throughput\",\n"
              << "  \"workload\": \"fig13_sn_range\",\n"
              << "  \"isa\": \"" << BoxKernelIsa() << "\",\n"
              << "  \"elements\": " << dataset.elements.size() << ",\n"
              << "  \"queries\": " << batch.size() << ",\n"
              << "  \"cpu_us_per_query\": " << cpu_us_per_query << ",\n"
              << "  \"node_gate\": {\"scalar_ns_per_box\": "
              << kernels.scalar_ns_per_box
              << ", \"simd_ns_per_box\": " << kernels.simd_ns_per_box
              << ", \"speedup\": " << kernels.speedup
              << ", \"boxes_gated\": " << kernels.boxes_gated
              << ", \"identical\": " << (kernels.identical ? "true" : "false")
              << "},\n"
              << "  \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const ThroughputPoint& p = points[i];
      std::cout << "    {\"threads\": " << p.threads
                << ", \"seconds\": " << p.best_seconds
                << ", \"queries_per_s\": " << p.queries_per_second
                << ", \"speedup\": " << p.speedup
                << ", \"page_reads\": " << p.total_reads
                << ", \"identical_to_serial\": "
                << (p.identical_to_serial ? "true" : "false") << "}"
                << (i + 1 < points.size() ? "," : "") << "\n";
    }
    std::cout << "  ]\n}\n";
  } else {
    std::cout << "CPU time per query (serial): " << cpu_us_per_query
              << " us\n"
              << "Node gate: scalar " << kernels.scalar_ns_per_box
              << " ns/box, " << BoxKernelIsa() << " "
              << kernels.simd_ns_per_box << " ns/box, speedup "
              << kernels.speedup << "x over " << kernels.boxes_gated
              << " boxes (" << (kernels.identical ? "identical" : "DIVERGED")
              << ")\n\n";
    Table table({"threads", "seconds", "queries/s", "speedup", "page reads",
                 "identical"});
    for (const ThroughputPoint& p : points) {
      table.AddRow({FormatNumber(static_cast<double>(p.threads), 0),
                    FormatNumber(p.best_seconds, 4),
                    FormatNumber(p.queries_per_second, 0),
                    FormatNumber(p.speedup, 2),
                    FormatNumber(static_cast<double>(p.total_reads), 0),
                    p.identical_to_serial ? "yes" : "NO"});
    }
    flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  }

  bool ok = kernels.identical;
  for (const ThroughputPoint& p : points) ok = ok && p.identical_to_serial;
  if (!ok) {
    std::cerr << "ERROR: result divergence (engine vs serial, or SIMD vs "
                 "scalar node gate)\n";
    return 1;
  }
  return 0;
}
