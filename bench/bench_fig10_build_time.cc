// Figure 10: time to index data sets of increasing density, for the three
// bulkloaded R-Trees and FLAT, with FLAT's phases (partitioning / finding
// neighbors) broken out. Paper: Hilbert < STR <= FLAT << PR-Tree, all
// linear-ish in the data size.
//
// Build-pipeline scaling mode: pass --threads-max=N to instead sweep FLAT's
// parallel build over thread counts 1,2,4,..,N on one neuron data set,
// emitting per-phase (partition / neighbor / write) timings as JSON and
// byte-comparing every parallel build against the serial one. Extra flags:
// --elements=N (data-set size, default 150000 * scale), --repeats=R (keep
// the best wall time, default 3), --json (JSON only, no table).
#include <cstring>
#include <iostream>

#include "benchutil/experiment.h"
#include "benchutil/reference.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "core/flat_index.h"
#include "storage/page_file.h"

namespace {

using namespace flat;

bool FilesIdentical(const PageFile& a, const PageFile& b) {
  if (a.page_size() != b.page_size() || a.page_count() != b.page_count()) {
    return false;
  }
  for (PageId id = 0; id < a.page_count(); ++id) {
    if (a.category(id) != b.category(id) ||
        std::memcmp(a.Data(id), b.Data(id), a.page_size()) != 0) {
      return false;
    }
  }
  return true;
}

struct SweepPoint {
  size_t threads = 0;
  FlatIndex::BuildStats best;  // run with the best total build time
  bool identical_to_serial = false;
};

double TotalSeconds(const FlatIndex::BuildStats& s) {
  return s.partition_seconds + s.neighbor_seconds + s.write_seconds;
}

int RunThreadSweep(const BenchFlags& flags) {
  const size_t elements = static_cast<size_t>(
      flags.GetInt("elements", static_cast<int64_t>(flags.Scaled(150000))));
  const size_t max_threads =
      static_cast<size_t>(flags.GetInt("threads-max", 4));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));

  Dataset dataset = NeuronDatasetAt(elements, flags.seed());

  // Serial reference file for the byte-identity check.
  PageFile reference_file;
  FlatIndex::Build(&reference_file, dataset.elements);

  std::vector<SweepPoint> points;
  for (size_t threads = 1; threads <= max_threads; threads *= 2) {
    SweepPoint point;
    point.threads = threads;
    point.identical_to_serial = true;
    for (int rep = 0; rep < repeats; ++rep) {
      PageFile file;
      FlatIndex::BuildStats stats;
      FlatIndex::Build(&file, dataset.elements,
                       FlatIndex::BuildOptions{threads}, &stats);
      if (rep == 0 || TotalSeconds(stats) < TotalSeconds(point.best)) {
        point.best = stats;
      }
      if (!FilesIdentical(reference_file, file)) {
        point.identical_to_serial = false;
      }
    }
    points.push_back(point);
  }

  if (flags.GetInt("json", 0) == 0) {
    std::cout << "FLAT parallel build: per-phase seconds vs. threads ("
              << elements << " neuron elements, best of " << repeats
              << " runs)\n\n";
    Table table({"threads", "partition s", "neighbors s", "write s", "total s",
                 "identical"});
    for (const SweepPoint& p : points) {
      table.AddRow({FormatNumber(static_cast<double>(p.threads), 0),
                    FormatNumber(p.best.partition_seconds, 4),
                    FormatNumber(p.best.neighbor_seconds, 4),
                    FormatNumber(p.best.write_seconds, 4),
                    FormatNumber(TotalSeconds(p.best), 4),
                    p.identical_to_serial ? "yes" : "NO"});
    }
    flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  } else {
    // JSON document on a clean stdout (the baseline files are recorded
    // from it).
    std::cout << "{\n"
              << "  \"bench\": \"fig10_build_time\",\n"
              << "  \"mode\": \"threads_sweep\",\n"
              << "  \"elements\": " << elements << ",\n"
              << "  \"partitions\": " << points.front().best.partitions
              << ",\n"
              << "  \"repeats\": " << repeats << ",\n"
              << "  \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      std::cout << "    {\"threads\": " << p.threads
                << ", \"partition_s\": " << p.best.partition_seconds
                << ", \"neighbor_s\": " << p.best.neighbor_seconds
                << ", \"write_s\": " << p.best.write_seconds
                << ", \"total_s\": " << TotalSeconds(p.best)
                << ", \"identical_to_serial\": "
                << (p.identical_to_serial ? "true" : "false") << "}"
                << (i + 1 < points.size() ? "," : "") << "\n";
    }
    std::cout << "  ]\n}\n";
  }

  for (const SweepPoint& p : points) {
    if (!p.identical_to_serial) {
      std::cerr << "ERROR: parallel build diverged from serial at "
                << p.threads << " threads\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags(argc, argv);

  if (flags.GetInt("threads-max", 0) > 0) return RunThreadSweep(flags);

  SweepOptions options;
  options.volume_fraction = 0.0;  // build-only
  options.kinds = {IndexKind::kHilbert, IndexKind::kStr, IndexKind::kPrTree,
                   IndexKind::kFlat};
  const auto points = RunDensitySweep(flags, options);

  std::cout << "Figure 10: index build time vs. density\n(paper ordering: "
            << paper::kFig10Ordering << ")\n\n";

  Table table({"elements", "Hilbert s", "STR s", "FLAT s", "FLAT partition s",
               "FLAT neighbors s", "PR-Tree s"});
  for (const DensityPoint& p : points) {
    const auto& flat_stats = p.by_kind.at(IndexKind::kFlat).flat_stats;
    table.AddRow(
        {DensityLabel(p.elements),
         FormatNumber(p.by_kind.at(IndexKind::kHilbert).build_seconds, 3),
         FormatNumber(p.by_kind.at(IndexKind::kStr).build_seconds, 3),
         FormatNumber(p.by_kind.at(IndexKind::kFlat).build_seconds, 3),
         FormatNumber(flat_stats.partition_seconds, 3),
         FormatNumber(flat_stats.neighbor_seconds, 3),
         FormatNumber(p.by_kind.at(IndexKind::kPrTree).build_seconds, 3)});
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::cout << "\nReproduction check: Hilbert fastest, FLAT within ~2x of "
               "STR, PR-Tree slowest\n(it sorts the data six times); all "
               "curves roughly linear in the element count.\n";
  return 0;
}
