// Figure 10: time to index data sets of increasing density, for the three
// bulkloaded R-Trees and FLAT, with FLAT's phases (partitioning / finding
// neighbors) broken out. Paper: Hilbert < STR <= FLAT << PR-Tree, all
// linear-ish in the data size.
#include <iostream>

#include "benchutil/experiment.h"
#include "benchutil/reference.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);

  SweepOptions options;
  options.volume_fraction = 0.0;  // build-only
  options.kinds = {IndexKind::kHilbert, IndexKind::kStr, IndexKind::kPrTree,
                   IndexKind::kFlat};
  const auto points = RunDensitySweep(flags, options);

  std::cout << "Figure 10: index build time vs. density\n(paper ordering: "
            << paper::kFig10Ordering << ")\n\n";

  Table table({"elements", "Hilbert s", "STR s", "FLAT s", "FLAT partition s",
               "FLAT neighbors s", "PR-Tree s"});
  for (const DensityPoint& p : points) {
    const auto& flat_stats = p.by_kind.at(IndexKind::kFlat).flat_stats;
    table.AddRow(
        {DensityLabel(p.elements),
         FormatNumber(p.by_kind.at(IndexKind::kHilbert).build_seconds, 3),
         FormatNumber(p.by_kind.at(IndexKind::kStr).build_seconds, 3),
         FormatNumber(p.by_kind.at(IndexKind::kFlat).build_seconds, 3),
         FormatNumber(flat_stats.partition_seconds, 3),
         FormatNumber(flat_stats.neighbor_seconds, 3),
         FormatNumber(p.by_kind.at(IndexKind::kPrTree).build_seconds, 3)});
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::cout << "\nReproduction check: Hilbert fastest, FLAT within ~2x of "
               "STR, PR-Tree slowest\n(it sorts the data six times); all "
               "curves roughly linear in the element count.\n";
  return 0;
}
