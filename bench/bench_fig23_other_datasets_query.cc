// Figure 23 (table): query execution time and FLAT speed-up on the other
// scientific data sets, for "small volume queries" (5e-7 % of the data-set
// volume in the paper) and "large volume queries" (5e-4 %). Query volumes
// are scaled like the SN/LSS benchmarks (see experiment.h). Paper: FLAT is
// 21-58 % faster on small queries, 6-44 % on large ones.
#include <iostream>

#include "benchutil/contender.h"
#include "benchutil/experiment.h"
#include "benchutil/flags.h"
#include "benchutil/reference.h"
#include "benchutil/table.h"
#include "data/mesh_generator.h"
#include "data/nbody_generator.h"
#include "data/query_generator.h"

namespace {

using namespace flat;

std::vector<Dataset> MakeOtherDatasets(const BenchFlags& flags) {
  std::vector<Dataset> datasets;
  for (auto [name, count, clusters] :
       {std::tuple<const char*, size_t, size_t>{"Nuage (dark matter)",
                                                168000, 96},
        {"Nuage (stars)", 168000, 48},
        {"Nuage (gas)", 124000, 64}}) {
    NBodyParams params;
    params.count = flags.Scaled(count);
    params.clusters = clusters;
    params.seed = flags.seed() + datasets.size();
    Dataset d = GenerateNBody(params);
    d.name = name;
    datasets.push_back(std::move(d));
  }
  {
    MeshParams params;
    params.kind = MeshKind::kFoldedSheet;
    params.target_triangles = flags.Scaled(173000);
    params.seed = flags.seed() + 10;
    Dataset d = GenerateMesh(params);
    d.name = "Brain Mesh";
    datasets.push_back(std::move(d));
  }
  {
    MeshParams params;
    params.kind = MeshKind::kStatue;
    params.target_triangles = flags.Scaled(252000);
    params.seed = flags.seed() + 11;
    Dataset d = GenerateMesh(params);
    d.name = "Lucy Statue";
    datasets.push_back(std::move(d));
  }
  return datasets;
}

double RunSeconds(const Contender& contender, const Dataset& dataset,
                  double volume_fraction, const BenchFlags& flags) {
  RangeWorkloadParams wp;
  wp.count = flags.queries();
  wp.volume_fraction = volume_fraction;
  wp.seed = flags.seed() + 99;
  DiskModel disk;
  WorkloadResult r = RunWorkload(
      contender, GenerateRangeWorkload(dataset.bounds, wp), disk);
  return r.simulated_ms / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);

  std::cout << "Figure 23: execution time and FLAT speed-up on other data "
               "sets\n(paper: 21-58% speed-up on small, 6-44% on large "
               "volume queries)\n\n";
  Table table({"dataset", "small FLAT s", "small PR s", "small speedup",
               "paper", "large FLAT s", "large PR s", "large speedup",
               "paper"});
  size_t row = 0;
  for (Dataset& dataset : MakeOtherDatasets(flags)) {
    Contender flat = BuildContender(IndexKind::kFlat, dataset.elements);
    Contender pr = BuildContender(IndexKind::kPrTree, dataset.elements);

    const double small_flat = RunSeconds(flat, dataset, kSnVolumeFraction,
                                         flags);
    const double small_pr = RunSeconds(pr, dataset, kSnVolumeFraction,
                                       flags);
    const double large_flat = RunSeconds(flat, dataset, kLssVolumeFraction,
                                         flags);
    const double large_pr = RunSeconds(pr, dataset, kLssVolumeFraction,
                                       flags);
    const auto& paper_row = paper::kFig23[row++];
    auto speedup = [](double flat_s, double pr_s) {
      return FormatNumber((1.0 - flat_s / pr_s) * 100.0, 0) + "%";
    };
    table.AddRow({dataset.name, FormatNumber(small_flat, 2),
                  FormatNumber(small_pr, 2), speedup(small_flat, small_pr),
                  FormatNumber(paper_row.small_speedup_pct, 0) + "%",
                  FormatNumber(large_flat, 2), FormatNumber(large_pr, 2),
                  speedup(large_flat, large_pr),
                  FormatNumber(paper_row.large_speedup_pct, 0) + "%"});
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::cout << "\nReproduction check: FLAT at least matches the PR-Tree on "
               "every data set,\nwith larger gains on the small-volume "
               "query set.\n";
  return 0;
}
