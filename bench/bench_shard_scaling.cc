// Scatter-gather scaling of the ShardedFlatStore: build time and batch
// query throughput vs. shard count, with every sharded run validated
// bit-for-bit (canonical sorted order) against one unsharded FlatIndex.
//
// Flags: --scale --queries --seed --csv --threads=N (store build + engine
// workers, default 4) --shards-max=N (sweep 1,2,4,...,N; default 8)
// --json (emit the sweep as a JSON document, e.g. for a BENCH_shard.json
// baseline). Exits non-zero if any sharded result diverges.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "benchutil/flags.h"
#include "benchutil/table.h"
#include "core/flat_index.h"
#include "data/query_generator.h"
#include "data/uniform_generator.h"
#include "engine/query_engine.h"
#include "shard/sharded_flat_store.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

int main(int argc, char** argv) {
  using namespace flat;
  using Clock = std::chrono::steady_clock;
  BenchFlags flags(argc, argv);

  UniformBoxParams params;
  params.count = flags.Scaled(100000);
  params.seed = flags.seed();
  Dataset dataset = GenerateUniformBoxes(params);

  RangeWorkloadParams workload;
  workload.count = static_cast<size_t>(flags.GetInt("queries", 500));
  workload.volume_fraction = 2e-6;
  workload.seed = flags.seed() + 1;
  const std::vector<Aabb> boxes =
      GenerateRangeWorkload(dataset.bounds, workload);
  std::vector<Query> batch;
  batch.reserve(boxes.size());
  for (const Aabb& box : boxes) batch.push_back(Query::Range(box));

  const size_t threads =
      static_cast<size_t>(flags.GetInt("threads", 4));
  const size_t shards_max =
      static_cast<size_t>(flags.GetInt("shards-max", 8));
  std::vector<size_t> shard_counts;
  for (size_t k = 1; k <= shards_max; k *= 2) shard_counts.push_back(k);

  // Unsharded reference: canonical (sorted) result per query, cold cache.
  PageFile reference_file;
  FlatIndex reference = FlatIndex::Build(&reference_file, dataset.elements);
  std::vector<std::vector<uint64_t>> expected(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    IoStats io;
    BufferPool pool(&reference_file, &io);
    reference.RangeQuery(&pool, batch[i].box, &expected[i]);
    std::sort(expected[i].begin(), expected[i].end());
  }

  std::ostream& info = flags.GetInt("json", 0) != 0 ? std::cerr : std::cout;
  info << "# " << dataset.elements.size() << " uniform elements, "
       << batch.size() << " range queries, " << threads
       << " worker threads, cold cache per sub-query\n";

  struct Point {
    size_t target_shards = 0;
    size_t actual_shards = 0;
    double build_seconds = 0.0;
    double query_seconds = 0.0;
    uint64_t page_reads = 0;
    bool identical = true;
  };
  std::vector<Point> points;

  for (size_t k : shard_counts) {
    Point p;
    p.target_shards = k;

    const auto t_build = Clock::now();
    ShardedFlatStore::BuildStats build_stats;
    ShardedFlatStore store = ShardedFlatStore::Build(
        dataset.elements, {.num_shards = k, .num_threads = threads},
        &build_stats);
    p.build_seconds =
        std::chrono::duration<double>(Clock::now() - t_build).count();
    p.actual_shards = store.shard_count();

    BatchStats stats;
    std::vector<QueryResult> results = store.RunBatch(batch, &stats);
    p.query_seconds = stats.wall_seconds;
    p.page_reads = stats.io.TotalReads();
    for (size_t i = 0; i < batch.size(); ++i) {
      if (results[i].ids != expected[i]) {
        p.identical = false;
        break;
      }
    }
    points.push_back(p);
  }

  if (flags.GetInt("json", 0) != 0) {
    std::cout << "{\n"
              << "  \"bench\": \"shard_scaling\",\n"
              << "  \"elements\": " << dataset.elements.size() << ",\n"
              << "  \"queries\": " << batch.size() << ",\n"
              << "  \"threads\": " << threads << ",\n"
              << "  \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::cout << "    {\"target_shards\": " << p.target_shards
                << ", \"shards\": " << p.actual_shards
                << ", \"build_seconds\": " << p.build_seconds
                << ", \"query_seconds\": " << p.query_seconds
                << ", \"page_reads\": " << p.page_reads
                << ", \"identical_to_unsharded\": "
                << (p.identical ? "true" : "false") << "}"
                << (i + 1 < points.size() ? "," : "") << "\n";
    }
    std::cout << "  ]\n}\n";
  } else {
    Table table({"target K", "shards", "build s", "query s", "page reads",
                 "identical"});
    for (const Point& p : points) {
      table.AddRow({FormatNumber(static_cast<double>(p.target_shards), 0),
                    FormatNumber(static_cast<double>(p.actual_shards), 0),
                    FormatNumber(p.build_seconds, 4),
                    FormatNumber(p.query_seconds, 4),
                    FormatNumber(static_cast<double>(p.page_reads), 0),
                    p.identical ? "yes" : "NO"});
    }
    flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  }

  for (const Point& p : points) {
    if (!p.identical) {
      std::cerr << "ERROR: sharded results diverged from unsharded at K="
                << p.target_shards << "\n";
      return 1;
    }
  }
  return 0;
}
