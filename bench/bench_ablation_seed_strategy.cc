// Ablation: is the crawl even necessary, given the seed tree already
// indexes every page MBR? Compares FLAT's two-phase plan (seed once, then
// crawl neighbor pointers) against using the seed structure as a plain
// R-Tree (hierarchical range traversal over the metadata records). The
// paper's Section IV argues the hierarchical plan re-pays overlap and
// non-leaf I/O that the crawl avoids.
#include <iostream>

#include "benchutil/experiment.h"
#include "benchutil/flags.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "core/flat_index.h"
#include "data/query_generator.h"
#include "storage/buffer_pool.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);

  std::cout << "Ablation: seed+crawl vs hierarchical seed-tree scan\n\n";
  Table table({"elements", "workload", "crawl reads/q", "scan reads/q",
               "crawl seed-internal/q", "scan seed-internal/q"});
  for (size_t count : DensitySweepCounts(flags)) {
    Dataset dataset = NeuronDatasetAt(count, flags.seed());
    PageFile file;
    FlatIndex index = FlatIndex::Build(&file, dataset.elements);

    for (auto [label, fraction] :
         {std::pair<const char*, double>{"SN", kSnVolumeFraction},
          {"LSS", kLssVolumeFraction}}) {
      RangeWorkloadParams wp;
      wp.count = flags.queries();
      wp.volume_fraction = fraction;
      wp.seed = flags.seed() + 1;
      auto queries = GenerateRangeWorkload(dataset.bounds, wp);

      IoStats crawl_io, scan_io;
      BufferPool crawl_pool(&file, &crawl_io);
      BufferPool scan_pool(&file, &scan_io);
      size_t crawl_results = 0, scan_results = 0;
      for (const Aabb& q : queries) {
        std::vector<uint64_t> got;
        crawl_pool.Clear();
        index.RangeQuery(&crawl_pool, q, &got);
        crawl_results += got.size();
        got.clear();
        scan_pool.Clear();
        index.RangeQueryViaSeedScan(&scan_pool, q, &got);
        scan_results += got.size();
      }
      if (crawl_results != scan_results) {
        std::cerr << "BUG: plans disagree (" << crawl_results << " vs "
                  << scan_results << ")\n";
        return 1;
      }
      const double q = static_cast<double>(queries.size());
      table.AddRow(
          {DensityLabel(count), label,
           FormatNumber(crawl_io.TotalReads() / q, 1),
           FormatNumber(scan_io.TotalReads() / q, 1),
           FormatNumber(crawl_io.ReadsIn(PageCategory::kSeedInternal) / q, 2),
           FormatNumber(scan_io.ReadsIn(PageCategory::kSeedInternal) / q,
                        2)});
    }
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::cout
      << "\nExpected: both plans return identical results. The crawl reads "
         "fewer\nseed-internal pages per query, with the gap widening as "
         "density grows — the\nhierarchy cost the paper's Section IV "
         "argues against. At this 1/1000 scale the\nseed tree is only 2-4 "
         "levels deep, so the plain scan stays competitive in total\nreads; "
         "at the paper's scale (5.3M metadata records, two more levels) the "
         "scan\npays overlap and non-leaf I/O per level and the crawl wins "
         "outright.\n";
  return 0;
}
