// Throughput scaling of the parallel batch QueryEngine: queries/sec vs.
// worker threads on the uniform data set, with every parallel run validated
// bit-for-bit against serial execution.
//
// Flags: --scale --queries --seed --csv --threads-max=N --shared (use the
// shared striped cache instead of cold-per-query pools) --json (emit the
// sweep as a JSON document, e.g. for the BENCH_crawl.json baseline).
#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "benchutil/flags.h"
#include "benchutil/table.h"
#include "benchutil/throughput.h"
#include "core/flat_index.h"
#include "data/query_generator.h"
#include "data/uniform_generator.h"
#include "engine/query_engine.h"
#include "storage/page_file.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);

  UniformBoxParams params;
  params.count = flags.Scaled(100000);
  params.seed = flags.seed();
  Dataset dataset = GenerateUniformBoxes(params);

  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, dataset.elements);

  RangeWorkloadParams workload;
  // Default to a larger batch than the paper's 200 queries: throughput
  // needs enough work per thread to measure; --queries overrides.
  workload.count = static_cast<size_t>(flags.GetInt("queries", 1000));
  workload.volume_fraction = 2e-6;
  workload.seed = flags.seed() + 1;
  std::vector<Aabb> boxes = GenerateRangeWorkload(dataset.bounds, workload);
  std::vector<Query> batch;
  batch.reserve(boxes.size());
  for (const Aabb& box : boxes) batch.push_back(Query::Range(box));

  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t max_threads = static_cast<size_t>(
      flags.GetInt("threads-max", static_cast<int64_t>(std::max<size_t>(hw, 8))));
  std::vector<size_t> thread_counts;
  for (size_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  const QueryEngine::CacheMode mode =
      flags.GetInt("shared", 0) != 0 ? QueryEngine::CacheMode::kSharedStriped
                                     : QueryEngine::CacheMode::kColdPerQuery;

  // In --json mode stdout carries only the JSON document.
  std::ostream& info =
      flags.GetInt("json", 0) != 0 ? std::cerr : std::cout;
  info << "# " << dataset.elements.size() << " uniform elements, "
       << batch.size() << " range queries, "
       << (mode == QueryEngine::CacheMode::kSharedStriped
               ? "shared striped cache"
               : "cold cache per query")
       << ", " << hw << " hardware threads\n";
  if (hw < 2) {
    info << "# NOTE: single-core machine — wall-clock speedup is bounded "
            "by 1.0; the 'identical' column still validates the engine\n";
  }

  std::vector<ThroughputPoint> points =
      RunThroughputSweep(index, batch, thread_counts, /*repeats=*/3, mode);

  if (flags.GetInt("json", 0) != 0) {
    std::cout << "{\n"
              << "  \"bench\": \"scaling_threads\",\n"
              << "  \"elements\": " << dataset.elements.size() << ",\n"
              << "  \"queries\": " << batch.size() << ",\n"
              << "  \"cache_mode\": \""
              << (mode == QueryEngine::CacheMode::kSharedStriped ? "shared"
                                                                 : "cold")
              << "\",\n"
              << "  \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const ThroughputPoint& p = points[i];
      std::cout << "    {\"threads\": " << p.threads
                << ", \"seconds\": " << p.best_seconds
                << ", \"queries_per_s\": " << p.queries_per_second
                << ", \"speedup\": " << p.speedup
                << ", \"page_reads\": " << p.total_reads
                << ", \"identical_to_serial\": "
                << (p.identical_to_serial ? "true" : "false") << "}"
                << (i + 1 < points.size() ? "," : "") << "\n";
    }
    std::cout << "  ]\n}\n";
  } else {
    Table table({"threads", "seconds", "queries/s", "speedup", "page reads",
                 "identical"});
    for (const ThroughputPoint& p : points) {
      table.AddRow({FormatNumber(static_cast<double>(p.threads), 0),
                    FormatNumber(p.best_seconds, 4),
                    FormatNumber(p.queries_per_second, 0),
                    FormatNumber(p.speedup, 2),
                    FormatNumber(static_cast<double>(p.total_reads), 0),
                    p.identical_to_serial ? "yes" : "NO"});
    }
    flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  }

  for (const ThroughputPoint& p : points) {
    if (!p.identical_to_serial) {
      std::cerr << "ERROR: parallel results diverged from serial at "
                << p.threads << " threads\n";
      return 1;
    }
  }
  return 0;
}
