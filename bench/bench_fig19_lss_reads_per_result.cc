// Figure 19: page reads per result element for the LSS benchmark (200 range queries of fixed
// volume, random location and aspect ratio, cold cache per query).
// Paper claim: FLAT per-result reads decrease with density; R-Trees' grow.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);
  SweepOptions options;
  options.volume_fraction = kLssVolumeFraction;
  options.kinds = bench::kLineup;
  const auto points = RunDensitySweep(flags, options);
  std::cout << "Figure 19: page reads per result element, LSS benchmark\n"
            << "(paper: FLAT per-result reads decrease with density; R-Trees' grow)\n\n";
  bench::PrintPerResult(points, flags);
  return 0;
}
