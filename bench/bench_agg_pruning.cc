// Aggregate pruning (rtree/aggregates.h): page reads for RangeCount with the
// subtree-count sidecar vs. the exact non-pruned path, on the Fig-12 neuron
// data set at 512-byte pages (small pages deepen the seed hierarchy, the
// regime the paper's page-read accounting cares about).
//
// Two workloads, both random location and aspect ratio like Figure 12:
//   * "sn": the SN boxes (volume fraction 5e-6) — far below partition size,
//     so covered-node pruning rarely triggers; the gate here is exactness.
//   * "viewport": large boxes (75% and 90% of the universe volume) — the
//     covered regime the aggregates exist for, where interior subtrees
//     contribute stored counts without a single page read below them.
//
// --json emits the BENCH_aggregate.json baseline and self-validates
// (non-zero exit on violation):
//   * pruned RangeCount equals the non-pruned count on every query of both
//     workloads, and RangeQueryViaSeedScan returns identical id sequences
//     (the covered batch-copy path must be bit-identical, not just set-equal);
//   * the pruned build never reads more pages than the plain build on the
//     viewport workload, and its total reads there shrink >= 3x;
//   * sharded stores (K=4) agree with the non-pruned store before, during,
//     and after overlay churn, and again after compaction;
//   * a store reloaded from disk keeps its sidecars: per-shard aggregates
//     are present and a universe count answers from the catalog alone —
//     zero page reads.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "benchutil/experiment.h"
#include "benchutil/flags.h"
#include "benchutil/sweep.h"
#include "core/flat_index.h"
#include "data/query_generator.h"
#include "geometry/rng.h"
#include "shard/sharded_flat_store.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"
#include "storage/page_file.h"

namespace {

using namespace flat;

// Small pages (the smallest that fits the neuron metadata fan-out): ~31
// entries per object page, so the 800k-element point has a fine partition
// grid and viewport boxes span dozens of partitions per axis —
// interior/boundary ratios large enough to measure.
constexpr uint32_t kPageSize = 1024;

struct RunStats {
  uint64_t total_reads = 0;
  uint64_t seed_internal_reads = 0;
  uint64_t seed_leaf_reads = 0;
  uint64_t object_reads = 0;
  std::vector<uint64_t> counts;
};

RunStats RunCounts(const FlatIndex& index, const PageFile& file,
                   const std::vector<Aabb>& queries) {
  IoStats io;
  BufferPool pool(&file, &io);
  RunStats run;
  run.counts.reserve(queries.size());
  for (const Aabb& q : queries) {
    pool.Clear();  // cold cache per query, as in the paper
    run.counts.push_back(index.RangeCount(&pool, q));
  }
  run.total_reads = io.TotalReads();
  run.seed_internal_reads = io.ReadsIn(PageCategory::kSeedInternal);
  run.seed_leaf_reads = io.ReadsIn(PageCategory::kSeedLeaf);
  run.object_reads = io.ReadsIn(PageCategory::kObject);
  return run;
}

bool SeedScanIdsIdentical(const FlatIndex& plain, const PageFile& plain_file,
                          const FlatIndex& pruned, const PageFile& pruned_file,
                          const std::vector<Aabb>& queries) {
  IoStats io;
  BufferPool plain_pool(&plain_file, &io);
  BufferPool pruned_pool(&pruned_file, &io);
  std::vector<uint64_t> want, got;
  for (const Aabb& q : queries) {
    want.clear();
    got.clear();
    plain.RangeQueryViaSeedScan(&plain_pool, q, &want);
    pruned.RangeQueryViaSeedScan(&pruned_pool, q, &got);
    if (want != got) return false;
  }
  return true;
}

void PrintReads(const char* key, const RunStats& run, const char* tail) {
  std::cout << "     \"" << key << "\": {\"total_reads\": " << run.total_reads
            << ", \"seed_internal_reads\": " << run.seed_internal_reads
            << ", \"seed_leaf_reads\": " << run.seed_leaf_reads
            << ", \"object_reads\": " << run.object_reads << "}" << tail;
}

/// The sharded oracle: pruned vs. plain store counts on every query, at one
/// lifecycle stage. Returns false on the first divergence.
bool ShardedCountsAgree(const ShardedFlatStore& pruned,
                        const ShardedFlatStore& plain,
                        const std::vector<Aabb>& queries) {
  for (const Aabb& q : queries) {
    if (pruned.RangeCount(q) != plain.RangeCount(q)) return false;
    if (pruned.RangeQuery(q) != plain.RangeQuery(q)) return false;
  }
  return true;
}

int RunGates(const BenchFlags& flags) {
  const size_t elements = flags.Scaled(800000);
  const size_t n_queries = std::max<size_t>(flags.queries() / 2, 8);
  std::cerr << "# aggregate pruning, " << elements << " elements, "
            << n_queries << " SN + " << n_queries
            << " viewport queries, cold cache per query\n";

  Dataset dataset = NeuronDatasetAt(elements, flags.seed());

  RangeWorkloadParams sn;
  sn.count = n_queries;
  sn.volume_fraction = kSnVolumeFraction;
  sn.seed = flags.seed() + 1;
  const std::vector<Aabb> sn_queries =
      GenerateRangeWorkload(dataset.bounds, sn);

  // Viewport boxes at two large volume fractions; a final box covering every
  // element exercises the O(height) extreme (the union of element MBRs can
  // poke past dataset.bounds, so cover that union, not the nominal bounds).
  RangeWorkloadParams big;
  big.count = n_queries / 2;
  big.volume_fraction = 0.75;
  big.seed = flags.seed() + 2;
  std::vector<Aabb> viewport = GenerateRangeWorkload(dataset.bounds, big);
  big.count = n_queries - big.count - 1;
  big.volume_fraction = 0.9;
  big.seed = flags.seed() + 3;
  for (const Aabb& q : GenerateRangeWorkload(dataset.bounds, big)) {
    viewport.push_back(q);
  }
  Aabb universe;
  for (const RTreeEntry& e : dataset.elements) {
    universe.ExpandToInclude(e.box);
  }
  universe = Aabb(universe.lo() - Vec3(1, 1, 1), universe.hi() + Vec3(1, 1, 1));
  viewport.push_back(universe);

  PageFile plain_file(kPageSize), pruned_file(kPageSize);
  FlatIndex::BuildOptions with;
  with.aggregate_counts = true;
  const FlatIndex plain = FlatIndex::Build(&plain_file, dataset.elements);
  const FlatIndex pruned =
      FlatIndex::Build(&pruned_file, dataset.elements, with);
  if (!pruned.has_aggregates()) {
    std::cerr << "ERROR: aggregate build produced no sidecar\n";
    return 1;
  }

  const RunStats sn_plain = RunCounts(plain, plain_file, sn_queries);
  const RunStats sn_pruned = RunCounts(pruned, pruned_file, sn_queries);
  const RunStats vp_plain = RunCounts(plain, plain_file, viewport);
  const RunStats vp_pruned = RunCounts(pruned, pruned_file, viewport);

  const bool counts_identical = sn_plain.counts == sn_pruned.counts &&
                                vp_plain.counts == vp_pruned.counts;
  const bool seedscan_identical =
      SeedScanIdsIdentical(plain, plain_file, pruned, pruned_file,
                           sn_queries) &&
      SeedScanIdsIdentical(plain, plain_file, pruned, pruned_file, viewport);
  const bool reads_bounded = vp_pruned.total_reads <= vp_plain.total_reads;
  const double viewport_reduction =
      vp_pruned.total_reads > 0
          ? static_cast<double>(vp_plain.total_reads) / vp_pruned.total_reads
          : 0.0;

  // Sharded lifecycle oracle at a smaller density point: pruned vs. plain
  // store through overlay churn, compaction, and a disk round-trip.
  const size_t shard_elements = flags.Scaled(60000);
  Dataset shard_dataset = NeuronDatasetAt(shard_elements, flags.seed() + 4);
  RangeWorkloadParams shard_workload;
  shard_workload.count = std::max<size_t>(n_queries / 2, 8);
  shard_workload.volume_fraction = 0.1;
  shard_workload.seed = flags.seed() + 5;
  std::vector<Aabb> shard_queries =
      GenerateRangeWorkload(shard_dataset.bounds, shard_workload);
  Aabb shard_universe;
  for (const RTreeEntry& e : shard_dataset.elements) {
    shard_universe.ExpandToInclude(e.box);
  }
  shard_universe = Aabb(shard_universe.lo() - Vec3(1, 1, 1),
                        shard_universe.hi() + Vec3(1, 1, 1));
  shard_queries.push_back(shard_universe);

  ShardedFlatStore::Options pruned_options;
  pruned_options.num_shards = 4;
  pruned_options.page_size = kPageSize;
  pruned_options.aggregate_counts = true;
  ShardedFlatStore sharded_pruned =
      ShardedFlatStore::Build(shard_dataset.elements, pruned_options);
  ShardedFlatStore::Options plain_options;
  plain_options.num_shards = 4;
  plain_options.page_size = kPageSize;
  ShardedFlatStore sharded_plain =
      ShardedFlatStore::Build(shard_dataset.elements, plain_options);

  bool sharded_identical =
      ShardedCountsAgree(sharded_pruned, sharded_plain, shard_queries);

  // Churn: inserts across the volume plus erases of existing ids open an
  // overlay window, which must disable the covered-shard shortcut without
  // disturbing exactness.
  Rng rng(flags.seed() + 6);
  for (size_t i = 0; i < 200; ++i) {
    const Vec3 corner = rng.PointIn(shard_dataset.bounds);
    const RTreeEntry fresh{
        Aabb(corner, corner + Vec3(0.5f, 0.5f, 0.5f)),
        10000000 + i};
    sharded_pruned.Insert(fresh);
    sharded_plain.Insert(fresh);
    const uint64_t victim = shard_dataset.elements[i * 97].id;
    sharded_pruned.Erase(victim);
    sharded_plain.Erase(victim);
  }
  sharded_identical =
      sharded_identical &&
      ShardedCountsAgree(sharded_pruned, sharded_plain, shard_queries);
  sharded_pruned.Compact();
  sharded_plain.Compact();
  sharded_identical =
      sharded_identical &&
      ShardedCountsAgree(sharded_pruned, sharded_plain, shard_queries);

  // Disk round-trip: sidecars must survive Save/Load and keep the shortcut.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "bench_agg_pruning";
  fs::remove_all(dir);
  sharded_pruned.Save(dir.string());
  bool loaded_identical = true;
  uint64_t loaded_universe_reads = 0;
  {
    ShardedFlatStore loaded = ShardedFlatStore::Load(
        dir.string(), /*num_threads=*/1, ShardedFlatStore::LoadBackend::kDisk);
    for (size_t s = 0; s < loaded.shard_count(); ++s) {
      loaded_identical =
          loaded_identical && loaded.shard_index(s).has_aggregates();
    }
    for (const Aabb& q : shard_queries) {
      loaded_identical =
          loaded_identical && loaded.RangeCount(q) == sharded_plain.RangeCount(q);
    }
    IoStats io;
    loaded.RangeCount(shard_universe, &io);
    loaded_universe_reads = io.TotalReads();
  }
  fs::remove_all(dir);

  std::cout << "{\n"
            << "  \"bench\": \"agg_pruning\",\n"
            << "  \"workload\": \"sn_and_viewport_range_counts\",\n"
            << "  \"elements\": " << dataset.elements.size() << ",\n"
            << "  \"page_size\": " << kPageSize << ",\n"
            << "  \"queries_per_workload\": " << n_queries << ",\n"
            << "  \"sn\": {\n";
  PrintReads("plain", sn_plain, ",\n");
  PrintReads("pruned", sn_pruned, "\n");
  std::cout << "  },\n"
            << "  \"viewport\": {\n";
  PrintReads("plain", vp_plain, ",\n");
  PrintReads("pruned", vp_pruned, "\n");
  std::cout << "  },\n"
            << "  \"viewport_read_reduction\": " << viewport_reduction << ",\n"
            << "  \"counts_identical\": "
            << (counts_identical ? "true" : "false") << ",\n"
            << "  \"seedscan_ids_identical\": "
            << (seedscan_identical ? "true" : "false") << ",\n"
            << "  \"pruned_reads_bounded\": "
            << (reads_bounded ? "true" : "false") << ",\n"
            << "  \"sharded_lifecycle_identical\": "
            << (sharded_identical ? "true" : "false") << ",\n"
            << "  \"loaded_sidecars_identical\": "
            << (loaded_identical ? "true" : "false") << ",\n"
            << "  \"loaded_universe_reads\": " << loaded_universe_reads << "\n"
            << "}\n";

  if (!counts_identical) {
    std::cerr << "ERROR: pruned RangeCount diverged from the exact path\n";
    return 1;
  }
  if (!seedscan_identical) {
    std::cerr << "ERROR: seed-scan ids diverged between the builds\n";
    return 1;
  }
  if (!reads_bounded) {
    std::cerr << "ERROR: the pruned build read more viewport pages than the "
                 "plain build\n";
    return 1;
  }
  if (viewport_reduction < 3.0) {
    std::cerr << "ERROR: viewport read reduction " << viewport_reduction
              << "x below the 3x gate\n";
    return 1;
  }
  if (!sharded_identical) {
    std::cerr << "ERROR: sharded pruned store diverged over the overlay "
                 "lifecycle\n";
    return 1;
  }
  if (!loaded_identical) {
    std::cerr << "ERROR: disk round-trip lost or corrupted the aggregate "
                 "sidecars\n";
    return 1;
  }
  if (loaded_universe_reads != 0) {
    std::cerr << "ERROR: loaded store read " << loaded_universe_reads
              << " pages for a fully covered count (want 0)\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);
  const int status = RunGates(flags);
  if (flags.GetInt("json", 0) == 0) {
    // The human-readable run shares the gate path; the JSON above doubles as
    // the report.
    std::cerr << (status == 0 ? "aggregate pruning gates: OK\n"
                              : "aggregate pruning gates: FAILED\n");
  }
  return status;
}
