// Ablation: bulkload packing quality. Compares all five bulkloading
// strategies (STR, Hilbert, Morton/Z-order, PR-Tree, TGS) on leaf
// tightness (total leaf MBR volume — an overlap proxy), build time, and SN
// query I/O. Section V-B.3 justifies STR-based object-page packing because
// "the partitions STR produces preserve spatial locality better than
// Z-order or Hilbert-packing"; this bench puts numbers on that claim for
// our data.
#include <iostream>

#include "benchutil/contender.h"
#include "benchutil/experiment.h"
#include "benchutil/flags.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "data/query_generator.h"

int main(int argc, char** argv) {
  using namespace flat;
  BenchFlags flags(argc, argv);
  const size_t count = flags.Scaled(200000);
  Dataset dataset = NeuronDatasetAt(count, flags.seed());

  RangeWorkloadParams wp;
  wp.count = flags.queries();
  wp.volume_fraction = kSnVolumeFraction;
  wp.seed = flags.seed() + 1;
  auto queries = GenerateRangeWorkload(dataset.bounds, wp);
  DiskModel disk;

  std::cout << "Ablation: bulkload packing quality (" << count
            << " elements, SN workload)\n\n";
  Table table({"strategy", "build s", "leaf volume sum", "height",
               "SN reads/q"});
  for (IndexKind kind : {IndexKind::kStr, IndexKind::kHilbert,
                         IndexKind::kMorton, IndexKind::kPrTree,
                         IndexKind::kTgs}) {
    Contender contender = BuildContender(kind, dataset.elements);
    auto stats = contender.rtree.ComputeStats();
    WorkloadResult r = RunWorkload(contender, queries, disk);
    table.AddRow({IndexKindName(kind),
                  FormatNumber(contender.build_seconds, 2),
                  FormatNumber(stats.total_leaf_volume, 0),
                  FormatNumber(static_cast<double>(stats.height), 0),
                  FormatNumber(static_cast<double>(r.io.TotalReads()) /
                                   queries.size(), 1)});
  }
  flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::cout << "\nExpected: Morton is looser than Hilbert (curve jumps); "
               "STR/Hilbert tightest;\nTGS competitive but slowest of the "
               "packing strategies to build after PR.\n";
  return 0;
}
