// Fail-soft execution under deterministic fault schedules: the Fig-12 SN
// range workload (neuron data set) executed through the QueryEngine while
// the storage layer misbehaves on schedule — EINTR, short reads, injected
// latency, transient and permanent read errors — plus the per-query control
// plane (deadlines, cancellation, I/O budgets) and admission control.
//
// Self-validating (the CI bench-smoke contract): every pass runs its gates
// and the binary exits non-zero on any violation. The gates:
//   transient  — every query kOk, ids bit-identical to the clean baseline,
//                batch IoRetries exactly equal to the schedule's fired
//                transient-fault count.
//   permanent  — zero crashes; every query either kOk with bit-identical
//                ids or kIoError with a non-empty error message; at least
//                one query fails (the schedule targets a page the workload
//                reads).
//   disk       — the same transient schedule replayed against a DiskPageFile
//                reopened from disk in pread mode: bit-identical results,
//                retry counters matching the schedule.
//   controls   — an expired deadline stops every query with
//                kDeadlineExceeded and at most one page read; a pre-set
//                cancel token yields kCancelled; a tiny I/O budget yields
//                kOk (query finished under budget) or kBudgetExceeded with
//                reads bounded near the budget.
//   admission  — with max_queued_queries=N/2, the admitted head is
//                bit-identical kOk and the tail is exactly kRejected with
//                zero reads.
//
// Flags: --scale --queries --seed --threads=N --json (the BENCH_robustness
// baseline).
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "benchutil/experiment.h"
#include "benchutil/flags.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "core/flat_index.h"
#include "core/query_control.h"
#include "data/query_generator.h"
#include "engine/query_engine.h"
#include "storage/buffer_pool.h"
#include "storage/disk_page_file.h"
#include "storage/fault_injection.h"
#include "storage/io_stats.h"
#include "storage/page_file.h"
#include "storage/persistence.h"

namespace {

using namespace flat;

struct PassOutcome {
  std::string name;
  uint64_t ok = 0;
  uint64_t failed = 0;
  uint64_t shed = 0;
  uint64_t retries = 0;
  uint64_t errors = 0;
  double seconds = 0.0;
  bool gates_pass = true;
  std::string gate_detail;  // first violated gate, for the error report
};

void FailGate(PassOutcome* pass, const std::string& detail) {
  if (pass->gates_pass) pass->gate_detail = detail;
  pass->gates_pass = false;
}

// A deterministic transient-only schedule: every fault recovers within the
// retry budget, so a pass over it must be bit-identical to a clean run.
// Touches every 7th page with a rotating kind; faults on pages the workload
// never reads simply don't fire (the gates compare against fired counts).
void MakeTransientSchedule(size_t page_count, FaultSchedule* schedule) {
  for (size_t page = 0; page < page_count; page += 7) {
    FaultSpec spec;
    spec.page = static_cast<PageId>(page);
    spec.attempt = 1;
    switch ((page / 7) % 4) {
      case 0:
        spec.kind = FaultKind::kEintr;
        break;
      case 1:
        spec.kind = FaultKind::kShortRead;
        spec.short_bytes = 64;
        break;
      case 2:
        spec.kind = FaultKind::kLatency;
        spec.latency_micros = 5;
        break;
      default:
        spec.kind = FaultKind::kError;  // recovered: one retry
        break;
    }
    schedule->Add(spec);
  }
}

// The retries a transient schedule must have produced: EINTR and recovered
// errors each cost exactly one retry; short reads and latency are progress.
uint64_t FiredTransientRetries(const FaultSchedule& schedule) {
  return schedule.fired(FaultKind::kEintr) + schedule.fired(FaultKind::kError);
}

std::vector<Query> MakeBatch(const std::vector<Aabb>& boxes) {
  std::vector<Query> batch;
  batch.reserve(boxes.size());
  for (const Aabb& box : boxes) batch.push_back(Query::Range(box));
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags(argc, argv);
  const bool json = flags.GetInt("json", 0) != 0;
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 4));
  std::ostream& info = json ? std::cerr : std::cout;

  // The Figure-12 workload: SN range queries over the microcircuit data set.
  Dataset dataset = NeuronDatasetAt(flags.Scaled(100000), flags.seed());
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, dataset.elements);

  RangeWorkloadParams workload;
  workload.count = flags.queries();
  workload.volume_fraction = kSnVolumeFraction;
  workload.seed = flags.seed() + 1;
  const std::vector<Aabb> boxes =
      GenerateRangeWorkload(dataset.bounds, workload);
  const std::vector<Query> batch = MakeBatch(boxes);

  // Clean serial baseline: per-query ids and read counts.
  std::vector<QueryResult> baseline(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    BufferPool pool(&file, &baseline[i].io);
    DispatchQuery(index, batch[i], &pool, &baseline[i]);
  }

  info << "# " << dataset.elements.size() << " neuron elements, "
       << batch.size() << " SN range queries, " << file.page_count()
       << " pages, " << threads << " threads\n";

  std::vector<PassOutcome> passes;
  QueryEngine::Options engine_options;
  engine_options.threads = threads;

  auto run_pass = [&](const std::string& name, const FlatIndex& target,
                      const std::vector<Query>& pass_batch,
                      QueryEngine::Options options) {
    PassOutcome pass;
    pass.name = name;
    QueryEngine engine(&target, options);
    BatchStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<QueryResult> results = engine.Run(pass_batch, &stats);
    pass.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    pass.ok = stats.queries_ok;
    pass.failed = stats.queries_failed;
    pass.shed = stats.queries_shed;
    pass.retries = stats.io.IoRetries();
    pass.errors = stats.io.IoErrors();
    return std::make_pair(pass, results);
  };

  // Pass 1: transient faults — recover bit-identically, exact retry count.
  {
    FaultSchedule schedule;
    MakeTransientSchedule(file.page_count(), &schedule);
    FaultInjectingPageStore store(&file, &schedule);
    FlatIndex through = FlatIndex::Attach(&store, index.descriptor());
    auto [pass, results] = run_pass("transient", through, batch,
                                    engine_options);
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        FailGate(&pass, "transient query " + std::to_string(i) +
                            " ended " + QueryStatusName(results[i].status));
      } else if (results[i].ids != baseline[i].ids) {
        FailGate(&pass, "transient query " + std::to_string(i) +
                            " diverged from the clean baseline");
      }
    }
    // Attempt counters are per page: each scheduled transient fault fires on
    // the first query to read its page, exactly once across the batch.
    const uint64_t expected_retries = FiredTransientRetries(schedule);
    if (pass.retries != expected_retries) {
      FailGate(&pass, "IoRetries " + std::to_string(pass.retries) +
                          " != fired transient faults " +
                          std::to_string(expected_retries));
    }
    if (expected_retries == 0) {
      FailGate(&pass, "no transient fault fired; the schedule missed the "
                      "workload entirely");
    }
    if (pass.errors != 0) {
      FailGate(&pass, "unexpected IoErrors in the transient pass");
    }
    passes.push_back(pass);
  }

  // Pass 2: a permanent fault on one mid-file page — typed kIoError for the
  // queries that need it, bit-identical results for everyone else.
  {
    FaultSchedule schedule;
    schedule.FailRead(static_cast<PageId>(file.page_count() / 2),
                      /*times=*/1u << 30);
    FaultInjectingPageStore::Options store_options;
    store_options.max_read_retries = 2;
    FaultInjectingPageStore store(&file, &schedule, store_options);
    FlatIndex through = FlatIndex::Attach(&store, index.descriptor());
    auto [pass, results] = run_pass("permanent", through, batch,
                                    engine_options);
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i].ok()) {
        if (results[i].ids != baseline[i].ids) {
          FailGate(&pass, "permanent-pass kOk query " + std::to_string(i) +
                              " diverged from the clean baseline");
        }
      } else if (results[i].status != QueryStatus::kIoError ||
                 results[i].error.empty()) {
        FailGate(&pass, "permanent-pass query " + std::to_string(i) +
                            " ended " + QueryStatusName(results[i].status) +
                            " without a typed I/O error");
      }
    }
    passes.push_back(pass);
  }

  // Pass 3: the same transient schedule through the real disk backend
  // (pread mode; fault schedules force it), reopened from a saved file.
  {
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("bench_fault_recovery_" + std::to_string(::getpid()) + ".pgf"))
            .string();
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      SavePageFile(file, out);
    }
    FaultSchedule schedule;
    MakeTransientSchedule(file.page_count(), &schedule);
    DiskPageFile::Options disk_options;
    disk_options.async_prefetch = false;
    disk_options.retry_backoff_micros = 0;
    disk_options.fault_schedule = &schedule;
    auto disk = DiskPageFile::Open(path, disk_options);
    FlatIndex reopened = FlatIndex::Attach(disk.get(), index.descriptor());
    auto [pass, results] = run_pass("disk_transient", reopened, batch,
                                    engine_options);
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok() || results[i].ids != baseline[i].ids) {
        FailGate(&pass, "disk query " + std::to_string(i) +
                            " diverged or failed under transient faults");
      }
    }
    if (disk->read_retries() != FiredTransientRetries(schedule)) {
      FailGate(&pass, "disk retry counter " +
                          std::to_string(disk->read_retries()) +
                          " != fired transient faults " +
                          std::to_string(FiredTransientRetries(schedule)));
    }
    if (disk->read_errors() != 0 || pass.errors != 0) {
      FailGate(&pass, "unexpected read errors in the disk transient pass");
    }
    disk.reset();
    std::error_code ec;
    std::filesystem::remove(path, ec);
    passes.push_back(pass);
  }

  // Pass 4: the control plane — deadline, cancellation, budget.
  {
    PassOutcome pass;
    pass.name = "controls";
    QueryEngine engine(&index, engine_options);

    QueryControl expired;
    expired.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1);
    std::vector<Query> controlled = batch;
    for (Query& q : controlled) q.control = &expired;
    const auto t0 = std::chrono::steady_clock::now();
    BatchStats stats;
    std::vector<QueryResult> results = engine.Run(controlled, &stats);
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i].status != QueryStatus::kDeadlineExceeded ||
          results[i].io.TotalReads() > 1) {
        FailGate(&pass, "expired deadline did not stop query " +
                            std::to_string(i) + " immediately");
      }
    }
    pass.failed = stats.queries_failed;

    std::atomic<bool> cancelled{true};
    QueryControl cancel_control;
    cancel_control.cancel = &cancelled;
    for (Query& q : controlled) q.control = &cancel_control;
    results = engine.Run(controlled);
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i].status != QueryStatus::kCancelled) {
        FailGate(&pass, "pre-set cancel token did not cancel query " +
                            std::to_string(i));
      }
    }

    QueryControl budgeted;
    budgeted.max_page_reads = 5;
    for (Query& q : controlled) q.control = &budgeted;
    results = engine.Run(controlled);
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i].ok()) {
        if (results[i].ids != baseline[i].ids) {
          FailGate(&pass, "under-budget query " + std::to_string(i) +
                              " diverged from the clean baseline");
        }
      } else if (results[i].status != QueryStatus::kBudgetExceeded ||
                 results[i].io.TotalReads() > budgeted.max_page_reads + 4) {
        FailGate(&pass, "budget did not bound query " + std::to_string(i) +
                            " (status " + QueryStatusName(results[i].status) +
                            ", " + std::to_string(results[i].io.TotalReads()) +
                            " reads)");
      } else {
        ++pass.failed;
      }
    }
    pass.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    pass.ok = stats.queries_ok;
    passes.push_back(pass);
  }

  // Pass 5: admission control sheds the tail, the head stays exact.
  {
    QueryEngine::Options options = engine_options;
    options.max_queued_queries = batch.size() / 2;
    auto [pass, results] = run_pass("admission", index, batch, options);
    for (size_t i = 0; i < results.size(); ++i) {
      if (i < options.max_queued_queries) {
        if (!results[i].ok() || results[i].ids != baseline[i].ids) {
          FailGate(&pass, "admitted query " + std::to_string(i) +
                              " failed or diverged");
        }
      } else if (results[i].status != QueryStatus::kRejected ||
                 results[i].io.TotalReads() != 0) {
        FailGate(&pass, "query " + std::to_string(i) +
                            " was not shed cleanly");
      }
    }
    if (pass.shed != batch.size() - options.max_queued_queries) {
      FailGate(&pass, "shed count " + std::to_string(pass.shed) +
                          " != batch tail " +
                          std::to_string(batch.size() -
                                         options.max_queued_queries));
    }
    passes.push_back(pass);
  }

  bool all_pass = true;
  for (const PassOutcome& pass : passes) all_pass &= pass.gates_pass;

  if (json) {
    std::cout << "{\n"
              << "  \"bench\": \"fault_recovery\",\n"
              << "  \"workload\": \"fig12_sn_range\",\n"
              << "  \"elements\": " << dataset.elements.size() << ",\n"
              << "  \"queries\": " << batch.size() << ",\n"
              << "  \"threads\": " << threads << ",\n"
              << "  \"passes\": [\n";
    for (size_t i = 0; i < passes.size(); ++i) {
      const PassOutcome& p = passes[i];
      std::cout << "    {\"pass\": \"" << p.name << "\", \"ok\": " << p.ok
                << ", \"failed\": " << p.failed << ", \"shed\": " << p.shed
                << ", \"io_retries\": " << p.retries
                << ", \"io_errors\": " << p.errors
                << ", \"seconds\": " << p.seconds
                << ", \"gates_pass\": " << (p.gates_pass ? "true" : "false")
                << "}" << (i + 1 < passes.size() ? "," : "") << "\n";
    }
    std::cout << "  ],\n"
              << "  \"all_gates_pass\": " << (all_pass ? "true" : "false")
              << "\n}\n";
  } else {
    Table table({"pass", "ok", "failed", "shed", "retries", "errors",
                 "seconds", "gates"});
    for (const PassOutcome& p : passes) {
      table.AddRow({p.name, FormatNumber(static_cast<double>(p.ok), 0),
                    FormatNumber(static_cast<double>(p.failed), 0),
                    FormatNumber(static_cast<double>(p.shed), 0),
                    FormatNumber(static_cast<double>(p.retries), 0),
                    FormatNumber(static_cast<double>(p.errors), 0),
                    FormatNumber(p.seconds, 4),
                    p.gates_pass ? "pass" : "FAIL"});
    }
    flags.csv() ? table.PrintCsv(std::cout) : table.Print(std::cout);
  }

  if (!all_pass) {
    for (const PassOutcome& pass : passes) {
      if (!pass.gates_pass) {
        std::cerr << "ERROR: pass '" << pass.name
                  << "' violated its gate: " << pass.gate_detail << "\n";
      }
    }
    return 1;
  }
  return 0;
}
