#include "benchutil/experiment.h"

#include <gtest/gtest.h>

namespace flat {
namespace {

BenchFlags TinyFlags() {
  // 2% of the default scale and few queries: the sweep builds 9 data sets
  // of 1k..9k elements — fast enough for a unit test.
  static const char* argv[] = {"test", "--scale=0.02", "--queries=10",
                               "--seed=99"};
  return BenchFlags(4, const_cast<char**>(argv));
}

TEST(DensitySweepTest, ProducesOnePointPerDensityWithAllKinds) {
  SweepOptions options;
  options.volume_fraction = kSnVolumeFraction;
  options.kinds = {IndexKind::kFlat, IndexKind::kStr};
  const auto points = RunDensitySweep(TinyFlags(), options);
  ASSERT_EQ(points.size(), 9u);
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].elements, 1000u * (i + 1));
    ASSERT_TRUE(points[i].by_kind.contains(IndexKind::kFlat));
    ASSERT_TRUE(points[i].by_kind.contains(IndexKind::kStr));
  }
}

TEST(DensitySweepTest, QueriesProduceIdenticalResultsAcrossKinds) {
  SweepOptions options;
  options.volume_fraction = kLssVolumeFraction;
  options.kinds = {IndexKind::kFlat, IndexKind::kStr, IndexKind::kHilbert};
  const auto points = RunDensitySweep(TinyFlags(), options);
  for (const DensityPoint& p : points) {
    const uint64_t reference =
        p.by_kind.at(IndexKind::kFlat).workload.result_elements;
    for (const auto& [kind, result] : p.by_kind) {
      EXPECT_EQ(result.workload.result_elements, reference)
          << IndexKindName(kind) << " at " << p.elements;
    }
  }
}

TEST(DensitySweepTest, BuildOnlySweepSkipsQueries) {
  SweepOptions options;
  options.volume_fraction = 0.0;
  options.kinds = {IndexKind::kStr};
  const auto points = RunDensitySweep(TinyFlags(), options);
  for (const DensityPoint& p : points) {
    const KindResult& r = p.by_kind.at(IndexKind::kStr);
    EXPECT_EQ(r.workload.io.TotalReads(), 0u);
    EXPECT_GT(r.build_seconds, 0.0);
    EXPECT_GT(r.size_bytes, 0u);
    EXPECT_GT(r.tree_stats.leaf_pages, 0u);
  }
}

TEST(DensitySweepTest, PointQueryModeUsesDegenerateBoxes) {
  SweepOptions options;
  options.point_queries = true;
  options.volume_fraction = 1.0;
  options.kinds = {IndexKind::kStr};
  const auto points = RunDensitySweep(TinyFlags(), options);
  for (const DensityPoint& p : points) {
    // Point queries must incur reads but typically return few elements.
    const auto& workload = p.by_kind.at(IndexKind::kStr).workload;
    EXPECT_GT(workload.io.TotalReads(), 0u);
  }
}

TEST(DensitySweepTest, PageCountsBrokenDownByCategory) {
  SweepOptions options;
  options.volume_fraction = 0.0;
  options.kinds = {IndexKind::kFlat};
  const auto points = RunDensitySweep(TinyFlags(), options);
  for (const DensityPoint& p : points) {
    const KindResult& r = p.by_kind.at(IndexKind::kFlat);
    const uint64_t object =
        r.pages_in[static_cast<int>(PageCategory::kObject)];
    const uint64_t seed_leaf =
        r.pages_in[static_cast<int>(PageCategory::kSeedLeaf)];
    EXPECT_EQ(object, r.flat_stats.object_pages);
    EXPECT_EQ(seed_leaf, r.flat_stats.seed_leaf_pages);
    EXPECT_EQ(r.pages_in[static_cast<int>(PageCategory::kRTreeLeaf)], 0u);
  }
}

}  // namespace
}  // namespace flat
