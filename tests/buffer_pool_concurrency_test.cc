// Concurrency contract of StripedBufferPool: readers on overlapping page
// sets always see consistent page bytes, and hit/miss/IoStats counters sum
// correctly across stripes and sessions.
#include "storage/striped_buffer_pool.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/io_stats.h"
#include "storage/page_file.h"

namespace flat {
namespace {

// A PageFile whose every page is stamped with a recognizable pattern derived
// from its id, so readers can verify they got the right, un-torn bytes.
void StampFile(PageFile* file, size_t pages) {
  for (size_t i = 0; i < pages; ++i) {
    const PageId id = file->Allocate(
        static_cast<PageCategory>(i % kNumPageCategories));
    char* data = file->MutableData(id);
    for (uint32_t b = 0; b < file->page_size(); ++b) {
      data[b] = static_cast<char>((id * 131 + b) & 0xff);
    }
  }
}

bool PageLooksRight(const char* data, PageId id, uint32_t page_size) {
  for (uint32_t b = 0; b < page_size; b += 97) {
    if (data[b] != static_cast<char>((id * 131 + b) & 0xff)) return false;
  }
  return true;
}

TEST(StripedBufferPoolTest, SingleThreadedSemanticsMatchBufferPool) {
  PageFile file;
  StampFile(&file, 64);
  IoStats striped_stats;
  StripedBufferPool striped(&file);

  IoStats plain_stats;
  BufferPool plain(&file, &plain_stats);

  // Same access sequence through both pools.
  std::vector<PageId> sequence;
  for (PageId id = 0; id < 64; ++id) sequence.push_back(id);
  for (PageId id = 0; id < 64; id += 2) sequence.push_back(id);  // re-reads

  for (PageId id : sequence) {
    EXPECT_EQ(striped.Read(id, &striped_stats), plain.Read(id));
  }
  EXPECT_EQ(striped.hits(), plain.hits());
  EXPECT_EQ(striped.misses(), plain.misses());
  for (int c = 0; c < kNumPageCategories; ++c) {
    const PageCategory category = static_cast<PageCategory>(c);
    EXPECT_EQ(striped_stats.ReadsIn(category), plain_stats.ReadsIn(category));
    EXPECT_EQ(striped.MergedStats().ReadsIn(category),
              plain_stats.ReadsIn(category));
  }
}

TEST(StripedBufferPoolTest, ConcurrentReadersOverlappingPages) {
  constexpr size_t kPages = 256;
  constexpr size_t kThreads = 8;
  constexpr size_t kReadsPerThread = 20000;

  PageFile file;
  StampFile(&file, kPages);
  StripedBufferPool pool(&file);

  std::vector<IoStats> per_thread(kThreads);
  std::atomic<uint64_t> bad_pages{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      StripedBufferPool::Session session(&pool, &per_thread[t]);
      // Deterministic per-thread walk; all threads overlap heavily.
      uint64_t state = t * 2654435761u + 1;
      for (size_t i = 0; i < kReadsPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const PageId id = static_cast<PageId>((state >> 33) % kPages);
        const char* data = session.Read(id);
        if (!PageLooksRight(data, id, file.page_size())) {
          bad_pages.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Consistent pages: every read returned the right, un-torn bytes.
  EXPECT_EQ(bad_pages.load(), 0u);

  // Counters sum correctly: hits + misses == total issued reads; unbounded
  // cache means each page missed exactly once, globally.
  EXPECT_EQ(pool.hits() + pool.misses(), kThreads * kReadsPerThread);
  EXPECT_EQ(pool.misses(), kPages);
  EXPECT_EQ(pool.cached_pages(), kPages);

  // Per-thread IoStats merge into the pool aggregate exactly.
  IoStats merged;
  for (const IoStats& stats : per_thread) merged += stats;
  EXPECT_EQ(merged.TotalReads(), pool.misses());
  for (int c = 0; c < kNumPageCategories; ++c) {
    const PageCategory category = static_cast<PageCategory>(c);
    EXPECT_EQ(merged.ReadsIn(category),
              pool.MergedStats().ReadsIn(category));
  }
}

TEST(StripedBufferPoolTest, ConcurrentReadersBoundedCapacity) {
  constexpr size_t kPages = 512;
  constexpr size_t kThreads = 8;
  constexpr size_t kReadsPerThread = 20000;
  constexpr size_t kCapacity = 64;  // far smaller than the working set

  PageFile file;
  StampFile(&file, kPages);
  StripedBufferPool pool(&file, kCapacity);

  std::atomic<uint64_t> bad_pages{0};
  std::vector<IoStats> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      StripedBufferPool::Session session(&pool, &per_thread[t]);
      uint64_t state = t + 12345;
      for (size_t i = 0; i < kReadsPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const PageId id = static_cast<PageId>((state >> 33) % kPages);
        const char* data = session.Read(id);
        if (!PageLooksRight(data, id, file.page_size())) {
          bad_pages.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(bad_pages.load(), 0u);
  EXPECT_EQ(pool.hits() + pool.misses(), kThreads * kReadsPerThread);
  // Eviction means strictly more misses than distinct pages...
  EXPECT_GT(pool.misses(), kPages);
  // ...and the cache respects its (per-stripe rounded) capacity bound.
  EXPECT_LE(pool.cached_pages(), kCapacity + pool.stripe_count());

  IoStats merged;
  for (const IoStats& stats : per_thread) merged += stats;
  EXPECT_EQ(merged.TotalReads(), pool.misses());
  EXPECT_EQ(merged.TotalReads(), pool.MergedStats().TotalReads());
}

TEST(StripedBufferPoolTest, ClearColdsTheCache) {
  PageFile file;
  StampFile(&file, 32);
  StripedBufferPool pool(&file);
  IoStats stats;
  for (PageId id = 0; id < 32; ++id) pool.Read(id, &stats);
  EXPECT_EQ(pool.cached_pages(), 32u);
  EXPECT_TRUE(pool.IsCached(7));

  pool.Clear();
  EXPECT_EQ(pool.cached_pages(), 0u);
  EXPECT_FALSE(pool.IsCached(7));

  pool.Read(7, &stats);
  EXPECT_EQ(pool.misses(), 33u);  // re-read after Clear is a fresh miss
}

TEST(StripedBufferPoolTest, NullStatsSessionsStillCountInAggregate) {
  PageFile file;
  StampFile(&file, 8);
  StripedBufferPool pool(&file);
  for (PageId id = 0; id < 8; ++id) pool.Read(id, /*stats=*/nullptr);
  EXPECT_EQ(pool.misses(), 8u);
  EXPECT_EQ(pool.MergedStats().TotalReads(), 8u);
}

}  // namespace
}  // namespace flat
