#include "geometry/aabb.h"

#include <gtest/gtest.h>

namespace flat {
namespace {

TEST(AabbTest, DefaultIsEmpty) {
  Aabb box;
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_EQ(box.Volume(), 0.0);
  EXPECT_EQ(box.SurfaceArea(), 0.0);
  EXPECT_EQ(box.Margin(), 0.0);
}

TEST(AabbTest, PointBoxIsNotEmpty) {
  Aabb box = Aabb::FromPoint(Vec3(1, 2, 3));
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_EQ(box.Volume(), 0.0);
  EXPECT_TRUE(box.Contains(Vec3(1, 2, 3)));
  EXPECT_FALSE(box.Contains(Vec3(1, 2, 3.0001)));
}

TEST(AabbTest, FromCornersNormalizesOrder) {
  Aabb box = Aabb::FromCorners(Vec3(5, 0, 2), Vec3(1, 3, -2));
  EXPECT_EQ(box.lo(), Vec3(1, 0, -2));
  EXPECT_EQ(box.hi(), Vec3(5, 3, 2));
}

TEST(AabbTest, VolumeSurfaceMargin) {
  Aabb box(Vec3(0, 0, 0), Vec3(2, 3, 4));
  EXPECT_DOUBLE_EQ(box.Volume(), 24.0);
  EXPECT_DOUBLE_EQ(box.SurfaceArea(), 2.0 * (6 + 12 + 8));
  EXPECT_DOUBLE_EQ(box.Margin(), 9.0);
  EXPECT_EQ(box.Center(), Vec3(1, 1.5, 2));
  EXPECT_EQ(box.Extents(), Vec3(2, 3, 4));
}

TEST(AabbTest, LongestAxis) {
  EXPECT_EQ(Aabb(Vec3(0, 0, 0), Vec3(5, 1, 1)).LongestAxis(), 0);
  EXPECT_EQ(Aabb(Vec3(0, 0, 0), Vec3(1, 5, 1)).LongestAxis(), 1);
  EXPECT_EQ(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 5)).LongestAxis(), 2);
}

TEST(AabbTest, IntersectsIsClosedInterval) {
  Aabb a(Vec3(0, 0, 0), Vec3(1, 1, 1));
  Aabb face(Vec3(1, 0, 0), Vec3(2, 1, 1));   // shares a face
  Aabb edge(Vec3(1, 1, 0), Vec3(2, 2, 1));   // shares an edge
  Aabb corner(Vec3(1, 1, 1), Vec3(2, 2, 2)); // shares a corner
  Aabb apart(Vec3(1.01, 0, 0), Vec3(2, 1, 1));
  EXPECT_TRUE(a.Intersects(face));
  EXPECT_TRUE(a.Intersects(edge));
  EXPECT_TRUE(a.Intersects(corner));
  EXPECT_FALSE(a.Intersects(apart));
  // Symmetry.
  EXPECT_TRUE(face.Intersects(a));
  EXPECT_FALSE(apart.Intersects(a));
}

TEST(AabbTest, EmptyNeverIntersects) {
  Aabb empty;
  Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_FALSE(empty.Intersects(box));
  EXPECT_FALSE(box.Intersects(empty));
  EXPECT_FALSE(empty.Intersects(empty));
}

TEST(AabbTest, Containment) {
  Aabb outer(Vec3(0, 0, 0), Vec3(10, 10, 10));
  Aabb inner(Vec3(2, 2, 2), Vec3(3, 3, 3));
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  EXPECT_TRUE(outer.Contains(outer));
  // Every box contains the empty box; the empty box contains nothing.
  EXPECT_TRUE(outer.Contains(Aabb()));
  EXPECT_FALSE(Aabb().Contains(inner));
}

TEST(AabbTest, UnionAndExpand) {
  Aabb a(Vec3(0, 0, 0), Vec3(1, 1, 1));
  Aabb b(Vec3(2, -1, 0), Vec3(3, 0.5, 2));
  Aabb u = Aabb::Union(a, b);
  EXPECT_EQ(u.lo(), Vec3(0, -1, 0));
  EXPECT_EQ(u.hi(), Vec3(3, 1, 2));
  // Union with empty is identity.
  EXPECT_EQ(Aabb::Union(a, Aabb()), a);
  EXPECT_EQ(Aabb::Union(Aabb(), a), a);

  Aabb c = a;
  c.ExpandToInclude(Vec3(5, 5, 5));
  EXPECT_EQ(c.hi(), Vec3(5, 5, 5));
}

TEST(AabbTest, Intersection) {
  Aabb a(Vec3(0, 0, 0), Vec3(4, 4, 4));
  Aabb b(Vec3(2, 2, 2), Vec3(6, 6, 6));
  Aabb i = Aabb::Intersection(a, b);
  EXPECT_EQ(i.lo(), Vec3(2, 2, 2));
  EXPECT_EQ(i.hi(), Vec3(4, 4, 4));
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 8.0);
  // Disjoint boxes intersect in the empty box.
  EXPECT_TRUE(
      Aabb::Intersection(a, Aabb(Vec3(9, 9, 9), Vec3(10, 10, 10))).IsEmpty());
}

TEST(AabbTest, Enlargement) {
  Aabb a(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_DOUBLE_EQ(a.Enlargement(a), 0.0);
  Aabb b(Vec3(0, 0, 0), Vec3(2, 1, 1));
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 1.0);
}

TEST(AabbTest, Inflated) {
  Aabb a(Vec3(1, 1, 1), Vec3(2, 2, 2));
  Aabb grown = a.Inflated(0.5);
  EXPECT_EQ(grown.lo(), Vec3(0.5, 0.5, 0.5));
  EXPECT_EQ(grown.hi(), Vec3(2.5, 2.5, 2.5));
  EXPECT_TRUE(Aabb().Inflated(1.0).IsEmpty());
}

TEST(AabbTest, EqualityTreatsAllEmptyAsEqual) {
  Aabb e1;
  Aabb e2 = Aabb::Intersection(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)),
                               Aabb(Vec3(5, 5, 5), Vec3(6, 6, 6)));
  EXPECT_EQ(e1, e2);
  EXPECT_NE(e1, Aabb::FromPoint(Vec3()));
}

TEST(AabbTest, DegenerateBoxesIntersectProperly) {
  // A zero-thickness box (plane patch) still intersects what it touches.
  Aabb plane(Vec3(0, 0, 1), Vec3(2, 2, 1));
  Aabb cube(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_TRUE(plane.Intersects(cube));
  EXPECT_FALSE(plane.Intersects(Aabb(Vec3(0, 0, 1.5), Vec3(1, 1, 2))));
}

}  // namespace
}  // namespace flat
