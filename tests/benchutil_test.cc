#include <gtest/gtest.h>

#include <sstream>

#include "benchutil/contender.h"
#include "benchutil/flags.h"
#include "benchutil/sweep.h"
#include "benchutil/table.h"
#include "data/query_generator.h"
#include "tests/test_util.h"

namespace flat {
namespace {

TEST(TableTest, PrintsAlignedColumns) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  std::ostringstream oss;
  table.Print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream oss;
  table.PrintCsv(oss);
  EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(FormatTest, Numbers) {
  EXPECT_EQ(FormatNumber(1.5), "1.5");
  EXPECT_EQ(FormatNumber(2.0), "2.0");
  EXPECT_EQ(FormatNumber(0.125, 3), "0.125");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(FormatBytes(3u << 20), "3.0 MiB");
}

TEST(FlagsTest, ParsesKeyValuePairs) {
  const char* argv[] = {"prog", "--scale=0.5", "--queries=17", "--seed=9",
                        "--csv"};
  BenchFlags flags(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.scale(), 0.5);
  EXPECT_EQ(flags.queries(), 17u);
  EXPECT_EQ(flags.seed(), 9u);
  EXPECT_TRUE(flags.csv());
  EXPECT_EQ(flags.Scaled(1000), 500u);
  EXPECT_EQ(flags.Scaled(1, 1), 1u) << "minimum enforced";
}

TEST(FlagsTest, DefaultsWithoutFlags) {
  const char* argv[] = {"prog"};
  BenchFlags flags(1, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.scale(), 1.0);
  EXPECT_EQ(flags.queries(), 200u);
  EXPECT_FALSE(flags.csv());
}

TEST(SweepTest, DensityCountsScale) {
  const char* argv[] = {"prog", "--scale=0.1"};
  BenchFlags flags(2, const_cast<char**>(argv));
  auto counts = DensitySweepCounts(flags, 50000, 9);
  ASSERT_EQ(counts.size(), 9u);
  EXPECT_EQ(counts[0], 5000u);
  EXPECT_EQ(counts[8], 45000u);
}

TEST(ContenderTest, AllKindsBuildAndAnswerQueries) {
  const auto entries = testing::RandomEntries(2000, 121);
  const Aabb q(Vec3(20, 20, 20), Vec3(50, 50, 50));
  const auto oracle = testing::BruteForce(entries, q);

  for (IndexKind kind :
       {IndexKind::kHilbert, IndexKind::kStr, IndexKind::kMorton,
        IndexKind::kPrTree, IndexKind::kTgs, IndexKind::kRStar,
        IndexKind::kFlat}) {
    Contender contender = BuildContender(kind, entries);
    EXPECT_GT(contender.total_pages(), 0u) << IndexKindName(kind);
    IoStats stats;
    BufferPool pool(contender.file.get(), &stats);
    std::vector<uint64_t> got;
    contender.RangeQuery(&pool, q, &got);
    EXPECT_EQ(testing::Sorted(got), oracle) << IndexKindName(kind);
  }
}

TEST(ContenderTest, RunWorkloadAggregates) {
  const auto entries = testing::RandomEntries(3000, 122);
  Contender contender = BuildContender(IndexKind::kFlat, entries);
  auto queries = testing::RandomQueries(10, 123);
  DiskModel disk;
  WorkloadResult result = RunWorkload(contender, queries, disk);
  uint64_t expected_results = 0;
  for (const Aabb& q : queries) {
    expected_results += testing::BruteForce(entries, q).size();
  }
  EXPECT_EQ(result.result_elements, expected_results);
  EXPECT_GT(result.io.TotalReads(), 0u);
  EXPECT_GT(result.simulated_ms, 0.0);
}

TEST(ContenderTest, ColdCachePerQueryMakesReadsAdditive) {
  const auto entries = testing::RandomEntries(3000, 124);
  Contender contender = BuildContender(IndexKind::kStr, entries);
  DiskModel disk;
  const Aabb q(Vec3(10, 10, 10), Vec3(30, 30, 30));
  auto one = RunWorkload(contender, {q}, disk);
  auto twice = RunWorkload(contender, {q, q}, disk);
  EXPECT_EQ(twice.io.TotalReads(), 2 * one.io.TotalReads())
      << "cache must be cleared between queries";
}

}  // namespace
}  // namespace flat
