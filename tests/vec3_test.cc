#include "geometry/vec3.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flat {
namespace {

TEST(Vec3Test, DefaultIsZero) {
  Vec3 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3Test, Arithmetic) {
  Vec3 a(1, 2, 3);
  Vec3 b(4, 5, 6);
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(b / 2.0, Vec3(2, 2.5, 3));
}

TEST(Vec3Test, CompoundAssignment) {
  Vec3 v(1, 1, 1);
  v += Vec3(1, 2, 3);
  EXPECT_EQ(v, Vec3(2, 3, 4));
  v -= Vec3(1, 1, 1);
  EXPECT_EQ(v, Vec3(1, 2, 3));
  v *= 3.0;
  EXPECT_EQ(v, Vec3(3, 6, 9));
}

TEST(Vec3Test, IndexAccess) {
  Vec3 v(7, 8, 9);
  EXPECT_EQ(v[0], 7);
  EXPECT_EQ(v[1], 8);
  EXPECT_EQ(v[2], 9);
  v.At(1) = 42;
  EXPECT_EQ(v.y, 42);
}

TEST(Vec3Test, DotAndCross) {
  Vec3 x(1, 0, 0);
  Vec3 y(0, 1, 0);
  EXPECT_EQ(x.Dot(y), 0.0);
  EXPECT_EQ(x.Cross(y), Vec3(0, 0, 1));
  EXPECT_EQ(y.Cross(x), Vec3(0, 0, -1));
  EXPECT_EQ(Vec3(2, 3, 4).Dot(Vec3(5, 6, 7)), 2 * 5 + 3 * 6 + 4 * 7);
}

TEST(Vec3Test, NormAndNormalized) {
  Vec3 v(3, 4, 0);
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
  Vec3 n = v.Normalized();
  EXPECT_DOUBLE_EQ(n.Norm(), 1.0);
  EXPECT_DOUBLE_EQ(n.x, 0.6);
  // Zero vector stays zero instead of producing NaN.
  EXPECT_EQ(Vec3().Normalized(), Vec3());
}

TEST(Vec3Test, MinMax) {
  Vec3 a(1, 5, 3);
  Vec3 b(2, 4, 3);
  EXPECT_EQ(Vec3::Min(a, b), Vec3(1, 4, 3));
  EXPECT_EQ(Vec3::Max(a, b), Vec3(2, 5, 3));
}

}  // namespace
}  // namespace flat
