#include "core/flat_index.h"

#include <gtest/gtest.h>

#include "rtree/node.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace flat {
namespace {

using testing::BruteForce;
using testing::RandomEntries;
using testing::RandomQueries;
using testing::Sorted;

TEST(FlatIndexTest, EmptyDataset) {
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, {});
  EXPECT_TRUE(index.empty());
  IoStats stats;
  BufferPool pool(&file, &stats);
  std::vector<uint64_t> got;
  index.RangeQuery(&pool, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), &got);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(stats.TotalReads(), 0u);
}

TEST(FlatIndexTest, SingleElement) {
  PageFile file;
  FlatIndex index = FlatIndex::Build(
      &file, {RTreeEntry{Aabb(Vec3(1, 1, 1), Vec3(2, 2, 2)), 5}});
  IoStats stats;
  BufferPool pool(&file, &stats);
  std::vector<uint64_t> got;
  index.RangeQuery(&pool, Aabb(Vec3(0, 0, 0), Vec3(1.5, 1.5, 1.5)), &got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 5u);
  got.clear();
  index.RangeQuery(&pool, Aabb(Vec3(9, 9, 9), Vec3(10, 10, 10)), &got);
  EXPECT_TRUE(got.empty());
}

TEST(FlatIndexTest, MatchesBruteForceOnRandomWorkload) {
  const auto entries = RandomEntries(5000, 91);
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  IoStats stats;
  BufferPool pool(&file, &stats);
  for (const Aabb& q : RandomQueries(80, 92)) {
    std::vector<uint64_t> got;
    index.RangeQuery(&pool, q, &got);
    EXPECT_EQ(Sorted(got), BruteForce(entries, q));
  }
}

TEST(FlatIndexTest, NoDuplicateResults) {
  const auto entries = RandomEntries(3000, 93);
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  IoStats stats;
  BufferPool pool(&file, &stats);
  for (const Aabb& q : RandomQueries(30, 94)) {
    std::vector<uint64_t> got;
    index.RangeQuery(&pool, q, &got);
    auto sorted = Sorted(got);
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << "duplicate element in result";
  }
}

TEST(FlatIndexTest, HugeQueryReturnsEverything) {
  const auto entries = RandomEntries(2000, 95);
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  IoStats stats;
  BufferPool pool(&file, &stats);
  std::vector<uint64_t> got;
  index.RangeQuery(&pool, Aabb(Vec3(-1e9, -1e9, -1e9), Vec3(1e9, 1e9, 1e9)),
                   &got);
  EXPECT_EQ(got.size(), entries.size());
}

TEST(FlatIndexTest, EmptyRegionQueryFindsNothing) {
  // Elements only in [0,100]^3; query far away. The seed phase may probe
  // several leaves but must return no result.
  const auto entries = RandomEntries(2000, 96);
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  IoStats stats;
  BufferPool pool(&file, &stats);
  EXPECT_FALSE(
      index.Seed(&pool, Aabb(Vec3(200, 200, 200), Vec3(201, 201, 201)))
          .has_value());
}

TEST(FlatIndexTest, BuildStatsAreConsistent) {
  const auto entries = RandomEntries(5000, 97);
  PageFile file;
  FlatIndex::BuildStats stats;
  FlatIndex index = FlatIndex::Build(&file, entries, &stats);
  EXPECT_GT(stats.partitions, entries.size() / 73);
  EXPECT_EQ(stats.object_pages, stats.partitions);
  EXPECT_GT(stats.seed_leaf_pages, 0u);
  EXPECT_EQ(stats.object_pages, file.PageCountIn(PageCategory::kObject));
  EXPECT_EQ(stats.seed_leaf_pages,
            file.PageCountIn(PageCategory::kSeedLeaf));
  EXPECT_EQ(stats.seed_internal_pages,
            file.PageCountIn(PageCategory::kSeedInternal));
  EXPECT_GT(stats.neighbor_pointers, 0u);
  EXPECT_EQ(stats.neighbor_pointers % 2, 0u) << "pointers come in pairs";
  EXPECT_GE(stats.seed_height, 1);
  EXPECT_EQ(index.partition_profiles().size(), stats.partitions);
}

TEST(FlatIndexTest, QueryIoBreakdownUsesSeedCategories) {
  const auto entries = RandomEntries(5000, 98);
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  IoStats stats;
  BufferPool pool(&file, &stats);
  std::vector<uint64_t> got;
  index.RangeQuery(&pool, Aabb(Vec3(20, 20, 20), Vec3(50, 50, 50)), &got);
  ASSERT_FALSE(got.empty());
  EXPECT_GT(stats.ReadsIn(PageCategory::kObject), 0u);
  EXPECT_GT(stats.ReadsIn(PageCategory::kSeedLeaf), 0u);
  EXPECT_EQ(stats.ReadsIn(PageCategory::kRTreeInternal), 0u);
  EXPECT_EQ(stats.ReadsIn(PageCategory::kRTreeLeaf), 0u);
}

TEST(FlatIndexTest, SeedCostIsOnTheOrderOfTreeHeight) {
  const auto entries = RandomEntries(20000, 99);
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  IoStats stats;
  BufferPool pool(&file, &stats);
  // A query in a populated region: the seed phase should read a handful of
  // pages (root-to-leaf path + 1 object page probe or so), never a scan.
  auto seed = index.Seed(&pool, Aabb(Vec3(40, 40, 40), Vec3(60, 60, 60)));
  ASSERT_TRUE(seed.has_value());
  EXPECT_LE(stats.TotalReads(),
            static_cast<uint64_t>(4 * index.seed_height() + 4));
}

TEST(FlatIndexTest, PageMbrGuardLosesResultsInFigure8Scenario) {
  // Deterministic reconstruction of the paper's Figure 8/9 counter-example.
  // 27 tight clusters of exactly one page (73 elements) each, on a 3x3x3
  // grid, so STR partitioning puts one cluster per partition. The middle
  // cluster of the (y=0, z=0) row is displaced to y=10: a thin corridor
  // query along that row then intersects the page MBRs of the two end
  // clusters but NOT the middle one — yet the middle *partition* (whose tile
  // spans the corridor) is the only neighbor link between the ends. The
  // partition-MBR guard must return both end clusters; the page-MBR guard
  // must lose one.
  const uint32_t cap = NodeCapacity(kDefaultPageSize);  // 73
  Rng rng(100);
  std::vector<RTreeEntry> entries;
  uint64_t id = 0;
  for (int ix = 0; ix < 3; ++ix) {
    for (int iy = 0; iy < 3; ++iy) {
      for (int iz = 0; iz < 3; ++iz) {
        Vec3 center(50.0 * ix, 50.0 * iy, 50.0 * iz);
        if (ix == 1 && iy == 0 && iz == 0) center.y = 10.0;  // displaced
        for (uint32_t i = 0; i < cap; ++i) {
          const Vec3 p = center + rng.UnitVector() * rng.Uniform(0.0, 1.0);
          entries.push_back(RTreeEntry{
              Aabb::FromCenterHalfExtents(p, Vec3(0.05, 0.05, 0.05)), id++});
        }
      }
    }
  }
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  ASSERT_EQ(index.build_stats().partitions, 27u);

  IoStats stats;
  BufferPool pool(&file, &stats);
  const Aabb corridor(Vec3(-5, -3, -3), Vec3(105, 3, 3));

  std::vector<uint64_t> correct, broken;
  index.RangeQuery(&pool, corridor, &correct,
                   FlatIndex::CrawlGuard::kPartitionMbr);
  index.RangeQuery(&pool, corridor, &broken, FlatIndex::CrawlGuard::kPageMbr);

  EXPECT_EQ(Sorted(correct), BruteForce(entries, corridor));
  EXPECT_EQ(correct.size(), 2u * cap) << "both end clusters in range";
  EXPECT_LT(broken.size(), correct.size())
      << "page-MBR guard must fail to cross the displaced partition";
}

}  // namespace
}  // namespace flat
