#include "data/query_generator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flat {
namespace {

TEST(QueryGeneratorTest, VolumesMatchTargetFraction) {
  Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  RangeWorkloadParams params;
  params.count = 100;
  params.volume_fraction = 1e-4;
  auto queries = GenerateRangeWorkload(universe, params);
  ASSERT_EQ(queries.size(), 100u);
  const double target = universe.Volume() * params.volume_fraction;
  for (const Aabb& q : queries) {
    EXPECT_NEAR(q.Volume(), target, target * 1e-9);
  }
}

TEST(QueryGeneratorTest, QueriesStayInsideUniverse) {
  Aabb universe(Vec3(-10, 0, 5), Vec3(40, 90, 25));
  RangeWorkloadParams params;
  params.count = 200;
  params.volume_fraction = 1e-3;
  for (const Aabb& q : GenerateRangeWorkload(universe, params)) {
    EXPECT_TRUE(universe.Contains(q)) << q;
  }
}

TEST(QueryGeneratorTest, AspectRatiosVary) {
  Aabb universe(Vec3(0, 0, 0), Vec3(1000, 1000, 1000));
  RangeWorkloadParams params;
  params.count = 300;
  params.volume_fraction = 1e-6;
  double min_aspect = 1e30, max_aspect = 0.0;
  for (const Aabb& q : GenerateRangeWorkload(universe, params)) {
    Vec3 ext = q.Extents();
    const double aspect =
        std::max({ext.x, ext.y, ext.z}) / std::min({ext.x, ext.y, ext.z});
    min_aspect = std::min(min_aspect, aspect);
    max_aspect = std::max(max_aspect, aspect);
  }
  EXPECT_LT(min_aspect, 2.0);
  EXPECT_GT(max_aspect, 4.0);
}

TEST(QueryGeneratorTest, HugeFractionIsClampedToUniverse) {
  Aabb universe(Vec3(0, 0, 0), Vec3(10, 10, 10));
  RangeWorkloadParams params;
  params.count = 10;
  params.volume_fraction = 100.0;  // would exceed the universe
  for (const Aabb& q : GenerateRangeWorkload(universe, params)) {
    EXPECT_TRUE(universe.Contains(q));
  }
}

TEST(QueryGeneratorTest, Deterministic) {
  Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  RangeWorkloadParams params;
  params.count = 20;
  params.seed = 99;
  auto a = GenerateRangeWorkload(universe, params);
  auto b = GenerateRangeWorkload(universe, params);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  params.seed = 100;
  auto c = GenerateRangeWorkload(universe, params);
  EXPECT_NE(a[0], c[0]);
}

TEST(PointWorkloadTest, PointsInsideUniverse) {
  Aabb universe(Vec3(5, 5, 5), Vec3(6, 6, 6));
  auto points = GeneratePointWorkload(universe, 50, 7);
  ASSERT_EQ(points.size(), 50u);
  for (const Vec3& p : points) {
    EXPECT_TRUE(universe.Contains(p));
  }
}

}  // namespace
}  // namespace flat
