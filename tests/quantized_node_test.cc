// Compressed (quantized) interior node pages, rtree/node.h: writer/view
// round trip, the containment guarantee of the conservative dequantizer,
// capacity/format bookkeeping, and the node-level never-miss property the
// seed descent relies on.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "geometry/box_kernels.h"
#include "rtree/entry.h"
#include "rtree/node.h"
#include "tests/test_util.h"

namespace flat {
namespace {

// Children that tile (and slightly overhang) a node box, ids included.
std::vector<RTreeEntry> ChildEntries(size_t count, uint64_t seed) {
  std::vector<RTreeEntry> entries = testing::RandomEntries(count, seed);
  return entries;
}

Aabb UnionOf(const std::vector<RTreeEntry>& entries) {
  Aabb box;
  for (const RTreeEntry& e : entries) box.ExpandToInclude(e.box);
  return box;
}

TEST(QuantizedNodeTest, CapacityAndLayoutConstants) {
  // The satellite constants: derived in rtree/node.h, re-checked here so a
  // layout change cannot silently shift the on-disk format.
  EXPECT_EQ(sizeof(QuantizedSlot), 16u);
  EXPECT_EQ(kQuantizedSlotsOffset, kNodeHeaderSize + sizeof(Aabb));
  EXPECT_EQ(QuantizedNodeCapacity(4096), 252u);
  EXPECT_EQ(QuantizedNodeCapacity(512), 28u);
  EXPECT_EQ(NodeCapacityFor(NodeFormat::kExact, 4096), NodeCapacity(4096));
  EXPECT_EQ(NodeCapacityFor(NodeFormat::kQuantized, 4096),
            QuantizedNodeCapacity(4096));
}

TEST(QuantizedNodeTest, WriterViewRoundTrip) {
  constexpr uint32_t kPageSize = 4096;
  const auto entries = ChildEntries(QuantizedNodeCapacity(kPageSize), 42);
  const Aabb bounds = UnionOf(entries);

  std::vector<char> page(kPageSize, '\xee');
  CompressedNodeWriter writer(page.data(), kPageSize);
  writer.Init(/*level=*/2, bounds);
  for (const RTreeEntry& e : entries) writer.Append(e);

  const CompressedNodeView view(page.data());
  EXPECT_EQ(view.count(), entries.size());
  EXPECT_EQ(view.level(), 2);
  EXPECT_EQ(view.node_box().lo(), bounds.lo());
  EXPECT_EQ(view.node_box().hi(), bounds.hi());

  // The header must also parse as a generic NodeView header (the format
  // dispatch in the seed descent reads it that way first).
  NodeView header(page.data());
  EXPECT_EQ(header.format(), NodeFormat::kQuantized);
  EXPECT_EQ(header.count(), entries.size());
  EXPECT_EQ(header.level(), 2);

  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(view.ChildIdAt(static_cast<uint16_t>(i)), entries[i].id);
    // Conservative dequantization: the child's exact box is contained in
    // the widened box the view reconstructs.
    const Aabb widened = view.ChildBoxAt(static_cast<uint16_t>(i));
    EXPECT_TRUE(widened.Contains(entries[i].box))
        << "child " << i << " not contained by its dequantized box";
    EXPECT_TRUE(bounds.Contains(widened));
  }
}

TEST(QuantizedNodeTest, GateNeverMissesAtNodeLevel) {
  // End-to-end over a real page: for every query, the set of children whose
  // quantized slots gate as hits must be a superset of the children whose
  // exact boxes intersect.
  constexpr uint32_t kPageSize = 512;  // small page -> several nodes' worth
  const auto entries = ChildEntries(QuantizedNodeCapacity(kPageSize), 7);
  const Aabb bounds = UnionOf(entries);

  std::vector<char> page(kPageSize, 0);
  CompressedNodeWriter writer(page.data(), kPageSize);
  writer.Init(/*level=*/1, bounds);
  for (const RTreeEntry& e : entries) writer.Append(e);
  const CompressedNodeView view(page.data());

  QuantizedSoa soa;
  soa.Assign(view.slots(), sizeof(QuantizedSlot), view.count());
  std::vector<uint8_t> hits(soa.padded_count());
  for (const Aabb& query : testing::RandomQueries(200, 99)) {
    IntersectsQuantizedSoa(soa, QuantizeQuery(bounds, query), hits.data());
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].box.Intersects(query)) {
        EXPECT_EQ(hits[i], 1) << "query missed intersecting child " << i;
      }
    }
  }
}

TEST(QuantizedNodeTest, ExactPagesUntouchedByFormatByte) {
  // An exact page written by NodeWriter still reports kExact — the format
  // byte reuses what was a reserved zero byte, so old pages parse as exact.
  constexpr uint32_t kPageSize = 4096;
  const auto entries = ChildEntries(10, 3);
  std::vector<char> page(kPageSize, 0);
  NodeWriter writer(page.data(), kPageSize);
  writer.Init(/*level=*/1);
  for (const RTreeEntry& e : entries) writer.Append(e);
  NodeView view(page.data());
  EXPECT_EQ(view.format(), NodeFormat::kExact);
  EXPECT_EQ(view.count(), entries.size());
}

}  // namespace
}  // namespace flat
