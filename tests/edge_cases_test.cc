// Failure-injection and degenerate-input coverage across the whole stack:
// pathological geometries, adversarial data distributions, and misuse of the
// public API that must fail loudly rather than corrupt results.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/flat_index.h"
#include "rtree/bulkload.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace flat {
namespace {

using testing::BruteForce;
using testing::Sorted;

// ---------------------------------------------------------------------------
// Degenerate geometry.
// ---------------------------------------------------------------------------

std::vector<RTreeEntry> CollinearPoints(size_t n) {
  // All elements on the x-axis: every y/z sort key ties.
  std::vector<RTreeEntry> entries;
  for (uint64_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) * 0.25;
    entries.push_back(RTreeEntry{Aabb::FromPoint(Vec3(x, 0, 0)), i});
  }
  return entries;
}

TEST(DegenerateGeometryTest, CollinearDataAllIndexes) {
  const auto entries = CollinearPoints(2000);
  const Aabb query(Vec3(100, -1, -1), Vec3(200, 1, 1));
  const auto oracle = BruteForce(entries, query);
  ASSERT_FALSE(oracle.empty());

  for (BulkloadStrategy strategy :
       {BulkloadStrategy::kStr, BulkloadStrategy::kHilbert,
        BulkloadStrategy::kPrTree, BulkloadStrategy::kTgs}) {
    PageFile file;
    RTree tree = Bulkload(&file, entries, strategy);
    IoStats stats;
    BufferPool pool(&file, &stats);
    std::vector<uint64_t> got;
    tree.RangeQuery(&pool, query, &got);
    EXPECT_EQ(Sorted(got), oracle) << BulkloadStrategyName(strategy);
  }
  PageFile file;
  FlatIndex flat = FlatIndex::Build(&file, entries);
  IoStats stats;
  BufferPool pool(&file, &stats);
  std::vector<uint64_t> got;
  flat.RangeQuery(&pool, query, &got);
  EXPECT_EQ(Sorted(got), oracle) << "FLAT";
}

TEST(DegenerateGeometryTest, PlanarDataFlat) {
  // All elements in the z = 5 plane: zero-extent tiles along z.
  Rng rng(401);
  std::vector<RTreeEntry> entries;
  for (uint64_t i = 0; i < 3000; ++i) {
    const Vec3 c(rng.Uniform(0, 100), rng.Uniform(0, 100), 5.0);
    entries.push_back(RTreeEntry{
        Aabb::FromCenterHalfExtents(c, Vec3(0.5, 0.5, 0.0)), i});
  }
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  IoStats stats;
  BufferPool pool(&file, &stats);
  for (const Aabb& q : testing::RandomQueries(30, 402)) {
    std::vector<uint64_t> got;
    index.RangeQuery(&pool, q, &got);
    EXPECT_EQ(Sorted(got), BruteForce(entries, q));
  }
}

TEST(DegenerateGeometryTest, HugeCoordinateMagnitudes) {
  // Coordinates around 1e12 with unit-scale extents: float metadata
  // compression must stay conservative (outward rounding), never dropping
  // results.
  Rng rng(403);
  std::vector<RTreeEntry> entries;
  const Vec3 offset(1e12, -1e12, 5e11);
  for (uint64_t i = 0; i < 2000; ++i) {
    const Vec3 c = offset + Vec3(rng.Uniform(0, 100), rng.Uniform(0, 100),
                                 rng.Uniform(0, 100));
    entries.push_back(
        RTreeEntry{Aabb::FromCenterHalfExtents(c, Vec3(1, 1, 1)), i});
  }
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  IoStats stats;
  BufferPool pool(&file, &stats);
  const Aabb query = Aabb::FromCenterHalfExtents(
      offset + Vec3(50, 50, 50), Vec3(20, 20, 20));
  std::vector<uint64_t> got;
  index.RangeQuery(&pool, query, &got);
  EXPECT_EQ(Sorted(got), BruteForce(entries, query));
}

TEST(DegenerateGeometryTest, MixedScaleElements) {
  // A few giant elements among thousands of tiny ones (the thick-dendrite
  // pathology, exaggerated).
  Rng rng(404);
  std::vector<RTreeEntry> entries;
  uint64_t id = 0;
  for (; id < 3000; ++id) {
    entries.push_back(RTreeEntry{
        Aabb::FromCenterHalfExtents(
            rng.PointIn(Aabb(Vec3(0, 0, 0), Vec3(100, 100, 100))),
            Vec3(0.1, 0.1, 0.1)),
        id});
  }
  for (; id < 3010; ++id) {
    entries.push_back(RTreeEntry{
        Aabb::FromCenterHalfExtents(
            rng.PointIn(Aabb(Vec3(20, 20, 20), Vec3(80, 80, 80))),
            Vec3(30, 30, 30)),
        id});
  }
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  IoStats stats;
  BufferPool pool(&file, &stats);
  for (const Aabb& q : testing::RandomQueries(40, 405)) {
    std::vector<uint64_t> got;
    index.RangeQuery(&pool, q, &got);
    EXPECT_EQ(Sorted(got), BruteForce(entries, q));
  }
}

// ---------------------------------------------------------------------------
// API misuse / hard limits.
// ---------------------------------------------------------------------------

TEST(HardLimitTest, OversizedMetadataRecordThrows) {
  // With a tiny page, a partition with many neighbors cannot serialize; the
  // build must throw rather than write a corrupt leaf. Dense identical
  // boxes maximize the neighbor fan-out.
  std::vector<RTreeEntry> entries;
  Rng rng(406);
  for (uint64_t i = 0; i < 4000; ++i) {
    // Large overlapping boxes => every partition neighbors every other.
    const Vec3 c = rng.PointIn(Aabb(Vec3(0, 0, 0), Vec3(10, 10, 10)));
    entries.push_back(
        RTreeEntry{Aabb::FromCenterHalfExtents(c, Vec3(5, 5, 5)), i});
  }
  PageFile file(512);
  EXPECT_THROW(FlatIndex::Build(&file, entries), std::runtime_error);
}

TEST(HardLimitTest, EmptyQueriesAreFreeEverywhere) {
  const auto entries = testing::RandomEntries(1000, 407);
  PageFile flat_file, rtree_file;
  FlatIndex flat = FlatIndex::Build(&flat_file, entries);
  RTree rtree = BulkloadStr(&rtree_file, entries);

  IoStats flat_stats, rtree_stats;
  BufferPool flat_pool(&flat_file, &flat_stats);
  BufferPool rtree_pool(&rtree_file, &rtree_stats);
  std::vector<uint64_t> got;
  flat.RangeQuery(&flat_pool, Aabb(), &got);
  rtree.RangeQuery(&rtree_pool, Aabb(), &got);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(flat_stats.TotalReads(), 0u);
  EXPECT_EQ(rtree_stats.TotalReads(), 0u);
}

// ---------------------------------------------------------------------------
// Adversarial distributions for the dynamic R*-tree.
// ---------------------------------------------------------------------------

TEST(RStarAdversarialTest, SortedInsertionOrder) {
  // Monotone insertion order is the classic R-tree worst case; correctness
  // must hold regardless.
  std::vector<RTreeEntry> entries;
  for (uint64_t i = 0; i < 2000; ++i) {
    const double t = static_cast<double>(i) * 0.05;
    entries.push_back(RTreeEntry{
        Aabb::FromCenterHalfExtents(Vec3(t, t, t), Vec3(0.3, 0.3, 0.3)), i});
  }
  PageFile file(512);
  RStarTree tree(&file);
  for (const auto& e : entries) tree.Insert(e);
  IoStats stats;
  BufferPool pool(&file, &stats);
  for (const Aabb& q : testing::RandomQueries(25, 408)) {
    std::vector<uint64_t> got;
    tree.tree().RangeQuery(&pool, q, &got);
    EXPECT_EQ(Sorted(got), BruteForce(entries, q));
  }
}

TEST(RStarAdversarialTest, AlternatingExtremes) {
  // Ping-pong between two far corners to stress ChooseSubtree and splits.
  std::vector<RTreeEntry> entries;
  Rng rng(409);
  for (uint64_t i = 0; i < 1500; ++i) {
    const Vec3 base = (i % 2 == 0) ? Vec3(0, 0, 0) : Vec3(1000, 1000, 1000);
    const Vec3 c = base + Vec3(rng.Uniform(0, 10), rng.Uniform(0, 10),
                               rng.Uniform(0, 10));
    entries.push_back(
        RTreeEntry{Aabb::FromCenterHalfExtents(c, Vec3(1, 1, 1)), i});
  }
  PageFile file(512);
  RStarTree tree(&file);
  for (const auto& e : entries) tree.Insert(e);
  auto stats = tree.tree().ComputeStats();
  EXPECT_EQ(stats.leaf_entries, entries.size());
}

// ---------------------------------------------------------------------------
// Buffer pool under pressure.
// ---------------------------------------------------------------------------

TEST(BufferPressureTest, TinyPoolStillCorrectJustSlower) {
  const auto entries = testing::RandomEntries(4000, 410);
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);

  const Aabb query(Vec3(20, 20, 20), Vec3(60, 60, 60));
  const auto oracle = BruteForce(entries, query);

  IoStats unbounded_stats, tiny_stats;
  BufferPool unbounded(&file, &unbounded_stats);
  BufferPool tiny(&file, &tiny_stats, /*capacity_pages=*/3);

  std::vector<uint64_t> a, b;
  index.RangeQuery(&unbounded, query, &a);
  index.RangeQuery(&tiny, query, &b);
  EXPECT_EQ(Sorted(a), oracle);
  EXPECT_EQ(Sorted(b), oracle);
  EXPECT_GE(tiny_stats.TotalReads(), unbounded_stats.TotalReads())
      << "evictions can only add reads, never change results";
}

}  // namespace
}  // namespace flat
