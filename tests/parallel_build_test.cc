// Build determinism: the parallel build pipeline must produce a PageFile
// that is byte-identical to the serial build — same element order on every
// object page, same neighbor pointers, same seed-tree layout — and the
// allocation-free crawl must return bit-identical results with identical
// IoStats.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/flat_index.h"
#include "core/grid_join.h"
#include "data/mesh_generator.h"
#include "data/neuron_generator.h"
#include "data/uniform_generator.h"
#include "parallel/thread_pool.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "tests/test_util.h"

namespace flat {
namespace {

using testing::RandomEntries;
using testing::RandomQueries;

void ExpectFilesIdentical(const PageFile& a, const PageFile& b) {
  ASSERT_EQ(a.page_size(), b.page_size());
  ASSERT_EQ(a.page_count(), b.page_count());
  for (PageId id = 0; id < a.page_count(); ++id) {
    ASSERT_EQ(a.category(id), b.category(id)) << "category of page " << id;
    ASSERT_EQ(std::memcmp(a.Data(id), b.Data(id), a.page_size()), 0)
        << "page " << id << " differs";
  }
}

void ExpectStructurallyEqual(const FlatIndex::BuildStats& a,
                             const FlatIndex::BuildStats& b) {
  EXPECT_EQ(a.partitions, b.partitions);
  EXPECT_EQ(a.object_pages, b.object_pages);
  EXPECT_EQ(a.seed_leaf_pages, b.seed_leaf_pages);
  EXPECT_EQ(a.seed_internal_pages, b.seed_internal_pages);
  EXPECT_EQ(a.neighbor_pointers, b.neighbor_pointers);
  EXPECT_EQ(a.metadata_bytes, b.metadata_bytes);
  EXPECT_EQ(a.seed_height, b.seed_height);
}

void ExpectParallelBuildIdentical(const std::vector<RTreeEntry>& elements,
                                  size_t threads = 4) {
  PageFile serial_file;
  FlatIndex::BuildStats serial_stats;
  FlatIndex serial =
      FlatIndex::Build(&serial_file, elements, &serial_stats);

  PageFile parallel_file;
  FlatIndex::BuildStats parallel_stats;
  FlatIndex parallel =
      FlatIndex::Build(&parallel_file, elements,
                       FlatIndex::BuildOptions{threads}, &parallel_stats);

  ExpectFilesIdentical(serial_file, parallel_file);
  ExpectStructurallyEqual(serial_stats, parallel_stats);
  EXPECT_EQ(serial.descriptor().seed_root, parallel.descriptor().seed_root);
  EXPECT_EQ(serial.descriptor().root_is_leaf,
            parallel.descriptor().root_is_leaf);
  EXPECT_EQ(serial.descriptor().seed_height, parallel.descriptor().seed_height);
}

TEST(ParallelBuildTest, NeuronDatasetByteIdentical) {
  NeuronParams params;
  params.total_elements = 20000;
  params.seed = 31;
  ExpectParallelBuildIdentical(GenerateNeurons(params).elements);
}

TEST(ParallelBuildTest, MeshDatasetByteIdentical) {
  MeshParams params;
  params.target_triangles = 20000;
  params.seed = 32;
  ExpectParallelBuildIdentical(GenerateMesh(params).elements);
}

TEST(ParallelBuildTest, UniformDatasetByteIdentical) {
  UniformBoxParams params;
  params.count = 20000;
  params.seed = 33;
  ExpectParallelBuildIdentical(GenerateUniformBoxes(params).elements);
}

TEST(ParallelBuildTest, ManyThreadCountsByteIdentical) {
  const auto elements = RandomEntries(15000, 34);
  for (size_t threads : {2, 3, 7}) {
    ExpectParallelBuildIdentical(elements, threads);
  }
}

TEST(ParallelBuildTest, EmptyInput) {
  ExpectParallelBuildIdentical({});
}

TEST(ParallelBuildTest, SingleElement) {
  ExpectParallelBuildIdentical(
      {RTreeEntry{Aabb(Vec3(1, 2, 3), Vec3(4, 5, 6)), 42}});
}

TEST(ParallelBuildTest, AllIdenticalMbrs) {
  std::vector<RTreeEntry> elements;
  for (uint64_t i = 0; i < 500; ++i) {
    elements.push_back(RTreeEntry{Aabb(Vec3(1, 1, 1), Vec3(2, 2, 2)), i});
  }
  ExpectParallelBuildIdentical(elements);
}

TEST(GridJoinTest, MatchesBruteForceOnRandomBoxes) {
  const auto entries = RandomEntries(800, 35, /*max_side=*/12.0);
  std::vector<Aabb> boxes;
  for (const auto& e : entries) boxes.push_back(e.box);

  std::vector<std::vector<uint32_t>> expected(boxes.size());
  for (size_t i = 0; i < boxes.size(); ++i) {
    for (size_t j = 0; j < boxes.size(); ++j) {
      if (i != j && boxes[i].Intersects(boxes[j])) {
        expected[i].push_back(static_cast<uint32_t>(j));
      }
    }
  }

  for (size_t threads : {1, 4}) {
    ThreadPool pool(threads);
    std::vector<std::vector<uint32_t>> got;
    GridIntersectionJoin(boxes, &pool, &got);
    EXPECT_EQ(got, expected) << threads << " threads";
  }
  std::vector<std::vector<uint32_t>> serial;
  GridIntersectionJoin(boxes, nullptr, &serial);
  EXPECT_EQ(serial, expected);
}

TEST(GridJoinTest, DegenerateInputs) {
  std::vector<std::vector<uint32_t>> got;
  GridIntersectionJoin({}, nullptr, &got);
  EXPECT_TRUE(got.empty());

  GridIntersectionJoin({Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1))}, nullptr, &got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0].empty());

  // All-identical (zero-extent grid): everyone neighbors everyone.
  std::vector<Aabb> same(10, Aabb(Vec3(5, 5, 5), Vec3(6, 6, 6)));
  GridIntersectionJoin(same, nullptr, &got);
  ASSERT_EQ(got.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(got[i].size(), 9u);
}

class CrawlScratchQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    elements_ = RandomEntries(12000, 36);
    index_ = FlatIndex::Build(&file_, elements_);
  }

  std::vector<RTreeEntry> elements_;
  PageFile file_;
  FlatIndex index_;
};

TEST_F(CrawlScratchQueryTest, ReusedScratchBitIdenticalWithIdenticalIoStats) {
  CrawlScratch scratch;  // reused across all queries, as an engine worker does
  for (const Aabb& q : RandomQueries(60, 37)) {
    IoStats fresh_io, reused_io;
    std::vector<uint64_t> fresh_ids, reused_ids;
    {
      BufferPool pool(&file_, &fresh_io);
      index_.RangeQuery(&pool, q, &fresh_ids);
    }
    {
      BufferPool pool(&file_, &reused_io);
      index_.RangeQuery(&pool, q, &reused_ids, &scratch);
    }
    ASSERT_EQ(reused_ids, fresh_ids);  // bit-identical, including order
    for (int c = 0; c < kNumPageCategories; ++c) {
      const PageCategory category = static_cast<PageCategory>(c);
      ASSERT_EQ(reused_io.ReadsIn(category), fresh_io.ReadsIn(category));
    }
  }
}

TEST_F(CrawlScratchQueryTest, RangeCountMatchesRangeQueryWithSameIo) {
  CrawlScratch scratch;
  for (const Aabb& q : RandomQueries(60, 38)) {
    IoStats query_io, count_io;
    std::vector<uint64_t> ids;
    {
      BufferPool pool(&file_, &query_io);
      index_.RangeQuery(&pool, q, &ids);
    }
    size_t count;
    {
      BufferPool pool(&file_, &count_io);
      count = index_.RangeCount(&pool, q, &scratch);
    }
    ASSERT_EQ(count, ids.size());
    for (int c = 0; c < kNumPageCategories; ++c) {
      const PageCategory category = static_cast<PageCategory>(c);
      ASSERT_EQ(count_io.ReadsIn(category), query_io.ReadsIn(category));
    }
  }
}

TEST_F(CrawlScratchQueryTest, SphereAndKnnWithScratchMatchScratchless) {
  CrawlScratch scratch;
  Rng rng(39);
  const Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  for (int trial = 0; trial < 20; ++trial) {
    const Vec3 center = rng.PointIn(universe);

    std::vector<uint64_t> sphere_plain, sphere_scratch;
    IoStats io;
    BufferPool pool(&file_, &io);
    index_.SphereQuery(&pool, center, 4.0, &sphere_plain);
    index_.SphereQuery(&pool, center, 4.0, &sphere_scratch, &scratch);
    EXPECT_EQ(sphere_scratch, sphere_plain);

    EXPECT_EQ(index_.KnnQuery(&pool, center, 10, &scratch),
              index_.KnnQuery(&pool, center, 10));
  }
}

}  // namespace
}  // namespace flat
