// The fail-soft execution contract (deadlines, cancellation, I/O budgets,
// injected faults): every query ends in a typed QueryStatus — bit-identical
// results for kOk, a valid partial result otherwise — and never a crash or
// an escaped exception. Fault schedules are deterministic, so each test's
// retry/error accounting is exact, not statistical.
#include "storage/fault_injection.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/flat_index.h"
#include "core/query_control.h"
#include "engine/query_engine.h"
#include "shard/sharded_flat_store.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "tests/test_util.h"

namespace flat {
namespace {

using testing::RandomEntries;
using testing::RandomQueries;

std::vector<uint64_t> CategoryCounts(const IoStats& stats) {
  std::vector<uint64_t> counts(kNumPageCategories);
  for (int c = 0; c < kNumPageCategories; ++c) {
    counts[c] = stats.ReadsIn(static_cast<PageCategory>(c));
  }
  return counts;
}

TEST(FaultScheduleTest, AttemptsAreConsumedDeterministically) {
  FaultSchedule schedule;
  schedule.Add({.page = 7, .attempt = 2, .kind = FaultKind::kEintr});
  schedule.FailRead(/*page=*/9, /*times=*/2);
  EXPECT_EQ(schedule.scheduled(), 3u);

  // Page 7: clean, EINTR, clean.
  EXPECT_EQ(schedule.Next(7).kind, FaultKind::kNone);
  EXPECT_EQ(schedule.Next(7).kind, FaultKind::kEintr);
  EXPECT_EQ(schedule.Next(7).kind, FaultKind::kNone);
  // Page 9: two errors, then clean. Unscheduled pages are always clean.
  EXPECT_EQ(schedule.Next(9).kind, FaultKind::kError);
  EXPECT_EQ(schedule.Next(9).kind, FaultKind::kError);
  EXPECT_EQ(schedule.Next(9).kind, FaultKind::kNone);
  EXPECT_EQ(schedule.Next(1234).kind, FaultKind::kNone);

  EXPECT_EQ(schedule.fired(FaultKind::kEintr), 1u);
  EXPECT_EQ(schedule.fired(FaultKind::kError), 2u);
  EXPECT_EQ(schedule.faults_fired(), 3u);

  // Reset rewinds the attempt counters: the same faults fire again.
  schedule.Reset();
  EXPECT_EQ(schedule.faults_fired(), 0u);
  EXPECT_EQ(schedule.Next(7).kind, FaultKind::kNone);
  EXPECT_EQ(schedule.Next(7).kind, FaultKind::kEintr);
}

TEST(QueryGroupTest, FirstFailureWinsAndCancels) {
  QueryGroup group;
  EXPECT_FALSE(group.cancelled());
  EXPECT_EQ(group.status(), QueryStatus::kOk);

  group.SignalFailure(QueryStatus::kIoError);
  EXPECT_TRUE(group.cancelled());
  EXPECT_EQ(group.status(), QueryStatus::kIoError);

  // A later (e.g. sibling's kCancelled) signal must not mask the cause.
  group.SignalFailure(QueryStatus::kCancelled);
  EXPECT_EQ(group.status(), QueryStatus::kIoError);

  // ThrowIfStopped observes the group as a cancellation.
  QueryControl control;
  control.group = &group;
  try {
    ThrowIfStopped(control, nullptr);
    FAIL() << "expected QueryAbort";
  } catch (const QueryAbort& abort) {
    EXPECT_EQ(abort.status(), QueryStatus::kCancelled);
  }
}

// Shared fixture: one FLAT index over a PageFile, queried through a
// FaultInjectingPageStore wrapper and/or with QueryControls attached.
class FailSoftTest : public ::testing::Test {
 protected:
  void SetUp() override {
    entries_ = RandomEntries(20000, /*seed=*/31);
    index_ = FlatIndex::Build(&file_, entries_);
  }

  // Serial reference with a fresh cold BufferPool, no control, no faults.
  QueryResult RunReference(const Query& q) const {
    QueryResult r;
    BufferPool pool(&file_, &r.io);
    DispatchQuery(index_, q, &pool, &r);
    return r;
  }

  PageFile file_;
  std::vector<RTreeEntry> entries_;
  FlatIndex index_;
  // Covers every entry RandomEntries can produce ([0,100]^3 centers with
  // small half-extents): the universe query crawls the entire index.
  const Aabb universe_ = Aabb(Vec3(-10, -10, -10), Vec3(110, 110, 110));
};

// An empty (or null) schedule makes the wrapper fully transparent: ids and
// per-category IoStats bit-identical to querying the inner store directly.
TEST_F(FailSoftTest, EmptyScheduleWrapperIsTransparent) {
  FaultSchedule empty;
  FaultInjectingPageStore wrapped(&file_, &empty);
  FlatIndex through = FlatIndex::Attach(&wrapped, index_.descriptor());

  for (const Aabb& box : RandomQueries(12, /*seed=*/41)) {
    const QueryResult expected = RunReference(Query::Range(box));
    QueryResult got;
    BufferPool pool(&wrapped, &got.io);
    DispatchQuery(through, Query::Range(box), &pool, &got);
    EXPECT_EQ(got.status, QueryStatus::kOk);
    EXPECT_EQ(got.ids, expected.ids);
    EXPECT_EQ(CategoryCounts(got.io), CategoryCounts(expected.io));
  }
  EXPECT_EQ(wrapped.read_retries(), 0u);
  EXPECT_EQ(wrapped.read_errors(), 0u);
}

// Transient faults within the retry budget recover to an exact kOk result,
// and the batch's merged IoRetries equals the schedule's fired count — the
// buffer pools attribute each retry to the query whose miss burned it.
TEST_F(FailSoftTest, TransientFaultsRecoverWithExactRetryAccounting) {
  FaultSchedule schedule;
  schedule.Add({.page = 0, .attempt = 1, .kind = FaultKind::kEintr});
  schedule.Add({.page = 1, .attempt = 1, .kind = FaultKind::kEintr});
  schedule.FailRead(/*page=*/2, /*times=*/2);  // within the budget of 4
  FaultInjectingPageStore wrapped(&file_, &schedule);
  FlatIndex through = FlatIndex::Attach(&wrapped, index_.descriptor());

  std::vector<Query> batch;
  batch.push_back(Query::Range(universe_));  // touches every page
  for (const Aabb& box : RandomQueries(7, /*seed=*/43)) {
    batch.push_back(Query::Range(box));
  }

  for (size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    schedule.Reset();
    QueryEngine::Options options;
    options.threads = threads;
    QueryEngine engine(&through, options);
    BatchStats stats;
    const std::vector<QueryResult> results = engine.Run(batch, &stats);

    uint64_t merged_retries = 0;
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].status, QueryStatus::kOk) << "query " << i;
      EXPECT_EQ(results[i].ids, RunReference(batch[i]).ids) << "query " << i;
      merged_retries += results[i].io.IoRetries();
    }
    EXPECT_EQ(stats.queries_ok, batch.size());
    EXPECT_EQ(stats.queries_failed, 0u);
    // 2 EINTR + 2 recovered errors, fired exactly once each per pass
    // (attempt counters are per page, not per query).
    EXPECT_EQ(merged_retries, 4u);
    EXPECT_EQ(stats.io.IoRetries(), 4u);
    EXPECT_EQ(stats.io.IoErrors(), 0u);
  }
}

// A fault outliving the retry budget becomes a kIoError result — a typed
// outcome with the exception text attached, never an escaped exception.
TEST_F(FailSoftTest, PermanentFaultYieldsTypedIoErrorResult) {
  FaultSchedule schedule;
  // The seed root is read by every range query; fail it forever.
  schedule.FailRead(index_.descriptor().seed_root, /*times=*/1000000);
  FaultInjectingPageStore::Options wrapper_options;
  wrapper_options.max_read_retries = 2;
  FaultInjectingPageStore wrapped(&file_, &schedule, wrapper_options);
  FlatIndex through = FlatIndex::Attach(&wrapped, index_.descriptor());

  QueryEngine engine(&through, QueryEngine::Options{.threads = 1});
  BatchStats stats;
  const std::vector<QueryResult> results =
      engine.Run({Query::Range(universe_)}, &stats);

  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, QueryStatus::kIoError);
  EXPECT_FALSE(results[0].ok());
  EXPECT_FALSE(results[0].error.empty());
  EXPECT_EQ(results[0].count, results[0].ids.size());
  EXPECT_EQ(results[0].io.IoErrors(), 1u);
  EXPECT_EQ(stats.queries_failed, 1u);
  EXPECT_EQ(wrapped.read_errors(), 1u);
  EXPECT_EQ(wrapped.read_retries(), 2u);  // the budget, then the throw
}

// An already-expired deadline stops the query at its first cancellation
// point: kDeadlineExceeded, empty result.
TEST_F(FailSoftTest, ExpiredDeadlineStopsImmediately) {
  QueryControl control;
  control.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  Query query = Query::Range(universe_);
  query.control = &control;

  QueryEngine engine(&index_, QueryEngine::Options{.threads = 1});
  const std::vector<QueryResult> results = engine.Run({query});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, QueryStatus::kDeadlineExceeded);
  EXPECT_TRUE(results[0].ids.empty());
  EXPECT_EQ(results[0].count, 0u);
  // The deadline fires before the crawl frontier is processed: at most the
  // root read has been charged.
  EXPECT_LE(results[0].io.TotalReads(), 1u);
}

// A generous deadline plus a huge budget changes nothing: bit-identical to
// running without a control, at 1 and 4 threads.
TEST_F(FailSoftTest, GenerousControlIsBitIdentical) {
  QueryControl control = QueryControl::WithTimeout(std::chrono::hours(1));
  control.max_page_reads = 1u << 30;

  std::vector<Query> batch;
  for (const Aabb& box : RandomQueries(10, /*seed=*/47)) {
    batch.push_back(Query::Range(box));
    batch.back().control = &control;
  }

  for (size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    QueryEngine engine(&index_, QueryEngine::Options{.threads = threads});
    const std::vector<QueryResult> results = engine.Run(batch);
    for (size_t i = 0; i < results.size(); ++i) {
      Query bare = batch[i];
      bare.control = nullptr;
      const QueryResult expected = RunReference(bare);
      EXPECT_EQ(results[i].status, QueryStatus::kOk) << "query " << i;
      EXPECT_EQ(results[i].ids, expected.ids) << "query " << i;
      EXPECT_EQ(CategoryCounts(results[i].io), CategoryCounts(expected.io))
          << "query " << i;
    }
  }
}

// A pre-set external cancel token yields kCancelled before any real work.
TEST_F(FailSoftTest, PreCancelledTokenYieldsCancelled) {
  std::atomic<bool> cancel{true};
  QueryControl control;
  control.cancel = &cancel;
  Query query = Query::RangeCount(universe_);
  query.control = &control;

  QueryEngine engine(&index_, QueryEngine::Options{.threads = 1});
  const std::vector<QueryResult> results = engine.Run({query});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, QueryStatus::kCancelled);
  // Partial kRangeCount keeps the tally accumulated so far; a pre-set
  // token trips the first cancellation point before anything is counted.
  EXPECT_EQ(results[0].count, 0u);
}

// Cancellation arriving mid-batch from another thread: every query ends in
// kOk (bit-identical) or kCancelled (valid partial), nothing crashes, and
// the engine returns promptly.
TEST_F(FailSoftTest, MidBatchCancellationIsCleanAtEveryThreadCount) {
  std::atomic<bool> cancel{false};
  QueryControl control;
  control.cancel = &cancel;

  std::vector<Query> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back(Query::Range(universe_));  // heavy: full crawl each
    batch.back().control = &control;
  }

  QueryEngine engine(&index_, QueryEngine::Options{.threads = 4});
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    cancel.store(true, std::memory_order_release);
  });
  const std::vector<QueryResult> results = engine.Run(batch);
  canceller.join();

  const QueryResult expected = RunReference(Query::Range(universe_));
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i].status == QueryStatus::kOk) {
      EXPECT_EQ(results[i].ids, expected.ids) << "query " << i;
    } else {
      EXPECT_EQ(results[i].status, QueryStatus::kCancelled) << "query " << i;
      EXPECT_EQ(results[i].count, results[i].ids.size()) << "query " << i;
      EXPECT_LE(results[i].ids.size(), expected.ids.size()) << "query " << i;
    }
  }
}

// An I/O budget bounds the page reads: a tiny budget stops the crawl with
// kBudgetExceeded close to the limit; a huge one changes nothing.
TEST_F(FailSoftTest, IoBudgetBoundsPageReads) {
  const QueryResult expected = RunReference(Query::Range(universe_));
  const uint64_t full_reads = expected.io.TotalReads();
  ASSERT_GT(full_reads, 16u) << "universe query must be I/O heavy";

  QueryControl small;
  small.max_page_reads = 8;
  Query query = Query::Range(universe_);
  query.control = &small;

  QueryEngine engine(&index_, QueryEngine::Options{.threads = 1});
  const std::vector<QueryResult> capped = engine.Run({query});
  ASSERT_EQ(capped.size(), 1u);
  EXPECT_EQ(capped[0].status, QueryStatus::kBudgetExceeded);
  // The budget is checked once per frontier pop / record probe, each of
  // which reads a bounded handful of pages: small overshoot allowed.
  EXPECT_LE(capped[0].io.TotalReads(), 8u + 4u);
  EXPECT_LT(capped[0].io.TotalReads(), full_reads);

  QueryControl huge;
  huge.max_page_reads = full_reads * 10;
  query.control = &huge;
  const std::vector<QueryResult> uncapped = engine.Run({query});
  EXPECT_EQ(uncapped[0].status, QueryStatus::kOk);
  EXPECT_EQ(uncapped[0].ids, expected.ids);
}

// The controls compose with every query type (range, count, seed-scan,
// sphere): an already-expired deadline is a typed stop at the very first
// cancellation point, so even the kept partial tallies are still zero.
TEST_F(FailSoftTest, ControlsApplyToEveryQueryType) {
  QueryControl expired;
  expired.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  const Vec3 center = universe_.Center();

  std::vector<Query> batch = {
      Query::Range(universe_),
      Query::RangeCount(universe_),
      Query::RangeSeedScan(universe_),
      Query::Sphere(center, universe_.Extents().x),
  };
  for (Query& q : batch) q.control = &expired;

  QueryEngine engine(&index_, QueryEngine::Options{.threads = 2});
  const std::vector<QueryResult> results = engine.Run(batch);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status, QueryStatus::kDeadlineExceeded)
        << "query " << i;
    EXPECT_EQ(results[i].count, 0u) << "query " << i;
  }
}

// Randomized-but-seeded fault schedules, oracle-checked at 1 and 4 threads:
// every query must end kOk with bit-identical ids or carry a typed failure
// status — and the process must survive every schedule.
TEST_F(FailSoftTest, SeededFaultSchedulesAreOracleChecked) {
  std::vector<Query> batch;
  for (const Aabb& box : RandomQueries(16, /*seed=*/53)) {
    batch.push_back(Query::Range(box));
  }
  std::vector<QueryResult> reference;
  for (const Query& q : batch) reference.push_back(RunReference(q));

  std::mt19937_64 rng(12345);
  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    FaultSchedule schedule;
    const size_t faults = 4 + rng() % 12;
    for (size_t f = 0; f < faults; ++f) {
      FaultSpec spec;
      spec.page = static_cast<PageId>(rng() % file_.page_count());
      spec.attempt = 1 + rng() % 3;
      switch (rng() % 4) {
        case 0: spec.kind = FaultKind::kEintr; break;
        case 1: spec.kind = FaultKind::kShortRead; break;
        case 2: spec.kind = FaultKind::kLatency; spec.latency_micros = 10;
                break;
        default: spec.kind = FaultKind::kError; break;
      }
      schedule.Add(spec);
    }
    FaultInjectingPageStore::Options wrapper_options;
    wrapper_options.max_read_retries = 1;  // permanent faults stay reachable
    FaultInjectingPageStore wrapped(&file_, &schedule, wrapper_options);
    FlatIndex through = FlatIndex::Attach(&wrapped, index_.descriptor());

    for (size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      schedule.Reset();
      QueryEngine::Options options;
      options.threads = threads;
      QueryEngine engine(&through, options);
      const std::vector<QueryResult> results = engine.Run(batch);
      ASSERT_EQ(results.size(), batch.size());
      for (size_t i = 0; i < results.size(); ++i) {
        if (results[i].status == QueryStatus::kOk) {
          EXPECT_EQ(results[i].ids, reference[i].ids) << "query " << i;
        } else {
          EXPECT_EQ(results[i].status, QueryStatus::kIoError) << "query " << i;
          EXPECT_FALSE(results[i].error.empty()) << "query " << i;
        }
      }
    }
  }
}

// Admission control sheds the batch tail as kRejected with zero I/O while
// the admitted head stays bit-identical.
TEST_F(FailSoftTest, AdmissionControlShedsBatchTail) {
  std::vector<Query> batch;
  for (const Aabb& box : RandomQueries(10, /*seed=*/59)) {
    batch.push_back(Query::Range(box));
  }

  QueryEngine::Options options;
  options.threads = 2;
  options.max_queued_queries = 4;
  QueryEngine engine(&index_, options);
  BatchStats stats;
  const std::vector<QueryResult> results = engine.Run(batch, &stats);

  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(results[i].status, QueryStatus::kOk) << "query " << i;
    EXPECT_EQ(results[i].ids, RunReference(batch[i]).ids) << "query " << i;
  }
  for (size_t i = 4; i < batch.size(); ++i) {
    EXPECT_EQ(results[i].status, QueryStatus::kRejected) << "query " << i;
    EXPECT_TRUE(results[i].ids.empty()) << "query " << i;
    EXPECT_EQ(results[i].io.TotalReads(), 0u) << "query " << i;
  }
  EXPECT_EQ(stats.queries_ok, 4u);
  EXPECT_EQ(stats.queries_shed, 6u);
  EXPECT_EQ(stats.queries_failed, 0u);
  EXPECT_EQ(stats.io.QueriesShed(), 6u);
}

// Group cancellation across a scattered store: one query's expired deadline
// fails every one of its sub-queries, while an uncontrolled query in the
// same batch is answered bit-identically.
TEST(ShardedFailSoftTest, BatchMixesControlledAndUncontrolledQueries) {
  auto entries = RandomEntries(20000, /*seed=*/61);
  const Aabb universe(Vec3(-10, -10, -10), Vec3(110, 110, 110));

  ShardedFlatStore::Options options;
  options.num_shards = 4;
  options.num_threads = 2;
  ShardedFlatStore store = ShardedFlatStore::Build(std::move(entries), options);

  QueryControl expired;
  expired.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);

  std::vector<Query> batch;
  batch.push_back(Query::Range(universe));  // uncontrolled
  batch.push_back(Query::Range(universe));
  batch.back().control = &expired;

  BatchStats stats;
  const std::vector<QueryResult> results = store.RunBatch(batch, &stats);
  ASSERT_EQ(results.size(), 2u);

  const std::vector<uint64_t> expected = store.RangeQuery(universe);
  EXPECT_EQ(results[0].status, QueryStatus::kOk);
  EXPECT_EQ(results[0].ids, expected);
  EXPECT_EQ(results[1].status, QueryStatus::kDeadlineExceeded);
  EXPECT_TRUE(results[1].ids.empty());
  EXPECT_EQ(stats.queries_ok, 1u);
  EXPECT_EQ(stats.queries_failed, 1u);
}

// A loaded sharded store wired with a fault schedule: unrecoverable shard
// reads surface as kIoError batch results (scatter-gather propagates the
// failing shard's status), never as an exception or a torn merge — and the
// same store reloaded without faults answers bit-identically to memory.
TEST(ShardedFailSoftTest, LoadedStoreSurvivesInjectedShardFaults) {
  auto entries = RandomEntries(12000, /*seed=*/67);
  const Aabb universe(Vec3(-10, -10, -10), Vec3(110, 110, 110));

  ShardedFlatStore::Options options;
  options.num_shards = 3;
  options.num_threads = 2;
  ShardedFlatStore built = ShardedFlatStore::Build(std::move(entries), options);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "flat_fault_injection_store";
  std::filesystem::remove_all(dir);
  built.Save(dir.string());

  const std::vector<uint64_t> expected = built.RangeQuery(universe);

  {
    // Clean reload through DiskPageFile with explicit (default) options.
    DiskPageFile::Options disk_options;
    disk_options.async_prefetch = false;
    ShardedFlatStore reloaded = ShardedFlatStore::Load(
        dir.string(), /*num_threads=*/2, ShardedFlatStore::LoadBackend::kDisk,
        &disk_options);
    EXPECT_EQ(reloaded.RangeQuery(universe), expected);
  }

  {
    // The first pages of every shard fail beyond any retry budget. A
    // universe query crawls the entire store, so it must hit a failing page
    // in some shard and the merged result must be kIoError.
    FaultSchedule schedule;
    for (PageId page = 0; page < 64; ++page) {
      schedule.FailRead(page, /*times=*/1000000);
    }
    DiskPageFile::Options disk_options;
    disk_options.async_prefetch = false;
    disk_options.max_read_retries = 1;
    disk_options.retry_backoff_micros = 0;
    disk_options.fault_schedule = &schedule;
    ShardedFlatStore faulty = ShardedFlatStore::Load(
        dir.string(), /*num_threads=*/2, ShardedFlatStore::LoadBackend::kDisk,
        &disk_options);

    BatchStats stats;
    const std::vector<QueryResult> results =
        faulty.RunBatch({Query::Range(universe)}, &stats);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, QueryStatus::kIoError);
    EXPECT_FALSE(results[0].error.empty());
    EXPECT_EQ(stats.queries_failed, 1u);
    EXPECT_GT(stats.io.IoErrors(), 0u);
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace flat
