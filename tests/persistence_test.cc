#include "storage/persistence.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/flat_index.h"
#include "rtree/bulkload.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace flat {
namespace {

TEST(PersistenceTest, EmptyPageFileRoundTrip) {
  PageFile file(2048);
  std::stringstream stream;
  SavePageFile(file, stream);
  auto loaded = LoadPageFile(stream);
  EXPECT_EQ(loaded->page_size(), 2048u);
  EXPECT_EQ(loaded->page_count(), 0u);
}

TEST(PersistenceTest, PagesAndCategoriesSurvive) {
  PageFile file(512);
  PageId a = file.Allocate(PageCategory::kObject);
  PageId b = file.Allocate(PageCategory::kSeedLeaf);
  std::memcpy(file.MutableData(a), "alpha", 5);
  std::memcpy(file.MutableData(b), "bravo", 5);

  std::stringstream stream;
  SavePageFile(file, stream);
  auto loaded = LoadPageFile(stream);

  ASSERT_EQ(loaded->page_count(), 2u);
  EXPECT_EQ(loaded->category(a), PageCategory::kObject);
  EXPECT_EQ(loaded->category(b), PageCategory::kSeedLeaf);
  EXPECT_EQ(std::memcmp(loaded->Data(a), "alpha", 5), 0);
  EXPECT_EQ(std::memcmp(loaded->Data(b), "bravo", 5), 0);
}

TEST(PersistenceTest, RejectsGarbageAndTruncation) {
  std::stringstream garbage("this is not a page file at all");
  EXPECT_THROW(LoadPageFile(garbage), std::runtime_error);

  PageFile file;
  file.Allocate(PageCategory::kObject);
  std::stringstream stream;
  SavePageFile(file, stream);
  std::string bytes = stream.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(LoadPageFile(truncated), std::runtime_error);
}

TEST(PersistenceTest, FlatIndexSurvivesSaveLoadAttach) {
  const auto entries = testing::RandomEntries(5000, 311);
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  const FlatIndex::Descriptor descriptor = index.descriptor();

  std::stringstream stream;
  SavePageFile(file, stream);
  auto loaded = LoadPageFile(stream);
  FlatIndex reopened = FlatIndex::Attach(loaded.get(), descriptor);

  IoStats original_stats, reopened_stats;
  BufferPool original_pool(&file, &original_stats);
  BufferPool reopened_pool(loaded.get(), &reopened_stats);
  for (const Aabb& q : testing::RandomQueries(30, 312)) {
    std::vector<uint64_t> original, again;
    original_pool.Clear();
    index.RangeQuery(&original_pool, q, &original);
    reopened_pool.Clear();
    reopened.RangeQuery(&reopened_pool, q, &again);
    EXPECT_EQ(testing::Sorted(again), testing::Sorted(original));
  }
  // Identical structure => identical I/O.
  EXPECT_EQ(reopened_stats.TotalReads(), original_stats.TotalReads());
}

TEST(PersistenceTest, RTreeSurvivesSaveLoad) {
  const auto entries = testing::RandomEntries(3000, 313);
  PageFile file;
  RTree tree = BulkloadPrTree(&file, entries);

  std::stringstream stream;
  SavePageFile(file, stream);
  auto loaded = LoadPageFile(stream);
  RTree reopened(loaded.get(), tree.root(), tree.height());

  IoStats stats;
  BufferPool pool(loaded.get(), &stats);
  for (const Aabb& q : testing::RandomQueries(20, 314)) {
    std::vector<uint64_t> got;
    reopened.RangeQuery(&pool, q, &got);
    EXPECT_EQ(testing::Sorted(got), testing::BruteForce(entries, q));
  }
}

TEST(PersistenceTest, DescriptorIsTrivialToStoreExternally) {
  // The descriptor is three plain fields; verify a manual round-trip (as a
  // user persisting it in their own catalog would).
  const auto entries = testing::RandomEntries(500, 315);
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  FlatIndex::Descriptor d = index.descriptor();
  FlatIndex::Descriptor copy{d.seed_root, d.root_is_leaf, d.seed_height};
  FlatIndex reopened = FlatIndex::Attach(&file, copy);
  IoStats stats;
  BufferPool pool(&file, &stats);
  EXPECT_EQ(reopened.RangeCount(&pool, Aabb(Vec3(0, 0, 0),
                                            Vec3(100, 100, 100))),
            entries.size());
}

}  // namespace
}  // namespace flat
