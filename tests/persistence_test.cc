#include "storage/persistence.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <streambuf>
#include <string>

#include "core/flat_index.h"
#include "rtree/bulkload.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace flat {
namespace {

// Hand-crafts a FLATPGF1 byte stream: magic | u32 page_size | u32 page_count
// | body (caller supplies category table + page data, possibly malformed).
std::string RawPageFileBytes(uint32_t page_size, uint32_t page_count,
                             const std::string& body) {
  std::string bytes = "FLATPGF1";
  const auto put_u32 = [&bytes](uint32_t value) {
    char buf[sizeof(value)];
    std::memcpy(buf, &value, sizeof(value));
    bytes.append(buf, sizeof(value));
  };
  put_u32(page_size);
  put_u32(page_count);
  bytes += body;
  return bytes;
}

// A read-only stream with no seek support (tellg reports -1), like a pipe or
// socket: LoadPageFile cannot learn the stream size up front and must survive
// a hostile header through incremental parsing alone.
class UnseekableBuf : public std::streambuf {
 public:
  explicit UnseekableBuf(std::string bytes) : bytes_(std::move(bytes)) {
    setg(bytes_.data(), bytes_.data(), bytes_.data() + bytes_.size());
  }

 private:
  std::string bytes_;
};

std::string ThrownMessage(const std::string& bytes, bool seekable) {
  try {
    if (seekable) {
      std::stringstream in(bytes);
      LoadPageFile(in);
    } else {
      UnseekableBuf buf(bytes);
      std::istream in(&buf);
      LoadPageFile(in);
    }
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

TEST(PersistenceTest, EmptyPageFileRoundTrip) {
  PageFile file(2048);
  std::stringstream stream;
  SavePageFile(file, stream);
  auto loaded = LoadPageFile(stream);
  EXPECT_EQ(loaded->page_size(), 2048u);
  EXPECT_EQ(loaded->page_count(), 0u);
}

TEST(PersistenceTest, PagesAndCategoriesSurvive) {
  PageFile file(512);
  PageId a = file.Allocate(PageCategory::kObject);
  PageId b = file.Allocate(PageCategory::kSeedLeaf);
  std::memcpy(file.MutableData(a), "alpha", 5);
  std::memcpy(file.MutableData(b), "bravo", 5);

  std::stringstream stream;
  SavePageFile(file, stream);
  auto loaded = LoadPageFile(stream);

  ASSERT_EQ(loaded->page_count(), 2u);
  EXPECT_EQ(loaded->category(a), PageCategory::kObject);
  EXPECT_EQ(loaded->category(b), PageCategory::kSeedLeaf);
  EXPECT_EQ(std::memcmp(loaded->Data(a), "alpha", 5), 0);
  EXPECT_EQ(std::memcmp(loaded->Data(b), "bravo", 5), 0);
}

TEST(PersistenceTest, RejectsGarbageAndTruncation) {
  std::stringstream garbage("this is not a page file at all");
  EXPECT_THROW(LoadPageFile(garbage), std::runtime_error);

  PageFile file;
  file.Allocate(PageCategory::kObject);
  std::stringstream stream;
  SavePageFile(file, stream);
  std::string bytes = stream.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(LoadPageFile(truncated), std::runtime_error);
}

// A header claiming 2^30 pages over a near-empty seekable stream must be
// rejected by the size bound before any per-page allocation happens.
TEST(PersistenceTest, HostilePageCountFailsAgainstStreamSize) {
  const std::string bytes =
      RawPageFileBytes(/*page_size=*/512, /*page_count=*/1u << 30, "abc");
  EXPECT_EQ(ThrownMessage(bytes, /*seekable=*/true),
            "LoadPageFile: header page count exceeds stream size");
}

// On an unseekable stream the size bound is unavailable; the incremental
// category parse must still fail on the first missing byte instead of
// resizing to the hostile count up front.
TEST(PersistenceTest, HostilePageCountFailsIncrementallyWhenUnseekable) {
  const std::string bytes =
      RawPageFileBytes(/*page_size=*/512, /*page_count=*/1u << 30,
                       std::string(1024, '\0'));
  EXPECT_EQ(ThrownMessage(bytes, /*seekable=*/false),
            "LoadPageFile: truncated category table");
}

TEST(PersistenceTest, TruncatedCategoryTableIsRejected) {
  // 4 pages declared, only 2 category bytes present.
  const std::string bytes =
      RawPageFileBytes(/*page_size=*/512, /*page_count=*/4, std::string(2, 0));
  EXPECT_EQ(ThrownMessage(bytes, /*seekable=*/false),
            "LoadPageFile: truncated category table");
  // The seekable path rejects the same stream via the up-front bound.
  EXPECT_EQ(ThrownMessage(bytes, /*seekable=*/true),
            "LoadPageFile: header page count exceeds stream size");
}

TEST(PersistenceTest, TruncatedPageDataIsRejected) {
  // One page declared, category present, but only half the page's bytes.
  std::string body(1, '\0');  // category kRTreeInternal
  body += std::string(256, 'x');
  const std::string bytes =
      RawPageFileBytes(/*page_size=*/512, /*page_count=*/1, body);
  EXPECT_EQ(ThrownMessage(bytes, /*seekable=*/false),
            "LoadPageFile: truncated page data");
}

TEST(PersistenceTest, InvalidCategoryByteIsRejected) {
  std::string body(1, static_cast<char>(0xEE));  // out-of-range category
  body += std::string(512, '\0');
  const std::string bytes =
      RawPageFileBytes(/*page_size=*/512, /*page_count=*/1, body);
  EXPECT_EQ(ThrownMessage(bytes, /*seekable=*/true),
            "LoadPageFile: invalid page category");
}

TEST(PersistenceTest, ImplausiblePageSizeIsRejected) {
  EXPECT_EQ(ThrownMessage(RawPageFileBytes(/*page_size=*/32,
                                           /*page_count=*/0, ""),
                          /*seekable=*/true),
            "LoadPageFile: implausible page size");
  EXPECT_EQ(ThrownMessage(RawPageFileBytes(/*page_size=*/65u << 20,
                                           /*page_count=*/0, ""),
                          /*seekable=*/true),
            "LoadPageFile: implausible page size");
}

// A zero-page stream is a valid (empty) file on both stream flavors.
TEST(PersistenceTest, ZeroPageStreamLoads) {
  const std::string bytes =
      RawPageFileBytes(/*page_size=*/4096, /*page_count=*/0, "");
  {
    std::stringstream in(bytes);
    auto loaded = LoadPageFile(in);
    EXPECT_EQ(loaded->page_count(), 0u);
    EXPECT_EQ(loaded->page_size(), 4096u);
  }
  {
    UnseekableBuf buf(bytes);
    std::istream in(&buf);
    auto loaded = LoadPageFile(in);
    EXPECT_EQ(loaded->page_count(), 0u);
  }
}

// The loader tolerates trailing bytes after the declared pages (a container
// may append its own footer); the declared prefix must parse as usual.
TEST(PersistenceTest, TrailingBytesAreIgnored) {
  PageFile file(128);
  const PageId id = file.Allocate(PageCategory::kObject);
  std::memcpy(file.MutableData(id), "tail-safe", 9);
  std::stringstream stream;
  SavePageFile(file, stream);
  stream << "FOOTERFOOTER";
  auto loaded = LoadPageFile(stream);
  ASSERT_EQ(loaded->page_count(), 1u);
  EXPECT_EQ(std::memcmp(loaded->Data(id), "tail-safe", 9), 0);
}

TEST(PersistenceTest, FlatIndexSurvivesSaveLoadAttach) {
  const auto entries = testing::RandomEntries(5000, 311);
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  const FlatIndex::Descriptor descriptor = index.descriptor();

  std::stringstream stream;
  SavePageFile(file, stream);
  auto loaded = LoadPageFile(stream);
  FlatIndex reopened = FlatIndex::Attach(loaded.get(), descriptor);

  IoStats original_stats, reopened_stats;
  BufferPool original_pool(&file, &original_stats);
  BufferPool reopened_pool(loaded.get(), &reopened_stats);
  for (const Aabb& q : testing::RandomQueries(30, 312)) {
    std::vector<uint64_t> original, again;
    original_pool.Clear();
    index.RangeQuery(&original_pool, q, &original);
    reopened_pool.Clear();
    reopened.RangeQuery(&reopened_pool, q, &again);
    EXPECT_EQ(testing::Sorted(again), testing::Sorted(original));
  }
  // Identical structure => identical I/O.
  EXPECT_EQ(reopened_stats.TotalReads(), original_stats.TotalReads());
}

TEST(PersistenceTest, RTreeSurvivesSaveLoad) {
  const auto entries = testing::RandomEntries(3000, 313);
  PageFile file;
  RTree tree = BulkloadPrTree(&file, entries);

  std::stringstream stream;
  SavePageFile(file, stream);
  auto loaded = LoadPageFile(stream);
  RTree reopened(loaded.get(), tree.root(), tree.height());

  IoStats stats;
  BufferPool pool(loaded.get(), &stats);
  for (const Aabb& q : testing::RandomQueries(20, 314)) {
    std::vector<uint64_t> got;
    reopened.RangeQuery(&pool, q, &got);
    EXPECT_EQ(testing::Sorted(got), testing::BruteForce(entries, q));
  }
}

TEST(PersistenceTest, DescriptorIsTrivialToStoreExternally) {
  // The descriptor is three plain fields; verify a manual round-trip (as a
  // user persisting it in their own catalog would).
  const auto entries = testing::RandomEntries(500, 315);
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  FlatIndex::Descriptor d = index.descriptor();
  FlatIndex::Descriptor copy{d.seed_root, d.root_is_leaf, d.seed_height};
  FlatIndex reopened = FlatIndex::Attach(&file, copy);
  IoStats stats;
  BufferPool pool(&file, &stats);
  EXPECT_EQ(reopened.RangeCount(&pool, Aabb(Vec3(0, 0, 0),
                                            Vec3(100, 100, 100))),
            entries.size());
}

}  // namespace
}  // namespace flat
