#ifndef FLAT_TESTS_TEST_UTIL_H_
#define FLAT_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geometry/aabb.h"
#include "geometry/rng.h"
#include "rtree/entry.h"

namespace flat {
namespace testing {

/// `count` random boxes with ids 0..count-1 inside [0,100]^3.
inline std::vector<RTreeEntry> RandomEntries(size_t count, uint64_t seed,
                                             double max_side = 3.0) {
  Rng rng(seed);
  Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  std::vector<RTreeEntry> entries;
  entries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Vec3 center = rng.PointIn(universe);
    Vec3 half(rng.Uniform(0.01, max_side) / 2,
              rng.Uniform(0.01, max_side) / 2,
              rng.Uniform(0.01, max_side) / 2);
    entries.push_back(
        RTreeEntry{Aabb::FromCenterHalfExtents(center, half), i});
  }
  return entries;
}

/// Oracle: ids of entries intersecting `query`, sorted.
inline std::vector<uint64_t> BruteForce(const std::vector<RTreeEntry>& entries,
                                        const Aabb& query) {
  std::vector<uint64_t> out;
  for (const RTreeEntry& e : entries) {
    if (e.box.Intersects(query)) out.push_back(e.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Sorted copy (indexes return results in traversal order).
inline std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Random query boxes covering a spread of sizes within [0,100]^3.
inline std::vector<Aabb> RandomQueries(size_t count, uint64_t seed) {
  Rng rng(seed);
  Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  std::vector<Aabb> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Vec3 center = rng.PointIn(universe);
    double side = rng.Uniform(0.5, 30.0);
    Vec3 half(rng.Uniform(0.2, 1.0) * side / 2,
              rng.Uniform(0.2, 1.0) * side / 2,
              rng.Uniform(0.2, 1.0) * side / 2);
    queries.push_back(Aabb::FromCenterHalfExtents(center, half));
  }
  return queries;
}

}  // namespace testing
}  // namespace flat

#endif  // FLAT_TESTS_TEST_UTIL_H_
