#ifndef FLAT_TESTS_TEST_UTIL_H_
#define FLAT_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "geometry/aabb.h"
#include "geometry/rng.h"
#include "gtest/gtest.h"
#include "rtree/entry.h"
#include "shard/sharded_flat_store.h"

namespace flat {
namespace testing {

/// `count` random boxes with ids 0..count-1 inside [0,100]^3.
inline std::vector<RTreeEntry> RandomEntries(size_t count, uint64_t seed,
                                             double max_side = 3.0) {
  Rng rng(seed);
  Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  std::vector<RTreeEntry> entries;
  entries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Vec3 center = rng.PointIn(universe);
    Vec3 half(rng.Uniform(0.01, max_side) / 2,
              rng.Uniform(0.01, max_side) / 2,
              rng.Uniform(0.01, max_side) / 2);
    entries.push_back(
        RTreeEntry{Aabb::FromCenterHalfExtents(center, half), i});
  }
  return entries;
}

/// Oracle: ids of entries intersecting `query`, sorted.
inline std::vector<uint64_t> BruteForce(const std::vector<RTreeEntry>& entries,
                                        const Aabb& query) {
  std::vector<uint64_t> out;
  for (const RTreeEntry& e : entries) {
    if (e.box.Intersects(query)) out.push_back(e.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Sorted copy (indexes return results in traversal order).
inline std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Random query boxes covering a spread of sizes within [0,100]^3.
inline std::vector<Aabb> RandomQueries(size_t count, uint64_t seed) {
  Rng rng(seed);
  Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  std::vector<Aabb> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Vec3 center = rng.PointIn(universe);
    double side = rng.Uniform(0.5, 30.0);
    Vec3 half(rng.Uniform(0.2, 1.0) * side / 2,
              rng.Uniform(0.2, 1.0) * side / 2,
              rng.Uniform(0.2, 1.0) * side / 2);
    queries.push_back(Aabb::FromCenterHalfExtents(center, half));
  }
  return queries;
}

/// Brute-force mirror of a dynamic store: the oracle side of the
/// oracle-differential harness. Updated in lockstep with the store's
/// Insert/Erase (same upsert / delete-missing-is-a-no-op semantics) and
/// queried by full scan, so any disagreement with the store is a store bug.
class OracleMirror {
 public:
  explicit OracleMirror(const std::vector<RTreeEntry>& initial = {}) {
    for (const RTreeEntry& e : initial) boxes_[e.id] = e.box;
  }

  void Insert(const RTreeEntry& e) { boxes_[e.id] = e.box; }
  void Erase(uint64_t id) { boxes_.erase(id); }

  std::vector<uint64_t> RangeQuery(const Aabb& query) const {
    std::vector<uint64_t> out;
    for (const auto& [id, box] : boxes_) {
      if (box.Intersects(query)) out.push_back(id);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  uint64_t RangeCount(const Aabb& query) const {
    uint64_t count = 0;
    for (const auto& [id, box] : boxes_) {
      if (box.Intersects(query)) ++count;
    }
    return count;
  }

  std::vector<uint64_t> SphereQuery(const Vec3& center, double radius) const {
    std::vector<uint64_t> out;
    for (const auto& [id, box] : boxes_) {
      if (box.IntersectsSphere(center, radius)) out.push_back(id);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// The live element set (arbitrary order) — what a fresh bulkload of the
  /// mirrored store would be built from.
  std::vector<RTreeEntry> LiveElements() const {
    std::vector<RTreeEntry> out;
    out.reserve(boxes_.size());
    for (const auto& [id, box] : boxes_) out.push_back(RTreeEntry{box, id});
    return out;
  }

  size_t size() const { return boxes_.size(); }

 private:
  std::unordered_map<uint64_t, Aabb> boxes_;
};

/// One step of a deterministic update/query schedule.
struct ScheduleStep {
  enum class Kind {
    kInsert,    ///< upsert `entry`
    kErase,     ///< delete `id` (may be absent — a no-op)
    kRange,     ///< RangeQuery(box) vs oracle
    kCount,     ///< RangeCount(box) vs oracle
    kSeedScan,  ///< RangeQueryViaSeedScan(box) vs oracle
    kSphere,    ///< SphereQuery(center, radius) vs oracle
    kCompact,   ///< fold the overlay into a fresh bulkload
  };
  Kind kind = Kind::kRange;
  RTreeEntry entry;     // kInsert
  uint64_t id = 0;      // kErase
  Aabb box;             // kRange / kCount / kSeedScan
  Vec3 center;          // kSphere
  double radius = 0.0;  // kSphere
};

/// Deterministic mixed schedule over `universe`: `steps` ops drawn from
/// `seed`, ids in [0, id_space) so inserts collide with the initial data set
/// (exercising upserts) and erases sometimes miss (exercising no-op
/// deletes). Box and radius sizes scale with the universe's extents. The mix
/// is ~30% insert, 15% erase, 40% queries across range/count/sphere, 10%
/// seed-scan and ~5% compaction.
inline std::vector<ScheduleStep> MakeSchedule(
    size_t steps, uint64_t seed, uint64_t id_space,
    const Aabb& universe = Aabb(Vec3(0, 0, 0), Vec3(100, 100, 100))) {
  Rng rng(seed);
  const Vec3 extents = universe.Extents();
  const double max_extent =
      std::max({extents.x, extents.y, extents.z, 1e-9});
  auto random_query_box = [&] {
    const Vec3 center = rng.PointIn(universe);
    const double frac = rng.Uniform(0.005, 0.3);
    return Aabb::FromCenterHalfExtents(center, extents * (frac / 2));
  };
  std::vector<ScheduleStep> schedule;
  schedule.reserve(steps);
  for (size_t i = 0; i < steps; ++i) {
    ScheduleStep step;
    const int64_t roll = rng.UniformInt(0, 99);
    if (roll < 30) {
      step.kind = ScheduleStep::Kind::kInsert;
      const Vec3 center = rng.PointIn(universe);
      const double frac = rng.Uniform(0.0001, 0.03);
      step.entry = RTreeEntry{
          Aabb::FromCenterHalfExtents(center, extents * (frac / 2)),
          static_cast<uint64_t>(
              rng.UniformInt(0, static_cast<int64_t>(id_space) - 1))};
    } else if (roll < 45) {
      step.kind = ScheduleStep::Kind::kErase;
      step.id = static_cast<uint64_t>(
          rng.UniformInt(0, static_cast<int64_t>(id_space) - 1));
    } else if (roll < 85) {
      step.kind = roll < 65   ? ScheduleStep::Kind::kRange
                  : roll < 75 ? ScheduleStep::Kind::kCount
                              : ScheduleStep::Kind::kSphere;
      if (step.kind == ScheduleStep::Kind::kSphere) {
        step.center = rng.PointIn(universe);
        step.radius = rng.Uniform(0.005, 0.15) * max_extent;
      } else {
        step.box = random_query_box();
      }
    } else if (roll < 95) {
      step.kind = ScheduleStep::Kind::kSeedScan;
      step.box = random_query_box();
    } else {
      step.kind = ScheduleStep::Kind::kCompact;
    }
    schedule.push_back(step);
  }
  return schedule;
}

/// A schedule run's fixed inputs; `seed` is only carried for the failure
/// message, so a reported divergence names everything needed to replay it.
struct ScheduleConfig {
  std::vector<RTreeEntry> initial;  ///< bulkloaded before the first step
  ShardedFlatStore::Options options;
  uint64_t seed = 0;
};

/// Applies `schedule` step by step to an EXISTING store and its oracle
/// mirror, comparing every query step bit-for-bit (ids ascending). The
/// failure message names `seed`, the step index, the step kind and
/// `context` — everything needed to regenerate and replay the schedule.
/// Building-block of ReplaySchedule and of evolving-store fuzz loops.
inline ::testing::AssertionResult ApplySchedule(
    ShardedFlatStore* store_ptr, OracleMirror* mirror_ptr,
    const std::vector<ScheduleStep>& schedule, uint64_t seed,
    const std::string& context = "") {
  ShardedFlatStore& store = *store_ptr;
  OracleMirror& mirror = *mirror_ptr;

  auto fail = [&](size_t step_index, const char* what,
                  const std::string& detail) -> ::testing::AssertionResult {
    std::ostringstream message;
    message << "schedule seed " << seed << " diverged at step " << step_index
            << " (" << what << "): " << detail;
    if (!context.empty()) message << " [" << context << "]";
    return ::testing::AssertionFailure() << message.str();
  };
  auto describe = [](const std::vector<uint64_t>& got,
                     const std::vector<uint64_t>& want) {
    std::ostringstream out;
    out << "got " << got.size() << " ids, want " << want.size();
    for (size_t i = 0; i < std::max(got.size(), want.size()); ++i) {
      const bool differs = i >= got.size() || i >= want.size() ||
                           got[i] != want[i];
      if (!differs) continue;
      out << "; first difference at position " << i;
      break;
    }
    return out.str();
  };

  for (size_t i = 0; i < schedule.size(); ++i) {
    const ScheduleStep& step = schedule[i];
    switch (step.kind) {
      case ScheduleStep::Kind::kInsert:
        store.Insert(step.entry);
        mirror.Insert(step.entry);
        break;
      case ScheduleStep::Kind::kErase:
        store.Erase(step.id);
        mirror.Erase(step.id);
        break;
      case ScheduleStep::Kind::kRange: {
        const std::vector<uint64_t> got = store.RangeQuery(step.box);
        const std::vector<uint64_t> want = mirror.RangeQuery(step.box);
        if (got != want) return fail(i, "RangeQuery", describe(got, want));
        break;
      }
      case ScheduleStep::Kind::kCount: {
        const uint64_t got = store.RangeCount(step.box);
        const uint64_t want = mirror.RangeCount(step.box);
        if (got != want) {
          return fail(i, "RangeCount",
                      "got " + std::to_string(got) + ", want " +
                          std::to_string(want));
        }
        break;
      }
      case ScheduleStep::Kind::kSeedScan: {
        const std::vector<uint64_t> got =
            store.RangeQueryViaSeedScan(step.box);
        const std::vector<uint64_t> want = mirror.RangeQuery(step.box);
        if (got != want) {
          return fail(i, "RangeQueryViaSeedScan", describe(got, want));
        }
        break;
      }
      case ScheduleStep::Kind::kSphere: {
        const std::vector<uint64_t> got =
            store.SphereQuery(step.center, step.radius);
        const std::vector<uint64_t> want =
            mirror.SphereQuery(step.center, step.radius);
        if (got != want) return fail(i, "SphereQuery", describe(got, want));
        break;
      }
      case ScheduleStep::Kind::kCompact: {
        store.Compact();
        // A compaction must be invisible to results: cross-check a
        // box covering every possible element right away so a fold bug is
        // caught at its step, not at the next random query.
        const Aabb everything(Vec3(-1e18, -1e18, -1e18),
                              Vec3(1e18, 1e18, 1e18));
        const std::vector<uint64_t> got = store.RangeQuery(everything);
        const std::vector<uint64_t> want = mirror.RangeQuery(everything);
        if (got != want) {
          return fail(i, "Compact (post-fold universe scan)",
                      describe(got, want));
        }
        break;
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Deterministic schedule replayer: builds a fresh store from `config`,
/// applies `schedule` against it and an OracleMirror via ApplySchedule, and
/// compares every query step bit-for-bit. On divergence the returned
/// failure names the seed, step index and step kind — and, when the failing
/// run was multi-threaded, replays the identical schedule single-threaded
/// and reports whether the divergence reproduces serially (separating
/// concurrency bugs from logic bugs).
inline ::testing::AssertionResult ReplaySchedule(
    const ScheduleConfig& config, const std::vector<ScheduleStep>& schedule) {
  ShardedFlatStore store =
      ShardedFlatStore::Build(config.initial, config.options);
  OracleMirror mirror(config.initial);
  std::ostringstream context;
  context << "shards=" << config.options.num_shards
          << " threads=" << config.options.num_threads;
  const ::testing::AssertionResult result =
      ApplySchedule(&store, &mirror, schedule, config.seed, context.str());
  if (result || config.options.num_threads == 1) return result;
  ScheduleConfig serial = config;
  serial.options.num_threads = 1;
  const ::testing::AssertionResult replay = ReplaySchedule(serial, schedule);
  return ::testing::AssertionFailure()
         << result.message()
         << (replay ? "; single-threaded replay PASSES "
                      "(concurrency-dependent divergence)"
                    : "; single-threaded replay diverges too "
                      "(deterministic logic bug)");
}

}  // namespace testing
}  // namespace flat

#endif  // FLAT_TESTS_TEST_UTIL_H_
