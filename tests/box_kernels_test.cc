// Equivalence tests for the SIMD box/sphere gate kernels: whatever
// instruction set geometry/box_kernels.cc was compiled with, the dispatching
// kernels must agree bit-for-bit with the scalar references, and the scalar
// references must agree with the Aabb member predicates. The box populations
// are adversarial on purpose — coordinates drawn from a small lattice so
// touching faces/edges/corners, zero-extent boxes, exact containment, and
// shared coordinates are common rather than measure-zero.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "geometry/aabb.h"
#include "geometry/box_kernels.h"
#include "geometry/rng.h"
#include "rtree/entry.h"
#include "rtree/node.h"

namespace flat {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Lattice coordinates: ties, touches and containment happen constantly.
constexpr double kLattice[] = {-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0};

double LatticeCoord(Rng& rng) {
  return kLattice[rng.UniformInt(0, 6)];
}

// A mixed population of lattice boxes: proper, zero-extent, inverted
// (finite lo > hi), canonical empty, and — when `with_nan` — NaN-poisoned.
// Both kernels and Aabb::Intersects agree that anything failing lo <= hi on
// some axis (including via NaN) intersects nothing.
std::vector<Aabb> AdversarialBoxes(Rng& rng, size_t count, bool with_nan) {
  std::vector<Aabb> boxes;
  boxes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const int kind = static_cast<int>(rng.UniformInt(0, 9));
    if (kind == 0) {
      boxes.push_back(Aabb());  // canonical empty
      continue;
    }
    Vec3 a(LatticeCoord(rng), LatticeCoord(rng), LatticeCoord(rng));
    Vec3 b(LatticeCoord(rng), LatticeCoord(rng), LatticeCoord(rng));
    if (kind <= 2) {
      boxes.push_back(Aabb::FromPoint(a));  // zero extent
    } else if (kind == 3) {
      boxes.push_back(Aabb(a, b));  // possibly inverted on some axes
    } else if (kind == 4 && with_nan) {
      const Vec3 lo = Vec3::Min(a, b), hi = Vec3::Max(a, b);
      double c[3] = {lo.x, lo.y, lo.z};
      c[rng.UniformInt(0, 2)] = kNaN;
      boxes.push_back(Aabb(Vec3(c[0], c[1], c[2]), hi));
    } else {
      boxes.push_back(Aabb::FromCorners(a, b));  // proper (maybe degenerate)
    }
  }
  return boxes;
}

std::vector<Aabb> AdversarialQueries(Rng& rng, size_t count) {
  std::vector<Aabb> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Vec3 a(LatticeCoord(rng), LatticeCoord(rng), LatticeCoord(rng));
    Vec3 b(LatticeCoord(rng), LatticeCoord(rng), LatticeCoord(rng));
    queries.push_back(i % 7 == 0 ? Aabb::FromPoint(a)
                                 : Aabb::FromCorners(a, b));
  }
  return queries;
}

// Serializes boxes with the given stride (48 = bare Aabb, 56 = RTreeEntry
// slot layout of an object page).
std::vector<char> Serialize(const std::vector<Aabb>& boxes, size_t stride) {
  std::vector<char> buf(boxes.size() * stride, '\xab');
  for (size_t i = 0; i < boxes.size(); ++i) {
    std::memcpy(buf.data() + i * stride, &boxes[i], sizeof(Aabb));
  }
  return buf;
}

TEST(BoxKernelsTest, IsaNameIsKnown) {
  const std::string isa = BoxKernelIsa();
  EXPECT_TRUE(isa == "avx2" || isa == "sse2" || isa == "scalar") << isa;
}

TEST(BoxKernelsTest, ScalarMatchesAabbIntersects) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    const auto boxes = AdversarialBoxes(rng, 97, /*with_nan=*/false);
    const auto queries = AdversarialQueries(rng, 8);
    const auto buf = Serialize(boxes, sizeof(Aabb));
    std::vector<uint8_t> hits(boxes.size());
    for (const Aabb& q : queries) {
      IntersectsBatchScalar(buf.data(), sizeof(Aabb), boxes.size(), q,
                            hits.data());
      for (size_t i = 0; i < boxes.size(); ++i) {
        ASSERT_EQ(hits[i] != 0, boxes[i].Intersects(q))
            << "box " << boxes[i] << " query " << q;
      }
    }
  }
}

TEST(BoxKernelsTest, DispatchMatchesScalarBitForBit) {
  Rng rng(11);
  for (size_t stride : {sizeof(Aabb), sizeof(RTreeEntry)}) {
    for (int round = 0; round < 50; ++round) {
      // Odd counts exercise every tail length.
      const size_t count = 1 + static_cast<size_t>(rng.UniformInt(0, 90));
      const auto boxes = AdversarialBoxes(rng, count, /*with_nan=*/true);
      const auto queries = AdversarialQueries(rng, 6);
      const auto buf = Serialize(boxes, stride);
      std::vector<uint8_t> expected(count), actual(count);
      for (const Aabb& q : queries) {
        IntersectsBatchScalar(buf.data(), stride, count, q, expected.data());
        IntersectsBatch(buf.data(), stride, count, q, actual.data());
        ASSERT_EQ(std::memcmp(expected.data(), actual.data(), count), 0)
            << "stride " << stride << " count " << count;
      }
    }
  }
}

TEST(BoxKernelsTest, SoaAssignTransposesAndPads) {
  Rng rng(13);
  const auto boxes = AdversarialBoxes(rng, 73, /*with_nan=*/false);
  const auto buf = Serialize(boxes, sizeof(RTreeEntry));
  SoaBoxes soa;
  soa.Assign(buf.data(), sizeof(RTreeEntry), boxes.size());
  ASSERT_EQ(soa.count(), boxes.size());
  ASSERT_EQ(soa.padded_count() % 4, 0u);
  ASSERT_GE(soa.padded_count(), soa.count());
  for (size_t i = 0; i < boxes.size(); ++i) {
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_EQ(soa.lo(axis)[i], boxes[i].lo()[axis]);
      EXPECT_EQ(soa.hi(axis)[i], boxes[i].hi()[axis]);
    }
  }
  for (size_t i = boxes.size(); i < soa.padded_count(); ++i) {
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_EQ(soa.lo(axis)[i], kInf) << "padding must be the empty box";
      EXPECT_EQ(soa.hi(axis)[i], -kInf);
    }
  }
}

TEST(BoxKernelsTest, SoaMatchesScalarAndAos) {
  Rng rng(17);
  SoaBoxes soa;  // reused, like the crawl scratch
  for (int round = 0; round < 60; ++round) {
    const size_t count = 1 + static_cast<size_t>(rng.UniformInt(0, 90));
    const auto boxes = AdversarialBoxes(rng, count, /*with_nan=*/true);
    const auto queries = AdversarialQueries(rng, 6);
    const auto buf = Serialize(boxes, sizeof(RTreeEntry));
    soa.Assign(buf.data(), sizeof(RTreeEntry), count);
    std::vector<uint8_t> soa_simd(soa.padded_count());
    std::vector<uint8_t> soa_scalar(soa.padded_count());
    std::vector<uint8_t> aos(count);
    for (const Aabb& q : queries) {
      IntersectsSoa(soa, q, soa_simd.data());
      IntersectsSoaScalar(soa, q, soa_scalar.data());
      IntersectsBatchScalar(buf.data(), sizeof(RTreeEntry), count, q,
                            aos.data());
      ASSERT_EQ(std::memcmp(soa_simd.data(), soa_scalar.data(),
                            soa.padded_count()),
                0);
      ASSERT_EQ(std::memcmp(soa_simd.data(), aos.data(), count), 0);
      for (size_t i = count; i < soa.padded_count(); ++i) {
        ASSERT_EQ(soa_simd[i], 0) << "padding lane leaked a hit";
      }
    }
  }
}

TEST(BoxKernelsTest, SphereScalarMatchesIntersectsSphere) {
  Rng rng(19);
  SoaBoxes soa;
  for (int round = 0; round < 60; ++round) {
    const size_t count = 1 + static_cast<size_t>(rng.UniformInt(0, 90));
    const auto boxes = AdversarialBoxes(rng, count, /*with_nan=*/false);
    const auto buf = Serialize(boxes, sizeof(Aabb));
    soa.Assign(buf.data(), sizeof(Aabb), count);
    std::vector<uint8_t> hits(soa.padded_count());
    const Vec3 center(LatticeCoord(rng), LatticeCoord(rng), LatticeCoord(rng));
    // Radii chosen so d2 == r2 exactly happens (3-4-5 triangles on the
    // lattice: distance 2.5 from a corner offset (1.5, 2, 0), etc.).
    for (double radius : {0.0, 0.5, 1.0, 2.0, 2.5, 3.0}) {
      SphereGateSoaScalar(soa, center, radius, hits.data());
      for (size_t i = 0; i < count; ++i) {
        ASSERT_EQ(hits[i] != 0, boxes[i].IntersectsSphere(center, radius))
            << "box " << boxes[i] << " center " << center << " r " << radius;
      }
    }
  }
}

TEST(BoxKernelsTest, SphereSimdMatchesScalarBitForBit) {
  Rng rng(23);
  SoaBoxes soa;
  for (int round = 0; round < 60; ++round) {
    const size_t count = 1 + static_cast<size_t>(rng.UniformInt(0, 90));
    const auto boxes = AdversarialBoxes(rng, count, /*with_nan=*/true);
    const auto buf = Serialize(boxes, sizeof(RTreeEntry));
    soa.Assign(buf.data(), sizeof(RTreeEntry), count);
    std::vector<uint8_t> simd(soa.padded_count()), scalar(soa.padded_count());
    const Vec3 center(rng.Uniform(-2, 2), rng.Uniform(-2, 2),
                      rng.Uniform(-2, 2));
    for (double radius : {0.0, 0.25, 1.0, 2.5, 4.0}) {
      SphereGateSoa(soa, center, radius, simd.data());
      SphereGateSoaScalar(soa, center, radius, scalar.data());
      ASSERT_EQ(std::memcmp(simd.data(), scalar.data(), soa.padded_count()),
                0)
          << "count " << count << " r " << radius;
    }
  }
}

// The cases the crawl depends on, spelled out: closed-interval semantics
// (touching counts), zero-extent boxes, and containment either way.
TEST(BoxKernelsTest, TouchingZeroExtentAndContainmentCases) {
  const Aabb query(Vec3(0, 0, 0), Vec3(1, 1, 1));
  const std::vector<Aabb> boxes = {
      Aabb(Vec3(1, 0, 0), Vec3(2, 1, 1)),        // shares the x=1 face
      Aabb(Vec3(1, 1, 1), Vec3(2, 2, 2)),        // shares only a corner
      Aabb::FromPoint(Vec3(1, 1, 1)),            // zero-extent on the corner
      Aabb::FromPoint(Vec3(0.5, 0.5, 0.5)),      // zero-extent inside
      Aabb(Vec3(-1, -1, -1), Vec3(2, 2, 2)),     // contains the query
      Aabb(Vec3(0.25, 0.25, 0.25), Vec3(0.75, 0.75, 0.75)),  // contained
      Aabb(Vec3(1.0000001, 0, 0), Vec3(2, 1, 1)),  // just misses
      Aabb(),                                       // empty
  };
  const std::vector<uint8_t> expected = {1, 1, 1, 1, 1, 1, 0, 0};
  const auto buf = Serialize(boxes, sizeof(Aabb));
  std::vector<uint8_t> hits(boxes.size());
  IntersectsBatch(buf.data(), sizeof(Aabb), boxes.size(), query, hits.data());
  EXPECT_EQ(std::vector<uint8_t>(hits.begin(), hits.end()), expected);

  SoaBoxes soa;
  soa.Assign(buf.data(), sizeof(Aabb), boxes.size());
  std::vector<uint8_t> soa_hits(soa.padded_count());
  IntersectsSoa(soa, query, soa_hits.data());
  EXPECT_EQ(std::vector<uint8_t>(soa_hits.begin(),
                                 soa_hits.begin() + boxes.size()),
            expected);
}

// Exact-boundary sphere case: a 3-4-5 triangle puts the box corner at
// distance exactly 5; d2 == r2 must gate as a hit (closed ball), and one
// ULP farther must not.
TEST(BoxKernelsTest, SphereExactBoundary) {
  const Vec3 center(0, 0, 0);
  std::vector<Aabb> boxes = {
      Aabb::FromPoint(Vec3(3, 4, 0)),
      Aabb::FromPoint(Vec3(std::nextafter(3.0, 4.0), 4, 0)),
  };
  const auto buf = Serialize(boxes, sizeof(Aabb));
  SoaBoxes soa;
  soa.Assign(buf.data(), sizeof(Aabb), boxes.size());
  std::vector<uint8_t> hits(soa.padded_count());
  SphereGateSoa(soa, center, 5.0, hits.data());
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 0);
}

// --- Quantized (16-bit fixed-point) gate tests --------------------------
//
// The compressed-page invariant under test: quantization rounds outward, so
// for ANY non-empty child and query boxes — inside the node box, partially
// outside it, degenerate, touching, denormal-thin — an exact intersection
// implies a quantized-gate hit. False positives are allowed (the exact
// gates downstream resolve them); false negatives are correctness bugs.

// Quantizes `child` exactly as CompressedNodeWriter::Append does.
void QuantizeChild(const QuantGrid& grid, const Aabb& child, uint16_t lo[3],
                   uint16_t hi[3]) {
  const double lo_coords[3] = {child.lo().x, child.lo().y, child.lo().z};
  const double hi_coords[3] = {child.hi().x, child.hi().y, child.hi().z};
  for (int axis = 0; axis < 3; ++axis) {
    lo[axis] = QuantizeDown(grid, axis, lo_coords[axis]);
    hi[axis] = QuantizeUp(grid, axis, hi_coords[axis]);
  }
}

bool QuantizedGateHit(const uint16_t lo[3], const uint16_t hi[3],
                      const QuantizedQueryBox& query) {
  if (query.never) return false;
  for (int axis = 0; axis < 3; ++axis) {
    if (lo[axis] > query.hi[axis] || hi[axis] < query.lo[axis]) return false;
  }
  return true;
}

// Node boxes for the grid under test: proper lattice boxes plus the nasty
// shapes a real seed tree can produce — zero-extent axes (planar data) and
// denormal-thin extents (inv overflows to inf; the cell function must stay
// finite-safe).
std::vector<Aabb> AdversarialNodeBoxes(Rng& rng, size_t count) {
  constexpr double kDenormal = 5e-324;
  std::vector<Aabb> boxes;
  boxes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Vec3 a(LatticeCoord(rng), LatticeCoord(rng), LatticeCoord(rng));
    Vec3 b(LatticeCoord(rng), LatticeCoord(rng), LatticeCoord(rng));
    Aabb box = Aabb::FromCorners(a, b);
    if (i % 5 == 1) {
      // Flatten one axis to zero extent.
      Vec3 lo = box.lo(), hi = box.hi();
      switch (rng.UniformInt(0, 2)) {
        case 0: hi.x = lo.x; break;
        case 1: hi.y = lo.y; break;
        default: hi.z = lo.z; break;
      }
      box = Aabb(lo, hi);
    } else if (i % 5 == 2) {
      // Denormal-thin on one axis: extent underflows any sane cell width.
      Vec3 lo = box.lo(), hi = box.hi();
      hi.x = lo.x + kDenormal;
      box = Aabb(lo, hi);
    }
    boxes.push_back(box);
  }
  return boxes;
}

TEST(QuantizedGateTest, OutwardRoundingNeverMisses) {
  Rng rng(20260808);
  const auto node_boxes = AdversarialNodeBoxes(rng, 64);
  for (const Aabb& node_box : node_boxes) {
    const QuantGrid grid = MakeQuantGrid(node_box);
    ASSERT_FALSE(grid.never);
    // Children drawn from the same lattice: they sit on the node boundary,
    // coincide with it, poke outside it, or collapse to points/edges.
    const auto children = AdversarialBoxes(rng, 64, /*with_nan=*/false);
    const auto queries = AdversarialQueries(rng, 64);
    for (const Aabb& query : queries) {
      const QuantizedQueryBox quantized_query =
          QuantizeQuery(node_box, query);
      for (const Aabb& child : children) {
        if (child.IsEmpty()) continue;  // writers never emit empty children
        uint16_t lo[3], hi[3];
        QuantizeChild(grid, child, lo, hi);
        for (int axis = 0; axis < 3; ++axis) {
          EXPECT_LE(lo[axis], hi[axis]);
        }
        if (child.Intersects(query)) {
          EXPECT_TRUE(QuantizedGateHit(lo, hi, quantized_query))
              << "false negative: node=[" << node_box.lo().x << ","
              << node_box.hi().x << "] child=[" << child.lo().x << ","
              << child.hi().x << "] query=[" << query.lo().x << ","
              << query.hi().x << "] (x shown; see seed)";
        }
      }
    }
  }
}

TEST(QuantizedGateTest, BoundaryChildrenStayInRange) {
  // A child exactly equal to the node box must span the full cell range —
  // rounding must clamp at the grid edge, not wrap or overflow.
  const Aabb node_box(Vec3(-1.0, 0.0, 2.0), Vec3(3.0, 0.5, 7.0));
  const QuantGrid grid = MakeQuantGrid(node_box);
  uint16_t lo[3], hi[3];
  QuantizeChild(grid, node_box, lo, hi);
  for (int axis = 0; axis < 3; ++axis) {
    EXPECT_EQ(lo[axis], 0u);
    EXPECT_EQ(hi[axis], kQuantMaxCell);
  }
  // And a query equal to the node box overlaps everything representable.
  const QuantizedQueryBox query = QuantizeQuery(node_box, node_box);
  EXPECT_FALSE(query.never);
  EXPECT_EQ(query.lo[0], 0u);
  EXPECT_EQ(query.hi[0], kQuantMaxCell);
}

TEST(QuantizedGateTest, DegenerateAxisAlwaysOverlaps) {
  // Zero-extent axis: every coordinate lands in cell 0 and, widened, the
  // ranges [0, 1] always overlap — conservative by construction.
  const Aabb node_box(Vec3(0, 0, 0), Vec3(4.0, 0.0, 4.0));
  const QuantGrid grid = MakeQuantGrid(node_box);
  EXPECT_EQ(grid.inv[1], 0.0);
  EXPECT_EQ(QuantizeDown(grid, 1, -100.0), 0u);
  EXPECT_LE(QuantizeUp(grid, 1, 100.0), 1u);
  const QuantizedQueryBox query =
      QuantizeQuery(node_box, Aabb(Vec3(1, 0, 1), Vec3(2, 0, 2)));
  uint16_t lo[3], hi[3];
  QuantizeChild(grid, Aabb(Vec3(3, 0, 1), Vec3(4, 0, 2)), lo, hi);
  EXPECT_LE(lo[1], query.hi[1]);
  EXPECT_GE(hi[1], query.lo[1]);
}

TEST(QuantizedGateTest, EmptyBoxesGateToNever) {
  const Aabb proper(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_TRUE(MakeQuantGrid(Aabb()).never);
  EXPECT_TRUE(QuantizeQuery(Aabb(), proper).never);
  EXPECT_TRUE(QuantizeQuery(proper, Aabb()).never);
  EXPECT_FALSE(QuantizeQuery(proper, proper).never);
}

// Serializes quantized boxes in the QuantizedSlot layout (six u16s, then a
// u32 child id the SoA must skip).
std::vector<char> SerializeQuantized(const std::vector<Aabb>& boxes,
                                     const QuantGrid& grid) {
  constexpr size_t kStride = 16;
  std::vector<char> buf(boxes.size() * kStride, '\xab');
  for (size_t i = 0; i < boxes.size(); ++i) {
    uint16_t lo[3], hi[3];
    QuantizeChild(grid, boxes[i], lo, hi);
    std::memcpy(buf.data() + i * kStride, lo, sizeof(lo));
    std::memcpy(buf.data() + i * kStride + sizeof(lo), hi, sizeof(hi));
  }
  return buf;
}

TEST(QuantizedGateTest, SoaDispatchMatchesScalarBitForBit) {
  Rng rng(77);
  const Aabb node_box(Vec3(-2, -2, -2), Vec3(2, 2, 2));
  const QuantGrid grid = MakeQuantGrid(node_box);
  // Sweep counts across every vector-width boundary (0, partial SSE lane,
  // partial AVX2 lane, exact multiples).
  for (size_t count : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                       size_t{15}, size_t{16}, size_t{17}, size_t{73},
                       size_t{252}}) {
    const auto boxes = AdversarialBoxes(rng, count, /*with_nan=*/false);
    const auto buf = SerializeQuantized(boxes, grid);
    QuantizedSoa soa;
    soa.Assign(buf.data(), 16, boxes.size());
    EXPECT_EQ(soa.count(), count);
    EXPECT_EQ(soa.padded_count() % 16, 0u);
    EXPECT_GE(soa.padded_count(), count);
    for (const Aabb& query_box : AdversarialQueries(rng, 16)) {
      const QuantizedQueryBox query = QuantizeQuery(node_box, query_box);
      std::vector<uint8_t> scalar(soa.padded_count(), 0xcd);
      std::vector<uint8_t> dispatched(soa.padded_count(), 0x5e);
      IntersectsQuantizedSoaScalar(soa, query, scalar.data());
      IntersectsQuantizedSoa(soa, query, dispatched.data());
      EXPECT_EQ(scalar, dispatched);
      // Padding lanes always report 0, whatever the query.
      for (size_t i = count; i < soa.padded_count(); ++i) {
        EXPECT_EQ(dispatched[i], 0);
      }
    }
    // The never flag zeroes every hit byte in both variants.
    QuantizedQueryBox never_query;
    never_query.never = true;
    std::vector<uint8_t> hits(soa.padded_count(), 0xff);
    IntersectsQuantizedSoa(soa, never_query, hits.data());
    EXPECT_EQ(hits, std::vector<uint8_t>(soa.padded_count(), 0));
  }
}

// ---------------------------------------------------------------------------
// Containment ("covered") companions to the gates: a set bit certifies the
// box is non-empty and fully inside the query — the license for taking a
// stored aggregate instead of descending, so false positives are bugs while
// false negatives merely descend.
// ---------------------------------------------------------------------------

TEST(ContainsKernelsTest, ScalarMatchesAabbContains) {
  Rng rng(31);
  for (int round = 0; round < 50; ++round) {
    const auto boxes = AdversarialBoxes(rng, 97, /*with_nan=*/true);
    const auto buf = Serialize(boxes, sizeof(Aabb));
    std::vector<uint8_t> covered(boxes.size());
    for (const Aabb& q : AdversarialQueries(rng, 8)) {
      ContainsBatchScalar(buf.data(), sizeof(Aabb), boxes.size(), q,
                          covered.data());
      for (size_t i = 0; i < boxes.size(); ++i) {
        // Aabb::Contains treats an empty box as contained everywhere; the
        // kernel deliberately does not — an empty/NaN element is invisible
        // to the intersection gates, so certifying it would miscount.
        const bool want = !boxes[i].IsEmpty() && q.Contains(boxes[i]);
        ASSERT_EQ(covered[i] != 0, want)
            << "box " << boxes[i] << " query " << q;
      }
    }
  }
}

TEST(ContainsKernelsTest, DispatchMatchesScalarBitForBit) {
  Rng rng(37);
  for (size_t stride : {sizeof(Aabb), sizeof(RTreeEntry)}) {
    for (int round = 0; round < 50; ++round) {
      const size_t count = 1 + static_cast<size_t>(rng.UniformInt(0, 90));
      const auto boxes = AdversarialBoxes(rng, count, /*with_nan=*/true);
      const auto buf = Serialize(boxes, stride);
      std::vector<uint8_t> expected(count), actual(count);
      for (const Aabb& q : AdversarialQueries(rng, 6)) {
        ContainsBatchScalar(buf.data(), stride, count, q, expected.data());
        ContainsBatch(buf.data(), stride, count, q, actual.data());
        ASSERT_EQ(std::memcmp(expected.data(), actual.data(), count), 0)
            << "stride " << stride << " count " << count;
      }
    }
  }
}

TEST(ContainsKernelsTest, SoaMatchesScalarIncludingPadding) {
  Rng rng(41);
  for (int round = 0; round < 40; ++round) {
    const size_t count = static_cast<size_t>(rng.UniformInt(0, 90));
    const auto boxes = AdversarialBoxes(rng, count, /*with_nan=*/true);
    const auto buf = Serialize(boxes, sizeof(RTreeEntry));
    SoaBoxes soa;
    soa.Assign(buf.data(), sizeof(RTreeEntry), count);
    std::vector<uint8_t> scalar(soa.padded_count(), 0xcd);
    std::vector<uint8_t> dispatched(soa.padded_count(), 0x5e);
    for (const Aabb& q : AdversarialQueries(rng, 6)) {
      ContainsSoaScalar(soa, q, scalar.data());
      ContainsSoa(soa, q, dispatched.data());
      ASSERT_EQ(std::memcmp(scalar.data(), dispatched.data(),
                            soa.padded_count()),
                0)
          << "count " << count;
      // Padding lanes never certify (they hold empty boxes).
      for (size_t i = count; i < soa.padded_count(); ++i) {
        ASSERT_EQ(dispatched[i], 0);
      }
    }
  }
}

// Builds a real compressed node page over children drawn inside `node_box`,
// exactly as the bulkloader writes them.
struct CompressedPage {
  std::vector<char> buffer;
  std::vector<Aabb> children;
  Aabb bounds;

  CompressedPage(Rng& rng, const Aabb& node_box, size_t count,
                 uint32_t page_size = 4096)
      : buffer(page_size) {
    std::vector<RTreeEntry> entries;
    for (size_t i = 0; i < count; ++i) {
      const Aabb child =
          Aabb::FromCorners(rng.PointIn(node_box), rng.PointIn(node_box));
      children.push_back(child);
      bounds.ExpandToInclude(child);
      entries.push_back(RTreeEntry{child, i});
    }
    CompressedNodeWriter writer(buffer.data(), page_size);
    writer.Init(/*level=*/1, bounds);
    for (const RTreeEntry& e : entries) writer.Append(e);
  }
};

TEST(QuantizedCoverTest, CertificationIsConservative) {
  Rng rng(43);
  for (int round = 0; round < 30; ++round) {
    const Aabb node_box(Vec3(-2, -2, -2), Vec3(2, 2, 2));
    const CompressedPage page(rng, node_box, 64);
    const CompressedNodeView view(page.buffer.data());
    QuantizedSoa soa;
    soa.Assign(view.slots(), sizeof(QuantizedSlot), view.count());
    std::vector<uint8_t> covered(soa.padded_count());
    for (const Aabb& query : AdversarialQueries(rng, 32)) {
      const QuantizedCoverBox cover =
          QuantizeCoverQuery(view.node_box(), query);
      ContainsQuantizedSoaScalar(soa, cover, covered.data());
      for (uint16_t i = 0; i < view.count(); ++i) {
        if (!covered[i]) continue;
        // The certification chain: certified slot => the conservatively
        // dequantized child box is inside the query => the exact child box
        // (a subset of it) is too. Under-triggering near the query faces is
        // fine; a certified slot whose exact box escapes the query is a
        // counting bug.
        EXPECT_TRUE(query.Contains(view.ChildBoxAt(i)))
            << "slot " << i << " query " << query;
        EXPECT_TRUE(query.Contains(page.children[i]))
            << "slot " << i << " query " << query;
      }
    }
  }
}

TEST(QuantizedCoverTest, QueryCoveringNodeBoxCertifiesEverySlot) {
  Rng rng(47);
  const Aabb node_box(Vec3(-2, -1, 0), Vec3(2, 3, 4));
  const CompressedPage page(rng, node_box, 73);
  const CompressedNodeView view(page.buffer.data());
  QuantizedSoa soa;
  soa.Assign(view.slots(), sizeof(QuantizedSlot), view.count());
  // A query strictly enclosing the node box admits the full cell range on
  // every axis — the certification must not be vacuously never.
  const Aabb generous(node_box.lo() - Vec3(1, 1, 1),
                      node_box.hi() + Vec3(1, 1, 1));
  const QuantizedCoverBox cover =
      QuantizeCoverQuery(view.node_box(), generous);
  ASSERT_FALSE(cover.never);
  std::vector<uint8_t> covered(soa.padded_count());
  ContainsQuantizedSoaScalar(soa, cover, covered.data());
  for (uint16_t i = 0; i < view.count(); ++i) {
    EXPECT_TRUE(covered[i]) << "slot " << i;
  }
  // A query that clips the node box must not certify slots that reach the
  // clipped face.
  const QuantizedCoverBox empty_cover = QuantizeCoverQuery(node_box, Aabb());
  EXPECT_TRUE(empty_cover.never);
}

TEST(QuantizedCoverTest, SoaDispatchMatchesScalarBitForBit) {
  Rng rng(53);
  const Aabb node_box(Vec3(-2, -2, -2), Vec3(2, 2, 2));
  for (size_t count : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                       size_t{15}, size_t{16}, size_t{17}, size_t{73},
                       size_t{200}}) {
    const CompressedPage page(rng, node_box, count);
    const CompressedNodeView view(page.buffer.data());
    QuantizedSoa soa;
    soa.Assign(view.slots(), sizeof(QuantizedSlot), count);
    for (const Aabb& query : AdversarialQueries(rng, 16)) {
      const QuantizedCoverBox cover =
          QuantizeCoverQuery(view.node_box(), query);
      std::vector<uint8_t> scalar(soa.padded_count(), 0xcd);
      std::vector<uint8_t> dispatched(soa.padded_count(), 0x5e);
      ContainsQuantizedSoaScalar(soa, cover, scalar.data());
      ContainsQuantizedSoa(soa, cover, dispatched.data());
      EXPECT_EQ(scalar, dispatched) << "count " << count;
      for (size_t i = count; i < soa.padded_count(); ++i) {
        EXPECT_EQ(dispatched[i], 0);
      }
    }
    // never zeroes everything in both variants.
    QuantizedCoverBox never_cover;
    never_cover.never = true;
    std::vector<uint8_t> hits(soa.padded_count(), 0xff);
    ContainsQuantizedSoa(soa, never_cover, hits.data());
    EXPECT_EQ(hits, std::vector<uint8_t>(soa.padded_count(), 0));
  }
}

}  // namespace
}  // namespace flat
