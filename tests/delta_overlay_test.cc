// Oracle-differential tests for the delta overlay (dynamic FLAT): randomized
// insert/delete/query/compact schedules against a brute-force mirror,
// bit-identical across data generators, shard counts and thread counts; the
// overlay's upsert/delete semantics; overlay-only stores; and the overlay
// probe accounting contract (deterministic, separate from page reads).
#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "data/mesh_generator.h"
#include "data/neuron_generator.h"
#include "data/uniform_generator.h"
#include "shard/sharded_flat_store.h"
#include "tests/test_util.h"

namespace flat {
namespace {

using testing::ApplySchedule;
using testing::MakeSchedule;
using testing::OracleMirror;
using testing::ReplaySchedule;
using testing::ScheduleConfig;
using testing::ScheduleStep;

// Small enough to keep Debug/TSan runtimes reasonable across the 12-config
// matrix while still spanning multiple pages per shard.
constexpr size_t kInitialElements = 5000;
constexpr uint64_t kIdSpace = 6000;

Dataset MakeDataset(const std::string& kind) {
  if (kind == "neuron") {
    NeuronParams params;
    params.total_elements = kInitialElements;
    return GenerateNeurons(params);
  }
  if (kind == "mesh") {
    MeshParams params;
    params.target_triangles = kInitialElements;
    return GenerateMesh(params);
  }
  UniformBoxParams params;
  params.count = kInitialElements;
  return GenerateUniformBoxes(params);
}

// (generator, shard count, thread count) — the repo's standard identity
// matrix: 3 generators x K in {1,5} x threads in {1,4}.
using OverlayConfig = std::tuple<std::string, size_t, size_t>;

class DeltaOverlayScheduleTest
    : public ::testing::TestWithParam<OverlayConfig> {};

// The tentpole fuzz: one store per config evolves through many seeded
// schedule rounds (inserts, erases, all query types, compactions), each
// round cross-checked against the lockstep oracle mirror. Together with the
// INSTANTIATE matrix below this executes >= 85 * 12 > 1000 distinct seeded
// schedules in CI. On divergence the harness reports the seed and replays
// the full history single-threaded (see ReplaySchedule) to classify the
// failure.
TEST_P(DeltaOverlayScheduleTest, FuzzMatchesOracle) {
  const auto& [kind, shards, threads] = GetParam();
  Dataset dataset = MakeDataset(kind);

  ShardedFlatStore::Options options;
  options.num_shards = shards;
  options.num_threads = threads;

  ScheduleConfig config;
  config.initial = dataset.elements;
  config.options = options;

  ShardedFlatStore store = ShardedFlatStore::Build(dataset.elements, options);
  OracleMirror mirror(config.initial);

  constexpr size_t kRounds = 85;
  constexpr size_t kStepsPerRound = 40;
  std::vector<ScheduleStep> history;
  for (size_t round = 0; round < kRounds; ++round) {
    const uint64_t seed = 1000 * (shards * 10 + threads) + round;
    const std::vector<ScheduleStep> schedule =
        MakeSchedule(kStepsPerRound, seed, kIdSpace, dataset.bounds);
    history.insert(history.end(), schedule.begin(), schedule.end());
    const ::testing::AssertionResult result = ApplySchedule(
        &store, &mirror, schedule, seed,
        kind + " shards=" + std::to_string(shards) +
            " threads=" + std::to_string(threads) +
            " round=" + std::to_string(round));
    if (!result) {
      // Reclassify before failing: rebuild from scratch and replay the whole
      // history on one thread.
      config.seed = seed;
      ASSERT_TRUE(result) << "full-history single-threaded replay: "
                          << [&] {
                               ScheduleConfig serial = config;
                               serial.options.num_threads = 1;
                               const ::testing::AssertionResult replay =
                                   ReplaySchedule(serial, history);
                               return replay
                                          ? std::string("PASSES (concurrency-"
                                                        "dependent)")
                                          : std::string(replay.message());
                             }();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, DeltaOverlayScheduleTest,
    ::testing::Combine(::testing::Values("neuron", "mesh", "uniform"),
                       ::testing::Values(size_t{1}, size_t{5}),
                       ::testing::Values(size_t{1}, size_t{4})),
    [](const ::testing::TestParamInfo<OverlayConfig>& info) {
      return std::get<0>(info.param) + "_K" +
             std::to_string(std::get<1>(info.param)) + "_T" +
             std::to_string(std::get<2>(info.param));
    });

// The same schedule must produce bit-identical query results whatever the
// thread count and whatever the shard count — the dynamic extension of the
// store's standing identity contract.
TEST(DeltaOverlayIdentityTest, ScheduleResultsIdenticalAcrossConfigs) {
  Dataset dataset = MakeDataset("uniform");
  const std::vector<ScheduleStep> schedule =
      MakeSchedule(300, /*seed=*/77, kIdSpace, dataset.bounds);
  for (const size_t shards : {size_t{1}, size_t{5}}) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      ScheduleConfig config;
      config.initial = dataset.elements;
      config.options.num_shards = shards;
      config.options.num_threads = threads;
      config.seed = 77;
      EXPECT_TRUE(ReplaySchedule(config, schedule))
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

// Store-level entry points and a pinned Snapshot at the same epoch must
// return identical ids AND identical IoStats (page reads per category plus
// overlay probes) — the engine path and the serial snapshot path share the
// overlay merge by construction, and this pins it.
TEST(DeltaOverlayIdentityTest, EngineAndSnapshotPathsAgree) {
  Dataset dataset = MakeDataset("neuron");
  ShardedFlatStore::Options options;
  options.num_shards = 5;
  options.num_threads = 4;
  ShardedFlatStore store = ShardedFlatStore::Build(dataset.elements, options);

  // Mutate: some fresh ids, some upserts, some deletes.
  Rng rng(123);
  for (int i = 0; i < 400; ++i) {
    const Vec3 center = rng.PointIn(dataset.bounds);
    store.Insert(RTreeEntry{
        Aabb::FromCenterHalfExtents(center, dataset.bounds.Extents() * 0.005),
        static_cast<uint64_t>(rng.UniformInt(0, 2 * kIdSpace))});
  }
  for (int i = 0; i < 150; ++i) {
    store.Erase(static_cast<uint64_t>(rng.UniformInt(0, 2 * kIdSpace)));
  }

  const ShardedFlatStore::Snapshot snapshot = store.PinSnapshot();
  ASSERT_EQ(snapshot.epoch(), store.epoch());
  EXPECT_GT(snapshot.overlay_live_count(), 0u);

  // Dataset-sized query boxes (the canned [0,100]^3 helpers don't fit
  // arbitrary generator bounds), plus a box covering everything.
  std::vector<Aabb> queries;
  for (int i = 0; i < 25; ++i) {
    const double frac = rng.Uniform(0.02, 0.4);
    queries.push_back(Aabb::FromCenterHalfExtents(
        rng.PointIn(dataset.bounds), dataset.bounds.Extents() * (frac / 2)));
  }
  queries.push_back(Aabb(Vec3(-1e18, -1e18, -1e18), Vec3(1e18, 1e18, 1e18)));

  for (const Aabb& query : queries) {
    IoStats store_io, snapshot_io;
    const std::vector<uint64_t> via_store = store.RangeQuery(query, &store_io);
    const std::vector<uint64_t> via_snapshot =
        snapshot.RangeQuery(query, &snapshot_io);
    EXPECT_EQ(via_store, via_snapshot);
    for (int c = 0; c < kNumPageCategories; ++c) {
      EXPECT_EQ(store_io.ReadsIn(static_cast<PageCategory>(c)),
                snapshot_io.ReadsIn(static_cast<PageCategory>(c)));
    }
    EXPECT_EQ(store_io.OverlayProbes(), snapshot_io.OverlayProbes());

    IoStats count_io;
    EXPECT_EQ(store.RangeCount(query, &count_io), via_store.size());
    EXPECT_EQ(store.SphereQuery(query.Center(), query.Extents().Norm() / 2),
              snapshot.SphereQuery(query.Center(), query.Extents().Norm() / 2));
  }

  // The all-covering query scans every overlay bucket, so its probe count is
  // exactly the snapshot's live overlay population.
  IoStats everything_io;
  snapshot.RangeQuery(queries.back(), &everything_io);
  EXPECT_EQ(everything_io.OverlayProbes(), snapshot.overlay_live_count());
}

// A store that was never bulkloaded still answers queries — purely from the
// overlay's spill bucket, serially, with zero page reads — and compacts into
// a real bulkloaded store.
TEST(DeltaOverlayTest, OverlayOnlyStore) {
  ShardedFlatStore store;
  EXPECT_EQ(store.shard_count(), 0u);
  EXPECT_EQ(store.generation(), 0u);

  const std::vector<RTreeEntry> entries = testing::RandomEntries(500, 9);
  for (const RTreeEntry& e : entries) store.Insert(e);
  EXPECT_EQ(store.epoch(), 500u);

  for (const Aabb& query : testing::RandomQueries(10, 10)) {
    IoStats io;
    EXPECT_EQ(store.RangeQuery(query, &io), testing::BruteForce(entries, query));
    EXPECT_EQ(io.TotalReads(), 0u);  // nothing lives on pages yet
    EXPECT_EQ(io.OverlayProbes(), 500u);
    EXPECT_EQ(store.RangeCount(query), testing::BruteForce(entries, query).size());
  }

  const ShardedFlatStore::CompactionStats cstats = store.Compact();
  EXPECT_EQ(cstats.folded_ops, 500u);
  EXPECT_EQ(cstats.inserted, 500u);
  EXPECT_EQ(cstats.merged_elements, 500u);
  EXPECT_EQ(cstats.generation, 1u);
  EXPECT_GT(store.shard_count(), 0u);
  EXPECT_EQ(store.overlay_op_count(), 0u);
  for (const Aabb& query : testing::RandomQueries(10, 11)) {
    IoStats io;
    EXPECT_EQ(store.RangeQuery(query, &io), testing::BruteForce(entries, query));
    EXPECT_EQ(io.OverlayProbes(), 0u);  // overlay fully absorbed
  }
}

// Insert is an upsert: re-inserting an existing (bulkloaded) id moves it.
TEST(DeltaOverlayTest, InsertOverridesBaseElement) {
  std::vector<RTreeEntry> entries = testing::RandomEntries(1000, 5);
  ShardedFlatStore store =
      ShardedFlatStore::Build(entries, ShardedFlatStore::Options{});

  const Aabb old_box = entries[42].box;
  const Aabb new_box(Vec3(200, 200, 200), Vec3(201, 201, 201));  // far away
  store.Insert(RTreeEntry{new_box, 42});

  const std::vector<uint64_t> at_old = store.RangeQuery(old_box);
  EXPECT_EQ(std::count(at_old.begin(), at_old.end(), 42u), 0)
      << "id 42 must have moved away from its bulkloaded box";
  EXPECT_EQ(store.RangeQuery(new_box), std::vector<uint64_t>{42u});
}

// Delete hides a bulkloaded element; re-inserting it afterwards makes it
// visible at the new position only. Deleting a missing id is a no-op.
TEST(DeltaOverlayTest, DeleteThenReinsert) {
  std::vector<RTreeEntry> entries = testing::RandomEntries(1000, 6);
  ShardedFlatStore store =
      ShardedFlatStore::Build(entries, ShardedFlatStore::Options{});

  const Aabb old_box = entries[7].box;
  store.Erase(7);
  std::vector<uint64_t> got = store.RangeQuery(old_box);
  EXPECT_EQ(std::count(got.begin(), got.end(), 7u), 0);

  const uint64_t count_before = store.RangeCount(old_box);
  store.Erase(999999);  // absent id: a no-op
  EXPECT_EQ(store.RangeCount(old_box), count_before);

  const Aabb new_box(Vec3(-50, -50, -50), Vec3(-49, -49, -49));
  store.Insert(RTreeEntry{new_box, 7});
  got = store.RangeQuery(old_box);
  EXPECT_EQ(std::count(got.begin(), got.end(), 7u), 0);
  EXPECT_EQ(store.RangeQuery(new_box), std::vector<uint64_t>{7u});
}

// Overlay probes are charged per live entry gate-tested in the scanned
// buckets — deterministic, independent of thread count, and RangeCount
// probes exactly match RangeQuery's (same documented contract as page
// reads).
TEST(DeltaOverlayTest, OverlayProbeAccounting) {
  std::vector<RTreeEntry> entries = testing::RandomEntries(2000, 8);
  ShardedFlatStore::Options serial;
  serial.num_shards = 5;
  ShardedFlatStore::Options threaded = serial;
  threaded.num_threads = 4;
  ShardedFlatStore store_serial = ShardedFlatStore::Build(entries, serial);
  ShardedFlatStore store_threaded = ShardedFlatStore::Build(entries, threaded);

  const std::vector<RTreeEntry> extra =
      testing::RandomEntries(300, 17);  // ids collide with base: upserts
  for (const RTreeEntry& e : extra) {
    store_serial.Insert(e);
    store_threaded.Insert(e);
  }

  // A query covering everything scans every bucket: probes == live count.
  const Aabb everything(Vec3(-1e6, -1e6, -1e6), Vec3(1e6, 1e6, 1e6));
  IoStats io_serial, io_threaded, io_count;
  const std::vector<uint64_t> ids_serial =
      store_serial.RangeQuery(everything, &io_serial);
  const std::vector<uint64_t> ids_threaded =
      store_threaded.RangeQuery(everything, &io_threaded);
  EXPECT_EQ(ids_serial, ids_threaded);
  EXPECT_EQ(io_serial.OverlayProbes(), 300u);
  EXPECT_EQ(io_threaded.OverlayProbes(), 300u);

  EXPECT_EQ(store_serial.RangeCount(everything, &io_count), ids_serial.size());
  EXPECT_EQ(io_count.OverlayProbes(), io_serial.OverlayProbes());
  for (int c = 0; c < kNumPageCategories; ++c) {
    EXPECT_EQ(io_count.ReadsIn(static_cast<PageCategory>(c)),
              io_serial.ReadsIn(static_cast<PageCategory>(c)));
  }
}

// RunBatch pins one snapshot per batch and merges overlay results per
// query, identical to issuing the singles at the same epoch.
TEST(DeltaOverlayTest, RunBatchMatchesSingles) {
  std::vector<RTreeEntry> entries = testing::RandomEntries(3000, 13);
  ShardedFlatStore::Options options;
  options.num_shards = 5;
  options.num_threads = 4;
  ShardedFlatStore store = ShardedFlatStore::Build(entries, options);
  for (const RTreeEntry& e : testing::RandomEntries(200, 99)) store.Insert(e);
  for (uint64_t id = 0; id < 100; ++id) store.Erase(id * 7);

  const std::vector<Aabb> queries = testing::RandomQueries(12, 55);
  std::vector<Query> batch;
  for (const Aabb& q : queries) {
    batch.push_back(Query::Range(q));
    batch.push_back(Query::RangeCount(q));
    batch.push_back(Query::RangeSeedScan(q));
  }
  const std::vector<QueryResult> results = store.RunBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    IoStats io;
    const std::vector<uint64_t> want = store.RangeQuery(queries[i], &io);
    EXPECT_EQ(results[3 * i].ids, want);
    EXPECT_EQ(results[3 * i + 1].count, want.size());
    EXPECT_TRUE(results[3 * i + 1].ids.empty());
    EXPECT_EQ(results[3 * i + 2].ids, want);
    EXPECT_EQ(results[3 * i].io.OverlayProbes(), io.OverlayProbes());
  }
}

}  // namespace
}  // namespace flat
