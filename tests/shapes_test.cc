#include "geometry/shapes.h"

#include <gtest/gtest.h>

#include <numbers>

namespace flat {
namespace {

TEST(CylinderTest, BoundsEncloseBothCaps) {
  Cylinder c{Vec3(0, 0, 0), Vec3(10, 0, 0), 1.0, 2.0};
  Aabb box = c.Bounds();
  EXPECT_LE(box.lo().x, -1.0);
  EXPECT_GE(box.hi().x, 12.0);
  EXPECT_LE(box.lo().y, -2.0);
  EXPECT_GE(box.hi().y, 2.0);
  // Axis endpoints are inside.
  EXPECT_TRUE(box.Contains(c.a));
  EXPECT_TRUE(box.Contains(c.b));
}

TEST(CylinderTest, AxisLength) {
  Cylinder c{Vec3(0, 0, 0), Vec3(3, 4, 0), 0.5, 0.5};
  EXPECT_DOUBLE_EQ(c.AxisLength(), 5.0);
}

TEST(CylinderTest, VolumeMatchesUniformCylinder) {
  // Equal radii: V = pi r^2 h.
  Cylinder c{Vec3(0, 0, 0), Vec3(0, 0, 2), 3.0, 3.0};
  EXPECT_NEAR(c.Volume(), std::numbers::pi * 9.0 * 2.0, 1e-9);
}

TEST(CylinderTest, VolumeOfConeIsOneThird) {
  // One radius zero: V = pi r^2 h / 3.
  Cylinder c{Vec3(0, 0, 0), Vec3(0, 0, 3), 2.0, 0.0};
  EXPECT_NEAR(c.Volume(), std::numbers::pi * 4.0 * 3.0 / 3.0, 1e-9);
}

TEST(TriangleTest, BoundsAndArea) {
  Triangle t{Vec3(0, 0, 0), Vec3(4, 0, 0), Vec3(0, 3, 0)};
  Aabb box = t.Bounds();
  EXPECT_EQ(box.lo(), Vec3(0, 0, 0));
  EXPECT_EQ(box.hi(), Vec3(4, 3, 0));
  EXPECT_DOUBLE_EQ(t.Area(), 6.0);
  EXPECT_EQ(t.Centroid(), Vec3(4.0 / 3, 1.0, 0));
}

TEST(TriangleTest, DegenerateTriangleHasZeroArea) {
  Triangle t{Vec3(0, 0, 0), Vec3(1, 1, 1), Vec3(2, 2, 2)};
  EXPECT_DOUBLE_EQ(t.Area(), 0.0);
  EXPECT_FALSE(t.Bounds().IsEmpty());
}

TEST(SphereTest, BoundsAndVolume) {
  Sphere s{Vec3(1, 1, 1), 2.0};
  Aabb box = s.Bounds();
  EXPECT_EQ(box.lo(), Vec3(-1, -1, -1));
  EXPECT_EQ(box.hi(), Vec3(3, 3, 3));
  EXPECT_NEAR(s.Volume(), 4.0 / 3.0 * std::numbers::pi * 8.0, 1e-9);
}

}  // namespace
}  // namespace flat
