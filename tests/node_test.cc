#include "rtree/node.h"

#include <gtest/gtest.h>

#include <vector>

#include "storage/page_file.h"

namespace flat {
namespace {

TEST(NodeTest, CapacityMatchesPageSize) {
  EXPECT_EQ(NodeCapacity(4096), (4096u - 8) / 56);  // 73 slots
  EXPECT_EQ(NodeCapacity(1024), (1024u - 8) / 56);
  EXPECT_GE(NodeCapacity(512), 2u) << "tests rely on tiny pages being usable";
}

TEST(NodeTest, InitAndAppendRoundTrip) {
  PageFile file(4096);
  PageId p = file.Allocate(PageCategory::kRTreeLeaf);
  NodeWriter writer(file.MutableData(p), file.page_size());
  writer.Init(/*level=*/0);
  EXPECT_EQ(writer.count(), 0u);
  EXPECT_FALSE(writer.Full());

  std::vector<RTreeEntry> entries;
  for (uint64_t i = 0; i < 10; ++i) {
    RTreeEntry e{Aabb(Vec3(i, i, i), Vec3(i + 1, i + 1, i + 1)), i * 100};
    entries.push_back(e);
    writer.Append(e);
  }

  NodeView view(file.Data(p));
  EXPECT_EQ(view.count(), 10u);
  EXPECT_TRUE(view.is_leaf());
  EXPECT_EQ(view.level(), 0u);
  for (uint16_t i = 0; i < 10; ++i) {
    EXPECT_EQ(view.IdAt(i), entries[i].id);
    EXPECT_EQ(view.BoxAt(i), entries[i].box);
  }
}

TEST(NodeTest, LevelMarksInternalNodes) {
  PageFile file;
  PageId p = file.Allocate(PageCategory::kRTreeInternal);
  NodeWriter writer(file.MutableData(p), file.page_size());
  writer.Init(/*level=*/3);
  NodeView view(file.Data(p));
  EXPECT_FALSE(view.is_leaf());
  EXPECT_EQ(view.level(), 3u);
}

TEST(NodeTest, FullAtCapacity) {
  PageFile file(512);
  PageId p = file.Allocate(PageCategory::kRTreeLeaf);
  NodeWriter writer(file.MutableData(p), file.page_size());
  writer.Init(0);
  const uint32_t cap = NodeCapacity(512);
  for (uint32_t i = 0; i < cap; ++i) {
    writer.Append(RTreeEntry{Aabb::FromPoint(Vec3(i, 0, 0)), i});
  }
  EXPECT_TRUE(writer.Full());
  EXPECT_EQ(writer.count(), cap);
}

TEST(NodeTest, SetEntryOverwritesSlot) {
  PageFile file;
  PageId p = file.Allocate(PageCategory::kRTreeLeaf);
  NodeWriter writer(file.MutableData(p), file.page_size());
  writer.Init(0);
  writer.Append(RTreeEntry{Aabb::FromPoint(Vec3(1, 1, 1)), 1});
  writer.Append(RTreeEntry{Aabb::FromPoint(Vec3(2, 2, 2)), 2});
  writer.SetEntry(0, RTreeEntry{Aabb::FromPoint(Vec3(9, 9, 9)), 99});
  NodeView view(file.Data(p));
  EXPECT_EQ(view.IdAt(0), 99u);
  EXPECT_EQ(view.IdAt(1), 2u);
  EXPECT_EQ(view.count(), 2u);
}

TEST(NodeTest, TruncateKeepsLevel) {
  PageFile file;
  PageId p = file.Allocate(PageCategory::kRTreeInternal);
  NodeWriter writer(file.MutableData(p), file.page_size());
  writer.Init(2);
  writer.Append(RTreeEntry{Aabb::FromPoint(Vec3()), 7});
  writer.Truncate();
  EXPECT_EQ(writer.count(), 0u);
  EXPECT_EQ(writer.level(), 2u);
}

TEST(NodeTest, BoundsUnionsAllEntries) {
  PageFile file;
  PageId p = file.Allocate(PageCategory::kRTreeLeaf);
  NodeWriter writer(file.MutableData(p), file.page_size());
  writer.Init(0);
  writer.Append(RTreeEntry{Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 0});
  writer.Append(RTreeEntry{Aabb(Vec3(5, -2, 0), Vec3(6, 0, 3)), 1});
  Aabb bounds = NodeView(file.Data(p)).Bounds();
  EXPECT_EQ(bounds.lo(), Vec3(0, -2, 0));
  EXPECT_EQ(bounds.hi(), Vec3(6, 1, 3));
}

}  // namespace
}  // namespace flat
