// End-to-end invariants of BuildOptions::compressed_seed_pages: query
// results are bit-identical to an exact build (as SETS — the two builds may
// seed the crawl at different records, so emission order can differ), page
// reads never increase, the build stays deterministic across thread counts,
// and files round-trip through both persistence backends under the v2 magic
// while exact builds keep writing byte-identical v1 files.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/crawl_scratch.h"
#include "core/flat_index.h"
#include "data/mesh_generator.h"
#include "data/neuron_generator.h"
#include "data/uniform_generator.h"
#include "rtree/node.h"
#include "storage/buffer_pool.h"
#include "storage/disk_page_file.h"
#include "storage/io_stats.h"
#include "storage/page_file.h"
#include "storage/persistence.h"
#include "tests/test_util.h"

namespace flat {
namespace {

using testing::RandomQueries;
using testing::Sorted;

FlatIndex::BuildOptions CompressedOptions(size_t threads = 1) {
  FlatIndex::BuildOptions options;
  options.num_threads = threads;
  options.compressed_seed_pages = true;
  return options;
}

struct QueryOutcome {
  std::vector<std::vector<uint64_t>> sorted_ids;
  uint64_t total_reads = 0;
};

QueryOutcome RunQueries(const FlatIndex& index, PageStore* store,
                        const std::vector<Aabb>& queries) {
  QueryOutcome outcome;
  IoStats io;
  BufferPool pool(store, &io);
  CrawlScratch scratch;
  outcome.sorted_ids.reserve(queries.size());
  for (const Aabb& query : queries) {
    pool.Clear();
    std::vector<uint64_t> ids;
    index.RangeQuery(&pool, query, &ids, &scratch);
    outcome.sorted_ids.push_back(Sorted(std::move(ids)));
  }
  outcome.total_reads = io.TotalReads();
  return outcome;
}

// The shared tentpole check: same elements, exact vs compressed build, same
// query stream -> identical result sets, no extra page reads, and against
// the brute-force oracle for good measure.
void ExpectCompressedMatchesExact(const Dataset& dataset, uint32_t page_size,
                                  uint64_t query_seed) {
  PageFile exact_file(page_size);
  FlatIndex exact = FlatIndex::Build(&exact_file, dataset.elements);

  PageFile compressed_file(page_size);
  FlatIndex compressed = FlatIndex::Build(&compressed_file, dataset.elements,
                                          CompressedOptions());

  const auto queries = RandomQueries(60, query_seed);
  const QueryOutcome exact_out = RunQueries(exact, &exact_file, queries);
  const QueryOutcome compressed_out =
      RunQueries(compressed, &compressed_file, queries);

  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(exact_out.sorted_ids[i], compressed_out.sorted_ids[i])
        << "query " << i << " diverged (page_size " << page_size << ")";
    EXPECT_EQ(compressed_out.sorted_ids[i],
              Sorted(dataset.BruteForceRange(queries[i])))
        << "query " << i << " wrong vs oracle";
  }
  // No assertion on total_reads here: the quantized gate's false positives
  // can pick a *different* (equally valid) seed record whose crawl path
  // touches a few more pages on tiny data sets. The read-count reduction is
  // a workload-level property and is gated where the issue states it — on
  // the Figure-12 SN workload, by bench_fig12_sn_page_reads --json
  // (bench_smoke + BENCH_compressed.json fail on any regression).
  EXPECT_LE(compressed.build_stats().seed_internal_pages,
            exact.build_stats().seed_internal_pages);
  EXPECT_LE(compressed.build_stats().seed_height,
            exact.build_stats().seed_height);
}

Dataset NeuronData() {
  NeuronParams params;
  params.total_elements = 30000;
  params.seed = 17;
  return GenerateNeurons(params);
}

TEST(CompressedIndexTest, NeuronResultsBitIdentical) {
  const Dataset dataset = NeuronData();
  ExpectCompressedMatchesExact(dataset, kDefaultPageSize, 101);
  // 512-byte pages force a tall exact tree (fanout 9 vs 28) — the format
  // divergence is largest here.
  ExpectCompressedMatchesExact(dataset, 512, 102);
}

TEST(CompressedIndexTest, MeshResultsBitIdentical) {
  MeshParams params;
  params.kind = MeshKind::kFoldedSheet;
  params.target_triangles = 20000;
  params.seed = 23;
  const Dataset dataset = GenerateMesh(params);
  ExpectCompressedMatchesExact(dataset, 512, 103);
}

TEST(CompressedIndexTest, UniformResultsBitIdentical) {
  UniformBoxParams params;
  params.count = 20000;
  params.universe_side_um = 100.0;
  params.side_um = 1.0;
  params.seed = 29;
  const Dataset dataset = GenerateUniformBoxes(params);
  ExpectCompressedMatchesExact(dataset, 512, 104);
}

TEST(CompressedIndexTest, HeightDropsOnTallTrees) {
  // At 512-byte pages the exact seed tree over this data set needs more
  // levels than the compressed one (fanout 9 vs 28) — the mechanism behind
  // the Figure-12 seed-internal read reduction.
  const Dataset dataset = NeuronData();
  PageFile exact_file(512);
  FlatIndex exact = FlatIndex::Build(&exact_file, dataset.elements);
  PageFile compressed_file(512);
  FlatIndex compressed = FlatIndex::Build(&compressed_file, dataset.elements,
                                          CompressedOptions());
  ASSERT_GE(exact.build_stats().seed_height, 3);
  EXPECT_LT(compressed.build_stats().seed_height,
            exact.build_stats().seed_height);
}

TEST(CompressedIndexTest, ParallelBuildByteIdentical) {
  const Dataset dataset = NeuronData();
  PageFile serial_file;
  FlatIndex::Build(&serial_file, dataset.elements, CompressedOptions(1));
  for (size_t threads : {2, 4}) {
    PageFile parallel_file;
    FlatIndex::Build(&parallel_file, dataset.elements,
                     CompressedOptions(threads));
    ASSERT_EQ(serial_file.page_count(), parallel_file.page_count());
    for (PageId id = 0; id < serial_file.page_count(); ++id) {
      ASSERT_EQ(serial_file.category(id), parallel_file.category(id));
      ASSERT_EQ(std::memcmp(serial_file.Data(id), parallel_file.Data(id),
                            serial_file.page_size()),
                0)
          << "page " << id << " differs at " << threads << " threads";
    }
  }
}

TEST(CompressedIndexTest, MagicReflectsPageFormats) {
  const Dataset dataset = NeuronData();
  PageFile exact_file;
  FlatIndex::Build(&exact_file, dataset.elements);
  PageFile compressed_file;
  FlatIndex::Build(&compressed_file, dataset.elements, CompressedOptions());

  std::stringstream exact_stream, compressed_stream;
  SavePageFile(exact_file, exact_stream);
  SavePageFile(compressed_file, compressed_stream);
  EXPECT_EQ(exact_stream.str().substr(0, 8), "FLATPGF1");
  EXPECT_EQ(compressed_stream.str().substr(0, 8), "FLATPGF2");

  // Unknown future versions stay rejected.
  std::string bytes = compressed_stream.str();
  bytes[7] = '3';
  std::istringstream future(bytes);
  EXPECT_THROW(LoadPageFile(future), std::runtime_error);
}

TEST(CompressedIndexTest, SaveLoadQueryIdentity) {
  const Dataset dataset = NeuronData();
  PageFile file(512);
  FlatIndex index =
      FlatIndex::Build(&file, dataset.elements, CompressedOptions());
  const auto queries = RandomQueries(40, 202);
  const QueryOutcome before = RunQueries(index, &file, queries);

  std::stringstream stream;
  SavePageFile(file, stream);
  auto loaded = LoadPageFile(stream);
  FlatIndex reopened = FlatIndex::Attach(loaded.get(), index.descriptor());
  const QueryOutcome after = RunQueries(reopened, loaded.get(), queries);
  EXPECT_EQ(before.sorted_ids, after.sorted_ids);
  EXPECT_EQ(before.total_reads, after.total_reads);
}

TEST(CompressedIndexTest, DiskBackendRoundTrip) {
  const Dataset dataset = NeuronData();
  PageFile file(512);
  FlatIndex index =
      FlatIndex::Build(&file, dataset.elements, CompressedOptions());
  const auto queries = RandomQueries(40, 203);
  const QueryOutcome before = RunQueries(index, &file, queries);

  const std::string path = ::testing::TempDir() + "compressed_index.pgf";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    SavePageFile(file, out);
  }
  auto disk = DiskPageFile::Open(path);
  FlatIndex reopened = FlatIndex::Attach(disk.get(), index.descriptor());
  const QueryOutcome after = RunQueries(reopened, disk.get(), queries);
  EXPECT_EQ(before.sorted_ids, after.sorted_ids);
  EXPECT_EQ(before.total_reads, after.total_reads);
  std::remove(path.c_str());
}

TEST(CompressedIndexTest, ExactBuildsStillWriteV1) {
  // Regression guard for old readers: an exact build must serialize byte-
  // for-byte as before the format byte existed (it is zero on every page).
  const Dataset dataset = NeuronData();
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, dataset.elements);
  std::stringstream stream;
  SavePageFile(file, stream);
  const std::string bytes = stream.str();
  ASSERT_EQ(bytes.substr(0, 8), "FLATPGF1");

  // And it loads + queries identically, the v1 back-compat path.
  std::istringstream in(bytes);
  auto loaded = LoadPageFile(in);
  FlatIndex reopened = FlatIndex::Attach(loaded.get(), index.descriptor());
  const auto queries = RandomQueries(20, 204);
  EXPECT_EQ(RunQueries(index, &file, queries).sorted_ids,
            RunQueries(reopened, loaded.get(), queries).sorted_ids);
}

}  // namespace
}  // namespace flat
