#include "rtree/mem_rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "geometry/rng.h"
#include "tests/test_util.h"

namespace flat {
namespace {

std::vector<uint32_t> BruteForceIndices(const std::vector<Aabb>& boxes,
                                        const Aabb& query) {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < boxes.size(); ++i) {
    if (boxes[i].Intersects(query)) out.push_back(i);
  }
  return out;
}

TEST(MemRTreeTest, EmptyTree) {
  MemRTree tree;
  std::vector<uint32_t> out;
  tree.Query(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(MemRTreeTest, SingleBox) {
  MemRTree tree({Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1))});
  std::vector<uint32_t> out;
  tree.Query(Aabb(Vec3(0.5, 0.5, 0.5), Vec3(2, 2, 2)), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
  out.clear();
  tree.Query(Aabb(Vec3(5, 5, 5), Vec3(6, 6, 6)), &out);
  EXPECT_TRUE(out.empty());
}

TEST(MemRTreeTest, MatchesBruteForce) {
  auto entries = testing::RandomEntries(3000, 71);
  std::vector<Aabb> boxes;
  for (const auto& e : entries) boxes.push_back(e.box);
  MemRTree tree(boxes);
  for (const Aabb& q : testing::RandomQueries(60, 72)) {
    std::vector<uint32_t> got;
    tree.Query(q, &got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForceIndices(boxes, q));
  }
}

TEST(MemRTreeTest, VariousFanouts) {
  auto entries = testing::RandomEntries(500, 73);
  std::vector<Aabb> boxes;
  for (const auto& e : entries) boxes.push_back(e.box);
  for (int fanout : {2, 3, 8, 64, 1000}) {
    MemRTree tree(boxes, fanout);
    std::vector<uint32_t> got;
    tree.Query(Aabb(Vec3(20, 20, 20), Vec3(60, 60, 60)), &got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got,
              BruteForceIndices(boxes, Aabb(Vec3(20, 20, 20),
                                            Vec3(60, 60, 60))))
        << "fanout=" << fanout;
  }
}

TEST(MemRTreeTest, TouchingBoxesAreReported) {
  // Face-adjacency must count as intersection: FLAT's neighbor computation
  // depends on it.
  std::vector<Aabb> boxes = {
      Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)),
      Aabb(Vec3(1, 0, 0), Vec3(2, 1, 1)),  // shares a face with box 0
  };
  MemRTree tree(boxes);
  std::vector<uint32_t> got;
  tree.Query(boxes[0], &got);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<uint32_t>{0, 1}));
}

}  // namespace
}  // namespace flat
