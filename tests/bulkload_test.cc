#include "rtree/bulkload.h"

#include <gtest/gtest.h>

#include "rtree/node.h"
#include "rtree/pack.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace flat {
namespace {

using testing::BruteForce;
using testing::RandomEntries;
using testing::RandomQueries;
using testing::Sorted;

class BulkloadCorrectnessTest
    : public ::testing::TestWithParam<BulkloadStrategy> {};

TEST_P(BulkloadCorrectnessTest, MatchesBruteForceOnRandomWorkload) {
  const auto entries = RandomEntries(3000, 17);
  PageFile file;
  RTree tree = Bulkload(&file, entries, GetParam());

  IoStats stats;
  BufferPool pool(&file, &stats);
  for (const Aabb& query : RandomQueries(60, 99)) {
    std::vector<uint64_t> got;
    tree.RangeQuery(&pool, query, &got);
    EXPECT_EQ(Sorted(got), BruteForce(entries, query));
  }
}

TEST_P(BulkloadCorrectnessTest, AllEntriesReachableViaHugeQuery) {
  const auto entries = RandomEntries(500, 18);
  PageFile file;
  RTree tree = Bulkload(&file, entries, GetParam());
  IoStats stats;
  BufferPool pool(&file, &stats);
  std::vector<uint64_t> got;
  tree.RangeQuery(&pool, Aabb(Vec3(-1e9, -1e9, -1e9), Vec3(1e9, 1e9, 1e9)),
                  &got);
  EXPECT_EQ(got.size(), entries.size());
}

TEST_P(BulkloadCorrectnessTest, EmptyInputYieldsEmptyTree) {
  PageFile file;
  RTree tree = Bulkload(&file, {}, GetParam());
  EXPECT_TRUE(tree.empty());
  IoStats stats;
  BufferPool pool(&file, &stats);
  std::vector<uint64_t> got;
  tree.RangeQuery(&pool, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), &got);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(stats.TotalReads(), 0u);
}

TEST_P(BulkloadCorrectnessTest, SingleEntryTree) {
  PageFile file;
  RTreeEntry e{Aabb(Vec3(1, 1, 1), Vec3(2, 2, 2)), 42};
  RTree tree = Bulkload(&file, {e}, GetParam());
  EXPECT_EQ(tree.height(), 1);
  IoStats stats;
  BufferPool pool(&file, &stats);
  std::vector<uint64_t> got;
  tree.RangeQuery(&pool, Aabb(Vec3(0, 0, 0), Vec3(1.5, 1.5, 1.5)), &got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 42u);
}

TEST_P(BulkloadCorrectnessTest, DuplicateCoordinatesHandled) {
  // All elements at the same location: degenerate sort keys everywhere.
  std::vector<RTreeEntry> entries;
  for (uint64_t i = 0; i < 500; ++i) {
    entries.push_back(RTreeEntry{Aabb(Vec3(5, 5, 5), Vec3(6, 6, 6)), i});
  }
  PageFile file;
  RTree tree = Bulkload(&file, entries, GetParam());
  IoStats stats;
  BufferPool pool(&file, &stats);
  std::vector<uint64_t> got;
  tree.RangeQuery(&pool, Aabb(Vec3(5.5, 5.5, 5.5), Vec3(5.6, 5.6, 5.6)),
                  &got);
  EXPECT_EQ(got.size(), entries.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, BulkloadCorrectnessTest,
    ::testing::Values(BulkloadStrategy::kStr, BulkloadStrategy::kHilbert,
                      BulkloadStrategy::kMorton, BulkloadStrategy::kPrTree,
                      BulkloadStrategy::kTgs),
    [](const ::testing::TestParamInfo<BulkloadStrategy>& info) {
      std::string name = BulkloadStrategyName(info.param);
      std::erase_if(name, [](char c) { return !std::isalnum(c); });
      return name;
    });

TEST(BulkloadStructureTest, LeafPagesAreFullExceptPossiblyOne) {
  // Full leaves are the page-utilization advantage of bulkloading that the
  // paper cites; STR/Hilbert/Morton guarantee it by construction.
  for (BulkloadStrategy strategy :
       {BulkloadStrategy::kStr, BulkloadStrategy::kHilbert,
        BulkloadStrategy::kMorton}) {
    PageFile file(512);
    const uint32_t cap = NodeCapacity(512);
    const auto entries = RandomEntries(20 * cap + 3, 19);
    RTree tree = Bulkload(&file, entries, strategy);
    auto stats = tree.ComputeStats();
    EXPECT_EQ(stats.leaf_pages, 21u)
        << BulkloadStrategyName(strategy);
    EXPECT_EQ(stats.leaf_entries, entries.size());
  }
}

TEST(BulkloadStructureTest, StrBeatsRandomOrderOnLeafTightness) {
  const auto entries = RandomEntries(5000, 20, /*max_side=*/0.5);
  PageFile str_file, shuffled_file;
  RTree str_tree = BulkloadStr(&str_file, entries);
  // "Shuffled" == pack in generation order (random) without re-tiling.
  RTree shuffled = PackOrderedLeaves(&shuffled_file, entries,
                                     LevelOrder::kSequential);
  EXPECT_LT(str_tree.ComputeStats().total_leaf_volume,
            0.2 * shuffled.ComputeStats().total_leaf_volume);
}

TEST(BulkloadStructureTest, HeightsAreLogarithmic) {
  PageFile file(512);
  const uint32_t cap = NodeCapacity(512);
  const auto entries = RandomEntries(cap * cap * 2, 21);
  for (BulkloadStrategy strategy :
       {BulkloadStrategy::kStr, BulkloadStrategy::kHilbert,
        BulkloadStrategy::kPrTree, BulkloadStrategy::kTgs}) {
    PageFile f(512);
    RTree tree = Bulkload(&f, entries, strategy);
    EXPECT_GE(tree.height(), 3) << BulkloadStrategyName(strategy);
    EXPECT_LE(tree.height(), 5) << BulkloadStrategyName(strategy);
  }
}

TEST(BulkloadStructureTest, PrTreeLevelsAreConsistent) {
  // Every child referenced by a level-k node must be a level-(k-1) node.
  PageFile file(512);
  const auto entries = RandomEntries(2000, 22);
  RTree tree = BulkloadPrTree(&file, entries);
  std::vector<std::pair<PageId, int>> stack = {{tree.root(), tree.height()}};
  while (!stack.empty()) {
    auto [page, expected_level_plus1] = stack.back();
    stack.pop_back();
    NodeView node(file.Data(page));
    ASSERT_EQ(node.level(), expected_level_plus1 - 1);
    if (!node.is_leaf()) {
      for (uint16_t i = 0; i < node.count(); ++i) {
        stack.push_back(
            {static_cast<PageId>(node.IdAt(i)), expected_level_plus1 - 1});
      }
    }
  }
}

TEST(BulkloadStrategyNameTest, AllNamed) {
  EXPECT_STREQ(BulkloadStrategyName(BulkloadStrategy::kStr), "STR");
  EXPECT_STREQ(BulkloadStrategyName(BulkloadStrategy::kHilbert), "Hilbert");
  EXPECT_STREQ(BulkloadStrategyName(BulkloadStrategy::kMorton), "Morton");
  EXPECT_STREQ(BulkloadStrategyName(BulkloadStrategy::kPrTree), "PR-Tree");
  EXPECT_STREQ(BulkloadStrategyName(BulkloadStrategy::kTgs), "TGS");
}

}  // namespace
}  // namespace flat
