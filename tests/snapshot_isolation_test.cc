// Snapshot isolation and compaction invariants of the dynamic store:
// pinned-epoch queries racing writers and compaction (no torn reads, no
// phantom deletes), the compaction byte-identity invariant (the compacted
// store's shard PageFiles are byte-identical to a fresh bulkload of the
// merged data), and overlay WAL persistence. The concurrency cases here run
// under ThreadSanitizer in CI.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "shard/sharded_flat_store.h"
#include "storage/persistence.h"
#include "tests/test_util.h"

namespace flat {
namespace {

using testing::OracleMirror;
using testing::RandomEntries;
using testing::RandomQueries;

// One pre-generated overlay op for the concurrency oracles: the writer
// thread applies them in order, so the store's epoch e corresponds exactly
// to the prefix ops[0, e).
struct Op {
  bool is_erase = false;
  RTreeEntry entry;  // insert payload; entry.id doubles as the erase target
};

std::vector<Op> MakeOps(size_t count, uint64_t seed, uint64_t id_space) {
  Rng rng(seed);
  const Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  std::vector<Op> ops;
  ops.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Op op;
    op.is_erase = rng.Bernoulli(0.35);
    const uint64_t id = static_cast<uint64_t>(
        rng.UniformInt(0, static_cast<int64_t>(id_space) - 1));
    if (op.is_erase) {
      op.entry.id = id;
    } else {
      const Vec3 center = rng.PointIn(universe);
      const double side = rng.Uniform(0.05, 2.0);
      op.entry = RTreeEntry{
          Aabb::FromCenterHalfExtents(center, Vec3(side, side, side) * 0.5),
          id};
    }
    ops.push_back(op);
  }
  return ops;
}

// A pinned snapshot sees exactly the state at its epoch: writes and a
// compaction landing afterwards are invisible (no phantom deletes — an id
// erased later is still in the pinned view; no phantom inserts either).
TEST(SnapshotIsolationTest, PinnedSnapshotIgnoresLaterWrites) {
  const std::vector<RTreeEntry> entries = RandomEntries(4000, /*seed=*/21);
  ShardedFlatStore store =
      ShardedFlatStore::Build(entries, {.num_shards = 5, .num_threads = 4});

  // Mutate a little first so the pinned snapshot has its own overlay window.
  store.Insert(RTreeEntry{Aabb(Vec3(1, 1, 1), Vec3(2, 2, 2)), 5000});
  store.Erase(11);

  const ShardedFlatStore::Snapshot pinned = store.PinSnapshot();
  const std::vector<Aabb> queries = RandomQueries(15, /*seed=*/22);
  std::vector<std::vector<uint64_t>> before;
  for (const Aabb& q : queries) before.push_back(pinned.RangeQuery(q));

  // Later writes: erase many ids the snapshot can see, insert fresh ones,
  // then fold everything with a compaction.
  for (uint64_t id = 0; id < 1000; ++id) store.Erase(id * 3);
  for (const RTreeEntry& e : RandomEntries(500, /*seed=*/23)) {
    store.Insert(RTreeEntry{e.box, e.id + 10000});
  }
  const uint64_t generation_before = pinned.generation();
  store.Compact();
  ASSERT_GT(store.generation(), generation_before);

  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(pinned.RangeQuery(queries[i]), before[i])
        << "pinned snapshot changed after writes + compaction (query " << i
        << ")";
  }
  EXPECT_EQ(pinned.generation(), generation_before)
      << "snapshot must keep reading the base it pinned";

  // The erased ids really are gone from the store's current view while the
  // pinned snapshot still returns them (no phantom deletes in the pin).
  const Aabb everything(Vec3(-1e18, -1e18, -1e18), Vec3(1e18, 1e18, 1e18));
  const std::vector<uint64_t> now = store.RangeQuery(everything);
  const std::vector<uint64_t> then = pinned.RangeQuery(everything);
  EXPECT_TRUE(std::binary_search(then.begin(), then.end(), 33u));
  EXPECT_FALSE(std::binary_search(now.begin(), now.end(), 33u));
  EXPECT_FALSE(std::binary_search(then.begin(), then.end(), 10001u));
  EXPECT_TRUE(std::binary_search(now.begin(), now.end(), 10001u));
}

// THE hard invariant: after Compact, the store's shard PageFiles are
// byte-identical to a fresh bulkload of the merged data — even when the
// compacting store runs multi-threaded and the fresh build is serial.
TEST(SnapshotIsolationTest, CompactionIsByteIdenticalToFreshBulkload) {
  const std::vector<RTreeEntry> entries = RandomEntries(6000, /*seed=*/31);
  ShardedFlatStore::Options options{.num_shards = 5, .num_threads = 4};
  ShardedFlatStore store = ShardedFlatStore::Build(entries, options);
  OracleMirror mirror(entries);

  Rng rng(32);
  const Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  for (int i = 0; i < 800; ++i) {
    const RTreeEntry e{
        Aabb::FromCenterHalfExtents(rng.PointIn(universe),
                                    Vec3(0.5, 0.5, 0.5)),
        static_cast<uint64_t>(rng.UniformInt(0, 7000))};
    store.Insert(e);
    mirror.Insert(e);
  }
  for (int i = 0; i < 400; ++i) {
    const uint64_t id = static_cast<uint64_t>(rng.UniformInt(0, 7000));
    store.Erase(id);
    mirror.Erase(id);
  }

  const ShardedFlatStore::CompactionStats cstats = store.Compact();
  EXPECT_EQ(cstats.folded_ops, 1200u);
  EXPECT_EQ(cstats.merged_elements, mirror.size());
  EXPECT_EQ(store.overlay_op_count(), 0u);

  // Fresh bulkload of the oracle's live set — deliberately serial, so the
  // comparison also re-proves build byte-identity across thread counts.
  ShardedFlatStore::Options serial = options;
  serial.num_threads = 1;
  ShardedFlatStore fresh = ShardedFlatStore::Build(mirror.LiveElements(), serial);

  ASSERT_EQ(store.shard_count(), fresh.shard_count());
  EXPECT_EQ(store.catalog().total_elements, fresh.catalog().total_elements);
  for (size_t s = 0; s < store.shard_count(); ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    EXPECT_EQ(store.catalog().shards[s].bounds, fresh.catalog().shards[s].bounds);
    EXPECT_EQ(store.catalog().shards[s].element_count,
              fresh.catalog().shards[s].element_count);
    // Byte comparison through the persistence serializer: covers page data,
    // categories and counts in one stream.
    std::ostringstream compacted_bytes, fresh_bytes;
    SavePageFile(store.shard_file(s), compacted_bytes);
    SavePageFile(fresh.shard_file(s), fresh_bytes);
    EXPECT_TRUE(compacted_bytes.str() == fresh_bytes.str())
        << "shard PageFile bytes diverge after compaction";
  }

  // And the merged view still answers like the oracle.
  for (const Aabb& q : RandomQueries(10, /*seed=*/33)) {
    EXPECT_EQ(store.RangeQuery(q), mirror.RangeQuery(q));
  }
}

// A second compaction with an empty overlay window must be a no-op on the
// bytes (idempotent fold).
TEST(SnapshotIsolationTest, EmptyWindowCompactionKeepsBytes) {
  ShardedFlatStore store = ShardedFlatStore::Build(
      RandomEntries(3000, /*seed=*/41), {.num_shards = 3});
  store.Insert(RTreeEntry{Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 9999});
  store.Compact();

  std::vector<std::string> before;
  for (size_t s = 0; s < store.shard_count(); ++s) {
    std::ostringstream bytes;
    SavePageFile(store.shard_file(s), bytes);
    before.push_back(bytes.str());
  }
  const ShardedFlatStore::CompactionStats cstats = store.Compact();
  EXPECT_EQ(cstats.folded_ops, 0u);
  ASSERT_EQ(store.shard_count(), before.size());
  for (size_t s = 0; s < store.shard_count(); ++s) {
    std::ostringstream bytes;
    SavePageFile(store.shard_file(s), bytes);
    EXPECT_TRUE(bytes.str() == before[s]) << "shard " << s;
  }
}

// Single writer + concurrent reader pinning snapshots + a compactor thread:
// every pinned snapshot must equal the exact oracle prefix at its epoch —
// not one op more, not one op fewer (torn reads), no resurrected or phantom
// ids. Runs under TSan in CI to also prove data-race freedom.
TEST(SnapshotIsolationTest, ConcurrentWriterCompactorExactOracle) {
  const std::vector<RTreeEntry> initial = RandomEntries(2000, /*seed=*/51);
  const std::vector<Op> ops = MakeOps(3000, /*seed=*/52, /*id_space=*/2500);
  ShardedFlatStore store =
      ShardedFlatStore::Build(initial, {.num_shards = 4, .num_threads = 1});

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (const Op& op : ops) {
      if (op.is_erase) {
        store.Erase(op.entry.id);
      } else {
        store.Insert(op.entry);
      }
    }
    done.store(true, std::memory_order_release);
  });
  std::thread compactor([&] {
    while (!done.load(std::memory_order_acquire)) {
      store.Compact();
      std::this_thread::yield();
    }
    store.Compact();  // fold whatever remains
  });

  const std::vector<Aabb> probes = RandomQueries(4, /*seed=*/53);
  size_t checked = 0;
  while (checked < 40) {
    const ShardedFlatStore::Snapshot snapshot = store.PinSnapshot();
    const uint64_t epoch = snapshot.epoch();
    ASSERT_LE(epoch, ops.size());
    OracleMirror oracle(initial);
    for (uint64_t i = 0; i < epoch; ++i) {
      if (ops[i].is_erase) {
        oracle.Erase(ops[i].entry.id);
      } else {
        oracle.Insert(ops[i].entry);
      }
    }
    for (const Aabb& q : probes) {
      ASSERT_EQ(snapshot.RangeQuery(q), oracle.RangeQuery(q))
          << "epoch " << epoch;
    }
    ++checked;
    if (done.load(std::memory_order_acquire) && epoch == ops.size()) break;
  }
  writer.join();
  compactor.join();

  // Quiesced: the store-level view equals the full-prefix oracle.
  OracleMirror final_oracle(initial);
  for (const Op& op : ops) {
    if (op.is_erase) {
      final_oracle.Erase(op.entry.id);
    } else {
      final_oracle.Insert(op.entry);
    }
  }
  const Aabb everything(Vec3(-1e18, -1e18, -1e18), Vec3(1e18, 1e18, 1e18));
  EXPECT_EQ(store.RangeQuery(everything), final_oracle.RangeQuery(everything));
}

// Multiple writers interleave nondeterministically, so there is no single
// oracle prefix — but any pinned snapshot must still be STABLE: identical
// results every time it is queried, epochs monotone, and every visible id
// from the writers' id universe. Runs under TSan in CI.
TEST(SnapshotIsolationTest, MultiWriterSnapshotStability) {
  const std::vector<RTreeEntry> initial = RandomEntries(1500, /*seed=*/61);
  ShardedFlatStore store =
      ShardedFlatStore::Build(initial, {.num_shards = 3, .num_threads = 1});

  constexpr uint64_t kIdSpace = 4000;
  std::atomic<int> writers_left{2};
  auto writer = [&](uint64_t seed) {
    for (const Op& op : MakeOps(1500, seed, kIdSpace)) {
      if (op.is_erase) {
        store.Erase(op.entry.id);
      } else {
        store.Insert(op.entry);
      }
    }
    writers_left.fetch_sub(1, std::memory_order_acq_rel);
  };
  std::thread w1(writer, 62), w2(writer, 63);
  std::thread compactor([&] {
    while (writers_left.load(std::memory_order_acquire) > 0) {
      store.Compact();
      std::this_thread::yield();
    }
  });

  const Aabb everything(Vec3(-1e18, -1e18, -1e18), Vec3(1e18, 1e18, 1e18));
  uint64_t last_epoch = 0;
  for (int round = 0; round < 40; ++round) {
    const ShardedFlatStore::Snapshot snapshot = store.PinSnapshot();
    EXPECT_GE(snapshot.epoch(), last_epoch) << "epochs must be monotone";
    last_epoch = snapshot.epoch();
    const std::vector<uint64_t> first = snapshot.RangeQuery(everything);
    const std::vector<uint64_t> second = snapshot.RangeQuery(everything);
    ASSERT_EQ(first, second) << "snapshot re-query changed (torn read)";
    ASSERT_TRUE(std::is_sorted(first.begin(), first.end()));
    for (const uint64_t id : first) {
      ASSERT_LT(id, kIdSpace) << "id outside every writer's universe";
    }
  }
  w1.join();
  w2.join();
  compactor.join();
}

// Save persists the overlay window as a WAL; Load replays it, so a reopened
// store answers exactly like the saved one — on both storage backends — and
// keeps the generation.
TEST(SnapshotIsolationTest, SaveLoadReplaysOverlayWal) {
  const std::vector<RTreeEntry> entries = RandomEntries(3000, /*seed=*/71);
  ShardedFlatStore store =
      ShardedFlatStore::Build(entries, {.num_shards = 4, .num_threads = 2});
  store.Compact();  // generation 2, so the sidecar is exercised too
  for (const RTreeEntry& e : RandomEntries(250, /*seed=*/72)) {
    store.Insert(RTreeEntry{e.box, e.id + 5000});
  }
  for (uint64_t id = 0; id < 120; ++id) store.Erase(id * 5);
  ASSERT_GT(store.overlay_op_count(), 0u);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "flat_snapshot_wal_test";
  std::filesystem::remove_all(dir);
  store.Save(dir.string());

  for (const auto backend : {ShardedFlatStore::LoadBackend::kMemory,
                             ShardedFlatStore::LoadBackend::kDisk}) {
    SCOPED_TRACE(backend == ShardedFlatStore::LoadBackend::kDisk ? "disk"
                                                                 : "memory");
    ShardedFlatStore loaded =
        ShardedFlatStore::Load(dir.string(), /*num_threads=*/2, backend);
    EXPECT_EQ(loaded.generation(), store.generation());
    EXPECT_EQ(loaded.overlay_op_count(), store.overlay_op_count());
    for (const Aabb& q : RandomQueries(20, /*seed=*/73)) {
      IoStats loaded_io, original_io;
      EXPECT_EQ(loaded.RangeQuery(q, &loaded_io),
                store.RangeQuery(q, &original_io));
      EXPECT_EQ(loaded_io.OverlayProbes(), original_io.OverlayProbes());
    }
  }

  // Compacting the reopened store folds the replayed WAL and may be saved
  // back over the same directory (newer generation wins).
  ShardedFlatStore reopened = ShardedFlatStore::Load(dir.string());
  reopened.Compact();
  EXPECT_EQ(reopened.overlay_op_count(), 0u);
  reopened.Save(dir.string());
  ShardedFlatStore recompacted = ShardedFlatStore::Load(dir.string());
  EXPECT_EQ(recompacted.generation(), reopened.generation());
  for (const Aabb& q : RandomQueries(10, /*seed=*/74)) {
    EXPECT_EQ(recompacted.RangeQuery(q), store.RangeQuery(q));
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace flat
