#include "rtree/rtree.h"

#include <gtest/gtest.h>

#include "rtree/bulkload.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace flat {
namespace {

using testing::BruteForce;
using testing::RandomEntries;
using testing::RandomQueries;
using testing::Sorted;

class RTreeQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    entries_ = RandomEntries(4000, 31);
    tree_ = BulkloadStr(&file_, entries_);
  }

  PageFile file_;
  std::vector<RTreeEntry> entries_;
  RTree tree_;
};

TEST_F(RTreeQueryTest, EmptyQueryBoxReturnsNothingAndReadsNothing) {
  IoStats stats;
  BufferPool pool(&file_, &stats);
  std::vector<uint64_t> got;
  tree_.RangeQuery(&pool, Aabb(), &got);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(stats.TotalReads(), 0u);
}

TEST_F(RTreeQueryTest, QueryOutsideUniverseReadsOnlyRoot) {
  IoStats stats;
  BufferPool pool(&file_, &stats);
  std::vector<uint64_t> got;
  tree_.RangeQuery(&pool, Aabb(Vec3(500, 500, 500), Vec3(501, 501, 501)),
                   &got);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(stats.TotalReads(), 1u);
}

TEST_F(RTreeQueryTest, PointQueryMatchesBruteForce) {
  IoStats stats;
  BufferPool pool(&file_, &stats);
  Rng rng(77);
  Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  for (int i = 0; i < 50; ++i) {
    const Vec3 p = rng.PointIn(universe);
    const Aabb point_box = Aabb::FromPoint(p);
    std::vector<uint64_t> got;
    tree_.RangeQuery(&pool, point_box, &got);
    EXPECT_EQ(Sorted(got), BruteForce(entries_, point_box));
  }
}

TEST_F(RTreeQueryTest, RangeCountAgreesWithRangeQuery) {
  IoStats stats;
  BufferPool pool(&file_, &stats);
  for (const Aabb& q : RandomQueries(20, 41)) {
    std::vector<uint64_t> got;
    tree_.RangeQuery(&pool, q, &got);
    EXPECT_EQ(tree_.RangeCount(&pool, q), got.size());
  }
}

TEST_F(RTreeQueryTest, FindAnyReturnsIntersectingEntry) {
  IoStats stats;
  BufferPool pool(&file_, &stats);
  for (const Aabb& q : RandomQueries(50, 42)) {
    auto oracle = BruteForce(entries_, q);
    auto found = tree_.FindAny(&pool, q);
    if (oracle.empty()) {
      EXPECT_FALSE(found.has_value());
    } else {
      ASSERT_TRUE(found.has_value());
      EXPECT_TRUE(found->box.Intersects(q));
      EXPECT_TRUE(std::binary_search(oracle.begin(), oracle.end(),
                                     found->id));
    }
  }
}

TEST_F(RTreeQueryTest, FindAnyIsCheapRelativeToRangeQuery) {
  // The seed-phase property (Section V-B.1): finding one element costs on
  // the order of the tree height, not the full overlap-afflicted traversal.
  Aabb big(Vec3(10, 10, 10), Vec3(60, 60, 60));

  IoStats find_stats;
  BufferPool find_pool(&file_, &find_stats);
  auto found = tree_.FindAny(&find_pool, big);
  ASSERT_TRUE(found.has_value());

  IoStats range_stats;
  BufferPool range_pool(&file_, &range_stats);
  std::vector<uint64_t> got;
  tree_.RangeQuery(&range_pool, big, &got);

  EXPECT_LT(find_stats.TotalReads(), range_stats.TotalReads() / 10);
  EXPECT_LE(find_stats.TotalReads(),
            static_cast<uint64_t>(4 * tree_.height()));
}

TEST_F(RTreeQueryTest, ComputeStatsCountsEverything) {
  auto stats = tree_.ComputeStats();
  EXPECT_EQ(stats.leaf_entries, entries_.size());
  EXPECT_EQ(stats.leaf_pages + stats.internal_pages, file_.page_count());
  EXPECT_EQ(stats.height, tree_.height());
}

TEST(RTreeEmptyTest, DefaultHandleBehavesAsEmpty) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0);
  auto stats = tree.ComputeStats();
  EXPECT_EQ(stats.leaf_pages, 0u);
  PageFile file;
  IoStats io;
  BufferPool pool(&file, &io);
  EXPECT_FALSE(tree.FindAny(&pool, Aabb(Vec3(), Vec3(1, 1, 1))).has_value());
}

TEST(RTreeOverlapTest, DenserDataReadsMorePagesPerPointQuery) {
  // The motivation experiment (Figure 2) in miniature: constant volume,
  // growing element count => more overlap => more page reads per point
  // query for bounding-box trees.
  Rng rng(5);
  Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  auto reads_at = [&](size_t count) {
    auto entries = RandomEntries(count, 50, /*max_side=*/4.0);
    PageFile file;
    RTree tree = BulkloadHilbert(&file, entries);
    IoStats stats;
    BufferPool pool(&file, &stats);
    for (int i = 0; i < 40; ++i) {
      pool.Clear();
      std::vector<uint64_t> got;
      tree.RangeQuery(&pool, Aabb::FromPoint(rng.PointIn(universe)), &got);
    }
    return stats.TotalReads();
  };
  EXPECT_LT(reads_at(1000), reads_at(16000));
}

}  // namespace
}  // namespace flat
