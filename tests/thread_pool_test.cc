#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/parallel_sort.h"
#include "rtree/pack.h"
#include "tests/test_util.h"

namespace flat {
namespace {

TEST(ThreadPoolTest, ZeroThreadsDefaultsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.threads(), 1u);
}

TEST(ThreadPoolTest, RunOnAllWorkersVisitsEveryWorkerOnce) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.threads(), 4u);
  std::vector<std::atomic<int>> visits(4);
  pool.RunOnAllWorkers([&](size_t worker) {
    ASSERT_LT(worker, 4u);
    ++visits[worker];
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kCount = 10000;
  std::vector<std::atomic<uint32_t>> touched(kCount);
  pool.ParallelFor(kCount, /*grain=*/0, [&](size_t worker, size_t index) {
    ASSERT_LT(worker, pool.threads());
    ++touched[index];
  });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(touched[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForReusableAcrossDispatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, /*grain=*/7, [&](size_t, size_t index) {
      sum.fetch_add(index, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 100u * 99u / 2);
  }
}

TEST(ThreadPoolTest, FreeParallelForWithNullPoolRunsSeriallyAsWorkerZero) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 5, 0, [&](size_t worker, size_t index) {
    EXPECT_EQ(worker, 0u);
    order.push_back(index);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ParallelForZeroCountIsANoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, 0, [&](size_t, size_t) { FAIL(); });
  ParallelFor(nullptr, 0, 0, [&](size_t, size_t) { FAIL(); });
}

// A worker callback that throws must not reach std::terminate: the first
// exception is rethrown on the dispatching thread after the barrier.
TEST(ThreadPoolTest, WorkerExceptionRethrownOnDispatchingThread) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.RunOnAllWorkers([](size_t worker) {
        if (worker == 2) throw std::runtime_error("worker 2 failed");
      }),
      std::runtime_error);

  try {
    pool.RunOnAllWorkers(
        [](size_t) { throw std::runtime_error("all workers fail"); });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "all workers fail");
  }
}

// Every worker finishes its callback before the rethrow (the barrier is
// intact), and the pool remains fully usable for later dispatches.
TEST(ThreadPoolTest, PoolRemainsUsableAfterWorkerException) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.RunOnAllWorkers([&](size_t worker) {
    ++completed;
    if (worker == 0) throw std::runtime_error("boom");
  }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 3);

  for (int round = 0; round < 10; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, /*grain=*/7, [&](size_t, size_t index) {
      sum.fetch_add(index, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 100u * 99u / 2);
  }
}

// ParallelFor propagates an exception thrown by the per-index callback; the
// iteration space may be partially processed, but nothing crashes and the
// exception surfaces on the caller.
TEST(ThreadPoolTest, ParallelForRethrowsCallbackException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(1000, /*grain=*/16,
                                [&](size_t, size_t index) {
                                  if (index == 500) {
                                    throw std::runtime_error("index 500");
                                  }
                                }),
               std::runtime_error);

  // Serial fallback of the free function propagates too.
  EXPECT_THROW(ParallelFor(nullptr, 10, 0,
                           [&](size_t, size_t index) {
                             if (index == 5) {
                               throw std::runtime_error("index 5");
                             }
                           }),
               std::runtime_error);
}

TEST(ParallelSortTest, MatchesSerialSortOnRandomData) {
  std::mt19937_64 rng(99);
  std::vector<uint64_t> values(200000);
  for (auto& v : values) v = rng() % 1000;  // plenty of duplicates

  std::vector<uint64_t> expected = values;
  std::sort(expected.begin(), expected.end());

  ThreadPool pool(4);
  ParallelSort(&pool, values.begin(), values.end(), std::less<uint64_t>());
  EXPECT_EQ(values, expected);
}

TEST(ParallelSortTest, SmallInputFallsBackToSerial) {
  std::vector<int> values = {5, 3, 1, 4, 2};
  ThreadPool pool(4);
  ParallelSort(&pool, values.begin(), values.end(), std::less<int>());
  EXPECT_EQ(values, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(ParallelSortTest, TotalOrderEntriesIdenticalToSerialAtAnyThreadCount) {
  // The build-determinism property at its root: with the total
  // EntryCenterOrder, ParallelSort must produce exactly std::sort's output.
  const auto base = testing::RandomEntries(50000, 17);
  std::vector<RTreeEntry> serial = base;
  std::sort(serial.begin(), serial.end(), EntryCenterOrder{1});

  for (size_t threads : {2, 3, 5, 8}) {
    std::vector<RTreeEntry> parallel = base;
    ThreadPool pool(threads);
    ParallelSort(&pool, parallel.begin(), parallel.end(), EntryCenterOrder{1});
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(parallel[i].id, serial[i].id)
          << "divergence at " << i << " with " << threads << " threads";
    }
  }
}

TEST(EntryCenterOrderTest, IsAStrictTotalOrderOnDistinctEntries) {
  // Identical centers, distinct ids: the tie-break must order them.
  const Aabb box(Vec3(1, 1, 1), Vec3(2, 2, 2));
  const RTreeEntry a{box, 1};
  const RTreeEntry b{box, 2};
  EntryCenterOrder order{0};
  EXPECT_TRUE(order(a, b));
  EXPECT_FALSE(order(b, a));
  EXPECT_FALSE(order(a, a));

  // Same center, different extents: corners break the tie before ids.
  const RTreeEntry wide{Aabb(Vec3(0.5, 1, 1), Vec3(2.5, 2, 2)), 9};
  EXPECT_TRUE(order(wide, a));
  EXPECT_FALSE(order(a, wide));
}

}  // namespace
}  // namespace flat
