#include "core/partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tests/test_util.h"

namespace flat {
namespace {

using testing::RandomEntries;

Aabb UniverseOf(const std::vector<RTreeEntry>& entries) {
  Aabb u;
  for (const auto& e : entries) u.ExpandToInclude(e.box);
  return u;
}

class PartitionerTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PartitionerTest, PartitionsCoverAllElementsExactlyOnce) {
  auto entries = RandomEntries(GetParam(), 81);
  const Aabb universe = UniverseOf(entries);
  auto partitions = StrPartition(&entries, /*page_capacity=*/73, universe);

  std::vector<bool> covered(entries.size(), false);
  for (const auto& p : partitions) {
    EXPECT_GT(p.count, 0u);
    EXPECT_LE(p.count, 73u);
    for (uint32_t i = 0; i < p.count; ++i) {
      ASSERT_LT(p.first + i, entries.size());
      ASSERT_FALSE(covered[p.first + i]) << "element assigned twice";
      covered[p.first + i] = true;
    }
  }
  EXPECT_TRUE(std::all_of(covered.begin(), covered.end(),
                          [](bool b) { return b; }));
}

TEST_P(PartitionerTest, TilesLeaveNoEmptySpace) {
  // Property 1 (Section V-B): the union of all partitions covers the entire
  // space. We verify by sampling: every point of the universe lies in at
  // least one tile.
  auto entries = RandomEntries(GetParam(), 82);
  const Aabb universe = UniverseOf(entries);
  auto partitions = StrPartition(&entries, 73, universe);

  Rng rng(83);
  for (int trial = 0; trial < 2000; ++trial) {
    const Vec3 p = rng.PointIn(universe);
    bool inside_any = false;
    for (const auto& partition : partitions) {
      if (partition.tile.Contains(p)) {
        inside_any = true;
        break;
      }
    }
    EXPECT_TRUE(inside_any) << "uncovered point " << p;
  }
}

TEST_P(PartitionerTest, PartitionMbrEnclosesPageMbr) {
  // Property 2 (Section V-B): each partition MBR encloses the page MBR.
  auto entries = RandomEntries(GetParam(), 84);
  const Aabb universe = UniverseOf(entries);
  auto partitions = StrPartition(&entries, 73, universe);
  for (const auto& p : partitions) {
    EXPECT_TRUE(p.partition_mbr.Contains(p.page_mbr));
    EXPECT_TRUE(p.partition_mbr.Contains(p.tile));
  }
}

TEST_P(PartitionerTest, ElementCentersLieInTheirTile) {
  auto entries = RandomEntries(GetParam(), 85);
  const Aabb universe = UniverseOf(entries);
  auto partitions = StrPartition(&entries, 73, universe);
  for (const auto& p : partitions) {
    for (uint32_t i = 0; i < p.count; ++i) {
      EXPECT_TRUE(p.tile.Contains(entries[p.first + i].box.Center()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PartitionerTest,
                         ::testing::Values(1, 5, 73, 74, 500, 5000, 20000));

TEST(PartitionerEdgeTest, EmptyInput) {
  std::vector<RTreeEntry> entries;
  auto partitions = StrPartition(&entries, 73, Aabb());
  EXPECT_TRUE(partitions.empty());
}

TEST(PartitionerEdgeTest, AllElementsIdentical) {
  std::vector<RTreeEntry> entries;
  for (uint64_t i = 0; i < 300; ++i) {
    entries.push_back(RTreeEntry{Aabb(Vec3(1, 1, 1), Vec3(2, 2, 2)), i});
  }
  const Aabb universe(Vec3(1, 1, 1), Vec3(2, 2, 2));
  auto partitions = StrPartition(&entries, 73, universe);
  size_t total = 0;
  for (const auto& p : partitions) total += p.count;
  EXPECT_EQ(total, entries.size());
}

TEST(NeighborTest, TwoTouchingPartitionsAreNeighbors) {
  // 2 * capacity elements in two clearly separated clusters: the two tiles
  // still share a boundary plane (no empty space allowed), so they must be
  // mutual neighbors.
  std::vector<RTreeEntry> entries;
  Rng rng(86);
  for (uint64_t i = 0; i < 8; ++i) {
    const Vec3 c(rng.Uniform(0, 10), rng.Uniform(0, 10), rng.Uniform(0, 10));
    entries.push_back(
        RTreeEntry{Aabb::FromCenterHalfExtents(c, Vec3(0.1, 0.1, 0.1)), i});
  }
  for (uint64_t i = 8; i < 16; ++i) {
    const Vec3 c(rng.Uniform(90, 100), rng.Uniform(0, 10),
                 rng.Uniform(0, 10));
    entries.push_back(
        RTreeEntry{Aabb::FromCenterHalfExtents(c, Vec3(0.1, 0.1, 0.1)), i});
  }
  Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  auto partitions = StrPartition(&entries, 8, universe);
  ASSERT_EQ(partitions.size(), 2u);
  ComputeNeighbors(&partitions);
  ASSERT_EQ(partitions[0].neighbors.size(), 1u);
  ASSERT_EQ(partitions[1].neighbors.size(), 1u);
  EXPECT_EQ(partitions[0].neighbors[0], 1u);
  EXPECT_EQ(partitions[1].neighbors[0], 0u);
}

TEST(NeighborTest, RelationIsSymmetricAndIrreflexive) {
  auto entries = RandomEntries(5000, 87);
  const Aabb universe = UniverseOf(entries);
  auto partitions = StrPartition(&entries, 73, universe);
  ComputeNeighbors(&partitions);

  for (size_t i = 0; i < partitions.size(); ++i) {
    const auto& nbrs = partitions[i].neighbors;
    EXPECT_FALSE(std::binary_search(nbrs.begin(), nbrs.end(),
                                    static_cast<uint32_t>(i)))
        << "partition is its own neighbor";
    for (uint32_t j : nbrs) {
      const auto& back = partitions[j].neighbors;
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(),
                                     static_cast<uint32_t>(i)))
          << "asymmetric neighbor relation " << i << " -> " << j;
    }
  }
  EXPECT_EQ(TotalNeighborPointers(partitions) % 2, 0u);
}

TEST(NeighborTest, TileAdjacencyGraphIsConnected) {
  // Because tiles cover space with no gaps, the partition adjacency graph of
  // any data set must be connected — the property that makes the crawl reach
  // every page (even across concave "holes" in the data).
  auto entries = RandomEntries(3000, 88);
  const Aabb universe = UniverseOf(entries);
  auto partitions = StrPartition(&entries, 73, universe);
  ComputeNeighbors(&partitions);

  std::vector<bool> visited(partitions.size(), false);
  std::vector<uint32_t> stack = {0};
  visited[0] = true;
  size_t reached = 1;
  while (!stack.empty()) {
    uint32_t i = stack.back();
    stack.pop_back();
    for (uint32_t j : partitions[i].neighbors) {
      if (!visited[j]) {
        visited[j] = true;
        ++reached;
        stack.push_back(j);
      }
    }
  }
  EXPECT_EQ(reached, partitions.size());
}

TEST(NeighborTest, InflatingPartitionsIncreasesPointerCount) {
  // Figure 21's mechanism: larger partitions => more intersections.
  auto entries = RandomEntries(5000, 89);
  const Aabb universe = UniverseOf(entries);
  auto partitions = StrPartition(&entries, 73, universe);
  ComputeNeighbors(&partitions);
  const uint64_t baseline = TotalNeighborPointers(partitions);

  auto inflated = partitions;
  for (auto& p : inflated) p.partition_mbr = p.partition_mbr.Inflated(3.0);
  ComputeNeighbors(&inflated);
  EXPECT_GT(TotalNeighborPointers(inflated), baseline);
}

}  // namespace
}  // namespace flat
