#include "core/metadata.h"

#include <gtest/gtest.h>

#include "storage/page_file.h"

namespace flat {
namespace {

MetadataRecordDraft MakeDraft(double base, PageId object_page,
                              std::vector<RecordRef> neighbors) {
  MetadataRecordDraft draft;
  draft.page_mbr = Aabb(Vec3(base, base, base),
                        Vec3(base + 1, base + 1, base + 1));
  draft.partition_mbr = Aabb(Vec3(base - 1, base - 1, base - 1),
                             Vec3(base + 2, base + 2, base + 2));
  draft.object_page = object_page;
  draft.neighbors = std::move(neighbors);
  return draft;
}

TEST(RecordRefTest, KeyIsInjectiveOverPageAndSlot) {
  RecordRef a{10, 1};
  RecordRef b{10, 2};
  RecordRef c{11, 1};
  EXPECT_NE(a.Key(), b.Key());
  EXPECT_NE(a.Key(), c.Key());
  EXPECT_NE(b.Key(), c.Key());
  EXPECT_EQ(a.Key(), (RecordRef{10, 1}).Key());
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(RecordRef{}.valid());
}

TEST(RecordFootprintTest, MatchesLayoutConstants) {
  EXPECT_EQ(kRecordFixedSize, 56u);
  EXPECT_EQ(RecordFootprint(0), 2u + 56u);
  EXPECT_EQ(RecordFootprint(10), 2u + 56u + 40u);
}

TEST(NeighborRefPackingTest, RoundTrips) {
  for (RecordRef ref : {RecordRef{0, 0}, RecordRef{1, 4095},
                        RecordRef{(1u << 20) - 1, 7}, RecordRef{123456, 99}}) {
    EXPECT_EQ(UnpackNeighborRef(PackNeighborRef(ref)), ref);
  }
}

TEST(PackedAabbTest, RoundsOutward) {
  // Float compression must never shrink a box: every double point inside the
  // original must remain inside the unpacked version.
  Aabb box(Vec3(0.1234567890123, -7.000000001, 1e-12),
           Vec3(0.1234567890124, -6.999999999, 2e-12));
  Aabb unpacked = PackedAabb::FromAabb(box).ToAabb();
  EXPECT_TRUE(unpacked.Contains(box));
}

TEST(SeedLeafTest, WriteReadRoundTripSingleRecord) {
  PageFile file;
  PageId page = file.Allocate(PageCategory::kSeedLeaf);
  std::vector<MetadataRecordDraft> drafts = {
      MakeDraft(5.0, 99, {{3, 4}, {7, 8}})};
  WriteSeedLeaf(file.MutableData(page), file.page_size(), drafts);

  SeedLeafView view(file.Data(page));
  ASSERT_EQ(view.count(), 1u);
  MetadataRecordView record = view.RecordAt(0);
  // MBRs are float-compressed with outward rounding: the stored box must
  // contain the original and be only marginally larger.
  EXPECT_TRUE(record.page_mbr().Contains(drafts[0].page_mbr));
  EXPECT_NEAR(record.page_mbr().Volume(), drafts[0].page_mbr.Volume(),
              1e-4 * drafts[0].page_mbr.Volume() + 1e-9);
  EXPECT_TRUE(record.partition_mbr().Contains(drafts[0].partition_mbr));
  EXPECT_EQ(record.object_page(), 99u);
  ASSERT_EQ(record.neighbor_count(), 2u);
  EXPECT_EQ(record.NeighborAt(0), (RecordRef{3, 4}));
  EXPECT_EQ(record.NeighborAt(1), (RecordRef{7, 8}));
}

TEST(SeedLeafTest, ManyRecordsWithVaryingNeighborCounts) {
  PageFile file;
  PageId page = file.Allocate(PageCategory::kSeedLeaf);
  std::vector<MetadataRecordDraft> drafts;
  size_t used = kSeedLeafHeaderSize;
  for (uint32_t i = 0; used + RecordFootprint(i) <= file.page_size(); ++i) {
    std::vector<RecordRef> neighbors;
    for (uint32_t n = 0; n < i; ++n) {
      neighbors.push_back(RecordRef{n, static_cast<uint16_t>(i)});
    }
    used += RecordFootprint(i);
    drafts.push_back(MakeDraft(i, i * 10, std::move(neighbors)));
  }
  ASSERT_GT(drafts.size(), 3u);
  WriteSeedLeaf(file.MutableData(page), file.page_size(), drafts);

  SeedLeafView view(file.Data(page));
  ASSERT_EQ(view.count(), drafts.size());
  for (uint16_t slot = 0; slot < view.count(); ++slot) {
    MetadataRecordView record = view.RecordAt(slot);
    EXPECT_EQ(record.object_page(), drafts[slot].object_page);
    ASSERT_EQ(record.neighbor_count(), drafts[slot].neighbors.size());
    for (uint32_t n = 0; n < record.neighbor_count(); ++n) {
      EXPECT_EQ(record.NeighborAt(n), drafts[slot].neighbors[n]);
    }
  }
}

TEST(SeedLeafTest, ZeroNeighborRecord) {
  PageFile file;
  PageId page = file.Allocate(PageCategory::kSeedLeaf);
  std::vector<MetadataRecordDraft> drafts = {MakeDraft(1.0, 5, {})};
  WriteSeedLeaf(file.MutableData(page), file.page_size(), drafts);
  SeedLeafView view(file.Data(page));
  EXPECT_EQ(view.RecordAt(0).neighbor_count(), 0u);
}

}  // namespace
}  // namespace flat
