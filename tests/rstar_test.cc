#include "rtree/rstar_tree.h"

#include <gtest/gtest.h>

#include "rtree/bulkload.h"
#include "rtree/node.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace flat {
namespace {

using testing::BruteForce;
using testing::RandomEntries;
using testing::RandomQueries;
using testing::Sorted;

TEST(RStarTest, SingleInsertQueryable) {
  PageFile file;
  RStarTree tree(&file);
  tree.Insert(RTreeEntry{Aabb(Vec3(1, 1, 1), Vec3(2, 2, 2)), 7});
  EXPECT_EQ(tree.size(), 1u);
  IoStats stats;
  BufferPool pool(&file, &stats);
  std::vector<uint64_t> got;
  tree.tree().RangeQuery(&pool, Aabb(Vec3(0, 0, 0), Vec3(3, 3, 3)), &got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 7u);
}

TEST(RStarTest, MatchesBruteForceSmall) {
  const auto entries = RandomEntries(300, 61);
  PageFile file(512);  // small pages force plenty of splits
  RStarTree tree(&file);
  for (const auto& e : entries) tree.Insert(e);
  EXPECT_EQ(tree.size(), entries.size());

  IoStats stats;
  BufferPool pool(&file, &stats);
  for (const Aabb& q : RandomQueries(40, 62)) {
    std::vector<uint64_t> got;
    tree.tree().RangeQuery(&pool, q, &got);
    EXPECT_EQ(Sorted(got), BruteForce(entries, q));
  }
}

TEST(RStarTest, MatchesBruteForceLarge) {
  const auto entries = RandomEntries(5000, 63);
  PageFile file;
  RStarTree tree(&file);
  for (const auto& e : entries) tree.Insert(e);

  IoStats stats;
  BufferPool pool(&file, &stats);
  for (const Aabb& q : RandomQueries(30, 64)) {
    std::vector<uint64_t> got;
    tree.tree().RangeQuery(&pool, q, &got);
    EXPECT_EQ(Sorted(got), BruteForce(entries, q));
  }
}

TEST(RStarTest, AllEntriesPresentAfterManySplits) {
  const auto entries = RandomEntries(2000, 65);
  PageFile file(512);
  RStarTree tree(&file);
  for (const auto& e : entries) tree.Insert(e);
  auto stats = tree.tree().ComputeStats();
  EXPECT_EQ(stats.leaf_entries, entries.size());
  EXPECT_GE(tree.tree().height(), 3);
}

TEST(RStarTest, ParentBoxesEncloseChildren) {
  const auto entries = RandomEntries(1500, 66);
  PageFile file(512);
  RStarTree tree(&file);
  for (const auto& e : entries) tree.Insert(e);

  // Walk the tree: every internal slot's box must equal the union of the
  // child node's entry boxes.
  RTree handle = tree.tree();
  std::vector<PageId> stack = {handle.root()};
  while (!stack.empty()) {
    PageId page = stack.back();
    stack.pop_back();
    NodeView node(file.Data(page));
    if (node.is_leaf()) continue;
    for (uint16_t i = 0; i < node.count(); ++i) {
      const PageId child = static_cast<PageId>(node.IdAt(i));
      NodeView child_node(file.Data(child));
      EXPECT_TRUE(node.BoxAt(i).Contains(child_node.Bounds()))
          << "slot box does not cover child node " << child;
      stack.push_back(child);
    }
  }
}

TEST(RStarTest, DuplicateBoxesSupported) {
  PageFile file(512);
  RStarTree tree(&file);
  const Aabb box(Vec3(3, 3, 3), Vec3(4, 4, 4));
  for (uint64_t i = 0; i < 200; ++i) {
    tree.Insert(RTreeEntry{box, i});
  }
  IoStats stats;
  BufferPool pool(&file, &stats);
  std::vector<uint64_t> got;
  tree.tree().RangeQuery(&pool, box, &got);
  EXPECT_EQ(got.size(), 200u);
}

TEST(RStarTest, BulkloadedTreesHaveBetterUtilization) {
  // The reason the paper compares only against bulkloaded trees.
  const auto entries = RandomEntries(4000, 67);
  PageFile rstar_file;
  RStarTree rstar(&rstar_file);
  for (const auto& e : entries) rstar.Insert(e);
  PageFile str_file;
  RTree str = BulkloadStr(&str_file, entries);

  const double rstar_util =
      static_cast<double>(entries.size()) /
      (rstar.tree().ComputeStats().leaf_pages *
       NodeCapacity(rstar_file.page_size()));
  const double str_util =
      static_cast<double>(entries.size()) /
      (str.ComputeStats().leaf_pages * NodeCapacity(str_file.page_size()));
  EXPECT_GT(str_util, 0.99);
  EXPECT_LT(rstar_util, 0.95);
}

}  // namespace
}  // namespace flat
