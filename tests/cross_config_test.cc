// Cross-configuration correctness sweep: every bulkload strategy (and FLAT)
// must match the oracle at every page size, on data sets chosen to stress
// different code paths (uniform boxes, fibers, clusters). This is the broad
// safety net behind the page-size ablation bench.
#include <gtest/gtest.h>

#include <tuple>

#include "benchutil/contender.h"
#include "data/nbody_generator.h"
#include "data/neuron_generator.h"
#include "data/query_generator.h"
#include "tests/test_util.h"

namespace flat {
namespace {

Dataset MakeData(const std::string& which) {
  if (which == "fibers") {
    NeuronParams p;
    p.total_elements = 6000;
    p.seed = 601;
    return GenerateNeurons(p);
  }
  if (which == "clusters") {
    NBodyParams p;
    p.count = 6000;
    p.clusters = 12;
    p.seed = 602;
    return GenerateNBody(p);
  }
  Dataset d;
  d.name = "uniform";
  d.elements = testing::RandomEntries(6000, 603);
  d.bounds = Aabb(Vec3(0, 0, 0), Vec3(100, 100, 100));
  return d;
}

using Param = std::tuple<IndexKind, uint32_t, std::string>;

class CrossConfigTest : public ::testing::TestWithParam<Param> {};

TEST_P(CrossConfigTest, OracleAgreement) {
  const auto [kind, page_size, which] = GetParam();
  Dataset dataset = MakeData(which);
  Contender contender = BuildContender(kind, dataset.elements, page_size);

  IoStats stats;
  BufferPool pool(contender.file.get(), &stats);

  RangeWorkloadParams wp;
  wp.count = 8;
  wp.volume_fraction = 5e-4;
  wp.seed = 604;
  for (const Aabb& q : GenerateRangeWorkload(dataset.bounds, wp)) {
    std::vector<uint64_t> got;
    contender.RangeQuery(&pool, q, &got);
    EXPECT_EQ(testing::Sorted(got), dataset.BruteForceRange(q))
        << IndexKindName(kind) << " page=" << page_size << " on " << which;
  }
  // A full-universe query must return everything exactly once.
  std::vector<uint64_t> all;
  contender.RangeQuery(&pool, dataset.bounds.Inflated(1.0), &all);
  EXPECT_EQ(all.size(), dataset.size());
  auto sorted = testing::Sorted(all);
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesTimesPageSizesTimesData, CrossConfigTest,
    ::testing::Combine(
        ::testing::Values(IndexKind::kStr, IndexKind::kHilbert,
                          IndexKind::kPrTree, IndexKind::kFlat),
        ::testing::Values(512u, 1024u, 4096u, 16384u),
        ::testing::Values(std::string("uniform"), std::string("fibers"),
                          std::string("clusters"))),
    [](const auto& info) {
      std::string name = std::string(IndexKindName(std::get<0>(info.param))) +
                         "_p" + std::to_string(std::get<1>(info.param)) +
                         "_" + std::get<2>(info.param);
      std::erase_if(name, [](char c) { return !std::isalnum(c) && c != '_'; });
      return name;
    });

}  // namespace
}  // namespace flat
