// End-to-end tests: every index variant against every generator, validated
// against the brute-force oracle, plus the paper's headline qualitative
// claims verified at test scale.
#include <gtest/gtest.h>

#include "benchutil/contender.h"
#include "core/flat_index.h"
#include "data/mesh_generator.h"
#include "data/nbody_generator.h"
#include "data/neuron_generator.h"
#include "data/query_generator.h"
#include "data/uniform_generator.h"
#include "tests/test_util.h"

namespace flat {
namespace {

Dataset MakeDataset(const std::string& which) {
  if (which == "neurons") {
    NeuronParams p;
    p.total_elements = 15000;
    p.seed = 201;
    return GenerateNeurons(p);
  }
  if (which == "mesh") {
    MeshParams p;
    p.kind = MeshKind::kFoldedSheet;
    p.target_triangles = 15000;
    p.seed = 202;
    return GenerateMesh(p);
  }
  if (which == "nbody") {
    NBodyParams p;
    p.count = 15000;
    p.seed = 203;
    return GenerateNBody(p);
  }
  UniformBoxParams p;
  p.count = 15000;
  p.seed = 204;
  return GenerateUniformBoxes(p);
}

class IndexOnDatasetTest
    : public ::testing::TestWithParam<std::tuple<IndexKind, std::string>> {};

TEST_P(IndexOnDatasetTest, MatchesOracle) {
  const auto [kind, which] = GetParam();
  Dataset dataset = MakeDataset(which);
  Contender contender = BuildContender(kind, dataset.elements);

  RangeWorkloadParams wp;
  wp.count = 12;
  wp.volume_fraction = 2e-5;
  wp.seed = 205;
  IoStats stats;
  BufferPool pool(contender.file.get(), &stats);
  for (const Aabb& q : GenerateRangeWorkload(dataset.bounds, wp)) {
    std::vector<uint64_t> got;
    contender.RangeQuery(&pool, q, &got);
    EXPECT_EQ(testing::Sorted(got), dataset.BruteForceRange(q))
        << IndexKindName(kind) << " on " << which;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexesAllDatasets, IndexOnDatasetTest,
    ::testing::Combine(::testing::Values(IndexKind::kHilbert, IndexKind::kStr,
                                         IndexKind::kPrTree, IndexKind::kTgs,
                                         IndexKind::kFlat),
                       ::testing::Values(std::string("neurons"),
                                         std::string("mesh"),
                                         std::string("nbody"),
                                         std::string("uniform"))),
    [](const auto& info) {
      std::string name = std::string(IndexKindName(std::get<0>(info.param))) +
                         "_" + std::get<1>(info.param);
      std::erase_if(name, [](char c) { return !std::isalnum(c) && c != '_'; });
      return name;
    });

// ---------------------------------------------------------------------------
// Headline claims at test scale.
// ---------------------------------------------------------------------------

TEST(HeadlineClaimsTest, FlatReadsFewerPagesThanStrAndPrOnDenseSnWorkload) {
  // SN-style benchmark on a dense microcircuit: FLAT must beat the paper's
  // best R-Tree (the PR-Tree, Figure 12) and the STR R-Tree on page reads.
  // Deviation note (see EXPERIMENTS.md): our modern Hilbert-packed
  // bulkloader is stronger than the paper's 2012 Hilbert baseline and is not
  // required to lose here.
  NeuronParams np;
  np.total_elements = 150000;
  np.seed = 206;
  Dataset dataset = GenerateNeurons(np);

  RangeWorkloadParams wp;
  wp.count = 40;
  wp.volume_fraction = 5e-6;
  wp.seed = 207;
  auto queries = GenerateRangeWorkload(dataset.bounds, wp);

  DiskModel disk;
  uint64_t flat_reads = 0;
  uint64_t str_reads = 0;
  uint64_t pr_reads = 0;
  for (IndexKind kind : kPaperLineup) {
    Contender contender = BuildContender(kind, dataset.elements);
    WorkloadResult r = RunWorkload(contender, queries, disk);
    if (kind == IndexKind::kFlat) flat_reads = r.io.TotalReads();
    if (kind == IndexKind::kStr) str_reads = r.io.TotalReads();
    if (kind == IndexKind::kPrTree) pr_reads = r.io.TotalReads();
  }
  EXPECT_LT(flat_reads, str_reads);
  EXPECT_LT(flat_reads, pr_reads);
}

TEST(HeadlineClaimsTest, FlatIndexIsLargerButSameOrderAsPrTree) {
  // Figure 11 / 22: FLAT trades a modestly larger index (metadata) for query
  // speed.
  auto entries = testing::RandomEntries(30000, 208);
  Contender flat = BuildContender(IndexKind::kFlat, entries);
  Contender pr = BuildContender(IndexKind::kPrTree, entries);
  EXPECT_GT(flat.size_bytes(), pr.size_bytes());
  EXPECT_LT(flat.size_bytes(), 2 * pr.size_bytes());
}

TEST(HeadlineClaimsTest, SeedPhaseConstantWhileCrawlScalesWithResult) {
  // Figure 14 (left): seed-tree reads stay flat as density grows; object +
  // metadata reads grow with the result set.
  DiskModel disk;
  uint64_t seed_reads[2];
  uint64_t object_reads[2];
  int i = 0;
  for (size_t count : {20000u, 80000u}) {
    NeuronParams np;
    np.total_elements = count;
    np.seed = 209;
    Dataset dataset = GenerateNeurons(np);
    Contender flat = BuildContender(IndexKind::kFlat, dataset.elements);
    RangeWorkloadParams wp;
    wp.count = 30;
    // Crawl-dominated queries: large enough that every query returns
    // hundreds of elements, so object reads track the result set rather
    // than seed-phase probing.
    wp.volume_fraction = 2e-3;
    wp.seed = 210;
    auto queries = GenerateRangeWorkload(dataset.bounds, wp);
    WorkloadResult r = RunWorkload(flat, queries, disk);
    seed_reads[i] = r.io.ReadsIn(PageCategory::kSeedInternal);
    object_reads[i] = r.io.ReadsIn(PageCategory::kObject);
    ++i;
  }
  EXPECT_GT(object_reads[1], 2 * object_reads[0])
      << "object reads must track the growing result set";
  EXPECT_LT(seed_reads[1], 3 * seed_reads[0] + 60)
      << "seed reads must stay roughly constant";
}

TEST(HeadlineClaimsTest, RTreeNonLeafOverheadExceedsFlatMetadataOverhead) {
  // Figure 18: FLAT's non-data I/O (seed + metadata) is below the R-Tree's
  // non-leaf I/O on LSS-style queries.
  NeuronParams np;
  np.total_elements = 60000;
  np.seed = 211;
  Dataset dataset = GenerateNeurons(np);
  RangeWorkloadParams wp;
  wp.count = 20;
  wp.volume_fraction = 5e-6;
  wp.seed = 212;
  auto queries = GenerateRangeWorkload(dataset.bounds, wp);
  DiskModel disk;

  Contender flat = BuildContender(IndexKind::kFlat, dataset.elements);
  Contender pr = BuildContender(IndexKind::kPrTree, dataset.elements);
  WorkloadResult fr = RunWorkload(flat, queries, disk);
  WorkloadResult pri = RunWorkload(pr, queries, disk);

  const uint64_t flat_overhead = fr.io.ReadsIn(PageCategory::kSeedInternal) +
                                 fr.io.ReadsIn(PageCategory::kSeedLeaf);
  const uint64_t pr_overhead = pri.io.ReadsIn(PageCategory::kRTreeInternal);
  EXPECT_LT(flat_overhead, pr_overhead);
}

TEST(HeadlineClaimsTest, AllContendersReturnIdenticalResults) {
  // Cross-validation: every index returns byte-identical result sets on a
  // mixed workload (they'd better — they index the same data).
  Dataset dataset = MakeDataset("neurons");
  RangeWorkloadParams wp;
  wp.count = 15;
  wp.volume_fraction = 1e-5;
  wp.seed = 213;
  auto queries = GenerateRangeWorkload(dataset.bounds, wp);

  std::vector<Contender> contenders;
  for (IndexKind kind : kPaperLineup) {
    contenders.push_back(BuildContender(kind, dataset.elements));
  }
  for (const Aabb& q : queries) {
    std::vector<uint64_t> reference;
    bool first = true;
    for (const Contender& contender : contenders) {
      IoStats stats;
      BufferPool pool(contender.file.get(), &stats);
      std::vector<uint64_t> got;
      contender.RangeQuery(&pool, q, &got);
      auto sorted = testing::Sorted(got);
      if (first) {
        reference = sorted;
        first = false;
      } else {
        EXPECT_EQ(sorted, reference) << IndexKindName(contender.kind);
      }
    }
  }
}

}  // namespace
}  // namespace flat
