#include <gtest/gtest.h>

#include <tuple>

#include "core/flat_index.h"
#include "data/neuron_generator.h"
#include "data/query_generator.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace flat {
namespace {

using testing::BruteForce;
using testing::RandomEntries;
using testing::Sorted;

// ---------------------------------------------------------------------------
// Seed independence: Algorithm 2's result must not depend on which start
// record the seed phase picks ("the choice of the start page ... affects
// neither the accuracy nor efficiency of the search").
// ---------------------------------------------------------------------------

TEST(FlatSeedIndependenceTest, EveryCandidateStartYieldsSameResult) {
  const auto entries = RandomEntries(4000, 111);
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  IoStats stats;
  BufferPool pool(&file, &stats);

  for (const Aabb& q : testing::RandomQueries(10, 112)) {
    const auto oracle = BruteForce(entries, q);
    // Every record whose page MBR intersects the query is a legal crawl
    // start: its partition MBR (which encloses the page MBR) intersects the
    // query too, so its neighbors get expanded and — because the tiles cover
    // space — the BFS reaches the whole query region. The result must be
    // identical for all of them.
    for (const RecordRef& start : index.FindAllCandidateRecords(q)) {
      std::vector<uint64_t> got;
      index.Crawl(&pool, q, start, &got);
      EXPECT_EQ(Sorted(got), oracle)
          << "crawl from a different seed produced a different result";
    }
  }
}

// ---------------------------------------------------------------------------
// Parameterized sweeps: density x element size x query volume. Each
// combination checks FLAT + brute force equivalence end to end.
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<size_t, double, double>;

class FlatSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FlatSweepTest, FlatMatchesBruteForce) {
  const auto [count, max_side, query_frac] = GetParam();
  const auto entries = RandomEntries(count, 113 + count, max_side);
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  IoStats stats;
  BufferPool pool(&file, &stats);

  Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  RangeWorkloadParams params;
  params.count = 15;
  params.volume_fraction = query_frac;
  params.seed = 114;
  for (const Aabb& q : GenerateRangeWorkload(universe, params)) {
    std::vector<uint64_t> got;
    index.RangeQuery(&pool, q, &got);
    EXPECT_EQ(Sorted(got), BruteForce(entries, q));
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensityShapeVolume, FlatSweepTest,
    ::testing::Combine(
        ::testing::Values<size_t>(200, 2000, 10000),    // density
        ::testing::Values(0.5, 3.0, 15.0),              // element size
        ::testing::Values(1e-6, 1e-4, 1e-2)));          // query volume frac

// ---------------------------------------------------------------------------
// Realistic data: the synthetic microcircuit.
// ---------------------------------------------------------------------------

TEST(FlatNeuronTest, CorrectOnMicrocircuit) {
  NeuronParams params;
  params.total_elements = 20000;
  params.seed = 115;
  Dataset dataset = GenerateNeurons(params);

  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, dataset.elements);
  IoStats stats;
  BufferPool pool(&file, &stats);

  RangeWorkloadParams wp;
  wp.count = 25;
  wp.volume_fraction = 1e-5;
  wp.seed = 116;
  for (const Aabb& q : GenerateRangeWorkload(dataset.bounds, wp)) {
    std::vector<uint64_t> got;
    index.RangeQuery(&pool, q, &got);
    EXPECT_EQ(Sorted(got), dataset.BruteForceRange(q));
  }
}

// ---------------------------------------------------------------------------
// Page-size sweep: FLAT must stay correct for any page size down to tiny
// pages (which stress record packing and multi-level seed trees).
// ---------------------------------------------------------------------------

class FlatPageSizeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FlatPageSizeTest, CorrectAtAnyPageSize) {
  const uint32_t page_size = GetParam();
  const auto entries = RandomEntries(2500, 117, /*max_side=*/1.0);
  PageFile file(page_size);
  FlatIndex index = FlatIndex::Build(&file, entries);
  IoStats stats;
  BufferPool pool(&file, &stats);
  for (const Aabb& q : testing::RandomQueries(25, 118)) {
    std::vector<uint64_t> got;
    index.RangeQuery(&pool, q, &got);
    EXPECT_EQ(Sorted(got), BruteForce(entries, q));
  }
}

INSTANTIATE_TEST_SUITE_P(PageSizes, FlatPageSizeTest,
                         ::testing::Values(1024u, 2048u, 4096u, 8192u,
                                           16384u));

// ---------------------------------------------------------------------------
// Crawl visits each page at most once: total object reads in a cold query
// can never exceed the number of object pages.
// ---------------------------------------------------------------------------

TEST(FlatCrawlTest, EachObjectPageReadAtMostOnce) {
  const auto entries = RandomEntries(8000, 119);
  PageFile file;
  FlatIndex::BuildStats build_stats;
  FlatIndex index = FlatIndex::Build(&file, entries, &build_stats);
  IoStats stats;
  BufferPool pool(&file, &stats);
  std::vector<uint64_t> got;
  index.RangeQuery(&pool, Aabb(Vec3(-1e9, -1e9, -1e9), Vec3(1e9, 1e9, 1e9)),
                   &got);
  EXPECT_LE(stats.ReadsIn(PageCategory::kObject), build_stats.object_pages);
  EXPECT_LE(stats.ReadsIn(PageCategory::kSeedLeaf),
            build_stats.seed_leaf_pages);
}

}  // namespace
}  // namespace flat
