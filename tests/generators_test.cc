#include <gtest/gtest.h>

#include <cmath>

#include "data/mesh_generator.h"
#include "data/nbody_generator.h"
#include "data/neuron_generator.h"
#include "data/uniform_generator.h"

namespace flat {
namespace {

TEST(NeuronGeneratorTest, ProducesExactCountInsideVolume) {
  NeuronParams params;
  params.total_elements = 5000;
  Dataset d = GenerateNeurons(params);
  EXPECT_EQ(d.size(), 5000u);
  // Cylinder caps can poke slightly past the wall after reflection, by at
  // most a segment length + radius; centers stay essentially inside.
  const Aabb roomy = d.bounds.Inflated(2.0 * params.segment_length_um);
  for (const auto& e : d.elements) {
    EXPECT_TRUE(roomy.Contains(e.box)) << e.box;
  }
}

TEST(NeuronGeneratorTest, DeterministicForSameSeed) {
  NeuronParams params;
  params.total_elements = 1000;
  params.seed = 5;
  Dataset a = GenerateNeurons(params);
  Dataset b = GenerateNeurons(params);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.elements[i].box, b.elements[i].box);
    EXPECT_EQ(a.elements[i].id, b.elements[i].id);
  }
  params.seed = 6;
  Dataset c = GenerateNeurons(params);
  bool any_different = false;
  for (size_t i = 0; i < a.size() && !any_different; ++i) {
    any_different = a.elements[i].box != c.elements[i].box;
  }
  EXPECT_TRUE(any_different);
}

TEST(NeuronGeneratorTest, ElementsAreElongatedFibers) {
  NeuronParams params;
  params.total_elements = 2000;
  Dataset d = GenerateNeurons(params);
  // Cylinders should be longer than thick on average (fiber-like).
  double mean_max_over_min = 0.0;
  for (const auto& e : d.elements) {
    Vec3 ext = e.box.Extents();
    double mx = std::max({ext.x, ext.y, ext.z});
    double mn = std::min({ext.x, ext.y, ext.z});
    mean_max_over_min += mx / std::max(mn, 1e-9);
  }
  mean_max_over_min /= d.size();
  EXPECT_GT(mean_max_over_min, 1.3);
}

TEST(NeuronGeneratorTest, DensityGrowsWithElementCountAtFixedVolume) {
  NeuronParams params;
  params.total_elements = 1000;
  Dataset sparse = GenerateNeurons(params);
  params.total_elements = 9000;
  Dataset dense = GenerateNeurons(params);
  EXPECT_EQ(sparse.bounds, dense.bounds) << "volume must stay constant";
  EXPECT_EQ(dense.size(), 9u * sparse.size());
}

TEST(NeuronGeneratorTest, ZeroElements) {
  NeuronParams params;
  params.total_elements = 0;
  EXPECT_EQ(GenerateNeurons(params).size(), 0u);
}

TEST(UniformGeneratorTest, CubesHaveRequestedSide) {
  UniformBoxParams params;
  params.count = 100;
  params.shape = BoxShapeMode::kCube;
  params.side_um = 4.0;
  Dataset d = GenerateUniformBoxes(params);
  ASSERT_EQ(d.size(), 100u);
  for (const auto& e : d.elements) {
    EXPECT_NEAR(e.box.Extents().x, 4.0, 1e-12);
    EXPECT_NEAR(e.box.Extents().y, 4.0, 1e-12);
    EXPECT_NEAR(e.box.Extents().z, 4.0, 1e-12);
  }
}

TEST(UniformGeneratorTest, FixedVolumeRandomAspectPreservesVolume) {
  UniformBoxParams params;
  params.count = 500;
  params.shape = BoxShapeMode::kFixedVolumeRandomAspect;
  params.element_volume_um3 = 18.0;
  Dataset d = GenerateUniformBoxes(params);
  double min_aspect = 1e9, max_aspect = 0;
  for (const auto& e : d.elements) {
    EXPECT_NEAR(e.box.Volume(), 18.0, 1e-9);
    Vec3 ext = e.box.Extents();
    const double aspect =
        std::max({ext.x, ext.y, ext.z}) / std::min({ext.x, ext.y, ext.z});
    min_aspect = std::min(min_aspect, aspect);
    max_aspect = std::max(max_aspect, aspect);
  }
  EXPECT_LT(min_aspect, 1.5) << "some near-cubes expected";
  EXPECT_GT(max_aspect, 3.0) << "some elongated boxes expected";
}

TEST(UniformGeneratorTest, UniformSidesWithinRange) {
  UniformBoxParams params;
  params.count = 200;
  params.shape = BoxShapeMode::kUniformSides;
  params.min_side_um = 2.0;
  params.max_side_um = 10.0;
  Dataset d = GenerateUniformBoxes(params);
  for (const auto& e : d.elements) {
    Vec3 ext = e.box.Extents();
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_GE(ext[axis], 2.0 - 1e-9);
      EXPECT_LE(ext[axis], 10.0 + 1e-9);
    }
  }
}

TEST(MeshGeneratorTest, TriangleCountsNearTarget) {
  for (MeshKind kind :
       {MeshKind::kNoisySphere, MeshKind::kFoldedSheet, MeshKind::kStatue}) {
    MeshParams params;
    params.kind = kind;
    params.target_triangles = 20000;
    Dataset d = GenerateMesh(params);
    EXPECT_GT(d.size(), 10000u) << static_cast<int>(kind);
    EXPECT_LT(d.size(), 60000u) << static_cast<int>(kind);
    EXPECT_FALSE(d.bounds.IsEmpty());
  }
}

TEST(MeshGeneratorTest, TrianglesAreSmallRelativeToModel) {
  MeshParams params;
  params.target_triangles = 30000;
  Dataset d = GenerateMesh(params);
  const double model_diag = d.bounds.Extents().Norm();
  for (size_t i = 0; i < d.size(); i += 100) {
    EXPECT_LT(d.elements[i].box.Extents().Norm(), model_diag / 10.0);
  }
}

TEST(MeshGeneratorTest, FoldedSheetIsConcave) {
  // The folded sheet must have a large bounding-volume-to-surface footprint:
  // elements fill only a thin, folded subset of their bounding box.
  MeshParams params;
  params.kind = MeshKind::kFoldedSheet;
  params.target_triangles = 20000;
  Dataset d = GenerateMesh(params);
  double element_volume_sum = 0.0;
  for (const auto& e : d.elements) element_volume_sum += e.box.Volume();
  EXPECT_LT(element_volume_sum, 0.5 * d.bounds.Volume());
}

TEST(NBodyGeneratorTest, CountAndBounds) {
  NBodyParams params;
  params.count = 5000;
  Dataset d = GenerateNBody(params);
  EXPECT_EQ(d.size(), 5000u);
  for (const auto& e : d.elements) {
    EXPECT_TRUE(d.bounds.Inflated(params.particle_radius).Contains(e.box));
  }
}

TEST(NBodyGeneratorTest, ClusteredDataIsSkewed) {
  // With clustering, the densest octant should hold far more than 1/8 of the
  // particles... not necessarily one octant; instead compare the particle
  // count inside small balls around cluster centers vs. random locations.
  NBodyParams params;
  params.count = 20000;
  params.clusters = 8;
  params.background_fraction = 0.05;
  Dataset d = GenerateNBody(params);

  // Measure concentration: fraction of particles inside the 64 densest
  // cells of a 16^3 grid. Uniform data would have ~64/4096 = 1.6 %.
  const int g = 16;
  std::vector<int> cells(g * g * g, 0);
  const Vec3 lo = d.bounds.lo();
  const Vec3 ext = d.bounds.Extents();
  for (const auto& e : d.elements) {
    Vec3 c = e.box.Center();
    int ix = std::min(g - 1, static_cast<int>((c.x - lo.x) / ext.x * g));
    int iy = std::min(g - 1, static_cast<int>((c.y - lo.y) / ext.y * g));
    int iz = std::min(g - 1, static_cast<int>((c.z - lo.z) / ext.z * g));
    cells[(ix * g + iy) * g + iz]++;
  }
  std::sort(cells.rbegin(), cells.rend());
  int top64 = 0;
  for (int i = 0; i < 64; ++i) top64 += cells[i];
  EXPECT_GT(static_cast<double>(top64) / d.size(), 0.3)
      << "n-body data should be strongly clustered";
}

TEST(GeneratorDeterminismTest, AllGeneratorsDeterministic) {
  UniformBoxParams up;
  up.count = 50;
  EXPECT_EQ(GenerateUniformBoxes(up).elements[17].box,
            GenerateUniformBoxes(up).elements[17].box);
  MeshParams mp;
  mp.target_triangles = 1000;
  EXPECT_EQ(GenerateMesh(mp).elements[13].box,
            GenerateMesh(mp).elements[13].box);
  NBodyParams np;
  np.count = 50;
  EXPECT_EQ(GenerateNBody(np).elements[11].box,
            GenerateNBody(np).elements[11].box);
}

}  // namespace
}  // namespace flat
