// The disk-backend contract: a DiskPageFile reopened from a SavePageFile
// stream is indistinguishable from the in-memory PageFile it was saved from —
// byte-identical pages, identical category accounting, bit-identical query
// results and logical IoStats through the same PageCache API — in both mmap
// and pread modes, with prefetching on or off. Corrupt files are rejected at
// Open, before any page is served.
#include "storage/disk_page_file.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/flat_index.h"
#include "data/mesh_generator.h"
#include "data/neuron_generator.h"
#include "data/uniform_generator.h"
#include "engine/query_engine.h"
#include "geometry/rng.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "storage/page_file.h"
#include "storage/persistence.h"
#include "tests/test_util.h"

namespace flat {
namespace {

std::vector<uint64_t> CategoryCounts(const IoStats& stats) {
  std::vector<uint64_t> counts(kNumPageCategories);
  for (int c = 0; c < kNumPageCategories; ++c) {
    counts[c] = stats.ReadsIn(static_cast<PageCategory>(c));
  }
  return counts;
}

// The three generators the repo's identity tests standardize on.
Dataset MakeDataset(const std::string& kind) {
  if (kind == "neuron") {
    NeuronParams params;
    params.total_elements = 20000;
    return GenerateNeurons(params);
  }
  if (kind == "mesh") {
    MeshParams params;
    params.target_triangles = 20000;
    return GenerateMesh(params);
  }
  UniformBoxParams params;
  params.count = 20000;
  return GenerateUniformBoxes(params);
}

std::vector<Aabb> DatasetQueries(const Dataset& dataset, uint64_t seed) {
  Rng rng(seed);
  std::vector<Aabb> queries;
  for (int i = 0; i < 15; ++i) {
    const Vec3 center = rng.PointIn(dataset.bounds);
    const double frac = rng.Uniform(0.02, 0.3);
    queries.push_back(Aabb::FromCenterHalfExtents(
        center, dataset.bounds.Extents() * (frac / 2)));
  }
  queries.push_back(dataset.bounds);
  return queries;
}

// Writes `file` to a fresh temp path and removes it on scope exit.
class ScopedPageFileOnDisk {
 public:
  explicit ScopedPageFileOnDisk(const PageFile& file, const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("disk_page_file_test_" + std::to_string(::getpid()) + "_" + tag +
              ".pgf"))
                .string();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    SavePageFile(file, out);
    EXPECT_TRUE(out.good());
  }

  ~ScopedPageFileOnDisk() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class DiskBackendIdentityTest : public ::testing::TestWithParam<std::string> {};

// Save, reopen disk-backed, and run the oracle query suite on both backends:
// the id sequences (in traversal order, not just as sets) and the
// per-category logical read counts must be bit-identical.
TEST_P(DiskBackendIdentityTest, MatchesInMemoryBackend) {
  const Dataset dataset = MakeDataset(GetParam());
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, dataset.elements);

  ScopedPageFileOnDisk on_disk(file, "identity_" + GetParam());
  auto disk = DiskPageFile::Open(on_disk.path());
  FlatIndex reopened = FlatIndex::Attach(disk.get(), index.descriptor());

  // Store-level equivalence: same geometry, same categories, same bytes.
  ASSERT_EQ(disk->page_count(), file.page_count());
  ASSERT_EQ(disk->page_size(), file.page_size());
  EXPECT_EQ(disk->SizeBytes(), file.SizeBytes());
  for (int c = 0; c < kNumPageCategories; ++c) {
    const auto category = static_cast<PageCategory>(c);
    EXPECT_EQ(disk->PageCountIn(category), file.PageCountIn(category));
  }
  for (PageId id = 0; id < file.page_count(); ++id) {
    ASSERT_EQ(disk->category(id), file.category(id)) << "page " << id;
    ASSERT_EQ(std::memcmp(disk->Data(id), file.Data(id), file.page_size()), 0)
        << "page " << id;
  }

  // Query-level equivalence, cold cache per query on both sides.
  IoStats memory_io, disk_io;
  BufferPool memory_pool(&file, &memory_io);
  BufferPool disk_pool(disk.get(), &disk_io);
  for (const Aabb& query : DatasetQueries(dataset, /*seed=*/91)) {
    std::vector<uint64_t> expected, got;
    memory_pool.Clear();
    index.RangeQuery(&memory_pool, query, &expected);
    disk_pool.Clear();
    reopened.RangeQuery(&disk_pool, query, &got);
    EXPECT_EQ(got, expected);
  }
  EXPECT_EQ(CategoryCounts(disk_io), CategoryCounts(memory_io));
}

// The pread fallback serves the same bytes and the same query results as the
// mmap mode (pointer stability via per-page resident buffers).
TEST_P(DiskBackendIdentityTest, PreadModeMatchesMmap) {
  const Dataset dataset = MakeDataset(GetParam());
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, dataset.elements);

  ScopedPageFileOnDisk on_disk(file, "pread_" + GetParam());
  auto pread_file =
      DiskPageFile::Open(on_disk.path(), DiskPageFile::Options{
                                             .use_mmap = false,
                                         });
  EXPECT_FALSE(pread_file->mmap_backed());

  for (PageId id = 0; id < file.page_count(); ++id) {
    const char* data = pread_file->Data(id);
    ASSERT_EQ(std::memcmp(data, file.Data(id), file.page_size()), 0)
        << "page " << id;
    // Pointer stability: a second lookup returns the same resident buffer.
    EXPECT_EQ(pread_file->Data(id), data);
  }

  FlatIndex reopened = FlatIndex::Attach(pread_file.get(), index.descriptor());
  IoStats memory_io, pread_io;
  BufferPool memory_pool(&file, &memory_io);
  BufferPool pread_pool(pread_file.get(), &pread_io);
  for (const Aabb& query : DatasetQueries(dataset, /*seed=*/92)) {
    std::vector<uint64_t> expected, got;
    memory_pool.Clear();
    index.RangeQuery(&memory_pool, query, &expected);
    pread_pool.Clear();
    reopened.RangeQuery(&pread_pool, query, &got);
    EXPECT_EQ(got, expected);
  }
  EXPECT_EQ(CategoryCounts(pread_io), CategoryCounts(memory_io));
}

INSTANTIATE_TEST_SUITE_P(Datasets, DiskBackendIdentityTest,
                         ::testing::Values("neuron", "mesh", "uniform"),
                         [](const auto& info) { return info.param; });

// Crawl prefetching over a disk store must never change results or logical
// read counts — only the prefetch_* counters move, and every issued hint is
// accounted as either a hit or (at Clear) waste.
TEST(DiskPrefetchTest, PrefetchingIsInvisibleToResultsAndReads) {
  const Dataset dataset = MakeDataset("neuron");
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, dataset.elements);

  ScopedPageFileOnDisk on_disk(file, "prefetch");
  auto disk = DiskPageFile::Open(on_disk.path());
  FlatIndex reopened = FlatIndex::Attach(disk.get(), index.descriptor());

  IoStats off_io, on_io;
  BufferPool off_pool(disk.get(), &off_io);
  BufferPool on_pool(disk.get(), &on_io);
  on_pool.set_prefetch_depth(16);

  uint64_t total_results = 0;
  for (const Aabb& query : DatasetQueries(dataset, /*seed=*/93)) {
    std::vector<uint64_t> expected, got;
    off_pool.Clear();
    reopened.RangeQuery(&off_pool, query, &expected);
    on_pool.Clear();
    reopened.RangeQuery(&on_pool, query, &got);
    EXPECT_EQ(got, expected);
    total_results += got.size();
  }
  on_pool.Clear();  // flush the last query's pending hints into waste
  ASSERT_GT(total_results, 0u);

  // Logical reads identical; prefetch counters zero without the knob.
  EXPECT_EQ(CategoryCounts(on_io), CategoryCounts(off_io));
  EXPECT_EQ(off_io.PrefetchIssued(), 0u);
  EXPECT_EQ(off_io.PrefetchHits(), 0u);
  EXPECT_EQ(off_io.PrefetchWasted(), 0u);

  // The crawl issued hints, and every one resolved as a hit or as waste.
  EXPECT_GT(on_io.PrefetchIssued(), 0u);
  EXPECT_EQ(on_io.PrefetchHits() + on_io.PrefetchWasted(),
            on_io.PrefetchIssued());
}

// The same invariant through the QueryEngine's per-query knob, at multiple
// thread counts: prefetch depth must not perturb results or read counts.
TEST(DiskPrefetchTest, EngineResultsIdenticalWithPrefetchOnAndOff) {
  const Dataset dataset = MakeDataset("uniform");
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, dataset.elements);

  ScopedPageFileOnDisk on_disk(file, "engine");
  auto disk = DiskPageFile::Open(on_disk.path());
  FlatIndex reopened = FlatIndex::Attach(disk.get(), index.descriptor());

  std::vector<Query> batch;
  for (const Aabb& query : DatasetQueries(dataset, /*seed=*/94)) {
    batch.push_back(Query::Range(query));
  }

  QueryEngine::Options off_options;
  off_options.threads = 1;
  QueryEngine off_engine(&reopened, off_options);
  const std::vector<QueryResult> expected = off_engine.Run(batch);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    QueryEngine::Options options;
    options.threads = threads;
    options.prefetch_depth = 16;
    QueryEngine engine(&reopened, options);
    const std::vector<QueryResult> got = engine.Run(batch);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].ids, expected[i].ids) << "query " << i;
      EXPECT_EQ(got[i].count, expected[i].count) << "query " << i;
      EXPECT_EQ(CategoryCounts(got[i].io), CategoryCounts(expected[i].io))
          << "query " << i;
    }
  }
}

// The async toucher drains hinted pages in the background (pread mode makes
// the touch observable: it materializes the resident buffer).
TEST(DiskPageFileTest, BackgroundToucherProcessesHints) {
  PageFile file(256);
  for (int i = 0; i < 64; ++i) file.Allocate(PageCategory::kObject);
  ScopedPageFileOnDisk on_disk(file, "toucher");

  auto disk = DiskPageFile::Open(on_disk.path(), DiskPageFile::Options{
                                                     .use_mmap = false,
                                                 });
  for (PageId id = 0; id < 64; ++id) disk->Prefetch(id);

  // Hints are advisory, but on an idle queue they drain quickly; poll with a
  // generous deadline rather than assuming scheduling latency.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (disk->pages_touched() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(disk->pages_touched(), 0u);
}

// DropOsCache (the cold-cache bench primitive) must leave the store fully
// readable with identical bytes afterwards.
TEST(DiskPageFileTest, DropOsCacheKeepsPagesReadable) {
  PageFile file(512);
  for (int i = 0; i < 16; ++i) {
    const PageId id = file.Allocate(PageCategory::kObject);
    std::memset(file.MutableData(id), 'a' + i, file.page_size());
  }
  ScopedPageFileOnDisk on_disk(file, "drop");

  for (const bool use_mmap : {true, false}) {
    SCOPED_TRACE(use_mmap ? "mmap" : "pread");
    auto disk = DiskPageFile::Open(on_disk.path(), DiskPageFile::Options{
                                                       .use_mmap = use_mmap,
                                                   });
    for (PageId id = 0; id < 16; ++id) {
      ASSERT_EQ(std::memcmp(disk->Data(id), file.Data(id), 512), 0);
    }
    disk->DropOsCache();
    for (PageId id = 0; id < 16; ++id) {
      ASSERT_EQ(std::memcmp(disk->Data(id), file.Data(id), 512), 0)
          << "after DropOsCache, page " << id;
    }
  }
}

// Corrupt files are rejected at Open with std::runtime_error — before any
// Data() call can read garbage.
TEST(DiskPageFileTest, CorruptFilesAreRejectedAtOpen) {
  PageFile file(256);
  const PageId id = file.Allocate(PageCategory::kObject);
  std::memcpy(file.MutableData(id), "valid", 5);
  ScopedPageFileOnDisk on_disk(file, "corrupt");

  std::ifstream in(on_disk.path(), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_EQ(bytes.size(), 16u + 1u + 256u);

  const auto write_variant = [&](const std::string& tag,
                                 const std::string& contents) {
    const std::string path = on_disk.path() + "." + tag;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    return path;
  };

  // Missing file.
  EXPECT_THROW(DiskPageFile::Open(on_disk.path() + ".does_not_exist"),
               std::runtime_error);

  // Bad magic.
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  const std::string bad_magic_path = write_variant("badmagic", bad_magic);
  EXPECT_THROW(DiskPageFile::Open(bad_magic_path), std::runtime_error);

  // Truncated: header claims one 256-byte page, file ends mid-page.
  const std::string truncated_path =
      write_variant("truncated", bytes.substr(0, bytes.size() - 100));
  EXPECT_THROW(DiskPageFile::Open(truncated_path), std::runtime_error);

  // Hostile page_count: huge count over a tiny body.
  std::string hostile = bytes;
  const uint32_t huge = 1u << 30;
  std::memcpy(&hostile[12], &huge, sizeof(huge));
  const std::string hostile_path = write_variant("hostile", hostile);
  EXPECT_THROW(DiskPageFile::Open(hostile_path), std::runtime_error);

  // Trailing bytes beyond the declared pages: a disk file (unlike a
  // container stream) must match its header exactly.
  const std::string trailing_path =
      write_variant("trailing", bytes + "JUNK");
  EXPECT_THROW(DiskPageFile::Open(trailing_path), std::runtime_error);

  // Invalid category byte.
  std::string bad_category = bytes;
  bad_category[16] = static_cast<char>(0xEE);
  const std::string bad_category_path =
      write_variant("badcategory", bad_category);
  EXPECT_THROW(DiskPageFile::Open(bad_category_path), std::runtime_error);

  // Shorter than the fixed header.
  const std::string tiny_path = write_variant("tiny", bytes.substr(0, 7));
  EXPECT_THROW(DiskPageFile::Open(tiny_path), std::runtime_error);

  for (const char* tag : {"badmagic", "truncated", "hostile", "trailing",
                          "badcategory", "tiny"}) {
    std::error_code ec;
    std::filesystem::remove(on_disk.path() + "." + tag, ec);
  }

  // The untouched original still opens fine.
  auto disk = DiskPageFile::Open(on_disk.path());
  EXPECT_EQ(std::memcmp(disk->Data(id), "valid", 5), 0);
}

// A transient fault sequence — EINTR, short reads, errors within the retry
// budget — must be fully recovered: byte-identical pages, exact retry
// accounting, zero permanent errors.
TEST(DiskPageFileFaultTest, TransientFaultSequencesRecoverExactly) {
  PageFile file(512);
  for (int i = 0; i < 8; ++i) {
    const PageId id = file.Allocate(PageCategory::kObject);
    std::memset(file.MutableData(id), 'A' + i, file.page_size());
  }
  ScopedPageFileOnDisk on_disk(file, "transient");

  FaultSchedule schedule;
  // Page 0: interrupted twice before succeeding.
  schedule.Add({.page = 0, .attempt = 1, .kind = FaultKind::kEintr});
  schedule.Add({.page = 0, .attempt = 2, .kind = FaultKind::kEintr});
  // Page 1: two short reads (7 bytes, then 100) before the rest transfers.
  schedule.Add({.page = 1,
                .attempt = 1,
                .kind = FaultKind::kShortRead,
                .short_bytes = 7});
  schedule.Add({.page = 1,
                .attempt = 2,
                .kind = FaultKind::kShortRead,
                .short_bytes = 100});
  // Page 2: fails twice (within the budget of 3), then succeeds.
  schedule.FailRead(/*page=*/2, /*times=*/2);
  // Page 3: delayed, then succeeds.
  schedule.Add({.page = 3,
                .attempt = 1,
                .kind = FaultKind::kLatency,
                .latency_micros = 50});

  DiskPageFile::Options options;
  options.async_prefetch = false;  // keep schedule attempts query-driven
  options.retry_backoff_micros = 0;
  options.fault_schedule = &schedule;
  auto disk = DiskPageFile::Open(on_disk.path(), options);
  EXPECT_FALSE(disk->mmap_backed()) << "a schedule must force pread mode";

  for (PageId id = 0; id < 8; ++id) {
    ASSERT_EQ(std::memcmp(disk->Data(id), file.Data(id), 512), 0)
        << "page " << id;
  }
  // 2 EINTR (page 0) + 2 retried errors (page 2); short reads and latency
  // are progress, not retries.
  EXPECT_EQ(disk->read_retries(), 4u);
  EXPECT_EQ(disk->read_errors(), 0u);
  EXPECT_EQ(schedule.fired(FaultKind::kEintr), 2u);
  EXPECT_EQ(schedule.fired(FaultKind::kShortRead), 2u);
  EXPECT_EQ(schedule.fired(FaultKind::kError), 2u);
  EXPECT_EQ(schedule.fired(FaultKind::kLatency), 1u);
}

// A fault outliving the retry budget throws (→ kIoError upstream) — and,
// critically, releases the busy sentinel: the next read of the same page
// must retry the I/O rather than hang or crash, and succeed once the
// schedule is exhausted.
TEST(DiskPageFileFaultTest, FailedReadReleasesBusySentinelAndCanRecover) {
  PageFile file(256);
  const PageId id = file.Allocate(PageCategory::kObject);
  std::memset(file.MutableData(id), 'Z', file.page_size());
  ScopedPageFileOnDisk on_disk(file, "sentinel");

  FaultSchedule schedule;
  // With max_read_retries = 0, each Data() call consumes exactly one
  // scheduled attempt and throws; the 4th call finds a clean schedule.
  schedule.FailRead(id, /*times=*/3);

  DiskPageFile::Options options;
  options.async_prefetch = false;
  options.max_read_retries = 0;
  options.fault_schedule = &schedule;
  auto disk = DiskPageFile::Open(on_disk.path(), options);

  for (int call = 0; call < 3; ++call) {
    EXPECT_THROW(disk->Data(id), std::runtime_error) << "call " << call;
  }
  EXPECT_EQ(disk->read_errors(), 3u);
  // The sentinel was released every time: this read claims the slot afresh
  // and succeeds.
  ASSERT_EQ(std::memcmp(disk->Data(id), file.Data(id), 256), 0);
  // Resident now; further reads are stable and fault-free.
  EXPECT_EQ(disk->Data(id), disk->Data(id));
}

// The sentinel-release property under concurrency: many threads hammer a
// page whose first reads fail. No thread may deadlock on a stale kBusyPage,
// and once the schedule drains every thread sees the correct bytes.
TEST(DiskPageFileFaultTest, ConcurrentReadersSurviveFailingPage) {
  PageFile file(256);
  const PageId id = file.Allocate(PageCategory::kObject);
  std::memset(file.MutableData(id), 'Q', file.page_size());
  ScopedPageFileOnDisk on_disk(file, "concurrent_fail");

  FaultSchedule schedule;
  schedule.FailRead(id, /*times=*/5);

  DiskPageFile::Options options;
  options.async_prefetch = false;
  options.max_read_retries = 0;
  options.fault_schedule = &schedule;
  auto disk = DiskPageFile::Open(on_disk.path(), options);

  constexpr int kThreads = 4;
  std::atomic<int> successes{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        try {
          const char* data = disk->Data(id);
          if (data[0] == 'Q') ++successes;
        } catch (const std::runtime_error&) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // The 5 scheduled failures all fired (possibly observed by any subset of
  // threads); everyone eventually read the page.
  EXPECT_EQ(failures.load(), 5);
  EXPECT_GT(successes.load(), 0);
  ASSERT_EQ(std::memcmp(disk->Data(id), file.Data(id), 256), 0);
}

// Destroying the store with hints still queued — while another thread
// hammers DropOsCache — must shut down cleanly (the prefetch toucher holds
// no lock across I/O and drops advisory work on stop).
TEST(DiskPageFileTest, ShutdownWithQueuedHintsAndConcurrentDropOsCache) {
  PageFile file(256);
  for (int i = 0; i < 256; ++i) file.Allocate(PageCategory::kObject);
  ScopedPageFileOnDisk on_disk(file, "shutdown");

  for (int round = 0; round < 20; ++round) {
    auto disk = DiskPageFile::Open(on_disk.path(), DiskPageFile::Options{
                                                       .use_mmap = false,
                                                   });
    std::atomic<bool> stop{false};
    std::thread dropper([&] {
      while (!stop.load(std::memory_order_acquire)) {
        disk->DropOsCache();
      }
    });
    for (PageId id = 0; id < 256; ++id) disk->Prefetch(id);
    stop.store(true, std::memory_order_release);
    dropper.join();
    // Destroy with whatever is still queued; must join the toucher cleanly.
    disk.reset();
  }
}

}  // namespace
}  // namespace flat
