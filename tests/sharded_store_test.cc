// The ShardedFlatStore contract: scatter-gather queries over K shards are
// bit-identical (in the canonical sorted order) to one unsharded FlatIndex
// over the same elements, merged IoStats equal the exact per-category sum of
// per-shard cold-cache serial execution at every thread count, the catalog
// round-trips through Save/Load, and the shard split itself is
// byte-deterministic across thread counts.
#include "shard/sharded_flat_store.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/flat_index.h"
#include "data/mesh_generator.h"
#include "data/neuron_generator.h"
#include "data/uniform_generator.h"
#include "geometry/rng.h"
#include "shard/shard_catalog.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "tests/test_util.h"

namespace flat {
namespace {

using testing::BruteForce;
using testing::RandomEntries;
using testing::RandomQueries;
using testing::Sorted;

std::vector<uint64_t> CategoryCounts(const IoStats& stats) {
  std::vector<uint64_t> counts(kNumPageCategories);
  for (int c = 0; c < kNumPageCategories; ++c) {
    counts[c] = stats.ReadsIn(static_cast<PageCategory>(c));
  }
  return counts;
}

// The three generators the repo's identity tests standardize on, at a size
// that keeps Debug/TSan runtimes reasonable.
Dataset MakeDataset(const std::string& kind) {
  if (kind == "neuron") {
    NeuronParams params;
    params.total_elements = 20000;
    return GenerateNeurons(params);
  }
  if (kind == "mesh") {
    MeshParams params;
    params.target_triangles = 20000;
    return GenerateMesh(params);
  }
  UniformBoxParams params;
  params.count = 20000;
  return GenerateUniformBoxes(params);
}

// Queries spanning a spread of selectivities within `bounds`, plus one box
// covering every shard (the whole universe) and one far outside it.
std::vector<Aabb> DatasetQueries(const Dataset& dataset, uint64_t seed) {
  Rng rng(seed);
  std::vector<Aabb> queries;
  for (int i = 0; i < 20; ++i) {
    const Vec3 center = rng.PointIn(dataset.bounds);
    const double frac = rng.Uniform(0.02, 0.3);
    queries.push_back(Aabb::FromCenterHalfExtents(
        center, dataset.bounds.Extents() * (frac / 2)));
  }
  queries.push_back(dataset.bounds);  // spans all shards
  queries.push_back(Aabb::FromCenterHalfExtents(
      dataset.bounds.hi() + dataset.bounds.Extents(), Vec3(1, 1, 1)));
  return queries;
}

// Serial cold-cache reference on the unsharded index.
std::vector<uint64_t> UnshardedRange(const FlatIndex& index,
                                     const PageFile& file, const Aabb& query,
                                     IoStats* io) {
  BufferPool pool(&file, io);
  std::vector<uint64_t> ids;
  index.RangeQuery(&pool, query, &ids);
  return ids;
}

class ShardedStoreIdentityTest
    : public ::testing::TestWithParam<std::string> {};

// The tentpole invariant: for every data set, shard count (including K=1)
// and thread count, range / count / seed-scan results are bit-identical to
// the unsharded index (canonical sorted order), and the store's merged
// IoStats equal — per category — the sum over overlapping shards of serial
// cold-cache execution.
TEST_P(ShardedStoreIdentityTest, MatchesUnshardedIndex) {
  const Dataset dataset = MakeDataset(GetParam());

  PageFile file;
  FlatIndex unsharded = FlatIndex::Build(&file, dataset.elements);
  const std::vector<Aabb> queries = DatasetQueries(dataset, /*seed=*/77);

  for (size_t num_shards : {size_t{1}, size_t{5}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("shards=" + std::to_string(num_shards) +
                   " threads=" + std::to_string(threads));
      ShardedFlatStore store = ShardedFlatStore::Build(
          dataset.elements,
          {.num_shards = num_shards, .num_threads = threads});
      if (num_shards == 1) EXPECT_EQ(store.shard_count(), 1u);

      for (size_t qi = 0; qi < queries.size(); ++qi) {
        SCOPED_TRACE("query " + std::to_string(qi));
        const Aabb& query = queries[qi];
        IoStats unsharded_io;
        const std::vector<uint64_t> expected =
            Sorted(UnshardedRange(unsharded, file, query, &unsharded_io));

        // Range: bit-identical id sequence in canonical order.
        IoStats range_io;
        const std::vector<uint64_t> ids = store.RangeQuery(query, &range_io);
        EXPECT_EQ(ids, expected);

        // Count: same pages, no ids.
        IoStats count_io;
        EXPECT_EQ(store.RangeCount(query, &count_io), expected.size());
        EXPECT_EQ(CategoryCounts(count_io), CategoryCounts(range_io));

        // Seed-scan plan: same canonical result set.
        EXPECT_EQ(store.RangeQueryViaSeedScan(query), expected);

        // Merged I/O equals the per-category sum of serial cold-cache
        // execution on each overlapping shard.
        IoStats reference_io;
        for (size_t s = 0; s < store.shard_count(); ++s) {
          if (!store.catalog().shards[s].bounds.Intersects(query)) continue;
          BufferPool pool(&store.shard_file(s), &reference_io);
          std::vector<uint64_t> shard_ids;
          store.shard_index(s).RangeQuery(&pool, query, &shard_ids);
        }
        EXPECT_EQ(CategoryCounts(range_io), CategoryCounts(reference_io));

        // With one shard the sharded store *is* the unsharded index (the
        // K=1 split is an identity permutation of STR order), so even the
        // raw page-read totals match the unsharded build exactly — for
        // queries the catalog routes to the shard. Queries outside the data
        // bounds never leave the catalog (0 reads), while the unsharded
        // index still pays its seed-tree probe: the routing win.
        if (store.shard_count() == 1) {
          if (store.catalog().shards[0].bounds.Intersects(query)) {
            EXPECT_EQ(CategoryCounts(range_io), CategoryCounts(unsharded_io));
          } else {
            EXPECT_EQ(range_io.TotalReads(), 0u);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, ShardedStoreIdentityTest,
                         ::testing::Values("neuron", "mesh", "uniform"));

TEST(ShardedStoreTest, BatchMatchesSingleQueryPath) {
  const std::vector<RTreeEntry> entries = RandomEntries(15000, /*seed=*/21);
  ShardedFlatStore store =
      ShardedFlatStore::Build(entries, {.num_shards = 4, .num_threads = 4});

  std::vector<Query> batch;
  std::vector<Aabb> boxes = RandomQueries(40, /*seed=*/22);
  for (size_t i = 0; i < boxes.size(); ++i) {
    if (i % 3 == 0) {
      batch.push_back(Query::RangeCount(boxes[i]));
    } else if (i % 3 == 1) {
      batch.push_back(Query::Range(boxes[i]));
    } else {
      batch.push_back(Query::Sphere(boxes[i].Center(),
                                    boxes[i].Extents().Norm() / 2));
    }
  }

  BatchStats stats;
  const std::vector<QueryResult> results = store.RunBatch(batch, &stats);
  ASSERT_EQ(results.size(), batch.size());

  IoStats merged;
  uint64_t elements = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    QueryResult single;
    switch (batch[i].type) {
      case Query::Type::kRange:
        single.ids = store.RangeQuery(batch[i].box, &single.io);
        single.count = single.ids.size();
        break;
      case Query::Type::kRangeCount:
        single.count = store.RangeCount(batch[i].box, &single.io);
        break;
      case Query::Type::kSphere:
        single.ids =
            store.SphereQuery(batch[i].center, batch[i].radius, &single.io);
        single.count = single.ids.size();
        break;
      default:
        FAIL();
    }
    EXPECT_EQ(results[i].ids, single.ids);
    EXPECT_EQ(results[i].count, single.count);
    EXPECT_EQ(CategoryCounts(results[i].io), CategoryCounts(single.io));
    merged += results[i].io;
    elements += results[i].count;
  }
  EXPECT_EQ(stats.result_elements, elements);
  EXPECT_EQ(CategoryCounts(stats.io), CategoryCounts(merged));
}

TEST(ShardedStoreTest, ResultsAreCorrectNotJustConsistent) {
  const std::vector<RTreeEntry> entries = RandomEntries(10000, /*seed=*/31);
  ShardedFlatStore store =
      ShardedFlatStore::Build(entries, {.num_shards = 6, .num_threads = 2});
  for (const Aabb& query : RandomQueries(30, /*seed=*/32)) {
    EXPECT_EQ(store.RangeQuery(query), BruteForce(entries, query));
  }
}

// The shard split and the per-shard builds are deterministic: any thread
// count yields byte-identical shard PageFiles and an identical catalog.
TEST(ShardedStoreTest, ShardPageFilesAreByteIdenticalAcrossThreadCounts) {
  const std::vector<RTreeEntry> entries = RandomEntries(12000, /*seed=*/41);
  ShardedFlatStore serial =
      ShardedFlatStore::Build(entries, {.num_shards = 5, .num_threads = 1});
  ShardedFlatStore parallel =
      ShardedFlatStore::Build(entries, {.num_shards = 5, .num_threads = 4});

  ASSERT_EQ(serial.shard_count(), parallel.shard_count());
  for (size_t s = 0; s < serial.shard_count(); ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    const PageStore& a = serial.shard_file(s);
    const PageStore& b = parallel.shard_file(s);
    ASSERT_EQ(a.page_count(), b.page_count());
    for (PageId id = 0; id < a.page_count(); ++id) {
      ASSERT_EQ(a.category(id), b.category(id));
      ASSERT_EQ(std::memcmp(a.Data(id), b.Data(id), a.page_size()), 0)
          << "page " << id;
    }
    EXPECT_EQ(serial.catalog().shards[s].bounds,
              parallel.catalog().shards[s].bounds);
    EXPECT_EQ(serial.catalog().shards[s].element_count,
              parallel.catalog().shards[s].element_count);
  }
}

TEST(ShardedStoreTest, SaveLoadRoundTripIsBitIdentical) {
  const std::vector<RTreeEntry> entries = RandomEntries(12000, /*seed=*/51);
  ShardedFlatStore store =
      ShardedFlatStore::Build(entries, {.num_shards = 4, .num_threads = 2});

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "flat_sharded_store_test";
  std::filesystem::remove_all(dir);
  store.Save(dir.string());

  ShardedFlatStore loaded =
      ShardedFlatStore::Load(dir.string(), /*num_threads=*/2);
  ASSERT_EQ(loaded.shard_count(), store.shard_count());
  EXPECT_EQ(loaded.catalog().total_elements, store.catalog().total_elements);
  EXPECT_EQ(loaded.catalog().universe, store.catalog().universe);

  for (const Aabb& query : RandomQueries(30, /*seed=*/52)) {
    IoStats original_io, loaded_io;
    EXPECT_EQ(loaded.RangeQuery(query, &loaded_io),
              store.RangeQuery(query, &original_io));
    // Identical structure => identical I/O.
    EXPECT_EQ(CategoryCounts(loaded_io), CategoryCounts(original_io));
  }
  std::filesystem::remove_all(dir);
}

TEST(ShardedStoreTest, EmptyStore) {
  ShardedFlatStore store = ShardedFlatStore::Build({}, {.num_shards = 4});
  EXPECT_EQ(store.shard_count(), 0u);
  IoStats io;
  EXPECT_TRUE(store.RangeQuery(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), &io)
                  .empty());
  EXPECT_EQ(store.RangeCount(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1))), 0u);
  EXPECT_EQ(io.TotalReads(), 0u);

  // An empty store round-trips, too.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "flat_sharded_store_empty";
  std::filesystem::remove_all(dir);
  store.Save(dir.string());
  ShardedFlatStore loaded = ShardedFlatStore::Load(dir.string());
  EXPECT_EQ(loaded.shard_count(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(ShardedStoreTest, DefaultConstructedStoreAnswersEmpty) {
  // Mirrors the unbuilt-FlatIndex contract: no shards, no engine, every
  // query legitimately empty — never a crash.
  ShardedFlatStore store;
  EXPECT_EQ(store.shard_count(), 0u);
  EXPECT_TRUE(store.RangeQuery(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1))).empty());
  EXPECT_EQ(store.RangeCount(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1))), 0u);
  BatchStats stats;
  const std::vector<QueryResult> results = store.RunBatch(
      {Query::Range(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)))}, &stats);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ids.empty());
  EXPECT_EQ(stats.result_elements, 0u);
}

TEST(ShardedStoreTest, KnnIsRejected) {
  ShardedFlatStore store =
      ShardedFlatStore::Build(RandomEntries(1000, 61), {.num_shards = 2});
  EXPECT_THROW(store.RunBatch({Query::Knn(Vec3(1, 2, 3), 5)}),
               std::invalid_argument);
}

TEST(ShardCatalogTest, RoundTrip) {
  ShardCatalog catalog;
  catalog.generation = 7;
  catalog.page_size = 4096;
  catalog.total_elements = 12;
  catalog.universe = Aabb(Vec3(0, 0, 0), Vec3(9, 9, 9));
  for (uint64_t i = 0; i < 3; ++i) {
    ShardCatalogEntry entry;
    entry.page_file_name = "shard-000" + std::to_string(i) + ".pgf";
    entry.descriptor = {static_cast<PageId>(10 + i), i == 1,
                        static_cast<int>(i)};
    entry.bounds = Aabb(Vec3(i, 0, 0), Vec3(i + 1, 2, 3));
    entry.tile = Aabb(Vec3(i, 0, 0), Vec3(i + 1, 9, 9));
    entry.element_count = 4;
    catalog.shards.push_back(entry);
  }

  std::stringstream stream;
  SaveShardCatalog(catalog, stream);
  const ShardCatalog loaded = LoadShardCatalog(stream);

  EXPECT_EQ(loaded.generation, catalog.generation);
  EXPECT_EQ(loaded.page_size, catalog.page_size);
  EXPECT_EQ(loaded.total_elements, catalog.total_elements);
  EXPECT_EQ(loaded.universe, catalog.universe);
  ASSERT_EQ(loaded.shards.size(), catalog.shards.size());
  for (size_t i = 0; i < loaded.shards.size(); ++i) {
    EXPECT_EQ(loaded.shards[i].page_file_name,
              catalog.shards[i].page_file_name);
    EXPECT_EQ(loaded.shards[i].descriptor.seed_root,
              catalog.shards[i].descriptor.seed_root);
    EXPECT_EQ(loaded.shards[i].descriptor.root_is_leaf,
              catalog.shards[i].descriptor.root_is_leaf);
    EXPECT_EQ(loaded.shards[i].descriptor.seed_height,
              catalog.shards[i].descriptor.seed_height);
    EXPECT_EQ(loaded.shards[i].bounds, catalog.shards[i].bounds);
    EXPECT_EQ(loaded.shards[i].tile, catalog.shards[i].tile);
    EXPECT_EQ(loaded.shards[i].element_count,
              catalog.shards[i].element_count);
  }
}

TEST(ShardCatalogTest, RejectsGarbageTruncationAndEscapes) {
  std::stringstream garbage("certainly not a shard catalog");
  EXPECT_THROW(LoadShardCatalog(garbage), std::runtime_error);

  ShardCatalog catalog;
  catalog.page_size = 4096;
  catalog.total_elements = 1;
  ShardCatalogEntry entry;
  entry.page_file_name = "shard-0000.pgf";
  entry.element_count = 1;
  catalog.shards.push_back(entry);

  std::stringstream stream;
  SaveShardCatalog(catalog, stream);
  const std::string bytes = stream.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(LoadShardCatalog(truncated), std::runtime_error);

  // A catalog whose shard file name escapes the store directory is corrupt.
  catalog.shards[0].page_file_name = "../evil.pgf";
  std::stringstream escaping;
  SaveShardCatalog(catalog, escaping);
  EXPECT_THROW(LoadShardCatalog(escaping), std::runtime_error);

  // Element counts must sum to the declared total.
  catalog.shards[0].page_file_name = "shard-0000.pgf";
  catalog.total_elements = 99;
  std::stringstream inconsistent;
  SaveShardCatalog(catalog, inconsistent);
  EXPECT_THROW(LoadShardCatalog(inconsistent), std::runtime_error);
}

// A store must never clobber a directory that already holds a LATER
// generation of itself (e.g. a stale replica re-saving over a compacted
// primary), and a catalog that regressed behind the directory's generation
// sidecar must be rejected at load time.
TEST(ShardedStoreTest, StaleGenerationsAreRejected) {
  const std::vector<RTreeEntry> entries = RandomEntries(2000, /*seed=*/55);
  ShardedFlatStore stale =
      ShardedFlatStore::Build(entries, {.num_shards = 2});  // generation 1
  ShardedFlatStore fresh = ShardedFlatStore::Build(entries, {.num_shards = 2});
  fresh.Compact();  // generation 2
  ASSERT_GT(fresh.generation(), stale.generation());

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "flat_sharded_store_stale";
  std::filesystem::remove_all(dir);
  fresh.Save(dir.string());

  // Save: the directory's sidecar records generation 2; writing generation 1
  // over it must fail loudly, naming the problem.
  try {
    stale.Save(dir.string());
    FAIL() << "saving a stale generation over a newer directory must throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("stale generation"),
              std::string::npos)
        << "actual message: " << error.what();
  }

  // Load: restore a pre-compaction catalog into the post-compaction
  // directory (classic partial-restore mistake) — the sidecar must reject it.
  {
    std::ostringstream bytes;
    ShardCatalog old_catalog = fresh.catalog();
    old_catalog.generation = 1;
    SaveShardCatalog(old_catalog, bytes);
    std::ofstream out(dir / "catalog.flatshard", std::ios::binary);
    out << bytes.str();
  }
  try {
    ShardedFlatStore::Load(dir.string());
    FAIL() << "loading a catalog older than the directory's sidecar must "
              "throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("stale catalog"),
              std::string::npos)
        << "actual message: " << error.what();
  }
  std::filesystem::remove_all(dir);
}

// Pre-overlay stores (FLATSHC1 catalogs, no WAL, no sidecar) keep loading:
// they come up as generation 0 with an empty overlay.
TEST(ShardedStoreTest, LegacyDirectoryWithoutWalLoads) {
  const std::vector<RTreeEntry> entries = RandomEntries(1500, /*seed=*/57);
  ShardedFlatStore store = ShardedFlatStore::Build(entries, {.num_shards = 2});

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "flat_sharded_store_legacy";
  std::filesystem::remove_all(dir);
  store.Save(dir.string());
  // Simulate a pre-overlay directory by dropping the new artifacts.
  std::filesystem::remove(dir / "overlay.flatwal");
  std::filesystem::remove(dir / "generation.flatgen");

  ShardedFlatStore loaded = ShardedFlatStore::Load(dir.string());
  EXPECT_EQ(loaded.overlay_op_count(), 0u);
  for (const Aabb& query : RandomQueries(10, /*seed=*/58)) {
    EXPECT_EQ(loaded.RangeQuery(query), store.RangeQuery(query));
  }
  std::filesystem::remove_all(dir);
}

// The engine-level multi-index primitive behind the store: one batch mixing
// sub-queries for two unrelated indexes, with per-query I/O charged to the
// right PageFile and results bit-identical to serial per-index execution.
TEST(MultiIndexEngineTest, MixedIndexBatch) {
  const std::vector<RTreeEntry> entries_a = RandomEntries(8000, /*seed=*/71);
  const std::vector<RTreeEntry> entries_b = RandomEntries(6000, /*seed=*/72);
  PageFile file_a, file_b;
  FlatIndex index_a = FlatIndex::Build(&file_a, entries_a);
  FlatIndex index_b = FlatIndex::Build(&file_b, entries_b);

  std::vector<IndexedQuery> batch;
  const std::vector<Aabb> boxes = RandomQueries(30, /*seed=*/73);
  for (size_t i = 0; i < boxes.size(); ++i) {
    batch.push_back(IndexedQuery{i % 2 == 0 ? &index_a : &index_b,
                                 Query::Range(boxes[i])});
  }

  for (QueryEngine::CacheMode mode :
       {QueryEngine::CacheMode::kColdPerQuery,
        QueryEngine::CacheMode::kSharedStriped}) {
    SCOPED_TRACE(mode == QueryEngine::CacheMode::kColdPerQuery ? "cold"
                                                               : "shared");
    QueryEngine engine({.threads = 4, .cache_mode = mode});
    const std::vector<QueryResult> results = engine.RunMulti(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const std::vector<RTreeEntry>& entries =
          i % 2 == 0 ? entries_a : entries_b;
      EXPECT_EQ(Sorted(results[i].ids), BruteForce(entries, boxes[i]))
          << "query " << i;
    }
  }
}

TEST(MultiIndexEngineTest, NullAndUnbuiltIndexesYieldEmptyResults) {
  PageFile file;
  FlatIndex built = FlatIndex::Build(&file, RandomEntries(2000, 81));
  FlatIndex unbuilt;
  const Aabb everything(Vec3(0, 0, 0), Vec3(100, 100, 100));

  QueryEngine engine(QueryEngine::Options{.threads = 2});
  std::vector<IndexedQuery> batch = {
      IndexedQuery{nullptr, Query::Range(everything)},
      IndexedQuery{&unbuilt, Query::Range(everything)},
      IndexedQuery{&built, Query::Range(everything)},
  };
  BatchStats stats;
  const std::vector<QueryResult> results = engine.RunMulti(batch, &stats);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ids.empty());
  EXPECT_EQ(results[0].io.TotalReads(), 0u);
  EXPECT_TRUE(results[1].ids.empty());
  EXPECT_EQ(results[2].ids.size(), 2000u);
  EXPECT_EQ(stats.result_elements, 2000u);
}

TEST(MultiIndexEngineTest, SingleIndexRunOnIndexFreeEngineThrows) {
  QueryEngine engine(QueryEngine::Options{.threads = 2});
  // Loud failure, not silently-empty results: the single-index entry point
  // has no index to run against.
  EXPECT_THROW(engine.Run({Query::Range(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)))}),
               std::logic_error);
}

TEST(MultiIndexEngineTest, CountAndSeedScanQueryTypes) {
  const std::vector<RTreeEntry> entries = RandomEntries(8000, /*seed=*/91);
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  QueryEngine engine(&index, {.threads = 2});

  const std::vector<Aabb> boxes = RandomQueries(20, /*seed=*/92);
  std::vector<Query> batch;
  for (const Aabb& box : boxes) batch.push_back(Query::RangeCount(box));
  for (const Aabb& box : boxes) batch.push_back(Query::RangeSeedScan(box));

  const std::vector<QueryResult> results = engine.Run(batch);
  for (size_t i = 0; i < boxes.size(); ++i) {
    const std::vector<uint64_t> expected = BruteForce(entries, boxes[i]);
    // Count queries: right tally, no ids, same reads as the range crawl.
    EXPECT_EQ(results[i].count, expected.size()) << "query " << i;
    EXPECT_TRUE(results[i].ids.empty());
    IoStats range_io;
    {
      BufferPool pool(&file, &range_io);
      std::vector<uint64_t> ids;
      index.RangeQuery(&pool, boxes[i], &ids);
    }
    EXPECT_EQ(CategoryCounts(results[i].io), CategoryCounts(range_io));
    // Seed-scan queries: same result set through the other plan.
    EXPECT_EQ(Sorted(results[boxes.size() + i].ids), expected);
  }
}

}  // namespace
}  // namespace flat
