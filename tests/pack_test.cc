#include "rtree/pack.h"

#include <gtest/gtest.h>

#include "rtree/node.h"
#include "tests/test_util.h"

namespace flat {
namespace {

using testing::RandomEntries;

TEST(StrOrderTest, SmallInputUnchangedInSize) {
  auto entries = RandomEntries(10, 1);
  auto copy = entries;
  StrOrder(&entries, 73);
  EXPECT_EQ(entries.size(), copy.size());
}

TEST(StrOrderTest, PreservesMultisetOfIds) {
  auto entries = RandomEntries(1000, 2);
  StrOrder(&entries, 16);
  std::vector<uint64_t> ids;
  for (const auto& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  for (size_t i = 0; i < ids.size(); ++i) ASSERT_EQ(ids[i], i);
}

TEST(StrOrderTest, ConsecutiveRunsAreSpatiallyTight) {
  // The mean volume of bounding boxes of consecutive capacity-sized runs
  // must be far below that of random runs — that's STR's whole point.
  auto entries = RandomEntries(2000, 3, /*max_side=*/0.5);
  auto shuffled = entries;
  const uint32_t cap = 16;

  auto run_volume = [cap](const std::vector<RTreeEntry>& v) {
    double total = 0.0;
    size_t runs = 0;
    for (size_t s = 0; s + cap <= v.size(); s += cap, ++runs) {
      Aabb box;
      for (size_t i = s; i < s + cap; ++i) box.ExpandToInclude(v[i].box);
      total += box.Volume();
    }
    return total / runs;
  };

  StrOrder(&entries, cap);
  EXPECT_LT(run_volume(entries), 0.2 * run_volume(shuffled));
}

TEST(PackLevelTest, PacksFullPagesInOrder) {
  PageFile file(512);  // 9 slots per page
  const uint32_t cap = NodeCapacity(512);
  auto entries = RandomEntries(3 * cap + 2, 4);
  auto parents = PackLevel(&file, entries, /*level=*/0);
  ASSERT_EQ(parents.size(), 4u);
  EXPECT_EQ(file.PageCountIn(PageCategory::kRTreeLeaf), 4u);

  // Every parent box covers exactly its children.
  size_t index = 0;
  for (const RTreeEntry& parent : parents) {
    NodeView node(file.Data(static_cast<PageId>(parent.id)));
    EXPECT_EQ(node.level(), 0u);
    Aabb expected;
    for (uint16_t i = 0; i < node.count(); ++i) {
      EXPECT_EQ(node.IdAt(i), entries[index].id);
      expected.ExpandToInclude(node.BoxAt(i));
      ++index;
    }
    EXPECT_EQ(parent.box, expected);
  }
  EXPECT_EQ(index, entries.size());
}

TEST(PackLevelTest, CategoryOverridesWork) {
  PageFile file(512);
  auto entries = RandomEntries(20, 5);
  PackLevel(&file, entries, /*level=*/0, PageCategory::kObject);
  EXPECT_GT(file.PageCountIn(PageCategory::kObject), 0u);
  PackLevel(&file, entries, /*level=*/1, PageCategory::kRTreeLeaf,
            PageCategory::kSeedInternal);
  EXPECT_GT(file.PageCountIn(PageCategory::kSeedInternal), 0u);
}

TEST(PackOrderedLeavesTest, SingleLeafTree) {
  PageFile file;
  auto entries = RandomEntries(5, 6);
  RTree tree = PackOrderedLeaves(&file, entries, LevelOrder::kStr);
  EXPECT_EQ(tree.height(), 1);
  auto stats = tree.ComputeStats();
  EXPECT_EQ(stats.leaf_pages, 1u);
  EXPECT_EQ(stats.internal_pages, 0u);
  EXPECT_EQ(stats.leaf_entries, 5u);
}

TEST(PackOrderedLeavesTest, MultiLevelTreeHeights) {
  PageFile file(512);  // 9 slots
  const uint32_t cap = NodeCapacity(512);
  // cap^2 + 1 entries forces height 3.
  auto entries = RandomEntries(cap * cap + 1, 7);
  RTree tree = PackOrderedLeaves(&file, entries, LevelOrder::kStr);
  EXPECT_EQ(tree.height(), 3);
  auto stats = tree.ComputeStats();
  EXPECT_EQ(stats.leaf_entries, entries.size());
  EXPECT_GT(stats.internal_pages, 0u);
}

TEST(PackOrderedLeavesTest, EmptyInputGivesEmptyTree) {
  PageFile file;
  RTree tree = PackOrderedLeaves(&file, {}, LevelOrder::kSequential);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(file.page_count(), 0u);
}

}  // namespace
}  // namespace flat
