#include <gtest/gtest.h>

#include <algorithm>

#include "core/flat_index.h"
#include "rtree/bulkload.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace flat {
namespace {

// Oracle: ids of the k entries with smallest box-to-point distance. Returns
// the distances too so ties can be compared by distance rather than id.
std::vector<std::pair<double, uint64_t>> BruteForceKnn(
    const std::vector<RTreeEntry>& entries, const Vec3& center, size_t k) {
  std::vector<std::pair<double, uint64_t>> all;
  all.reserve(entries.size());
  for (const RTreeEntry& e : entries) {
    all.emplace_back(e.box.DistanceSquaredTo(center), e.id);
  }
  std::sort(all.begin(), all.end());
  all.resize(std::min(k, all.size()));
  return all;
}

// Compares a measured kNN result against the oracle by distance multiset
// (ids may differ under exact distance ties).
void ExpectKnnMatches(const std::vector<RTreeEntry>& entries,
                      const Vec3& center,
                      const std::vector<uint64_t>& got_ids, size_t k) {
  auto oracle = BruteForceKnn(entries, center, k);
  ASSERT_EQ(got_ids.size(), oracle.size());
  std::vector<double> got_distances;
  for (uint64_t id : got_ids) {
    // Entries are identified by id == index in all RandomEntries datasets.
    got_distances.push_back(entries[id].box.DistanceSquaredTo(center));
  }
  std::sort(got_distances.begin(), got_distances.end());
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_DOUBLE_EQ(got_distances[i], oracle[i].first) << "rank " << i;
  }
}

class KnnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    entries_ = testing::RandomEntries(3000, 501);
    rtree_ = BulkloadStr(&rtree_file_, entries_);
    flat_ = FlatIndex::Build(&flat_file_, entries_);
  }

  std::vector<RTreeEntry> entries_;
  PageFile rtree_file_, flat_file_;
  RTree rtree_;
  FlatIndex flat_;
};

TEST_F(KnnTest, RTreeMatchesOracle) {
  IoStats stats;
  BufferPool pool(&rtree_file_, &stats);
  Rng rng(502);
  Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  for (size_t k : {1u, 5u, 17u, 100u}) {
    for (int i = 0; i < 10; ++i) {
      const Vec3 center = rng.PointIn(universe);
      auto got = rtree_.KnnQuery(&pool, center, k);
      std::vector<uint64_t> ids;
      for (const auto& e : got) ids.push_back(e.id);
      ExpectKnnMatches(entries_, center, ids, k);
    }
  }
}

TEST_F(KnnTest, RTreeResultsAreSortedNearestFirst) {
  IoStats stats;
  BufferPool pool(&rtree_file_, &stats);
  const Vec3 center(50, 50, 50);
  auto got = rtree_.KnnQuery(&pool, center, 50);
  ASSERT_EQ(got.size(), 50u);
  double prev = -1.0;
  for (const auto& e : got) {
    const double d2 = e.box.DistanceSquaredTo(center);
    EXPECT_GE(d2, prev);
    prev = d2;
  }
}

TEST_F(KnnTest, FlatMatchesOracle) {
  IoStats stats;
  BufferPool pool(&flat_file_, &stats);
  Rng rng(503);
  Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  for (size_t k : {1u, 8u, 50u}) {
    for (int i = 0; i < 10; ++i) {
      const Vec3 center = rng.PointIn(universe);
      auto ids = flat_.KnnQuery(&pool, center, k);
      ExpectKnnMatches(entries_, center, ids, k);
    }
  }
}

TEST_F(KnnTest, KLargerThanDatasetReturnsEverything) {
  const auto small = testing::RandomEntries(20, 504);
  PageFile rf, ff;
  RTree rtree = BulkloadStr(&rf, small);
  FlatIndex flat = FlatIndex::Build(&ff, small);
  IoStats stats;
  BufferPool rpool(&rf, &stats), fpool(&ff, &stats);
  EXPECT_EQ(rtree.KnnQuery(&rpool, Vec3(0, 0, 0), 100).size(), 20u);
  EXPECT_EQ(flat.KnnQuery(&fpool, Vec3(0, 0, 0), 100).size(), 20u);
}

TEST_F(KnnTest, KZeroAndEmptyIndex) {
  IoStats stats;
  BufferPool pool(&rtree_file_, &stats);
  EXPECT_TRUE(rtree_.KnnQuery(&pool, Vec3(1, 2, 3), 0).empty());
  RTree empty;
  EXPECT_TRUE(empty.KnnQuery(&pool, Vec3(1, 2, 3), 5).empty());
  PageFile ef;
  FlatIndex empty_flat = FlatIndex::Build(&ef, {});
  BufferPool epool(&ef, &stats);
  EXPECT_TRUE(empty_flat.KnnQuery(&epool, Vec3(), 5).empty());
}

TEST_F(KnnTest, QueryPointFarOutsideUniverse) {
  IoStats stats;
  BufferPool rpool(&rtree_file_, &stats), fpool(&flat_file_, &stats);
  const Vec3 far(1e6, 1e6, 1e6);
  auto rtree_got = rtree_.KnnQuery(&rpool, far, 3);
  ASSERT_EQ(rtree_got.size(), 3u);
  std::vector<uint64_t> rtree_ids;
  for (const auto& e : rtree_got) rtree_ids.push_back(e.id);
  ExpectKnnMatches(entries_, far, rtree_ids, 3);
  auto flat_ids = flat_.KnnQuery(&fpool, far, 3);
  ExpectKnnMatches(entries_, far, flat_ids, 3);
}

TEST_F(KnnTest, BestFirstReadsFewPagesForSmallK) {
  IoStats stats;
  BufferPool pool(&rtree_file_, &stats);
  pool.Clear();
  IoStats before = stats;
  rtree_.KnnQuery(&pool, Vec3(50, 50, 50), 1);
  const uint64_t reads = stats.DeltaSince(before).TotalReads();
  // With overlapping element MBRs several leaves can tie at distance 0, so
  // "one path" is not exact — but best-first must stay far below a scan.
  const auto tree_stats = rtree_.ComputeStats();
  EXPECT_LT(reads, (tree_stats.leaf_pages + tree_stats.internal_pages) / 2)
      << "best-first 1-NN must not degenerate into a scan";
}

}  // namespace
}  // namespace flat
