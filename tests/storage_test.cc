#include <gtest/gtest.h>

#include <cstring>

#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/io_stats.h"
#include "storage/page_file.h"

namespace flat {
namespace {

TEST(PageFileTest, AllocateReturnsSequentialIdsAndZeroedPages) {
  PageFile file(4096);
  EXPECT_EQ(file.page_count(), 0u);
  PageId a = file.Allocate(PageCategory::kObject);
  PageId b = file.Allocate(PageCategory::kRTreeLeaf);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(file.page_count(), 2u);
  const char* data = file.Data(a);
  for (uint32_t i = 0; i < file.page_size(); ++i) {
    ASSERT_EQ(data[i], 0) << "page not zeroed at byte " << i;
  }
}

TEST(PageFileTest, MutableDataPersists) {
  PageFile file(512);
  PageId p = file.Allocate(PageCategory::kOther);
  std::memcpy(file.MutableData(p), "hello", 5);
  EXPECT_EQ(std::memcmp(file.Data(p), "hello", 5), 0);
}

TEST(PageFileTest, CategoriesAreTracked) {
  PageFile file;
  file.Allocate(PageCategory::kObject);
  file.Allocate(PageCategory::kObject);
  file.Allocate(PageCategory::kSeedLeaf);
  EXPECT_EQ(file.PageCountIn(PageCategory::kObject), 2u);
  EXPECT_EQ(file.PageCountIn(PageCategory::kSeedLeaf), 1u);
  EXPECT_EQ(file.PageCountIn(PageCategory::kRTreeInternal), 0u);
  EXPECT_EQ(file.category(2), PageCategory::kSeedLeaf);
  EXPECT_EQ(file.SizeBytes(), 3u * kDefaultPageSize);
}

TEST(IoStatsTest, CountsPerCategory) {
  IoStats stats;
  stats.RecordRead(PageCategory::kObject);
  stats.RecordRead(PageCategory::kObject);
  stats.RecordRead(PageCategory::kSeedLeaf);
  EXPECT_EQ(stats.ReadsIn(PageCategory::kObject), 2u);
  EXPECT_EQ(stats.ReadsIn(PageCategory::kSeedLeaf), 1u);
  EXPECT_EQ(stats.TotalReads(), 3u);
  EXPECT_EQ(stats.BytesRead(4096), 3u * 4096);
  stats.Reset();
  EXPECT_EQ(stats.TotalReads(), 0u);
}

TEST(IoStatsTest, DeltaSince) {
  IoStats stats;
  stats.RecordRead(PageCategory::kObject);
  IoStats snapshot = stats;
  stats.RecordRead(PageCategory::kObject);
  stats.RecordRead(PageCategory::kSeedInternal);
  IoStats delta = stats.DeltaSince(snapshot);
  EXPECT_EQ(delta.ReadsIn(PageCategory::kObject), 1u);
  EXPECT_EQ(delta.ReadsIn(PageCategory::kSeedInternal), 1u);
  EXPECT_EQ(delta.TotalReads(), 2u);
}

TEST(BufferPoolTest, MissThenHit) {
  PageFile file;
  PageId p = file.Allocate(PageCategory::kRTreeLeaf);
  IoStats stats;
  BufferPool pool(&file, &stats);
  pool.Read(p);
  EXPECT_EQ(stats.TotalReads(), 1u);
  pool.Read(p);
  pool.Read(p);
  EXPECT_EQ(stats.TotalReads(), 1u) << "hits must not be charged";
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, ClearColdCacheRecharges) {
  PageFile file;
  PageId p = file.Allocate(PageCategory::kObject);
  IoStats stats;
  BufferPool pool(&file, &stats);
  pool.Read(p);
  pool.Clear();
  EXPECT_FALSE(pool.IsCached(p));
  pool.Read(p);
  EXPECT_EQ(stats.TotalReads(), 2u);
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  PageFile file;
  PageId a = file.Allocate(PageCategory::kOther);
  PageId b = file.Allocate(PageCategory::kOther);
  PageId c = file.Allocate(PageCategory::kOther);
  IoStats stats;
  BufferPool pool(&file, &stats, /*capacity_pages=*/2);
  pool.Read(a);
  pool.Read(b);
  pool.Read(a);  // a is now MRU
  pool.Read(c);  // evicts b
  EXPECT_TRUE(pool.IsCached(a));
  EXPECT_FALSE(pool.IsCached(b));
  EXPECT_TRUE(pool.IsCached(c));
  pool.Read(b);  // miss again
  EXPECT_EQ(stats.TotalReads(), 4u);
}

TEST(BufferPoolTest, CategoriesChargedCorrectly) {
  PageFile file;
  PageId leaf = file.Allocate(PageCategory::kSeedLeaf);
  PageId object = file.Allocate(PageCategory::kObject);
  IoStats stats;
  BufferPool pool(&file, &stats);
  pool.Read(leaf);
  pool.Read(object);
  pool.Read(object);
  EXPECT_EQ(stats.ReadsIn(PageCategory::kSeedLeaf), 1u);
  EXPECT_EQ(stats.ReadsIn(PageCategory::kObject), 1u);
}

TEST(DiskModelTest, ElapsedTimeScalesWithReads) {
  DiskModel model;
  IoStats one, ten;
  one.RecordRead(PageCategory::kObject);
  for (int i = 0; i < 10; ++i) ten.RecordRead(PageCategory::kObject);
  const double t1 = model.ElapsedMs(one, 4096);
  const double t10 = model.ElapsedMs(ten, 4096);
  EXPECT_GT(t1, 0.0);
  EXPECT_NEAR(t10, 10.0 * t1, 1e-9);
}

TEST(DiskModelTest, PageReadTimeIsDominatedBySeek) {
  DiskModel model;
  // 4 KiB at 100 MB/s is ~40 µs; seek+rotation is 6.5 ms.
  EXPECT_NEAR(model.PageReadMs(4096), 6.5 + 0.04096, 1e-6);
}

TEST(DiskModelTest, CpuFractionInflatesElapsed) {
  DiskModel::Params params;
  params.cpu_fraction = 0.5;
  DiskModel model(params);
  IoStats stats;
  stats.RecordRead(PageCategory::kObject);
  EXPECT_NEAR(model.ElapsedMs(stats, 4096),
              2.0 * model.PageReadMs(4096), 1e-9);
}

}  // namespace
}  // namespace flat
