#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/epoch_page_table.h"
#include "storage/io_stats.h"
#include "storage/page_file.h"

namespace flat {
namespace {

TEST(PageFileTest, AllocateReturnsSequentialIdsAndZeroedPages) {
  PageFile file(4096);
  EXPECT_EQ(file.page_count(), 0u);
  PageId a = file.Allocate(PageCategory::kObject);
  PageId b = file.Allocate(PageCategory::kRTreeLeaf);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(file.page_count(), 2u);
  const char* data = file.Data(a);
  for (uint32_t i = 0; i < file.page_size(); ++i) {
    ASSERT_EQ(data[i], 0) << "page not zeroed at byte " << i;
  }
}

TEST(PageFileTest, MutableDataPersists) {
  PageFile file(512);
  PageId p = file.Allocate(PageCategory::kOther);
  std::memcpy(file.MutableData(p), "hello", 5);
  EXPECT_EQ(std::memcmp(file.Data(p), "hello", 5), 0);
}

TEST(PageFileTest, CategoriesAreTracked) {
  PageFile file;
  file.Allocate(PageCategory::kObject);
  file.Allocate(PageCategory::kObject);
  file.Allocate(PageCategory::kSeedLeaf);
  EXPECT_EQ(file.PageCountIn(PageCategory::kObject), 2u);
  EXPECT_EQ(file.PageCountIn(PageCategory::kSeedLeaf), 1u);
  EXPECT_EQ(file.PageCountIn(PageCategory::kRTreeInternal), 0u);
  EXPECT_EQ(file.category(2), PageCategory::kSeedLeaf);
  EXPECT_EQ(file.SizeBytes(), 3u * kDefaultPageSize);
}

// The pointer-stability contract the crawl depends on: a pointer returned
// by Data/MutableData keeps aliasing the same page across any number of
// later Allocate calls (slab arenas are never moved or freed). This test
// crosses several slab boundaries to prove stability does not hinge on
// staying inside one slab.
TEST(PageFileTest, DataPointersStayStableAcrossAllocateGrowth) {
  PageFile file(64);  // smallest page -> most pages per slab arena
  const PageId first = file.Allocate(PageCategory::kObject);
  std::memcpy(file.MutableData(first), "stable", 6);
  const char* const first_ptr = file.Data(first);

  // Grow well past several slab boundaries, tagging a sample of pages.
  const size_t grow_to = static_cast<size_t>(file.pages_per_slab()) * 3 + 17;
  std::vector<std::pair<PageId, const char*>> samples = {{first, first_ptr}};
  while (file.page_count() < grow_to) {
    const PageId id = file.Allocate(PageCategory::kOther);
    if (id % 1000 == 0) {
      std::memcpy(file.MutableData(id), &id, sizeof(id));
      samples.push_back({id, file.Data(id)});
    }
  }

  EXPECT_EQ(file.Data(first), first_ptr)
      << "Allocate growth must not move existing pages";
  EXPECT_EQ(std::memcmp(first_ptr, "stable", 6), 0);
  for (const auto& [id, ptr] : samples) {
    EXPECT_EQ(file.Data(id), ptr) << "page " << id;
  }
  // Pages within one slab are contiguous: neighbors that do not straddle a
  // slab boundary sit exactly page_size apart.
  const PageId a = file.pages_per_slab() - 2;
  EXPECT_EQ(file.Data(a) + file.page_size(), file.Data(a + 1));
}

TEST(PageFileTest, SlabBoundaryPagesAreZeroedAndTagged) {
  PageFile file(64);
  const size_t per_slab = file.pages_per_slab();
  for (size_t i = 0; i < per_slab + 2; ++i) {
    file.Allocate(i % 2 == 0 ? PageCategory::kObject
                             : PageCategory::kSeedLeaf);
  }
  // First page of the second slab: zeroed, correct category.
  const PageId boundary = static_cast<PageId>(per_slab);
  const char* data = file.Data(boundary);
  for (uint32_t i = 0; i < file.page_size(); ++i) {
    ASSERT_EQ(data[i], 0) << "slab-boundary page not zeroed at byte " << i;
  }
  EXPECT_EQ(file.category(boundary), PageCategory::kObject);
  // Even ids 0..per_slab and odd ids 1..per_slab+1: per_slab/2 + 1 each.
  EXPECT_EQ(file.PageCountIn(PageCategory::kObject), per_slab / 2 + 1);
  EXPECT_EQ(file.PageCountIn(PageCategory::kSeedLeaf), per_slab / 2 + 1);
}

TEST(EpochPageTableTest, UnboundedTouchInsertContains) {
  EpochPageTable table;
  EXPECT_FALSE(table.Touch(5));
  table.Insert(5);
  EXPECT_TRUE(table.Touch(5));
  EXPECT_TRUE(table.Contains(5));
  EXPECT_FALSE(table.Contains(4));
  EXPECT_EQ(table.size(), 1u);
  table.Insert(100000);  // sparse high id: direct-mapped growth
  EXPECT_TRUE(table.Contains(100000));
  EXPECT_EQ(table.size(), 2u);
}

TEST(EpochPageTableTest, ClearIsColdAndReusable) {
  EpochPageTable table;
  for (PageId id = 0; id < 64; ++id) table.Insert(id);
  EXPECT_EQ(table.size(), 64u);
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  for (PageId id = 0; id < 64; ++id) {
    EXPECT_FALSE(table.Contains(id)) << "page " << id << " survived Clear";
  }
  // Many epochs of reuse keep behaving like fresh tables.
  for (int epoch = 0; epoch < 1000; ++epoch) {
    EXPECT_FALSE(table.Touch(7));
    table.Insert(7);
    EXPECT_TRUE(table.Touch(7));
    table.Clear();
  }
}

// The exact LRU semantics the former list+hash implementation had; the
// eviction order decides which reads are misses, so IoStats parity depends
// on it.
TEST(EpochPageTableTest, BoundedEvictsLeastRecentlyUsed) {
  EpochPageTable table(/*capacity=*/2);
  table.Insert(1);
  table.Insert(2);
  EXPECT_TRUE(table.Touch(1));   // 1 becomes MRU
  table.Insert(3);               // evicts 2
  EXPECT_TRUE(table.Contains(1));
  EXPECT_FALSE(table.Contains(2));
  EXPECT_TRUE(table.Contains(3));
  EXPECT_EQ(table.size(), 2u);
  table.Insert(2);               // now 1 is LRU (3 was the last insert)
  EXPECT_FALSE(table.Contains(1));
  EXPECT_TRUE(table.Contains(3));
  EXPECT_TRUE(table.Contains(2));
}

TEST(EpochPageTableTest, BoundedSingleSlotChurn) {
  EpochPageTable table(/*capacity=*/1);
  for (PageId id = 0; id < 100; ++id) {
    table.Insert(id);
    EXPECT_TRUE(table.Contains(id));
    if (id > 0) EXPECT_FALSE(table.Contains(id - 1));
    EXPECT_EQ(table.size(), 1u);
  }
}

TEST(IoStatsTest, CountsPerCategory) {
  IoStats stats;
  stats.RecordRead(PageCategory::kObject);
  stats.RecordRead(PageCategory::kObject);
  stats.RecordRead(PageCategory::kSeedLeaf);
  EXPECT_EQ(stats.ReadsIn(PageCategory::kObject), 2u);
  EXPECT_EQ(stats.ReadsIn(PageCategory::kSeedLeaf), 1u);
  EXPECT_EQ(stats.TotalReads(), 3u);
  EXPECT_EQ(stats.BytesRead(4096), 3u * 4096);
  stats.Reset();
  EXPECT_EQ(stats.TotalReads(), 0u);
}

TEST(IoStatsTest, DeltaSince) {
  IoStats stats;
  stats.RecordRead(PageCategory::kObject);
  IoStats snapshot = stats;
  stats.RecordRead(PageCategory::kObject);
  stats.RecordRead(PageCategory::kSeedInternal);
  IoStats delta = stats.DeltaSince(snapshot);
  EXPECT_EQ(delta.ReadsIn(PageCategory::kObject), 1u);
  EXPECT_EQ(delta.ReadsIn(PageCategory::kSeedInternal), 1u);
  EXPECT_EQ(delta.TotalReads(), 2u);
}

TEST(BufferPoolTest, MissThenHit) {
  PageFile file;
  PageId p = file.Allocate(PageCategory::kRTreeLeaf);
  IoStats stats;
  BufferPool pool(&file, &stats);
  pool.Read(p);
  EXPECT_EQ(stats.TotalReads(), 1u);
  pool.Read(p);
  pool.Read(p);
  EXPECT_EQ(stats.TotalReads(), 1u) << "hits must not be charged";
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, ClearColdCacheRecharges) {
  PageFile file;
  PageId p = file.Allocate(PageCategory::kObject);
  IoStats stats;
  BufferPool pool(&file, &stats);
  pool.Read(p);
  pool.Clear();
  EXPECT_FALSE(pool.IsCached(p));
  pool.Read(p);
  EXPECT_EQ(stats.TotalReads(), 2u);
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  PageFile file;
  PageId a = file.Allocate(PageCategory::kOther);
  PageId b = file.Allocate(PageCategory::kOther);
  PageId c = file.Allocate(PageCategory::kOther);
  IoStats stats;
  BufferPool pool(&file, &stats, /*capacity_pages=*/2);
  pool.Read(a);
  pool.Read(b);
  pool.Read(a);  // a is now MRU
  pool.Read(c);  // evicts b
  EXPECT_TRUE(pool.IsCached(a));
  EXPECT_FALSE(pool.IsCached(b));
  EXPECT_TRUE(pool.IsCached(c));
  pool.Read(b);  // miss again
  EXPECT_EQ(stats.TotalReads(), 4u);
}

TEST(BufferPoolTest, CategoriesChargedCorrectly) {
  PageFile file;
  PageId leaf = file.Allocate(PageCategory::kSeedLeaf);
  PageId object = file.Allocate(PageCategory::kObject);
  IoStats stats;
  BufferPool pool(&file, &stats);
  pool.Read(leaf);
  pool.Read(object);
  pool.Read(object);
  EXPECT_EQ(stats.ReadsIn(PageCategory::kSeedLeaf), 1u);
  EXPECT_EQ(stats.ReadsIn(PageCategory::kObject), 1u);
}

TEST(DiskModelTest, ElapsedTimeScalesWithReads) {
  DiskModel model;
  IoStats one, ten;
  one.RecordRead(PageCategory::kObject);
  for (int i = 0; i < 10; ++i) ten.RecordRead(PageCategory::kObject);
  const double t1 = model.ElapsedMs(one, 4096);
  const double t10 = model.ElapsedMs(ten, 4096);
  EXPECT_GT(t1, 0.0);
  EXPECT_NEAR(t10, 10.0 * t1, 1e-9);
}

TEST(DiskModelTest, PageReadTimeIsDominatedBySeek) {
  DiskModel model;
  // 4 KiB at 100 MB/s is ~40 µs; seek+rotation is 6.5 ms.
  EXPECT_NEAR(model.PageReadMs(4096), 6.5 + 0.04096, 1e-6);
}

TEST(DiskModelTest, CpuFractionInflatesElapsed) {
  DiskModel::Params params;
  params.cpu_fraction = 0.5;
  DiskModel model(params);
  IoStats stats;
  stats.RecordRead(PageCategory::kObject);
  EXPECT_NEAR(model.ElapsedMs(stats, 4096),
              2.0 * model.PageReadMs(4096), 1e-9);
}

// cpu_fraction == 1.0 would divide by zero in ElapsedMs; the constructor
// must reject it (and the rest of the nonsensical parameter space) up front
// rather than return inf/NaN timings at query time.
TEST(DiskModelTest, RejectsInvalidParams) {
  DiskModel::Params params;
  params.cpu_fraction = 1.0;
  EXPECT_THROW(DiskModel{params}, std::invalid_argument);

  params = DiskModel::Params();
  params.cpu_fraction = 1.5;
  EXPECT_THROW(DiskModel{params}, std::invalid_argument);

  params = DiskModel::Params();
  params.cpu_fraction = -0.25;
  EXPECT_THROW(DiskModel{params}, std::invalid_argument);

  params = DiskModel::Params();
  params.transfer_mb_per_s = 0.0;
  EXPECT_THROW(DiskModel{params}, std::invalid_argument);

  params = DiskModel::Params();
  params.seek_ms = -1.0;
  EXPECT_THROW(DiskModel{params}, std::invalid_argument);

  // The boundary below the divide-by-zero pole is fine.
  params = DiskModel::Params();
  params.cpu_fraction = 0.999;
  EXPECT_NO_THROW(DiskModel{params});
}

}  // namespace
}  // namespace flat
