// The aggregate-augmented seed hierarchy (rtree/aggregates.h): stored
// subtree counts must equal brute-force subtree cardinality on every build
// configuration, pruned queries must be bit-identical to the exact paths,
// the sidecar must round-trip deterministically and reject hostile bytes,
// and the sharded covered-shard shortcut must agree with the oracle across
// shard/thread counts, overlay churn, compaction and disk round-trips.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/flat_index.h"
#include "core/metadata.h"
#include "data/mesh_generator.h"
#include "data/neuron_generator.h"
#include "data/uniform_generator.h"
#include "engine/query_engine.h"
#include "rtree/aggregates.h"
#include "rtree/node.h"
#include "shard/sharded_flat_store.h"
#include "storage/buffer_pool.h"
#include "storage/persistence.h"
#include "tests/test_util.h"

namespace flat {
namespace {

using testing::BruteForce;
using testing::RandomEntries;
using testing::RandomQueries;
using testing::Sorted;

// ---------------------------------------------------------------------------
// Stored counts == brute-force subtree cardinality, on every format.
// ---------------------------------------------------------------------------

// Recomputes one subtree's totals by exhaustive page traversal — the oracle
// the sidecar entries are checked against — while asserting every slot's
// stored entry along the way. (Out-param because gtest ASSERTs require a
// void-returning function.)
void SubtreeOracle(const PageFile& file, const SeedAggregates& agg,
                   PageId page, bool is_leaf, AggEntry* out) {
  AggEntry total{0, 1};  // this page
  if (is_leaf) {
    SeedLeafView leaf(file.Data(page));
    for (uint16_t slot = 0; slot < leaf.count(); ++slot) {
      const NodeView elements(
          file.Data(leaf.RecordAt(slot).object_page()));
      const AggEntry* stored = agg.Find(page, slot);
      ASSERT_NE(stored, nullptr) << "page " << page << " slot " << slot;
      EXPECT_EQ(stored->elements, elements.count());
      EXPECT_EQ(stored->pages, 1u);  // the object page
      total.elements += elements.count();
      total.pages += 1;
    }
    *out = total;
    return;
  }
  const NodeView node(file.Data(page));
  const bool children_are_leaves = node.level() == 1;
  for (uint16_t i = 0; i < node.count(); ++i) {
    PageId child;
    if (node.format() == NodeFormat::kQuantized) {
      child = CompressedNodeView(file.Data(page)).ChildIdAt(i);
    } else {
      child = static_cast<PageId>(node.IdAt(i));
    }
    AggEntry want{0, 0};
    ASSERT_NO_FATAL_FAILURE(
        SubtreeOracle(file, agg, child, children_are_leaves, &want));
    const AggEntry* stored = agg.Find(page, i);
    ASSERT_NE(stored, nullptr) << "page " << page << " slot " << i;
    EXPECT_EQ(stored->elements, want.elements)
        << "page " << page << " slot " << i;
    EXPECT_EQ(stored->pages, want.pages) << "page " << page << " slot " << i;
    total.elements += want.elements;
    total.pages += want.pages;
  }
  *out = total;
}

using CardinalityParam = std::tuple<int, uint32_t, bool>;  // dataset, page, fmt

class AggregateCardinalityTest
    : public ::testing::TestWithParam<CardinalityParam> {};

TEST_P(AggregateCardinalityTest, StoredCountsMatchBruteForce) {
  const auto [dataset_kind, page_size, compressed] = GetParam();
  Dataset dataset;
  switch (dataset_kind) {
    case 0: {
      NeuronParams params;
      params.total_elements = 6000;
      dataset = GenerateNeurons(params);
      break;
    }
    case 1: {
      MeshParams params;
      params.target_triangles = 6000;
      dataset = GenerateMesh(params);
      break;
    }
    default: {
      UniformBoxParams params;
      params.count = 6000;
      dataset = GenerateUniformBoxes(params);
      break;
    }
  }

  PageFile file(page_size);
  FlatIndex::BuildOptions options;
  options.aggregate_counts = true;
  options.compressed_seed_pages = compressed;
  FlatIndex index = FlatIndex::Build(&file, dataset.elements, options);

  ASSERT_TRUE(index.has_aggregates());
  const SeedAggregates& agg = *index.aggregates();
  EXPECT_EQ(agg.total_elements(), dataset.elements.size());

  const auto descriptor = index.descriptor();
  AggEntry root{0, 0};
  ASSERT_NO_FATAL_FAILURE(SubtreeOracle(file, agg, descriptor.seed_root,
                                        descriptor.root_is_leaf, &root));
  EXPECT_EQ(root.elements, dataset.elements.size());
}

std::string CardinalityParamName(
    const ::testing::TestParamInfo<CardinalityParam>& info) {
  const char* name = std::get<0>(info.param) == 0   ? "Neuron"
                     : std::get<0>(info.param) == 1 ? "Mesh"
                                                    : "Uniform";
  return std::string(name) + std::to_string(std::get<1>(info.param)) +
         (std::get<2>(info.param) ? "Compressed" : "Exact");
}

INSTANTIATE_TEST_SUITE_P(
    DatasetPageFormat, AggregateCardinalityTest,
    ::testing::Combine(::testing::Values(0, 1, 2),          // neuron/mesh/unif
                       ::testing::Values<uint32_t>(512, 4096),
                       ::testing::Bool()),                  // exact/compressed
    CardinalityParamName);

// ---------------------------------------------------------------------------
// The option is sidecar-only: PageFile bytes never change.
// ---------------------------------------------------------------------------

TEST(AggregateBuildTest, PageFileBytesIdenticalWithAndWithoutAggregates) {
  const auto entries = RandomEntries(5000, 901);
  PageFile plain_file, agg_file;
  FlatIndex::BuildOptions with;
  with.aggregate_counts = true;
  FlatIndex::Build(&plain_file, entries);
  FlatIndex index = FlatIndex::Build(&agg_file, entries, with);
  ASSERT_TRUE(index.has_aggregates());

  std::ostringstream plain_bytes, agg_bytes;
  SavePageFile(plain_file, plain_bytes);
  SavePageFile(agg_file, agg_bytes);
  EXPECT_EQ(plain_bytes.str(), agg_bytes.str());
}

TEST(AggregateBuildTest, SidecarIsByteIdenticalAcrossThreadCounts) {
  const auto entries = RandomEntries(8000, 902);
  std::string serial_bytes;
  for (const size_t threads : {1u, 4u}) {
    PageFile file;
    FlatIndex::BuildOptions options;
    options.num_threads = threads;
    options.aggregate_counts = true;
    FlatIndex index = FlatIndex::Build(&file, entries, options);
    ASSERT_TRUE(index.has_aggregates());
    std::ostringstream out;
    SaveSeedAggregates(*index.aggregates(), out);
    if (threads == 1) {
      serial_bytes = out.str();
      EXPECT_FALSE(serial_bytes.empty());
    } else {
      EXPECT_EQ(out.str(), serial_bytes);
    }
  }
}

// A single empty or non-finite element box disables aggregation for the
// whole build: such elements are invisible to the intersection gates, so
// stored counts would otherwise overcount what queries can return.
TEST(AggregateBuildTest, DegenerateElementBoxesDisableAggregates) {
  auto entries = RandomEntries(500, 903);
  entries[250].box = Aabb();  // empty: lo > hi
  PageFile file;
  FlatIndex::BuildOptions options;
  options.aggregate_counts = true;
  FlatIndex index = FlatIndex::Build(&file, entries, options);
  EXPECT_FALSE(index.has_aggregates());
}

// ---------------------------------------------------------------------------
// Sidecar persistence: deterministic round-trip, hostile-input rejection.
// ---------------------------------------------------------------------------

TEST(AggregateSidecarTest, RoundTripIsByteIdentical) {
  const auto entries = RandomEntries(4000, 904);
  PageFile file;
  FlatIndex::BuildOptions options;
  options.aggregate_counts = true;
  FlatIndex index = FlatIndex::Build(&file, entries, options);
  ASSERT_TRUE(index.has_aggregates());

  std::ostringstream first;
  SaveSeedAggregates(*index.aggregates(), first);
  std::istringstream in(first.str());
  const SeedAggregates loaded = LoadSeedAggregates(in);
  EXPECT_EQ(loaded.total_elements(), index.aggregates()->total_elements());
  EXPECT_EQ(loaded.page_count(), index.aggregates()->page_count());
  std::ostringstream second;
  SaveSeedAggregates(loaded, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(AggregateSidecarTest, HostileInputsAreRejected) {
  const auto entries = RandomEntries(1000, 905);
  PageFile file;
  FlatIndex::BuildOptions options;
  options.aggregate_counts = true;
  FlatIndex index = FlatIndex::Build(&file, entries, options);
  std::ostringstream out;
  SaveSeedAggregates(*index.aggregates(), out);
  const std::string good = out.str();

  {
    std::istringstream bad_magic("NOTANAGG" + good.substr(8));
    EXPECT_THROW(LoadSeedAggregates(bad_magic), std::runtime_error);
  }
  {
    // Truncation anywhere past the magic must throw, never return garbage.
    for (const size_t cut : {9ul, 16ul, 24ul, good.size() - 1}) {
      std::istringstream truncated(good.substr(0, cut));
      EXPECT_THROW(LoadSeedAggregates(truncated), std::runtime_error)
          << "cut at " << cut;
    }
  }
  {
    // A group count far beyond the remaining bytes must be rejected before
    // any allocation sized from it.
    std::string huge = good;
    const uint64_t absurd = ~0ull;
    std::memcpy(&huge[16], &absurd, sizeof(absurd));
    std::istringstream in(huge);
    EXPECT_THROW(LoadSeedAggregates(in), std::runtime_error);
  }
}

// ---------------------------------------------------------------------------
// Pruned vs exact bit-identity at the FlatIndex level.
// ---------------------------------------------------------------------------

class AggregatePruningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    entries_ = RandomEntries(8000, 906);
    FlatIndex::BuildOptions with;
    with.aggregate_counts = true;
    plain_ = FlatIndex::Build(&plain_file_, entries_);
    pruned_ = FlatIndex::Build(&pruned_file_, entries_, with);
    ASSERT_TRUE(pruned_.has_aggregates());
  }

  std::vector<Aabb> MixedQueries() {
    // Random mid-size boxes plus large boxes that fully cover many
    // subtrees — the regime the pruning exists for — plus the universe.
    std::vector<Aabb> queries = RandomQueries(12, 907);
    queries.push_back(Aabb(Vec3(10, 10, 10), Vec3(90, 90, 90)));
    queries.push_back(Aabb(Vec3(-1, -1, -1), Vec3(101, 101, 101)));
    // Entry boxes reach ~103 (lo in [0,100], side up to 3), so only this one
    // actually covers every partition MBR.
    queries.push_back(Aabb(Vec3(-5, -5, -5), Vec3(110, 110, 110)));
    queries.push_back(Aabb());  // empty: matches nothing
    return queries;
  }

  std::vector<RTreeEntry> entries_;
  PageFile plain_file_, pruned_file_;
  FlatIndex plain_, pruned_;
};

TEST_F(AggregatePruningTest, RangeCountMatchesExactPathAndOracle) {
  for (const Aabb& q : MixedQueries()) {
    IoStats plain_io, pruned_io;
    BufferPool plain_pool(&plain_file_, &plain_io);
    BufferPool pruned_pool(&pruned_file_, &pruned_io);
    const size_t want = plain_.RangeCount(&plain_pool, q);
    const size_t got = pruned_.RangeCount(&pruned_pool, q);
    EXPECT_EQ(got, want);
    EXPECT_EQ(got, BruteForce(entries_, q).size());
  }
}

TEST_F(AggregatePruningTest, LargeCoveredBoxCountsWithFarFewerReads) {
  // Covers every partition: the whole answer rolls up from stored counts
  // high in the seed tree, so the pruned path touches O(height) pages while
  // the exact path reads every object page. 3x is deliberately loose — the
  // real ratio on this workload is the full page count.
  const Aabb big(Vec3(-5, -5, -5), Vec3(110, 110, 110));
  IoStats plain_io, pruned_io;
  BufferPool plain_pool(&plain_file_, &plain_io);
  BufferPool pruned_pool(&pruned_file_, &pruned_io);
  ASSERT_EQ(pruned_.RangeCount(&pruned_pool, big),
            plain_.RangeCount(&plain_pool, big));
  EXPECT_LT(pruned_io.TotalReads() * 3, plain_io.TotalReads());

  // A box straddling partitions still prunes its interior: strictly fewer
  // reads, never more, and boundary partitions are gated exactly.
  const Aabb mid(Vec3(5, 5, 5), Vec3(95, 95, 95));
  IoStats plain_mid_io, pruned_mid_io;
  BufferPool plain_mid_pool(&plain_file_, &plain_mid_io);
  BufferPool pruned_mid_pool(&pruned_file_, &pruned_mid_io);
  ASSERT_EQ(pruned_.RangeCount(&pruned_mid_pool, mid),
            plain_.RangeCount(&plain_mid_pool, mid));
  EXPECT_LT(pruned_mid_io.TotalReads(), plain_mid_io.TotalReads());
}

TEST_F(AggregatePruningTest, SeedScanResultsAndObjectReadsAreIdentical) {
  for (const Aabb& q : MixedQueries()) {
    IoStats plain_io, pruned_io;
    BufferPool plain_pool(&plain_file_, &plain_io);
    BufferPool pruned_pool(&pruned_file_, &pruned_io);
    std::vector<uint64_t> want, got;
    plain_.RangeQueryViaSeedScan(&plain_pool, q, &want);
    pruned_.RangeQueryViaSeedScan(&pruned_pool, q, &got);
    // Bit-identical including traversal order, and the covered-leaf
    // batch-copy still reads every candidate object page (same I/O).
    EXPECT_EQ(got, want);
    EXPECT_EQ(pruned_io.ReadsIn(PageCategory::kObject),
              plain_io.ReadsIn(PageCategory::kObject));
  }
}

TEST_F(AggregatePruningTest, CrawlRangeQueryIsUntouchedByAggregates) {
  for (const Aabb& q : MixedQueries()) {
    IoStats plain_io, pruned_io;
    BufferPool plain_pool(&plain_file_, &plain_io);
    BufferPool pruned_pool(&pruned_file_, &pruned_io);
    std::vector<uint64_t> want, got;
    plain_.RangeQuery(&plain_pool, q, &want);
    pruned_.RangeQuery(&pruned_pool, q, &got);
    EXPECT_EQ(got, want);
    for (int c = 0; c < kNumPageCategories; ++c) {
      EXPECT_EQ(pruned_io.ReadsIn(static_cast<PageCategory>(c)),
                plain_io.ReadsIn(static_cast<PageCategory>(c)));
    }
  }
}

TEST_F(AggregatePruningTest, CompressedSeedPagesPruneConservatively) {
  PageFile compressed_file;
  FlatIndex::BuildOptions options;
  options.aggregate_counts = true;
  options.compressed_seed_pages = true;
  FlatIndex compressed = FlatIndex::Build(&compressed_file, entries_, options);
  ASSERT_TRUE(compressed.has_aggregates());
  for (const Aabb& q : MixedQueries()) {
    IoStats io;
    BufferPool pool(&compressed_file, &io);
    EXPECT_EQ(compressed.RangeCount(&pool, q), BruteForce(entries_, q).size());
  }
}

// ---------------------------------------------------------------------------
// Partial counts under a tripped QueryControl.
// ---------------------------------------------------------------------------

TEST(AggregatePartialCountTest, BudgetStopKeepsAccumulatedTally) {
  const auto entries = RandomEntries(8000, 908);
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, entries);
  const Aabb universe(Vec3(-1, -1, -1), Vec3(101, 101, 101));

  QueryEngine engine(&index, QueryEngine::Options{.threads = 1});
  const std::vector<QueryResult> full =
      engine.Run({Query::RangeCount(universe)});
  ASSERT_EQ(full[0].status, QueryStatus::kOk);
  ASSERT_EQ(full[0].count, entries.size());
  const uint64_t full_reads = full[0].io.TotalReads();

  QueryControl capped;
  capped.max_page_reads = full_reads / 2;
  Query query = Query::RangeCount(universe);
  query.control = &capped;
  const std::vector<QueryResult> partial = engine.Run({query});
  EXPECT_EQ(partial[0].status, QueryStatus::kBudgetExceeded);
  // The partial tally survives: a strict, non-zero lower bound on the
  // exact count (the old behavior reported 0).
  EXPECT_GT(partial[0].count, 0u);
  EXPECT_LT(partial[0].count, full[0].count);
  EXPECT_TRUE(partial[0].ids.empty());
}

// ---------------------------------------------------------------------------
// Sharded store: covered-shard shortcut, overlay churn, persistence.
// ---------------------------------------------------------------------------

TEST(AggregateShardedTest, CoveredShardShortcutSkipsAllReads) {
  const auto entries = RandomEntries(10000, 909);
  ShardedFlatStore::Options options;
  options.num_shards = 5;
  options.aggregate_counts = true;
  ShardedFlatStore store = ShardedFlatStore::Build(entries, options);

  // The universe covers every shard: the count comes straight off the
  // catalog — zero page reads — and still equals the oracle.
  const Aabb universe(Vec3(-5, -5, -5), Vec3(110, 110, 110));
  IoStats io;
  EXPECT_EQ(store.RangeCount(universe, &io), entries.size());
  EXPECT_EQ(io.TotalReads(), 0u);

  // A box covering no shard entirely still answers exactly.
  for (const Aabb& q : RandomQueries(8, 910)) {
    EXPECT_EQ(store.RangeCount(q), BruteForce(entries, q).size());
  }
}

TEST(AggregateShardedTest, OverlayChurnDisablesShortcutButStaysExact) {
  const auto entries = RandomEntries(6000, 911);
  for (const size_t shards : {1u, 5u}) {
    for (const size_t threads : {1u, 4u}) {
      testing::ScheduleConfig config;
      config.initial = entries;
      config.options.num_shards = shards;
      config.options.num_threads = threads;
      config.options.aggregate_counts = true;
      config.seed = 912 + shards * 10 + threads;
      EXPECT_TRUE(testing::ReplaySchedule(
          config, testing::MakeSchedule(200, config.seed, 8000)));
    }
  }
}

TEST(AggregateShardedTest, CountsMatchUnprunedStoreOverOverlayLifecycle) {
  const auto entries = RandomEntries(6000, 913);
  ShardedFlatStore::Options pruned_options;
  pruned_options.num_shards = 4;
  pruned_options.aggregate_counts = true;
  ShardedFlatStore pruned = ShardedFlatStore::Build(entries, pruned_options);
  ShardedFlatStore::Options plain_options;
  plain_options.num_shards = 4;
  ShardedFlatStore plain = ShardedFlatStore::Build(entries, plain_options);

  const Aabb universe(Vec3(-5, -5, -5), Vec3(110, 110, 110));
  auto check = [&](const char* phase) {
    SCOPED_TRACE(phase);
    EXPECT_EQ(pruned.RangeCount(universe), plain.RangeCount(universe));
    for (const Aabb& q : RandomQueries(6, 914)) {
      EXPECT_EQ(pruned.RangeCount(q), plain.RangeCount(q));
      EXPECT_EQ(pruned.RangeQuery(q), plain.RangeQuery(q));
    }
  };
  check("fresh build");

  for (auto* store : {&pruned, &plain}) {
    store->Insert(RTreeEntry{
        Aabb(Vec3(50, 50, 50), Vec3(51, 51, 51)), 999999});
    store->Erase(entries[100].id);
    store->Erase(entries[2000].id);
  }
  check("overlay window open");

  pruned.Compact();
  plain.Compact();
  check("after compaction");
  // The compacted rebuild re-enables the shortcut (aggregates rebuilt).
  IoStats io;
  EXPECT_EQ(pruned.RangeCount(universe, &io),
            plain.RangeCount(universe));
  EXPECT_EQ(io.TotalReads(), 0u);
}

TEST(AggregateShardedTest, SaveLoadRoundTripsSidecars) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "flat_aggregate_sharded_test";
  fs::remove_all(dir);

  const auto entries = RandomEntries(6000, 915);
  ShardedFlatStore::Options options;
  options.num_shards = 3;
  options.aggregate_counts = true;
  ShardedFlatStore store = ShardedFlatStore::Build(entries, options);
  store.Save(dir.string());
  ASSERT_TRUE(fs::exists(dir / "shard-0000.pgf.agg"));

  for (const auto backend : {ShardedFlatStore::LoadBackend::kDisk,
                             ShardedFlatStore::LoadBackend::kMemory}) {
    SCOPED_TRACE(backend == ShardedFlatStore::LoadBackend::kDisk ? "disk"
                                                                 : "memory");
    ShardedFlatStore loaded =
        ShardedFlatStore::Load(dir.string(), /*num_threads=*/1, backend);
    for (size_t s = 0; s < loaded.shard_count(); ++s) {
      EXPECT_TRUE(loaded.shard_index(s).has_aggregates()) << "shard " << s;
    }
    const Aabb universe(Vec3(-5, -5, -5), Vec3(110, 110, 110));
    IoStats io;
    EXPECT_EQ(loaded.RangeCount(universe, &io), entries.size());
    EXPECT_EQ(io.TotalReads(), 0u);  // shortcut alive after reload
    for (const Aabb& q : RandomQueries(6, 916)) {
      EXPECT_EQ(loaded.RangeCount(q), BruteForce(entries, q).size());
      EXPECT_EQ(Sorted(loaded.RangeQuery(q)), BruteForce(entries, q));
    }
  }

  // A corrupt sidecar must be rejected at Load, not believed at query time.
  {
    std::ofstream corrupt(dir / "shard-0000.pgf.agg",
                          std::ios::binary | std::ios::trunc);
    corrupt << "FLATAGG1 but then garbage";
  }
  EXPECT_THROW(ShardedFlatStore::Load(dir.string()), std::runtime_error);

  // Saving a store without aggregates into the same directory removes the
  // stale sidecars: page bytes and counts must never come from different
  // generations.
  ShardedFlatStore::Options plain_options;
  plain_options.num_shards = 3;
  ShardedFlatStore plain = ShardedFlatStore::Build(entries, plain_options);
  plain.Save(dir.string());
  EXPECT_FALSE(fs::exists(dir / "shard-0000.pgf.agg"));
  ShardedFlatStore reloaded = ShardedFlatStore::Load(dir.string());
  for (size_t s = 0; s < reloaded.shard_count(); ++s) {
    EXPECT_FALSE(reloaded.shard_index(s).has_aggregates());
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace flat
