#include "geometry/morton.h"

#include <gtest/gtest.h>

#include <set>

namespace flat {
namespace {

TEST(Morton3DTest, KnownInterleavings) {
  EXPECT_EQ(Morton3D::Encode(0, 0, 0), 0u);
  EXPECT_EQ(Morton3D::Encode(1, 0, 0), 0b001u);
  EXPECT_EQ(Morton3D::Encode(0, 1, 0), 0b010u);
  EXPECT_EQ(Morton3D::Encode(0, 0, 1), 0b100u);
  EXPECT_EQ(Morton3D::Encode(1, 1, 1), 0b111u);
  EXPECT_EQ(Morton3D::Encode(2, 0, 0), 0b001000u);
  EXPECT_EQ(Morton3D::Encode(3, 5, 1), // x=011 y=101 z=001
            // bit0: x=1,y=1,z=1 -> 111; bit1: x=1,y=0,z=0 -> 001;
            // bit2: x=0,y=1,z=0 -> 010
            0b010'001'111u);
}

TEST(Morton3DTest, EncodeDecodeRoundTrip) {
  for (uint32_t x : {0u, 1u, 7u, 100u, 4095u, (1u << 21) - 1}) {
    for (uint32_t y : {0u, 3u, 512u, (1u << 21) - 1}) {
      for (uint32_t z : {0u, 9u, 77777u}) {
        uint64_t code = Morton3D::Encode(x, y, z);
        uint32_t rx, ry, rz;
        Morton3D::Decode(code, &rx, &ry, &rz);
        EXPECT_EQ(rx, x);
        EXPECT_EQ(ry, y);
        EXPECT_EQ(rz, z);
      }
    }
  }
}

TEST(Morton3DTest, BijectionAtTwoBits) {
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < 4; ++x) {
    for (uint32_t y = 0; y < 4; ++y) {
      for (uint32_t z = 0; z < 4; ++z) {
        seen.insert(Morton3D::Encode(x, y, z, 2));
      }
    }
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Morton3DTest, EncodePointMatchesManualQuantization) {
  Aabb bounds(Vec3(0, 0, 0), Vec3(8, 8, 8));
  // With 3 bits, cell size is 1; point (1.5, 2.5, 3.5) -> cell (1, 2, 3).
  EXPECT_EQ(Morton3D::EncodePoint(Vec3(1.5, 2.5, 3.5), bounds, 3),
            Morton3D::Encode(1, 2, 3, 3));
}

}  // namespace
}  // namespace flat
