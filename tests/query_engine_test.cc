// The QueryEngine contract: parallel batch execution returns per-query
// results bit-identical to the serial FlatIndex calls, and merged IoStats
// totals that exactly equal serial execution's, at every thread count and in
// both CrawlGuard modes.
#include "engine/query_engine.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/flat_index.h"
#include "geometry/rng.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "tests/test_util.h"

namespace flat {
namespace {

using testing::BruteForce;
using testing::RandomEntries;
using testing::RandomQueries;
using testing::Sorted;

std::vector<uint64_t> CategoryCounts(const IoStats& stats) {
  std::vector<uint64_t> counts(kNumPageCategories);
  for (int c = 0; c < kNumPageCategories; ++c) {
    counts[c] = stats.ReadsIn(static_cast<PageCategory>(c));
  }
  return counts;
}

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    entries_ = RandomEntries(20000, /*seed=*/99);
    index_ = FlatIndex::Build(&file_, entries_);
  }

  // Serial reference with a fresh (cold) BufferPool per query.
  QueryResult RunSerial(const Query& q) const {
    QueryResult r;
    BufferPool pool(&file_, &r.io);
    DispatchQuery(index_, q, &pool, &r);
    return r;
  }

  void ExpectMatchesSerial(const std::vector<Query>& batch, size_t threads,
                           QueryEngine::CacheMode mode =
                               QueryEngine::CacheMode::kColdPerQuery) {
    std::vector<QueryResult> serial;
    serial.reserve(batch.size());
    IoStats serial_io;
    for (const Query& q : batch) {
      serial.push_back(RunSerial(q));
      serial_io += serial.back().io;
    }

    QueryEngine::Options options;
    options.threads = threads;
    options.cache_mode = mode;
    QueryEngine engine(&index_, options);
    BatchStats stats;
    std::vector<QueryResult> parallel = engine.Run(batch, &stats);

    ASSERT_EQ(parallel.size(), batch.size());
    EXPECT_EQ(stats.threads, threads);
    uint64_t elements = 0;
    IoStats merged;
    for (size_t i = 0; i < batch.size(); ++i) {
      // Bit-identical ids, in the same traversal order — the parallel
      // engine runs the very same serial code path per query.
      EXPECT_EQ(parallel[i].ids, serial[i].ids) << "query " << i;
      elements += parallel[i].ids.size();
      merged += parallel[i].io;
      if (mode == QueryEngine::CacheMode::kColdPerQuery) {
        EXPECT_EQ(CategoryCounts(parallel[i].io), CategoryCounts(serial[i].io))
            << "query " << i;
      }
    }
    EXPECT_EQ(stats.result_elements, elements);
    // The batch aggregate is exactly the sum of the per-query breakdowns.
    EXPECT_EQ(CategoryCounts(stats.io), CategoryCounts(merged));
    if (mode == QueryEngine::CacheMode::kColdPerQuery) {
      EXPECT_EQ(CategoryCounts(stats.io), CategoryCounts(serial_io));
    }
  }

  PageFile file_;
  std::vector<RTreeEntry> entries_;
  FlatIndex index_;
};

TEST_F(QueryEngineTest, RangeBatchMatchesSerialAcrossThreadCounts) {
  std::vector<Query> batch;
  for (const Aabb& box : RandomQueries(64, /*seed=*/5)) {
    batch.push_back(Query::Range(box));
  }
  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    ExpectMatchesSerial(batch, threads);
  }
}

TEST_F(QueryEngineTest, BothCrawlGuardModes) {
  for (FlatIndex::CrawlGuard guard :
       {FlatIndex::CrawlGuard::kPartitionMbr,
        FlatIndex::CrawlGuard::kPageMbr}) {
    std::vector<Query> batch;
    for (const Aabb& box : RandomQueries(48, /*seed=*/11)) {
      batch.push_back(Query::Range(box, guard));
    }
    for (size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(threads);
      ExpectMatchesSerial(batch, threads);
    }
  }
}

TEST_F(QueryEngineTest, RangeResultsAreCorrectNotJustConsistent) {
  std::vector<Aabb> boxes = RandomQueries(32, /*seed=*/17);
  std::vector<Query> batch;
  for (const Aabb& box : boxes) batch.push_back(Query::Range(box));

  QueryEngine engine(&index_, {.threads = 4});
  std::vector<QueryResult> results = engine.Run(batch);
  for (size_t i = 0; i < boxes.size(); ++i) {
    EXPECT_EQ(Sorted(results[i].ids), BruteForce(entries_, boxes[i]))
        << "query " << i;
  }
}

TEST_F(QueryEngineTest, KnnAndSphereBatches) {
  Rng rng(23);
  const Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  std::vector<Query> batch;
  for (int i = 0; i < 30; ++i) {
    const Vec3 center = rng.PointIn(universe);
    if (i % 2 == 0) {
      batch.push_back(Query::Knn(center, 1 + static_cast<size_t>(i)));
    } else {
      batch.push_back(Query::Sphere(center, rng.Uniform(0.5, 10.0)));
    }
  }
  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    ExpectMatchesSerial(batch, threads);
  }
}

TEST_F(QueryEngineTest, SharedStripedCacheSameResultsFewerReads) {
  std::vector<Query> batch;
  for (const Aabb& box : RandomQueries(64, /*seed=*/31)) {
    batch.push_back(Query::Range(box));
  }
  ExpectMatchesSerial(batch, /*threads=*/8,
                      QueryEngine::CacheMode::kSharedStriped);

  IoStats cold_io, shared_io;
  {
    QueryEngine engine(&index_, {.threads = 4});
    BatchStats stats;
    engine.Run(batch, &stats);
    cold_io = stats.io;
  }
  {
    QueryEngine engine(
        &index_,
        {.threads = 4, .cache_mode = QueryEngine::CacheMode::kSharedStriped});
    BatchStats stats;
    engine.Run(batch, &stats);
    shared_io = stats.io;
  }
  // Sharing the cache across the batch can only reduce page reads.
  EXPECT_LE(shared_io.TotalReads(), cold_io.TotalReads());
  EXPECT_GT(shared_io.TotalReads(), 0u);
}

TEST_F(QueryEngineTest, RandomizedStress) {
  // Fixed-seed stress mix: many skewed queries (some huge, some empty) so
  // the work-stealing path actually runs.
  Rng rng(4242);
  const Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  std::vector<Query> batch;
  for (int i = 0; i < 400; ++i) {
    const Vec3 center = rng.PointIn(universe);
    const double roll = rng.Uniform(0.0, 1.0);
    if (roll < 0.5) {
      const double side = rng.Uniform(0.1, 40.0);
      batch.push_back(Query::Range(Aabb::FromCenterHalfExtents(
          center, Vec3(side / 2, side / 2, side / 2))));
    } else if (roll < 0.7) {
      batch.push_back(Query::Sphere(center, rng.Uniform(0.1, 15.0)));
    } else if (roll < 0.9) {
      batch.push_back(
          Query::Knn(center, static_cast<size_t>(rng.UniformInt(1, 50))));
    } else {
      // Far outside the universe: empty result.
      batch.push_back(Query::Range(Aabb::FromCenterHalfExtents(
          center + Vec3(1000, 1000, 1000), Vec3(1, 1, 1))));
    }
  }
  for (size_t threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    ExpectMatchesSerial(batch, threads);
  }
}

TEST_F(QueryEngineTest, EngineIsReusableAcrossBatches) {
  QueryEngine engine(&index_, {.threads = 4});
  for (uint64_t round = 0; round < 3; ++round) {
    std::vector<Query> batch;
    for (const Aabb& box : RandomQueries(16, /*seed=*/100 + round)) {
      batch.push_back(Query::Range(box));
    }
    std::vector<QueryResult> results = engine.Run(batch);
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(results[i].ids, RunSerial(batch[i]).ids);
    }
  }
}

TEST(QueryEngineEdgeTest, EmptyBatch) {
  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, testing::RandomEntries(100, 1));
  QueryEngine engine(&index, {.threads = 4});
  BatchStats stats;
  EXPECT_TRUE(engine.Run({}, &stats).empty());
  EXPECT_EQ(stats.result_elements, 0u);
  EXPECT_EQ(stats.io.TotalReads(), 0u);
}

TEST(QueryEngineEdgeTest, NeverBuiltIndex) {
  FlatIndex index;  // no PageFile attached
  QueryEngine engine(&index, {.threads = 2});
  std::vector<Query> batch = {
      Query::Range(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)))};
  std::vector<QueryResult> results = engine.Run(batch);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ids.empty());
}

TEST(QueryEngineEdgeTest, MoreThreadsThanQueries) {
  PageFile file;
  std::vector<RTreeEntry> entries = testing::RandomEntries(2000, 3);
  FlatIndex index = FlatIndex::Build(&file, entries);
  QueryEngine engine(&index, {.threads = 16});
  std::vector<Query> batch = {
      Query::Range(Aabb(Vec3(0, 0, 0), Vec3(50, 50, 50))),
      Query::Range(Aabb(Vec3(50, 50, 50), Vec3(100, 100, 100)))};
  std::vector<QueryResult> results = engine.Run(batch);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(testing::Sorted(results[0].ids),
            testing::BruteForce(entries, batch[0].box));
  EXPECT_EQ(testing::Sorted(results[1].ids),
            testing::BruteForce(entries, batch[1].box));
}

}  // namespace
}  // namespace flat
