#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/flat_index.h"
#include "rtree/bulkload.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace flat {
namespace {

std::vector<uint64_t> BruteForceSphere(const std::vector<RTreeEntry>& entries,
                                       const Vec3& center, double radius) {
  std::vector<uint64_t> out;
  for (const RTreeEntry& e : entries) {
    if (e.box.IntersectsSphere(center, radius)) out.push_back(e.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(AabbSphereTest, DistanceSquaredToPoint) {
  Aabb box(Vec3(0, 0, 0), Vec3(2, 2, 2));
  EXPECT_EQ(box.DistanceSquaredTo(Vec3(1, 1, 1)), 0.0);    // inside
  EXPECT_EQ(box.DistanceSquaredTo(Vec3(2, 2, 2)), 0.0);    // on corner
  EXPECT_EQ(box.DistanceSquaredTo(Vec3(3, 1, 1)), 1.0);    // face distance
  EXPECT_EQ(box.DistanceSquaredTo(Vec3(3, 3, 1)), 2.0);    // edge distance
  EXPECT_EQ(box.DistanceSquaredTo(Vec3(3, 3, 3)), 3.0);    // corner distance
  EXPECT_EQ(box.DistanceSquaredTo(Vec3(-1, -1, -1)), 3.0);
  EXPECT_TRUE(std::isinf(Aabb().DistanceSquaredTo(Vec3())));
}

TEST(AabbSphereTest, IntersectsSphereBoundary) {
  Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  // Ball touching the face exactly (closed ball => intersects).
  EXPECT_TRUE(box.IntersectsSphere(Vec3(2, 0.5, 0.5), 1.0));
  EXPECT_FALSE(box.IntersectsSphere(Vec3(2.001, 0.5, 0.5), 1.0));
  // Ball centered inside.
  EXPECT_TRUE(box.IntersectsSphere(Vec3(0.5, 0.5, 0.5), 0.01));
  // Corner-diagonal reach: corner at distance sqrt(3) from (2,2,2).
  EXPECT_TRUE(box.IntersectsSphere(Vec3(2, 2, 2), std::sqrt(3.0) + 1e-12));
  EXPECT_FALSE(box.IntersectsSphere(Vec3(2, 2, 2), std::sqrt(3.0) - 1e-6));
}

class SphereQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    entries_ = testing::RandomEntries(4000, 301);
    flat_ = FlatIndex::Build(&flat_file_, entries_);
    rtree_ = BulkloadStr(&rtree_file_, entries_);
  }

  std::vector<RTreeEntry> entries_;
  PageFile flat_file_;
  PageFile rtree_file_;
  FlatIndex flat_;
  RTree rtree_;
};

TEST_F(SphereQueryTest, FlatMatchesBruteForce) {
  IoStats stats;
  BufferPool pool(&flat_file_, &stats);
  Rng rng(302);
  Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  for (int i = 0; i < 50; ++i) {
    const Vec3 center = rng.PointIn(universe);
    const double radius = rng.Uniform(0.1, 15.0);
    std::vector<uint64_t> got;
    flat_.SphereQuery(&pool, center, radius, &got);
    EXPECT_EQ(testing::Sorted(got),
              BruteForceSphere(entries_, center, radius));
  }
}

TEST_F(SphereQueryTest, RTreeMatchesBruteForce) {
  IoStats stats;
  BufferPool pool(&rtree_file_, &stats);
  Rng rng(303);
  Aabb universe(Vec3(0, 0, 0), Vec3(100, 100, 100));
  for (int i = 0; i < 50; ++i) {
    const Vec3 center = rng.PointIn(universe);
    const double radius = rng.Uniform(0.1, 15.0);
    std::vector<uint64_t> got;
    rtree_.SphereQuery(&pool, center, radius, &got);
    EXPECT_EQ(testing::Sorted(got),
              BruteForceSphere(entries_, center, radius));
  }
}

TEST_F(SphereQueryTest, SphereIsSubsetOfBoundingBoxQuery) {
  IoStats stats;
  BufferPool pool(&flat_file_, &stats);
  const Vec3 center(50, 50, 50);
  const double radius = 10.0;
  std::vector<uint64_t> sphere, box;
  flat_.SphereQuery(&pool, center, radius, &sphere);
  flat_.RangeQuery(&pool,
                   Aabb::FromCenterHalfExtents(center,
                                               Vec3(radius, radius, radius)),
                   &box);
  auto s = testing::Sorted(sphere);
  auto b = testing::Sorted(box);
  EXPECT_LE(s.size(), b.size());
  EXPECT_TRUE(std::includes(b.begin(), b.end(), s.begin(), s.end()));
  EXPECT_LT(s.size(), b.size())
      << "corner elements must be rejected by the exact sphere test";
}

TEST_F(SphereQueryTest, NegativeAndZeroRadius) {
  IoStats stats;
  BufferPool pool(&flat_file_, &stats);
  std::vector<uint64_t> got;
  flat_.SphereQuery(&pool, Vec3(50, 50, 50), -1.0, &got);
  EXPECT_TRUE(got.empty());
  // Zero radius == point probe; must equal the brute-force point result.
  flat_.SphereQuery(&pool, Vec3(50, 50, 50), 0.0, &got);
  EXPECT_EQ(testing::Sorted(got),
            BruteForceSphere(entries_, Vec3(50, 50, 50), 0.0));
}

TEST_F(SphereQueryTest, SphereQueryReadsNoMoreThanBoxQuery) {
  IoStats sphere_stats, box_stats;
  BufferPool sphere_pool(&flat_file_, &sphere_stats);
  BufferPool box_pool(&flat_file_, &box_stats);
  const Vec3 center(40, 60, 50);
  const double radius = 12.0;
  std::vector<uint64_t> out;
  flat_.SphereQuery(&sphere_pool, center, radius, &out);
  out.clear();
  flat_.RangeQuery(&box_pool,
                   Aabb::FromCenterHalfExtents(center,
                                               Vec3(radius, radius, radius)),
                   &out);
  EXPECT_LE(sphere_stats.TotalReads(), box_stats.TotalReads() + 2)
      << "sphere pruning may differ by a couple of seed probes at most";
}

}  // namespace
}  // namespace flat
