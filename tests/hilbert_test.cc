#include "geometry/hilbert.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

namespace flat {
namespace {

TEST(Hilbert3DTest, OneBitCurveVisitsAllCorners) {
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < 2; ++x) {
    for (uint32_t y = 0; y < 2; ++y) {
      for (uint32_t z = 0; z < 2; ++z) {
        uint64_t d = Hilbert3D::Encode(x, y, z, 1);
        EXPECT_LT(d, 8u);
        seen.insert(d);
      }
    }
  }
  EXPECT_EQ(seen.size(), 8u);  // bijection on the 2x2x2 cube
}

TEST(Hilbert3DTest, EncodeDecodeRoundTrip) {
  for (int bits : {1, 2, 3, 5, 8}) {
    const uint32_t n = 1u << bits;
    for (uint32_t x = 0; x < n; x += std::max(1u, n / 8)) {
      for (uint32_t y = 0; y < n; y += std::max(1u, n / 8)) {
        for (uint32_t z = 0; z < n; z += std::max(1u, n / 8)) {
          uint64_t d = Hilbert3D::Encode(x, y, z, bits);
          uint32_t rx, ry, rz;
          Hilbert3D::Decode(d, bits, &rx, &ry, &rz);
          EXPECT_EQ(rx, x) << "bits=" << bits;
          EXPECT_EQ(ry, y);
          EXPECT_EQ(rz, z);
        }
      }
    }
  }
}

TEST(Hilbert3DTest, CurveIsContinuous) {
  // Consecutive indices decode to cells at L1 distance exactly 1 — the
  // defining property of a Hilbert curve (and what makes consecutive
  // elements spatially close when packed).
  const int bits = 4;
  const uint64_t total = 1ull << (3 * bits);
  uint32_t px = 0, py = 0, pz = 0;
  Hilbert3D::Decode(0, bits, &px, &py, &pz);
  for (uint64_t d = 1; d < total; ++d) {
    uint32_t x, y, z;
    Hilbert3D::Decode(d, bits, &x, &y, &z);
    const int l1 = std::abs(static_cast<int>(x) - static_cast<int>(px)) +
                   std::abs(static_cast<int>(y) - static_cast<int>(py)) +
                   std::abs(static_cast<int>(z) - static_cast<int>(pz));
    ASSERT_EQ(l1, 1) << "discontinuity at d=" << d;
    px = x;
    py = y;
    pz = z;
  }
}

TEST(Hilbert3DTest, BijectionAtThreeBits) {
  const int bits = 3;
  const uint64_t total = 1ull << (3 * bits);
  std::vector<bool> seen(total, false);
  for (uint32_t x = 0; x < (1u << bits); ++x) {
    for (uint32_t y = 0; y < (1u << bits); ++y) {
      for (uint32_t z = 0; z < (1u << bits); ++z) {
        uint64_t d = Hilbert3D::Encode(x, y, z, bits);
        ASSERT_LT(d, total);
        ASSERT_FALSE(seen[d]) << "collision at d=" << d;
        seen[d] = true;
      }
    }
  }
}

TEST(Hilbert3DTest, EncodePointClampsAndQuantizes) {
  Aabb bounds(Vec3(0, 0, 0), Vec3(10, 10, 10));
  // Inside, outside (clamped), and corner points all produce valid keys.
  const uint64_t inside = Hilbert3D::EncodePoint(Vec3(5, 5, 5), bounds, 8);
  const uint64_t low_clamped =
      Hilbert3D::EncodePoint(Vec3(-100, 5, 5), bounds, 8);
  const uint64_t low_exact = Hilbert3D::EncodePoint(Vec3(0, 5, 5), bounds, 8);
  EXPECT_EQ(low_clamped, low_exact);
  EXPECT_NE(inside, low_exact);
  const uint64_t hi_corner =
      Hilbert3D::EncodePoint(Vec3(10, 10, 10), bounds, 8);
  EXPECT_LT(hi_corner, 1ull << 24);
}

TEST(Hilbert3DTest, DegenerateBoundsAxisQuantizesToZero) {
  Aabb flat_bounds(Vec3(0, 0, 0), Vec3(10, 0, 10));  // zero-extent y
  const uint64_t k = Hilbert3D::EncodePoint(Vec3(5, 0, 5), flat_bounds, 8);
  (void)k;  // must not crash or divide by zero
  SUCCEED();
}

TEST(Hilbert3DTest, NearbyPointsGetNearbyKeys) {
  // Locality smoke test: the average key distance of adjacent cells must be
  // far below that of random pairs.
  Aabb bounds(Vec3(0, 0, 0), Vec3(1, 1, 1));
  const uint64_t a = Hilbert3D::EncodePoint(Vec3(0.500, 0.5, 0.5), bounds, 10);
  const uint64_t b = Hilbert3D::EncodePoint(Vec3(0.501, 0.5, 0.5), bounds, 10);
  const uint64_t far = Hilbert3D::EncodePoint(Vec3(0.95, 0.1, 0.9), bounds, 10);
  const auto dist = [](uint64_t x, uint64_t y) {
    return x > y ? x - y : y - x;
  };
  EXPECT_LT(dist(a, b), dist(a, far));
}

}  // namespace
}  // namespace flat
