// Structural-neighborhood use case (Section III-A): walk along a neuron
// fiber and repeatedly ask for "all elements within 5 um" of the current
// segment — the incremental-proximity workload that motivates FLAT's crawl.
// Compares FLAT against an STR R-Tree on the same sequence of queries.
//
//   $ ./examples/structural_neighborhood
#include <iostream>

#include "benchutil/contender.h"
#include "data/neuron_generator.h"
#include "geometry/rng.h"
#include "storage/buffer_pool.h"

int main() {
  using namespace flat;

  NeuronParams params;
  params.total_elements = 200000;
  Dataset dataset = GenerateNeurons(params);

  Contender flat = BuildContender(IndexKind::kFlat, dataset.elements);
  Contender str = BuildContender(IndexKind::kStr, dataset.elements);

  // Walk a synthetic "fiber": a polyline through the tissue; at each step
  // query the 1.5 um neighborhood (a few per mille of the volume side).
  Rng rng(7);
  Vec3 position = dataset.bounds.Center();
  Vec3 direction = rng.UnitVector();

  IoStats flat_stats, str_stats;
  BufferPool flat_pool(flat.file.get(), &flat_stats);
  BufferPool str_pool(str.file.get(), &str_stats);

  size_t total_neighbors = 0;
  const int kSteps = 200;
  for (int step = 0; step < kSteps; ++step) {
    const Aabb neighborhood =
        Aabb::FromCenterHalfExtents(position, Vec3(1.5, 1.5, 1.5));

    std::vector<uint64_t> flat_result, str_result;
    flat_pool.Clear();  // cold cache, as in the paper's methodology
    flat.RangeQuery(&flat_pool, neighborhood, &flat_result);
    str_pool.Clear();
    str.RangeQuery(&str_pool, neighborhood, &str_result);
    if (flat_result.size() != str_result.size()) {
      std::cerr << "index disagreement at step " << step << "!\n";
      return 1;
    }
    total_neighbors += flat_result.size();

    // Advance the walk, bouncing off the tissue boundary.
    direction = (direction * 0.9 + rng.UnitVector() * 0.1).Normalized();
    position += direction * 0.8;
    for (int axis = 0; axis < 3; ++axis) {
      if (position[axis] < dataset.bounds.lo()[axis] ||
          position[axis] > dataset.bounds.hi()[axis]) {
        direction.At(axis) = -direction[axis];
        position.At(axis) += 2 * direction[axis];
      }
    }
  }

  std::cout << "walked " << kSteps << " steps, "
            << total_neighbors << " proximal elements found\n"
            << "FLAT:      " << flat_stats.TotalReads() << " page reads ("
            << static_cast<double>(flat_stats.TotalReads()) / kSteps
            << "/step)\n"
            << "STR R-Tree: " << str_stats.TotalReads() << " page reads ("
            << static_cast<double>(str_stats.TotalReads()) / kSteps
            << "/step)\n";
  return 0;
}
