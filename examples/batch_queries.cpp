// Demo: serving a batch of mixed range / kNN / sphere queries through the
// parallel QueryEngine — the multi-client scenario where many analysis
// sessions hit one FLAT index at once.
//
//   engine.Run(batch) == one FlatIndex call per query, just faster: results
//   are bit-identical to serial execution and the merged I/O breakdown is
//   the exact sum of the per-query breakdowns.
#include <iostream>
#include <vector>

#include "core/flat_index.h"
#include "data/neuron_generator.h"
#include "engine/query_engine.h"
#include "geometry/rng.h"
#include "storage/page.h"
#include "storage/page_file.h"

int main() {
  using namespace flat;

  // A small microcircuit data set (see examples/quickstart.cpp for the
  // basics of building an index).
  NeuronParams params;
  params.total_elements = 40000;
  params.seed = 42;
  Dataset dataset = GenerateNeurons(params);
  std::cout << "Data set: " << dataset.elements.size()
            << " cylinder MBRs from "
            << params.total_elements / params.segments_per_neuron
            << " neurons\n";

  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, dataset.elements);

  // A mixed batch: spatial-range probes, structural neighborhoods (spheres),
  // and nearest-neighbor lookups, all submitted at once.
  Rng rng(7);
  std::vector<Query> batch;
  for (int i = 0; i < 60; ++i) {
    const Vec3 center = rng.PointIn(dataset.bounds);
    switch (i % 3) {
      case 0:
        batch.push_back(Query::Range(
            Aabb::FromCenterHalfExtents(center, Vec3(8, 8, 8))));
        break;
      case 1:
        batch.push_back(Query::Sphere(center, 5.0));  // "within 5 um"
        break;
      default:
        batch.push_back(Query::Knn(center, 10));
        break;
    }
  }

  QueryEngine::Options options;
  options.threads = 4;
  QueryEngine engine(&index, options);

  BatchStats stats;
  std::vector<QueryResult> results = engine.Run(batch, &stats);

  uint64_t range_hits = 0, sphere_hits = 0, knn_hits = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    switch (i % 3) {
      case 0: range_hits += results[i].ids.size(); break;
      case 1: sphere_hits += results[i].ids.size(); break;
      default: knn_hits += results[i].ids.size(); break;
    }
  }

  std::cout << "Batch of " << batch.size() << " queries on "
            << stats.threads << " threads: " << stats.result_elements
            << " result elements in " << stats.wall_seconds * 1e3
            << " ms\n";
  std::cout << "  range results:  " << range_hits << "\n";
  std::cout << "  sphere results: " << sphere_hits << "\n";
  std::cout << "  knn results:    " << knn_hits << "\n";
  std::cout << "Merged I/O breakdown (reads): total "
            << stats.io.TotalReads() << " = seed-internal "
            << stats.io.ReadsIn(PageCategory::kSeedInternal)
            << " + seed-leaf " << stats.io.ReadsIn(PageCategory::kSeedLeaf)
            << " + object " << stats.io.ReadsIn(PageCategory::kObject)
            << "\n";

  // The per-query stats sum exactly to the aggregate — the engine never
  // loses or double-counts a page read.
  IoStats sum;
  for (const QueryResult& r : results) sum += r.io;
  std::cout << "Sum of per-query reads: " << sum.TotalReads() << " (matches: "
            << (sum.TotalReads() == stats.io.TotalReads() ? "yes" : "no")
            << ")\n";
  return 0;
}
