// Quickstart: build a FLAT index over a small synthetic microcircuit and
// run a range query, printing the result size and the I/O it cost.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/flat_index.h"
#include "data/neuron_generator.h"
#include "storage/buffer_pool.h"
#include "storage/disk_model.h"

int main() {
  using namespace flat;

  // 1. Get some spatial data. Any std::vector<RTreeEntry> works; here we
  //    grow a 50k-cylinder synthetic microcircuit (28.5 um cube of tissue).
  NeuronParams params;
  params.total_elements = 50000;
  Dataset dataset = GenerateNeurons(params);
  std::cout << "dataset: " << dataset.size() << " cylinders in "
            << dataset.bounds << "\n";

  // 2. Bulkload the index onto a simulated disk.
  PageFile disk_file;  // 4 KiB pages
  FlatIndex::BuildStats build_stats;
  FlatIndex index = FlatIndex::Build(&disk_file, dataset.elements,
                                     &build_stats);
  std::cout << "built FLAT: " << build_stats.partitions << " partitions, "
            << build_stats.seed_leaf_pages << " metadata leaves, "
            << build_stats.neighbor_pointers << " neighbor pointers, "
            << disk_file.SizeBytes() / 1024 << " KiB on disk\n";

  // 3. Query through a buffer pool; page reads are charged to IoStats.
  IoStats stats;
  BufferPool pool(&disk_file, &stats);
  const Vec3 center = dataset.bounds.Center();
  const Aabb query = Aabb::FromCenterHalfExtents(center, Vec3(2, 2, 2));

  std::vector<uint64_t> result;
  index.RangeQuery(&pool, query, &result);

  DiskModel disk_model;
  std::cout << "range query " << query << ":\n"
            << "  " << result.size() << " elements, "
            << stats.TotalReads() << " page reads ("
            << stats.ReadsIn(PageCategory::kSeedInternal) << " seed tree, "
            << stats.ReadsIn(PageCategory::kSeedLeaf) << " metadata, "
            << stats.ReadsIn(PageCategory::kObject) << " object pages)\n"
            << "  ~" << disk_model.ElapsedMs(stats, disk_file.page_size())
            << " ms on the paper's SAS-disk model\n";
  return 0;
}
