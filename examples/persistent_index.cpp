// Persistence workflow: bulkload once, save the simulated disk to a file,
// reopen it in a fresh session and query — the paper's "reindex rarely,
// query often" lifecycle (Section IV). The reopened sessions demonstrate
// both load paths: LoadPageFile (deserialize into RAM) and DiskPageFile
// (serve pages straight from the file, mmap'd — real out-of-core
// execution, with crawl prefetch hints available).
//
//   $ ./examples/persistent_index [path]
#include <fstream>
#include <iostream>

#include "core/flat_index.h"
#include "data/neuron_generator.h"
#include "storage/buffer_pool.h"
#include "storage/disk_page_file.h"
#include "storage/persistence.h"

int main(int argc, char** argv) {
  using namespace flat;
  const std::string path = argc > 1 ? argv[1] : "/tmp/flat_index.bin";

  FlatIndex::Descriptor descriptor;
  size_t expected = 0;
  uint64_t expected_reads = 0;
  Aabb probe;

  {
    // Session 1: build and save.
    NeuronParams params;
    params.total_elements = 80000;
    Dataset dataset = GenerateNeurons(params);
    probe = Aabb::FromCenterHalfExtents(dataset.bounds.Center(),
                                        Vec3(3, 3, 3));

    PageFile file;
    FlatIndex index = FlatIndex::Build(&file, dataset.elements);
    descriptor = index.descriptor();

    IoStats stats;
    BufferPool pool(&file, &stats);
    expected = index.RangeCount(&pool, probe);
    expected_reads = stats.TotalReads();

    std::ofstream out(path, std::ios::binary);
    SavePageFile(file, out);
    std::cout << "session 1: built over " << dataset.size()
              << " elements, saved " << file.SizeBytes() / 1024
              << " KiB to " << path << " (probe query: " << expected
              << " results)\n";
  }

  {
    // Session 2: reopen into RAM (LoadPageFile) and query; no rebuild.
    std::ifstream in(path, std::ios::binary);
    auto file = LoadPageFile(in);
    FlatIndex index = FlatIndex::Attach(file.get(), descriptor);

    IoStats stats;
    BufferPool pool(file.get(), &stats);
    const size_t got = index.RangeCount(&pool, probe);
    std::cout << "session 2: reopened " << file->page_count()
              << " pages into RAM, probe query: " << got << " results, "
              << stats.TotalReads() << " page reads\n";
    if (got != expected) {
      std::cerr << "MISMATCH after reload!\n";
      return 1;
    }
  }

  {
    // Session 3: open the same file disk-backed — pages are served from an
    // mmap'd read-only view, no deserialization; the crawl can prefetch
    // upcoming frontier pages while the current wave is processed.
    auto file = DiskPageFile::Open(path);
    FlatIndex index = FlatIndex::Attach(file.get(), descriptor);

    IoStats stats;
    BufferPool pool(file.get(), &stats);
    pool.set_prefetch_depth(32);  // advisory; results/reads are unchanged
    const size_t got = index.RangeCount(&pool, probe);
    std::cout << "session 3: disk-backed ("
              << (file->mmap_backed() ? "mmap" : "pread") << "), probe query: "
              << got << " results, " << stats.TotalReads()
              << " page reads, " << stats.PrefetchIssued()
              << " prefetch hints\n";
    if (got != expected || stats.TotalReads() != expected_reads) {
      std::cerr << "MISMATCH on the disk backend!\n";
      return 1;
    }
  }
  {
    // Session 4: the same lifecycle with compressed seed pages — the
    // quantized interior format (docs/file_format.md §2.1) packs ~3.45x
    // more children per page, the file carries the FLATPGF2 magic, and the
    // disk-backed re-query must return the same results as the exact index.
    const std::string compressed_path = path + ".v2";
    NeuronParams params;
    params.total_elements = 80000;
    Dataset dataset = GenerateNeurons(params);

    FlatIndex::Descriptor compressed_descriptor;
    {
      PageFile file;
      FlatIndex::BuildOptions options;
      options.compressed_seed_pages = true;
      FlatIndex index = FlatIndex::Build(&file, dataset.elements, options);
      compressed_descriptor = index.descriptor();
      std::ofstream out(compressed_path, std::ios::binary);
      SavePageFile(file, out);
      std::cout << "session 4: compressed-seed build saved to "
                << compressed_path << " (seed height "
                << index.build_stats().seed_height << ", "
                << index.build_stats().seed_internal_pages
                << " internal pages)\n";
    }

    auto file = DiskPageFile::Open(compressed_path);
    FlatIndex index = FlatIndex::Attach(file.get(), compressed_descriptor);
    IoStats stats;
    BufferPool pool(file.get(), &stats);
    const size_t got = index.RangeCount(&pool, probe);
    std::cout << "session 4: disk-backed compressed index, probe query: "
              << got << " results, " << stats.TotalReads()
              << " page reads\n";
    if (got != expected) {
      std::cerr << "MISMATCH on the compressed index!\n";
      return 1;
    }
  }
  std::cout << "reload verified: identical results (and identical logical "
               "reads) on both backends, without reindexing\n";
  return 0;
}
