// Persistence workflow: bulkload once, save the simulated disk to a file,
// reopen it in a fresh session and query — the paper's "reindex rarely,
// query often" lifecycle (Section IV).
//
//   $ ./examples/persistent_index [path]
#include <fstream>
#include <iostream>

#include "core/flat_index.h"
#include "data/neuron_generator.h"
#include "storage/buffer_pool.h"
#include "storage/persistence.h"

int main(int argc, char** argv) {
  using namespace flat;
  const std::string path = argc > 1 ? argv[1] : "/tmp/flat_index.bin";

  FlatIndex::Descriptor descriptor;
  size_t expected = 0;
  Aabb probe;

  {
    // Session 1: build and save.
    NeuronParams params;
    params.total_elements = 80000;
    Dataset dataset = GenerateNeurons(params);
    probe = Aabb::FromCenterHalfExtents(dataset.bounds.Center(),
                                        Vec3(3, 3, 3));

    PageFile file;
    FlatIndex index = FlatIndex::Build(&file, dataset.elements);
    descriptor = index.descriptor();

    IoStats stats;
    BufferPool pool(&file, &stats);
    expected = index.RangeCount(&pool, probe);

    std::ofstream out(path, std::ios::binary);
    SavePageFile(file, out);
    std::cout << "session 1: built over " << dataset.size()
              << " elements, saved " << file.SizeBytes() / 1024
              << " KiB to " << path << " (probe query: " << expected
              << " results)\n";
  }

  {
    // Session 2: reopen and query; no rebuild.
    std::ifstream in(path, std::ios::binary);
    auto file = LoadPageFile(in);
    FlatIndex index = FlatIndex::Attach(file.get(), descriptor);

    IoStats stats;
    BufferPool pool(file.get(), &stats);
    const size_t got = index.RangeCount(&pool, probe);
    std::cout << "session 2: reopened " << file->page_count()
              << " pages, probe query: " << got << " results, "
              << stats.TotalReads() << " page reads\n";
    if (got != expected) {
      std::cerr << "MISMATCH after reload!\n";
      return 1;
    }
  }
  std::cout << "reload verified: identical results without reindexing\n";
  return 0;
}
