// Demo: sharding one microcircuit data set into a multi-volume FLAT store —
// the horizontal layer for data sets larger than one PageFile (or spread
// across many circuits). The store STR-splits the elements into K spatial
// shards, bulk-builds each shard's FlatIndex in parallel, routes queries
// through a shard catalog, and gathers per-shard results into one canonical
// (sorted) answer that is bit-identical to an unsharded index.
//
// Also shows the persistence side: Save() writes the shard PageFiles plus a
// versioned catalog into a directory; Load() reopens the store and answers
// the same queries with the same I/O.
#include <filesystem>
#include <iostream>
#include <vector>

#include "core/flat_index.h"
#include "data/neuron_generator.h"
#include "engine/query_engine.h"
#include "geometry/rng.h"
#include "shard/sharded_flat_store.h"
#include "storage/page.h"

int main() {
  using namespace flat;

  NeuronParams params;
  params.total_elements = 40000;
  params.seed = 42;
  Dataset dataset = GenerateNeurons(params);
  std::cout << "Data set: " << dataset.elements.size()
            << " cylinder MBRs in " << dataset.bounds << "\n";

  // Build a 4-shard store, fanning the shard builds over 4 workers.
  ShardedFlatStore::BuildStats build_stats;
  ShardedFlatStore store = ShardedFlatStore::Build(
      dataset.elements, {.num_shards = 4, .num_threads = 4}, &build_stats);
  std::cout << "Built " << store.shard_count() << " shards in "
            << (build_stats.split_seconds + build_stats.build_seconds) * 1e3
            << " ms (split " << build_stats.split_seconds * 1e3 << " ms)\n";
  for (size_t s = 0; s < store.shard_count(); ++s) {
    const ShardCatalogEntry& entry = store.catalog().shards[s];
    std::cout << "  shard " << s << ": " << entry.element_count
              << " elements, " << store.shard_file(s).page_count()
              << " pages, bounds " << entry.bounds << "\n";
  }

  // Scatter-gather a batch: each query fans out to the shards its box
  // overlaps, all sub-queries share one work-stealing engine batch, and per
  // query the shard results merge into ascending id order.
  Rng rng(7);
  std::vector<Query> batch;
  for (int i = 0; i < 40; ++i) {
    const Vec3 center = rng.PointIn(dataset.bounds);
    if (i % 2 == 0) {
      batch.push_back(
          Query::Range(Aabb::FromCenterHalfExtents(center, Vec3(6, 6, 6))));
    } else {
      batch.push_back(Query::RangeCount(
          Aabb::FromCenterHalfExtents(center, Vec3(6, 6, 6))));
    }
  }
  BatchStats stats;
  std::vector<QueryResult> results = store.RunBatch(batch, &stats);
  std::cout << "Batch of " << batch.size() << " queries on " << stats.threads
            << " threads: " << stats.result_elements << " result elements, "
            << stats.io.TotalReads() << " page reads in "
            << stats.wall_seconds * 1e3 << " ms\n";

  // One query spanning every shard still returns one deduplicated,
  // canonically ordered id list.
  IoStats all_io;
  std::vector<uint64_t> all = store.RangeQuery(dataset.bounds, &all_io);
  std::cout << "Full-volume query: " << all.size() << " ids across "
            << store.shard_count() << " shards, " << all_io.TotalReads()
            << " page reads\n";

  // Persist and reopen: the catalog + shard PageFiles are the whole store.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "flat_sharded_store_example";
  std::filesystem::remove_all(dir);
  store.Save(dir.string());
  uint64_t bytes = 0;
  for (const auto& file : std::filesystem::directory_iterator(dir)) {
    bytes += std::filesystem::file_size(file);
  }
  std::cout << "Saved store to " << dir << " (" << bytes / 1024 << " KiB)\n";

  ShardedFlatStore reopened =
      ShardedFlatStore::Load(dir.string(), /*num_threads=*/4);
  std::vector<uint64_t> again = reopened.RangeQuery(dataset.bounds);
  std::cout << "Reopened store answers identically: "
            << (again == all ? "yes" : "NO") << "\n";
  std::filesystem::remove_all(dir);
  return again == all ? 0 : 1;
}
