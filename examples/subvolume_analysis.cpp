// Large-spatial-subvolume use case (Section III-B): retrieve big subvolumes
// for analysis — here, a tissue-density profile along the cortical depth
// axis, computed by querying one slab per depth bin.
//
//   $ ./examples/subvolume_analysis
#include <iomanip>
#include <iostream>

#include "core/flat_index.h"
#include "data/neuron_generator.h"
#include "storage/buffer_pool.h"

int main() {
  using namespace flat;

  NeuronParams params;
  params.total_elements = 150000;
  Dataset dataset = GenerateNeurons(params);

  PageFile file;
  FlatIndex index = FlatIndex::Build(&file, dataset.elements);
  IoStats stats;
  BufferPool pool(&file, &stats);

  // Slice the volume into 20 depth bins along z and measure element density
  // per bin — the laminar structure of the synthetic cortex shows up as
  // peaks at the five layers.
  const int kBins = 20;
  const Vec3 lo = dataset.bounds.lo();
  const Vec3 hi = dataset.bounds.hi();
  const double dz = (hi.z - lo.z) / kBins;

  std::cout << "tissue density profile (" << dataset.size()
            << " elements, " << kBins << " depth bins):\n";
  size_t max_count = 0;
  std::vector<size_t> counts(kBins);
  for (int bin = 0; bin < kBins; ++bin) {
    const Aabb slab(Vec3(lo.x, lo.y, lo.z + bin * dz),
                    Vec3(hi.x, hi.y, lo.z + (bin + 1) * dz));
    pool.Clear();
    counts[bin] = index.RangeCount(&pool, slab);
    max_count = std::max(max_count, counts[bin]);
  }
  for (int bin = 0; bin < kBins; ++bin) {
    const double depth = lo.z + (bin + 0.5) * dz;
    std::cout << std::fixed << std::setprecision(1) << std::setw(6) << depth
              << " um | " << std::string(60 * counts[bin] / max_count, '#')
              << " " << counts[bin] << "\n";
  }
  std::cout << "\ntotal page reads for " << kBins
            << " subvolume queries: " << stats.TotalReads() << "\n";
  return 0;
}
