// FLAT on non-neuroscience data (Section VIII): index a dense surface mesh
// and a clustered n-body snapshot, and compare FLAT against the PR-Tree on
// small- and large-volume query sets — a miniature of Figures 22/23.
//
//   $ ./examples/dataset_comparison
#include <iostream>

#include "benchutil/contender.h"
#include "data/mesh_generator.h"
#include "data/nbody_generator.h"
#include "data/query_generator.h"
#include "storage/disk_model.h"

int main() {
  using namespace flat;

  std::vector<Dataset> datasets;
  {
    MeshParams params;
    params.kind = MeshKind::kFoldedSheet;
    params.target_triangles = 80000;
    Dataset d = GenerateMesh(params);
    d.name = "folded surface mesh";
    datasets.push_back(std::move(d));
  }
  {
    NBodyParams params;
    params.count = 80000;
    Dataset d = GenerateNBody(params);
    d.name = "n-body snapshot";
    datasets.push_back(std::move(d));
  }

  DiskModel disk;
  for (const Dataset& dataset : datasets) {
    std::cout << dataset.name << " (" << dataset.size() << " elements)\n";
    Contender flat = BuildContender(IndexKind::kFlat, dataset.elements);
    Contender pr = BuildContender(IndexKind::kPrTree, dataset.elements);

    for (auto [label, fraction] :
         {std::pair<const char*, double>{"small", 5e-6}, {"large", 5e-3}}) {
      RangeWorkloadParams wp;
      wp.count = 100;
      wp.volume_fraction = fraction;
      auto queries = GenerateRangeWorkload(dataset.bounds, wp);

      WorkloadResult flat_result = RunWorkload(flat, queries, disk);
      WorkloadResult pr_result = RunWorkload(pr, queries, disk);
      if (flat_result.result_elements != pr_result.result_elements) {
        std::cerr << "index disagreement!\n";
        return 1;
      }
      std::cout << "  " << label << " queries: FLAT "
                << flat_result.io.TotalReads() << " reads / "
                << flat_result.simulated_ms / 1e3 << " s vs PR-Tree "
                << pr_result.io.TotalReads() << " reads / "
                << pr_result.simulated_ms / 1e3 << " s  (speed-up "
                << static_cast<int>(
                       100.0 * (1.0 - flat_result.simulated_ms /
                                          pr_result.simulated_ms))
                << "%)\n";
    }
  }
  return 0;
}
