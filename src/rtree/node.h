#ifndef FLAT_RTREE_NODE_H_
#define FLAT_RTREE_NODE_H_

#include <cassert>
#include <cstdint>
#include <cstring>

#include "rtree/entry.h"
#include "storage/page.h"

namespace flat {

/// On-page node header. Level 0 is a leaf; level k > 0 is k steps above the
/// leaves. The same layout backs R-Tree nodes and FLAT object pages.
struct NodeHeader {
  uint16_t count = 0;
  uint8_t level = 0;
  uint8_t reserved8 = 0;
  uint32_t reserved32 = 0;
};

inline constexpr size_t kNodeHeaderSize = sizeof(NodeHeader);
static_assert(kNodeHeaderSize == 8);

/// Maximum number of RTreeEntry slots on a page of the given size.
inline constexpr uint32_t NodeCapacity(uint32_t page_size) {
  return (page_size - kNodeHeaderSize) / sizeof(RTreeEntry);
}

/// Read-only view over a node page obtained from a BufferPool (or, during
/// construction, directly from a PageFile).
class NodeView {
 public:
  explicit NodeView(const char* data) : data_(data) {
    std::memcpy(&header_, data_, sizeof(header_));
  }

  uint16_t count() const { return header_.count; }
  uint8_t level() const { return header_.level; }
  bool is_leaf() const { return header_.level == 0; }

  RTreeEntry EntryAt(uint16_t i) const {
    assert(i < header_.count);
    RTreeEntry e;
    std::memcpy(&e, data_ + kNodeHeaderSize + i * sizeof(RTreeEntry),
                sizeof(e));
    return e;
  }

  Aabb BoxAt(uint16_t i) const { return EntryAt(i).box; }
  uint64_t IdAt(uint16_t i) const { return EntryAt(i).id; }

  /// Union of all entry boxes.
  Aabb Bounds() const {
    Aabb box;
    for (uint16_t i = 0; i < count(); ++i) box.ExpandToInclude(BoxAt(i));
    return box;
  }

 private:
  const char* data_;
  NodeHeader header_;
};

/// Mutable accessor used by bulkloaders and the dynamic R*-tree.
class NodeWriter {
 public:
  NodeWriter(char* data, uint32_t page_size)
      : data_(data), capacity_(NodeCapacity(page_size)) {}

  /// Zeroes the header and sets the level; must be called on fresh pages.
  void Init(uint8_t level) {
    NodeHeader header;
    header.level = level;
    std::memcpy(data_, &header, sizeof(header));
  }

  uint16_t count() const {
    NodeHeader header;
    std::memcpy(&header, data_, sizeof(header));
    return header.count;
  }

  uint8_t level() const {
    NodeHeader header;
    std::memcpy(&header, data_, sizeof(header));
    return header.level;
  }

  uint32_t capacity() const { return capacity_; }

  bool Full() const { return count() >= capacity_; }

  /// Appends an entry; the node must not be full.
  void Append(const RTreeEntry& entry) {
    NodeHeader header;
    std::memcpy(&header, data_, sizeof(header));
    assert(header.count < capacity_);
    std::memcpy(data_ + kNodeHeaderSize + header.count * sizeof(RTreeEntry),
                &entry, sizeof(entry));
    ++header.count;
    std::memcpy(data_, &header, sizeof(header));
  }

  /// Overwrites slot `i` (must be < count()).
  void SetEntry(uint16_t i, const RTreeEntry& entry) {
    assert(i < count());
    std::memcpy(data_ + kNodeHeaderSize + i * sizeof(RTreeEntry), &entry,
                sizeof(entry));
  }

  RTreeEntry EntryAt(uint16_t i) const { return NodeView(data_).EntryAt(i); }

  /// Drops all entries, keeping the level.
  void Truncate() {
    NodeHeader header;
    std::memcpy(&header, data_, sizeof(header));
    header.count = 0;
    std::memcpy(data_, &header, sizeof(header));
  }

 private:
  char* data_;
  uint32_t capacity_;
};

}  // namespace flat

#endif  // FLAT_RTREE_NODE_H_
