#ifndef FLAT_RTREE_NODE_H_
#define FLAT_RTREE_NODE_H_

#include <cassert>
#include <cstdint>
#include <cstring>

#include "geometry/box_kernels.h"
#include "rtree/entry.h"
#include "storage/page.h"

namespace flat {

/// On-page format of a node's slots. kExact stores full RTreeEntry slots
/// (6 f64 + u64); kQuantized stores the node's exact box once plus compact
/// QuantizedSlot children — only internal (level > 0) pages may be
/// quantized, leaves and object pages are always exact so results stay
/// exact. The tag lives in the header byte that was reserved (zero) in
/// every file written before the format existed, so old pages parse as
/// kExact unchanged.
enum class NodeFormat : uint8_t {
  kExact = 0,
  kQuantized = 1,
};

/// On-page node header. Level 0 is a leaf; level k > 0 is k steps above the
/// leaves. The same layout backs R-Tree nodes, FLAT object pages, and
/// compressed seed nodes (which differ only in what follows the header).
struct NodeHeader {
  uint16_t count = 0;
  uint8_t level = 0;
  uint8_t format = 0;  ///< NodeFormat; 0 (exact) in all pre-PR-7 files
  uint32_t reserved32 = 0;
};

inline constexpr size_t kNodeHeaderSize = sizeof(NodeHeader);
static_assert(kNodeHeaderSize == 8);

/// Maximum number of RTreeEntry slots on an exact page of the given size.
inline constexpr uint32_t NodeCapacity(uint32_t page_size) {
  return (page_size - kNodeHeaderSize) / sizeof(RTreeEntry);
}

/// Compressed-page layout: header, then the node's exact box, then the
/// quantized child slots.
inline constexpr size_t kQuantizedNodeBoxOffset = kNodeHeaderSize;
inline constexpr size_t kQuantizedSlotsOffset =
    kQuantizedNodeBoxOffset + sizeof(Aabb);

/// Maximum number of QuantizedSlot children on a compressed page.
inline constexpr uint32_t QuantizedNodeCapacity(uint32_t page_size) {
  return (page_size - kQuantizedSlotsOffset) / sizeof(QuantizedSlot);
}

inline constexpr uint32_t NodeCapacityFor(NodeFormat format,
                                          uint32_t page_size) {
  return format == NodeFormat::kQuantized ? QuantizedNodeCapacity(page_size)
                                          : NodeCapacity(page_size);
}

// The derived sizes and fanouts, asserted in one place (entry.h and the
// docs refer here instead of quoting numbers that drift): 56-byte exact
// slots give fanout 73 on the default 4 KiB page; 16-byte quantized slots
// behind the 48-byte node box give 252 — a 3.45x fanout gain, which is what
// shortens seed descents. The 512-byte page (9 vs 28) is the small
// configuration the unit tests use to exercise multi-level trees cheaply.
static_assert(sizeof(Aabb) == 48, "Aabb is serialized as 6 f64");
static_assert(sizeof(RTreeEntry) == 56 && NodeCapacity(4096) == 73);
static_assert(sizeof(QuantizedSlot) == 16 && QuantizedNodeCapacity(4096) == 252);
static_assert(QuantizedNodeCapacity(4096) >= 3 * NodeCapacity(4096),
              "compression must buy at least 3x fanout on default pages");
static_assert(NodeCapacity(512) == 9 && QuantizedNodeCapacity(512) == 28);

/// Read-only view over an exact node page obtained from a BufferPool (or,
/// during construction, directly from a PageFile). The header accessors
/// (count / level / format) are valid for either format; the entry
/// accessors require an exact page.
class NodeView {
 public:
  explicit NodeView(const char* data) : data_(data) {
    std::memcpy(&header_, data_, sizeof(header_));
  }

  uint16_t count() const { return header_.count; }
  uint8_t level() const { return header_.level; }
  bool is_leaf() const { return header_.level == 0; }
  NodeFormat format() const { return static_cast<NodeFormat>(header_.format); }

  RTreeEntry EntryAt(uint16_t i) const {
    assert(i < header_.count);
    assert(format() == NodeFormat::kExact);
    RTreeEntry e;
    std::memcpy(&e, data_ + kNodeHeaderSize + i * sizeof(RTreeEntry),
                sizeof(e));
    return e;
  }

  Aabb BoxAt(uint16_t i) const { return EntryAt(i).box; }
  uint64_t IdAt(uint16_t i) const { return EntryAt(i).id; }

  /// Union of all entry boxes.
  Aabb Bounds() const {
    Aabb box;
    for (uint16_t i = 0; i < count(); ++i) box.ExpandToInclude(BoxAt(i));
    return box;
  }

 private:
  const char* data_;
  NodeHeader header_;
};

/// Read-only view over a compressed (quantized) internal node page.
class CompressedNodeView {
 public:
  explicit CompressedNodeView(const char* data) : data_(data) {
    std::memcpy(&header_, data_, sizeof(header_));
    std::memcpy(&node_box_, data_ + kQuantizedNodeBoxOffset,
                sizeof(node_box_));
    assert(static_cast<NodeFormat>(header_.format) == NodeFormat::kQuantized);
  }

  uint16_t count() const { return header_.count; }
  uint8_t level() const { return header_.level; }
  const Aabb& node_box() const { return node_box_; }

  /// Base of the packed QuantizedSlot array (for QuantizedSoa::Assign).
  const char* slots() const { return data_ + kQuantizedSlotsOffset; }

  QuantizedSlot SlotAt(uint16_t i) const {
    assert(i < header_.count);
    QuantizedSlot slot;
    std::memcpy(&slot, slots() + i * sizeof(QuantizedSlot), sizeof(slot));
    return slot;
  }

  PageId ChildIdAt(uint16_t i) const { return SlotAt(i).child; }

  /// Conservative dequantization of child `i` for diagnostics and tests: a
  /// box guaranteed to contain the child's exact MBR (cells widened two
  /// further outward, boundary cells snapped to the node box). Not used on
  /// any query path — gates compare cell indexes directly and never
  /// dequantize.
  Aabb ChildBoxAt(uint16_t i) const {
    const QuantizedSlot slot = SlotAt(i);
    Vec3 lo, hi;
    double* los[3] = {&lo.x, &lo.y, &lo.z};
    double* his[3] = {&hi.x, &hi.y, &hi.z};
    for (int axis = 0; axis < 3; ++axis) {
      const double origin = node_box_.lo()[axis];
      const double cell =
          (node_box_.hi()[axis] - origin) / static_cast<double>(kQuantMaxCell);
      *los[axis] = slot.lo[axis] <= 2
                       ? origin
                       : origin + (slot.lo[axis] - 2) * cell;
      *his[axis] = slot.hi[axis] + 2 >= static_cast<int>(kQuantMaxCell)
                       ? node_box_.hi()[axis]
                       : origin + (slot.hi[axis] + 2) * cell;
    }
    return Aabb::FromCorners(lo, hi);
  }

 private:
  const char* data_;
  NodeHeader header_;
  Aabb node_box_;
};

/// Mutable accessor used by bulkloaders and the dynamic R*-tree.
class NodeWriter {
 public:
  NodeWriter(char* data, uint32_t page_size)
      : data_(data), capacity_(NodeCapacity(page_size)) {}

  /// Zeroes the header and sets the level; must be called on fresh pages.
  void Init(uint8_t level) {
    NodeHeader header;
    header.level = level;
    std::memcpy(data_, &header, sizeof(header));
  }

  uint16_t count() const {
    NodeHeader header;
    std::memcpy(&header, data_, sizeof(header));
    return header.count;
  }

  uint8_t level() const {
    NodeHeader header;
    std::memcpy(&header, data_, sizeof(header));
    return header.level;
  }

  uint32_t capacity() const { return capacity_; }

  bool Full() const { return count() >= capacity_; }

  /// Appends an entry; the node must not be full.
  void Append(const RTreeEntry& entry) {
    NodeHeader header;
    std::memcpy(&header, data_, sizeof(header));
    assert(header.count < capacity_);
    std::memcpy(data_ + kNodeHeaderSize + header.count * sizeof(RTreeEntry),
                &entry, sizeof(entry));
    ++header.count;
    std::memcpy(data_, &header, sizeof(header));
  }

  /// Overwrites slot `i` (must be < count()).
  void SetEntry(uint16_t i, const RTreeEntry& entry) {
    assert(i < count());
    std::memcpy(data_ + kNodeHeaderSize + i * sizeof(RTreeEntry), &entry,
                sizeof(entry));
  }

  RTreeEntry EntryAt(uint16_t i) const { return NodeView(data_).EntryAt(i); }

  /// Drops all entries, keeping the level.
  void Truncate() {
    NodeHeader header;
    std::memcpy(&header, data_, sizeof(header));
    header.count = 0;
    std::memcpy(data_, &header, sizeof(header));
  }

 private:
  char* data_;
  uint32_t capacity_;
};

/// Writer for compressed internal pages: Init fixes the node's exact box
/// (the quantization grid), then Append quantizes each child MBR outward
/// into it. Every child box must be contained in the node box — packers
/// pass the chunk's union — and every child id must be a PageId.
class CompressedNodeWriter {
 public:
  CompressedNodeWriter(char* data, uint32_t page_size)
      : data_(data), capacity_(QuantizedNodeCapacity(page_size)) {}

  void Init(uint8_t level, const Aabb& node_box) {
    assert(level > 0);  // leaves and object pages stay exact
    NodeHeader header;
    header.level = level;
    header.format = static_cast<uint8_t>(NodeFormat::kQuantized);
    std::memcpy(data_, &header, sizeof(header));
    std::memcpy(data_ + kQuantizedNodeBoxOffset, &node_box, sizeof(node_box));
    grid_ = MakeQuantGrid(node_box);
  }

  uint32_t capacity() const { return capacity_; }

  void Append(const RTreeEntry& entry) {
    NodeHeader header;
    std::memcpy(&header, data_, sizeof(header));
    assert(header.count < capacity_);
    assert(entry.id <= 0xFFFFFFFFull);  // child ids are PageIds
    QuantizedSlot slot;
    for (int axis = 0; axis < 3; ++axis) {
      slot.lo[axis] = QuantizeDown(grid_, axis, entry.box.lo()[axis]);
      slot.hi[axis] = QuantizeUp(grid_, axis, entry.box.hi()[axis]);
    }
    slot.child = static_cast<uint32_t>(entry.id);
    std::memcpy(
        data_ + kQuantizedSlotsOffset + header.count * sizeof(QuantizedSlot),
        &slot, sizeof(slot));
    ++header.count;
    std::memcpy(data_, &header, sizeof(header));
  }

 private:
  char* data_;
  uint32_t capacity_;
  QuantGrid grid_;
};

}  // namespace flat

#endif  // FLAT_RTREE_NODE_H_
