#include "rtree/mem_rtree.h"

#include <algorithm>
#include <cassert>

#include "rtree/entry.h"
#include "rtree/pack.h"

namespace flat {

MemRTree::MemRTree(const std::vector<Aabb>& boxes, int fanout)
    : item_boxes_(boxes) {
  assert(fanout >= 2);
  if (boxes.empty()) return;

  // STR-order the item indices by reusing the disk bulkloader's tiler.
  std::vector<RTreeEntry> ordered(boxes.size());
  for (size_t i = 0; i < boxes.size(); ++i) {
    ordered[i] = RTreeEntry{boxes[i], i};
  }
  StrOrder(&ordered, static_cast<uint32_t>(fanout));
  items_.resize(ordered.size());
  for (size_t i = 0; i < ordered.size(); ++i) {
    items_[i] = static_cast<uint32_t>(ordered[i].id);
  }

  // Leaf level: runs of `fanout` consecutive items.
  std::vector<uint32_t> level;  // node indices of the current level
  for (size_t start = 0; start < items_.size();
       start += static_cast<size_t>(fanout)) {
    const size_t end =
        std::min(items_.size(), start + static_cast<size_t>(fanout));
    Node node;
    node.leaf = true;
    node.first = static_cast<uint32_t>(start);
    node.count = static_cast<uint32_t>(end - start);
    for (size_t i = start; i < end; ++i) {
      node.box.ExpandToInclude(item_boxes_[items_[i]]);
    }
    nodes_.push_back(node);
    level.push_back(static_cast<uint32_t>(nodes_.size() - 1));
  }

  // Upper levels: runs of `fanout` consecutive children. Children of one
  // parent are contiguous in nodes_ because each level is appended in order.
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t start = 0; start < level.size();
         start += static_cast<size_t>(fanout)) {
      const size_t end =
          std::min(level.size(), start + static_cast<size_t>(fanout));
      Node node;
      node.leaf = false;
      node.first = level[start];
      node.count = static_cast<uint32_t>(end - start);
      for (size_t i = start; i < end; ++i) {
        node.box.ExpandToInclude(nodes_[level[i]].box);
      }
      nodes_.push_back(node);
      next.push_back(static_cast<uint32_t>(nodes_.size() - 1));
    }
    level = std::move(next);
  }
  root_ = level.front();
}

void MemRTree::Query(const Aabb& query, std::vector<uint32_t>* out) const {
  ForEachIntersecting(query, [out](uint32_t item) { out->push_back(item); });
}

}  // namespace flat
