#ifndef FLAT_RTREE_AGGREGATES_H_
#define FLAT_RTREE_AGGREGATES_H_

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "storage/page_file.h"

namespace flat {

/// Per-subtree aggregates for the seed hierarchy (aR-tree style): for every
/// (interior page, slot) — and every (seed-leaf page, record slot) — the
/// number of elements in the child's subtree and the number of pages a
/// descent into it would read (the child page itself plus everything below;
/// for a metadata record, its one object page). A range count whose query
/// fully covers a child's MBR adds `elements` in O(1) instead of descending,
/// and `pages` gives the exact reads-saved accounting benches report.
///
/// The aggregates live *outside* the PageFile, in a sidecar keyed by
/// (page, slot): node pages stay byte-identical to non-aggregated builds —
/// preserving the standing byte-identity invariants (across thread counts,
/// post-compaction, and the FLATPGF on-disk format) — and a missing or
/// unconvincing sidecar entry simply falls back to the exact descent, so
/// hostile sidecar *content* can cost performance but never correctness
/// (structural corruption is still rejected by the loader, like every other
/// loader in the repo).
struct AggEntry {
  uint64_t elements = 0;  ///< elements in the child's subtree
  uint32_t pages = 0;     ///< pages a full descent would read (incl. child)
};

inline bool operator==(const AggEntry& a, const AggEntry& b) {
  return a.elements == b.elements && a.pages == b.pages;
}

/// The (page, slot) -> AggEntry map of one built index, immutable after
/// build/load. Lookups are one hash probe plus an indexed access; a slot
/// with no entry (or a zero-element entry — no real subtree is empty)
/// returns nullptr, which query code treats as "descend exactly".
class SeedAggregates {
 public:
  /// The entry for `slot` of `page`, or nullptr when absent.
  const AggEntry* Find(PageId page, uint16_t slot) const {
    auto it = pages_.find(page);
    if (it == pages_.end() || slot >= it->second.size()) return nullptr;
    const AggEntry& e = it->second[slot];
    return e.elements == 0 ? nullptr : &e;
  }

  /// Records `entry` for (page, slot), growing the slot vector as needed
  /// (gaps are zero entries, i.e. absent).
  void Set(PageId page, uint16_t slot, const AggEntry& entry) {
    std::vector<AggEntry>& slots = pages_[page];
    if (slots.size() <= slot) slots.resize(slot + 1);
    slots[slot] = entry;
  }

  /// Total elements across the whole index (the root's subtree); persisted
  /// so loaders can cross-check the sidecar against the catalog.
  uint64_t total_elements() const { return total_elements_; }
  void set_total_elements(uint64_t total) { total_elements_ = total; }

  bool empty() const { return pages_.empty(); }
  size_t page_count() const { return pages_.size(); }

  /// Unordered iteration over (page, slot vector) groups — serialization
  /// sorts the pages itself; tests compare as sets.
  template <typename Fn>
  void ForEachPage(Fn&& fn) const {
    for (const auto& kv : pages_) fn(kv.first, kv.second);
  }

  /// The dense slot vector of `page` (zero entries are absent slots), or
  /// nullptr when the page has no group.
  const std::vector<AggEntry>* Slots(PageId page) const {
    auto it = pages_.find(page);
    return it == pages_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<PageId, std::vector<AggEntry>> pages_;
  uint64_t total_elements_ = 0;
};

/// Build-side accumulator threaded through the level-packing loop
/// (rtree/pack.cc): FlatIndex::Build seeds it with the per-record and
/// per-seed-leaf totals, PackLevel then records one sidecar entry per
/// (parent page, slot) and rolls child totals up into the parent's. All of
/// it runs on the (serial) page-writing path over deterministically ordered
/// entries, so the finished sidecar is byte-identical across thread counts,
/// like the PageFile itself.
class AggregateBuilder {
 public:
  /// Sidecar entry for one child slot.
  void RecordSlot(PageId page, uint16_t slot, const AggEntry& entry) {
    aggregates_.Set(page, slot, entry);
  }

  /// Declares `page`'s full subtree total, making it available to the level
  /// above. FlatIndex::Build seeds seed-leaf pages; PackLevel adds each
  /// packed parent.
  void SetPageTotal(PageId page, const AggEntry& total) {
    totals_[page] = total;
  }

  /// The subtree total of `page`, or nullptr if never declared (an
  /// incomplete child keeps its parents incomplete too — lookups at query
  /// time then fall back to the exact descent).
  const AggEntry* PageTotal(PageId page) const {
    auto it = totals_.find(page);
    return it == totals_.end() ? nullptr : &it->second;
  }

  /// Finalizes: stamps `total` as the index-wide element count and yields
  /// the finished sidecar.
  SeedAggregates Finish(uint64_t total_elements) {
    aggregates_.set_total_elements(total_elements);
    return std::move(aggregates_);
  }

 private:
  SeedAggregates aggregates_;
  std::unordered_map<PageId, AggEntry> totals_;
};

/// Binary sidecar serialization ("FLATAGG1", little-endian):
///   magic "FLATAGG1" | u64 total_elements | u64 page_group_count |
///   per group (ascending PageId): u32 page | u32 slot_count |
///     slot_count x (u64 elements | u32 pages)
/// Groups are written in ascending PageId and slots densely from 0 (absent
/// slots as zero entries), so equal maps serialize byte-identically.
void SaveSeedAggregates(const SeedAggregates& aggregates, std::ostream& out);

/// Loads a sidecar written by SaveSeedAggregates. All header counts are
/// untrusted: parsing is incremental, every count is bounded (slots by the
/// u16 slot range, groups by the remaining stream) before anything is
/// allocated from it, and bad magic / truncation / out-of-order or
/// duplicate groups throw std::runtime_error — the same hostile-input
/// stance as LoadPageFile.
SeedAggregates LoadSeedAggregates(std::istream& in);

}  // namespace flat

#endif  // FLAT_RTREE_AGGREGATES_H_
