#ifndef FLAT_RTREE_BULKLOAD_H_
#define FLAT_RTREE_BULKLOAD_H_

#include <vector>

#include "rtree/entry.h"
#include "rtree/rtree.h"
#include "storage/page_file.h"

namespace flat {

/// The bulkloading strategies the paper compares (Section II / VII) plus the
/// Morton/Z-order and TGS extensions used by the ablation benches.
enum class BulkloadStrategy {
  kStr,      ///< Sort-Tile-Recursive [16] — "the most commonly used".
  kHilbert,  ///< Hilbert-curve packing [12] — "the first".
  kMorton,   ///< Z-order packing [18] (extension; locality ablation).
  kPrTree,   ///< Priority R-Tree [1] — "the most recent".
  kTgs,      ///< Top-down Greedy Split [7] (extension).
};

const char* BulkloadStrategyName(BulkloadStrategy strategy);

/// Bulkloads `entries` into a fresh R-Tree appended to `file` using 3-D
/// Sort-Tile-Recursive tiling. Entries are taken by value because every
/// strategy reorders them.
RTree BulkloadStr(PageFile* file, std::vector<RTreeEntry> entries);

/// Bulkloads by sorting on the Hilbert value of the MBR centers and packing
/// consecutive runs (Kamel & Faloutsos). Upper levels keep curve order.
RTree BulkloadHilbert(PageFile* file, std::vector<RTreeEntry> entries);

/// Same as BulkloadHilbert but with Morton/Z-order keys.
RTree BulkloadMorton(PageFile* file, std::vector<RTreeEntry> entries);

/// Bulkloads with the Priority R-Tree construction (Arge et al., SIGMOD '04):
/// per pseudo-node, six priority leaves of coordinate-extreme entries (xmin,
/// ymin, zmin, xmax, ymax, zmax), remainder median-split on a round-robin
/// axis; applied level by level.
RTree BulkloadPrTree(PageFile* file, std::vector<RTreeEntry> entries);

/// Bulkloads with Top-down Greedy Split (García et al., GIS '96): recursive
/// binary splits at page-multiple boundaries minimizing total bounding volume.
RTree BulkloadTgs(PageFile* file, std::vector<RTreeEntry> entries);

/// Dispatch by strategy.
RTree Bulkload(PageFile* file, std::vector<RTreeEntry> entries,
               BulkloadStrategy strategy);

}  // namespace flat

#endif  // FLAT_RTREE_BULKLOAD_H_
