#include "rtree/aggregates.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace flat {
namespace {

constexpr char kMagic[8] = {'F', 'L', 'A', 'T', 'A', 'G', 'G', '1'};

// One slot as serialized: 8 bytes elements + 4 bytes pages.
constexpr size_t kSlotBytes = sizeof(uint64_t) + sizeof(uint32_t);
// One group header: u32 page + u32 slot_count.
constexpr size_t kGroupHeaderBytes = 2 * sizeof(uint32_t);
// Slots are addressed by u16 in the node formats; no legitimate group can
// exceed this, so the loader rejects larger counts before allocating.
constexpr uint32_t kMaxSlotsPerPage = 65536;

void WriteU32(std::ostream& out, uint32_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteU64(std::ostream& out, uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

uint32_t ReadU32(std::istream& in) {
  uint32_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("LoadSeedAggregates: truncated stream");
  return value;
}

uint64_t ReadU64(std::istream& in) {
  uint64_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("LoadSeedAggregates: truncated stream");
  return value;
}

}  // namespace

void SaveSeedAggregates(const SeedAggregates& aggregates, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  WriteU64(out, aggregates.total_elements());
  WriteU64(out, aggregates.page_count());

  // Ascending PageId makes the byte stream a pure function of the map
  // contents, independent of hash-table iteration order.
  std::vector<PageId> order;
  order.reserve(aggregates.page_count());
  aggregates.ForEachPage([&order](PageId page, const std::vector<AggEntry>&) {
    order.push_back(page);
  });
  std::sort(order.begin(), order.end());
  for (PageId page : order) {
    const std::vector<AggEntry>* slots = aggregates.Slots(page);
    if (page > std::numeric_limits<uint32_t>::max() ||
        slots->size() > kMaxSlotsPerPage) {
      throw std::runtime_error(
          "SaveSeedAggregates: page id or slot count exceeds the format");
    }
    WriteU32(out, static_cast<uint32_t>(page));
    WriteU32(out, static_cast<uint32_t>(slots->size()));
    for (const AggEntry& e : *slots) {
      WriteU64(out, e.elements);
      WriteU32(out, e.pages);
    }
  }
  if (!out) throw std::runtime_error("SaveSeedAggregates: write failed");
}

SeedAggregates LoadSeedAggregates(std::istream& in) {
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    throw std::runtime_error(
        "LoadSeedAggregates: bad magic (not a FLATAGG1 sidecar)");
  }
  SeedAggregates aggregates;
  aggregates.set_total_elements(ReadU64(in));
  const uint64_t groups = ReadU64(in);

  // The group count is untrusted: parse incrementally — the first truncated
  // group throws — and never allocate from the header figure. Where the
  // stream is seekable, bound it against the bytes actually present so a
  // hostile count cannot even spin the loop.
  const std::istream::pos_type here = in.tellg();
  if (here != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end_pos = in.tellg();
    in.seekg(here);
    if (in && end_pos != std::istream::pos_type(-1)) {
      const uint64_t remaining = static_cast<uint64_t>(end_pos - here);
      if (groups > remaining / kGroupHeaderBytes) {
        throw std::runtime_error(
            "LoadSeedAggregates: group count exceeds the stream");
      }
    }
  }

  bool have_last = false;
  uint32_t last_page = 0;
  for (uint64_t g = 0; g < groups; ++g) {
    const uint32_t page = ReadU32(in);
    if (have_last && page <= last_page) {
      throw std::runtime_error(
          "LoadSeedAggregates: page groups out of order or duplicated");
    }
    have_last = true;
    last_page = page;
    const uint32_t slot_count = ReadU32(in);
    if (slot_count > kMaxSlotsPerPage) {
      throw std::runtime_error(
          "LoadSeedAggregates: slot count exceeds the u16 slot range");
    }
    for (uint32_t slot = 0; slot < slot_count; ++slot) {
      AggEntry e;
      e.elements = ReadU64(in);
      e.pages = ReadU32(in);
      // Zero entries are the canonical "absent" encoding; skip them so the
      // in-memory map round-trips exactly (Set would materialize them).
      if (e.elements != 0) {
        aggregates.Set(page, static_cast<uint16_t>(slot), e);
      }
    }
  }
  return aggregates;
}

}  // namespace flat
