#include "rtree/bulkload.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>

#include "geometry/hilbert.h"
#include "geometry/morton.h"
#include "rtree/node.h"
#include "rtree/pack.h"

namespace flat {
namespace {

Aabb BoundsOf(const std::vector<RTreeEntry>& entries) {
  Aabb bounds;
  for (const RTreeEntry& e : entries) bounds.ExpandToInclude(e.box);
  return bounds;
}

// Sorts entries by a space-filling-curve key of their MBR center.
template <typename KeyFn>
void SortByCurveKey(std::vector<RTreeEntry>* entries, KeyFn key_of) {
  std::vector<std::pair<uint64_t, uint32_t>> keyed(entries->size());
  for (size_t i = 0; i < entries->size(); ++i) {
    keyed[i] = {key_of((*entries)[i]), static_cast<uint32_t>(i)};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<RTreeEntry> sorted;
  sorted.reserve(entries->size());
  for (const auto& [key, idx] : keyed) sorted.push_back((*entries)[idx]);
  *entries = std::move(sorted);
}

}  // namespace

const char* BulkloadStrategyName(BulkloadStrategy strategy) {
  switch (strategy) {
    case BulkloadStrategy::kStr:
      return "STR";
    case BulkloadStrategy::kHilbert:
      return "Hilbert";
    case BulkloadStrategy::kMorton:
      return "Morton";
    case BulkloadStrategy::kPrTree:
      return "PR-Tree";
    case BulkloadStrategy::kTgs:
      return "TGS";
  }
  return "unknown";
}

RTree BulkloadStr(PageFile* file, std::vector<RTreeEntry> entries) {
  if (entries.empty()) return RTree();
  StrOrder(&entries, NodeCapacity(file->page_size()));
  return PackOrderedLeaves(file, entries, LevelOrder::kStr);
}

RTree BulkloadHilbert(PageFile* file, std::vector<RTreeEntry> entries) {
  if (entries.empty()) return RTree();
  const Aabb bounds = BoundsOf(entries);
  SortByCurveKey(&entries, [&bounds](const RTreeEntry& e) {
    return Hilbert3D::EncodePoint(e.box.Center(), bounds);
  });
  return PackOrderedLeaves(file, entries, LevelOrder::kSequential);
}

RTree BulkloadMorton(PageFile* file, std::vector<RTreeEntry> entries) {
  if (entries.empty()) return RTree();
  const Aabb bounds = BoundsOf(entries);
  SortByCurveKey(&entries, [&bounds](const RTreeEntry& e) {
    return Morton3D::EncodePoint(e.box.Center(), bounds);
  });
  return PackOrderedLeaves(file, entries, LevelOrder::kSequential);
}

namespace {

// --- Priority R-Tree -------------------------------------------------------
//
// One level of the PR construction, following the paper's own summary
// (Section VII-B): extract up to `cap` extreme entries per priority
// direction into dedicated nodes, median-split the remainder on a
// round-robin axis, recurse. Emits groups of <= cap entries; each group
// becomes one node of the level being built.
class PrLevelBuilder {
 public:
  PrLevelBuilder(uint32_t cap, std::vector<std::vector<RTreeEntry>>* groups)
      : cap_(cap), groups_(groups) {}

  void Build(std::vector<RTreeEntry>&& set, int depth) {
    if (set.empty()) return;
    if (set.size() <= cap_) {
      groups_->push_back(std::move(set));
      return;
    }

    // Six priority groups: minimal lo() per axis, maximal hi() per axis.
    for (int axis = 0; axis < 3 && set.size() > cap_; ++axis) {
      ExtractExtreme(&set, axis, /*take_max=*/false);
    }
    for (int axis = 0; axis < 3 && set.size() > cap_; ++axis) {
      ExtractExtreme(&set, axis, /*take_max=*/true);
    }
    if (set.size() <= cap_) {
      if (!set.empty()) groups_->push_back(std::move(set));
      return;
    }

    const int axis = depth % 3;
    const size_t mid = set.size() / 2;
    std::nth_element(set.begin(), set.begin() + mid, set.end(),
                     [axis](const RTreeEntry& a, const RTreeEntry& b) {
                       return a.box.Center()[axis] < b.box.Center()[axis];
                     });
    std::vector<RTreeEntry> right(set.begin() + mid, set.end());
    set.resize(mid);
    Build(std::move(set), depth + 1);
    Build(std::move(right), depth + 1);
  }

 private:
  // Moves the `cap_` most extreme entries on `axis` into a new group.
  void ExtractExtreme(std::vector<RTreeEntry>* set, int axis, bool take_max) {
    const size_t k = std::min<size_t>(cap_, set->size());
    auto cmp = [axis, take_max](const RTreeEntry& a, const RTreeEntry& b) {
      if (take_max) return a.box.hi()[axis] > b.box.hi()[axis];
      return a.box.lo()[axis] < b.box.lo()[axis];
    };
    std::nth_element(set->begin(), set->begin() + (k - 1), set->end(), cmp);
    groups_->emplace_back(set->begin(), set->begin() + k);
    set->erase(set->begin(), set->begin() + k);
  }

  uint32_t cap_;
  std::vector<std::vector<RTreeEntry>>* groups_;
};

}  // namespace

RTree BulkloadPrTree(PageFile* file, std::vector<RTreeEntry> entries) {
  if (entries.empty()) return RTree();
  const uint32_t capacity = NodeCapacity(file->page_size());

  uint8_t level = 0;
  while (true) {
    std::vector<std::vector<RTreeEntry>> groups;
    PrLevelBuilder builder(capacity, &groups);
    builder.Build(std::move(entries), /*depth=*/0);

    const PageCategory category =
        level == 0 ? PageCategory::kRTreeLeaf : PageCategory::kRTreeInternal;
    std::vector<RTreeEntry> parents;
    parents.reserve(groups.size());
    for (const std::vector<RTreeEntry>& group : groups) {
      PageId page = file->Allocate(category);
      NodeWriter writer(file->MutableData(page), file->page_size());
      writer.Init(level);
      Aabb bounds;
      for (const RTreeEntry& e : group) {
        writer.Append(e);
        bounds.ExpandToInclude(e.box);
      }
      parents.push_back(RTreeEntry{bounds, page});
    }

    if (parents.size() == 1) {
      return RTree(file, static_cast<PageId>(parents.front().id), level + 1);
    }
    entries = std::move(parents);
    ++level;
  }
}

namespace {

// --- Top-down Greedy Split --------------------------------------------------
//
// Recursively splits the entry range in two at a page-aligned boundary,
// choosing the (axis, boundary) pair minimizing the sum of the two bounding
// volumes; leaves of the recursion are single pages. Pages are emitted in
// recursion order and upper levels are STR-packed.
void TgsSplit(std::vector<RTreeEntry>& entries, size_t begin, size_t end,
              uint32_t cap, std::vector<std::pair<size_t, size_t>>* pages) {
  const size_t n = end - begin;
  if (n <= cap) {
    pages->emplace_back(begin, end);
    return;
  }

  // Candidate boundaries are multiples of the page capacity so that all
  // pages except possibly the last stay full (full pages are what make
  // bulkloaded trees beat dynamically-built ones — Section VII).
  const size_t num_pages = (n + cap - 1) / cap;

  double best_cost = std::numeric_limits<double>::infinity();
  int best_axis = 0;
  size_t best_split = begin + (num_pages / 2) * cap;

  std::vector<RTreeEntry> scratch(entries.begin() + begin,
                                  entries.begin() + end);
  for (int axis = 0; axis < 3; ++axis) {
    std::sort(scratch.begin(), scratch.end(),
              [axis](const RTreeEntry& a, const RTreeEntry& b) {
                return a.box.Center()[axis] < b.box.Center()[axis];
              });
    // Prefix/suffix bounding boxes at page-aligned cuts.
    std::vector<Aabb> prefix(scratch.size());
    Aabb running;
    for (size_t i = 0; i < scratch.size(); ++i) {
      running.ExpandToInclude(scratch[i].box);
      prefix[i] = running;
    }
    Aabb suffix;
    std::vector<Aabb> suffixes(scratch.size());
    for (size_t i = scratch.size(); i-- > 0;) {
      suffix.ExpandToInclude(scratch[i].box);
      suffixes[i] = suffix;
    }
    for (size_t p = 1; p < num_pages; ++p) {
      const size_t cut = p * cap;
      if (cut >= scratch.size()) break;
      const double cost =
          prefix[cut - 1].Volume() + suffixes[cut].Volume();
      if (cost < best_cost) {
        best_cost = cost;
        best_axis = axis;
        best_split = begin + cut;
      }
    }
  }

  std::sort(entries.begin() + begin, entries.begin() + end,
            [best_axis](const RTreeEntry& a, const RTreeEntry& b) {
              return a.box.Center()[best_axis] < b.box.Center()[best_axis];
            });
  TgsSplit(entries, begin, best_split, cap, pages);
  TgsSplit(entries, best_split, end, cap, pages);
}

}  // namespace

RTree BulkloadTgs(PageFile* file, std::vector<RTreeEntry> entries) {
  if (entries.empty()) return RTree();
  const uint32_t capacity = NodeCapacity(file->page_size());

  std::vector<std::pair<size_t, size_t>> pages;
  TgsSplit(entries, 0, entries.size(), capacity, &pages);

  std::vector<RTreeEntry> parents;
  parents.reserve(pages.size());
  for (const auto& [begin, end] : pages) {
    PageId page = file->Allocate(PageCategory::kRTreeLeaf);
    NodeWriter writer(file->MutableData(page), file->page_size());
    writer.Init(/*level=*/0);
    Aabb bounds;
    for (size_t i = begin; i < end; ++i) {
      writer.Append(entries[i]);
      bounds.ExpandToInclude(entries[i].box);
    }
    parents.push_back(RTreeEntry{bounds, page});
  }
  if (parents.size() == 1) {
    return RTree(file, static_cast<PageId>(parents.front().id), 1);
  }
  return BuildUpperLevels(file, std::move(parents), /*level=*/1,
                          LevelOrder::kStr);
}

RTree Bulkload(PageFile* file, std::vector<RTreeEntry> entries,
               BulkloadStrategy strategy) {
  switch (strategy) {
    case BulkloadStrategy::kStr:
      return BulkloadStr(file, std::move(entries));
    case BulkloadStrategy::kHilbert:
      return BulkloadHilbert(file, std::move(entries));
    case BulkloadStrategy::kMorton:
      return BulkloadMorton(file, std::move(entries));
    case BulkloadStrategy::kPrTree:
      return BulkloadPrTree(file, std::move(entries));
    case BulkloadStrategy::kTgs:
      return BulkloadTgs(file, std::move(entries));
  }
  return RTree();
}

}  // namespace flat
