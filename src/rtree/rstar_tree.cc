#include "rtree/rstar_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "rtree/node.h"

namespace flat {
namespace {

// R* reinserts the 30 % of entries farthest from the node center.
constexpr double kReinsertFraction = 0.3;

std::vector<RTreeEntry> CollectEntries(const char* data) {
  NodeView node(data);
  std::vector<RTreeEntry> entries;
  entries.reserve(node.count());
  for (uint16_t i = 0; i < node.count(); ++i) {
    entries.push_back(node.EntryAt(i));
  }
  return entries;
}

void RewriteNode(char* data, uint32_t page_size, uint8_t level,
                 const std::vector<RTreeEntry>& entries) {
  NodeWriter writer(data, page_size);
  writer.Init(level);
  for (const RTreeEntry& e : entries) writer.Append(e);
}

Aabb BoundsOf(const std::vector<RTreeEntry>& entries) {
  Aabb box;
  for (const RTreeEntry& e : entries) box.ExpandToInclude(e.box);
  return box;
}

}  // namespace

RStarTree::RStarTree(PageFile* file)
    : file_(file),
      capacity_(NodeCapacity(file->page_size())),
      min_fill_(std::max<uint32_t>(2, capacity_ * 2 / 5)) {}

Aabb RStarTree::NodeBounds(PageId page) const {
  return NodeView(file_->Data(page)).Bounds();
}

std::vector<RStarTree::PathStep> RStarTree::ChoosePath(const Aabb& box,
                                                       uint8_t target_level) {
  std::vector<PathStep> path;
  path.push_back({root_, -1});
  while (true) {
    NodeView node(file_->Data(path.back().page));
    if (node.level() == target_level) return path;

    int best = 0;
    if (node.level() == 1) {
      // Children are leaves: minimize overlap enlargement (ties: volume
      // enlargement, then volume).
      double best_overlap_delta = std::numeric_limits<double>::infinity();
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_volume = std::numeric_limits<double>::infinity();
      for (uint16_t i = 0; i < node.count(); ++i) {
        const Aabb child = node.BoxAt(i);
        const Aabb grown = Aabb::Union(child, box);
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (uint16_t j = 0; j < node.count(); ++j) {
          if (j == i) continue;
          const Aabb other = node.BoxAt(j);
          overlap_before += child.OverlapVolume(other);
          overlap_after += grown.OverlapVolume(other);
        }
        const double overlap_delta = overlap_after - overlap_before;
        const double enlargement = child.Enlargement(box);
        const double volume = child.Volume();
        if (overlap_delta < best_overlap_delta ||
            (overlap_delta == best_overlap_delta &&
             (enlargement < best_enlargement ||
              (enlargement == best_enlargement && volume < best_volume)))) {
          best_overlap_delta = overlap_delta;
          best_enlargement = enlargement;
          best_volume = volume;
          best = i;
        }
      }
    } else {
      // Minimize volume enlargement (ties: volume).
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_volume = std::numeric_limits<double>::infinity();
      for (uint16_t i = 0; i < node.count(); ++i) {
        const Aabb child = node.BoxAt(i);
        const double enlargement = child.Enlargement(box);
        const double volume = child.Volume();
        if (enlargement < best_enlargement ||
            (enlargement == best_enlargement && volume < best_volume)) {
          best_enlargement = enlargement;
          best_volume = volume;
          best = i;
        }
      }
    }
    path.push_back({static_cast<PageId>(node.IdAt(best)), best});
  }
}

void RStarTree::Insert(const RTreeEntry& entry) {
  if (root_ == kInvalidPageId) {
    root_ = file_->Allocate(PageCategory::kRTreeLeaf);
    NodeWriter writer(file_->MutableData(root_), file_->page_size());
    writer.Init(/*level=*/0);
    writer.Append(entry);
    height_ = 1;
    size_ = 1;
    return;
  }
  reinserted_on_level_.assign(height_, false);
  InsertAtLevel(entry, /*target_level=*/0);
  ++size_;
}

void RStarTree::InsertAtLevel(const RTreeEntry& entry, uint8_t target_level) {
  std::vector<PathStep> path = ChoosePath(entry.box, target_level);
  const PageId page = path.back().page;
  NodeWriter writer(file_->MutableData(page), file_->page_size());
  if (!writer.Full()) {
    writer.Append(entry);
    AdjustUpward(path);
    return;
  }
  OverflowTreatment(std::move(path), entry, target_level);
}

void RStarTree::OverflowTreatment(std::vector<PathStep> path,
                                  const RTreeEntry& extra, uint8_t level) {
  const bool is_root = path.size() == 1;
  if (!is_root && level < reinserted_on_level_.size() &&
      !reinserted_on_level_[level]) {
    reinserted_on_level_[level] = true;
    ForcedReinsert(std::move(path), extra, level);
  } else {
    Split(std::move(path), extra, level);
  }
}

void RStarTree::ForcedReinsert(std::vector<PathStep> path,
                               const RTreeEntry& extra, uint8_t level) {
  const PageId page = path.back().page;
  std::vector<RTreeEntry> entries = CollectEntries(file_->Data(page));
  entries.push_back(extra);

  const Vec3 center = BoundsOf(entries).Center();
  std::sort(entries.begin(), entries.end(),
            [&center](const RTreeEntry& a, const RTreeEntry& b) {
              return (a.box.Center() - center).SquaredNorm() <
                     (b.box.Center() - center).SquaredNorm();
            });

  const size_t reinsert_count = std::max<size_t>(
      1, static_cast<size_t>(entries.size() * kReinsertFraction));
  std::vector<RTreeEntry> reinsert(entries.end() - reinsert_count,
                                   entries.end());
  entries.resize(entries.size() - reinsert_count);

  RewriteNode(file_->MutableData(page), file_->page_size(), level, entries);
  AdjustUpward(path);

  for (const RTreeEntry& e : reinsert) {
    InsertAtLevel(e, level);
  }
}

void RStarTree::Split(std::vector<PathStep> path, const RTreeEntry& extra,
                      uint8_t level) {
  const PageId page = path.back().page;
  std::vector<RTreeEntry> entries = CollectEntries(file_->Data(page));
  entries.push_back(extra);
  const size_t total = entries.size();

  // ChooseSplitAxis: the axis minimizing the margin sum over all candidate
  // distributions of both boundary sorts.
  int best_axis = 0;
  double best_margin_sum = std::numeric_limits<double>::infinity();
  for (int axis = 0; axis < 3; ++axis) {
    for (int use_hi = 0; use_hi < 2; ++use_hi) {
      std::sort(entries.begin(), entries.end(),
                [axis, use_hi](const RTreeEntry& a, const RTreeEntry& b) {
                  return use_hi ? a.box.hi()[axis] < b.box.hi()[axis]
                                : a.box.lo()[axis] < b.box.lo()[axis];
                });
      double margin_sum = 0.0;
      for (size_t k = min_fill_; k <= total - min_fill_; ++k) {
        Aabb left, right;
        for (size_t i = 0; i < k; ++i) left.ExpandToInclude(entries[i].box);
        for (size_t i = k; i < total; ++i) {
          right.ExpandToInclude(entries[i].box);
        }
        margin_sum += left.Margin() + right.Margin();
      }
      if (margin_sum < best_margin_sum) {
        best_margin_sum = margin_sum;
        best_axis = axis;
      }
    }
  }

  // ChooseSplitIndex on the winning axis (lo-sort; the classic algorithm
  // considers both sorts — using the lower boundary keeps this O(M log M)
  // and differs negligibly): minimum overlap, ties by minimum total volume.
  std::sort(entries.begin(), entries.end(),
            [best_axis](const RTreeEntry& a, const RTreeEntry& b) {
              return a.box.lo()[best_axis] < b.box.lo()[best_axis];
            });
  size_t best_split = min_fill_;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_volume = std::numeric_limits<double>::infinity();
  for (size_t k = min_fill_; k <= total - min_fill_; ++k) {
    Aabb left, right;
    for (size_t i = 0; i < k; ++i) left.ExpandToInclude(entries[i].box);
    for (size_t i = k; i < total; ++i) right.ExpandToInclude(entries[i].box);
    const double overlap = left.OverlapVolume(right);
    const double volume = left.Volume() + right.Volume();
    if (overlap < best_overlap ||
        (overlap == best_overlap && volume < best_volume)) {
      best_overlap = overlap;
      best_volume = volume;
      best_split = k;
    }
  }

  std::vector<RTreeEntry> left(entries.begin(), entries.begin() + best_split);
  std::vector<RTreeEntry> right(entries.begin() + best_split, entries.end());

  RewriteNode(file_->MutableData(page), file_->page_size(), level, left);
  const PageCategory category =
      level == 0 ? PageCategory::kRTreeLeaf : PageCategory::kRTreeInternal;
  const PageId new_page = file_->Allocate(category);
  RewriteNode(file_->MutableData(new_page), file_->page_size(), level, right);

  if (path.size() == 1) {
    // Root split: grow the tree.
    const PageId new_root = file_->Allocate(PageCategory::kRTreeInternal);
    NodeWriter writer(file_->MutableData(new_root), file_->page_size());
    writer.Init(static_cast<uint8_t>(level + 1));
    writer.Append(RTreeEntry{BoundsOf(left), page});
    writer.Append(RTreeEntry{BoundsOf(right), new_page});
    root_ = new_root;
    ++height_;
    reinserted_on_level_.resize(height_, true);
    return;
  }

  // Update the parent's slot for the shrunk node, then add the new sibling.
  path.pop_back();
  const PageId parent = path.back().page;
  {
    NodeWriter writer(file_->MutableData(parent), file_->page_size());
    // Find the slot pointing at `page` (the recorded slot index is stable,
    // but re-deriving it is robust against earlier sibling splits).
    for (uint16_t i = 0; i < writer.count(); ++i) {
      if (writer.EntryAt(i).id == page) {
        writer.SetEntry(i, RTreeEntry{BoundsOf(left), page});
        break;
      }
    }
  }
  AdjustUpward(path);

  NodeWriter parent_writer(file_->MutableData(parent), file_->page_size());
  const RTreeEntry sibling{BoundsOf(right), new_page};
  if (!parent_writer.Full()) {
    parent_writer.Append(sibling);
    AdjustUpward(path);
  } else {
    OverflowTreatment(std::move(path), sibling,
                      static_cast<uint8_t>(level + 1));
  }
}

void RStarTree::AdjustUpward(const std::vector<PathStep>& path) {
  for (size_t i = path.size(); i-- > 1;) {
    const PageId child = path[i].page;
    const PageId parent = path[i - 1].page;
    const Aabb bounds = NodeBounds(child);
    NodeWriter writer(file_->MutableData(parent), file_->page_size());
    for (uint16_t s = 0; s < writer.count(); ++s) {
      if (writer.EntryAt(s).id == child) {
        writer.SetEntry(s, RTreeEntry{bounds, child});
        break;
      }
    }
  }
}

}  // namespace flat
