#ifndef FLAT_RTREE_RTREE_H_
#define FLAT_RTREE_RTREE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "geometry/aabb.h"
#include "rtree/entry.h"
#include "rtree/node.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace flat {

/// Handle to a disk-resident R-Tree rooted at `root`. The tree itself lives in
/// a PageFile; all query-time page accesses go through the caller's
/// BufferPool, which is where I/O is accounted.
///
/// All bulkloaders (STR, Hilbert/Morton, PR-Tree, TGS) and the dynamic
/// R*-tree produce trees with the same on-page layout, so this single query
/// engine serves every variant — guaranteeing the baselines and FLAT's seed
/// tree are measured by identical code.
class RTree {
 public:
  /// Constructs an empty handle (no root; all queries return nothing).
  RTree() = default;

  RTree(const PageFile* file, PageId root, int height)
      : file_(file), root_(root), height_(height) {}

  bool empty() const { return root_ == kInvalidPageId; }

  /// Number of levels; 0 for an empty tree, 1 for a single leaf root.
  int height() const { return height_; }

  PageId root() const { return root_; }

  const PageFile* file() const { return file_; }

  /// Appends the ids of all leaf entries whose box intersects `query`.
  void RangeQuery(BufferPool* pool, const Aabb& query,
                  std::vector<uint64_t>* out) const;

  /// Number of leaf entries whose box intersects `query`.
  size_t RangeCount(BufferPool* pool, const Aabb& query) const;

  /// Appends the ids of all leaf entries whose box intersects the closed
  /// ball around `center` — the paper's structural-neighborhood primitive
  /// ("all elements within a distance of 5 µm", Section III-A). Prunes with
  /// exact box-to-sphere distances, so it reads no more pages than the
  /// bounding-box range query.
  void SphereQuery(BufferPool* pool, const Vec3& center, double radius,
                   std::vector<uint64_t>* out) const;

  /// The `k` entries whose MBRs are closest to `center` (by box-to-point
  /// distance; ties broken arbitrarily), nearest first. Classic best-first
  /// search (Hjaltason & Samet): provably reads the minimum number of nodes
  /// for MBR-distance kNN.
  std::vector<RTreeEntry> KnnQuery(BufferPool* pool, const Vec3& center,
                                   size_t k) const;

  /// Depth-first search for *one* leaf entry intersecting `query`; follows a
  /// single path when possible and backtracks only on dead ends. This is the
  /// overlap-immune "find an arbitrary element in the range" primitive the
  /// paper's seed phase builds on (Section V-B.1).
  std::optional<RTreeEntry> FindAny(BufferPool* pool, const Aabb& query) const;

  /// Structural statistics computed by walking the tree without touching the
  /// buffer pool (no I/O is charged).
  struct TreeStats {
    size_t internal_pages = 0;
    size_t leaf_pages = 0;
    size_t leaf_entries = 0;
    int height = 0;
    /// Sum over leaf pages of pairwise-overlap volume with other leaves is
    /// expensive; instead we expose total leaf MBR volume, a cheap overlap
    /// proxy used by the bulkload-quality ablation.
    double total_leaf_volume = 0.0;
  };
  TreeStats ComputeStats() const;

 private:
  const PageFile* file_ = nullptr;
  PageId root_ = kInvalidPageId;
  int height_ = 0;
};

}  // namespace flat

#endif  // FLAT_RTREE_RTREE_H_
