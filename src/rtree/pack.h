#ifndef FLAT_RTREE_PACK_H_
#define FLAT_RTREE_PACK_H_

#include <vector>

#include "rtree/aggregates.h"
#include "rtree/entry.h"
#include "rtree/node.h"
#include "rtree/rtree.h"
#include "storage/page_file.h"

namespace flat {

class ThreadPool;

/// Strict *total* order on entries for the STR sorting passes: center
/// coordinate on `axis`, tie-broken lexicographically by the box corners and
/// finally the id. A total order makes the sorted permutation unique, so
/// serial std::sort and the chunk-and-merge ParallelSort produce the same
/// layout — the property behind "parallel build is byte-identical to serial".
/// Entries that still compare equal are byte-identical, so their relative
/// order cannot affect the output pages either.
struct EntryCenterOrder {
  int axis;

  bool operator()(const RTreeEntry& a, const RTreeEntry& b) const {
    const double ca = a.box.Center()[axis];
    const double cb = b.box.Center()[axis];
    if (ca != cb) return ca < cb;
    for (int ax = 0; ax < 3; ++ax) {
      if (a.box.lo()[ax] != b.box.lo()[ax]) {
        return a.box.lo()[ax] < b.box.lo()[ax];
      }
      if (a.box.hi()[ax] != b.box.hi()[ax]) {
        return a.box.hi()[ax] < b.box.hi()[ax];
      }
    }
    return a.id < b.id;
  }
};

/// How a bulkloader arranges the entries of each tree level before packing
/// them into consecutive full pages.
enum class LevelOrder {
  /// Keep the order produced for the level below (Hilbert/Morton packing —
  /// consecutive runs of children become one parent).
  kSequential,
  /// Re-tile the level with Sort-Tile-Recursive on entry centers.
  kStr,
};

/// Reorders `entries` in 3-D Sort-Tile-Recursive order (Leutenegger et al.,
/// ICDE '97 — reference [16]): sort by x-center into vertical slabs, each slab
/// by y-center into runs, each run by z-center. `node_capacity` determines the
/// tile size so that consecutive runs of `node_capacity` entries form tight
/// tiles. With a `pool` the x pass is a parallel merge sort and the per-slab
/// y / per-run z passes sort independent ranges in parallel; the output is
/// identical to the serial order (EntryCenterOrder is total).
void StrOrder(std::vector<RTreeEntry>* entries, uint32_t node_capacity,
              ThreadPool* pool = nullptr);

/// Exact ceil(value^(1/3)) / ceil(sqrt(value)) on integers (std::cbrt(27.0)
/// can land just above 3.0, which would silently mis-tile STR).
size_t CeilCbrt(size_t value);
size_t CeilSqrt(size_t value);

/// Packs `ordered` into consecutive full nodes of `level` appended to `file`,
/// and returns the parent-level entries (node MBR + child PageId). Level-0
/// pages are tagged `leaf_category`, higher levels `internal_category` (the
/// FLAT seed tree reuses this machinery with seed categories).
///
/// `internal_format` selects the page layout of levels > 0 (rtree/node.h):
/// kExact writes classic RTreeEntry pages; kQuantized writes compressed
/// pages — the chunk's exact union box once, children as outward-rounded
/// 16-bit MBRs — with ~3.45x the fanout. Level 0 is always exact (results
/// must be exact), and only readers that dispatch on the header's format
/// byte (the FLAT seed descent) may consume quantized pages; the plain
/// RTree query path reads exact pages only.
///
/// With an `aggregates` builder, every internal page packed here also
/// records one sidecar entry per child slot (the child's subtree totals,
/// looked up from the builder's page totals) and publishes the packed
/// page's own rolled-up total for the level above (rtree/aggregates.h).
/// A child with no declared total leaves its slot — and the parent's
/// total — unrecorded, which query-time lookups treat as "descend
/// exactly". Runs on the serial packing path, so the sidecar is as
/// deterministic as the page bytes.
std::vector<RTreeEntry> PackLevel(
    PageFile* file, const std::vector<RTreeEntry>& ordered, uint8_t level,
    PageCategory leaf_category = PageCategory::kRTreeLeaf,
    PageCategory internal_category = PageCategory::kRTreeInternal,
    NodeFormat internal_format = NodeFormat::kExact,
    AggregateBuilder* aggregates = nullptr);

/// Repeatedly packs levels until a single root remains; `level_entries` are
/// the parents of the already-written level `level - 1`. Returns the finished
/// tree. `pool` parallelizes the per-level STR re-ordering (page writes stay
/// serial so PageIds are allocated in a deterministic order).
/// `internal_format` as in PackLevel; the STR tile size follows the selected
/// format's capacity, so compressed levels pack ~3.45x more children per
/// node and the tree gets correspondingly shallower.
/// `aggregates` (optional) as in PackLevel, threaded through every level.
RTree BuildUpperLevels(
    PageFile* file, std::vector<RTreeEntry> level_entries, uint8_t level,
    LevelOrder order,
    PageCategory internal_category = PageCategory::kRTreeInternal,
    ThreadPool* pool = nullptr,
    NodeFormat internal_format = NodeFormat::kExact,
    AggregateBuilder* aggregates = nullptr);

/// Bulkloads from pre-ordered leaf entries: packs leaves in the given order,
/// then builds upper levels per `order`. The workhorse shared by every
/// bulkloading strategy except the PR-Tree (which packs its own levels).
RTree PackOrderedLeaves(PageFile* file, const std::vector<RTreeEntry>& ordered,
                        LevelOrder order,
                        PageCategory leaf_category = PageCategory::kRTreeLeaf);

}  // namespace flat

#endif  // FLAT_RTREE_PACK_H_
