#ifndef FLAT_RTREE_RSTAR_TREE_H_
#define FLAT_RTREE_RSTAR_TREE_H_

#include <cstdint>
#include <vector>

#include "rtree/entry.h"
#include "rtree/rtree.h"
#include "storage/page_file.h"

namespace flat {

/// Dynamic R*-tree (Beckmann et al., SIGMOD '90 — reference [3]).
///
/// The paper compares only against *bulkloaded* R-Trees "because bulkloaded
/// trees outperform other R-Tree variants such as the R*-Tree, primarily due
/// to better page utilization" (Section VII). This implementation exists to
/// back that claim up: `bench_ablation_bulk_vs_rstar` measures page
/// utilization and query I/O of a consecutively-loaded R*-tree against the
/// bulkloaded variants.
///
/// Implements ChooseSubtree (minimum overlap enlargement at the leaf level,
/// minimum volume enlargement above), the R* split (axis by minimum margin
/// sum, distribution by minimum overlap), and forced reinsertion of the 30 %
/// farthest entries on first overflow per level.
class RStarTree {
 public:
  explicit RStarTree(PageFile* file);

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  /// Inserts one leaf entry.
  void Insert(const RTreeEntry& entry);

  /// Read-only handle sharing the common query engine.
  RTree tree() const { return RTree(file_, root_, height_); }

  size_t size() const { return size_; }

 private:
  struct PathStep {
    PageId page;
    int slot_in_parent;  // -1 for the root
  };

  // Descends from the root to a node at `target_level`, greedily choosing
  // children; records the path.
  std::vector<PathStep> ChoosePath(const Aabb& box, uint8_t target_level);

  // Inserts `entry` into the node at `target_level`; runs overflow treatment
  // as needed.
  void InsertAtLevel(const RTreeEntry& entry, uint8_t target_level);

  // Handles an overflowing node (its entries plus `extra` exceed capacity).
  void OverflowTreatment(std::vector<PathStep> path, const RTreeEntry& extra,
                         uint8_t level);

  // Forced reinsert: keeps the (M+1-p) entries closest to the node center,
  // reinserts the rest.
  void ForcedReinsert(std::vector<PathStep> path, const RTreeEntry& extra,
                      uint8_t level);

  // R* split of the node at the end of `path` together with `extra`.
  void Split(std::vector<PathStep> path, const RTreeEntry& extra,
             uint8_t level);

  // Recomputes ancestor MBRs along `path` (which ends at a modified node).
  void AdjustUpward(const std::vector<PathStep>& path);

  // Bounding box of all entries currently in `page`.
  Aabb NodeBounds(PageId page) const;

  PageFile* file_;
  PageId root_ = kInvalidPageId;
  int height_ = 0;
  size_t size_ = 0;
  uint32_t capacity_;
  uint32_t min_fill_;

  // One flag per level, reset at each top-level Insert: forced reinsertion
  // runs at most once per level per insertion (R* "OverflowTreatment").
  std::vector<bool> reinserted_on_level_;
};

}  // namespace flat

#endif  // FLAT_RTREE_RSTAR_TREE_H_
