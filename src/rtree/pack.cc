#include "rtree/pack.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "parallel/parallel_sort.h"
#include "parallel/thread_pool.h"
#include "rtree/node.h"

namespace flat {

size_t CeilCbrt(size_t value) {
  if (value <= 1) return value;
  size_t r = static_cast<size_t>(std::llround(std::cbrt(
      static_cast<double>(value))));
  while (r * r * r < value) ++r;
  while (r > 1 && (r - 1) * (r - 1) * (r - 1) >= value) --r;
  return r;
}

size_t CeilSqrt(size_t value) {
  if (value <= 1) return value;
  size_t r = static_cast<size_t>(std::llround(std::sqrt(
      static_cast<double>(value))));
  while (r * r < value) ++r;
  while (r > 1 && (r - 1) * (r - 1) >= value) --r;
  return r;
}

void StrOrder(std::vector<RTreeEntry>* entries, uint32_t node_capacity,
              ThreadPool* pool) {
  const size_t n = entries->size();
  if (n <= node_capacity) return;
  const size_t pages = (n + node_capacity - 1) / node_capacity;

  // Number of x-slabs: ceil(P^(1/3)); each slab then holds about P^(2/3)
  // pages and is tiled recursively in y and z.
  const size_t sx = CeilCbrt(pages);
  const size_t slab_size = (n + sx - 1) / sx;

  ParallelSort(pool, entries->begin(), entries->end(), EntryCenterOrder{0});

  struct Range {
    size_t begin;
    size_t end;
  };
  std::vector<Range> slabs;
  for (size_t xs = 0; xs < n; xs += slab_size) {
    slabs.push_back({xs, std::min(n, xs + slab_size)});
  }
  ParallelFor(pool, slabs.size(), /*grain=*/1, [&](size_t, size_t s) {
    std::sort(entries->begin() + slabs[s].begin,
              entries->begin() + slabs[s].end, EntryCenterOrder{1});
  });

  std::vector<Range> runs;
  for (const Range& slab : slabs) {
    const size_t slab_n = slab.end - slab.begin;
    const size_t slab_pages = (slab_n + node_capacity - 1) / node_capacity;
    const size_t sy = CeilSqrt(slab_pages);
    const size_t run_size = (slab_n + sy - 1) / sy;
    for (size_t ys = slab.begin; ys < slab.end; ys += run_size) {
      runs.push_back({ys, std::min(slab.end, ys + run_size)});
    }
  }
  ParallelFor(pool, runs.size(), /*grain=*/1, [&](size_t, size_t r) {
    std::sort(entries->begin() + runs[r].begin, entries->begin() + runs[r].end,
              EntryCenterOrder{2});
  });
}

std::vector<RTreeEntry> PackLevel(PageFile* file,
                                  const std::vector<RTreeEntry>& ordered,
                                  uint8_t level, PageCategory leaf_category,
                                  PageCategory internal_category,
                                  NodeFormat internal_format,
                                  AggregateBuilder* aggregates) {
  // Leaves and object pages are always exact; the format applies to the
  // internal levels only (see pack.h).
  const bool quantized =
      level > 0 && internal_format == NodeFormat::kQuantized;
  const uint32_t capacity =
      quantized ? QuantizedNodeCapacity(file->page_size())
                : NodeCapacity(file->page_size());
  const PageCategory category = level == 0 ? leaf_category : internal_category;

  std::vector<RTreeEntry> parents;
  parents.reserve(ordered.size() / capacity + 1);
  for (size_t start = 0; start < ordered.size(); start += capacity) {
    const size_t end = std::min(ordered.size(), start + capacity);
    PageId page = file->Allocate(category);
    Aabb bounds;
    for (size_t i = start; i < end; ++i) {
      bounds.ExpandToInclude(ordered[i].box);
    }
    if (quantized) {
      // The chunk's exact union is the page's quantization grid, so every
      // child is inside it by construction (the writer's contract).
      CompressedNodeWriter writer(file->MutableData(page), file->page_size());
      writer.Init(level, bounds);
      for (size_t i = start; i < end; ++i) writer.Append(ordered[i]);
    } else {
      NodeWriter writer(file->MutableData(page), file->page_size());
      writer.Init(level);
      for (size_t i = start; i < end; ++i) writer.Append(ordered[i]);
    }
    if (aggregates != nullptr && level > 0) {
      // Roll the children's subtree totals up into this page's sidecar
      // entries and its own total. An undeclared child (only possible when
      // a caller seeded the builder partially) keeps this page's total
      // undeclared too, so incompleteness propagates to the root instead of
      // materializing a wrong count.
      AggEntry total{0, 1};  // the page itself
      bool complete = true;
      for (size_t i = start; i < end; ++i) {
        const AggEntry* child =
            aggregates->PageTotal(static_cast<PageId>(ordered[i].id));
        if (child == nullptr) {
          complete = false;
          continue;
        }
        aggregates->RecordSlot(page, static_cast<uint16_t>(i - start), *child);
        total.elements += child->elements;
        total.pages += child->pages;
      }
      if (complete) aggregates->SetPageTotal(page, total);
    }
    parents.push_back(RTreeEntry{bounds, page});
  }
  return parents;
}

RTree BuildUpperLevels(PageFile* file, std::vector<RTreeEntry> level_entries,
                       uint8_t level, LevelOrder order,
                       PageCategory internal_category, ThreadPool* pool,
                       NodeFormat internal_format,
                       AggregateBuilder* aggregates) {
  assert(!level_entries.empty());
  const uint32_t capacity =
      NodeCapacityFor(internal_format, file->page_size());
  while (level_entries.size() > 1) {
    if (order == LevelOrder::kStr) {
      StrOrder(&level_entries, capacity, pool);
    }
    level_entries =
        PackLevel(file, level_entries, level, PageCategory::kRTreeLeaf,
                  internal_category, internal_format, aggregates);
    ++level;
  }
  return RTree(file, static_cast<PageId>(level_entries.front().id), level);
}

RTree PackOrderedLeaves(PageFile* file, const std::vector<RTreeEntry>& ordered,
                        LevelOrder order, PageCategory leaf_category) {
  if (ordered.empty()) return RTree();
  std::vector<RTreeEntry> parents =
      PackLevel(file, ordered, /*level=*/0, leaf_category);
  if (parents.size() == 1) {
    return RTree(file, static_cast<PageId>(parents.front().id), 1);
  }
  return BuildUpperLevels(file, std::move(parents), /*level=*/1, order);
}

}  // namespace flat
