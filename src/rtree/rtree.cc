#include "rtree/rtree.h"

#include <cassert>
#include <queue>

namespace flat {

void RTree::RangeQuery(BufferPool* pool, const Aabb& query,
                       std::vector<uint64_t>* out) const {
  if (empty() || query.IsEmpty()) return;
  std::vector<PageId> stack = {root_};
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    NodeView node(pool->Read(id));
    for (uint16_t i = 0; i < node.count(); ++i) {
      RTreeEntry e = node.EntryAt(i);
      if (!e.box.Intersects(query)) continue;
      if (node.is_leaf()) {
        out->push_back(e.id);
      } else {
        stack.push_back(static_cast<PageId>(e.id));
      }
    }
  }
}

size_t RTree::RangeCount(BufferPool* pool, const Aabb& query) const {
  std::vector<uint64_t> ids;
  RangeQuery(pool, query, &ids);
  return ids.size();
}

void RTree::SphereQuery(BufferPool* pool, const Vec3& center, double radius,
                        std::vector<uint64_t>* out) const {
  if (empty() || radius < 0.0) return;
  std::vector<PageId> stack = {root_};
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    NodeView node(pool->Read(id));
    for (uint16_t i = 0; i < node.count(); ++i) {
      RTreeEntry e = node.EntryAt(i);
      if (!e.box.IntersectsSphere(center, radius)) continue;
      if (node.is_leaf()) {
        out->push_back(e.id);
      } else {
        stack.push_back(static_cast<PageId>(e.id));
      }
    }
  }
}

std::optional<RTreeEntry> RTree::FindAny(BufferPool* pool,
                                         const Aabb& query) const {
  if (empty() || query.IsEmpty()) return std::nullopt;
  // Explicit DFS stack; children are pushed in reverse slot order so the
  // first intersecting child is explored first, matching the "follow one
  // path, backtrack only on dead ends" behavior the paper describes.
  std::vector<PageId> stack = {root_};
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    NodeView node(pool->Read(id));
    if (node.is_leaf()) {
      for (uint16_t i = 0; i < node.count(); ++i) {
        RTreeEntry e = node.EntryAt(i);
        if (e.box.Intersects(query)) return e;
      }
      continue;
    }
    for (int i = node.count() - 1; i >= 0; --i) {
      RTreeEntry e = node.EntryAt(static_cast<uint16_t>(i));
      if (e.box.Intersects(query)) {
        stack.push_back(static_cast<PageId>(e.id));
      }
    }
  }
  return std::nullopt;
}

std::vector<RTreeEntry> RTree::KnnQuery(BufferPool* pool, const Vec3& center,
                                        size_t k) const {
  std::vector<RTreeEntry> result;
  if (empty() || k == 0) return result;

  // Best-first search over a min-heap keyed by box-to-point distance. Heap
  // items are either nodes (to expand) or leaf entries (to emit); when a
  // leaf entry surfaces, no unexpanded box can be closer.
  struct Item {
    double distance2;
    bool is_entry;
    PageId page;       // when !is_entry
    RTreeEntry entry;  // when is_entry
  };
  auto cmp = [](const Item& a, const Item& b) {
    return a.distance2 > b.distance2;
  };
  std::priority_queue<Item, std::vector<Item>, decltype(cmp)> heap(cmp);
  heap.push(Item{0.0, false, root_, {}});

  while (!heap.empty() && result.size() < k) {
    const Item item = heap.top();
    heap.pop();
    if (item.is_entry) {
      result.push_back(item.entry);
      continue;
    }
    NodeView node(pool->Read(item.page));
    for (uint16_t i = 0; i < node.count(); ++i) {
      const RTreeEntry e = node.EntryAt(i);
      const double d2 = e.box.DistanceSquaredTo(center);
      if (node.is_leaf()) {
        heap.push(Item{d2, true, kInvalidPageId, e});
      } else {
        heap.push(Item{d2, false, static_cast<PageId>(e.id), {}});
      }
    }
  }
  return result;
}

RTree::TreeStats RTree::ComputeStats() const {
  TreeStats stats;
  if (empty()) return stats;
  stats.height = height_;
  std::vector<PageId> stack = {root_};
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    NodeView node(file_->Data(id));
    if (node.is_leaf()) {
      ++stats.leaf_pages;
      stats.leaf_entries += node.count();
      stats.total_leaf_volume += node.Bounds().Volume();
    } else {
      ++stats.internal_pages;
      for (uint16_t i = 0; i < node.count(); ++i) {
        stack.push_back(static_cast<PageId>(node.IdAt(i)));
      }
    }
  }
  return stats;
}

}  // namespace flat
