#ifndef FLAT_RTREE_ENTRY_H_
#define FLAT_RTREE_ENTRY_H_

#include <cstdint>
#include <type_traits>

#include "geometry/aabb.h"

namespace flat {

/// One slot of an R-Tree node (and of a FLAT object page).
///
/// In leaf nodes `id` is the element identifier; in internal nodes it is the
/// PageId of the child node. The paper stores bare MBRs (48 bytes) on leaf
/// pages; we add an 8-byte identifier so query results can name the elements
/// they return, giving 56-byte slots and a fanout of 73 on 4 KiB pages
/// instead of the paper's 85 — a constant factor that affects neither trends
/// nor comparisons, since every index here uses the same slot format.
struct RTreeEntry {
  Aabb box;
  uint64_t id = 0;
};

static_assert(std::is_trivially_copyable_v<RTreeEntry>,
              "RTreeEntry is serialized to pages by memcpy");
static_assert(sizeof(RTreeEntry) == 56, "unexpected on-page slot size");

}  // namespace flat

#endif  // FLAT_RTREE_ENTRY_H_
