#ifndef FLAT_RTREE_ENTRY_H_
#define FLAT_RTREE_ENTRY_H_

#include <cstdint>
#include <type_traits>

#include "geometry/aabb.h"

namespace flat {

/// One slot of an exact-format R-Tree node (and of a FLAT object page).
///
/// In leaf nodes `id` is the element identifier; in internal nodes it is the
/// PageId of the child node. The paper stores bare MBRs on leaf pages; we add
/// an 8-byte identifier so query results can name the elements they return —
/// a constant factor that affects neither trends nor comparisons, since every
/// index here uses the same slot format. The actual slot sizes and per-page
/// fanouts are *derived*, not quoted: see the static_asserts in rtree/node.h
/// next to NodeCapacity / QuantizedNodeCapacity, the one place the numbers
/// live.
struct RTreeEntry {
  Aabb box;
  uint64_t id = 0;
};

static_assert(std::is_trivially_copyable_v<RTreeEntry>,
              "RTreeEntry is serialized to pages by memcpy");
static_assert(sizeof(RTreeEntry) == sizeof(Aabb) + sizeof(uint64_t),
              "no padding: the slot is an Aabb (6 f64) plus a u64 id");

/// One slot of a *compressed* (quantized) internal node: the child MBR as
/// six u16 cell indexes on the 65536-cell grid spanned by the node's own
/// exact box (stored once per page — see rtree/node.h and
/// docs/file_format.md §2.1), plus the child PageId. Quantization rounds
/// outward (geometry/box_kernels.h), so the slot's box contains the child's
/// exact box and integer gates never miss.
struct QuantizedSlot {
  uint16_t lo[3] = {0, 0, 0};  ///< lo.x lo.y lo.z cell indexes
  uint16_t hi[3] = {0, 0, 0};  ///< hi.x hi.y hi.z cell indexes
  uint32_t child = 0;          ///< child PageId
};

static_assert(std::is_trivially_copyable_v<QuantizedSlot>,
              "QuantizedSlot is serialized to pages by memcpy");
static_assert(sizeof(QuantizedSlot) == 6 * sizeof(uint16_t) + sizeof(uint32_t),
              "no padding: six u16 cells plus a u32 child PageId");

}  // namespace flat

#endif  // FLAT_RTREE_ENTRY_H_
