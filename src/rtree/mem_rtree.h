#ifndef FLAT_RTREE_MEM_RTREE_H_
#define FLAT_RTREE_MEM_RTREE_H_

#include <cstdint>
#include <vector>

#include "geometry/aabb.h"

namespace flat {

/// Static in-memory R-tree over a vector of boxes, STR-packed at build time.
///
/// Algorithm 1 inserts all partition MBRs "into a temporary R-Tree, used
/// solely to compute the neighborhood information"; this is that structure.
/// It is also handy as a fast intersection oracle in tests. Stores item
/// *indices* (positions in the input vector), not ids.
class MemRTree {
 public:
  MemRTree() = default;

  /// Builds over `boxes`; `fanout` children per node.
  explicit MemRTree(const std::vector<Aabb>& boxes, int fanout = 16);

  /// Appends the indices of all boxes intersecting `query` to `out`.
  void Query(const Aabb& query, std::vector<uint32_t>* out) const;

  /// Calls `fn(index)` for every box intersecting `query`.
  template <typename Fn>
  void ForEachIntersecting(const Aabb& query, Fn&& fn) const {
    if (nodes_.empty() || query.IsEmpty()) return;
    std::vector<uint32_t> stack = {root_};
    while (!stack.empty()) {
      const Node& node = nodes_[stack.back()];
      stack.pop_back();
      if (!node.box.Intersects(query)) continue;
      if (node.leaf) {
        for (uint32_t i = 0; i < node.count; ++i) {
          const uint32_t item = items_[node.first + i];
          if (item_boxes_[item].Intersects(query)) fn(item);
        }
      } else {
        for (uint32_t i = 0; i < node.count; ++i) {
          stack.push_back(node.first + i);
        }
      }
    }
  }

  size_t size() const { return item_boxes_.size(); }

 private:
  struct Node {
    Aabb box;
    uint32_t first = 0;  // first item (leaf) or first child node index
    uint32_t count = 0;
    bool leaf = false;
  };

  std::vector<Node> nodes_;
  std::vector<uint32_t> items_;      // item indices in STR order
  std::vector<Aabb> item_boxes_;     // copy of the input boxes
  uint32_t root_ = 0;
};

}  // namespace flat

#endif  // FLAT_RTREE_MEM_RTREE_H_
