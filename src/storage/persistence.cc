#include "storage/persistence.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "rtree/node.h"

namespace flat {
namespace {

// Version 1: every node page exact. Version 2: the store contains at least
// one compressed (quantized) internal node page — same container layout,
// but pre-quantization readers must reject it rather than mis-gate, which
// the magic guarantees. Readers here accept both.
constexpr char kMagicV1[8] = {'F', 'L', 'A', 'T', 'P', 'G', 'F', '1'};
constexpr char kMagicV2[8] = {'F', 'L', 'A', 'T', 'P', 'G', 'F', '2'};

// True iff any internal node page carries the quantized format tag (header
// byte 3, rtree/node.h). Only internal categories can be quantized; other
// categories reuse that byte's offset for their own data (seed-leaf slot
// directories), so they are skipped rather than sniffed.
bool HasQuantizedNodePages(const PageStore& file) {
  for (PageId id = 0; id < file.page_count(); ++id) {
    const PageCategory category = file.category(id);
    if (category != PageCategory::kSeedInternal &&
        category != PageCategory::kRTreeInternal) {
      continue;
    }
    NodeHeader header;
    std::memcpy(&header, file.Data(id), sizeof(header));
    if (static_cast<NodeFormat>(header.format) == NodeFormat::kQuantized) {
      return true;
    }
  }
  return false;
}

void WriteU32(std::ostream& out, uint32_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

uint32_t ReadU32(std::istream& in) {
  uint32_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("LoadPageFile: truncated header");
  return value;
}

}  // namespace

void SavePageFile(const PageStore& file, std::ostream& out) {
  // The format stores the page count in a u32; a bigger store must fail
  // loudly rather than produce a well-formed file describing the wrong
  // prefix of the data.
  if (file.page_count() > std::numeric_limits<uint32_t>::max()) {
    throw std::runtime_error(
        "SavePageFile: page count exceeds the format's u32 field");
  }
  // Stores without compressed pages keep the v1 magic, byte for byte: a
  // plain exact build round-trips through old and new readers alike.
  out.write(HasQuantizedNodePages(file) ? kMagicV2 : kMagicV1,
            sizeof(kMagicV1));
  WriteU32(out, file.page_size());
  WriteU32(out, static_cast<uint32_t>(file.page_count()));
  for (PageId id = 0; id < file.page_count(); ++id) {
    const uint8_t category = static_cast<uint8_t>(file.category(id));
    out.write(reinterpret_cast<const char*>(&category), 1);
  }
  for (PageId id = 0; id < file.page_count(); ++id) {
    out.write(file.Data(id), file.page_size());
  }
  if (!out) throw std::runtime_error("SavePageFile: write failed");
}

std::unique_ptr<PageFile> LoadPageFile(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0 &&
              std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) != 0)) {
    throw std::runtime_error("LoadPageFile: bad magic (not a FLAT page file "
                             "or unsupported version)");
  }
  const uint32_t page_size = ReadU32(in);
  const uint32_t page_count = ReadU32(in);
  if (page_size < 64 || page_size > (64u << 20)) {
    throw std::runtime_error("LoadPageFile: implausible page size");
  }

  // The header's page_count is untrusted. Where the stream is seekable,
  // bound it against the bytes actually present before allocating anything;
  // either way, parse incrementally below so a hostile count on a short
  // stream fails on its first truncated entry, not with a multi-GiB resize.
  const std::istream::pos_type body_pos = in.tellg();
  if (body_pos != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end_pos = in.tellg();
    in.seekg(body_pos);
    if (!in) throw std::runtime_error("LoadPageFile: seek failed");
    if (end_pos != std::istream::pos_type(-1)) {
      const uint64_t remaining =
          static_cast<uint64_t>(end_pos - body_pos);
      const uint64_t expected =
          uint64_t{page_count} * (uint64_t{1} + page_size);
      if (remaining < expected) {
        throw std::runtime_error(
            "LoadPageFile: header page count exceeds stream size");
      }
    }
  }

  std::vector<uint8_t> categories;
  uint8_t chunk[4096];
  while (categories.size() < page_count) {
    const size_t want = std::min<size_t>(
        sizeof(chunk), page_count - categories.size());
    in.read(reinterpret_cast<char*>(chunk), static_cast<std::streamsize>(want));
    if (static_cast<size_t>(in.gcount()) != want) {
      throw std::runtime_error("LoadPageFile: truncated category table");
    }
    categories.insert(categories.end(), chunk, chunk + want);
  }

  auto file = std::make_unique<PageFile>(page_size);
  for (uint32_t i = 0; i < page_count; ++i) {
    if (categories[i] >= kNumPageCategories) {
      throw std::runtime_error("LoadPageFile: invalid page category");
    }
    const PageId id =
        file->Allocate(static_cast<PageCategory>(categories[i]));
    in.read(file->MutableData(id), page_size);
    if (!in) throw std::runtime_error("LoadPageFile: truncated page data");
  }
  return file;
}

}  // namespace flat
