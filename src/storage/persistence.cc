#include "storage/persistence.h"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace flat {
namespace {

constexpr char kMagic[8] = {'F', 'L', 'A', 'T', 'P', 'G', 'F', '1'};

void WriteU32(std::ostream& out, uint32_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

uint32_t ReadU32(std::istream& in) {
  uint32_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("LoadPageFile: truncated header");
  return value;
}

}  // namespace

void SavePageFile(const PageFile& file, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  WriteU32(out, file.page_size());
  WriteU32(out, static_cast<uint32_t>(file.page_count()));
  for (PageId id = 0; id < file.page_count(); ++id) {
    const uint8_t category = static_cast<uint8_t>(file.category(id));
    out.write(reinterpret_cast<const char*>(&category), 1);
  }
  for (PageId id = 0; id < file.page_count(); ++id) {
    out.write(file.Data(id), file.page_size());
  }
  if (!out) throw std::runtime_error("SavePageFile: write failed");
}

std::unique_ptr<PageFile> LoadPageFile(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("LoadPageFile: bad magic (not a FLAT page file "
                             "or unsupported version)");
  }
  const uint32_t page_size = ReadU32(in);
  const uint32_t page_count = ReadU32(in);
  if (page_size < 64 || page_size > (64u << 20)) {
    throw std::runtime_error("LoadPageFile: implausible page size");
  }

  std::vector<uint8_t> categories(page_count);
  in.read(reinterpret_cast<char*>(categories.data()), page_count);
  if (!in) throw std::runtime_error("LoadPageFile: truncated category table");

  auto file = std::make_unique<PageFile>(page_size);
  for (uint32_t i = 0; i < page_count; ++i) {
    if (categories[i] >= kNumPageCategories) {
      throw std::runtime_error("LoadPageFile: invalid page category");
    }
    const PageId id =
        file->Allocate(static_cast<PageCategory>(categories[i]));
    in.read(file->MutableData(id), page_size);
    if (!in) throw std::runtime_error("LoadPageFile: truncated page data");
  }
  return file;
}

}  // namespace flat
