#ifndef FLAT_STORAGE_PERSISTENCE_H_
#define FLAT_STORAGE_PERSISTENCE_H_

#include <iosfwd>
#include <memory>

#include "storage/page_file.h"
#include "storage/page_store.h"

namespace flat {

/// Binary serialization of a simulated disk.
///
/// The paper's workloads bulkload once and query many times across sessions
/// ("the models ... change only slowly, if at all"); persisting the PageFile
/// plus a small index descriptor (FlatIndex::Descriptor, or an RTree's
/// root/height pair) is all that is needed to reopen an index.
///
/// Format (little-endian):
///   magic "FLATPGF1" or "FLATPGF2" | u32 page_size | u32 page_count |
///   u8 category[page_count] | page bytes (page_count * page_size)
///
/// The format is versioned via the magic; readers reject unknown magics and
/// truncated streams by throwing std::runtime_error. "FLATPGF2" is written
/// iff the store contains compressed (quantized) internal node pages
/// (rtree/node.h) — the container layout is unchanged, but readers that
/// predate the page format must reject such files rather than mis-parse
/// them. LoadPageFile and DiskPageFile::Open accept both versions; stores
/// without compressed pages always serialize as byte-identical v1 files.
/// See docs/file_format.md for the back-compat matrix.
///
/// Accepts any PageStore (so a DiskPageFile can be re-saved); throws
/// std::runtime_error if the store's page count exceeds the format's u32
/// field rather than silently truncating it.
void SavePageFile(const PageStore& file, std::ostream& out);

/// Reads a PageFile previously written by SavePageFile into memory. The
/// page_count header field is untrusted: where the stream is seekable it is
/// bounded against the actual remaining bytes before anything is allocated,
/// and parsing is incremental either way — the first truncated entry throws
/// without ever sizing a buffer to the hostile count. To serve the same
/// bytes from disk without loading them, use DiskPageFile::Open instead.
std::unique_ptr<PageFile> LoadPageFile(std::istream& in);

}  // namespace flat

#endif  // FLAT_STORAGE_PERSISTENCE_H_
