#ifndef FLAT_STORAGE_PERSISTENCE_H_
#define FLAT_STORAGE_PERSISTENCE_H_

#include <iosfwd>
#include <memory>

#include "storage/page_file.h"

namespace flat {

/// Binary serialization of a simulated disk.
///
/// The paper's workloads bulkload once and query many times across sessions
/// ("the models ... change only slowly, if at all"); persisting the PageFile
/// plus a small index descriptor (FlatIndex::Descriptor, or an RTree's
/// root/height pair) is all that is needed to reopen an index.
///
/// Format (little-endian):
///   magic "FLATPGF1" | u32 page_size | u32 page_count |
///   u8 category[page_count] | page bytes (page_count * page_size)
///
/// The format is versioned via the magic; readers reject unknown magics and
/// truncated streams by throwing std::runtime_error.
void SavePageFile(const PageFile& file, std::ostream& out);

/// Reads a PageFile previously written by SavePageFile.
std::unique_ptr<PageFile> LoadPageFile(std::istream& in);

}  // namespace flat

#endif  // FLAT_STORAGE_PERSISTENCE_H_
