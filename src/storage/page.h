#ifndef FLAT_STORAGE_PAGE_H_
#define FLAT_STORAGE_PAGE_H_

#include <cstdint>
#include <limits>

namespace flat {

/// Identifier of a disk page within a PageFile.
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Default page size. The paper's setup stores "data on the disk in 4K pages"
/// and uses 4K nodes for all trees.
inline constexpr uint32_t kDefaultPageSize = 4096;

/// Role of a page inside an index; used by IoStats to break page reads down
/// exactly like the paper's Figures 14 and 18 (seed-tree / metadata / object
/// pages for FLAT, non-leaf / leaf pages for the R-Trees).
enum class PageCategory : uint8_t {
  kRTreeInternal = 0,  ///< R-Tree non-leaf node.
  kRTreeLeaf,          ///< R-Tree leaf node holding element MBRs.
  kSeedInternal,       ///< FLAT seed-tree non-leaf node.
  kSeedLeaf,           ///< FLAT seed-tree leaf holding metadata records.
  kObject,             ///< FLAT object page holding element MBRs.
  kOther,              ///< Anything else (scratch, superblocks...).
};

inline constexpr int kNumPageCategories = 6;

/// Human-readable category name for reports.
const char* PageCategoryName(PageCategory category);

}  // namespace flat

#endif  // FLAT_STORAGE_PAGE_H_
