#include "storage/page_file.h"

#include <cassert>
#include <cstring>

namespace flat {

const char* PageCategoryName(PageCategory category) {
  switch (category) {
    case PageCategory::kRTreeInternal:
      return "rtree-internal";
    case PageCategory::kRTreeLeaf:
      return "rtree-leaf";
    case PageCategory::kSeedInternal:
      return "seed-internal";
    case PageCategory::kSeedLeaf:
      return "seed-leaf";
    case PageCategory::kObject:
      return "object";
    case PageCategory::kOther:
      return "other";
  }
  return "unknown";
}

PageFile::PageFile(uint32_t page_size) : page_size_(page_size) {
  assert(page_size_ >= 64);
}

PageId PageFile::Allocate(PageCategory category) {
  auto page = std::make_unique<char[]>(page_size_);
  std::memset(page.get(), 0, page_size_);
  pages_.push_back(std::move(page));
  categories_.push_back(category);
  return static_cast<PageId>(pages_.size() - 1);
}

char* PageFile::MutableData(PageId id) {
  assert(id < pages_.size());
  return pages_[id].get();
}

const char* PageFile::Data(PageId id) const {
  assert(id < pages_.size());
  return pages_[id].get();
}

size_t PageFile::PageCountIn(PageCategory category) const {
  size_t n = 0;
  for (PageCategory c : categories_) {
    if (c == category) ++n;
  }
  return n;
}

}  // namespace flat
