#include "storage/page_file.h"

#include <cassert>
#include <cstdlib>
#include <new>

namespace flat {

const char* PageCategoryName(PageCategory category) {
  switch (category) {
    case PageCategory::kRTreeInternal:
      return "rtree-internal";
    case PageCategory::kRTreeLeaf:
      return "rtree-leaf";
    case PageCategory::kSeedInternal:
      return "seed-internal";
    case PageCategory::kSeedLeaf:
      return "seed-leaf";
    case PageCategory::kObject:
      return "object";
    case PageCategory::kOther:
      return "other";
  }
  return "unknown";
}

PageFile::PageFile(uint32_t page_size) : page_size_(page_size) {
  assert(page_size_ >= 64);
  // Largest power-of-two page count whose slab stays within the target
  // bytes; at least one page per slab (huge pages sizes get one-page slabs).
  uint32_t shift = 0;
  while ((uint64_t{2} << shift) * page_size_ <= kArenaTargetBytes) ++shift;
  slab_shift_ = shift;
  slab_mask_ = (uint32_t{1} << shift) - 1;
}

PageId PageFile::Allocate(PageCategory category) {
  const size_t id = categories_.size();
  if ((id >> slab_shift_) == slabs_.size()) {
    // calloc: pages must read back zeroed, and the OS lazily materializes
    // the zero pages, so a slab costs physical memory only as it is touched.
    char* slab = static_cast<char*>(
        std::calloc(size_t{1} << slab_shift_, page_size_));
    if (slab == nullptr) throw std::bad_alloc();
    slabs_.emplace_back(slab);
  }
  categories_.push_back(category);
  ++pages_in_category_[static_cast<size_t>(category)];
  return static_cast<PageId>(id);
}

}  // namespace flat
