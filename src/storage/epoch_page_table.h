#ifndef FLAT_STORAGE_EPOCH_PAGE_TABLE_H_
#define FLAT_STORAGE_EPOCH_PAGE_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/page.h"

namespace flat {

/// Residency bookkeeping shared by BufferPool and StripedBufferPool's
/// stripes: an epoch-stamped, direct-mapped page table.
///
/// This replaces the previous hash-based LRU set (std::unordered_map +
/// std::list): every probe is now one array access — the entry for page `id`
/// lives at index `id`, and the page is resident iff its stamp equals the
/// table's current epoch. `Clear()` is O(1): bumping the epoch invalidates
/// every entry at once (a full restamp happens only when the 32-bit epoch
/// wraps, i.e. every 2^32 - 1 clears).
///
/// Semantics are *identical* to the container pair it replaces — the same
/// Touch/Insert/Clear contract, and for bounded tables the exact same LRU
/// eviction order, maintained as an intrusive doubly-linked list in a side
/// array. A cache therefore produces the same hit/miss sequence (and thus
/// identical IoStats) by construction. Unbounded tables (capacity 0, the
/// cold-cache benchmark methodology and every default in this repository)
/// skip the list entirely: Touch and Insert touch exactly one stamp.
///
/// Memory: the table grows to the highest page id probed — 4 bytes per
/// slot unbounded (~0.1% of the file at 4 KiB pages), plus 8 bytes per
/// slot for the LRU links when a capacity is set. Note that
/// StripedBufferPool keeps one table per stripe over the *global* id space
/// (its hash partition is not arithmetically invertible), so its footprint
/// is stripe_count times that figure (~1.6% of the file at the default 16
/// stripes). A direct-mapped table deliberately trades this O(file pages)
/// footprint for O(1) everything; a tiny bounded cache over a very large
/// file is the one configuration where the replaced hash-based set was
/// more compact.
/// Not thread-safe — callers provide their own locking.
class EpochPageTable {
 public:
  /// `capacity` bounds the resident set (0 means unbounded).
  explicit EpochPageTable(size_t capacity = 0) : capacity_(capacity) {}

  /// True (and refreshes LRU position when bounded) if `id` is resident.
  bool Touch(PageId id) {
    if (id >= stamps_.size() || stamps_[id] != epoch_) return false;
    if (capacity_ > 0 && head_ != id) {
      Unlink(id);
      PushFront(id);
    }
    return true;
  }

  /// Makes `id` resident, evicting the least-recently-used entry if full.
  /// The caller has already established `id` is absent (via Touch).
  void Insert(PageId id) {
    if (id >= stamps_.size()) Grow(id);
    if (capacity_ > 0) {
      if (size_ >= capacity_) {
        const PageId victim = tail_;
        Unlink(victim);
        stamps_[victim] = epoch_ - 1;  // any stamp != epoch_
        --size_;
      }
      PushFront(id);
    }
    stamps_[id] = epoch_;
    ++size_;
  }

  /// Drops every entry (cold cache) in O(1).
  void Clear() {
    if (++epoch_ == 0) {
      // Epoch wrapped (after 2^32 - 1 clears): restamp everything once so no
      // stale entry can alias the new epoch.
      for (uint32_t& s : stamps_) s = 0;
      epoch_ = 1;
    }
    size_ = 0;
    head_ = kInvalidPageId;
    tail_ = kInvalidPageId;
  }

  bool Contains(PageId id) const {
    return id < stamps_.size() && stamps_[id] == epoch_;
  }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }

 private:
  struct Link {
    PageId prev = kInvalidPageId;
    PageId next = kInvalidPageId;
  };

  void Grow(PageId id) {
    size_t n = stamps_.empty() ? 256 : stamps_.size();
    while (n <= id) n *= 2;
    stamps_.resize(n);  // new stamps start at 0, i.e. stale
    if (capacity_ > 0) links_.resize(n);
  }

  void PushFront(PageId id) {
    Link& e = links_[id];
    e.prev = kInvalidPageId;
    e.next = head_;
    if (head_ != kInvalidPageId) links_[head_].prev = id;
    head_ = id;
    if (tail_ == kInvalidPageId) tail_ = id;
  }

  void Unlink(PageId id) {
    Link& e = links_[id];
    if (e.prev != kInvalidPageId) links_[e.prev].next = e.next;
    if (e.next != kInvalidPageId) links_[e.next].prev = e.prev;
    if (head_ == id) head_ = e.next;
    if (tail_ == id) tail_ = e.prev;
  }

  size_t capacity_;
  // Resident iff stamps_[id] == epoch_. The LRU links live in a separate
  // side array allocated only for bounded tables, so the (default)
  // unbounded configuration costs 4 bytes per slot.
  std::vector<uint32_t> stamps_;
  std::vector<Link> links_;  // MRU at head_, LRU at tail_; bounded only
  uint32_t epoch_ = 1;       // zero-initialized stamps start out stale
  size_t size_ = 0;
  PageId head_ = kInvalidPageId;
  PageId tail_ = kInvalidPageId;
};

}  // namespace flat

#endif  // FLAT_STORAGE_EPOCH_PAGE_TABLE_H_
