#ifndef FLAT_STORAGE_PAGE_FILE_H_
#define FLAT_STORAGE_PAGE_FILE_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "storage/page.h"
#include "storage/page_store.h"

namespace flat {

/// A simulated disk: a growable array of fixed-size pages tagged with a
/// PageCategory.
///
/// Index *construction* writes pages directly (bulkloading is measured by
/// wall-clock time, as in the paper's Figure 10); *query execution* must go
/// through a PageCache (BufferPool / StripedBufferPool), which is where page
/// reads are counted. Keeping the data in memory while accounting I/O at
/// page granularity reproduces the paper's cold-cache methodology without a
/// physical SAS array — see docs/file_format.md §1 and docs/benchmarks.md.
///
/// Storage layout: pages live in contiguous slab arenas of
/// `kArenaTargetBytes` each (the last slab is partially filled), so
/// `Data(id)` is pure address arithmetic — one shift, one mask, one
/// multiply — instead of a per-page pointer chase. The number of pages per
/// slab is a power of two fixed at construction. Slabs are never moved or
/// freed while the file lives, which yields the *pointer-stability
/// contract*: a pointer returned by `Data`/`MutableData` stays valid (and
/// keeps aliasing the same page) across any number of later `Allocate`
/// calls. The crawl hot path holds record pointers across page reads and
/// depends on this (see docs/architecture.md §Storage).
///
/// Thread-safety: Allocate/MutableData are construction-time operations and
/// must be externally synchronized (the parallel build pipeline allocates
/// serially and lets workers fill disjoint pages). Data()/category() on a
/// fully built file are safe to call from any number of threads.
///
/// PageFile is the in-memory PageStore backend; DiskPageFile
/// (storage/disk_page_file.h) serves the same serialized bytes from a real
/// file. The class is final so concrete PageFile pointers devirtualize the
/// hot accessors.
class PageFile final : public PageStore {
 public:
  /// Target slab size; the real slab is the largest power-of-two page count
  /// that fits (at least one page). Slabs are calloc-backed, so untouched
  /// tail pages of the current slab cost no physical memory.
  static constexpr size_t kArenaTargetBytes = 64u << 20;

  explicit PageFile(uint32_t page_size = kDefaultPageSize);

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Appends a zeroed page and returns its id.
  PageId Allocate(PageCategory category);

  /// Raw mutable access for writers (no I/O accounting; building an index is
  /// not a query).
  char* MutableData(PageId id) {
    return const_cast<char*>(PageAddress(id));
  }

  /// Raw read access. Query code must not call this directly — use
  /// BufferPool::Read so the access is charged. The returned pointer is
  /// stable for the file's lifetime (see class comment).
  const char* Data(PageId id) const override { return PageAddress(id); }

  PageCategory category(PageId id) const override { return categories_[id]; }

  uint32_t page_size() const override { return page_size_; }

  /// Number of allocated pages.
  size_t page_count() const override { return categories_.size(); }

  /// Number of allocated pages in a given category (O(1); a packed side
  /// array keeps the per-category tallies).
  size_t PageCountIn(PageCategory category) const override {
    return pages_in_category_[static_cast<size_t>(category)];
  }

  /// Total simulated on-disk size in bytes.
  uint64_t SizeBytes() const override {
    return categories_.size() * uint64_t{page_size_};
  }

  /// Pages per slab arena (test hook for the slab-boundary cases).
  uint32_t pages_per_slab() const { return uint32_t{1} << slab_shift_; }

 private:
  struct FreeDeleter {
    void operator()(char* p) const { std::free(p); }
  };
  using Slab = std::unique_ptr<char[], FreeDeleter>;

  const char* PageAddress(PageId id) const {
    assert(id < categories_.size());
    return slabs_[id >> slab_shift_].get() +
           size_t{id & slab_mask_} * page_size_;
  }

  uint32_t page_size_;
  uint32_t slab_shift_;  // log2(pages per slab)
  uint32_t slab_mask_;   // pages per slab - 1
  std::vector<Slab> slabs_;
  // One byte per page; doubles as the page counter (its size is the count).
  std::vector<PageCategory> categories_;
  std::array<size_t, kNumPageCategories> pages_in_category_{};
};

}  // namespace flat

#endif  // FLAT_STORAGE_PAGE_FILE_H_
