#ifndef FLAT_STORAGE_PAGE_FILE_H_
#define FLAT_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/page.h"

namespace flat {

/// A simulated disk: a growable array of fixed-size pages tagged with a
/// PageCategory.
///
/// Index *construction* writes pages directly (bulkloading is measured by
/// wall-clock time, as in the paper's Figure 10); *query execution* must go
/// through a PageCache (BufferPool / StripedBufferPool), which is where page
/// reads are counted. Keeping the data in memory while accounting I/O at
/// page granularity reproduces the paper's cold-cache methodology without a
/// physical SAS array — see docs/file_format.md §1 and docs/benchmarks.md.
///
/// Thread-safety: Allocate/MutableData are construction-time operations and
/// must be externally synchronized (the parallel build pipeline allocates
/// serially and lets workers fill disjoint pages). Data()/category() on a
/// fully built file are safe to call from any number of threads.
class PageFile {
 public:
  explicit PageFile(uint32_t page_size = kDefaultPageSize);

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Appends a zeroed page and returns its id.
  PageId Allocate(PageCategory category);

  /// Raw mutable access for writers (no I/O accounting; building an index is
  /// not a query).
  char* MutableData(PageId id);

  /// Raw read access. Query code must not call this directly — use
  /// BufferPool::Read so the access is charged.
  const char* Data(PageId id) const;

  PageCategory category(PageId id) const { return categories_[id]; }

  uint32_t page_size() const { return page_size_; }

  /// Number of allocated pages.
  size_t page_count() const { return pages_.size(); }

  /// Number of allocated pages in a given category.
  size_t PageCountIn(PageCategory category) const;

  /// Total simulated on-disk size in bytes.
  uint64_t SizeBytes() const { return pages_.size() * uint64_t{page_size_}; }

 private:
  uint32_t page_size_;
  std::vector<std::unique_ptr<char[]>> pages_;
  std::vector<PageCategory> categories_;
};

}  // namespace flat

#endif  // FLAT_STORAGE_PAGE_FILE_H_
