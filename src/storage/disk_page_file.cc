#include "storage/disk_page_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>

#include "storage/fault_injection.h"

namespace flat {
namespace {

// v1 (exact node pages only) and v2 (contains compressed internal pages)
// share the container layout; the per-page format byte self-describes, so
// the backend accepts both (see storage/persistence.cc).
constexpr char kMagicV1[8] = {'F', 'L', 'A', 'T', 'P', 'G', 'F', '1'};
constexpr char kMagicV2[8] = {'F', 'L', 'A', 'T', 'P', 'G', 'F', '2'};
constexpr uint64_t kHeaderBytes = 16;  // magic + u32 page_size + u32 count

[[noreturn]] void Fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("DiskPageFile: " + what + ": " + path);
}

/// pread that survives partial reads and EINTR; throws on error/EOF.
void ReadFully(int fd, const std::string& path, void* dst, size_t len,
               uint64_t offset) {
  char* out = static_cast<char*>(dst);
  while (len > 0) {
    const ssize_t n = ::pread(fd, out, len, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      Fail(path, "read failed (" + std::string(std::strerror(errno)) + ")");
    }
    if (n == 0) Fail(path, "unexpected end of file");
    out += n;
    len -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
}

uint32_t LoadU32(const char* bytes) {
  uint32_t value;
  std::memcpy(&value, bytes, sizeof(value));
  return value;
}

// Sentinel marking a pread-mode page whose read is in flight. A resident
// slot moves null -> kBusyPage -> buffer (or back to null on a failed
// read); exactly one thread ever reads a given page from the fd, so the
// prefetch toucher and the query thread never duplicate the same I/O.
char* const kBusyPage = reinterpret_cast<char*>(1);

}  // namespace

std::unique_ptr<DiskPageFile> DiskPageFile::Open(const std::string& path,
                                                 const Options& options) {
  // The destructor handles partially initialized state, so any throw below
  // releases the fd/mapping through the unique_ptr.
  std::unique_ptr<DiskPageFile> file(new DiskPageFile());
  file->path_ = path;

  file->fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (file->fd_ < 0) {
    Fail(path, "cannot open (" + std::string(std::strerror(errno)) + ")");
  }

  struct stat st;
  if (::fstat(file->fd_, &st) != 0) {
    Fail(path, "fstat failed (" + std::string(std::strerror(errno)) + ")");
  }
  file->file_size_ = static_cast<uint64_t>(st.st_size);
  if (file->file_size_ < kHeaderBytes) Fail(path, "truncated header");

  char header[kHeaderBytes];
  ReadFully(file->fd_, path, header, sizeof(header), 0);
  if (std::memcmp(header, kMagicV1, sizeof(kMagicV1)) != 0 &&
      std::memcmp(header, kMagicV2, sizeof(kMagicV2)) != 0) {
    Fail(path, "bad magic (not a FLAT page file or unsupported version)");
  }
  file->page_size_ = LoadU32(header + 8);
  const uint32_t page_count = LoadU32(header + 12);
  if (file->page_size_ < 64 || file->page_size_ > (64u << 20)) {
    Fail(path, "implausible page size");
  }

  // The page_count header field is untrusted until it is consistent with
  // the file's actual size — this is what stops a hostile 16-byte header
  // from provoking huge allocations or out-of-range reads.
  const uint64_t expected_size =
      kHeaderBytes +
      uint64_t{page_count} * (uint64_t{1} + file->page_size_);
  if (file->file_size_ < expected_size) {
    Fail(path, "truncated (header page count exceeds file size)");
  }
  if (file->file_size_ > expected_size) {
    Fail(path, "size mismatch (trailing bytes after last page)");
  }
  file->data_offset_ = kHeaderBytes + page_count;

  // Private, validated copy of the category table: category() indexes
  // per-category arrays, so serving it from a file-backed mapping a hostile
  // writer could flip under us would be an out-of-bounds primitive.
  file->categories_.resize(page_count);
  if (page_count > 0) {
    ReadFully(file->fd_, path, file->categories_.data(), page_count,
              kHeaderBytes);
  }
  for (uint8_t c : file->categories_) {
    if (c >= kNumPageCategories) Fail(path, "invalid page category");
    ++file->pages_in_category_[c];
  }

  file->fault_schedule_ = options.fault_schedule;
  file->max_read_retries_ = options.max_read_retries;
  file->retry_backoff_micros_ = options.retry_backoff_micros;
  file->retry_backoff_cap_micros_ = options.retry_backoff_cap_micros;

  // A fault schedule forces pread mode: mmap'd reads are page faults, not
  // preads, so scheduled faults would silently never fire.
  if (options.use_mmap && options.fault_schedule == nullptr) {
    void* base = ::mmap(nullptr, file->file_size_, PROT_READ, MAP_PRIVATE,
                        file->fd_, 0);
    if (base != MAP_FAILED) {
      file->map_base_ = static_cast<const char*>(base);
      file->map_length_ = file->file_size_;
    }
    // mmap failure is not fatal: fall through to the pread mode.
  }
  if (file->map_base_ == nullptr) {
    file->resident_ = std::make_unique<std::atomic<char*>[]>(page_count);
  }

  file->async_prefetch_ = options.async_prefetch;
  file->prefetch_queue_limit_ = options.prefetch_queue_limit;
  if (file->async_prefetch_) {
    file->toucher_ = std::thread([f = file.get()] { f->TouchLoop(); });
  }
  return file;
}

DiskPageFile::~DiskPageFile() {
  if (toucher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stop_ = true;
    }
    queue_cv_.notify_all();
    toucher_.join();
  }
  if (resident_ != nullptr) {
    for (size_t i = 0; i < categories_.size(); ++i) {
      char* buffer = resident_[i].load(std::memory_order_relaxed);
      if (buffer != kBusyPage) std::free(buffer);
    }
  }
  if (map_base_ != nullptr) {
    ::munmap(const_cast<char*>(map_base_), map_length_);
  }
  if (fd_ >= 0) ::close(fd_);
}

const char* DiskPageFile::Data(PageId id) const {
  if (map_base_ != nullptr) return map_base_ + PageOffset(id);
  return EnsureResident(id);
}

const char* DiskPageFile::EnsureResident(PageId id) const {
  std::atomic<char*>& slot = resident_[id];
  for (;;) {
    char* resident = slot.load(std::memory_order_acquire);
    if (resident == kBusyPage) {
      // Another thread (typically the prefetch toucher) is mid-read; waiting
      // for its result is strictly cheaper than issuing a duplicate pread.
      std::this_thread::yield();
      continue;
    }
    if (resident != nullptr) return resident;

    char* expected = nullptr;
    if (!slot.compare_exchange_weak(expected, kBusyPage,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      continue;  // lost the claim; re-examine the slot
    }
    char* buffer = static_cast<char*>(std::malloc(page_size_));
    if (buffer == nullptr) {
      slot.store(nullptr, std::memory_order_release);
      throw std::bad_alloc();
    }
    try {
      ReadPage(id, buffer);
    } catch (...) {
      // Release the busy claim so later reads can retry the page instead of
      // spinning on the sentinel forever.
      std::free(buffer);
      slot.store(nullptr, std::memory_order_release);
      throw;
    }
    slot.store(buffer, std::memory_order_release);
    return buffer;
  }
}

void DiskPageFile::ReadPage(PageId id, char* dst) const {
  char* out = dst;
  size_t remaining = page_size_;
  uint64_t offset = PageOffset(id);
  uint32_t error_retries = 0;

  // Charges one counted retry (member total + the thread-local counter the
  // buffer pools sample for per-query IoStats attribution).
  const auto count_retry = [this] {
    read_retries_.fetch_add(1, std::memory_order_relaxed);
    AddThreadReadRetries(1);
  };
  const auto backoff = [this](uint32_t retries_done) {
    if (retry_backoff_micros_ == 0) return;
    uint64_t micros = uint64_t{retry_backoff_micros_} << retries_done;
    if (micros > retry_backoff_cap_micros_) micros = retry_backoff_cap_micros_;
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  };

  while (remaining > 0) {
    size_t request = remaining;

    // One loop iteration is one read attempt; the schedule (if any) is
    // consulted first so injected faults are deterministic per attempt.
    if (fault_schedule_ != nullptr) {
      const FaultSpec fault = fault_schedule_->Next(id);
      switch (fault.kind) {
        case FaultKind::kNone:
          break;
        case FaultKind::kEintr:
          count_retry();
          continue;  // interrupted before transferring anything
        case FaultKind::kShortRead:
          // Truncate this attempt's transfer; the loop continues from the
          // partial progress, as with a real short pread.
          request = fault.short_bytes < 1 ? 1 : fault.short_bytes;
          if (request > remaining) request = remaining;
          break;
        case FaultKind::kLatency:
          if (fault.latency_micros > 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(fault.latency_micros));
          }
          break;
        case FaultKind::kError:
          if (error_retries >= max_read_retries_) {
            read_errors_.fetch_add(1, std::memory_order_relaxed);
            Fail(path_, "read of page " + std::to_string(id) +
                            " failed after " + std::to_string(error_retries) +
                            " retries (injected " +
                            std::string(std::strerror(fault.error_number)) +
                            ")");
          }
          count_retry();
          backoff(error_retries);
          ++error_retries;
          continue;
      }
    }

    const ssize_t n = ::pread(fd_, out, request, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) {
        count_retry();
        continue;
      }
      if (error_retries >= max_read_retries_) {
        read_errors_.fetch_add(1, std::memory_order_relaxed);
        Fail(path_, "read of page " + std::to_string(id) + " failed after " +
                        std::to_string(error_retries) + " retries (" +
                        std::string(std::strerror(errno)) + ")");
      }
      count_retry();
      backoff(error_retries);
      ++error_retries;
      continue;
    }
    if (n == 0) {
      // EOF inside a validated page range: the file shrank under us.
      // Retrying cannot help.
      read_errors_.fetch_add(1, std::memory_order_relaxed);
      Fail(path_, "unexpected end of file reading page " + std::to_string(id));
    }
    out += n;
    remaining -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
}

void DiskPageFile::Prefetch(PageId id) const {
  if (id >= categories_.size()) return;
  if (async_prefetch_) {
    // With a background toucher the touch *subsumes* the OS advice: it
    // faults (mmap) resp. reads (pread) the page itself, off the query
    // thread. Issuing madvise/fadvise here too would put a syscall on the
    // query thread per hint — on some platforms (measured ~10 us under
    // gVisor) that alone exceeds the cost of the cached read the hint is
    // trying to hide. So the hot path is just a queue push, and the
    // condition variable is only signalled on the empty->non-empty
    // transition (the toucher drains whole batches; while it is awake,
    // further pushes need no wakeup).
    bool was_empty = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (stop_ || queue_.size() >= prefetch_queue_limit_) return;  // advisory
      was_empty = queue_.empty();
      queue_.push_back(id);
    }
    if (was_empty) queue_cv_.notify_one();
    return;
  }
  // No toucher: OS readahead advice is the only asynchrony available.
  if (map_base_ != nullptr) {
    // madvise wants an OS-page-aligned address: align the range outward.
    static const uintptr_t kOsPage =
        static_cast<uintptr_t>(::sysconf(_SC_PAGESIZE));
    const uintptr_t begin =
        reinterpret_cast<uintptr_t>(map_base_) + PageOffset(id);
    const uintptr_t aligned = begin & ~(kOsPage - 1);
    ::madvise(reinterpret_cast<void*>(aligned),
              (begin - aligned) + page_size_, MADV_WILLNEED);
  } else {
#if defined(POSIX_FADV_WILLNEED)
    ::posix_fadvise(fd_, static_cast<off_t>(PageOffset(id)), page_size_,
                    POSIX_FADV_WILLNEED);
#endif
  }
}

void DiskPageFile::Touch(PageId id) const {
  if (map_base_ != nullptr) {
    // Fault every OS page of the flat page into the process off the query
    // thread; the volatile reads cannot be elided.
    const char* begin = map_base_ + PageOffset(id);
    for (uint32_t off = 0; off < page_size_; off += 4096) {
      volatile char sink = begin[off];
      (void)sink;
    }
  } else {
    EnsureResident(id);
  }
}

void DiskPageFile::TouchLoop() {
  std::vector<PageId> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;  // hints are advisory; no drain on shutdown
      batch.swap(queue_);
    }
    for (PageId id : batch) {
      try {
        Touch(id);
        pages_touched_.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        // A failed touch only loses the hint; the query-path read will
        // surface any real I/O error.
      }
    }
    batch.clear();
  }
}

void DiskPageFile::DropOsCache() {
  {
    // Entries queued before the drop would re-warm the cache right after;
    // discard them (hints are advisory).
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.clear();
  }
  if (map_base_ != nullptr) {
    // Release this process's mapped copies, then ask the kernel to drop the
    // file's page-cache pages. Subsequent reads re-fault from disk.
    ::madvise(const_cast<char*>(map_base_), map_length_, MADV_DONTNEED);
  }
  if (resident_ != nullptr) {
    // pread mode: forget the resident copies. This (documentedly) breaks
    // pointer stability for pages returned before the drop — DropOsCache is
    // a benchmark-harness operation, not a query-time one. A slot the
    // toucher is mid-read on (kBusyPage) is left alone: it will finish
    // materializing, costing only a slightly-less-cold next pass.
    for (size_t i = 0; i < categories_.size(); ++i) {
      char* value = resident_[i].load(std::memory_order_acquire);
      if (value == nullptr || value == kBusyPage) continue;
      if (resident_[i].compare_exchange_strong(value, nullptr,
                                               std::memory_order_acq_rel)) {
        std::free(value);
      }
    }
  }
#if defined(POSIX_FADV_DONTNEED)
  ::posix_fadvise(fd_, 0, 0, POSIX_FADV_DONTNEED);
#endif
}

}  // namespace flat
