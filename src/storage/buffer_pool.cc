#include "storage/buffer_pool.h"

#include <cassert>

namespace flat {

BufferPool::BufferPool(const PageFile* file, IoStats* stats,
                       size_t capacity_pages)
    : file_(file), stats_(stats), capacity_pages_(capacity_pages) {
  assert(file_ != nullptr);
  assert(stats_ != nullptr);
}

const char* BufferPool::Read(PageId id) {
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    ++hits_;
    recency_.splice(recency_.begin(), recency_, it->second);
    return file_->Data(id);
  }

  ++misses_;
  stats_->RecordRead(file_->category(id));

  if (capacity_pages_ > 0 && cache_.size() >= capacity_pages_) {
    PageId victim = recency_.back();
    recency_.pop_back();
    cache_.erase(victim);
  }
  recency_.push_front(id);
  cache_[id] = recency_.begin();
  return file_->Data(id);
}

void BufferPool::Clear() {
  recency_.clear();
  cache_.clear();
}

}  // namespace flat
