#include "storage/buffer_pool.h"

#include <cassert>

namespace flat {

BufferPool::BufferPool(const PageFile* file, IoStats* stats,
                       size_t capacity_pages)
    : file_(file), stats_(stats), table_(capacity_pages) {
  assert(file_ != nullptr);
  assert(stats_ != nullptr);
}

const char* BufferPool::Read(PageId id) {
  if (table_.Touch(id)) {
    ++hits_;
  } else {
    ++misses_;
    stats_->RecordRead(file_->category(id));
    table_.Insert(id);
  }
  return file_->Data(id);
}

void BufferPool::Clear() { table_.Clear(); }

void BufferPool::set_stats(IoStats* stats) {
  assert(stats != nullptr);
  stats_ = stats;
}

}  // namespace flat
