#include "storage/buffer_pool.h"

#include <cassert>

namespace flat {

BufferPool::BufferPool(const PageFile* file, IoStats* stats,
                       size_t capacity_pages)
    : file_(file), stats_(stats), lru_(capacity_pages) {
  assert(file_ != nullptr);
  assert(stats_ != nullptr);
}

const char* BufferPool::Read(PageId id) {
  if (lru_.Touch(id)) {
    ++hits_;
  } else {
    ++misses_;
    stats_->RecordRead(file_->category(id));
    lru_.Insert(id);
  }
  return file_->Data(id);
}

void BufferPool::Clear() { lru_.Clear(); }

}  // namespace flat
