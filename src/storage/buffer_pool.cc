#include "storage/buffer_pool.h"

#include <algorithm>
#include <cassert>

#include "storage/fault_injection.h"

namespace flat {

BufferPool::BufferPool(const PageStore* store, IoStats* stats,
                       size_t capacity_pages)
    : store_(store), stats_(stats), table_(capacity_pages) {
  assert(store_ != nullptr);
  assert(stats_ != nullptr);
}

const char* BufferPool::Read(PageId id) {
  if (table_.Touch(id)) {
    ++hits_;
    return store_->Data(id);
  }
  ++misses_;
  stats_->RecordRead(store_->category(id));
  table_.Insert(id);
  if (!pending_.empty()) {
    auto it = std::find(pending_.begin(), pending_.end(), id);
    if (it != pending_.end()) {
      // The miss landed on a hinted page: the prefetch overlapped real
      // work. Swap-erase; pending order carries no meaning.
      *it = pending_.back();
      pending_.pop_back();
      stats_->RecordPrefetchHit();
    }
  }
  // A miss is where the backend may actually perform I/O: attribute any
  // transient-read retries it burned to this query's stats.
  const uint64_t retries_before = ThreadReadRetries();
  const char* data = store_->Data(id);
  const uint64_t retries = ThreadReadRetries() - retries_before;
  if (retries != 0) stats_->RecordIoRetries(retries);
  return data;
}

void BufferPool::Prefetch(PageId id) {
  if (prefetch_depth_ <= 0) return;
  if (table_.Contains(id)) return;  // already paid for; nothing to overlap
  if (pending_.size() >= static_cast<size_t>(prefetch_depth_)) return;
  if (std::find(pending_.begin(), pending_.end(), id) != pending_.end()) {
    return;
  }
  pending_.push_back(id);
  stats_->RecordPrefetchIssued();
  store_->Prefetch(id);
}

void BufferPool::Clear() {
  if (!pending_.empty()) {
    stats_->RecordPrefetchWasted(pending_.size());
    pending_.clear();
  }
  table_.Clear();
}

void BufferPool::set_stats(IoStats* stats) {
  assert(stats != nullptr);
  stats_ = stats;
}

}  // namespace flat
