#ifndef FLAT_STORAGE_PAGE_CACHE_H_
#define FLAT_STORAGE_PAGE_CACHE_H_

#include "storage/page.h"

namespace flat {

/// Interface for query-time page access. Every index query reads pages
/// through a PageCache; implementations charge a page read (in the page's
/// category) against an IoStats on cache miss, so all execution paths —
/// serial BufferPool or the concurrent StripedBufferPool sessions used by
/// the QueryEngine — are accounted identically.
///
/// Thread-safety is defined by the implementation, and the contract queries
/// rely on is per-instance: one PageCache instance serves one thread at a
/// time. BufferPool is single-threaded outright; StripedBufferPool shares
/// its page set across threads but hands each thread its own Session (the
/// PageCache it actually reads through). Concurrent query code must
/// therefore give every thread its own PageCache instance.
class PageCache {
 public:
  virtual ~PageCache() = default;

  /// Fetches a page, charging a read on miss. Implementations must return a
  /// pointer that stays valid for the lifetime of the underlying PageStore,
  /// independent of later Reads or eviction — index code (e.g. the FLAT
  /// crawl) holds a record pointer across further Read calls. Both current
  /// implementations satisfy this by returning pointers into the immutable
  /// PageStore; eviction only forgets accounting state.
  virtual const char* Read(PageId id) = 0;

  /// Advisory hint that `id` will likely be Read soon. Never charges a read
  /// and never inserts the page into the cache: a later Read still counts
  /// its miss, so logical IoStats read counts are identical with prefetching
  /// on or off (only the prefetch issued/hit/wasted counters move). The
  /// default is a no-op; caching implementations forward the hint to the
  /// PageStore (where DiskPageFile turns it into OS readahead and a
  /// background touch) when a prefetch depth is configured.
  virtual void Prefetch(PageId id) { (void)id; }

  /// Returns the page's data only if it is already cached, else nullptr.
  /// Charges nothing and does not disturb recency. Lets the crawl peek at
  /// pages it has provably paid for (e.g. to chase a metadata record's
  /// object page for a deeper prefetch hint) without perturbing accounting.
  virtual const char* Peek(PageId id) { (void)id; return nullptr; }

  /// True when this cache has a prefetch depth configured — lets hot loops
  /// skip hint generation entirely when prefetching is off.
  virtual bool prefetch_enabled() const { return false; }
};

}  // namespace flat

#endif  // FLAT_STORAGE_PAGE_CACHE_H_
