#ifndef FLAT_STORAGE_PAGE_CACHE_H_
#define FLAT_STORAGE_PAGE_CACHE_H_

#include "storage/page.h"

namespace flat {

/// Interface for query-time page access. Every index query reads pages
/// through a PageCache; implementations charge a page read (in the page's
/// category) against an IoStats on cache miss, so all execution paths —
/// serial BufferPool or the concurrent StripedBufferPool sessions used by
/// the QueryEngine — are accounted identically.
///
/// Thread-safety is defined by the implementation, and the contract queries
/// rely on is per-instance: one PageCache instance serves one thread at a
/// time. BufferPool is single-threaded outright; StripedBufferPool shares
/// its page set across threads but hands each thread its own Session (the
/// PageCache it actually reads through). Concurrent query code must
/// therefore give every thread its own PageCache instance.
class PageCache {
 public:
  virtual ~PageCache() = default;

  /// Fetches a page, charging a read on miss. Implementations must return a
  /// pointer that stays valid for the lifetime of the underlying PageFile,
  /// independent of later Reads or eviction — index code (e.g. the FLAT
  /// crawl) holds a record pointer across further Read calls. Both current
  /// implementations satisfy this by returning pointers into the immutable
  /// PageFile; eviction only forgets accounting state.
  virtual const char* Read(PageId id) = 0;
};

}  // namespace flat

#endif  // FLAT_STORAGE_PAGE_CACHE_H_
