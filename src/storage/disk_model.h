#ifndef FLAT_STORAGE_DISK_MODEL_H_
#define FLAT_STORAGE_DISK_MODEL_H_

#include <cstdint>
#include <stdexcept>

#include "storage/io_stats.h"

namespace flat {

/// Analytic disk cost model translating page reads into simulated elapsed
/// time.
///
/// The paper's testbed is a stripe of four 10k-RPM SAS disks; its query-time
/// plots (Figures 13 and 17) track the page-read plots because execution is
/// 97.8–98.8 % I/O-bound (Section VII-E.2). We therefore model query time as
///
///   time = reads * (seek + rotational latency + transfer) + cpu_overhead
///
/// with defaults for a single 10k-RPM SAS disk reading cold 4 KiB pages:
/// ~3.5 ms average seek, ~3 ms average rotational latency, negligible 4 KiB
/// transfer at ~100 MB/s. Absolute numbers are not the reproduction target;
/// the model exists so the "time" figures can be regenerated with the same
/// shape as the "page reads" figures.
class DiskModel {
 public:
  struct Params {
    double seek_ms = 3.5;
    double rotational_ms = 3.0;
    double transfer_mb_per_s = 100.0;
    /// Fraction of total time spent on CPU (paper: 1.2–2.2 %).
    double cpu_fraction = 0.02;
  };

  DiskModel() : DiskModel(Params{}) {}

  /// Validates `params` up front: ElapsedMs divides by
  /// `1.0 - cpu_fraction` and PageReadMs by `transfer_mb_per_s`, so a
  /// cpu_fraction at or above 1 or a non-positive transfer rate would
  /// silently yield Inf/negative simulated time deep inside a benchmark.
  explicit DiskModel(const Params& params) : params_(params) {
    if (!(params_.cpu_fraction >= 0.0) || params_.cpu_fraction >= 1.0) {
      throw std::invalid_argument(
          "DiskModel: cpu_fraction must be in [0, 1)");
    }
    if (!(params_.transfer_mb_per_s > 0.0)) {
      throw std::invalid_argument(
          "DiskModel: transfer_mb_per_s must be positive");
    }
    if (!(params_.seek_ms >= 0.0) || !(params_.rotational_ms >= 0.0)) {
      throw std::invalid_argument(
          "DiskModel: seek_ms and rotational_ms must be non-negative");
    }
  }

  /// Simulated milliseconds for one random cold read of `page_size` bytes.
  double PageReadMs(uint32_t page_size) const {
    double transfer_ms =
        page_size / (params_.transfer_mb_per_s * 1e6) * 1e3;
    return params_.seek_ms + params_.rotational_ms + transfer_ms;
  }

  /// Simulated elapsed milliseconds for a workload that performed the reads
  /// recorded in `stats` against pages of `page_size` bytes.
  double ElapsedMs(const IoStats& stats, uint32_t page_size) const {
    double io_ms = stats.TotalReads() * PageReadMs(page_size);
    return io_ms / (1.0 - params_.cpu_fraction);
  }

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace flat

#endif  // FLAT_STORAGE_DISK_MODEL_H_
