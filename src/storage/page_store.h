#ifndef FLAT_STORAGE_PAGE_STORE_H_
#define FLAT_STORAGE_PAGE_STORE_H_

#include <cstddef>
#include <cstdint>

#include "storage/page.h"

namespace flat {

/// Read-only view of a store of fixed-size pages — the query-time contract
/// shared by the in-memory simulated disk (PageFile) and the persistent
/// disk backend (DiskPageFile).
///
/// Everything downstream of index construction (BufferPool,
/// StripedBufferPool, FlatIndex::Attach, the QueryEngine, ShardedFlatStore
/// after Load) reads pages through this interface, so an index can be
/// served from memory or from an mmap'd file without any change to query
/// code, results, or I/O accounting.
///
/// Contracts every implementation must honor:
///
///  - **Pointer stability.** A pointer returned by `Data(id)` stays valid
///    (and keeps aliasing the same page) for the store's whole lifetime.
///    The crawl hot path holds record pointers across further page reads
///    and depends on this (see docs/architecture.md §Storage).
///  - **Immutability.** Pages never change after the store is opened/built;
///    `Data`/`category` are safe to call concurrently from any number of
///    threads.
///  - **No I/O accounting.** Charging page reads is the PageCache layer's
///    job; `Data` itself is free of side effects on IoStats.
class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Raw read access to one page. Query code must not call this directly —
  /// use a PageCache so the access is charged.
  virtual const char* Data(PageId id) const = 0;

  virtual PageCategory category(PageId id) const = 0;

  virtual uint32_t page_size() const = 0;

  /// Number of pages in the store.
  virtual size_t page_count() const = 0;

  /// Number of pages in a given category.
  virtual size_t PageCountIn(PageCategory category) const = 0;

  /// Total on-disk (or simulated on-disk) size in bytes.
  virtual uint64_t SizeBytes() const {
    return page_count() * uint64_t{page_size()};
  }

  /// Advisory hint that `id` will be read soon. Non-blocking; the default
  /// (and the in-memory PageFile) does nothing. DiskPageFile forwards the
  /// hint to the OS (madvise(MADV_WILLNEED) on the mmap path,
  /// posix_fadvise(POSIX_FADV_WILLNEED) on the pread path) and optionally
  /// to a background touch thread, so the I/O overlaps the caller's
  /// compute. Hints never affect results or logical IoStats read counts.
  virtual void Prefetch(PageId id) const { (void)id; }
};

}  // namespace flat

#endif  // FLAT_STORAGE_PAGE_STORE_H_
