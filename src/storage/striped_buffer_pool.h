#ifndef FLAT_STORAGE_STRIPED_BUFFER_POOL_H_
#define FLAT_STORAGE_STRIPED_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/epoch_page_table.h"
#include "storage/io_stats.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"

namespace flat {

/// Concurrent LRU page cache in front of a PageStore.
///
/// The cache is partitioned into stripes by page id; each stripe has its own
/// lock, recency list, and hit/miss counters, so readers on disjoint stripes
/// never contend. Page *data* lives in the immutable PageStore, so a returned
/// pointer is always consistent regardless of concurrent eviction — eviction
/// only forgets that a page was cached.
///
/// I/O accounting is per caller: `Read` charges the miss against the
/// caller-supplied IoStats (typically thread- or query-local), while the
/// stripe additionally records the miss in its own IoStats. Summing the
/// caller-side stats therefore always equals `MergedStats()` for the read
/// counters, which is how the QueryEngine reports per-query breakdowns that
/// add up to the batch aggregate. The one exception is the prefetch *wasted*
/// counter: hints still pending at Clear() have no caller to charge, so
/// waste appears only in MergedStats (issued and hit are recorded on both
/// sides like reads).
///
/// Prefetching mirrors BufferPool: hints are forwarded to the PageStore and
/// tracked per stripe in a pending set bounded by the hinting session's
/// depth; they never insert into the cache table, so read accounting is
/// independent of prefetching.
class StripedBufferPool {
 public:
  /// `capacity_pages` is divided (rounding up, minimum 1) into equal
  /// per-stripe bounds, so the effective total can exceed it by up to
  /// stripe_count pages and a stripe-hot workload may evict before the
  /// global figure is reached (0 means unbounded). `stripe_count` is
  /// rounded up to a power of two.
  explicit StripedBufferPool(const PageStore* store, size_t capacity_pages = 0,
                             size_t stripe_count = 16);

  StripedBufferPool(const StripedBufferPool&) = delete;
  StripedBufferPool& operator=(const StripedBufferPool&) = delete;

  /// Fetches a page; on miss charges one read to `stats` (and to the owning
  /// stripe's aggregate). Safe to call from any number of threads.
  const char* Read(PageId id, IoStats* stats);

  /// Hints that `id` will be read soon; `depth` bounds the owning stripe's
  /// pending set (<= 0 is a no-op). Charges a prefetch-issued to `stats`
  /// and the stripe when the hint is accepted. Safe from any thread.
  void Prefetch(PageId id, IoStats* stats, int depth);

  /// Cached-page data without charging or recency update; nullptr on miss.
  /// Safe from any thread.
  const char* Peek(PageId id);

  /// Drops every cached page (cold cache). Not safe concurrently with Read.
  /// Outstanding prefetch hints are counted as wasted in the stripe stats
  /// (see class comment).
  void Clear();

  /// True if the page is currently cached (test hook).
  bool IsCached(PageId id) const;

  size_t cached_pages() const;
  size_t capacity_pages() const { return capacity_pages_; }
  size_t stripe_count() const { return stripes_.size(); }

  uint64_t hits() const;
  uint64_t misses() const;

  /// Sum of the per-stripe IoStats: every miss any session ever charged.
  IoStats MergedStats() const;

  const PageStore& store() const { return *store_; }

  /// A single-threaded view over the shared pool that charges misses to one
  /// IoStats — hand one Session per worker (or per query) to code written
  /// against the PageCache interface. `prefetch_depth` is the session's
  /// hint budget (0 = prefetching off).
  class Session final : public PageCache {
   public:
    Session(StripedBufferPool* pool, IoStats* stats, int prefetch_depth = 0)
        : pool_(pool), stats_(stats),
          prefetch_depth_(prefetch_depth > 0 ? prefetch_depth : 0) {}

    const char* Read(PageId id) override { return pool_->Read(id, stats_); }

    void Prefetch(PageId id) override {
      if (prefetch_depth_ > 0) pool_->Prefetch(id, stats_, prefetch_depth_);
    }

    const char* Peek(PageId id) override { return pool_->Peek(id); }

    bool prefetch_enabled() const override { return prefetch_depth_ > 0; }

    void set_prefetch_depth(int depth) {
      prefetch_depth_ = depth > 0 ? depth : 0;
    }
    int prefetch_depth() const { return prefetch_depth_; }

   private:
    StripedBufferPool* pool_;
    IoStats* stats_;
    int prefetch_depth_;
  };

 private:
  // Cache-line aligned so concurrent sessions hammering different stripes
  // never false-share a stripe's mutex or counters; 64 covers the
  // destructive-interference size of every x86-64 and AArch64 part we
  // target (std::hardware_destructive_interference_size needs a libstdc++
  // that defines it, and over-aligned operator new handles the allocation).
  struct alignas(64) Stripe {
    explicit Stripe(size_t capacity) : table(capacity) {}

    mutable std::mutex mu;
    EpochPageTable table;
    uint64_t hits = 0;
    uint64_t misses = 0;
    IoStats stats;
    // Outstanding prefetch hints for pages in this stripe; bounded by the
    // hinting session's depth.
    std::vector<PageId> pending;
  };
  static_assert(alignof(Stripe) >= 64,
                "stripes must not share a cache line");

  Stripe& StripeFor(PageId id) const {
    // Fibonacci hashing spreads sequential page ids across stripes.
    const uint32_t h = static_cast<uint32_t>(id) * 2654435769u;
    return *stripes_[(h >> 16) & stripe_mask_];
  }

  const PageStore* store_;
  size_t capacity_pages_;
  size_t per_stripe_capacity_;
  size_t stripe_mask_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace flat

#endif  // FLAT_STORAGE_STRIPED_BUFFER_POOL_H_
