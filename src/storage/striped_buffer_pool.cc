#include "storage/striped_buffer_pool.h"

#include <algorithm>
#include <cassert>

#include "storage/fault_injection.h"

namespace flat {
namespace {

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

StripedBufferPool::StripedBufferPool(const PageStore* store,
                                     size_t capacity_pages,
                                     size_t stripe_count)
    : store_(store), capacity_pages_(capacity_pages) {
  assert(store_ != nullptr);
  const size_t stripes = RoundUpPowerOfTwo(stripe_count == 0 ? 1 : stripe_count);
  stripe_mask_ = stripes - 1;
  per_stripe_capacity_ =
      capacity_pages_ == 0
          ? 0
          : std::max<size_t>(1, (capacity_pages_ + stripes - 1) / stripes);
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>(per_stripe_capacity_));
  }
}

const char* StripedBufferPool::Read(PageId id, IoStats* stats) {
  Stripe& stripe = StripeFor(id);
  bool missed = false;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (stripe.table.Touch(id)) {
      ++stripe.hits;
      // Page data lives in the immutable PageStore, so the pointer can be
      // returned outside the stripe lock.
    } else {
      missed = true;
      ++stripe.misses;
      const PageCategory category = store_->category(id);
      stripe.stats.RecordRead(category);
      if (stats != nullptr) stats->RecordRead(category);
      stripe.table.Insert(id);
      if (!stripe.pending.empty()) {
        auto it =
            std::find(stripe.pending.begin(), stripe.pending.end(), id);
        if (it != stripe.pending.end()) {
          *it = stripe.pending.back();
          stripe.pending.pop_back();
          stripe.stats.RecordPrefetchHit();
          if (stats != nullptr) stats->RecordPrefetchHit();
        }
      }
    }
  }
  if (!missed) return store_->Data(id);
  // A miss is where the backend may perform real I/O (outside the stripe
  // lock): attribute any transient-read retries it burned to the caller's
  // stats and, under the lock again, to the pool's merged stats.
  const uint64_t retries_before = ThreadReadRetries();
  const char* data = store_->Data(id);
  const uint64_t retries = ThreadReadRetries() - retries_before;
  if (retries != 0) {
    if (stats != nullptr) stats->RecordIoRetries(retries);
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.stats.RecordIoRetries(retries);
  }
  return data;
}

void StripedBufferPool::Prefetch(PageId id, IoStats* stats, int depth) {
  if (depth <= 0) return;
  Stripe& stripe = StripeFor(id);
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (stripe.table.Contains(id)) return;  // already paid for
    if (stripe.pending.size() >= static_cast<size_t>(depth)) return;
    if (std::find(stripe.pending.begin(), stripe.pending.end(), id) !=
        stripe.pending.end()) {
      return;
    }
    stripe.pending.push_back(id);
    stripe.stats.RecordPrefetchIssued();
    if (stats != nullptr) stats->RecordPrefetchIssued();
  }
  // The store-level hint (OS advice + background touch) runs outside the
  // stripe lock: it can block briefly in the kernel.
  store_->Prefetch(id);
}

const char* StripedBufferPool::Peek(PageId id) {
  Stripe& stripe = StripeFor(id);
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (!stripe.table.Contains(id)) return nullptr;
  }
  return store_->Data(id);
}

void StripedBufferPool::Clear() {
  for (auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    if (!stripe->pending.empty()) {
      // No caller to charge at clear time; waste shows up in MergedStats
      // only (see class comment).
      stripe->stats.RecordPrefetchWasted(stripe->pending.size());
      stripe->pending.clear();
    }
    stripe->table.Clear();
  }
}

bool StripedBufferPool::IsCached(PageId id) const {
  Stripe& stripe = StripeFor(id);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.table.Contains(id);
}

size_t StripedBufferPool::cached_pages() const {
  size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total += stripe->table.size();
  }
  return total;
}

uint64_t StripedBufferPool::hits() const {
  uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total += stripe->hits;
  }
  return total;
}

uint64_t StripedBufferPool::misses() const {
  uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total += stripe->misses;
  }
  return total;
}

IoStats StripedBufferPool::MergedStats() const {
  IoStats merged;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    merged += stripe->stats;
  }
  return merged;
}

}  // namespace flat
