#ifndef FLAT_STORAGE_FAULT_INJECTION_H_
#define FLAT_STORAGE_FAULT_INJECTION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "storage/page_store.h"

namespace flat {

/// What a scheduled fault does to one page-read attempt.
enum class FaultKind : uint8_t {
  kNone,       ///< no fault; the attempt succeeds normally.
  kError,      ///< the attempt fails with `error_number` (transient: the
               ///< reader retries with bounded backoff; permanent once the
               ///< retry budget is exhausted).
  kEintr,      ///< the attempt is interrupted (EINTR); retried immediately.
  kShortRead,  ///< the attempt transfers only `short_bytes` bytes; the
               ///< reader continues from the partial progress.
  kLatency,    ///< the attempt sleeps `latency_micros` then succeeds.
};

/// One scheduled fault: "page `page`'s attempt number `attempt` (1-based,
/// counted per page across the store's lifetime) behaves as `kind`".
struct FaultSpec {
  PageId page = kInvalidPageId;
  uint32_t attempt = 1;
  FaultKind kind = FaultKind::kError;
  int error_number = 5;          // EIO; used by kError.
  uint32_t latency_micros = 0;   // used by kLatency.
  uint32_t short_bytes = 1;      // used by kShortRead (clamped to >= 1).
};

/// A deterministic, schedule-driven fault plan shared by
/// FaultInjectingPageStore and DiskPageFile's pread path: the test/bench
/// author lists exactly which (page, attempt) pairs misbehave and how, so a
/// run either recovers bit-identically or fails with a typed status — never
/// "flaky". Thread-safe: per-page attempt counters advance under a mutex
/// (fault schedules are test machinery, not a hot path). Pages with no
/// entry never fault and pay one map lookup per read attempt.
class FaultSchedule {
 public:
  void Add(const FaultSpec& spec);

  /// Convenience: fail `page`'s next `times` attempts (attempts 1..times)
  /// with `error_number`.
  void FailRead(PageId page, uint32_t times, int error_number = 5);

  /// Consumes the next attempt for `page`: bumps its attempt counter and
  /// returns the fault registered for that attempt (kind == kNone when the
  /// attempt is clean). Every call is one attempt — success or not.
  FaultSpec Next(PageId page) const;

  /// Total non-kNone faults handed out so far, and per-kind breakdowns.
  uint64_t faults_fired() const;
  uint64_t fired(FaultKind kind) const;

  /// Number of scheduled specs (static; Add-time).
  size_t scheduled() const;

  /// Rewinds all attempt counters and fired counts (between bench passes).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::unordered_map<PageId, std::vector<FaultSpec>> by_page_;
  mutable std::unordered_map<PageId, uint32_t> attempts_;
  mutable std::array<uint64_t, 5> fired_{};  // indexed by FaultKind
};

/// Per-thread running count of transient page-read retries performed by the
/// storage backends (DiskPageFile's pread recovery and
/// FaultInjectingPageStore). The buffer pools sample this counter around
/// PageStore::Data() on a cache miss and charge the delta to the querying
/// IoStats — deterministic per-query retry attribution without threading a
/// stats pointer through the const PageStore interface.
uint64_t ThreadReadRetries();
void AddThreadReadRetries(uint64_t count);

/// A PageStore wrapper that injects the faults of a FaultSchedule in front
/// of any inner store, applying the same recovery policy as DiskPageFile's
/// pread path: EINTR and short reads continue immediately, transient errors
/// retry with bounded exponential backoff, and an error that outlives the
/// retry budget throws std::runtime_error (which the query dispatch layer
/// converts to a kIoError result). With an empty schedule the wrapper is
/// transparent: results, IoStats, and pointer stability are bit-identical
/// to the inner store's. Thread-safe wherever the inner store is.
class FaultInjectingPageStore final : public PageStore {
 public:
  struct Options {
    /// Transient-error retries before the read fails permanently.
    uint32_t max_read_retries = 4;
    /// First backoff sleep; doubled per retry up to the cap. 0 (default)
    /// retries immediately — deterministic tests shouldn't sleep.
    uint32_t backoff_initial_micros = 0;
    uint32_t backoff_cap_micros = 1000;
  };

  /// `inner` and `schedule` must outlive the wrapper; `schedule` may be
  /// null (never faults).
  FaultInjectingPageStore(const PageStore* inner, const FaultSchedule* schedule)
      : FaultInjectingPageStore(inner, schedule, Options()) {}
  FaultInjectingPageStore(const PageStore* inner,
                          const FaultSchedule* schedule, Options options);

  const char* Data(PageId id) const override;
  PageCategory category(PageId id) const override;
  uint32_t page_size() const override;
  size_t page_count() const override;
  size_t PageCountIn(PageCategory category) const override;
  uint64_t SizeBytes() const override;
  void Prefetch(PageId id) const override;

  /// Transient faults recovered (EINTR + retried errors) and permanent
  /// failures thrown, across all threads.
  uint64_t read_retries() const {
    return read_retries_.load(std::memory_order_relaxed);
  }
  uint64_t read_errors() const {
    return read_errors_.load(std::memory_order_relaxed);
  }

  const PageStore* inner() const { return inner_; }

 private:
  const PageStore* inner_;
  const FaultSchedule* schedule_;
  Options options_;
  mutable std::atomic<uint64_t> read_retries_{0};
  mutable std::atomic<uint64_t> read_errors_{0};
};

}  // namespace flat

#endif  // FLAT_STORAGE_FAULT_INJECTION_H_
