#include "storage/fault_injection.h"

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

namespace flat {

void FaultSchedule::Add(const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  by_page_[spec.page].push_back(spec);
}

void FaultSchedule::FailRead(PageId page, uint32_t times, int error_number) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FaultSpec>& specs = by_page_[page];
  for (uint32_t attempt = 1; attempt <= times; ++attempt) {
    FaultSpec spec;
    spec.page = page;
    spec.attempt = attempt;
    spec.kind = FaultKind::kError;
    spec.error_number = error_number;
    specs.push_back(spec);
  }
}

FaultSpec FaultSchedule::Next(PageId page) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t attempt = ++attempts_[page];
  FaultSpec clean;
  clean.page = page;
  clean.attempt = attempt;
  clean.kind = FaultKind::kNone;
  auto it = by_page_.find(page);
  if (it == by_page_.end()) return clean;
  for (const FaultSpec& spec : it->second) {
    if (spec.attempt == attempt) {
      ++fired_[static_cast<size_t>(spec.kind)];
      return spec;
    }
  }
  return clean;
}

uint64_t FaultSchedule::faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (uint64_t f : fired_) total += f;
  return total;
}

uint64_t FaultSchedule::fired(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_[static_cast<size_t>(kind)];
}

size_t FaultSchedule::scheduled() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& entry : by_page_) total += entry.second.size();
  return total;
}

void FaultSchedule::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  attempts_.clear();
  fired_.fill(0);
}

namespace {
thread_local uint64_t t_read_retries = 0;
}  // namespace

uint64_t ThreadReadRetries() { return t_read_retries; }
void AddThreadReadRetries(uint64_t count) { t_read_retries += count; }

FaultInjectingPageStore::FaultInjectingPageStore(const PageStore* inner,
                                                 const FaultSchedule* schedule,
                                                 Options options)
    : inner_(inner), schedule_(schedule), options_(options) {}

const char* FaultInjectingPageStore::Data(PageId id) const {
  if (schedule_ == nullptr) return inner_->Data(id);
  uint32_t error_retries = 0;
  for (;;) {
    const FaultSpec fault = schedule_->Next(id);
    switch (fault.kind) {
      case FaultKind::kNone:
        return inner_->Data(id);
      case FaultKind::kLatency:
        if (fault.latency_micros > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(fault.latency_micros));
        }
        return inner_->Data(id);
      case FaultKind::kShortRead:
        // Partial progress: the real read loop would continue from the
        // transferred bytes without counting a retry; so do we.
        continue;
      case FaultKind::kEintr:
        // Interrupted syscall: retried immediately, counted as a recovery.
        read_retries_.fetch_add(1, std::memory_order_relaxed);
        AddThreadReadRetries(1);
        continue;
      case FaultKind::kError: {
        if (error_retries >= options_.max_read_retries) {
          read_errors_.fetch_add(1, std::memory_order_relaxed);
          throw std::runtime_error(
              "FaultInjectingPageStore: read of page " + std::to_string(id) +
              " failed after " + std::to_string(error_retries) +
              " retries (injected errno " +
              std::to_string(fault.error_number) + ")");
        }
        read_retries_.fetch_add(1, std::memory_order_relaxed);
        AddThreadReadRetries(1);
        if (options_.backoff_initial_micros > 0) {
          uint64_t backoff = uint64_t{options_.backoff_initial_micros}
                             << error_retries;
          if (backoff > options_.backoff_cap_micros) {
            backoff = options_.backoff_cap_micros;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(backoff));
        }
        ++error_retries;
        continue;
      }
    }
  }
}

PageCategory FaultInjectingPageStore::category(PageId id) const {
  return inner_->category(id);
}

uint32_t FaultInjectingPageStore::page_size() const {
  return inner_->page_size();
}

size_t FaultInjectingPageStore::page_count() const {
  return inner_->page_count();
}

size_t FaultInjectingPageStore::PageCountIn(PageCategory category) const {
  return inner_->PageCountIn(category);
}

uint64_t FaultInjectingPageStore::SizeBytes() const {
  return inner_->SizeBytes();
}

void FaultInjectingPageStore::Prefetch(PageId id) const {
  inner_->Prefetch(id);
}

}  // namespace flat
