#ifndef FLAT_STORAGE_DISK_PAGE_FILE_H_
#define FLAT_STORAGE_DISK_PAGE_FILE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/page.h"
#include "storage/page_store.h"

namespace flat {

class FaultSchedule;

/// A real persistent PageStore: serves `Data(id)` straight from a
/// `FLATPGF1` file written by SavePageFile, opened read-only for query
/// execution.
///
/// This is the backend that makes the paper's central claim measurable:
/// crawl queries are 97.8–98.8 % I/O-bound (Section VII-E.2), which an
/// in-memory PageFile can only *model* (DiskModel), never *exhibit*. With a
/// DiskPageFile behind the same PageCache API, cold-cache benchmarks read
/// actual pages from an actual file, and the crawl prefetcher
/// (PageCache::Prefetch) can overlap that I/O with the SIMD gates.
///
/// Two access modes, chosen at Open:
///
///  - **mmap (default).** The whole file is mapped PROT_READ/MAP_PRIVATE;
///    `Data(id)` is pure address arithmetic into the mapping, so the
///    on-disk layout *is* the in-memory layout and the pointer-stability
///    contract of PageStore holds for free (the mapping never moves).
///    `Prefetch` issues `madvise(MADV_WILLNEED)` on the page's byte range.
///  - **pread fallback** (mmap unavailable or `Options::use_mmap ==
///    false`). Pages are read on demand into individually allocated
///    buffers that live for the file's lifetime (pointer stability again);
///    materialization is lock-free (compare-exchange publishes the loaded
///    buffer; a racing loser frees its copy). `Prefetch` issues
///    `posix_fadvise(POSIX_FADV_WILLNEED)`.
///
/// With `Options::async_prefetch` (default on) an additional background
/// thread drains a queue of hinted PageIds and *touches* them — faulting
/// mmap'd pages resp. materializing pread pages off the query thread — so
/// even synchronous page-fault cost overlaps the caller's compute. In this
/// mode a hint is just a queue push (no syscall on the query thread); with
/// the toucher disabled, Prefetch falls back to inline OS readahead advice.
/// Hints are advisory: dropping them (full queue, stopped thread) affects
/// only latency, never results or logical IoStats.
///
/// Header and size are validated against the actual file size before any
/// page is touched (no trust in the on-disk page_count), and every category
/// byte is range-checked; corrupt files are rejected with
/// std::runtime_error at Open.
///
/// Thread-safety: all const members (including Prefetch) are safe to call
/// concurrently once Open returns.
class DiskPageFile final : public PageStore {
 public:
  struct Options {
    /// Map the file and serve pages from the mapping. When false — or when
    /// mmap fails at runtime — the pread fallback is used instead.
    bool use_mmap = true;
    /// Run a background thread that touches prefetch-hinted pages so the
    /// fault/read happens off the query thread. When false, Prefetch only
    /// issues the (asynchronous) OS advice.
    bool async_prefetch = true;
    /// Bound on queued-but-untouched prefetch hints; further hints are
    /// dropped (they are advisory).
    size_t prefetch_queue_limit = 4096;

    /// Transient pread failures (anything but EINTR, which always retries
    /// immediately) are retried up to this many times with exponential
    /// backoff before the read fails permanently (std::runtime_error, which
    /// the query dispatch layer converts to a kIoError result).
    uint32_t max_read_retries = 3;
    /// First backoff sleep before a transient-error retry; doubled per
    /// retry up to the cap. 0 retries immediately.
    uint32_t retry_backoff_micros = 100;
    uint32_t retry_backoff_cap_micros = 10000;

    /// Deterministic fault plan for page reads (tests/benches; see
    /// storage/fault_injection.h). Setting this forces pread mode — mmap'd
    /// reads never reach the schedule, so a scheduled fault could silently
    /// never fire. Must outlive the file. Header and category-table reads
    /// are not subject to injection (they happen once, at Open).
    const FaultSchedule* fault_schedule = nullptr;
  };

  /// Opens `path` (a SavePageFile stream on disk) read-only. Throws
  /// std::runtime_error on I/O errors, bad magic, implausible page size,
  /// a page_count inconsistent with the file's actual size, or invalid
  /// category bytes.
  static std::unique_ptr<DiskPageFile> Open(const std::string& path,
                                            const Options& options);
  static std::unique_ptr<DiskPageFile> Open(const std::string& path) {
    return Open(path, Options());
  }

  ~DiskPageFile() override;

  DiskPageFile(const DiskPageFile&) = delete;
  DiskPageFile& operator=(const DiskPageFile&) = delete;

  const char* Data(PageId id) const override;

  PageCategory category(PageId id) const override {
    return static_cast<PageCategory>(categories_[id]);
  }

  uint32_t page_size() const override { return page_size_; }
  size_t page_count() const override { return categories_.size(); }

  size_t PageCountIn(PageCategory category) const override {
    return pages_in_category_[static_cast<size_t>(category)];
  }

  /// Page payload bytes, excluding the 16-byte header and category table —
  /// the same figure PageFile::SizeBytes reports, so size accounting is
  /// backend-independent.
  uint64_t SizeBytes() const override {
    return categories_.size() * uint64_t{page_size_};
  }

  /// Hints that `id` will be read soon. Async mode (default): enqueues the
  /// page for the background toucher — a queue push, no syscall on the
  /// calling thread. Without the toucher: issues OS readahead advice
  /// (madvise/posix_fadvise WILLNEED) inline. Never blocks on I/O.
  void Prefetch(PageId id) const override;

  /// Drops this file's pages from the OS page cache as far as the kernel
  /// allows (`posix_fadvise(POSIX_FADV_DONTNEED)` over the whole file) and
  /// discards pread-mode resident copies. The cold-cache benchmark
  /// methodology between runs; see docs/benchmarks.md. Must not race with
  /// concurrent Data() calls in pread mode.
  void DropOsCache();

  /// True when pages are served from an mmap'd region (false: pread mode).
  bool mmap_backed() const { return map_base_ != nullptr; }

  /// Pages touched by the background prefetch thread so far (test hook).
  uint64_t pages_touched() const {
    return pages_touched_.load(std::memory_order_relaxed);
  }

  /// Transient page-read failures recovered by retry (EINTR + retried
  /// errors) and permanent read failures thrown, across all threads.
  uint64_t read_retries() const {
    return read_retries_.load(std::memory_order_relaxed);
  }
  uint64_t read_errors() const {
    return read_errors_.load(std::memory_order_relaxed);
  }

  const std::string& path() const { return path_; }

 private:
  DiskPageFile() = default;

  /// Byte offset of page `id` within the file.
  uint64_t PageOffset(PageId id) const {
    return data_offset_ + uint64_t{id} * page_size_;
  }

  /// pread mode: returns the resident copy of `id`, reading it from the fd
  /// on first access (lock-free publish; see class comment).
  const char* EnsureResident(PageId id) const;

  /// Reads page `id` into `dst`, applying the fault schedule (if any) and
  /// the EINTR/short-read/transient-retry recovery policy. Throws
  /// std::runtime_error once the retry budget is exhausted.
  void ReadPage(PageId id, char* dst) const;

  void TouchLoop();
  void Touch(PageId id) const;

  std::string path_;
  int fd_ = -1;
  uint32_t page_size_ = 0;
  uint64_t data_offset_ = 0;  // 16 + page_count (header + category table)
  uint64_t file_size_ = 0;
  std::vector<uint8_t> categories_;  // validated private copy
  std::array<size_t, kNumPageCategories> pages_in_category_{};

  // mmap mode.
  const char* map_base_ = nullptr;  // nullptr in pread mode
  size_t map_length_ = 0;

  // pread mode: one owned buffer per materialized page, kept for the
  // file's lifetime (pointer stability).
  mutable std::unique_ptr<std::atomic<char*>[]> resident_;

  // Background prefetch toucher.
  bool async_prefetch_ = false;
  size_t prefetch_queue_limit_ = 0;
  mutable std::mutex queue_mu_;
  mutable std::condition_variable queue_cv_;
  mutable std::vector<PageId> queue_;
  bool stop_ = false;
  std::thread toucher_;
  mutable std::atomic<uint64_t> pages_touched_{0};

  // Fail-soft read policy (see Options).
  const FaultSchedule* fault_schedule_ = nullptr;
  uint32_t max_read_retries_ = 3;
  uint32_t retry_backoff_micros_ = 100;
  uint32_t retry_backoff_cap_micros_ = 10000;
  mutable std::atomic<uint64_t> read_retries_{0};
  mutable std::atomic<uint64_t> read_errors_{0};
};

}  // namespace flat

#endif  // FLAT_STORAGE_DISK_PAGE_FILE_H_
