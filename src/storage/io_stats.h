#ifndef FLAT_STORAGE_IO_STATS_H_
#define FLAT_STORAGE_IO_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "storage/page.h"

namespace flat {

/// Per-category page-read counters. All query-time experiments in the paper
/// report either total page reads or a per-category breakdown; every index in
/// this repository performs reads through a BufferPool that charges misses
/// here, so FLAT and the R-Tree baselines are accounted identically.
class IoStats {
 public:
  void RecordRead(PageCategory category) {
    ++reads_[static_cast<size_t>(category)];
  }

  uint64_t ReadsIn(PageCategory category) const {
    return reads_[static_cast<size_t>(category)];
  }

  uint64_t TotalReads() const {
    uint64_t total = 0;
    for (uint64_t r : reads_) total += r;
    return total;
  }

  /// Total bytes fetched assuming `page_size` bytes per read.
  uint64_t BytesRead(uint32_t page_size) const {
    return TotalReads() * page_size;
  }

  void Reset() { reads_.fill(0); }

  IoStats& operator+=(const IoStats& other) {
    for (size_t i = 0; i < reads_.size(); ++i) reads_[i] += other.reads_[i];
    return *this;
  }

  /// Difference since a snapshot (for per-query accounting).
  IoStats DeltaSince(const IoStats& snapshot) const {
    IoStats delta;
    for (size_t i = 0; i < reads_.size(); ++i) {
      delta.reads_[i] = reads_[i] - snapshot.reads_[i];
    }
    return delta;
  }

 private:
  std::array<uint64_t, kNumPageCategories> reads_{};
};

}  // namespace flat

#endif  // FLAT_STORAGE_IO_STATS_H_
