#ifndef FLAT_STORAGE_IO_STATS_H_
#define FLAT_STORAGE_IO_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "storage/page.h"

namespace flat {

/// Per-category page-read counters. All query-time experiments in the paper
/// report either total page reads or a per-category breakdown; every index in
/// this repository performs reads through a BufferPool that charges misses
/// here, so FLAT and the R-Tree baselines are accounted identically.
///
/// Prefetch accounting is carried alongside but deliberately separate from
/// the read counters: a prefetch hint never is and never becomes a read, so
/// the logical read counts stay identical whether prefetching is on, off, or
/// unsupported by the backend. `issued` counts hints forwarded to the
/// PageStore, `hits` counts misses whose page had an outstanding hint (the
/// prefetch did useful work), `wasted` counts hints still outstanding when
/// the cache was cleared (pages hinted but never read).
///
/// Overlay probes are likewise separate: a query against a store with a
/// delta overlay gate-tests in-memory overlay entries that live on no page,
/// so charging them as page reads would corrupt the paper's I/O metrics.
/// One probe = one live overlay entry tested against a query's gate; the
/// count depends only on the snapshot's overlay contents, never on thread
/// count or execution order.
class IoStats {
 public:
  void RecordRead(PageCategory category) {
    ++reads_[static_cast<size_t>(category)];
  }

  void RecordPrefetchIssued() { ++prefetch_issued_; }
  void RecordPrefetchHit() { ++prefetch_hits_; }
  void RecordPrefetchWasted(uint64_t count) { prefetch_wasted_ += count; }
  void RecordOverlayProbes(uint64_t count) { overlay_probes_ += count; }

  /// Fail-soft counters (see docs/architecture.md "Fail-soft execution").
  /// Retries: transient page-read failures (EINTR, injected or real I/O
  /// errors within the backoff budget) recovered while serving this query's
  /// reads — the read still succeeded and is counted once in `reads_`.
  /// Errors: unrecoverable read failures converted to kIoError results.
  /// Sheds: queries rejected by admission control before execution.
  void RecordIoRetries(uint64_t count) { io_retries_ += count; }
  void RecordIoError() { ++io_errors_; }
  void RecordQueryShed() { ++queries_shed_; }

  uint64_t PrefetchIssued() const { return prefetch_issued_; }
  uint64_t PrefetchHits() const { return prefetch_hits_; }
  uint64_t PrefetchWasted() const { return prefetch_wasted_; }
  uint64_t OverlayProbes() const { return overlay_probes_; }
  uint64_t IoRetries() const { return io_retries_; }
  uint64_t IoErrors() const { return io_errors_; }
  uint64_t QueriesShed() const { return queries_shed_; }

  uint64_t ReadsIn(PageCategory category) const {
    return reads_[static_cast<size_t>(category)];
  }

  uint64_t TotalReads() const {
    uint64_t total = 0;
    for (uint64_t r : reads_) total += r;
    return total;
  }

  /// Total bytes fetched assuming `page_size` bytes per read.
  uint64_t BytesRead(uint32_t page_size) const {
    return TotalReads() * page_size;
  }

  void Reset() {
    reads_.fill(0);
    prefetch_issued_ = 0;
    prefetch_hits_ = 0;
    prefetch_wasted_ = 0;
    overlay_probes_ = 0;
    io_retries_ = 0;
    io_errors_ = 0;
    queries_shed_ = 0;
  }

  IoStats& operator+=(const IoStats& other) {
    for (size_t i = 0; i < reads_.size(); ++i) reads_[i] += other.reads_[i];
    prefetch_issued_ += other.prefetch_issued_;
    prefetch_hits_ += other.prefetch_hits_;
    prefetch_wasted_ += other.prefetch_wasted_;
    overlay_probes_ += other.overlay_probes_;
    io_retries_ += other.io_retries_;
    io_errors_ += other.io_errors_;
    queries_shed_ += other.queries_shed_;
    return *this;
  }

  /// Difference since a snapshot (for per-query accounting).
  IoStats DeltaSince(const IoStats& snapshot) const {
    IoStats delta;
    for (size_t i = 0; i < reads_.size(); ++i) {
      delta.reads_[i] = reads_[i] - snapshot.reads_[i];
    }
    delta.prefetch_issued_ = prefetch_issued_ - snapshot.prefetch_issued_;
    delta.prefetch_hits_ = prefetch_hits_ - snapshot.prefetch_hits_;
    delta.prefetch_wasted_ = prefetch_wasted_ - snapshot.prefetch_wasted_;
    delta.overlay_probes_ = overlay_probes_ - snapshot.overlay_probes_;
    delta.io_retries_ = io_retries_ - snapshot.io_retries_;
    delta.io_errors_ = io_errors_ - snapshot.io_errors_;
    delta.queries_shed_ = queries_shed_ - snapshot.queries_shed_;
    return delta;
  }

 private:
  std::array<uint64_t, kNumPageCategories> reads_{};
  uint64_t prefetch_issued_ = 0;
  uint64_t prefetch_hits_ = 0;
  uint64_t prefetch_wasted_ = 0;
  uint64_t overlay_probes_ = 0;
  uint64_t io_retries_ = 0;
  uint64_t io_errors_ = 0;
  uint64_t queries_shed_ = 0;
};

}  // namespace flat

#endif  // FLAT_STORAGE_IO_STATS_H_
