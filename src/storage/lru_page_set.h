#ifndef FLAT_STORAGE_LRU_PAGE_SET_H_
#define FLAT_STORAGE_LRU_PAGE_SET_H_

#include <cstddef>
#include <list>
#include <unordered_map>

#include "storage/page.h"

namespace flat {

/// The LRU bookkeeping shared by BufferPool and StripedBufferPool's stripes:
/// a recency list plus an id -> iterator map, evicting from the back when a
/// capacity is set. Not thread-safe — callers provide their own locking.
class LruPageSet {
 public:
  /// `capacity` bounds the resident set (0 means unbounded).
  explicit LruPageSet(size_t capacity = 0) : capacity_(capacity) {}

  /// True (and moves the page to the front) if `id` is resident.
  bool Touch(PageId id) {
    auto it = map_.find(id);
    if (it == map_.end()) return false;
    recency_.splice(recency_.begin(), recency_, it->second);
    return true;
  }

  /// Makes `id` resident at the front, evicting the back entry if full.
  /// The caller has already established `id` is absent (via Touch).
  void Insert(PageId id) {
    if (capacity_ > 0 && map_.size() >= capacity_) {
      const PageId victim = recency_.back();
      recency_.pop_back();
      map_.erase(victim);
    }
    recency_.push_front(id);
    map_[id] = recency_.begin();
  }

  void Clear() {
    recency_.clear();
    map_.clear();
  }

  bool Contains(PageId id) const { return map_.contains(id); }
  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  // MRU at front; the map holds iterators into the recency list.
  std::list<PageId> recency_;
  std::unordered_map<PageId, std::list<PageId>::iterator> map_;
};

}  // namespace flat

#endif  // FLAT_STORAGE_LRU_PAGE_SET_H_
