#ifndef FLAT_STORAGE_BUFFER_POOL_H_
#define FLAT_STORAGE_BUFFER_POOL_H_

#include <cstdint>

#include "storage/epoch_page_table.h"
#include "storage/io_stats.h"
#include "storage/page_cache.h"
#include "storage/page_file.h"

namespace flat {

/// Single-threaded LRU page cache in front of a PageFile.
///
/// A `Read` that misses the cache counts one page read (in the page's
/// category) against the attached IoStats; hits are free, mirroring the OS
/// buffer cache of the paper's testbed. `Clear()` empties the cache —
/// the paper clears OS caches and disk buffers before every query, and the
/// benchmark harness does the same through this method. Clearing is O(1)
/// (an epoch bump in the page table), so reusing one pool with a Clear()
/// per query is exactly as cold as — and much cheaper than — constructing a
/// fresh pool per query. For concurrent readers use StripedBufferPool (one
/// Session per thread).
class BufferPool final : public PageCache {
 public:
  /// `capacity_pages` bounds the number of cached pages (0 means unbounded).
  BufferPool(const PageFile* file, IoStats* stats, size_t capacity_pages = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches a page, charging a read on miss. The returned pointer aliases
  /// the PageFile's storage and stays valid for the file's lifetime (see
  /// PageCache::Read); eviction only affects hit/miss accounting.
  const char* Read(PageId id) override;

  /// Drops every cached page (cold cache).
  void Clear();

  /// Redirects future miss charges to `stats` (never null). Lets a reused
  /// pool account each query against its own IoStats — the QueryEngine pairs
  /// this with Clear() to keep the paper's cold-per-query methodology while
  /// amortizing the pool across a worker's whole batch share.
  void set_stats(IoStats* stats);

  /// True if the page is currently cached (test hook; does not touch LRU
  /// order or counters).
  bool IsCached(PageId id) const { return table_.Contains(id); }

  size_t cached_pages() const { return table_.size(); }
  size_t capacity_pages() const { return table_.capacity(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  IoStats* stats() { return stats_; }
  const PageFile& file() const { return *file_; }

 private:
  const PageFile* file_;
  IoStats* stats_;
  EpochPageTable table_;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace flat

#endif  // FLAT_STORAGE_BUFFER_POOL_H_
