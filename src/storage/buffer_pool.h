#ifndef FLAT_STORAGE_BUFFER_POOL_H_
#define FLAT_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <vector>

#include "storage/epoch_page_table.h"
#include "storage/io_stats.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"

namespace flat {

/// Single-threaded LRU page cache in front of a PageStore.
///
/// A `Read` that misses the cache counts one page read (in the page's
/// category) against the attached IoStats; hits are free, mirroring the OS
/// buffer cache of the paper's testbed. `Clear()` empties the cache —
/// the paper clears OS caches and disk buffers before every query, and the
/// benchmark harness does the same through this method. Clearing is O(1)
/// (an epoch bump in the page table), so reusing one pool with a Clear()
/// per query is exactly as cold as — and much cheaper than — constructing a
/// fresh pool per query. For concurrent readers use StripedBufferPool (one
/// Session per thread).
///
/// Prefetching: `set_prefetch_depth(d)` with d > 0 turns `Prefetch` into a
/// real hint — forwarded to the PageStore (OS readahead / background touch
/// on DiskPageFile, a no-op on the in-memory PageFile) and tracked in a
/// small pending set of at most d pages. Prefetch never inserts into the
/// cache table, so read accounting is bit-identical with prefetching on or
/// off; only the IoStats prefetch counters move (issued on hint, hit when a
/// miss lands on a pending page, wasted for hints still pending at Clear).
class BufferPool final : public PageCache {
 public:
  /// `capacity_pages` bounds the number of cached pages (0 means unbounded).
  BufferPool(const PageStore* store, IoStats* stats,
             size_t capacity_pages = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches a page, charging a read on miss. The returned pointer aliases
  /// the PageStore's storage and stays valid for the store's lifetime (see
  /// PageCache::Read); eviction only affects hit/miss accounting.
  const char* Read(PageId id) override;

  /// Hints `id` (no-op unless a prefetch depth is set; see class comment).
  void Prefetch(PageId id) override;

  /// Cached-page data without charging or recency update; nullptr on miss.
  const char* Peek(PageId id) override {
    return table_.Contains(id) ? store_->Data(id) : nullptr;
  }

  bool prefetch_enabled() const override { return prefetch_depth_ > 0; }

  /// Drops every cached page (cold cache). Hints still pending are counted
  /// as wasted against the currently attached IoStats — the QueryEngine
  /// calls Clear() before retargeting stats, so waste lands on the query
  /// that issued the hints.
  void Clear();

  /// Redirects future miss charges to `stats` (never null). Lets a reused
  /// pool account each query against its own IoStats — the QueryEngine pairs
  /// this with Clear() to keep the paper's cold-per-query methodology while
  /// amortizing the pool across a worker's whole batch share.
  void set_stats(IoStats* stats);

  /// Maximum outstanding prefetch hints (0 disables prefetching; hints
  /// beyond the depth are dropped). This is the per-query knob the
  /// QueryEngine sets from Query/Options::prefetch_depth.
  void set_prefetch_depth(int depth) {
    prefetch_depth_ = depth > 0 ? depth : 0;
  }
  int prefetch_depth() const { return prefetch_depth_; }

  /// True if the page is currently cached (test hook; does not touch LRU
  /// order or counters).
  bool IsCached(PageId id) const { return table_.Contains(id); }

  size_t cached_pages() const { return table_.size(); }
  size_t capacity_pages() const { return table_.capacity(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  IoStats* stats() { return stats_; }
  const PageStore& store() const { return *store_; }

 private:
  const PageStore* store_;
  IoStats* stats_;
  EpochPageTable table_;

  // Outstanding prefetch hints; bounded by prefetch_depth_, so a linear
  // scan beats any hashed structure at crawl-frontier sizes.
  std::vector<PageId> pending_;
  int prefetch_depth_ = 0;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace flat

#endif  // FLAT_STORAGE_BUFFER_POOL_H_
