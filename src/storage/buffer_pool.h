#ifndef FLAT_STORAGE_BUFFER_POOL_H_
#define FLAT_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/io_stats.h"
#include "storage/page_file.h"

namespace flat {

/// LRU page cache in front of a PageFile.
///
/// A `Read` that misses the cache counts one page read (in the page's
/// category) against the attached IoStats; hits are free, mirroring the OS
/// buffer cache of the paper's testbed. `Clear()` empties the cache —
/// the paper clears OS caches and disk buffers before every query, and the
/// benchmark harness does the same through this method.
class BufferPool {
 public:
  /// `capacity_pages` bounds the number of cached pages (0 means unbounded).
  BufferPool(const PageFile* file, IoStats* stats, size_t capacity_pages = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches a page, charging a read on miss. The returned pointer is valid
  /// until the page is evicted or the pool is cleared; callers must not hold
  /// it across further Read calls unless the pool is unbounded.
  const char* Read(PageId id);

  /// Drops every cached page (cold cache).
  void Clear();

  /// True if the page is currently cached (test hook; does not touch LRU
  /// order or counters).
  bool IsCached(PageId id) const { return cache_.contains(id); }

  size_t cached_pages() const { return cache_.size(); }
  size_t capacity_pages() const { return capacity_pages_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  IoStats* stats() { return stats_; }
  const PageFile& file() const { return *file_; }

 private:
  const PageFile* file_;
  IoStats* stats_;
  size_t capacity_pages_;

  // MRU at front. The map holds iterators into the recency list.
  std::list<PageId> recency_;
  std::unordered_map<PageId, std::list<PageId>::iterator> cache_;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace flat

#endif  // FLAT_STORAGE_BUFFER_POOL_H_
