#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace flat {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunOnAllWorkers(const std::function<void(size_t)>& fn) {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    task_ = &fn;
    task_error_ = nullptr;
    active_workers_ = workers_.size();
    ++generation_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [this] { return active_workers_ == 0; });
    task_ = nullptr;
    error = task_error_;
    task_error_ = nullptr;
  }
  // Rethrow the first worker exception on the dispatching thread, after the
  // barrier: every worker has finished, so the pool stays consistent and
  // reusable.
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::WorkerLoop(size_t worker) {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(size_t)>* task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_generation] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      task = task_;
    }
    std::exception_ptr error;
    try {
      (*task)(worker);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error != nullptr && task_error_ == nullptr) task_error_ = error;
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    size_t count, size_t grain,
    const std::function<void(size_t worker, size_t index)>& fn) {
  if (count == 0) return;
  if (grain == 0) {
    grain = std::max<size_t>(1, count / (workers_.size() * 8));
  }
  std::atomic<size_t> cursor{0};
  RunOnAllWorkers([&](size_t worker) {
    for (;;) {
      const size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= count) return;
      const size_t end = std::min(count, begin + grain);
      for (size_t index = begin; index < end; ++index) fn(worker, index);
    }
  });
}

void ParallelFor(ThreadPool* pool, size_t count, size_t grain,
                 const std::function<void(size_t worker, size_t index)>& fn) {
  if (pool == nullptr || pool->threads() == 1 || count <= 1) {
    for (size_t index = 0; index < count; ++index) fn(0, index);
    return;
  }
  pool->ParallelFor(count, grain, fn);
}

}  // namespace flat
