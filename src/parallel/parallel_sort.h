#ifndef FLAT_PARALLEL_PARALLEL_SORT_H_
#define FLAT_PARALLEL_PARALLEL_SORT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "parallel/thread_pool.h"

namespace flat {

/// Elements below this count are sorted serially; chunking overhead dominates
/// any win on smaller inputs.
inline constexpr size_t kMinParallelSortSize = 1 << 13;

/// Sorts [first, last) with `comp`, splitting the range into one chunk per
/// worker, sorting the chunks in parallel, then merging adjacent chunk pairs
/// in parallel rounds. `pool == nullptr` (or a tiny range) falls back to
/// std::sort on the calling thread.
///
/// Determinism: when `comp` is a strict *total* order (no two distinct
/// elements compare equal) the sorted permutation is unique, so the output is
/// byte-identical for every thread count — the invariant FLAT's parallel
/// build relies on. With a mere weak order, ties may land in different
/// positions than std::sort would put them.
template <typename Iter, typename Comp>
void ParallelSort(ThreadPool* pool, Iter first, Iter last, Comp comp) {
  const size_t n = static_cast<size_t>(last - first);
  if (pool == nullptr || pool->threads() <= 1 || n < kMinParallelSortSize) {
    std::sort(first, last, comp);
    return;
  }

  const size_t chunks = std::min(pool->threads(), n);
  std::vector<size_t> bounds(chunks + 1);
  for (size_t c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;

  pool->ParallelFor(chunks, /*grain=*/1, [&](size_t, size_t c) {
    std::sort(first + bounds[c], first + bounds[c + 1], comp);
  });

  // log2(chunks) rounds of pairwise merges; each round's merges touch
  // disjoint ranges, so they run in parallel.
  for (size_t width = 1; width < chunks; width *= 2) {
    const size_t stride = 2 * width;
    const size_t pairs = (chunks + stride - 1) / stride;
    pool->ParallelFor(pairs, /*grain=*/1, [&](size_t, size_t p) {
      const size_t lo = p * stride;
      const size_t mid = lo + width;
      if (mid >= chunks) return;  // odd tail carries over to the next round
      const size_t hi = std::min(lo + stride, chunks);
      std::inplace_merge(first + bounds[lo], first + bounds[mid],
                         first + bounds[hi], comp);
    });
  }
}

}  // namespace flat

#endif  // FLAT_PARALLEL_PARALLEL_SORT_H_
