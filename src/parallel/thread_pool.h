#ifndef FLAT_PARALLEL_THREAD_POOL_H_
#define FLAT_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flat {

/// Fixed pool of worker threads shared by the build pipeline and the
/// QueryEngine.
///
/// The pool exposes one low-level primitive — RunOnAllWorkers, which invokes
/// a callback once on every worker and blocks the caller until all calls
/// return — plus ParallelFor built on top of it. Scheduling policy stays with
/// the client: ParallelFor claims contiguous index blocks off a shared atomic
/// cursor; the QueryEngine layers its own per-worker deques with stealing on
/// RunOnAllWorkers.
///
/// Thread-safety / usage rules:
///  - One dispatch at a time: RunOnAllWorkers/ParallelFor must not be called
///    concurrently from multiple threads, nor from inside a worker callback
///    (that would deadlock waiting for the worker it runs on). Distinct
///    ThreadPool objects are fully independent; nesting a dispatch on pool B
///    inside a callback running on pool A is fine.
///  - A dispatch forms a synchronization barrier: everything the workers
///    wrote before returning from `fn` happens-before the dispatching
///    thread's return from RunOnAllWorkers/ParallelFor.
///  - Callbacks may throw: each worker catches the exception, and the first
///    one caught (by completion order) is rethrown on the dispatching thread
///    after the barrier — never std::terminate. Other workers still run
///    their callbacks to completion, so a ParallelFor that throws has
///    processed an unspecified subset of the remaining indices. The pool
///    stays usable for further dispatches.
///  - threads() is safe from any thread; construction and destruction must
///    not race with a dispatch.
class ThreadPool {
 public:
  /// Starts `threads` workers (0 = std::thread::hardware_concurrency(),
  /// at least 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t threads() const { return workers_.size(); }

  /// Invokes fn(worker) once on every worker concurrently and returns when
  /// all calls have completed. `worker` in [0, threads()) identifies the
  /// executing worker, e.g. to index per-worker scratch state.
  void RunOnAllWorkers(const std::function<void(size_t worker)>& fn);

  /// Runs fn(worker, index) for every index in [0, count), distributing
  /// contiguous blocks of `grain` indices across the workers (0 = pick a
  /// grain that yields ~8 blocks per worker). Blocks until every index has
  /// been processed. fn invocations for different indices may run
  /// concurrently; writes to disjoint per-index slots need no locking.
  void ParallelFor(size_t count, size_t grain,
                   const std::function<void(size_t worker, size_t index)>& fn);

 private:
  void WorkerLoop(size_t worker);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  size_t active_workers_ = 0;
  bool shutdown_ = false;
  const std::function<void(size_t)>* task_ = nullptr;
  std::exception_ptr task_error_;  // first exception of the current dispatch
};

/// nullptr-tolerant helper: a null pool means "run serially on the calling
/// thread as worker 0". Callers size per-worker scratch with WorkerCount.
inline size_t WorkerCount(const ThreadPool* pool) {
  return pool == nullptr ? 1 : pool->threads();
}

/// nullptr-tolerant ParallelFor: with a pool, dispatches onto it (same
/// contract as ThreadPool::ParallelFor); with nullptr, runs fn(0, index)
/// for every index serially on the calling thread. The serial fallback is
/// what lets build-pipeline code take `ThreadPool*` unconditionally.
void ParallelFor(ThreadPool* pool, size_t count, size_t grain,
                 const std::function<void(size_t worker, size_t index)>& fn);

}  // namespace flat

#endif  // FLAT_PARALLEL_THREAD_POOL_H_
