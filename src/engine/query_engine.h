#ifndef FLAT_ENGINE_QUERY_ENGINE_H_
#define FLAT_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/crawl_scratch.h"
#include "core/flat_index.h"
#include "core/query_control.h"
#include "geometry/aabb.h"
#include "parallel/thread_pool.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"
#include "storage/striped_buffer_pool.h"

namespace flat {

/// One query in a batch submitted to the QueryEngine. Plain value type;
/// freely copyable and safe to share across threads once constructed.
struct Query {
  enum class Type {
    kRange,       ///< ids of elements intersecting `box` (seed + crawl).
    kRangeCount,  ///< count only; same page reads as kRange, no id vector.
    kSeedScan,    ///< kRange answered via the seed tree alone (ablation plan).
    kKnn,         ///< `k` nearest element MBRs around `center`.
    kSphere,      ///< ids of elements intersecting the ball around `center`.
  };

  Type type = Type::kRange;
  Aabb box;                // kRange / kRangeCount / kSeedScan
  Vec3 center;             // kKnn / kSphere
  double radius = 0.0;     // kSphere
  size_t k = 0;            // kKnn
  FlatIndex::CrawlGuard guard = FlatIndex::CrawlGuard::kPartitionMbr;
  /// Per-query prefetch depth: maximum outstanding crawl-frontier hints
  /// while this query runs. 0 disables prefetching, negative (default)
  /// inherits QueryEngine::Options::prefetch_depth. Prefetching never
  /// changes results or logical IoStats read counts — only wall-clock on a
  /// disk-backed store and the prefetch counters.
  int prefetch_depth = -1;
  /// Optional fail-soft controls (deadline, cancel token, I/O budget; see
  /// core/query_control.h). Must outlive the batch. Null (default) runs the
  /// query to completion with zero overhead on the hot path — results and
  /// IoStats stay bit-identical to an uncontrolled run.
  const QueryControl* control = nullptr;

  static Query Range(
      const Aabb& box,
      FlatIndex::CrawlGuard guard = FlatIndex::CrawlGuard::kPartitionMbr) {
    Query q;
    q.type = Type::kRange;
    q.box = box;
    q.guard = guard;
    return q;
  }

  /// Count-only range query: reads the same pages as Range (identical
  /// IoStats) but reports only `QueryResult::count`, never materializing ids.
  static Query RangeCount(const Aabb& box) {
    Query q;
    q.type = Type::kRangeCount;
    q.box = box;
    return q;
  }

  /// Range query executed through FlatIndex::RangeQueryViaSeedScan — the
  /// "use the seed tree as a plain R-Tree" ablation plan. Same result set as
  /// Range, different page reads.
  static Query RangeSeedScan(const Aabb& box) {
    Query q;
    q.type = Type::kSeedScan;
    q.box = box;
    return q;
  }

  static Query Knn(const Vec3& center, size_t k) {
    Query q;
    q.type = Type::kKnn;
    q.center = center;
    q.k = k;
    return q;
  }

  static Query Sphere(const Vec3& center, double radius) {
    Query q;
    q.type = Type::kSphere;
    q.center = center;
    q.radius = radius;
    return q;
  }
};

/// Result of one query: element ids in index traversal order (identical to
/// what the serial FlatIndex call produces) plus the query's own I/O
/// breakdown. For kRangeCount queries `ids` stays empty and `count` carries
/// the tally; for every other type `count == ids.size()`.
///
/// `status` reports the fail-soft outcome: kOk means the full, exact result;
/// any other status means the query stopped early (deadline, cancellation,
/// budget, I/O failure, admission shed) and `ids` holds the matches gathered
/// up to the stop point — a valid partial result, never torn, with
/// `count == ids.size()` still holding. kRangeCount partials carry the
/// tally accumulated so far (a lower bound on the exact count), mirroring
/// how partial kRange keeps the ids gathered so far; check `status` to
/// distinguish a partial tally from an exact one (core/query_control.h).
struct QueryResult {
  std::vector<uint64_t> ids;
  uint64_t count = 0;
  IoStats io;
  QueryStatus status = QueryStatus::kOk;
  /// Human-readable detail for kIoError (the underlying exception's what()).
  std::string error;

  bool ok() const { return status == QueryStatus::kOk; }
};

class OverlayView;

/// A query paired with the index it runs against, for multi-index batches
/// (e.g. the scatter phase of ShardedFlatStore). `index` may be null or
/// unbuilt, in which case the query yields an empty result — unless an
/// `overlay` is attached, in which case the sub-query still scans overlay
/// bucket `overlay_bucket` (this is how the spill-bucket tail sub-query of
/// an overlayed store runs with no shard index at all).
struct IndexedQuery {
  const FlatIndex* index = nullptr;
  Query query;
  /// Snapshot overlay to merge with the index's result: base ids touched by
  /// the overlay are masked out and live entries of `overlay_bucket` that
  /// match the query are appended (see DispatchQueryWithOverlay). Null for
  /// plain bulkload-only queries. The view must outlive the batch.
  const OverlayView* overlay = nullptr;
  size_t overlay_bucket = 0;
};

/// Runs one query against `index` through `cache` via the serial FlatIndex
/// code path, appending ids into `result->ids` and setting `result->count`.
/// The single dispatch point shared by the engine's workers and the serial
/// reference harness. `scratch` is the caller's reusable crawl scratch (one
/// per thread); nullptr falls back to a throwaway — results are identical
/// either way. Thread-safe for distinct (cache, result, scratch) triples:
/// FlatIndex queries are const and share no mutable state.
void DispatchQuery(const FlatIndex& index, const Query& query,
                   PageCache* cache, QueryResult* result,
                   CrawlScratch* scratch = nullptr);

/// Overlay-aware dispatch: runs `query` against `index` (if any), masks base
/// ids the overlay touches, then appends/counts matching live entries of
/// `overlay` bucket `overlay_bucket`, charging the gate tests to
/// `result->io` as overlay probes. With a null/empty overlay this is exactly
/// DispatchQuery; with a null/unbuilt index it degenerates to a pure overlay
/// bucket scan (no page reads). kRangeCount runs the materializing range
/// path internally — identical page reads by the FlatIndex contract — so
/// delete masking can see the ids, then reports only the count. kKnn is not
/// supported over an overlay and throws std::logic_error.
void DispatchQueryWithOverlay(const FlatIndex* index, const Query& query,
                              PageCache* cache, const OverlayView* overlay,
                              size_t overlay_bucket, QueryResult* result,
                              CrawlScratch* scratch = nullptr);

/// Aggregate outcome of one batch execution.
struct BatchStats {
  /// Sum of every query's IoStats. In kColdPerQuery mode this is identical —
  /// per category — to executing the batch serially with a cold cache per
  /// query (the paper's methodology).
  IoStats io;
  /// Sum of every query's `count` (ids for materializing queries, tallies
  /// for kRangeCount).
  uint64_t result_elements = 0;
  double wall_seconds = 0.0;
  size_t threads = 0;
  /// Fail-soft outcome tally: queries that completed exactly, queries that
  /// stopped early with a typed status (excluding sheds), and queries shed
  /// by admission control (kRejected).
  uint64_t queries_ok = 0;
  uint64_t queries_failed = 0;
  uint64_t queries_shed = 0;
};

/// Parallel batch query engine.
///
/// A fixed ThreadPool (src/parallel/) executes a batch of queries. The batch
/// is block-partitioned into per-worker deques; a worker that drains its own
/// deque steals from the back of its siblings', so skewed batches (a few
/// crawl-heavy queries among many cheap ones) still balance. Each worker owns
/// one CrawlScratch reused across all its queries, keeping the crawl hot path
/// allocation-free.
///
/// The engine runs in one of two shapes:
///  - bound to a single FlatIndex (the original API): `Run(vector<Query>)`.
///  - index-free (constructed from Options alone): `RunMulti` executes each
///    query against its own index — this is the fan-out primitive behind
///    ShardedFlatStore's scatter-gather, where one batch mixes sub-queries
///    for many shards and the work-stealing pool balances across all of
///    them. (Distinctly named, not an overload, so `Run({...})` braced
///    calls stay unambiguous.)
///
/// Each query runs the unmodified serial FlatIndex code path, so per-query
/// result vectors are bit-identical to serial execution no matter the thread
/// count. I/O accounting is per query and merged into BatchStats:
///
///  - kColdPerQuery (default): every query gets a fresh BufferPool over its
///    index's PageFile — cold cache per query, exactly the paper's benchmark
///    methodology — so merged totals equal serial execution's.
///  - kSharedStriped: queries share one StripedBufferPool per distinct
///    PageFile in the batch; results are unchanged but total reads shrink
///    because the batch shares the cache (the multi-client serving scenario).
///
/// Thread-safety: construction and destruction must happen on one thread;
/// `Run` must not be called concurrently from multiple threads (queue the
/// batches instead — that is what a batch is for). The indexes queried must
/// stay alive and unmodified for the duration of `Run`.
class QueryEngine {
 public:
  enum class CacheMode { kColdPerQuery, kSharedStriped };

  struct Options {
    /// Worker threads (0 means std::thread::hardware_concurrency()).
    size_t threads = 0;
    /// Per-query BufferPool capacity in kColdPerQuery mode (0 = unbounded).
    size_t pool_pages = 0;
    /// Shared cache capacity in kSharedStriped mode (0 = unbounded),
    /// per distinct PageStore in the batch.
    size_t shared_cache_pages = 0;
    CacheMode cache_mode = CacheMode::kColdPerQuery;
    /// Default prefetch depth for queries that leave Query::prefetch_depth
    /// negative: maximum outstanding crawl-frontier hints per query. 0
    /// (default) turns prefetching off; useful values are a few dozen on a
    /// disk-backed store (see docs/benchmarks.md).
    int prefetch_depth = 0;
    /// Admission control: when non-zero, at most this many queries of a
    /// batch are admitted; the excess (batch tail, in order) comes back
    /// immediately with status kRejected and no I/O, and is counted in
    /// BatchStats::queries_shed / IoStats::QueriesShed. 0 (default) admits
    /// everything.
    size_t max_queued_queries = 0;
  };

  /// Engine bound to one index; `Run(vector<Query>)` targets it.
  explicit QueryEngine(const FlatIndex* index)
      : QueryEngine(index, Options()) {}
  QueryEngine(const FlatIndex* index, Options options);

  /// Index-free engine for multi-index batches; only RunMulti may be used
  /// (the single-index Run throws std::logic_error).
  explicit QueryEngine(Options options) : QueryEngine(nullptr, options) {}

  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Executes `batch` against the bound index, returning one QueryResult per
  /// query in batch order. Requires construction with a non-null index
  /// (throws std::logic_error on an index-free engine).
  std::vector<QueryResult> Run(const std::vector<Query>& batch,
                               BatchStats* stats = nullptr);

  /// Executes a multi-index batch: each query runs against its own
  /// IndexedQuery::index. Queries with a null/unbuilt index yield empty
  /// results (and no I/O). All indexes' PageFiles may differ; in
  /// kSharedStriped mode one striped cache is kept per distinct PageFile.
  std::vector<QueryResult> RunMulti(const std::vector<IndexedQuery>& batch,
                                    BatchStats* stats = nullptr);

  size_t threads() const { return pool_.threads(); }
  const Options& options() const { return options_; }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<size_t> items;  // indices into the current batch
  };

  using SharedCacheMap =
      std::unordered_map<const PageStore*, std::unique_ptr<StripedBufferPool>>;

  struct Job {
    const std::vector<IndexedQuery>* batch = nullptr;
    std::vector<QueryResult>* results = nullptr;
    const SharedCacheMap* shared_caches = nullptr;
  };

  /// Per-worker reusable state: the crawl scratch plus, in kColdPerQuery
  /// mode, one BufferPool recycled across the worker's queries — Clear()
  /// (an O(1) epoch bump) plus set_stats() gives every query the same cold
  /// cache and per-query accounting a fresh pool would, without
  /// re-allocating the pool's page table each time. The pool is rebuilt
  /// only when a multi-index batch switches the worker to a different
  /// PageStore.
  struct WorkerState {
    CrawlScratch scratch;
    std::unique_ptr<BufferPool> pool;
  };

  void ProcessQueue(size_t worker_index, const Job& job);
  bool PopOwn(size_t worker_index, size_t* query_index);
  bool Steal(size_t worker_index, size_t* query_index);
  void ExecuteQuery(const Job& job, const IndexedQuery& iq,
                    QueryResult* result, WorkerState* state);

  const FlatIndex* index_;
  Options options_;

  ThreadPool pool_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::unique_ptr<WorkerState>> workers_;  // one per worker
};

}  // namespace flat

#endif  // FLAT_ENGINE_QUERY_ENGINE_H_
