#ifndef FLAT_ENGINE_QUERY_ENGINE_H_
#define FLAT_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/crawl_scratch.h"
#include "core/flat_index.h"
#include "geometry/aabb.h"
#include "geometry/vec3.h"
#include "parallel/thread_pool.h"
#include "storage/io_stats.h"
#include "storage/striped_buffer_pool.h"

namespace flat {

/// One query in a batch submitted to the QueryEngine.
struct Query {
  enum class Type { kRange, kKnn, kSphere };

  Type type = Type::kRange;
  Aabb box;                // kRange
  Vec3 center;             // kKnn / kSphere
  double radius = 0.0;     // kSphere
  size_t k = 0;            // kKnn
  FlatIndex::CrawlGuard guard = FlatIndex::CrawlGuard::kPartitionMbr;

  static Query Range(
      const Aabb& box,
      FlatIndex::CrawlGuard guard = FlatIndex::CrawlGuard::kPartitionMbr) {
    Query q;
    q.type = Type::kRange;
    q.box = box;
    q.guard = guard;
    return q;
  }

  static Query Knn(const Vec3& center, size_t k) {
    Query q;
    q.type = Type::kKnn;
    q.center = center;
    q.k = k;
    return q;
  }

  static Query Sphere(const Vec3& center, double radius) {
    Query q;
    q.type = Type::kSphere;
    q.center = center;
    q.radius = radius;
    return q;
  }
};

/// Result of one query: element ids in index traversal order (identical to
/// what the serial FlatIndex call produces) plus the query's own I/O
/// breakdown.
struct QueryResult {
  std::vector<uint64_t> ids;
  IoStats io;
};

/// Runs one query against `index` through `cache` via the serial FlatIndex
/// code path, appending ids into `result->ids`. The single dispatch point
/// shared by the engine's workers and the serial reference harness.
/// `scratch` is the caller's reusable crawl scratch (one per thread);
/// nullptr falls back to a throwaway — results are identical either way.
void DispatchQuery(const FlatIndex& index, const Query& query,
                   PageCache* cache, QueryResult* result,
                   CrawlScratch* scratch = nullptr);

/// Aggregate outcome of one batch execution.
struct BatchStats {
  /// Sum of every query's IoStats. In kColdPerQuery mode this is identical —
  /// per category — to executing the batch serially with a cold cache per
  /// query (the paper's methodology).
  IoStats io;
  uint64_t result_elements = 0;
  double wall_seconds = 0.0;
  size_t threads = 0;
};

/// Parallel batch query engine over a FlatIndex.
///
/// A shared ThreadPool (src/parallel/) executes a batch of range / kNN /
/// sphere queries. The batch is block-partitioned into per-worker deques; a
/// worker that drains its own deque steals from the back of its siblings', so
/// skewed batches (a few crawl-heavy queries among many cheap ones) still
/// balance. Each worker owns one CrawlScratch reused across all its queries,
/// keeping the crawl hot path allocation-free.
///
/// Each query runs the unmodified serial FlatIndex code path, so per-query
/// result vectors are bit-identical to serial execution no matter the thread
/// count. I/O accounting is per query and merged into BatchStats:
///
///  - kColdPerQuery (default): every query gets a fresh BufferPool over the
///    shared PageFile — cold cache per query, exactly the paper's benchmark
///    methodology — so merged totals equal serial execution's.
///  - kSharedStriped: all queries share one StripedBufferPool; results are
///    unchanged but total reads shrink because the batch shares the cache
///    (the multi-client serving scenario).
class QueryEngine {
 public:
  enum class CacheMode { kColdPerQuery, kSharedStriped };

  struct Options {
    /// Worker threads (0 means std::thread::hardware_concurrency()).
    size_t threads = 0;
    /// Per-query BufferPool capacity in kColdPerQuery mode (0 = unbounded).
    size_t pool_pages = 0;
    /// Shared cache capacity in kSharedStriped mode (0 = unbounded).
    size_t shared_cache_pages = 0;
    CacheMode cache_mode = CacheMode::kColdPerQuery;
  };

  explicit QueryEngine(const FlatIndex* index)
      : QueryEngine(index, Options()) {}
  QueryEngine(const FlatIndex* index, Options options);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Executes `batch`, returning one QueryResult per query in batch order.
  /// Not safe to call concurrently from multiple threads (queue the batches
  /// instead — that is what a batch is for).
  std::vector<QueryResult> Run(const std::vector<Query>& batch,
                               BatchStats* stats = nullptr);

  size_t threads() const { return pool_.threads(); }
  const Options& options() const { return options_; }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<size_t> items;  // indices into the current batch
  };

  struct Job {
    const std::vector<Query>* batch = nullptr;
    std::vector<QueryResult>* results = nullptr;
    StripedBufferPool* shared_cache = nullptr;
  };

  void ProcessQueue(size_t worker_index, const Job& job);
  bool PopOwn(size_t worker_index, size_t* query_index);
  bool Steal(size_t worker_index, size_t* query_index);
  void ExecuteQuery(const Job& job, const Query& query, QueryResult* result,
                    CrawlScratch* scratch);

  const FlatIndex* index_;
  Options options_;

  ThreadPool pool_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<CrawlScratch> scratches_;  // one per worker
};

}  // namespace flat

#endif  // FLAT_ENGINE_QUERY_ENGINE_H_
