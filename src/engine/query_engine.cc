#include "engine/query_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <optional>
#include <stdexcept>

#include "core/overlay_merge.h"
#include "delta/overlay_view.h"
#include "storage/buffer_pool.h"

namespace flat {
namespace {

// Binds a query's control (and the IoStats its budget meters) to the
// executing scratch for the duration of one dispatch, unbinding on every
// exit path — the scratch is reused by the worker's next query, which may
// carry no control at all.
class ScratchControlGuard {
 public:
  ScratchControlGuard(CrawlScratch* scratch, const QueryControl* control,
                      const IoStats* io)
      : scratch_(control != nullptr ? scratch : nullptr) {
    if (scratch_ != nullptr) scratch_->BindControl(control, io);
  }
  ~ScratchControlGuard() {
    if (scratch_ != nullptr) scratch_->BindControl(nullptr, nullptr);
  }

  ScratchControlGuard(const ScratchControlGuard&) = delete;
  ScratchControlGuard& operator=(const ScratchControlGuard&) = delete;

 private:
  CrawlScratch* scratch_;
};

// Turns an escaped execution exception into the query's typed fail-soft
// outcome: QueryAbort carries its own status; anything else is an I/O
// failure (the storage backends throw std::runtime_error once their retry
// budget is exhausted). std::logic_error — API misuse, e.g. kKnn over an
// overlay — is NOT absorbed; the caller rethrows it. The partial ids
// gathered so far remain valid; kRangeCount partials keep the tally
// accumulated up to the stop point (RangeCountInto bumps the result's
// counter in place; the overlay path materializes ids, so the larger of
// the two is the matches seen so far) — consistent with partial kRange
// keeping its ids (core/query_control.h).
void SettleFailedResult(const Query& query, QueryResult* result) {
  if (query.type == Query::Type::kRangeCount) {
    result->count = std::max<uint64_t>(result->count, result->ids.size());
    result->ids.clear();
  } else {
    result->count = result->ids.size();
  }
}

void DispatchQueryWithOverlayImpl(const FlatIndex* index, const Query& query,
                                  PageCache* cache, const OverlayView* overlay,
                                  size_t overlay_bucket, QueryResult* result,
                                  CrawlScratch* scratch);

}  // namespace

QueryEngine::QueryEngine(const FlatIndex* index, Options options)
    : index_(index), options_(options), pool_(options.threads) {
  options_.threads = pool_.threads();
  queues_.reserve(pool_.threads());
  workers_.reserve(pool_.threads());
  for (size_t i = 0; i < pool_.threads(); ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.push_back(std::make_unique<WorkerState>());
  }
}

QueryEngine::~QueryEngine() = default;

std::vector<QueryResult> QueryEngine::Run(const std::vector<Query>& batch,
                                          BatchStats* stats) {
  if (index_ == nullptr) {
    // Loud, not assert-only: in Release an assert would vanish and every
    // query would silently come back empty through the null-index path.
    throw std::logic_error(
        "QueryEngine::Run(vector<Query>) requires an engine bound to an "
        "index; use RunMulti on an index-free engine");
  }
  std::vector<IndexedQuery> indexed(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    indexed[i].index = index_;
    indexed[i].query = batch[i];
  }
  return RunMulti(indexed, stats);
}

std::vector<QueryResult> QueryEngine::RunMulti(
    const std::vector<IndexedQuery>& batch, BatchStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<QueryResult> results(batch.size());

  // Admission control: shed the batch tail beyond the configured queue
  // bound before any work is enqueued. Shed queries cost no I/O and come
  // back immediately as kRejected — a typed outcome the caller can retry,
  // not an error.
  size_t admitted = batch.size();
  if (options_.max_queued_queries > 0 &&
      batch.size() > options_.max_queued_queries) {
    admitted = options_.max_queued_queries;
    for (size_t i = admitted; i < batch.size(); ++i) {
      results[i].status = QueryStatus::kRejected;
      results[i].io.RecordQueryShed();
    }
  }

  if (admitted > 0) {
    // Block-partition the admitted prefix: contiguous runs keep neighboring
    // queries — which workloads tend to generate with spatial locality — on
    // one worker; stealing rebalances the tail.
    const size_t threads = pool_.threads();
    const size_t per_worker = (admitted + threads - 1) / threads;
    for (size_t w = 0; w < threads; ++w) {
      std::lock_guard<std::mutex> lock(queues_[w]->mu);
      queues_[w]->items.clear();
      const size_t first = std::min(admitted, w * per_worker);
      const size_t last = std::min(admitted, first + per_worker);
      for (size_t i = first; i < last; ++i) queues_[w]->items.push_back(i);
    }

    // In shared-cache mode, one striped pool per distinct PageFile in the
    // batch. Built single-threaded before the fan-out, read-only during it.
    SharedCacheMap shared_caches;
    if (options_.cache_mode == CacheMode::kSharedStriped) {
      for (const IndexedQuery& iq : batch) {
        if (iq.index == nullptr || iq.index->file() == nullptr) continue;
        std::unique_ptr<StripedBufferPool>& slot =
            shared_caches[iq.index->file()];
        if (slot == nullptr) {
          slot = std::make_unique<StripedBufferPool>(
              iq.index->file(), options_.shared_cache_pages);
        }
      }
    }
    Job job;
    job.batch = &batch;
    job.results = &results;
    job.shared_caches = shared_caches.empty() ? nullptr : &shared_caches;
    pool_.RunOnAllWorkers([this, &job](size_t w) { ProcessQueue(w, job); });
  }

  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->threads = pool_.threads();
    for (const QueryResult& r : results) {
      stats->io += r.io;
      stats->result_elements += r.count;
      if (r.status == QueryStatus::kOk) {
        ++stats->queries_ok;
      } else if (r.status == QueryStatus::kRejected) {
        ++stats->queries_shed;
      } else {
        ++stats->queries_failed;
      }
    }
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
  return results;
}

void QueryEngine::ProcessQueue(size_t worker_index, const Job& job) {
  size_t query_index;
  while (PopOwn(worker_index, &query_index) ||
         Steal(worker_index, &query_index)) {
    ExecuteQuery(job, (*job.batch)[query_index],
                 &(*job.results)[query_index], workers_[worker_index].get());
  }
}

bool QueryEngine::PopOwn(size_t worker_index, size_t* query_index) {
  WorkerQueue& queue = *queues_[worker_index];
  std::lock_guard<std::mutex> lock(queue.mu);
  if (queue.items.empty()) return false;
  *query_index = queue.items.front();
  queue.items.pop_front();
  return true;
}

bool QueryEngine::Steal(size_t worker_index, size_t* query_index) {
  const size_t n = queues_.size();
  for (size_t offset = 1; offset < n; ++offset) {
    WorkerQueue& victim = *queues_[(worker_index + offset) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.items.empty()) continue;
    *query_index = victim.items.back();
    victim.items.pop_back();
    return true;
  }
  return false;
}

namespace {

void DispatchQueryImpl(const FlatIndex& index, const Query& query,
                       PageCache* cache, QueryResult* result,
                       CrawlScratch* scratch) {
  switch (query.type) {
    case Query::Type::kRange:
      index.RangeQuery(cache, query.box, &result->ids, scratch, query.guard);
      result->count = result->ids.size();
      break;
    case Query::Type::kRangeCount:
      // Accumulates into the result's counter in place so a fail-soft stop
      // surfaces the partial tally (SettleFailedResult keeps it).
      index.RangeCountInto(cache, query.box, &result->count, scratch);
      break;
    case Query::Type::kSeedScan:
      index.RangeQueryViaSeedScan(cache, query.box, &result->ids, scratch);
      result->count = result->ids.size();
      break;
    case Query::Type::kKnn:
      result->ids = index.KnnQuery(cache, query.center, query.k, scratch);
      result->count = result->ids.size();
      break;
    case Query::Type::kSphere:
      index.SphereQuery(cache, query.center, query.radius, &result->ids,
                        scratch);
      result->count = result->ids.size();
      break;
  }
}

}  // namespace

void DispatchQuery(const FlatIndex& index, const Query& query,
                   PageCache* cache, QueryResult* result,
                   CrawlScratch* scratch) {
  // A controlled query needs a scratch to carry its control binding into
  // the traversal's cancellation points; materialize a throwaway if the
  // caller brought none. Uncontrolled queries skip all of this.
  std::optional<CrawlScratch> throwaway;
  if (query.control != nullptr && scratch == nullptr) {
    scratch = &throwaway.emplace();
  }
  ScratchControlGuard guard(scratch, query.control, &result->io);
  try {
    DispatchQueryImpl(index, query, cache, result, scratch);
  } catch (const QueryAbort& abort) {
    result->status = abort.status();
    SettleFailedResult(query, result);
  } catch (const std::logic_error&) {
    throw;  // API misuse stays loud
  } catch (const std::exception& e) {
    result->status = QueryStatus::kIoError;
    result->error = e.what();
    result->io.RecordIoError();
    SettleFailedResult(query, result);
  }
}

void DispatchQueryWithOverlay(const FlatIndex* index, const Query& query,
                              PageCache* cache, const OverlayView* overlay,
                              size_t overlay_bucket, QueryResult* result,
                              CrawlScratch* scratch) {
  if (overlay == nullptr || overlay->empty()) {
    if (index != nullptr && index->file() != nullptr) {
      DispatchQuery(*index, query, cache, result, scratch);
    }
    return;
  }
  std::optional<CrawlScratch> throwaway;
  if (query.control != nullptr && scratch == nullptr) {
    scratch = &throwaway.emplace();
  }
  ScratchControlGuard guard(scratch, query.control, &result->io);
  try {
    DispatchQueryWithOverlayImpl(index, query, cache, overlay, overlay_bucket,
                                 result, scratch);
  } catch (const QueryAbort& abort) {
    result->status = abort.status();
    SettleFailedResult(query, result);
  } catch (const std::logic_error&) {
    throw;  // kKnn-over-overlay and friends stay loud
  } catch (const std::exception& e) {
    result->status = QueryStatus::kIoError;
    result->error = e.what();
    result->io.RecordIoError();
    SettleFailedResult(query, result);
  }
}

namespace {

void DispatchQueryWithOverlayImpl(const FlatIndex* index, const Query& query,
                                  PageCache* cache, const OverlayView* overlay,
                                  size_t overlay_bucket, QueryResult* result,
                                  CrawlScratch* scratch) {
  const bool has_index = index != nullptr && index->file() != nullptr;
  uint64_t probes = 0;
  switch (query.type) {
    case Query::Type::kRange:
      if (has_index) {
        index->RangeQuery(cache, query.box, &result->ids, scratch, query.guard);
        FilterOverlayMasked(*overlay, &result->ids);
      }
      probes = AppendOverlayRangeMatches(*overlay, overlay_bucket, query.box,
                                         &result->ids, scratch);
      result->count = result->ids.size();
      break;
    case Query::Type::kRangeCount:
      // Delete masking needs the ids, so run the materializing range path
      // (identical page reads by the FlatIndex contract), count the
      // survivors plus overlay matches, and drop the vector.
      if (has_index) {
        index->RangeQuery(cache, query.box, &result->ids, scratch, query.guard);
        FilterOverlayMasked(*overlay, &result->ids);
      }
      result->count = result->ids.size();
      probes = CountOverlayRangeMatches(*overlay, overlay_bucket, query.box,
                                        &result->count, scratch);
      result->ids.clear();
      break;
    case Query::Type::kSeedScan:
      if (has_index) {
        index->RangeQueryViaSeedScan(cache, query.box, &result->ids);
        FilterOverlayMasked(*overlay, &result->ids);
      }
      probes = AppendOverlayRangeMatches(*overlay, overlay_bucket, query.box,
                                         &result->ids, scratch);
      result->count = result->ids.size();
      break;
    case Query::Type::kSphere:
      if (has_index) {
        index->SphereQuery(cache, query.center, query.radius, &result->ids,
                           scratch);
        FilterOverlayMasked(*overlay, &result->ids);
      }
      probes = AppendOverlaySphereMatches(*overlay, overlay_bucket,
                                          query.center, query.radius,
                                          &result->ids, scratch);
      result->count = result->ids.size();
      break;
    case Query::Type::kKnn:
      throw std::logic_error(
          "DispatchQueryWithOverlay: kKnn is not supported over a delta "
          "overlay");
  }
  result->io.RecordOverlayProbes(probes);
}

}  // namespace

void QueryEngine::ExecuteQuery(const Job& job, const IndexedQuery& iq,
                               QueryResult* result, WorkerState* state) {
  const bool has_index = iq.index != nullptr && iq.index->file() != nullptr;
  if (!has_index) {
    // No PageStore to read from. Without an overlay the query legitimately
    // returns empty; with one it is a pure overlay bucket scan (the spill
    // tail of an overlayed store) — no cache needed.
    if (iq.overlay != nullptr) {
      DispatchQueryWithOverlay(nullptr, iq.query, nullptr, iq.overlay,
                               iq.overlay_bucket, result, &state->scratch);
    }
  } else if (job.shared_caches != nullptr) {
    auto it = job.shared_caches->find(iq.index->file());
    assert(it != job.shared_caches->end());
    const int prefetch_depth = iq.query.prefetch_depth >= 0
                                   ? iq.query.prefetch_depth
                                   : options_.prefetch_depth;
    StripedBufferPool::Session session(it->second.get(), &result->io,
                                       prefetch_depth);
    DispatchQueryWithOverlay(iq.index, iq.query, &session, iq.overlay,
                             iq.overlay_bucket, result, &state->scratch);
  } else {
    // Cold-per-query mode: recycle the worker's pool — Clear() is an O(1)
    // epoch bump, so this is exactly as cold as a fresh pool (identical
    // IoStats) without rebuilding the page table per query. Clear() runs
    // before set_stats(), so hints left pending are charged as wasted to the
    // query that issued them.
    const int prefetch_depth = iq.query.prefetch_depth >= 0
                                   ? iq.query.prefetch_depth
                                   : options_.prefetch_depth;
    BufferPool* pool = state->pool.get();
    if (pool == nullptr || &pool->store() != iq.index->file()) {
      state->pool = std::make_unique<BufferPool>(iq.index->file(), &result->io,
                                                 options_.pool_pages);
      pool = state->pool.get();
    } else {
      pool->Clear();
      pool->set_stats(&result->io);
    }
    pool->set_prefetch_depth(prefetch_depth);
    DispatchQueryWithOverlay(iq.index, iq.query, pool, iq.overlay,
                             iq.overlay_bucket, result, &state->scratch);
  }
  // A failing sub-query poisons its group (if any) so scattered siblings of
  // the same logical query observe the cancellation at their next
  // cancellation point instead of running to completion for a result that
  // will be discarded.
  if (result->status != QueryStatus::kOk && iq.query.control != nullptr &&
      iq.query.control->group != nullptr) {
    iq.query.control->group->SignalFailure(result->status);
  }
}

}  // namespace flat
