#include "engine/query_engine.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "storage/buffer_pool.h"

namespace flat {

QueryEngine::QueryEngine(const FlatIndex* index, Options options)
    : index_(index), options_(options) {
  size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  options_.threads = threads;

  queues_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

QueryEngine::~QueryEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::vector<QueryResult> QueryEngine::Run(const std::vector<Query>& batch,
                                          BatchStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<QueryResult> results(batch.size());

  // A default-constructed (never built) index has no PageFile to read from;
  // every query legitimately returns empty.
  if (!batch.empty() && index_->file() != nullptr) {
    // Block-partition the batch: contiguous runs keep neighboring queries —
    // which workloads tend to generate with spatial locality — on one
    // worker; stealing rebalances the tail.
    const size_t threads = workers_.size();
    const size_t per_worker = (batch.size() + threads - 1) / threads;
    for (size_t w = 0; w < threads; ++w) {
      std::lock_guard<std::mutex> lock(queues_[w]->mu);
      queues_[w]->items.clear();
      const size_t first = std::min(batch.size(), w * per_worker);
      const size_t last = std::min(batch.size(), first + per_worker);
      for (size_t i = first; i < last; ++i) queues_[w]->items.push_back(i);
    }

    std::optional<StripedBufferPool> shared_cache;
    if (options_.cache_mode == CacheMode::kSharedStriped) {
      shared_cache.emplace(index_->file(), options_.shared_cache_pages);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_.batch = &batch;
      job_.results = &results;
      job_.shared_cache = shared_cache.has_value() ? &*shared_cache : nullptr;
      active_workers_ = threads;
      ++generation_;
    }
    work_cv_.notify_all();

    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return active_workers_ == 0; });
    job_ = Job{};
  }

  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->threads = workers_.size();
    for (const QueryResult& r : results) {
      stats->io += r.io;
      stats->result_elements += r.ids.size();
    }
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
  return results;
}

void QueryEngine::WorkerLoop(size_t worker_index) {
  uint64_t seen_generation = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_generation] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    ProcessQueue(worker_index, job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void QueryEngine::ProcessQueue(size_t worker_index, const Job& job) {
  size_t query_index;
  while (PopOwn(worker_index, &query_index) ||
         Steal(worker_index, &query_index)) {
    ExecuteQuery(job, (*job.batch)[query_index],
                 &(*job.results)[query_index]);
  }
}

bool QueryEngine::PopOwn(size_t worker_index, size_t* query_index) {
  WorkerQueue& queue = *queues_[worker_index];
  std::lock_guard<std::mutex> lock(queue.mu);
  if (queue.items.empty()) return false;
  *query_index = queue.items.front();
  queue.items.pop_front();
  return true;
}

bool QueryEngine::Steal(size_t worker_index, size_t* query_index) {
  const size_t n = queues_.size();
  for (size_t offset = 1; offset < n; ++offset) {
    WorkerQueue& victim = *queues_[(worker_index + offset) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.items.empty()) continue;
    *query_index = victim.items.back();
    victim.items.pop_back();
    return true;
  }
  return false;
}

void DispatchQuery(const FlatIndex& index, const Query& query,
                   PageCache* cache, QueryResult* result) {
  switch (query.type) {
    case Query::Type::kRange:
      index.RangeQuery(cache, query.box, &result->ids, query.guard);
      break;
    case Query::Type::kKnn:
      result->ids = index.KnnQuery(cache, query.center, query.k);
      break;
    case Query::Type::kSphere:
      index.SphereQuery(cache, query.center, query.radius, &result->ids);
      break;
  }
}

void QueryEngine::ExecuteQuery(const Job& job, const Query& query,
                               QueryResult* result) {
  if (job.shared_cache != nullptr) {
    StripedBufferPool::Session session(job.shared_cache, &result->io);
    DispatchQuery(*index_, query, &session, result);
    return;
  }
  BufferPool pool(index_->file(), &result->io, options_.pool_pages);
  DispatchQuery(*index_, query, &pool, result);
}

}  // namespace flat
