#include "benchutil/sweep.h"

#include <sstream>

#include "data/neuron_generator.h"

namespace flat {

std::vector<size_t> DensitySweepCounts(const BenchFlags& flags,
                                       size_t base_step, int steps) {
  std::vector<size_t> counts;
  counts.reserve(steps);
  for (int i = 1; i <= steps; ++i) {
    counts.push_back(flags.Scaled(base_step * i));
  }
  return counts;
}

Dataset NeuronDatasetAt(size_t element_count, uint64_t seed) {
  NeuronParams params;
  params.total_elements = element_count;
  params.seed = seed;
  return GenerateNeurons(params);
}

std::string DensityLabel(size_t element_count) {
  std::ostringstream oss;
  if (element_count % 1000 == 0) {
    oss << element_count / 1000 << "k";
  } else {
    oss << element_count;
  }
  return oss.str();
}

}  // namespace flat
