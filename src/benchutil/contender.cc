#include "benchutil/contender.h"

#include <chrono>

namespace flat {

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kHilbert:
      return "Hilbert R-Tree";
    case IndexKind::kStr:
      return "STR R-Tree";
    case IndexKind::kMorton:
      return "Morton R-Tree";
    case IndexKind::kPrTree:
      return "PR-Tree";
    case IndexKind::kTgs:
      return "TGS R-Tree";
    case IndexKind::kRStar:
      return "R*-Tree";
    case IndexKind::kFlat:
      return "FLAT";
    case IndexKind::kFlatCompressed:
      return "FLAT (compressed)";
  }
  return "unknown";
}

Contender BuildContender(IndexKind kind,
                         const std::vector<RTreeEntry>& elements,
                         uint32_t page_size) {
  Contender contender;
  contender.kind = kind;
  contender.file = std::make_unique<PageFile>(page_size);

  const auto start = std::chrono::steady_clock::now();
  switch (kind) {
    case IndexKind::kHilbert:
      contender.rtree = BulkloadHilbert(contender.file.get(), elements);
      break;
    case IndexKind::kStr:
      contender.rtree = BulkloadStr(contender.file.get(), elements);
      break;
    case IndexKind::kMorton:
      contender.rtree = BulkloadMorton(contender.file.get(), elements);
      break;
    case IndexKind::kPrTree:
      contender.rtree = BulkloadPrTree(contender.file.get(), elements);
      break;
    case IndexKind::kTgs:
      contender.rtree = BulkloadTgs(contender.file.get(), elements);
      break;
    case IndexKind::kRStar: {
      RStarTree tree(contender.file.get());
      for (const RTreeEntry& e : elements) tree.Insert(e);
      contender.rtree = tree.tree();
      break;
    }
    case IndexKind::kFlat:
      contender.flat = FlatIndex::Build(contender.file.get(), elements);
      break;
    case IndexKind::kFlatCompressed: {
      FlatIndex::BuildOptions options;
      options.compressed_seed_pages = true;
      contender.flat =
          FlatIndex::Build(contender.file.get(), elements, options);
      break;
    }
  }
  contender.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return contender;
}

WorkloadResult RunWorkload(const Contender& contender,
                           const std::vector<Aabb>& queries,
                           const DiskModel& disk_model, size_t pool_pages) {
  WorkloadResult result;
  BufferPool pool(contender.file.get(), &result.io, pool_pages);
  std::vector<uint64_t> ids;
  for (const Aabb& query : queries) {
    pool.Clear();  // cold cache before each query, as in the paper
    ids.clear();
    contender.RangeQuery(&pool, query, &ids);
    result.result_elements += ids.size();
  }
  result.simulated_ms =
      disk_model.ElapsedMs(result.io, contender.file->page_size());
  return result;
}

}  // namespace flat
