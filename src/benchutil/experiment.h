#ifndef FLAT_BENCHUTIL_EXPERIMENT_H_
#define FLAT_BENCHUTIL_EXPERIMENT_H_

#include <map>
#include <vector>

#include "benchutil/contender.h"
#include "benchutil/flags.h"
#include "core/flat_index.h"
#include "rtree/rtree.h"

namespace flat {

/// Query-volume fractions for the two micro-benchmarks.
///
/// The paper uses 5e-7 % (SN) and 5e-4 % (LSS) of the data-set space. Our
/// data sets shrink element count *and* tissue volume by 1000x (see
/// NeuronParams); to keep per-query result sets in the paper's proportion
/// the query volumes scale by the same 1000x relative to the (already
/// 1000x smaller) universe. SN queries remain tiny "immediate neighborhood"
/// probes; LSS queries remain large subvolumes, ~1000x the SN volume.
inline constexpr double kSnVolumeFraction = 5e-6;
inline constexpr double kLssVolumeFraction = 5e-3;

/// Everything measured for one index variant at one density point.
struct KindResult {
  double build_seconds = 0.0;
  WorkloadResult workload;
  RTree::TreeStats tree_stats;          // R-Tree kinds only
  FlatIndex::BuildStats flat_stats;     // kFlat only
  uint64_t size_bytes = 0;
  uint64_t pages_in[kNumPageCategories] = {};
};

/// One density point of a sweep.
struct DensityPoint {
  size_t elements = 0;
  std::map<IndexKind, KindResult> by_kind;
};

/// Options for RunDensitySweep.
struct SweepOptions {
  /// Query volume as a fraction of the universe (use kSnVolumeFraction or
  /// kLssVolumeFraction); <= 0 skips query execution (build-only sweeps).
  double volume_fraction = kSnVolumeFraction;
  /// Point queries instead of range queries (Figure 2).
  bool point_queries = false;
  std::vector<IndexKind> kinds{kPaperLineup,
                               kPaperLineup + 4};
};

/// Runs the paper's standard density sweep (Section VII-A): microcircuit
/// data sets of 1x..9x the base step in a constant volume, each indexed by
/// every requested variant, then the query workload with a cold cache per
/// query. This one routine backs Figures 2-3 and 10-19.
std::vector<DensityPoint> RunDensitySweep(const BenchFlags& flags,
                                          const SweepOptions& options);

}  // namespace flat

#endif  // FLAT_BENCHUTIL_EXPERIMENT_H_
