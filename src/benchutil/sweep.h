#ifndef FLAT_BENCHUTIL_SWEEP_H_
#define FLAT_BENCHUTIL_SWEEP_H_

#include <cstdint>
#include <vector>

#include "benchutil/flags.h"
#include "data/dataset.h"

namespace flat {

/// Element counts for the standard density sweep. The paper sweeps 50 M to
/// 450 M elements in 285 µm³ in steps of 50 M; our default base step is
/// 50'000 (a 1/1000 scale-down), multiplied by `flags.scale()`.
std::vector<size_t> DensitySweepCounts(const BenchFlags& flags,
                                       size_t base_step = 50000,
                                       int steps = 9);

/// The standard microcircuit data set at a given density point. Constant
/// volume; only the element count changes — "we progressively increase the
/// density of the data set ... by adding more neurons to the same volume".
Dataset NeuronDatasetAt(size_t element_count, uint64_t seed);

/// Labels a density point as the paper does: millions of elements per
/// 285 µm³ (we report the scaled-down thousands instead).
std::string DensityLabel(size_t element_count);

}  // namespace flat

#endif  // FLAT_BENCHUTIL_SWEEP_H_
