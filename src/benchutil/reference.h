#ifndef FLAT_BENCHUTIL_REFERENCE_H_
#define FLAT_BENCHUTIL_REFERENCE_H_

#include <array>
#include <cstddef>

namespace flat {
namespace paper {

/// Reference results transcribed from the paper, used by the bench binaries
/// to print the published values next to the measured ones. Where the paper
/// gives a table the numbers are exact; where it only shows a plot we record
/// the qualitative claim (ratios, orderings, crossovers) stated in the text
/// rather than fabricating digitized series.

/// X axis of every density sweep: millions of elements in 285 µm³ of tissue.
inline constexpr std::array<int, 9> kDensityMillions = {50,  100, 150, 200, 250,
                                                        300, 350, 400, 450};

/// Figure 3 (table): page reads per result element, SN queries, PR-Tree.
inline constexpr std::array<double, 9> kFig3PrReadsPerResult = {
    1.73, 1.85, 1.94, 1.87, 2.10, 2.13, 2.24, 2.28, 2.33};

/// Figure 2: a point query on the densest data set reads >450 pages with the
/// PR-Tree even though the tree height is only 5.
inline constexpr double kFig2PrTreeHeight = 5;
inline constexpr double kFig2PrPagesAtMaxDensity = 450;

/// Figure 4: the PR-Tree retrieves 3x (sparsest) to 4x (densest) the result
/// size in bytes for LSS queries.
inline constexpr double kFig4RetrievedOverResultMin = 3.0;
inline constexpr double kFig4RetrievedOverResultMax = 4.0;

/// Figure 10: build-time ordering Hilbert < STR <= FLAT << PR-Tree; FLAT's
/// trend is linear in the data-set size.
inline constexpr const char* kFig10Ordering =
    "Hilbert < STR <= FLAT << PR-Tree (FLAT linear in data size)";

/// Figure 12/15 (SN): the best R-Tree (PR) reads 2x (sparsest) to 8x
/// (densest) more pages than FLAT; FLAT's reads per result *decrease* with
/// density while every R-Tree's increase.
inline constexpr double kSnPrOverFlatMin = 2.0;
inline constexpr double kSnPrOverFlatMax = 8.0;

/// Figure 14 (SN breakdown, PR-Tree): non-leaf/leaf read ratio grows from 2
/// (50 M) to 2.8 (450 M); FLAT's seed-tree reads stay constant.
inline constexpr double kFig14PrNonLeafOverLeafMin = 2.0;
inline constexpr double kFig14PrNonLeafOverLeafMax = 2.8;

/// Figure 16-19 (LSS): FLAT wins by 2x-6x; overlap matters less for large
/// queries, so the gap is smaller than for SN; PR overhead grows to ~3x
/// FLAT's at the densest point; FLAT reads/result decrease with density.
inline constexpr double kLssFlatSpeedupMin = 2.0;
inline constexpr double kLssFlatSpeedupMax = 6.0;

/// Figure 20: the per-partition neighbor-pointer distribution keeps a stable
/// median (~30) as density grows; the mode sharpens.
inline constexpr double kFig20MedianPointers = 30.0;

/// In-text (Section VII-E.1): growing element volume 5x adds ~10 % pointers;
/// sweeping the aspect ratio grows the mean pointer count 17.4 -> 22.9.
inline constexpr double kVolumeSweepPointerIncrease = 0.10;
inline constexpr double kAspectSweepPointersMin = 17.4;
inline constexpr double kAspectSweepPointersMax = 22.9;

/// Figure 22 (table): index size (MB) and build time (s) per data set.
struct OtherDatasetBuildRow {
  const char* dataset;
  double flat_size_mb;
  double pr_size_mb;
  double flat_build_s;
  double pr_build_s;
};
inline constexpr std::array<OtherDatasetBuildRow, 5> kFig22 = {{
    {"Nuage (dark matter)", 1050, 998, 135, 916},
    {"Nuage (stars)", 1050, 998, 138, 1021},
    {"Nuage (gas)", 780, 739, 102, 721},
    {"Brain Mesh", 10939, 10304, 1736, 9901},
    {"Lucy Statue", 15558, 15032, 2954, 21868},
}};

/// Figure 23 (table): query execution time (s) and FLAT speed-up (%) for the
/// small- and large-volume query sets.
struct OtherDatasetQueryRow {
  const char* dataset;
  double small_flat_s;
  double small_pr_s;
  double small_speedup_pct;
  double large_flat_s;
  double large_pr_s;
  double large_speedup_pct;
};
inline constexpr std::array<OtherDatasetQueryRow, 5> kFig23 = {{
    {"Nuage (dark matter)", 5.0, 6.4, 21, 12.7, 14.7, 14},
    {"Nuage (stars)", 4.0, 5.3, 24, 14.1, 12.4, 6},
    {"Nuage (gas)", 4.6, 6.2, 25, 8.4, 15.3, 44},
    {"Brain Mesh", 5.3, 12.8, 58, 28.0, 28.0, 35},
    {"Lucy Statue", 15.2, 24.5, 38, 16.9, 22.2, 24},
}};

/// SN / LSS query volume fractions (the paper quotes percentages).
inline constexpr double kSnVolumeFraction = 5e-9;   // 5 x 10^-7 %
inline constexpr double kLssVolumeFraction = 5e-6;  // 5 x 10^-4 %

}  // namespace paper
}  // namespace flat

#endif  // FLAT_BENCHUTIL_REFERENCE_H_
