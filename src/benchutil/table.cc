#include "benchutil/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace flat {

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < std::min(row.size(), widths.size()); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << (c == 0 ? std::left : std::right) << cell;
      os << std::right;
    }
    os << "\n";
  };

  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < headers_.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) os << ",";
      if (c < cells.size()) os << cells[c];
    }
    os << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string FormatNumber(double value, int precision) {
  std::ostringstream oss;
  if (value != 0.0 && (std::abs(value) >= 1e6 || std::abs(value) < 1e-3)) {
    oss << std::scientific << std::setprecision(precision) << value;
  } else {
    oss << std::fixed << std::setprecision(precision) << value;
    std::string s = oss.str();
    // Trim trailing zeros (keep at least one digit after the point).
    if (s.find('.') != std::string::npos) {
      size_t last = s.find_last_not_of('0');
      if (s[last] == '.') ++last;
      s.erase(last + 1);
    }
    return s;
  }
  return oss.str();
}

std::string FormatBytes(uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  return FormatNumber(value, 2) + " " + units[unit];
}

}  // namespace flat
