#ifndef FLAT_BENCHUTIL_FLAGS_H_
#define FLAT_BENCHUTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace flat {

/// Minimal `--key=value` flag parser shared by the bench binaries.
///
/// Recognized keys (each bench documents which it honors):
///   --scale=F     multiplies every data-set size (default 1.0; the benches'
///                 built-in sizes are already ~1/1000 of the paper's).
///                 Env fallback: FLAT_BENCH_SCALE.
///   --queries=N   queries per workload (default: the paper's 200).
///   --seed=N      RNG seed.
///   --csv         print CSV instead of aligned tables.
class BenchFlags {
 public:
  BenchFlags(int argc, char** argv);

  double scale() const { return scale_; }
  size_t queries() const { return queries_; }
  uint64_t seed() const { return seed_; }
  bool csv() const { return csv_; }

  /// Generic accessors for bench-specific flags.
  double GetDouble(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;

  /// Applies `scale()` to a count, keeping at least `min_value`.
  size_t Scaled(size_t base, size_t min_value = 1) const;

 private:
  std::map<std::string, std::string> values_;
  double scale_ = 1.0;
  size_t queries_ = 200;
  uint64_t seed_ = 1234;
  bool csv_ = false;
};

}  // namespace flat

#endif  // FLAT_BENCHUTIL_FLAGS_H_
