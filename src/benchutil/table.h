#ifndef FLAT_BENCHUTIL_TABLE_H_
#define FLAT_BENCHUTIL_TABLE_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace flat {

/// Fixed-width text table used by every bench binary to print the series of
/// a paper figure/table: one column per curve, one row per x-axis point.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends a row; missing cells print empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders with column alignment and a header separator.
  void Print(std::ostream& os) const;

  /// Renders as CSV (for piping into plotting scripts).
  void PrintCsv(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` significant decimals, trimming noise.
std::string FormatNumber(double value, int precision = 3);

/// Formats a byte count as a human-readable string (KiB/MiB/GiB).
std::string FormatBytes(uint64_t bytes);

}  // namespace flat

#endif  // FLAT_BENCHUTIL_TABLE_H_
