#include "benchutil/experiment.h"

#include "benchutil/sweep.h"
#include "data/query_generator.h"
#include "storage/disk_model.h"

namespace flat {

std::vector<DensityPoint> RunDensitySweep(const BenchFlags& flags,
                                          const SweepOptions& options) {
  std::vector<DensityPoint> points;
  DiskModel disk;

  for (size_t count : DensitySweepCounts(flags)) {
    Dataset dataset = NeuronDatasetAt(count, flags.seed());

    std::vector<Aabb> queries;
    if (options.volume_fraction > 0.0) {
      if (options.point_queries) {
        for (const Vec3& p : GeneratePointWorkload(
                 dataset.bounds, flags.queries(), flags.seed() + 1)) {
          queries.push_back(Aabb::FromPoint(p));
        }
      } else {
        RangeWorkloadParams wp;
        wp.count = flags.queries();
        wp.volume_fraction = options.volume_fraction;
        wp.seed = flags.seed() + 1;
        queries = GenerateRangeWorkload(dataset.bounds, wp);
      }
    }

    DensityPoint point;
    point.elements = count;
    for (IndexKind kind : options.kinds) {
      Contender contender = BuildContender(kind, dataset.elements);
      KindResult result;
      result.build_seconds = contender.build_seconds;
      result.size_bytes = contender.size_bytes();
      for (int c = 0; c < kNumPageCategories; ++c) {
        result.pages_in[c] =
            contender.file->PageCountIn(static_cast<PageCategory>(c));
      }
      if (kind == IndexKind::kFlat || kind == IndexKind::kFlatCompressed) {
        result.flat_stats = contender.flat.build_stats();
      } else {
        result.tree_stats = contender.rtree.ComputeStats();
      }
      if (!queries.empty()) {
        result.workload = RunWorkload(contender, queries, disk);
      }
      point.by_kind[kind] = result;
    }
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace flat
