#include "benchutil/flags.h"

#include <algorithm>
#include <cstdlib>

namespace flat {

BenchFlags::BenchFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "1";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }

  if (const char* env = std::getenv("FLAT_BENCH_SCALE")) {
    scale_ = std::atof(env);
  }
  scale_ = GetDouble("scale", scale_);
  if (scale_ <= 0.0) scale_ = 1.0;
  queries_ = static_cast<size_t>(GetInt("queries", 200));
  seed_ = static_cast<uint64_t>(GetInt("seed", 1234));
  csv_ = values_.contains("csv");
}

double BenchFlags::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

int64_t BenchFlags::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atoll(it->second.c_str());
}

size_t BenchFlags::Scaled(size_t base, size_t min_value) const {
  return std::max<size_t>(min_value,
                          static_cast<size_t>(base * scale_));
}

}  // namespace flat
