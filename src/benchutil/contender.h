#ifndef FLAT_BENCHUTIL_CONTENDER_H_
#define FLAT_BENCHUTIL_CONTENDER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/flat_index.h"
#include "geometry/aabb.h"
#include "rtree/bulkload.h"
#include "rtree/rstar_tree.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/io_stats.h"
#include "storage/page_file.h"

namespace flat {

/// The index variants the benches compare.
enum class IndexKind {
  kHilbert,
  kStr,
  kMorton,
  kPrTree,
  kTgs,
  kRStar,
  kFlat,
  /// FLAT built with BuildOptions::compressed_seed_pages: quantized
  /// interior seed pages (rtree/node.h), same query results.
  kFlatCompressed,
};

const char* IndexKindName(IndexKind kind);

/// The paper's standard lineup: the three bulkloaded R-Trees plus FLAT.
inline const IndexKind kPaperLineup[] = {IndexKind::kFlat, IndexKind::kPrTree,
                                         IndexKind::kStr, IndexKind::kHilbert};

/// One built index over its own simulated disk; uniform query interface.
struct Contender {
  IndexKind kind;
  std::unique_ptr<PageFile> file;
  RTree rtree;          // valid for all R-Tree kinds
  FlatIndex flat;       // valid for kFlat / kFlatCompressed
  double build_seconds = 0.0;

  /// Runs a range query through `pool`, appending result ids.
  void RangeQuery(BufferPool* pool, const Aabb& query,
                  std::vector<uint64_t>* out) const {
    if (kind == IndexKind::kFlat || kind == IndexKind::kFlatCompressed) {
      flat.RangeQuery(pool, query, out);
    } else {
      rtree.RangeQuery(pool, query, out);
    }
  }

  uint64_t total_pages() const { return file->page_count(); }
  uint64_t size_bytes() const { return file->SizeBytes(); }
};

/// Builds one contender over (a copy of) `elements`. Build time is recorded
/// as wall-clock, matching the paper's Figure 10 methodology.
Contender BuildContender(IndexKind kind,
                         const std::vector<RTreeEntry>& elements,
                         uint32_t page_size = kDefaultPageSize);

/// Aggregate outcome of a query workload.
struct WorkloadResult {
  IoStats io;
  uint64_t result_elements = 0;
  /// Simulated elapsed time per the DiskModel.
  double simulated_ms = 0.0;
};

/// Executes all `queries` against `contender`. Per the paper's methodology
/// the cache is cleared before *each* query ("Before each query is executed,
/// the OS caches and disk buffers are cleared"). `pool_pages` bounds the
/// buffer pool (0 = unbounded within one query).
WorkloadResult RunWorkload(const Contender& contender,
                           const std::vector<Aabb>& queries,
                           const DiskModel& disk_model,
                           size_t pool_pages = 0);

}  // namespace flat

#endif  // FLAT_BENCHUTIL_CONTENDER_H_
