#include "benchutil/throughput.h"

#include <chrono>

#include "storage/buffer_pool.h"

namespace flat {
namespace {

using Clock = std::chrono::steady_clock;

bool SameCounts(const IoStats& a, const IoStats& b) {
  for (int c = 0; c < kNumPageCategories; ++c) {
    const PageCategory category = static_cast<PageCategory>(c);
    if (a.ReadsIn(category) != b.ReadsIn(category)) return false;
  }
  return true;
}

}  // namespace

SerialReference RunSerialReference(const FlatIndex& index,
                                   const std::vector<Query>& batch,
                                   size_t pool_pages) {
  SerialReference ref;
  ref.results.resize(batch.size());
  CrawlScratch scratch;  // reused across the loop, same as an engine worker
  IoStats unused;
  BufferPool pool(index.file(), &unused, pool_pages);
  const auto start = Clock::now();
  for (size_t i = 0; i < batch.size(); ++i) {
    QueryResult& r = ref.results[i];
    // Clear() + set_stats() = a fresh cold pool per query (the paper's
    // methodology) at O(1) cost, same as an engine worker.
    pool.Clear();
    pool.set_stats(&r.io);
    DispatchQuery(index, batch[i], &pool, &r, &scratch);
    ref.io += r.io;
  }
  ref.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return ref;
}

std::vector<ThroughputPoint> RunThroughputSweep(
    const FlatIndex& index, const std::vector<Query>& batch,
    const std::vector<size_t>& thread_counts, int repeats,
    QueryEngine::CacheMode cache_mode, size_t pool_pages) {
  const SerialReference ref = RunSerialReference(index, batch, pool_pages);

  std::vector<ThroughputPoint> points;
  points.reserve(thread_counts.size());
  for (size_t threads : thread_counts) {
    QueryEngine::Options options;
    options.threads = threads;
    options.pool_pages = pool_pages;
    // `pool_pages` is the cache bound in either mode: per-query pools when
    // cold, the shared striped cache when shared.
    options.shared_cache_pages = pool_pages;
    options.cache_mode = cache_mode;
    QueryEngine engine(&index, options);

    ThroughputPoint point;
    point.threads = threads;
    point.identical_to_serial = true;
    double best = -1.0;
    for (int rep = 0; rep < repeats; ++rep) {
      BatchStats stats;
      std::vector<QueryResult> results = engine.Run(batch, &stats);
      if (best < 0.0 || stats.wall_seconds < best) {
        best = stats.wall_seconds;
        point.total_reads = stats.io.TotalReads();
      }
      for (size_t i = 0; i < results.size(); ++i) {
        if (results[i].ids != ref.results[i].ids) {
          point.identical_to_serial = false;
        }
      }
      // Merged I/O totals must match serial exactly in cold-per-query mode;
      // the shared cache legitimately reads less.
      if (cache_mode == QueryEngine::CacheMode::kColdPerQuery &&
          !SameCounts(stats.io, ref.io)) {
        point.identical_to_serial = false;
      }
    }
    point.best_seconds = best;
    point.queries_per_second =
        best > 0.0 ? static_cast<double>(batch.size()) / best : 0.0;
    point.speedup = best > 0.0 ? ref.seconds / best : 0.0;
    points.push_back(point);
  }
  return points;
}

}  // namespace flat
