#ifndef FLAT_BENCHUTIL_THROUGHPUT_H_
#define FLAT_BENCHUTIL_THROUGHPUT_H_

#include <cstdint>
#include <vector>

#include "engine/query_engine.h"

namespace flat {

/// One thread-count point of a throughput sweep.
struct ThroughputPoint {
  size_t threads = 0;
  /// Best wall time over the repeats (minimum — standard practice for
  /// throughput measurements on a shared machine).
  double best_seconds = 0.0;
  double queries_per_second = 0.0;
  /// Speedup over the plain serial loop (thread count 1 outside the engine).
  double speedup = 0.0;
  uint64_t total_reads = 0;
  /// True when every per-query result vector is bit-identical to the serial
  /// loop's and the merged IoStats totals match per category.
  bool identical_to_serial = false;
};

/// Serial reference for a throughput sweep: the batch executed by a plain
/// loop over FlatIndex with a fresh BufferPool per query (the paper's
/// cold-cache methodology).
struct SerialReference {
  std::vector<QueryResult> results;
  IoStats io;
  double seconds = 0.0;
};

/// Runs `batch` serially (no engine) and returns results, merged I/O, and
/// wall time.
SerialReference RunSerialReference(const FlatIndex& index,
                                   const std::vector<Query>& batch,
                                   size_t pool_pages = 0);

/// Queries/sec vs. thread count: executes `batch` through a QueryEngine at
/// each thread count (`repeats` times, keeping the best wall time) and
/// validates every run against the serial reference. `pool_pages` bounds
/// the cache in either mode — each per-query pool when cold, the shared
/// striped cache when shared (0 = unbounded).
std::vector<ThroughputPoint> RunThroughputSweep(
    const FlatIndex& index, const std::vector<Query>& batch,
    const std::vector<size_t>& thread_counts, int repeats = 3,
    QueryEngine::CacheMode cache_mode = QueryEngine::CacheMode::kColdPerQuery,
    size_t pool_pages = 0);

}  // namespace flat

#endif  // FLAT_BENCHUTIL_THROUGHPUT_H_
