#ifndef FLAT_DELTA_OVERLAY_VIEW_H_
#define FLAT_DELTA_OVERLAY_VIEW_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "delta/delta_log.h"
#include "geometry/aabb.h"
#include "rtree/entry.h"

namespace flat {

/// Immutable, snapshot-scoped materialization of a DeltaLog window — the
/// read side of the delta overlay, and the "brute-force-crawlable side
/// structure" queries merge with the bulkloaded shards.
///
/// Build folds ops `[first, limit)` down to their last-op-wins outcome:
///  - `touched()` holds every id whose base visibility the window overrides
///    (deleted, or re-inserted with a possibly different box). Query merges
///    mask these ids out of base results (core/overlay_merge.h).
///  - The live inserts are routed into per-shard buckets: an entry whose box
///    is contained in shard s's element bounds lands in bucket s, everything
///    else (including all entries of a store with no shards) in the spill
///    bucket. A query therefore only scans the buckets of the shards it is
///    routed to, plus the spill bucket — if a query box intersects an entry
///    contained in bounds[s], it necessarily intersects bounds[s], so
///    skipping unrouted buckets can never lose a match.
///
/// Each bucket is a contiguous RTreeEntry array (the same 56-byte stride as
/// an object page), so the query-time scan gates whole buckets with the
/// batched SIMD kernel (Aabb::IntersectsBatch) instead of per-entry calls.
///
/// An OverlayView is immutable after Build and safe to share across any
/// number of query threads; snapshots hold it by shared_ptr.
class OverlayView {
 public:
  /// Folds ops `[first, min(limit, log.size()))` of `log`, routing live
  /// entries by `shard_bounds` (one Aabb per shard of the base the snapshot
  /// pins; may be empty). Returns nullptr when the window is empty — the
  /// "no overlay" fast path that keeps bulkload-only queries unchanged.
  static std::shared_ptr<const OverlayView> Build(
      const DeltaLog& log, uint64_t first, uint64_t limit,
      const std::vector<Aabb>& shard_bounds);

  /// True when the window held no ops: nothing masked, nothing live.
  bool empty() const { return touched_.empty(); }

  /// Whether `id`'s base visibility is overridden at this snapshot (the id
  /// was deleted or re-inserted within the window).
  bool IsTouched(uint64_t id) const {
    return touched_.find(id) != touched_.end();
  }

  /// shard_bounds.size() + 1 buckets; the last is the spill bucket.
  size_t bucket_count() const { return buckets_.size(); }
  size_t spill_bucket() const { return buckets_.size() - 1; }

  /// Live overlay entries routed to `bucket`, contiguous for batched gates.
  const std::vector<RTreeEntry>& bucket(size_t bucket_index) const {
    return buckets_[bucket_index];
  }

  /// Total live (visible) overlay entries across all buckets.
  uint64_t live_count() const { return live_count_; }
  /// Ids masked or overridden (size of touched()).
  uint64_t touched_count() const { return touched_.size(); }

  /// The window this view materializes.
  uint64_t first() const { return first_; }
  uint64_t limit() const { return limit_; }

 private:
  OverlayView() = default;

  std::vector<std::vector<RTreeEntry>> buckets_;
  std::unordered_set<uint64_t> touched_;
  uint64_t live_count_ = 0;
  uint64_t first_ = 0;
  uint64_t limit_ = 0;
};

}  // namespace flat

#endif  // FLAT_DELTA_OVERLAY_VIEW_H_
