#include "delta/overlay_view.h"

#include <unordered_map>
#include <utility>

namespace flat {

std::shared_ptr<const OverlayView> OverlayView::Build(
    const DeltaLog& log, uint64_t first, uint64_t limit,
    const std::vector<Aabb>& shard_bounds) {
  const uint64_t published = log.size();
  if (limit > published) limit = published;
  if (first >= limit) return nullptr;

  // Last op wins per id: fold the window into one outcome per touched id.
  std::unordered_map<uint64_t, DeltaOp> last;
  log.Scan(first, limit, [&last](const DeltaOp& op, uint64_t) {
    last[op.entry.id] = op;
  });

  auto view = std::shared_ptr<OverlayView>(new OverlayView);
  view->first_ = first;
  view->limit_ = limit;
  view->buckets_.resize(shard_bounds.size() + 1);
  view->touched_.reserve(last.size());
  for (const auto& [id, op] : last) {
    view->touched_.insert(id);
    if (op.kind != DeltaOp::Kind::kInsert) continue;
    // Route by containment: the entry joins the first shard whose element
    // bounds contain its box, else the spill bucket. Containment (not mere
    // overlap) is what lets queries skip buckets of unrouted shards.
    size_t bucket = view->spill_bucket();
    for (size_t s = 0; s < shard_bounds.size(); ++s) {
      if (shard_bounds[s].Contains(op.entry.box)) {
        bucket = s;
        break;
      }
    }
    view->buckets_[bucket].push_back(op.entry);
    ++view->live_count_;
  }
  return view;
}

}  // namespace flat
