#include "delta/delta_log.h"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace flat {
namespace {

constexpr char kWalMagic[8] = {'F', 'L', 'A', 'T', 'W', 'A', 'L', '1'};

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T ReadPod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("LoadDeltaOps: truncated stream");
  return value;
}

}  // namespace

DeltaLog::DeltaLog() : head_(new Chunk), tail_(head_) {}

DeltaLog::~DeltaLog() {
  // Iterative teardown: a long chain must not recurse.
  Chunk* chunk = head_;
  while (chunk != nullptr) {
    Chunk* next = chunk->next.load(std::memory_order_relaxed);
    delete chunk;
    chunk = next;
  }
}

uint64_t DeltaLog::Append(const DeltaOp& op) {
  std::lock_guard<std::mutex> lock(append_mu_);
  const uint64_t seq = size_.load(std::memory_order_relaxed);
  const size_t slot = static_cast<size_t>(seq % kChunkOps);
  if (slot == 0 && seq != 0) {
    Chunk* chunk = new Chunk;
    tail_->next.store(chunk, std::memory_order_release);
    tail_ = chunk;
  }
  tail_->ops[slot] = op;
  // Publish: everything above (op bytes, chunk link) happens-before any
  // reader that acquires a size >= seq + 1.
  size_.store(seq + 1, std::memory_order_release);
  return seq + 1;
}

void SaveDeltaOps(const DeltaLog& log, uint64_t first, uint64_t limit,
                  std::ostream& out) {
  const uint64_t published = log.size();
  if (limit > published) limit = published;
  if (first > limit) first = limit;
  out.write(kWalMagic, sizeof(kWalMagic));
  WritePod(out, static_cast<uint64_t>(limit - first));
  log.Scan(first, limit, [&out](const DeltaOp& op, uint64_t) {
    WritePod(out, static_cast<uint8_t>(op.kind));
    WritePod(out, op.entry.id);
    for (int axis = 0; axis < 3; ++axis) WritePod(out, op.entry.box.lo()[axis]);
    for (int axis = 0; axis < 3; ++axis) WritePod(out, op.entry.box.hi()[axis]);
  });
  if (!out) throw std::runtime_error("SaveDeltaOps: write failed");
}

std::vector<DeltaOp> LoadDeltaOps(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kWalMagic, sizeof(kWalMagic)) != 0) {
    throw std::runtime_error(
        "LoadDeltaOps: bad magic (not a FLAT overlay WAL or unsupported "
        "version)");
  }
  const uint64_t count = ReadPod<uint64_t>(in);
  // Parse one op at a time — a hostile count must fail on its first missing
  // op, not force a count-sized allocation up front.
  std::vector<DeltaOp> ops;
  for (uint64_t i = 0; i < count; ++i) {
    DeltaOp op;
    const uint8_t kind = ReadPod<uint8_t>(in);
    if (kind > static_cast<uint8_t>(DeltaOp::Kind::kDelete)) {
      throw std::runtime_error("LoadDeltaOps: invalid op kind");
    }
    op.kind = static_cast<DeltaOp::Kind>(kind);
    op.entry.id = ReadPod<uint64_t>(in);
    Vec3 lo, hi;
    for (int axis = 0; axis < 3; ++axis) lo.At(axis) = ReadPod<double>(in);
    for (int axis = 0; axis < 3; ++axis) hi.At(axis) = ReadPod<double>(in);
    op.entry.box = Aabb(lo, hi);
    ops.push_back(op);
  }
  return ops;
}

}  // namespace flat
