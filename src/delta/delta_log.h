#ifndef FLAT_DELTA_DELTA_LOG_H_
#define FLAT_DELTA_DELTA_LOG_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "rtree/entry.h"

namespace flat {

/// One mutation in the delta overlay log.
///
/// `kInsert` makes `entry` visible; if an element with the same id already
/// exists (in the bulkloaded base or in an earlier overlay op) the new box
/// replaces it — an upsert. `kDelete` hides the element with `entry.id`
/// (box ignored); deleting an id that does not exist is a no-op. Within a
/// snapshot, the op with the highest sequence number for an id wins.
struct DeltaOp {
  enum class Kind : uint8_t { kInsert = 0, kDelete = 1 };
  Kind kind = Kind::kInsert;
  RTreeEntry entry;
};

/// Append-only, epoch-published mutation log — the write side of the
/// LSM-style delta overlay (docs/architecture.md "Dynamic FLAT").
///
/// Storage is a linked chain of fixed-size chunks. An op's sequence number
/// is its position in the log; `size()` (the published epoch) is advanced
/// with a release store only after the op's bytes and any new chunk link
/// are in place, so a reader that observes `size() == n` may scan ops
/// `[0, n)` without any lock — ops are immutable once published and chunk
/// `next` pointers are set exactly once. This is what makes snapshots
/// cheap: pinning an epoch is one atomic load, and every scan bounded by a
/// pinned epoch is race-free against concurrent appends by construction.
///
/// Thread-safety: any number of concurrent Append callers (serialized by an
/// internal mutex) racing any number of Scan/size callers. Chunks are never
/// freed before destruction, so ops stay readable for the lifetime of the
/// log — compaction advances a logical floor instead of truncating (see
/// ShardedFlatStore::Compact).
class DeltaLog {
 public:
  DeltaLog();
  ~DeltaLog();

  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;

  /// Appends one op; returns the epoch after the append (the op's sequence
  /// number + 1). A snapshot pinned at an epoch >= the returned value sees
  /// the op. Thread-safe.
  uint64_t Append(const DeltaOp& op);

  /// Number of published ops (the current epoch). Acquire-loads, so all ops
  /// below the returned value are safe to Scan from this thread.
  uint64_t size() const { return size_.load(std::memory_order_acquire); }

  /// Visits ops `[first, min(limit, size()))` in sequence order:
  /// `visit(const DeltaOp&, uint64_t seq)`. Safe to call concurrently with
  /// Append; never blocks writers.
  template <typename Visitor>
  void Scan(uint64_t first, uint64_t limit, Visitor&& visit) const {
    const uint64_t published = size();
    if (limit > published) limit = published;
    if (first >= limit) return;
    const Chunk* chunk = head_;
    uint64_t chunk_base = 0;
    while (chunk_base + kChunkOps <= first) {
      chunk = chunk->next.load(std::memory_order_acquire);
      chunk_base += kChunkOps;
    }
    for (uint64_t seq = first; seq < limit; ++seq) {
      if (seq - chunk_base == kChunkOps) {
        chunk = chunk->next.load(std::memory_order_acquire);
        chunk_base += kChunkOps;
      }
      visit(chunk->ops[seq - chunk_base], seq);
    }
  }

 private:
  static constexpr size_t kChunkOps = 256;

  struct Chunk {
    DeltaOp ops[kChunkOps];
    std::atomic<Chunk*> next{nullptr};
  };

  std::mutex append_mu_;
  Chunk* head_;             // set once at construction, never changes
  Chunk* tail_;             // writers only, under append_mu_
  std::atomic<uint64_t> size_{0};
};

/// Serializes ops `[first, min(limit, log.size()))` as an overlay
/// write-ahead log (magic "FLATWAL1"; byte layout in docs/file_format.md).
/// Throws std::runtime_error on stream failure.
void SaveDeltaOps(const DeltaLog& log, uint64_t first, uint64_t limit,
                  std::ostream& out);

/// Reads ops previously written by SaveDeltaOps, in order. Rejects unknown
/// magics, truncated streams and invalid op kinds by throwing
/// std::runtime_error.
std::vector<DeltaOp> LoadDeltaOps(std::istream& in);

}  // namespace flat

#endif  // FLAT_DELTA_DELTA_LOG_H_
