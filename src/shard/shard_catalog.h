#ifndef FLAT_SHARD_SHARD_CATALOG_H_
#define FLAT_SHARD_SHARD_CATALOG_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/flat_index.h"
#include "geometry/aabb.h"

namespace flat {

/// Catalog entry for one shard of a ShardedFlatStore: everything needed to
/// re-attach the shard's FlatIndex (descriptor + PageFile location) and to
/// route queries to it (bounds) without touching its pages.
struct ShardCatalogEntry {
  /// File name of the shard's serialized PageFile, relative to the store
  /// directory (e.g. "shard-0003.pgf"). Never an absolute path, so a store
  /// directory can be moved or copied wholesale.
  std::string page_file_name;
  /// Seed-tree handle inside the shard's PageFile.
  FlatIndex::Descriptor descriptor;
  /// MBR of the shard's elements (union of element MBRs). The routing gate:
  /// a query can only match elements of this shard if it intersects bounds.
  Aabb bounds;
  /// The shard's unstretched STR tile. Tiles of all shards jointly cover the
  /// universe with no gaps; element MBRs may stick out of their tile (which
  /// is why `bounds`, not `tile`, gates routing).
  Aabb tile;
  /// Number of elements stored in this shard.
  uint64_t element_count = 0;
};

/// Versioned, self-describing description of a sharded store: global
/// metadata plus one entry per shard, in shard order (the order queries are
/// scattered and results merged in). Serialized next to the shards' page
/// files; byte-level layout in docs/file_format.md.
struct ShardCatalog {
  /// Page size shared by every shard's PageFile.
  uint32_t page_size = 0;
  /// Monotone store generation: 1 after the initial bulkload, +1 per
  /// compaction. A catalog whose generation regressed relative to the store
  /// directory it is written into (tracked by the `generation.flatgen`
  /// sidecar) is stale — saving or loading it is rejected. Legacy FLATSHC1
  /// catalogs load as generation 0.
  uint64_t generation = 0;
  /// Sum of element_count over the shards.
  uint64_t total_elements = 0;
  /// Bounds of the whole data set (the STR split's universe).
  Aabb universe;
  std::vector<ShardCatalogEntry> shards;
};

/// Writes `catalog` in the versioned binary format (magic "FLATSHC2",
/// little-endian; see docs/file_format.md). Throws std::runtime_error on
/// stream failure.
void SaveShardCatalog(const ShardCatalog& catalog, std::ostream& out);

/// Reads a catalog previously written by SaveShardCatalog. Accepts the
/// current "FLATSHC2" layout and the pre-generation "FLATSHC1" layout
/// (loaded as generation 0). Rejects unknown magics, truncated streams and
/// implausible field values by throwing std::runtime_error.
ShardCatalog LoadShardCatalog(std::istream& in);

}  // namespace flat

#endif  // FLAT_SHARD_SHARD_CATALOG_H_
