#include "shard/shard_catalog.h"

#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace flat {
namespace {

constexpr char kMagicV1[8] = {'F', 'L', 'A', 'T', 'S', 'H', 'C', '1'};
constexpr char kMagicV2[8] = {'F', 'L', 'A', 'T', 'S', 'H', 'C', '2'};

// Shards are serialized PageFiles (u32 PageIds), so a catalog counting more
// shards than pages could even exist is corrupt, not merely large.
constexpr uint32_t kMaxShards = 1u << 24;
constexpr uint32_t kMaxNameLength = 4096;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T ReadPod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("LoadShardCatalog: truncated stream");
  return value;
}

void WriteAabb(std::ostream& out, const Aabb& box) {
  for (int axis = 0; axis < 3; ++axis) WritePod(out, box.lo()[axis]);
  for (int axis = 0; axis < 3; ++axis) WritePod(out, box.hi()[axis]);
}

Aabb ReadAabb(std::istream& in) {
  Vec3 lo, hi;
  for (int axis = 0; axis < 3; ++axis) lo.At(axis) = ReadPod<double>(in);
  for (int axis = 0; axis < 3; ++axis) hi.At(axis) = ReadPod<double>(in);
  return Aabb(lo, hi);
}

}  // namespace

void SaveShardCatalog(const ShardCatalog& catalog, std::ostream& out) {
  // Guard the u32 casts below: a catalog too large for the format (or with
  // a name the loader would reject) must fail here, not serialize a
  // well-formed file describing the wrong data.
  if (catalog.shards.size() > kMaxShards) {
    throw std::runtime_error(
        "SaveShardCatalog: shard count exceeds the format's limit");
  }
  for (const ShardCatalogEntry& shard : catalog.shards) {
    if (shard.page_file_name.empty() ||
        shard.page_file_name.size() > kMaxNameLength) {
      throw std::runtime_error(
          "SaveShardCatalog: shard file name length out of range");
    }
  }
  out.write(kMagicV2, sizeof(kMagicV2));
  WritePod(out, catalog.generation);
  WritePod(out, catalog.page_size);
  WritePod(out, catalog.total_elements);
  WriteAabb(out, catalog.universe);
  WritePod(out, static_cast<uint32_t>(catalog.shards.size()));
  for (const ShardCatalogEntry& shard : catalog.shards) {
    WritePod(out, static_cast<uint32_t>(shard.page_file_name.size()));
    out.write(shard.page_file_name.data(),
              static_cast<std::streamsize>(shard.page_file_name.size()));
    WritePod(out, shard.descriptor.seed_root);
    WritePod(out, static_cast<uint8_t>(shard.descriptor.root_is_leaf));
    WritePod(out, static_cast<int32_t>(shard.descriptor.seed_height));
    WriteAabb(out, shard.bounds);
    WriteAabb(out, shard.tile);
    WritePod(out, shard.element_count);
  }
  if (!out) throw std::runtime_error("SaveShardCatalog: write failed");
}

ShardCatalog LoadShardCatalog(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  const bool is_v2 = in && std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0;
  const bool is_v1 = in && std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0;
  if (!is_v1 && !is_v2) {
    throw std::runtime_error(
        "LoadShardCatalog: bad magic (not a FLAT shard catalog or "
        "unsupported version)");
  }
  ShardCatalog catalog;
  // V2 inserts the generation right after the magic; a V1 catalog predates
  // generations and loads as generation 0.
  catalog.generation = is_v2 ? ReadPod<uint64_t>(in) : 0;
  catalog.page_size = ReadPod<uint32_t>(in);
  if (catalog.page_size < 64 || catalog.page_size > (64u << 20)) {
    throw std::runtime_error("LoadShardCatalog: implausible page size");
  }
  catalog.total_elements = ReadPod<uint64_t>(in);
  catalog.universe = ReadAabb(in);
  const uint32_t shard_count = ReadPod<uint32_t>(in);
  if (shard_count > kMaxShards) {
    throw std::runtime_error("LoadShardCatalog: implausible shard count");
  }
  // Entries are parsed one at a time (no up-front resize to the untrusted
  // count): a truncated or hostile header fails on its first entry instead
  // of forcing a shard_count-sized allocation.
  uint64_t element_sum = 0;
  for (uint32_t i = 0; i < shard_count; ++i) {
    ShardCatalogEntry shard;
    const uint32_t name_length = ReadPod<uint32_t>(in);
    if (name_length == 0 || name_length > kMaxNameLength) {
      throw std::runtime_error("LoadShardCatalog: implausible file name");
    }
    shard.page_file_name.resize(name_length);
    in.read(shard.page_file_name.data(), name_length);
    if (!in) throw std::runtime_error("LoadShardCatalog: truncated stream");
    // Names are plain file names inside the store directory; anything that
    // could traverse out of it is corrupt (or hostile), not a store.
    if (shard.page_file_name.find('/') != std::string::npos ||
        shard.page_file_name.find('\\') != std::string::npos ||
        shard.page_file_name.find("..") != std::string::npos ||
        shard.page_file_name.find('\0') != std::string::npos) {
      throw std::runtime_error("LoadShardCatalog: invalid shard file name");
    }
    shard.descriptor.seed_root = ReadPod<PageId>(in);
    shard.descriptor.root_is_leaf = ReadPod<uint8_t>(in) != 0;
    shard.descriptor.seed_height = ReadPod<int32_t>(in);
    shard.bounds = ReadAabb(in);
    shard.tile = ReadAabb(in);
    shard.element_count = ReadPod<uint64_t>(in);
    element_sum += shard.element_count;
    catalog.shards.push_back(std::move(shard));
  }
  if (element_sum != catalog.total_elements) {
    throw std::runtime_error(
        "LoadShardCatalog: element counts do not sum to total_elements");
  }
  return catalog;
}

}  // namespace flat
