#include "shard/sharded_flat_store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <stdexcept>

#include "core/partitioner.h"
#include "parallel/thread_pool.h"
#include "storage/disk_page_file.h"
#include "storage/persistence.h"

namespace flat {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Aabb BoundsOf(const std::vector<RTreeEntry>& entries) {
  Aabb bounds;
  for (const RTreeEntry& e : entries) bounds.ExpandToInclude(e.box);
  return bounds;
}

std::string ShardFileName(size_t shard) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04zu.pgf", shard);
  return name;
}

constexpr char kCatalogFileName[] = "catalog.flatshard";

// The bounding box that gates shard routing for a query; every element the
// query can match has an MBR intersecting this box.
Aabb QueryGate(const Query& query) {
  switch (query.type) {
    case Query::Type::kRange:
    case Query::Type::kRangeCount:
    case Query::Type::kSeedScan:
      return query.box;
    case Query::Type::kSphere:
      return Aabb::FromCenterHalfExtents(
          query.center, Vec3(query.radius, query.radius, query.radius));
    case Query::Type::kKnn:
      throw std::invalid_argument(
          "ShardedFlatStore: kKnn is not supported — the gather has no "
          "distances to merge per-shard candidates globally");
  }
  return Aabb();
}

// Gathers the sub-results of one scattered query: I/O is summed per
// category; materializing queries concatenate ids and sort ascending (the
// store's canonical order). No dedup is needed: the shards partition the
// elements, so per-shard result sets are disjoint and the sorted merge is
// exactly the sorted result of an unsharded index.
void GatherSubResults(std::vector<QueryResult>* sub_results, size_t first,
                      size_t count, Query::Type type, QueryResult* out) {
  for (size_t s = 0; s < count; ++s) {
    const QueryResult& sub = (*sub_results)[first + s];
    out->io += sub.io;
    if (type == Query::Type::kRangeCount) {
      out->count += sub.count;
    } else {
      out->ids.insert(out->ids.end(), sub.ids.begin(), sub.ids.end());
    }
  }
  if (type != Query::Type::kRangeCount) {
    std::sort(out->ids.begin(), out->ids.end());
    out->count = out->ids.size();
  }
}

}  // namespace

ShardedFlatStore ShardedFlatStore::Build(std::vector<RTreeEntry> elements,
                                         const Options& options,
                                         BuildStats* out_stats) {
  ShardedFlatStore store;
  BuildStats stats;
  stats.elements = elements.size();
  store.catalog_.page_size = options.page_size;
  store.catalog_.total_elements = elements.size();

  if (!elements.empty()) {
    std::optional<ThreadPool> owned_pool;
    ThreadPool* pool = nullptr;
    if (options.num_threads != 1) {
      owned_pool.emplace(options.num_threads);
      pool = &*owned_pool;
    }

    // Top-level STR split: the same tiling machinery as the index build, at
    // shard granularity. Deterministic for any thread count
    // (EntryCenterOrder is total), so the shard assignment is unique.
    const auto t_split = Clock::now();
    const Aabb universe = BoundsOf(elements);
    const size_t target_shards = std::max<size_t>(1, options.num_shards);
    const uint32_t shard_capacity = static_cast<uint32_t>(std::min<uint64_t>(
        std::numeric_limits<uint32_t>::max(),
        (elements.size() + target_shards - 1) / target_shards));
    const std::vector<PartitionInfo> split =
        StrPartition(&elements, shard_capacity, universe, pool);
    stats.split_seconds = SecondsSince(t_split);
    store.catalog_.universe = universe;

    // Scatter the (reordered) elements into per-shard vectors, then build
    // every shard's FlatIndex in parallel — one serial build per worker at a
    // time, each into its own pre-allocated PageFile.
    const auto t_build = Clock::now();
    const size_t shard_count = split.size();
    std::vector<std::vector<RTreeEntry>> shard_elements(shard_count);
    for (size_t i = 0; i < shard_count; ++i) {
      shard_elements[i].assign(
          elements.begin() + split[i].first,
          elements.begin() + split[i].first + split[i].count);
    }
    elements.clear();
    elements.shrink_to_fit();

    store.files_.resize(shard_count);
    store.indexes_.resize(shard_count);
    stats.per_shard.resize(shard_count);
    // Builds need the concrete PageFile (MutableData); files_ holds the
    // type-erased PageStore handles that queries read through.
    std::vector<PageFile*> shard_files(shard_count);
    for (size_t i = 0; i < shard_count; ++i) {
      auto file = std::make_unique<PageFile>(options.page_size);
      shard_files[i] = file.get();
      store.files_[i] = std::move(file);
    }
    ParallelFor(pool, shard_count, /*grain=*/1, [&](size_t, size_t i) {
      store.indexes_[i] = FlatIndex::Build(
          shard_files[i], std::move(shard_elements[i]),
          &stats.per_shard[i]);
    });
    stats.build_seconds = SecondsSince(t_build);

    store.catalog_.shards.resize(shard_count);
    for (size_t i = 0; i < shard_count; ++i) {
      ShardCatalogEntry& entry = store.catalog_.shards[i];
      entry.page_file_name = ShardFileName(i);
      entry.descriptor = store.indexes_[i].descriptor();
      entry.bounds = split[i].page_mbr;
      entry.tile = split[i].tile;
      entry.element_count = split[i].count;
    }
  }

  stats.shards = store.indexes_.size();
  store.build_stats_ = std::move(stats);
  if (out_stats != nullptr) *out_stats = store.build_stats_;
  store.AttachEngine(options.num_threads);
  return store;
}

void ShardedFlatStore::AttachEngine(size_t num_threads) {
  QueryEngine::Options options;
  options.threads = num_threads;
  engine_ = std::make_unique<QueryEngine>(options);
}

std::vector<size_t> ShardedFlatStore::Route(const Aabb& gate) const {
  std::vector<size_t> shards;
  for (size_t i = 0; i < catalog_.shards.size(); ++i) {
    if (catalog_.shards[i].bounds.Intersects(gate)) shards.push_back(i);
  }
  return shards;
}

QueryResult ShardedFlatStore::RunSingle(const Query& query) const {
  // A default-constructed store has no engine (and no shards): every query
  // legitimately answers empty, mirroring an unbuilt FlatIndex.
  if (engine_ == nullptr) return QueryResult{};
  const std::vector<size_t> shards = Route(QueryGate(query));
  std::vector<IndexedQuery> scatter;
  scatter.reserve(shards.size());
  for (size_t shard : shards) {
    scatter.push_back(IndexedQuery{&indexes_[shard], query});
  }
  std::vector<QueryResult> sub_results = engine_->RunMulti(scatter);
  QueryResult result;
  GatherSubResults(&sub_results, 0, sub_results.size(), query.type, &result);
  return result;
}

std::vector<uint64_t> ShardedFlatStore::RangeQuery(const Aabb& query,
                                                   IoStats* io) const {
  QueryResult result = RunSingle(Query::Range(query));
  if (io != nullptr) *io += result.io;
  return std::move(result.ids);
}

uint64_t ShardedFlatStore::RangeCount(const Aabb& query, IoStats* io) const {
  QueryResult result = RunSingle(Query::RangeCount(query));
  if (io != nullptr) *io += result.io;
  return result.count;
}

std::vector<uint64_t> ShardedFlatStore::RangeQueryViaSeedScan(
    const Aabb& query, IoStats* io) const {
  QueryResult result = RunSingle(Query::RangeSeedScan(query));
  if (io != nullptr) *io += result.io;
  return std::move(result.ids);
}

std::vector<uint64_t> ShardedFlatStore::SphereQuery(const Vec3& center,
                                                    double radius,
                                                    IoStats* io) const {
  QueryResult result = RunSingle(Query::Sphere(center, radius));
  if (io != nullptr) *io += result.io;
  return std::move(result.ids);
}

std::vector<QueryResult> ShardedFlatStore::RunBatch(
    const std::vector<Query>& batch, BatchStats* stats) const {
  const auto start = Clock::now();

  // Default-constructed store: no engine, no shards — every query answers
  // empty (same contract as RunSingle).
  if (engine_ == nullptr) {
    if (stats != nullptr) {
      *stats = BatchStats{};
      stats->wall_seconds = SecondsSince(start);
    }
    return std::vector<QueryResult>(batch.size());
  }

  // Scatter: one flat multi-index sub-batch covering every (query, shard)
  // pair, so the engine's work-stealing pool balances across queries and
  // shards alike.
  std::vector<IndexedQuery> scatter;
  struct Span {
    size_t first = 0;
    size_t count = 0;
  };
  std::vector<Span> spans(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const std::vector<size_t> shards = Route(QueryGate(batch[i]));
    spans[i].first = scatter.size();
    spans[i].count = shards.size();
    for (size_t shard : shards) {
      scatter.push_back(IndexedQuery{&indexes_[shard], batch[i]});
    }
  }

  std::vector<QueryResult> sub_results = engine_->RunMulti(scatter);

  // Gather: per original query, merge its shards' sub-results.
  std::vector<QueryResult> results(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    GatherSubResults(&sub_results, spans[i].first, spans[i].count,
                     batch[i].type, &results[i]);
  }

  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->threads = engine_->threads();
    for (const QueryResult& r : results) {
      stats->io += r.io;
      stats->result_elements += r.count;
    }
    stats->wall_seconds = SecondsSince(start);
  }
  return results;
}

void ShardedFlatStore::Save(const std::string& dir) const {
  namespace fs = std::filesystem;
  const fs::path root(dir);
  fs::create_directories(root);

  std::ofstream catalog_out(root / kCatalogFileName,
                            std::ios::binary | std::ios::trunc);
  if (!catalog_out) {
    throw std::runtime_error("ShardedFlatStore::Save: cannot open catalog " +
                             (root / kCatalogFileName).string());
  }
  SaveShardCatalog(catalog_, catalog_out);

  for (size_t i = 0; i < files_.size(); ++i) {
    const fs::path path = root / catalog_.shards[i].page_file_name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("ShardedFlatStore::Save: cannot open " +
                               path.string());
    }
    SavePageFile(*files_[i], out);
  }
}

ShardedFlatStore ShardedFlatStore::Load(const std::string& dir,
                                        size_t num_threads,
                                        LoadBackend backend) {
  namespace fs = std::filesystem;
  const fs::path root(dir);

  std::ifstream catalog_in(root / kCatalogFileName, std::ios::binary);
  if (!catalog_in) {
    throw std::runtime_error("ShardedFlatStore::Load: cannot open catalog " +
                             (root / kCatalogFileName).string());
  }
  ShardedFlatStore store;
  store.catalog_ = LoadShardCatalog(catalog_in);

  store.files_.reserve(store.catalog_.shards.size());
  store.indexes_.reserve(store.catalog_.shards.size());
  for (const ShardCatalogEntry& entry : store.catalog_.shards) {
    const fs::path path = root / entry.page_file_name;
    if (backend == LoadBackend::kDisk) {
      // Serve the shard straight from the file: DiskPageFile validates the
      // header against the actual file size and maps it read-only.
      store.files_.push_back(DiskPageFile::Open(path.string()));
    } else {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        throw std::runtime_error("ShardedFlatStore::Load: cannot open " +
                                 path.string());
      }
      store.files_.push_back(LoadPageFile(in));
    }
    const PageStore& file = *store.files_.back();
    if (file.page_size() != store.catalog_.page_size) {
      throw std::runtime_error(
          "ShardedFlatStore::Load: shard page size disagrees with catalog: " +
          path.string());
    }
    // The catalog's descriptor must address a page that actually exists in
    // the shard file — PageFile::Data() does not bounds-check in Release
    // builds, so a corrupt catalog has to be rejected here, not at query
    // time.
    const PageId seed_root = entry.descriptor.seed_root;
    if (seed_root != kInvalidPageId) {
      if (seed_root >= file.page_count()) {
        throw std::runtime_error(
            "ShardedFlatStore::Load: catalog seed root outside shard file: " +
            path.string());
      }
      const PageCategory expected = entry.descriptor.root_is_leaf
                                        ? PageCategory::kSeedLeaf
                                        : PageCategory::kSeedInternal;
      if (file.category(seed_root) != expected) {
        throw std::runtime_error(
            "ShardedFlatStore::Load: catalog seed root has the wrong page "
            "category: " +
            path.string());
      }
    }
    store.indexes_.push_back(
        FlatIndex::Attach(store.files_.back().get(), entry.descriptor));
  }
  store.build_stats_.shards = store.indexes_.size();
  store.build_stats_.elements = store.catalog_.total_elements;
  store.AttachEngine(num_threads);
  return store;
}

}  // namespace flat
