#include "shard/sharded_flat_store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/partitioner.h"
#include "delta/delta_log.h"
#include "delta/overlay_view.h"
#include "parallel/thread_pool.h"
#include "rtree/node.h"
#include "storage/buffer_pool.h"
#include "storage/disk_page_file.h"
#include "storage/persistence.h"

namespace flat {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Aabb BoundsOf(const std::vector<RTreeEntry>& entries) {
  Aabb bounds;
  for (const RTreeEntry& e : entries) bounds.ExpandToInclude(e.box);
  return bounds;
}

std::string ShardFileName(size_t shard) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04zu.pgf", shard);
  return name;
}

constexpr char kCatalogFileName[] = "catalog.flatshard";
constexpr char kOverlayWalFileName[] = "overlay.flatwal";
constexpr char kGenerationFileName[] = "generation.flatgen";
constexpr char kGenerationMagic[8] = {'F', 'L', 'A', 'T', 'G', 'E', 'N', '1'};

// The bounding box that gates shard routing for a query; every element the
// query can match has an MBR intersecting this box.
Aabb QueryGate(const Query& query) {
  switch (query.type) {
    case Query::Type::kRange:
    case Query::Type::kRangeCount:
    case Query::Type::kSeedScan:
      return query.box;
    case Query::Type::kSphere:
      return Aabb::FromCenterHalfExtents(
          query.center, Vec3(query.radius, query.radius, query.radius));
    case Query::Type::kKnn:
      throw std::invalid_argument(
          "ShardedFlatStore: kKnn is not supported — the gather has no "
          "distances to merge per-shard candidates globally");
  }
  return Aabb();
}

// Gathers the sub-results of one scattered query: I/O is summed per
// category; materializing queries concatenate ids and sort ascending (the
// store's canonical order). No dedup is needed: the shards partition the
// elements, per-shard result sets are disjoint, and overlay merging masks
// every overlay-touched id out of base results before appending overlay
// matches — so the sorted merge is exactly the sorted result of an
// unsharded index over the merged data.
//
// Fail-soft: if any sub-query stopped early, the merged result carries a
// non-kOk status — the group's originating status when `group` is set
// (siblings cancelled BY the group report kCancelled, which would otherwise
// mask the real cause), else the first non-kOk sub in scatter order. The
// partial ids of failed subs are still merged: a partial union, sorted, is
// a valid partial result. A non-kOk merged kRangeCount likewise keeps the
// sum of whatever the sub-queries tallied — a lower bound on the exact
// count, mirroring partial kRange keeping its ids (core/query_control.h).
void GatherSubResults(std::vector<QueryResult>* sub_results, size_t first,
                      size_t count, Query::Type type, const QueryGroup* group,
                      QueryResult* out) {
  for (size_t s = 0; s < count; ++s) {
    const QueryResult& sub = (*sub_results)[first + s];
    out->io += sub.io;
    if (out->status == QueryStatus::kOk && sub.status != QueryStatus::kOk) {
      out->status = sub.status;
      out->error = sub.error;
    }
    if (type == Query::Type::kRangeCount) {
      out->count += sub.count;
    } else {
      out->ids.insert(out->ids.end(), sub.ids.begin(), sub.ids.end());
    }
  }
  if (group != nullptr && group->status() != QueryStatus::kOk) {
    out->status = group->status();
    if (out->error.empty()) {
      // Recover the originating sub's detail (the scatter-order-first
      // non-kOk sub may be a cancelled sibling with no error text).
      for (size_t s = 0; s < count; ++s) {
        const QueryResult& sub = (*sub_results)[first + s];
        if (sub.status == out->status && !sub.error.empty()) {
          out->error = sub.error;
          break;
        }
      }
    }
  }
  if (type != Query::Type::kRangeCount) {
    std::sort(out->ids.begin(), out->ids.end());
    out->count = out->ids.size();
  }
}

// Reads the generation sidecar; throws on a corrupt one.
uint64_t LoadGenerationSidecar(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ShardedFlatStore: cannot open " + path.string());
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kGenerationMagic, sizeof(kGenerationMagic))) {
    throw std::runtime_error("ShardedFlatStore: corrupt generation sidecar " +
                             path.string());
  }
  uint64_t generation = 0;
  in.read(reinterpret_cast<char*>(&generation), sizeof(generation));
  if (!in) {
    throw std::runtime_error("ShardedFlatStore: corrupt generation sidecar " +
                             path.string());
  }
  return generation;
}

void SaveGenerationSidecar(const std::filesystem::path& path,
                           uint64_t generation) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(kGenerationMagic, sizeof(kGenerationMagic));
  out.write(reinterpret_cast<const char*>(&generation), sizeof(generation));
  if (!out) {
    throw std::runtime_error("ShardedFlatStore: cannot write " +
                             path.string());
  }
}

}  // namespace

/// One immutable bulkload generation. Snapshots and the store share Bases by
/// shared_ptr: Compact publishes a fresh Base and pinned snapshots keep the
/// old one (and its PageFiles) alive until released.
struct ShardedFlatStore::Base {
  ShardCatalog catalog;
  std::vector<std::unique_ptr<PageStore>> files;  // one per shard
  std::vector<FlatIndex> indexes;                 // parallel to files
  /// Log position this base has absorbed: ops < floor are folded into the
  /// shard files, ops >= floor live in the overlay window. Monotone across
  /// compactions.
  uint64_t overlay_floor = 0;
};

/// The mutable heart of the store, held behind a unique_ptr so the store
/// stays movable (mutexes are not).
struct ShardedFlatStore::DynamicState {
  /// Guards the base handle (pin = copy under mu, publish = swap under mu).
  mutable std::mutex mu;
  std::shared_ptr<const Base> base;
  /// The delta overlay's op log. Appends serialize internally; reads are
  /// lock-free (acquire on the published size).
  DeltaLog log;
  /// Serializes compactions with each other (never with readers/writers).
  std::mutex compact_mu;
};

namespace {

/// Per-shard routing bounds for OverlayView::Build — must be exactly the
/// bounds Route() gates with, so bucket routing and query routing agree.
std::vector<Aabb> ShardBounds(const ShardCatalog& catalog) {
  std::vector<Aabb> bounds;
  bounds.reserve(catalog.shards.size());
  for (const ShardCatalogEntry& shard : catalog.shards) {
    bounds.push_back(shard.bounds);
  }
  return bounds;
}

/// Appends the scatter list for one query against (base, overlay): one
/// overlay-annotated sub-query per routed shard, plus — when an overlay is
/// pinned — an index-free tail sub-query scanning the spill bucket.
/// Returns the number of sub-queries appended.
///
/// `precount` (non-null for kRangeCount) receives the catalog-level
/// shortcut: a shard whose element bounds are fully inside the query box
/// contributes its exact catalog element count here instead of a sub-query
/// — zero reads for that shard. Only taken when the shard's index carries
/// aggregates (which certifies every element box non-empty and finite, so
/// "bounds covered" really means "every element matches") and the overlay
/// window is empty (an overlay can mask or override this shard's ids, so
/// overlayed counts descend exactly).
size_t AppendScatter(const ShardCatalog& catalog,
                     const std::vector<FlatIndex>& indexes,
                     const OverlayView* overlay, const Query& query,
                     std::vector<IndexedQuery>* scatter,
                     uint64_t* precount = nullptr) {
  const Aabb gate = QueryGate(query);
  const bool can_precount = precount != nullptr &&
                            query.type == Query::Type::kRangeCount &&
                            (overlay == nullptr || overlay->empty());
  size_t count = 0;
  for (size_t s = 0; s < catalog.shards.size(); ++s) {
    if (!catalog.shards[s].bounds.Intersects(gate)) continue;
    if (can_precount && indexes[s].has_aggregates() &&
        gate.Contains(catalog.shards[s].bounds)) {
      *precount += catalog.shards[s].element_count;
      continue;
    }
    scatter->push_back(IndexedQuery{&indexes[s], query, overlay, s});
    ++count;
  }
  if (overlay != nullptr) {
    // The spill bucket holds live entries contained in no shard's bounds
    // (including everything when there are no shards); it is scanned
    // unconditionally — it is the brute-force part of the overlay.
    scatter->push_back(
        IndexedQuery{nullptr, query, overlay, overlay->spill_bucket()});
    ++count;
  }
  return count;
}

/// Per-query shared cancellation state for a scattered query whose caller
/// supplied a control without a group. Heap-allocated so the control/group
/// addresses the sub-queries capture stay stable for the batch's lifetime.
struct ControlBlock {
  QueryControl control;
  QueryGroup group;
};

/// If `query` carries a control without a group, clones the control into a
/// fresh ControlBlock wired to its own QueryGroup — so one failing scattered
/// sibling cancels the others — and repoints the query at the clone.
/// Returns the group the gather should consult (the caller's own, the
/// block's, or null for an uncontrolled query).
const QueryGroup* WireControlGroup(
    Query* query, std::vector<std::unique_ptr<ControlBlock>>* blocks) {
  if (query->control == nullptr) return nullptr;
  if (query->control->group != nullptr) return query->control->group;
  auto block = std::make_unique<ControlBlock>();
  block->control = *query->control;
  block->control.group = &block->group;
  query->control = &block->control;
  const QueryGroup* group = &block->group;
  blocks->push_back(std::move(block));
  return group;
}

}  // namespace

ShardedFlatStore::ShardedFlatStore()
    : state_(std::make_unique<DynamicState>()) {
  state_->base = std::make_shared<const Base>();
}

ShardedFlatStore::~ShardedFlatStore() = default;
ShardedFlatStore::ShardedFlatStore(ShardedFlatStore&&) = default;
ShardedFlatStore& ShardedFlatStore::operator=(ShardedFlatStore&&) = default;

std::shared_ptr<const ShardedFlatStore::Base> ShardedFlatStore::BuildBase(
    std::vector<RTreeEntry> elements, const Options& options,
    uint64_t generation, uint64_t overlay_floor, BuildStats* out_stats) {
  auto base = std::make_shared<Base>();
  BuildStats stats;
  stats.elements = elements.size();
  base->catalog.page_size = options.page_size;
  base->catalog.generation = generation;
  base->catalog.total_elements = elements.size();
  base->overlay_floor = overlay_floor;

  if (!elements.empty()) {
    std::optional<ThreadPool> owned_pool;
    ThreadPool* pool = nullptr;
    if (options.num_threads != 1) {
      owned_pool.emplace(options.num_threads);
      pool = &*owned_pool;
    }

    // Top-level STR split: the same tiling machinery as the index build, at
    // shard granularity. Deterministic for any thread count
    // (EntryCenterOrder is total), so the shard assignment is unique —
    // and, crucially for compaction, independent of the order the merged
    // elements were collected in.
    const auto t_split = Clock::now();
    const Aabb universe = BoundsOf(elements);
    const size_t target_shards = std::max<size_t>(1, options.num_shards);
    const uint32_t shard_capacity = static_cast<uint32_t>(std::min<uint64_t>(
        std::numeric_limits<uint32_t>::max(),
        (elements.size() + target_shards - 1) / target_shards));
    const std::vector<PartitionInfo> split =
        StrPartition(&elements, shard_capacity, universe, pool);
    stats.split_seconds = SecondsSince(t_split);
    base->catalog.universe = universe;

    // Scatter the (reordered) elements into per-shard vectors, then build
    // every shard's FlatIndex in parallel — one serial build per worker at a
    // time, each into its own pre-allocated PageFile.
    const auto t_build = Clock::now();
    const size_t shard_count = split.size();
    std::vector<std::vector<RTreeEntry>> shard_elements(shard_count);
    for (size_t i = 0; i < shard_count; ++i) {
      shard_elements[i].assign(
          elements.begin() + split[i].first,
          elements.begin() + split[i].first + split[i].count);
    }
    elements.clear();
    elements.shrink_to_fit();

    base->files.resize(shard_count);
    base->indexes.resize(shard_count);
    stats.per_shard.resize(shard_count);
    // Builds need the concrete PageFile (MutableData); files holds the
    // type-erased PageStore handles that queries read through.
    std::vector<PageFile*> shard_files(shard_count);
    for (size_t i = 0; i < shard_count; ++i) {
      auto file = std::make_unique<PageFile>(options.page_size);
      shard_files[i] = file.get();
      base->files[i] = std::move(file);
    }
    // Each shard build is serial (the ParallelFor is the parallelism) and
    // may carry the aggregate-sidecar option; the PageFile bytes are
    // identical with or without it.
    FlatIndex::BuildOptions shard_build;
    shard_build.aggregate_counts = options.aggregate_counts;
    ParallelFor(pool, shard_count, /*grain=*/1, [&](size_t, size_t i) {
      base->indexes[i] =
          FlatIndex::Build(shard_files[i], std::move(shard_elements[i]),
                           shard_build, &stats.per_shard[i]);
    });
    stats.build_seconds = SecondsSince(t_build);

    base->catalog.shards.resize(shard_count);
    for (size_t i = 0; i < shard_count; ++i) {
      ShardCatalogEntry& entry = base->catalog.shards[i];
      entry.page_file_name = ShardFileName(i);
      entry.descriptor = base->indexes[i].descriptor();
      entry.bounds = split[i].page_mbr;
      entry.tile = split[i].tile;
      entry.element_count = split[i].count;
    }
  }

  stats.shards = base->indexes.size();
  if (out_stats != nullptr) *out_stats = std::move(stats);
  return base;
}

ShardedFlatStore ShardedFlatStore::Build(std::vector<RTreeEntry> elements,
                                         const Options& options,
                                         BuildStats* out_stats) {
  ShardedFlatStore store;
  store.options_ = options;
  store.state_->base = BuildBase(std::move(elements), options,
                                 /*generation=*/1, /*overlay_floor=*/0,
                                 &store.build_stats_);
  if (out_stats != nullptr) *out_stats = store.build_stats_;
  store.AttachEngine(options.num_threads);
  return store;
}

void ShardedFlatStore::AttachEngine(size_t num_threads) {
  QueryEngine::Options options;
  options.threads = num_threads;
  engine_ = std::make_unique<QueryEngine>(options);
}

uint64_t ShardedFlatStore::Insert(const RTreeEntry& entry) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::kInsert;
  op.entry = entry;
  return state_->log.Append(op);
}

uint64_t ShardedFlatStore::Erase(uint64_t id) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::kDelete;
  op.entry.id = id;
  return state_->log.Append(op);
}

uint64_t ShardedFlatStore::epoch() const { return state_->log.size(); }

uint64_t ShardedFlatStore::generation() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->base->catalog.generation;
}

uint64_t ShardedFlatStore::overlay_op_count() const {
  std::shared_ptr<const Base> base;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    base = state_->base;
  }
  // Reading the size after pinning keeps the difference non-negative: the
  // floor was the log size at some earlier instant.
  return state_->log.size() - base->overlay_floor;
}

ShardedFlatStore::Snapshot ShardedFlatStore::PinSnapshot() const {
  Snapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    snapshot.base_ = state_->base;
  }
  // The epoch is read after the base: the base's floor is a past log size,
  // so floor <= epoch always and the window below is well-formed.
  snapshot.epoch_ = state_->log.size();
  snapshot.overlay_ =
      OverlayView::Build(state_->log, snapshot.base_->overlay_floor,
                         snapshot.epoch_, ShardBounds(snapshot.base_->catalog));
  return snapshot;
}

ShardedFlatStore::CompactionStats ShardedFlatStore::Compact() {
  // One compaction at a time; readers and the writer are never blocked by
  // this lock (they only ever take state_->mu, and only for a pointer copy).
  std::lock_guard<std::mutex> compact_lock(state_->compact_mu);
  const auto start = Clock::now();

  std::shared_ptr<const Base> base;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    base = state_->base;
  }
  const uint64_t limit = state_->log.size();

  CompactionStats cstats;
  cstats.folded_ops = limit - base->overlay_floor;
  std::shared_ptr<const OverlayView> overlay = OverlayView::Build(
      state_->log, base->overlay_floor, limit, ShardBounds(base->catalog));

  // Merged element set = base elements minus overlay-touched ids, plus live
  // overlay entries. Base elements are re-extracted from the shard files'
  // object pages — the pages are immutable and exact (kObject pages are
  // never quantized), so this is the authoritative copy, identical for
  // in-memory and disk-backed shards.
  std::vector<RTreeEntry> merged;
  merged.reserve(base->catalog.total_elements +
                 (overlay != nullptr ? overlay->live_count() : 0));
  for (const std::unique_ptr<PageStore>& file : base->files) {
    for (size_t page = 0; page < file->page_count(); ++page) {
      const PageId id = static_cast<PageId>(page);
      if (file->category(id) != PageCategory::kObject) continue;
      const NodeView node(file->Data(id));
      for (uint16_t i = 0; i < node.count(); ++i) {
        const RTreeEntry entry = node.EntryAt(i);
        if (overlay != nullptr && overlay->IsTouched(entry.id)) {
          ++cstats.deleted;
          continue;
        }
        merged.push_back(entry);
      }
    }
  }
  if (overlay != nullptr) {
    for (size_t b = 0; b < overlay->bucket_count(); ++b) {
      const std::vector<RTreeEntry>& bucket = overlay->bucket(b);
      merged.insert(merged.end(), bucket.begin(), bucket.end());
    }
    cstats.inserted = overlay->live_count();
  }
  cstats.merged_elements = merged.size();

  // Fresh bulkload with the store's own Options; the STR split's total
  // order makes the new shard PageFiles byte-identical to
  // Build(merged, options_) regardless of the order `merged` was collected
  // in. The new base absorbs the window: its floor is the pinned limit.
  std::shared_ptr<const Base> next =
      BuildBase(std::move(merged), options_, base->catalog.generation + 1,
                limit, &cstats.build);
  cstats.generation = base->catalog.generation + 1;

  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->base = std::move(next);
  }
  cstats.seconds = SecondsSince(start);
  return cstats;
}

QueryResult ShardedFlatStore::RunSingle(const Query& query) const {
  Snapshot snapshot = PinSnapshot();
  // A default-constructed store has no engine; the snapshot's serial
  // executor answers instead (empty for an empty store, overlay-only scans
  // for a store that has only seen inserts).
  if (engine_ == nullptr) return snapshot.Execute(query);
  std::vector<IndexedQuery> scatter;
  std::vector<std::unique_ptr<ControlBlock>> blocks;
  Query wired = query;
  const QueryGroup* group = WireControlGroup(&wired, &blocks);
  uint64_t precount = 0;
  AppendScatter(snapshot.base_->catalog, snapshot.base_->indexes,
                snapshot.overlay_.get(), wired, &scatter, &precount);
  std::vector<QueryResult> sub_results = engine_->RunMulti(scatter);
  QueryResult result;
  GatherSubResults(&sub_results, 0, sub_results.size(), query.type, group,
                   &result);
  result.count += precount;  // fully covered shards, answered off-catalog
  return result;
}

std::vector<uint64_t> ShardedFlatStore::RangeQuery(const Aabb& query,
                                                   IoStats* io) const {
  QueryResult result = RunSingle(Query::Range(query));
  if (io != nullptr) *io += result.io;
  return std::move(result.ids);
}

uint64_t ShardedFlatStore::RangeCount(const Aabb& query, IoStats* io) const {
  QueryResult result = RunSingle(Query::RangeCount(query));
  if (io != nullptr) *io += result.io;
  return result.count;
}

std::vector<uint64_t> ShardedFlatStore::RangeQueryViaSeedScan(
    const Aabb& query, IoStats* io) const {
  QueryResult result = RunSingle(Query::RangeSeedScan(query));
  if (io != nullptr) *io += result.io;
  return std::move(result.ids);
}

std::vector<uint64_t> ShardedFlatStore::SphereQuery(const Vec3& center,
                                                    double radius,
                                                    IoStats* io) const {
  QueryResult result = RunSingle(Query::Sphere(center, radius));
  if (io != nullptr) *io += result.io;
  return std::move(result.ids);
}

std::vector<QueryResult> ShardedFlatStore::RunBatch(
    const std::vector<Query>& batch, BatchStats* stats) const {
  const auto start = Clock::now();

  // One snapshot for the whole batch: every query sees the same epoch no
  // matter how writers interleave with the batch's execution.
  Snapshot snapshot = PinSnapshot();

  std::vector<QueryResult> results(batch.size());
  if (engine_ == nullptr) {
    // Default-constructed store: serial snapshot execution per query.
    for (size_t i = 0; i < batch.size(); ++i) {
      results[i] = snapshot.Execute(batch[i]);
    }
  } else {
    // Scatter: one flat multi-index sub-batch covering every (query, shard)
    // pair — plus each query's overlay tail — so the engine's work-stealing
    // pool balances across queries and shards alike.
    std::vector<IndexedQuery> scatter;
    struct Span {
      size_t first = 0;
      size_t count = 0;
    };
    std::vector<Span> spans(batch.size());
    std::vector<std::unique_ptr<ControlBlock>> blocks;
    std::vector<const QueryGroup*> groups(batch.size(), nullptr);
    std::vector<uint64_t> precounts(batch.size(), 0);
    for (size_t i = 0; i < batch.size(); ++i) {
      spans[i].first = scatter.size();
      Query wired = batch[i];
      groups[i] = WireControlGroup(&wired, &blocks);
      spans[i].count = AppendScatter(
          snapshot.base_->catalog, snapshot.base_->indexes,
          snapshot.overlay_.get(), wired, &scatter, &precounts[i]);
    }

    std::vector<QueryResult> sub_results = engine_->RunMulti(scatter);

    // Gather: per original query, merge its shards' sub-results (plus any
    // covered shards answered straight off the catalog).
    for (size_t i = 0; i < batch.size(); ++i) {
      GatherSubResults(&sub_results, spans[i].first, spans[i].count,
                       batch[i].type, groups[i], &results[i]);
      results[i].count += precounts[i];
    }
  }

  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->threads = engine_ != nullptr ? engine_->threads() : 1;
    for (const QueryResult& r : results) {
      stats->io += r.io;
      stats->result_elements += r.count;
      if (r.status == QueryStatus::kOk) {
        ++stats->queries_ok;
      } else if (r.status == QueryStatus::kRejected) {
        ++stats->queries_shed;
      } else {
        ++stats->queries_failed;
      }
    }
    stats->wall_seconds = SecondsSince(start);
  }
  return results;
}

QueryResult ShardedFlatStore::Snapshot::Execute(const Query& query) const {
  QueryResult result;
  if (base_ == nullptr) return result;  // default-constructed Snapshot
  std::vector<IndexedQuery> scatter;
  uint64_t precount = 0;
  AppendScatter(base_->catalog, base_->indexes, overlay_.get(), query,
                &scatter, &precount);
  std::vector<QueryResult> sub_results(scatter.size());
  CrawlScratch scratch;
  QueryStatus failed = QueryStatus::kOk;
  for (size_t i = 0; i < scatter.size(); ++i) {
    const IndexedQuery& iq = scatter[i];
    if (failed != QueryStatus::kOk) {
      // Serial analogue of the engine's group cancellation: once one
      // sub-query stops early, its siblings are not worth running — the
      // merged result is already partial.
      sub_results[i].status = QueryStatus::kCancelled;
      continue;
    }
    if (iq.index != nullptr && iq.index->file() != nullptr) {
      // Cold cache per sub-query, exactly like the engine's default mode —
      // the snapshot path's IoStats match the store-level entry points'.
      BufferPool pool(iq.index->file(), &sub_results[i].io, /*capacity=*/0);
      DispatchQueryWithOverlay(iq.index, iq.query, &pool, iq.overlay,
                               iq.overlay_bucket, &sub_results[i], &scratch);
    } else {
      DispatchQueryWithOverlay(nullptr, iq.query, nullptr, iq.overlay,
                               iq.overlay_bucket, &sub_results[i], &scratch);
    }
    failed = sub_results[i].status;
  }
  GatherSubResults(&sub_results, 0, sub_results.size(), query.type,
                   /*group=*/nullptr, &result);
  result.count += precount;  // fully covered shards, answered off-catalog
  return result;
}

std::vector<uint64_t> ShardedFlatStore::Snapshot::RangeQuery(
    const Aabb& query, IoStats* io) const {
  QueryResult result = Execute(Query::Range(query));
  if (io != nullptr) *io += result.io;
  return std::move(result.ids);
}

uint64_t ShardedFlatStore::Snapshot::RangeCount(const Aabb& query,
                                                IoStats* io) const {
  QueryResult result = Execute(Query::RangeCount(query));
  if (io != nullptr) *io += result.io;
  return result.count;
}

std::vector<uint64_t> ShardedFlatStore::Snapshot::RangeQueryViaSeedScan(
    const Aabb& query, IoStats* io) const {
  QueryResult result = Execute(Query::RangeSeedScan(query));
  if (io != nullptr) *io += result.io;
  return std::move(result.ids);
}

std::vector<uint64_t> ShardedFlatStore::Snapshot::SphereQuery(
    const Vec3& center, double radius, IoStats* io) const {
  QueryResult result = Execute(Query::Sphere(center, radius));
  if (io != nullptr) *io += result.io;
  return std::move(result.ids);
}

uint64_t ShardedFlatStore::Snapshot::generation() const {
  return base_ != nullptr ? base_->catalog.generation : 0;
}

uint64_t ShardedFlatStore::Snapshot::overlay_live_count() const {
  return overlay_ != nullptr ? overlay_->live_count() : 0;
}

size_t ShardedFlatStore::Snapshot::shard_count() const {
  return base_ != nullptr ? base_->indexes.size() : 0;
}

size_t ShardedFlatStore::shard_count() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->base->indexes.size();
}

const ShardCatalog& ShardedFlatStore::catalog() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->base->catalog;
}

const FlatIndex& ShardedFlatStore::shard_index(size_t shard) const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->base->indexes[shard];
}

const PageStore& ShardedFlatStore::shard_file(size_t shard) const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return *state_->base->files[shard];
}

void ShardedFlatStore::Save(const std::string& dir) const {
  namespace fs = std::filesystem;
  const fs::path root(dir);
  fs::create_directories(root);

  // Pin what gets persisted: the base plus the overlay window [floor,
  // epoch). Ops appended after this line are simply not part of the save.
  Snapshot snapshot = PinSnapshot();
  const Base& base = *snapshot.base_;

  // Stale-generation guard: a directory that already holds a LATER
  // generation of a store must not be clobbered by an earlier one (e.g. a
  // stale handle saving over a compacted copy).
  const fs::path generation_path = root / kGenerationFileName;
  if (fs::exists(generation_path)) {
    const uint64_t existing = LoadGenerationSidecar(generation_path);
    if (existing > base.catalog.generation) {
      throw std::runtime_error(
          "ShardedFlatStore::Save: stale generation: directory " + dir +
          " already holds generation " + std::to_string(existing) +
          ", refusing to overwrite with generation " +
          std::to_string(base.catalog.generation));
    }
  }

  std::ofstream catalog_out(root / kCatalogFileName,
                            std::ios::binary | std::ios::trunc);
  if (!catalog_out) {
    throw std::runtime_error("ShardedFlatStore::Save: cannot open catalog " +
                             (root / kCatalogFileName).string());
  }
  SaveShardCatalog(base.catalog, catalog_out);

  for (size_t i = 0; i < base.files.size(); ++i) {
    const fs::path path = root / base.catalog.shards[i].page_file_name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("ShardedFlatStore::Save: cannot open " +
                               path.string());
    }
    SavePageFile(*base.files[i], out);

    // Aggregate sidecar rides next to the page file it indexes into; a
    // shard without aggregates removes any stale sidecar so a reload never
    // pairs this generation's pages with an older generation's counts.
    const fs::path agg_path = path.string() + ".agg";
    if (base.indexes[i].has_aggregates()) {
      std::ofstream agg_out(agg_path, std::ios::binary | std::ios::trunc);
      if (!agg_out) {
        throw std::runtime_error("ShardedFlatStore::Save: cannot open " +
                                 agg_path.string());
      }
      SaveSeedAggregates(*base.indexes[i].aggregates(), agg_out);
    } else {
      fs::remove(agg_path);
    }
  }

  // The overlay WAL holds the pinned window (possibly zero ops) — Load
  // replays it, so the reloaded store answers exactly like this snapshot.
  std::ofstream wal_out(root / kOverlayWalFileName,
                        std::ios::binary | std::ios::trunc);
  if (!wal_out) {
    throw std::runtime_error("ShardedFlatStore::Save: cannot open WAL " +
                             (root / kOverlayWalFileName).string());
  }
  SaveDeltaOps(state_->log, base.overlay_floor, snapshot.epoch_, wal_out);

  SaveGenerationSidecar(generation_path, base.catalog.generation);
}

ShardedFlatStore ShardedFlatStore::Load(
    const std::string& dir, size_t num_threads, LoadBackend backend,
    const DiskPageFile::Options* disk_options) {
  namespace fs = std::filesystem;
  const fs::path root(dir);

  std::ifstream catalog_in(root / kCatalogFileName, std::ios::binary);
  if (!catalog_in) {
    throw std::runtime_error("ShardedFlatStore::Load: cannot open catalog " +
                             (root / kCatalogFileName).string());
  }
  ShardCatalog catalog = LoadShardCatalog(catalog_in);

  // Stale-catalog guard: the sidecar records the generation last saved into
  // this directory; a catalog older than that is a restored pre-compaction
  // file whose shard list may not match the directory's page files.
  const fs::path generation_path = root / kGenerationFileName;
  if (fs::exists(generation_path)) {
    const uint64_t recorded = LoadGenerationSidecar(generation_path);
    if (catalog.generation < recorded) {
      throw std::runtime_error(
          "ShardedFlatStore::Load: stale catalog: catalog generation " +
          std::to_string(catalog.generation) +
          " regressed behind the store directory's recorded generation " +
          std::to_string(recorded));
    }
  }

  ShardedFlatStore store;
  auto base = std::make_shared<Base>();
  base->catalog = std::move(catalog);

  base->files.reserve(base->catalog.shards.size());
  base->indexes.reserve(base->catalog.shards.size());
  for (const ShardCatalogEntry& entry : base->catalog.shards) {
    const fs::path path = root / entry.page_file_name;
    if (backend == LoadBackend::kDisk) {
      // Serve the shard straight from the file: DiskPageFile validates the
      // header against the actual file size and maps it read-only.
      base->files.push_back(disk_options != nullptr
                                ? DiskPageFile::Open(path.string(),
                                                     *disk_options)
                                : DiskPageFile::Open(path.string()));
    } else {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        throw std::runtime_error("ShardedFlatStore::Load: cannot open " +
                                 path.string());
      }
      base->files.push_back(LoadPageFile(in));
    }
    const PageStore& file = *base->files.back();
    if (file.page_size() != base->catalog.page_size) {
      throw std::runtime_error(
          "ShardedFlatStore::Load: shard page size disagrees with catalog: " +
          path.string());
    }
    // The catalog's descriptor must address a page that actually exists in
    // the shard file — PageFile::Data() does not bounds-check in Release
    // builds, so a corrupt catalog has to be rejected here, not at query
    // time.
    const PageId seed_root = entry.descriptor.seed_root;
    if (seed_root != kInvalidPageId) {
      if (seed_root >= file.page_count()) {
        throw std::runtime_error(
            "ShardedFlatStore::Load: catalog seed root outside shard file: " +
            path.string());
      }
      const PageCategory expected = entry.descriptor.root_is_leaf
                                        ? PageCategory::kSeedLeaf
                                        : PageCategory::kSeedInternal;
      if (file.category(seed_root) != expected) {
        throw std::runtime_error(
            "ShardedFlatStore::Load: catalog seed root has the wrong page "
            "category: " +
            path.string());
      }
    }
    base->indexes.push_back(
        FlatIndex::Attach(base->files.back().get(), entry.descriptor));

    // Re-attach the aggregate sidecar when present. Its loader rejects
    // corrupt bytes; on top of that the totals must agree with the catalog
    // — a sidecar from another generation would silently certify wrong
    // counts for the catalog-level covered-shard shortcut.
    const fs::path agg_path = path.string() + ".agg";
    if (fs::exists(agg_path)) {
      std::ifstream agg_in(agg_path, std::ios::binary);
      if (!agg_in) {
        throw std::runtime_error("ShardedFlatStore::Load: cannot open " +
                                 agg_path.string());
      }
      auto aggregates =
          std::make_shared<const SeedAggregates>(LoadSeedAggregates(agg_in));
      if (aggregates->total_elements() != entry.element_count) {
        throw std::runtime_error(
            "ShardedFlatStore::Load: aggregate sidecar disagrees with the "
            "catalog's element count: " +
            agg_path.string());
      }
      base->indexes.back().AttachAggregates(std::move(aggregates));
    }
  }

  store.build_stats_.shards = base->indexes.size();
  store.build_stats_.elements = base->catalog.total_elements;
  store.options_.num_shards = std::max<size_t>(1, base->catalog.shards.size());
  store.options_.num_threads = num_threads;
  store.options_.page_size = base->catalog.page_size;
  store.state_->base = std::move(base);

  // Replay the overlay WAL (absent in directories saved before the overlay
  // existed): the reloaded log starts at floor 0 with exactly the window
  // the save pinned.
  const fs::path wal_path = root / kOverlayWalFileName;
  if (fs::exists(wal_path)) {
    std::ifstream wal_in(wal_path, std::ios::binary);
    if (!wal_in) {
      throw std::runtime_error("ShardedFlatStore::Load: cannot open WAL " +
                               wal_path.string());
    }
    for (const DeltaOp& op : LoadDeltaOps(wal_in)) {
      store.state_->log.Append(op);
    }
  }

  store.AttachEngine(num_threads);
  return store;
}

}  // namespace flat
