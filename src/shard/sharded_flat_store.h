#ifndef FLAT_SHARD_SHARDED_FLAT_STORE_H_
#define FLAT_SHARD_SHARDED_FLAT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/flat_index.h"
#include "engine/query_engine.h"
#include "shard/shard_catalog.h"
#include "storage/io_stats.h"
#include "storage/page_file.h"
#include "storage/page_store.h"

namespace flat {

/// A horizontally sharded FLAT store: one data set spatially partitioned into
/// K independent FlatIndexes ("shards"), each in its own PageFile, behind a
/// single catalog and a scatter-gather query façade.
///
/// Why: a single FLAT index is bounded by one PageFile and one build; the
/// serving scenario (ROADMAP) needs data sets larger than that, bulk-built in
/// parallel and queried across volumes. Sharding is the horizontal layer:
///
///  - **Split.** A top-level STR pass (the same Sort-Tile-Recursive machinery
///    as Algorithm 1, via StrPartition with shard-sized capacity) divides the
///    elements into ~`num_shards` spatially tight, disjoint element sets.
///    The split uses the strict total EntryCenterOrder, so the shard
///    assignment — and every shard's PageFile — is byte-identical for any
///    thread count.
///  - **Build.** Each shard's FlatIndex is bulk-built independently; shard
///    builds fan out over a shared ThreadPool (one serial build per worker at
///    a time), so K shards build in parallel end to end.
///  - **Catalog.** Shard MBRs, tiles, element counts, descriptors and
///    PageFile names persist in a versioned ShardCatalog
///    (docs/file_format.md); Save/Load round-trips the whole store through a
///    directory.
///  - **Query.** Range / range-count / seed-scan / sphere queries scatter to
///    every shard whose element bounds intersect the query, run as one
///    multi-index batch on the internal QueryEngine (work-stealing across all
///    per-shard sub-queries, cold cache per sub-query), and gather into a
///    canonically ordered merge.
///
/// Result contract: `RangeQuery` returns ids sorted ascending. Because the
/// shards partition the elements (each element lives in exactly one shard),
/// the concatenation of per-shard results contains no cross-shard duplicates,
/// and its sorted form is bit-identical to the sorted result of one unsharded
/// FlatIndex over the same data — enforced by tests/sharded_store_test.cc.
/// Merged IoStats are the exact per-category sum of the per-shard cold-cache
/// executions, independent of thread count.
///
/// Thread-safety: Build/Load and all queries must be driven from one thread
/// at a time (the engine parallelizes internally); batch queries via
/// RunBatch instead of concurrent calls. The store owns its PageFiles;
/// moving the store is safe, copying is disabled.
class ShardedFlatStore {
 public:
  struct Options {
    /// Target shard count. The STR split tiles space with roughly this many
    /// partitions; the actual count (`shard_count()`) can differ slightly
    /// for awkward element/shard ratios. 1 always yields exactly one shard.
    size_t num_shards = 4;
    /// Worker threads for the shard builds and the query engine: 1 (default)
    /// is serial, 0 uses std::thread::hardware_concurrency(). Results and
    /// I/O totals are identical for every value.
    size_t num_threads = 1;
    /// Page size of every shard's PageFile.
    uint32_t page_size = kDefaultPageSize;
  };

  /// Build timings and per-shard breakdowns.
  struct BuildStats {
    double split_seconds = 0.0;  ///< top-level STR scatter of the elements.
    double build_seconds = 0.0;  ///< parallel per-shard FlatIndex builds.
    size_t shards = 0;
    uint64_t elements = 0;
    std::vector<FlatIndex::BuildStats> per_shard;
  };

  /// An empty store with no shards (and no engine): every query answers
  /// empty, mirroring an unbuilt FlatIndex. Use Build or Load for a real
  /// store.
  ShardedFlatStore() = default;
  ShardedFlatStore(ShardedFlatStore&&) = default;
  ShardedFlatStore& operator=(ShardedFlatStore&&) = default;
  ShardedFlatStore(const ShardedFlatStore&) = delete;
  ShardedFlatStore& operator=(const ShardedFlatStore&) = delete;

  /// Splits `elements` into shards and bulk-builds every shard's FlatIndex.
  /// `elements` is consumed. An empty input yields a store with zero shards
  /// whose queries all return empty.
  static ShardedFlatStore Build(std::vector<RTreeEntry> elements,
                                const Options& options,
                                BuildStats* stats = nullptr);

  /// Ids of all elements whose MBR intersects `query`, sorted ascending
  /// (canonical order; see class comment). `io` (optional) receives the
  /// per-category sum of all per-shard cold-cache reads.
  std::vector<uint64_t> RangeQuery(const Aabb& query,
                                   IoStats* io = nullptr) const;

  /// Number of elements RangeQuery would return, without materializing ids.
  /// Reads the same pages as RangeQuery (identical IoStats).
  uint64_t RangeCount(const Aabb& query, IoStats* io = nullptr) const;

  /// RangeQuery answered through each shard's seed tree alone (the seed-scan
  /// ablation plan) — same sorted id set, different page reads.
  std::vector<uint64_t> RangeQueryViaSeedScan(const Aabb& query,
                                              IoStats* io = nullptr) const;

  /// Ids of all elements intersecting the closed ball, sorted ascending.
  std::vector<uint64_t> SphereQuery(const Vec3& center, double radius,
                                    IoStats* io = nullptr) const;

  /// Scatter-gather batch execution: every query fans out to its overlapping
  /// shards, all per-shard sub-queries run as ONE multi-index engine batch
  /// (so the work-stealing pool balances across queries and shards alike),
  /// and per-query results are gathered in canonical sorted order.
  /// Supported types: kRange, kRangeCount, kSeedScan, kSphere. kKnn throws
  /// std::invalid_argument — a global k-merge needs distance-annotated
  /// results, which the gather does not have yet.
  std::vector<QueryResult> RunBatch(const std::vector<Query>& batch,
                                    BatchStats* stats = nullptr) const;

  /// Persists the store into directory `dir` (created if needed): one
  /// "shard-NNNN.pgf" PageFile per shard plus "catalog.flatshard". Existing
  /// files with those names are overwritten.
  void Save(const std::string& dir) const;

  /// Which storage backend a Load opens each shard's page file with.
  enum class LoadBackend {
    /// DiskPageFile (default): pages are served from an mmap'd (fallback:
    /// pread) read-only view of the shard file — real out-of-core
    /// execution, with crawl prefetch hints forwarded to the OS.
    kDisk,
    /// LoadPageFile into in-memory slab arenas (the pre-disk behavior);
    /// page reads are counters only. Byte- and IoStats-identical to kDisk.
    kMemory,
  };

  /// Reopens a store previously written by Save. `num_threads` configures
  /// the reopened store's query engine (1 = serial, 0 = hardware
  /// concurrency). Queries behave identically to the saved store's — and
  /// identically across backends. Throws std::runtime_error on
  /// missing/corrupt catalog or page files.
  static ShardedFlatStore Load(const std::string& dir, size_t num_threads = 1,
                               LoadBackend backend = LoadBackend::kDisk);

  size_t shard_count() const { return indexes_.size(); }
  const ShardCatalog& catalog() const { return catalog_; }
  const BuildStats& build_stats() const { return build_stats_; }

  /// Direct access to one shard's index and PageStore (bench/test hooks).
  /// A built store's shards are in-memory PageFiles; a loaded store's are
  /// whatever LoadBackend was chosen.
  const FlatIndex& shard_index(size_t shard) const { return indexes_[shard]; }
  const PageStore& shard_file(size_t shard) const { return *files_[shard]; }

 private:
  /// Shard indices whose element bounds intersect `gate`, in shard order.
  std::vector<size_t> Route(const Aabb& gate) const;

  /// Shared scatter-gather core for the single-query entry points.
  QueryResult RunSingle(const Query& query) const;

  void AttachEngine(size_t num_threads);

  ShardCatalog catalog_;
  std::vector<std::unique_ptr<PageStore>> files_;  // one per shard
  std::vector<FlatIndex> indexes_;                 // parallel to files_
  std::unique_ptr<QueryEngine> engine_;            // multi-index, owns pool
  BuildStats build_stats_;
};

}  // namespace flat

#endif  // FLAT_SHARD_SHARDED_FLAT_STORE_H_
