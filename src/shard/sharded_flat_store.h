#ifndef FLAT_SHARD_SHARDED_FLAT_STORE_H_
#define FLAT_SHARD_SHARDED_FLAT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/flat_index.h"
#include "engine/query_engine.h"
#include "shard/shard_catalog.h"
#include "storage/disk_page_file.h"
#include "storage/io_stats.h"
#include "storage/page_file.h"
#include "storage/page_store.h"

namespace flat {

class OverlayView;

/// A horizontally sharded FLAT store: one data set spatially partitioned into
/// K independent FlatIndexes ("shards"), each in its own PageFile, behind a
/// single catalog and a scatter-gather query façade — plus an LSM-style
/// **delta overlay** that makes the bulkloaded store dynamic.
///
/// Why: a single FLAT index is bounded by one PageFile and one build; the
/// serving scenario (ROADMAP) needs data sets larger than that, bulk-built in
/// parallel and queried across volumes. Sharding is the horizontal layer:
///
///  - **Split.** A top-level STR pass (the same Sort-Tile-Recursive machinery
///    as Algorithm 1, via StrPartition with shard-sized capacity) divides the
///    elements into ~`num_shards` spatially tight, disjoint element sets.
///    The split uses the strict total EntryCenterOrder, so the shard
///    assignment — and every shard's PageFile — is byte-identical for any
///    thread count.
///  - **Build.** Each shard's FlatIndex is bulk-built independently; shard
///    builds fan out over a shared ThreadPool (one serial build per worker at
///    a time), so K shards build in parallel end to end.
///  - **Catalog.** Shard MBRs, tiles, element counts, descriptors and
///    PageFile names persist in a versioned ShardCatalog
///    (docs/file_format.md); Save/Load round-trips the whole store through a
///    directory, including the overlay WAL and the generation sidecar.
///  - **Query.** Range / range-count / seed-scan / sphere queries scatter to
///    every shard whose element bounds intersect the query, run as one
///    multi-index batch on the internal QueryEngine (work-stealing across all
///    per-shard sub-queries, cold cache per sub-query), and gather into a
///    canonically ordered merge.
///
/// **Delta overlay (dynamic updates).** The bulkloaded shards are immutable;
/// Insert/Erase append to an in-memory DeltaLog instead (src/delta/). Every
/// query runs against a *snapshot*: an immutable base (catalog + shard
/// files) plus an OverlayView folding the log window the base has not
/// absorbed — base ids the window touches are masked out, live overlay
/// entries that match are merged in, all in the store's canonical ascending
/// id order (src/core/overlay_merge.h). Insert is an upsert (re-inserting an
/// existing id replaces its box); erasing an absent id is a no-op. The log
/// position is the store's **epoch**: PinSnapshot captures (base, epoch) so
/// any number of threads can query one consistent view — snapshot isolation
/// — while a writer appends and compaction runs. `Compact` folds the window
/// into a fresh parallel bulkload and atomically swaps the base; the
/// compacted store's shard PageFiles are byte-identical to a fresh Build of
/// the merged elements (enforced by tests/snapshot_isolation_test.cc).
///
/// Result contract: `RangeQuery` returns ids sorted ascending. Because the
/// shards partition the elements (each element lives in exactly one shard)
/// and overlay-live ids are masked out of base results before the overlay's
/// matches are appended, the concatenation of per-shard results contains no
/// duplicates, and its sorted form is bit-identical to the sorted result of
/// one unsharded FlatIndex over the merged data — enforced by
/// tests/sharded_store_test.cc and tests/delta_overlay_test.cc. Merged
/// IoStats are the exact per-category sum of the per-shard cold-cache
/// executions plus the snapshot's overlay probes, independent of thread
/// count.
///
/// Thread-safety: store-level queries (RangeQuery .. RunBatch) must be
/// driven from one thread at a time (the engine parallelizes internally).
/// Insert/Erase/PinSnapshot/epoch may be called concurrently with each
/// other, with store-level queries, and with one Compact; Snapshot query
/// methods are fully thread-safe (const, serial, engine-free). The store
/// owns its PageFiles; moving the store is safe, copying is disabled.
class ShardedFlatStore {
 private:
  struct Base;          // one immutable bulkload: catalog + files + indexes
  struct DynamicState;  // the swap-able base handle + the delta log

 public:
  struct Options {
    /// Target shard count. The STR split tiles space with roughly this many
    /// partitions; the actual count (`shard_count()`) can differ slightly
    /// for awkward element/shard ratios. 1 always yields exactly one shard.
    size_t num_shards = 4;
    /// Worker threads for the shard builds and the query engine: 1 (default)
    /// is serial, 0 uses std::thread::hardware_concurrency(). Results and
    /// I/O totals are identical for every value.
    size_t num_threads = 1;
    /// Page size of every shard's PageFile.
    uint32_t page_size = kDefaultPageSize;
    /// Build per-shard subtree-count aggregates
    /// (FlatIndex::BuildOptions::aggregate_counts): RangeCount prunes
    /// covered subtrees via the sidecars, and sub-queries whose whole shard
    /// is covered by the query are answered from the catalog's element
    /// counts without touching the shard at all (overlay windows disable
    /// the shard-level shortcut — overlays must descend exactly). Shard
    /// PageFiles stay byte-identical either way; Save writes one
    /// "<shard>.pgf.agg" sidecar per shard and Load re-attaches them.
    /// Counts and results are bit-identical to the unpruned store
    /// (tests/aggregate_index_test.cc). Off by default.
    bool aggregate_counts = false;
  };

  /// Build timings and per-shard breakdowns.
  struct BuildStats {
    double split_seconds = 0.0;  ///< top-level STR scatter of the elements.
    double build_seconds = 0.0;  ///< parallel per-shard FlatIndex builds.
    size_t shards = 0;
    uint64_t elements = 0;
    std::vector<FlatIndex::BuildStats> per_shard;
  };

  /// Outcome of one Compact call.
  struct CompactionStats {
    uint64_t folded_ops = 0;      ///< log ops folded into the new base.
    uint64_t deleted = 0;         ///< base elements masked out by the fold.
    uint64_t inserted = 0;        ///< live overlay entries merged in.
    uint64_t merged_elements = 0; ///< element count of the new base.
    uint64_t generation = 0;      ///< generation of the new base.
    double seconds = 0.0;         ///< wall time of the whole compaction.
    BuildStats build;             ///< the rebuild's own stats.
  };

  /// A pinned, immutable view of the store at one epoch: the base the store
  /// had when pinned plus the overlay window [base floor, epoch). Queries
  /// against a Snapshot see exactly that state no matter how many
  /// Insert/Erase/Compact calls land afterwards, and are bit-identical to
  /// the store-level entry points at the same epoch. Snapshot query methods
  /// are serial (no engine) and safe to call concurrently from any number
  /// of threads; copying a Snapshot is cheap (shared handles). Holding a
  /// Snapshot keeps its base (and its PageFiles) alive across compactions.
  class Snapshot {
   public:
    Snapshot() = default;

    /// Same contracts as the store-level counterparts, evaluated at the
    /// pinned epoch. `io` additionally receives the overlay probe count.
    std::vector<uint64_t> RangeQuery(const Aabb& query,
                                     IoStats* io = nullptr) const;
    uint64_t RangeCount(const Aabb& query, IoStats* io = nullptr) const;
    std::vector<uint64_t> RangeQueryViaSeedScan(const Aabb& query,
                                                IoStats* io = nullptr) const;
    std::vector<uint64_t> SphereQuery(const Vec3& center, double radius,
                                      IoStats* io = nullptr) const;

    /// The log position this snapshot pins (number of ops it observes).
    uint64_t epoch() const { return epoch_; }
    /// Generation of the pinned base (0 for a default-constructed store).
    uint64_t generation() const;
    /// Live overlay entries merged at this snapshot (0 when none).
    uint64_t overlay_live_count() const;
    size_t shard_count() const;

   private:
    friend class ShardedFlatStore;

    QueryResult Execute(const Query& query) const;

    std::shared_ptr<const Base> base_;
    std::shared_ptr<const OverlayView> overlay_;
    uint64_t epoch_ = 0;
  };

  /// An empty store with no shards (and no engine): every query answers
  /// empty, mirroring an unbuilt FlatIndex — but Insert/Erase work, making
  /// it a valid overlay-only store (queries answer from the overlay alone,
  /// serially). Use Build or Load for a real bulkloaded store.
  ShardedFlatStore();
  ~ShardedFlatStore();
  ShardedFlatStore(ShardedFlatStore&&);
  ShardedFlatStore& operator=(ShardedFlatStore&&);
  ShardedFlatStore(const ShardedFlatStore&) = delete;
  ShardedFlatStore& operator=(const ShardedFlatStore&) = delete;

  /// Splits `elements` into shards and bulk-builds every shard's FlatIndex.
  /// `elements` is consumed. An empty input yields a store with zero shards
  /// whose queries all return empty. The built store has generation 1 and an
  /// empty overlay.
  static ShardedFlatStore Build(std::vector<RTreeEntry> elements,
                                const Options& options,
                                BuildStats* stats = nullptr);

  /// Appends an insert to the delta overlay and returns the new epoch.
  /// Upsert semantics: if `entry.id` already exists (in the base or the
  /// overlay), the new box replaces the old one at this epoch.
  uint64_t Insert(const RTreeEntry& entry);

  /// Appends a delete for `id` and returns the new epoch. Deleting an id
  /// that does not exist is a no-op on query results.
  uint64_t Erase(uint64_t id);

  /// Number of overlay ops appended so far; the epoch a PinSnapshot issued
  /// now would observe. Monotone, never reset (compaction moves the base's
  /// floor forward instead).
  uint64_t epoch() const;

  /// Generation of the current base: 1 after Build, +1 per Compact, 0 for a
  /// default-constructed store (or a legacy FLATSHC1 catalog).
  uint64_t generation() const;

  /// Ops in the current overlay window (epoch() minus the base's floor) —
  /// the amount of work the next Compact would fold.
  uint64_t overlay_op_count() const;

  /// Pins the current (base, epoch) pair. O(window) — the overlay view is
  /// materialized here, once, so the snapshot's queries don't re-fold.
  Snapshot PinSnapshot() const;

  /// Folds the current overlay window into a fresh parallel bulkload of the
  /// merged elements (base minus touched ids plus live overlay entries,
  /// built with the store's own Options) and atomically swaps it in as the
  /// new base, bumping the generation. Pinned Snapshots keep reading the
  /// old base; the log itself is untouched — the new base's floor simply
  /// moves past the folded window. Safe to run from a background thread
  /// concurrently with writers, PinSnapshot and snapshot queries; one
  /// Compact runs at a time (later callers queue on an internal mutex).
  /// The new base's shard PageFiles are byte-identical to
  /// Build(merged elements, options) — the hard invariant
  /// tests/snapshot_isolation_test.cc enforces.
  CompactionStats Compact();

  /// Ids of all elements whose MBR intersects `query`, sorted ascending
  /// (canonical order; see class comment). `io` (optional) receives the
  /// per-category sum of all per-shard cold-cache reads plus overlay
  /// probes. Evaluated at the current epoch (pins a snapshot internally).
  std::vector<uint64_t> RangeQuery(const Aabb& query,
                                   IoStats* io = nullptr) const;

  /// Number of elements RangeQuery would return, without materializing ids.
  /// Reads the same pages as RangeQuery (identical IoStats).
  uint64_t RangeCount(const Aabb& query, IoStats* io = nullptr) const;

  /// RangeQuery answered through each shard's seed tree alone (the seed-scan
  /// ablation plan) — same sorted id set, different page reads.
  std::vector<uint64_t> RangeQueryViaSeedScan(const Aabb& query,
                                              IoStats* io = nullptr) const;

  /// Ids of all elements intersecting the closed ball, sorted ascending.
  std::vector<uint64_t> SphereQuery(const Vec3& center, double radius,
                                    IoStats* io = nullptr) const;

  /// Scatter-gather batch execution: the batch pins ONE snapshot (every
  /// query in it sees the same epoch), every query fans out to its
  /// overlapping shards plus — when an overlay is pinned — its overlay
  /// buckets, all sub-queries run as ONE multi-index engine batch (so the
  /// work-stealing pool balances across queries and shards alike), and
  /// per-query results are gathered in canonical sorted order.
  /// Supported types: kRange, kRangeCount, kSeedScan, kSphere. kKnn throws
  /// std::invalid_argument — a global k-merge needs distance-annotated
  /// results, which the gather does not have yet.
  ///
  /// Fail-soft: a query carrying a QueryControl threads it into every
  /// scattered sub-query under a shared QueryGroup, so one failing shard
  /// (deadline, budget, I/O error) poisons the group and its siblings stop
  /// at their next cancellation point instead of completing work that will
  /// be discarded. The merged QueryResult reports the group's originating
  /// status; its ids are the (sorted) union of whatever the sub-queries
  /// gathered — a valid partial result. Queries without a control are
  /// unaffected, bit-identical to before.
  std::vector<QueryResult> RunBatch(const std::vector<Query>& batch,
                                    BatchStats* stats = nullptr) const;

  /// Persists the store into directory `dir` (created if needed): one
  /// "shard-NNNN.pgf" PageFile per shard, "catalog.flatshard", the overlay
  /// WAL "overlay.flatwal" (the current window, possibly empty) and the
  /// "generation.flatgen" sidecar. Existing files with those names are
  /// overwritten — unless the directory's sidecar records a NEWER
  /// generation than this store's, in which case Save throws
  /// std::runtime_error ("stale generation"): a store must never clobber a
  /// directory that already holds a later compaction of itself.
  void Save(const std::string& dir) const;

  /// Which storage backend a Load opens each shard's page file with.
  enum class LoadBackend {
    /// DiskPageFile (default): pages are served from an mmap'd (fallback:
    /// pread) read-only view of the shard file — real out-of-core
    /// execution, with crawl prefetch hints forwarded to the OS.
    kDisk,
    /// LoadPageFile into in-memory slab arenas (the pre-disk behavior);
    /// page reads are counters only. Byte- and IoStats-identical to kDisk.
    kMemory,
  };

  /// Reopens a store previously written by Save. `num_threads` configures
  /// the reopened store's query engine (1 = serial, 0 = hardware
  /// concurrency). The overlay WAL (if present) is replayed, so queries
  /// behave identically to the saved store's — and identically across
  /// backends. Throws std::runtime_error on missing/corrupt catalog or page
  /// files, and on a stale catalog: one whose generation regressed behind
  /// the directory's "generation.flatgen" sidecar (e.g. a pre-compaction
  /// catalog restored into a post-compaction directory).
  ///
  /// `disk_options` (kDisk backend only; may be null for the defaults)
  /// configures every shard's DiskPageFile — retry policy, prefetch
  /// toucher, and the fault-injection schedule used by the robustness
  /// tests/benches. Must outlive nothing: the options are copied at Open
  /// (though a non-null Options::fault_schedule must outlive the store).
  static ShardedFlatStore Load(const std::string& dir, size_t num_threads = 1,
                               LoadBackend backend = LoadBackend::kDisk,
                               const DiskPageFile::Options* disk_options =
                                   nullptr);

  size_t shard_count() const;
  /// The current base's catalog. The reference stays valid until the next
  /// Compact swaps the base (pin a Snapshot to hold it longer).
  const ShardCatalog& catalog() const;
  const BuildStats& build_stats() const { return build_stats_; }

  /// Direct access to one shard's index and PageStore (bench/test hooks).
  /// A built store's shards are in-memory PageFiles; a loaded store's are
  /// whatever LoadBackend was chosen. Same lifetime caveat as catalog().
  const FlatIndex& shard_index(size_t shard) const;
  const PageStore& shard_file(size_t shard) const;

 private:
  /// Shared scatter-gather core for the single-query entry points.
  QueryResult RunSingle(const Query& query) const;

  static std::shared_ptr<const Base> BuildBase(std::vector<RTreeEntry> elements,
                                               const Options& options,
                                               uint64_t generation,
                                               uint64_t overlay_floor,
                                               BuildStats* stats);

  void AttachEngine(size_t num_threads);

  std::unique_ptr<DynamicState> state_;
  std::unique_ptr<QueryEngine> engine_;  // multi-index, owns pool
  Options options_;
  BuildStats build_stats_;
};

}  // namespace flat

#endif  // FLAT_SHARD_SHARDED_FLAT_STORE_H_
