#include "data/nbody_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "geometry/rng.h"
#include "geometry/shapes.h"

namespace flat {

Dataset GenerateNBody(const NBodyParams& params) {
  Dataset dataset;
  dataset.name = "nbody";
  const double side = params.universe_side;
  dataset.bounds = Aabb(Vec3(0, 0, 0), Vec3(side, side, side));
  dataset.elements.reserve(params.count);

  Rng rng(params.seed);
  std::vector<Vec3> centers;
  centers.reserve(params.clusters);
  for (size_t c = 0; c < params.clusters; ++c) {
    centers.push_back(rng.PointIn(dataset.bounds));
  }

  const double a = params.cluster_scale * side;  // Plummer scale radius
  for (size_t i = 0; i < params.count; ++i) {
    Vec3 position;
    if (centers.empty() || rng.Bernoulli(params.background_fraction)) {
      position = rng.PointIn(dataset.bounds);
    } else {
      const Vec3& center =
          centers[static_cast<size_t>(rng.UniformInt(0, centers.size() - 1))];
      // Plummer radial CDF inversion: r = a / sqrt(u^(-2/3) - 1).
      const double u = rng.Uniform(1e-9, 1.0);
      double r = a / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
      r = std::min(r, 10.0 * a);  // clip the heavy tail
      position = center + rng.UnitVector() * r;
      for (int axis = 0; axis < 3; ++axis) {
        position.At(axis) = std::clamp(position[axis], dataset.bounds.lo()[axis],
                                       dataset.bounds.hi()[axis]);
      }
    }
    Sphere particle{position, params.particle_radius};
    dataset.elements.push_back(
        RTreeEntry{particle.Bounds(), static_cast<uint64_t>(i)});
  }
  return dataset;
}

}  // namespace flat
