#ifndef FLAT_DATA_DATASET_H_
#define FLAT_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/aabb.h"
#include "rtree/entry.h"

namespace flat {

/// A named collection of spatial elements plus its universe bounds. All
/// generators produce this; all indexes consume `elements`.
struct Dataset {
  std::string name;
  std::vector<RTreeEntry> elements;
  /// The data-set space (generation volume). Always encloses all elements.
  Aabb bounds;

  size_t size() const { return elements.size(); }

  /// Exhaustive-scan oracle used by the test suites to validate every index.
  std::vector<uint64_t> BruteForceRange(const Aabb& query) const {
    std::vector<uint64_t> result;
    for (const RTreeEntry& e : elements) {
      if (e.box.Intersects(query)) result.push_back(e.id);
    }
    return result;
  }

  /// Tight bounds of the actual elements (may be smaller than `bounds`).
  Aabb ElementBounds() const {
    Aabb box;
    for (const RTreeEntry& e : elements) box.ExpandToInclude(e.box);
    return box;
  }
};

}  // namespace flat

#endif  // FLAT_DATA_DATASET_H_
