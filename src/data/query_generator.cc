#include "data/query_generator.h"

#include <algorithm>
#include <cmath>

#include "geometry/rng.h"

namespace flat {

std::vector<Aabb> GenerateRangeWorkload(const Aabb& universe,
                                        const RangeWorkloadParams& params) {
  std::vector<Aabb> queries;
  queries.reserve(params.count);
  Rng rng(params.seed);

  const double target_volume = universe.Volume() * params.volume_fraction;
  const Vec3 extent = universe.Extents();

  for (size_t i = 0; i < params.count; ++i) {
    // Random aspect weights, rescaled so the side product hits the target
    // volume; sides are additionally capped by the universe extent.
    Vec3 w(rng.Uniform(params.min_aspect, params.max_aspect),
           rng.Uniform(params.min_aspect, params.max_aspect),
           rng.Uniform(params.min_aspect, params.max_aspect));
    const double scale = std::cbrt(target_volume / (w.x * w.y * w.z));
    Vec3 sides = w * scale;
    sides = Vec3::Min(sides, extent);

    // Place the box uniformly such that it stays inside the universe.
    Vec3 lo;
    for (int axis = 0; axis < 3; ++axis) {
      const double slack = extent[axis] - sides[axis];
      lo.At(axis) = universe.lo()[axis] +
                    (slack > 0.0 ? rng.Uniform(0.0, slack) : 0.0);
    }
    queries.push_back(Aabb(lo, lo + sides));
  }
  return queries;
}

std::vector<Vec3> GeneratePointWorkload(const Aabb& universe, size_t count,
                                        uint64_t seed) {
  std::vector<Vec3> points;
  points.reserve(count);
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    points.push_back(rng.PointIn(universe));
  }
  return points;
}

}  // namespace flat
