#ifndef FLAT_DATA_NBODY_GENERATOR_H_
#define FLAT_DATA_NBODY_GENERATOR_H_

#include <cstdint>

#include "data/dataset.h"

namespace flat {

/// Parameters for the synthetic n-body particle generator.
///
/// Stands in for the Nuage cosmology snapshots the paper indexes in Section
/// VIII (dark matter / gas / stars vertices). Cosmological structure is
/// heavily clustered; we sample Plummer spheres — the standard analytic
/// cluster model in stellar dynamics — placed uniformly in the universe, plus
/// a diffuse background fraction.
struct NBodyParams {
  size_t count = 100000;
  /// Number of Plummer clusters.
  size_t clusters = 64;
  /// Plummer scale radius as a fraction of the universe side.
  double cluster_scale = 0.02;
  /// Fraction of particles placed uniformly instead of in clusters.
  double background_fraction = 0.1;
  /// Universe cube side (model units, e.g. Mpc).
  double universe_side = 1000.0;
  /// Interaction radius giving each vertex a tiny box extent.
  double particle_radius = 0.05;
  uint64_t seed = 23;
};

/// Generates a clustered particle data set; one element per particle.
Dataset GenerateNBody(const NBodyParams& params);

}  // namespace flat

#endif  // FLAT_DATA_NBODY_GENERATOR_H_
