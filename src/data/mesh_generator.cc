#include "data/mesh_generator.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "geometry/rng.h"
#include "geometry/shapes.h"

namespace flat {
namespace {

constexpr double kPi = std::numbers::pi;

// Cheap deterministic multi-octave trig noise in [-1, 1]; good enough to
// break up the regularity of analytic surfaces.
double TrigNoise(double u, double v, const double phase[4]) {
  return 0.5 * std::sin(3.0 * u + phase[0]) * std::cos(2.0 * v + phase[1]) +
         0.3 * std::sin(7.0 * u + phase[2]) * std::sin(5.0 * v + phase[3]) +
         0.2 * std::cos(11.0 * u + phase[0]) * std::sin(13.0 * v + phase[2]);
}

// Emits two triangles for the grid quad (r,c)-(r+1,c+1) given a vertex
// lookup.
template <typename VertexFn>
void EmitQuad(size_t r, size_t c, VertexFn vertex, uint64_t* next_id,
              std::vector<RTreeEntry>* out) {
  const Vec3 v00 = vertex(r, c);
  const Vec3 v01 = vertex(r, c + 1);
  const Vec3 v10 = vertex(r + 1, c);
  const Vec3 v11 = vertex(r + 1, c + 1);
  Triangle t1{v00, v01, v11};
  Triangle t2{v00, v11, v10};
  out->push_back(RTreeEntry{t1.Bounds(), (*next_id)++});
  out->push_back(RTreeEntry{t2.Bounds(), (*next_id)++});
}

// Sphere-like shell: radius modulated by noise; `squash` flattens the z axis
// to make ellipsoids for the statue composite.
void GenerateShell(size_t target_triangles, double radius, Vec3 center,
                   double noise_amplitude, Vec3 squash, Rng* rng,
                   uint64_t* next_id, std::vector<RTreeEntry>* out) {
  // rows x cols grid of quads => 2*rows*cols triangles.
  const size_t rows = std::max<size_t>(
      4, static_cast<size_t>(std::sqrt(target_triangles / 4.0)));
  const size_t cols = 2 * rows;
  double phase[4];
  for (double& p : phase) p = rng->Uniform(0.0, 2.0 * kPi);

  auto vertex = [&](size_t r, size_t c) {
    const double theta = kPi * static_cast<double>(r) / rows;   // [0, pi]
    const double phi = 2.0 * kPi * static_cast<double>(c % cols) / cols;
    const double noise = TrigNoise(theta, phi, phase);
    const double rho = radius * (1.0 + noise_amplitude * noise);
    Vec3 p(rho * std::sin(theta) * std::cos(phi) * squash.x,
           rho * std::sin(theta) * std::sin(phi) * squash.y,
           rho * std::cos(theta) * squash.z);
    return center + p;
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      EmitQuad(r, c, vertex, next_id, out);
    }
  }
}

// Heavily folded heightfield sheet (gyri/sulci): z = folds over (x, y), with
// the fold amplitude large relative to the wavelength so vertical slices
// through the data are concave.
void GenerateFoldedSheet(size_t target_triangles, double scale,
                         double noise_amplitude, Rng* rng, uint64_t* next_id,
                         std::vector<RTreeEntry>* out) {
  const size_t rows = std::max<size_t>(
      4, static_cast<size_t>(std::sqrt(target_triangles / 2.0)));
  const size_t cols = rows;
  double phase[4];
  for (double& p : phase) p = rng->Uniform(0.0, 2.0 * kPi);

  auto vertex = [&](size_t r, size_t c) {
    const double u = static_cast<double>(r) / rows;
    const double v = static_cast<double>(c) / cols;
    const double x = (u - 0.5) * 2.0 * scale;
    const double y = (v - 0.5) * 2.0 * scale;
    // Primary deep folds plus secondary wrinkles.
    const double z =
        scale * 0.35 * std::sin(14.0 * kPi * u + phase[0]) *
            std::cos(10.0 * kPi * v + phase[1]) +
        scale * noise_amplitude * TrigNoise(6.0 * u, 6.0 * v, phase);
    return Vec3(x, y, z);
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      EmitQuad(r, c, vertex, next_id, out);
    }
  }
}

}  // namespace

Dataset GenerateMesh(const MeshParams& params) {
  Dataset dataset;
  Rng rng(params.seed);
  uint64_t next_id = 0;

  switch (params.kind) {
    case MeshKind::kNoisySphere:
      dataset.name = "mesh-sphere";
      GenerateShell(params.target_triangles, params.scale, Vec3(0, 0, 0),
                    params.noise_amplitude, Vec3(1, 1, 1), &rng, &next_id,
                    &dataset.elements);
      break;
    case MeshKind::kFoldedSheet:
      dataset.name = "mesh-brain";
      GenerateFoldedSheet(params.target_triangles, params.scale,
                          params.noise_amplitude, &rng, &next_id,
                          &dataset.elements);
      break;
    case MeshKind::kStatue: {
      dataset.name = "mesh-statue";
      // Body, head and two wing-like shells — a crude angel silhouette with
      // the thin-shell, multi-component geometry of a statue scan.
      const size_t t = params.target_triangles;
      const double s = params.scale;
      GenerateShell(t / 2, s * 0.5, Vec3(0, 0, 0), params.noise_amplitude,
                    Vec3(0.6, 0.6, 1.6), &rng, &next_id, &dataset.elements);
      GenerateShell(t / 6, s * 0.22, Vec3(0, 0, s * 0.95),
                    params.noise_amplitude, Vec3(1, 1, 1), &rng, &next_id,
                    &dataset.elements);
      GenerateShell(t / 6, s * 0.45, Vec3(s * 0.35, 0, s * 0.25),
                    params.noise_amplitude, Vec3(0.9, 0.25, 1.2), &rng,
                    &next_id, &dataset.elements);
      GenerateShell(t / 6, s * 0.45, Vec3(-s * 0.35, 0, s * 0.25),
                    params.noise_amplitude, Vec3(0.9, 0.25, 1.2), &rng,
                    &next_id, &dataset.elements);
      break;
    }
  }

  dataset.bounds = dataset.ElementBounds();
  return dataset;
}

}  // namespace flat
