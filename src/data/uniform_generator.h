#ifndef FLAT_DATA_UNIFORM_GENERATOR_H_
#define FLAT_DATA_UNIFORM_GENERATOR_H_

#include <cstdint>

#include "data/dataset.h"

namespace flat {

/// Controls the shape distribution of uniformly-placed box elements.
enum class BoxShapeMode {
  /// Cubes with side `side_um`.
  kCube,
  /// Per-axis sides drawn uniformly from [min_side_um, max_side_um].
  kUniformSides,
  /// Random aspect ratio, then all axes rescaled so every element has volume
  /// `element_volume_um3` — the paper's aspect-ratio experiment (Section
  /// VII-E.1: lengths "randomly set between 5 and 35 µm", normalized "to
  /// obtain elements of equal volume").
  kFixedVolumeRandomAspect,
};

/// Parameters for the artificial uniform data sets used in the FLAT analysis
/// experiments (Figure 21 and the two in-text sweeps): "10 million elements
/// which are uniformly randomly distributed in a volume of 8 mm³".
struct UniformBoxParams {
  size_t count = 100000;
  /// Side of the cubic universe, in µm (8 mm³ = cube of 2000 µm sides).
  double universe_side_um = 2000.0;
  BoxShapeMode shape = BoxShapeMode::kCube;
  double side_um = 2.0;        // kCube
  double min_side_um = 5.0;    // kUniformSides / kFixedVolumeRandomAspect
  double max_side_um = 35.0;   // kUniformSides / kFixedVolumeRandomAspect
  double element_volume_um3 = 18.0;  // kFixedVolumeRandomAspect
  uint64_t seed = 7;
};

/// Generates uniformly placed boxes; centers are uniform in the universe.
Dataset GenerateUniformBoxes(const UniformBoxParams& params);

}  // namespace flat

#endif  // FLAT_DATA_UNIFORM_GENERATOR_H_
