#include "data/uniform_generator.h"

#include <cmath>

#include "geometry/rng.h"

namespace flat {

Dataset GenerateUniformBoxes(const UniformBoxParams& params) {
  Dataset dataset;
  dataset.name = "uniform";
  const double side = params.universe_side_um;
  dataset.bounds = Aabb(Vec3(0, 0, 0), Vec3(side, side, side));
  dataset.elements.reserve(params.count);

  Rng rng(params.seed);
  for (size_t i = 0; i < params.count; ++i) {
    Vec3 half;
    switch (params.shape) {
      case BoxShapeMode::kCube:
        half = Vec3(params.side_um, params.side_um, params.side_um) * 0.5;
        break;
      case BoxShapeMode::kUniformSides:
        half = Vec3(rng.Uniform(params.min_side_um, params.max_side_um),
                    rng.Uniform(params.min_side_um, params.max_side_um),
                    rng.Uniform(params.min_side_um, params.max_side_um)) *
               0.5;
        break;
      case BoxShapeMode::kFixedVolumeRandomAspect: {
        Vec3 sides(rng.Uniform(params.min_side_um, params.max_side_um),
                   rng.Uniform(params.min_side_um, params.max_side_um),
                   rng.Uniform(params.min_side_um, params.max_side_um));
        // Normalize along a random axis ordering so the product of the sides
        // equals the target volume while keeping the drawn aspect ratio.
        const double volume = sides.x * sides.y * sides.z;
        const double scale = std::cbrt(params.element_volume_um3 / volume);
        half = sides * scale * 0.5;
        break;
      }
    }
    const Vec3 center = rng.PointIn(dataset.bounds);
    dataset.elements.push_back(RTreeEntry{
        Aabb::FromCenterHalfExtents(center, half), static_cast<uint64_t>(i)});
  }
  return dataset;
}

}  // namespace flat
