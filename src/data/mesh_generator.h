#ifndef FLAT_DATA_MESH_GENERATOR_H_
#define FLAT_DATA_MESH_GENERATOR_H_

#include <cstdint>

#include "data/dataset.h"

namespace flat {

/// Kind of synthetic surface mesh.
enum class MeshKind {
  /// A sphere with low-frequency radial noise — generic dense surface.
  kNoisySphere,
  /// A strongly folded sheet: sulci/gyri-like geometry standing in for the
  /// paper's 173 M-triangle brain surface mesh (Section VIII). Folding makes
  /// the data set concave, the property that defeats crawling approaches
  /// like DLS and motivates FLAT's partition-based neighborhood.
  kFoldedSheet,
  /// A composite of deformed ellipsoid shells standing in for the "Lucy"
  /// statue scan (252 M triangles).
  kStatue,
};

/// Parameters for the triangle-mesh generator.
struct MeshParams {
  MeshKind kind = MeshKind::kNoisySphere;
  /// Approximate triangle count; the actual count is the nearest full grid.
  size_t target_triangles = 100000;
  /// Overall model scale (bounding radius / half-extent), in model units.
  double scale = 100.0;
  /// Relative amplitude of the deformation noise in [0, ~0.5].
  double noise_amplitude = 0.15;
  uint64_t seed = 11;
};

/// Generates a triangle surface mesh; one element per triangle.
Dataset GenerateMesh(const MeshParams& params);

}  // namespace flat

#endif  // FLAT_DATA_MESH_GENERATOR_H_
