#include "data/neuron_generator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "geometry/rng.h"
#include "geometry/shapes.h"

namespace flat {
namespace {

// A growth cone: tip of a growing fiber.
struct GrowthCone {
  Vec3 position;
  Vec3 direction;
  double radius;
};

// Keeps the cone inside the tissue volume by reflecting its direction off
// the walls.
void ReflectIntoVolume(const Aabb& volume, GrowthCone* cone) {
  for (int axis = 0; axis < 3; ++axis) {
    if (cone->position[axis] < volume.lo()[axis]) {
      cone->position.At(axis) =
          2.0 * volume.lo()[axis] - cone->position[axis];
      cone->direction.At(axis) = std::abs(cone->direction[axis]);
    } else if (cone->position[axis] > volume.hi()[axis]) {
      cone->position.At(axis) =
          2.0 * volume.hi()[axis] - cone->position[axis];
      cone->direction.At(axis) = -std::abs(cone->direction[axis]);
    }
  }
}

}  // namespace

Dataset GenerateNeurons(const NeuronParams& params) {
  Dataset dataset;
  dataset.name = "neurons";
  const double side = params.volume_side_um;
  dataset.bounds = Aabb(Vec3(0, 0, 0), Vec3(side, side, side));
  if (params.total_elements == 0) return dataset;

  Rng rng(params.seed);
  dataset.elements.reserve(params.total_elements);

  const size_t per_neuron = std::max<size_t>(1, params.segments_per_neuron);
  uint64_t next_id = 0;

  while (dataset.elements.size() < params.total_elements) {
    // One neuron: soma + stems growing as branching persistent random walks.
    Vec3 soma = rng.PointIn(dataset.bounds);
    if (params.layers > 1) {
      // Laminar skew: snap the soma depth to one of the cortical layers.
      const int layer =
          static_cast<int>(rng.UniformInt(0, params.layers - 1));
      const double center = side * (layer + 0.5) / params.layers;
      soma.z = std::clamp(center + rng.Normal(0.0, params.layer_sigma * side),
                          0.0, side);
    }
    std::deque<GrowthCone> cones;
    for (int s = 0; s < params.stems; ++s) {
      double radius = params.initial_radius_um;
      if (params.radius_lognormal_sigma > 0.0) {
        radius = std::clamp(
            params.initial_radius_um *
                std::exp(rng.Normal(0.0, params.radius_lognormal_sigma)),
            params.min_radius_um, params.max_radius_um);
      }
      cones.push_back(GrowthCone{soma, rng.UnitVector(), radius});
    }

    size_t produced = 0;
    // Round-robin growth over the active cones keeps the arbor balanced.
    while (produced < per_neuron &&
           dataset.elements.size() < params.total_elements &&
           !cones.empty()) {
      GrowthCone cone = cones.front();
      cones.pop_front();

      const double length =
          std::max(0.25 * params.segment_length_um,
                   rng.Normal(params.segment_length_um,
                              0.25 * params.segment_length_um));
      const Vec3 wobble = rng.UnitVector();
      cone.direction = (cone.direction * params.direction_persistence +
                        wobble * (1.0 - params.direction_persistence))
                           .Normalized();

      const Vec3 start = cone.position;
      GrowthCone next = cone;
      next.position = start + cone.direction * length;
      ReflectIntoVolume(dataset.bounds, &next);
      next.radius = std::max(params.min_radius_um, cone.radius * 0.995);

      Cylinder segment{start, next.position, cone.radius, next.radius};
      dataset.elements.push_back(RTreeEntry{segment.Bounds(), next_id++});
      ++produced;

      cones.push_back(next);
      if (rng.Bernoulli(params.branch_probability) &&
          cones.size() < per_neuron) {
        GrowthCone branch = next;
        branch.direction =
            (branch.direction * 0.5 + rng.UnitVector() * 0.5).Normalized();
        branch.radius = std::max(params.min_radius_um, branch.radius * 0.7);
        cones.push_back(branch);
      }
    }
  }
  return dataset;
}

}  // namespace flat
