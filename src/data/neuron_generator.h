#ifndef FLAT_DATA_NEURON_GENERATOR_H_
#define FLAT_DATA_NEURON_GENERATOR_H_

#include <cstdint>

#include "data/dataset.h"

namespace flat {

/// Parameters for the synthetic microcircuit generator.
///
/// The paper indexes Blue Brain Project microcircuits: thousands of neurons
/// whose axon/dendrite branches are modelled as cylinders, densely packed in
/// a fixed tissue volume (Section VII-A: "a small part of the brain with
/// cylinders as spatial elements ... 450 million cylinders" in 285 µm³ of
/// tissue). That data is proprietary, so we grow morphologies procedurally:
/// each neuron is a soma position plus several stems performing persistent
/// random walks that branch stochastically and taper in radius — producing
/// elongated, spatially-coherent, overlapping fibers with the density
/// characteristics the experiments depend on. Density sweeps add neurons at
/// constant volume, exactly like the paper's methodology.
///
/// Scaling note: the defaults shrink the paper's setup by 1000x in element
/// count *and* tissue volume (285 µm side -> 28.5 µm side) while keeping the
/// cylinders at realistic absolute size. This preserves the quantity the
/// paper's experiments actually stress — MBR *coverage* (how many element
/// MBRs overlap a random point), which drives R-Tree overlap — across the
/// scale-down. Shrinking only the count would make the data ~1000x sparser
/// and hide the overlap pathology entirely.
struct NeuronParams {
  /// Total number of cylinders to generate (across all neurons).
  size_t total_elements = 100000;
  /// Cylinders per neuron; the neuron count is derived.
  size_t segments_per_neuron = 1000;
  /// Side of the cubic tissue volume, in µm.
  double volume_side_um = 28.5;
  /// Mean cylinder length, in µm.
  double segment_length_um = 0.6;
  /// Median radius at the stem root; tapers toward branch tips.
  double initial_radius_um = 0.2;
  double min_radius_um = 0.04;
  /// Log-normal sigma of the per-stem root radius. Real morphologies mix
  /// thick proximal dendrites with thin distal axons; the resulting
  /// element-size heterogeneity is one of the drivers of R-Tree MBR
  /// stretching on brain data. 0 disables the variation.
  double radius_lognormal_sigma = 0.5;
  double max_radius_um = 1.0;
  /// Probability per step that a growth cone forks.
  double branch_probability = 0.03;
  /// Direction persistence in [0,1]: 1 = straight fibers, 0 = pure random
  /// walk.
  double direction_persistence = 0.85;
  /// Initial stems (dendrites + axon) per soma.
  int stems = 5;
  /// Number of cortical layers: soma depths are drawn from `layers` Gaussian
  /// laminae instead of uniformly, reproducing the laminar density skew of
  /// cortical tissue (somas cluster in layers; fibers cross the sparse gaps
  /// between them). 0 or 1 disables layering.
  int layers = 5;
  /// Standard deviation of a lamina as a fraction of the volume side.
  double layer_sigma = 0.04;
  uint64_t seed = 42;
};

/// Generates a synthetic microcircuit. Element ids are consecutive from 0.
Dataset GenerateNeurons(const NeuronParams& params);

}  // namespace flat

#endif  // FLAT_DATA_NEURON_GENERATOR_H_
