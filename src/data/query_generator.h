#ifndef FLAT_DATA_QUERY_GENERATOR_H_
#define FLAT_DATA_QUERY_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "geometry/aabb.h"
#include "geometry/vec3.h"

namespace flat {

/// Parameters for a range-query workload.
///
/// The paper's micro-benchmarks (Section VII-A) execute 200 range queries of
/// a fixed *volume fraction* of the data-set space — 5e-7 % for the
/// structural-neighborhood (SN) benchmark, 5e-4 % for the large-spatial-
/// subvolume (LSS) benchmark — with "location and aspect ratio ... chosen at
/// random".
struct RangeWorkloadParams {
  size_t count = 200;
  /// Query volume as a *fraction* of the universe volume (the paper quotes
  /// percentages: 5e-7 % == fraction 5e-9).
  double volume_fraction = 5e-9;
  /// Aspect ratios are drawn per axis in [min_aspect, max_aspect], then the
  /// box is scaled to the target volume.
  double min_aspect = 0.25;
  double max_aspect = 4.0;
  uint64_t seed = 1234;
};

/// Generates `params.count` random boxes of fixed volume inside `universe`.
/// Queries are clamped so they never extend past the universe.
std::vector<Aabb> GenerateRangeWorkload(const Aabb& universe,
                                        const RangeWorkloadParams& params);

/// Generates uniformly random point-query locations inside `universe`
/// (Figure 2's workload).
std::vector<Vec3> GeneratePointWorkload(const Aabb& universe, size_t count,
                                        uint64_t seed);

}  // namespace flat

#endif  // FLAT_DATA_QUERY_GENERATOR_H_
