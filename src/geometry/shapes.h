#ifndef FLAT_GEOMETRY_SHAPES_H_
#define FLAT_GEOMETRY_SHAPES_H_

#include "geometry/aabb.h"
#include "geometry/vec3.h"

namespace flat {

/// A truncated cone ("cylinder" in the paper): the primitive used to model
/// neuron branches. Described by two end points and a radius at each end
/// (Section VII-A: "Each cylinder is described by two end points and a radius
/// for each endpoint").
struct Cylinder {
  Vec3 a;
  Vec3 b;
  double radius_a = 0.0;
  double radius_b = 0.0;

  /// Conservative axis-aligned bounding box: the union of the two end-cap
  /// spheres' boxes. Exact for the purposes of MBR-based indexing (the paper
  /// itself only ever stores and tests MBRs).
  Aabb Bounds() const;

  /// Length of the axis segment.
  double AxisLength() const { return (b - a).Norm(); }

  /// Volume of the truncated cone.
  double Volume() const;
};

/// A 3-D surface-mesh triangle (used by the brain-mesh and statue data sets,
/// Section VIII: "9 floats/doubles suffice" per mesh triangle).
struct Triangle {
  Vec3 a;
  Vec3 b;
  Vec3 c;

  Aabb Bounds() const;

  double Area() const;

  Vec3 Centroid() const { return (a + b + c) / 3.0; }
};

/// A sphere; used by the n-body particle data sets where vertices carry a
/// tiny interaction radius.
struct Sphere {
  Vec3 center;
  double radius = 0.0;

  Aabb Bounds() const {
    Vec3 r(radius, radius, radius);
    return Aabb(center - r, center + r);
  }

  double Volume() const;
};

}  // namespace flat

#endif  // FLAT_GEOMETRY_SHAPES_H_
