#include "geometry/shapes.h"

#include <cmath>
#include <numbers>

namespace flat {

Aabb Cylinder::Bounds() const {
  Vec3 ra(radius_a, radius_a, radius_a);
  Vec3 rb(radius_b, radius_b, radius_b);
  Aabb box(a - ra, a + ra);
  box.ExpandToInclude(Aabb(b - rb, b + rb));
  return box;
}

double Cylinder::Volume() const {
  // Truncated cone: V = pi*h/3 * (r1^2 + r1*r2 + r2^2).
  double h = AxisLength();
  return std::numbers::pi * h / 3.0 *
         (radius_a * radius_a + radius_a * radius_b + radius_b * radius_b);
}

Aabb Triangle::Bounds() const {
  Aabb box = Aabb::FromCorners(a, b);
  box.ExpandToInclude(c);
  return box;
}

double Triangle::Area() const {
  return 0.5 * (b - a).Cross(c - a).Norm();
}

double Sphere::Volume() const {
  return 4.0 / 3.0 * std::numbers::pi * radius * radius * radius;
}

}  // namespace flat
