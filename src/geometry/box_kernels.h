#ifndef FLAT_GEOMETRY_BOX_KERNELS_H_
#define FLAT_GEOMETRY_BOX_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/aabb.h"
#include "geometry/vec3.h"

namespace flat {

/// Vectorized MBR gate kernels for the crawl and seed hot paths.
///
/// Every kernel here exists in two forms: a branch-free scalar reference
/// (`...Scalar`, always compiled) and a dispatching entry point that runs
/// the widest instruction set selected at *compile time* — AVX2 when the
/// kernel translation unit is built with `-mavx2` (the default via the
/// FLAT_SIMD_AVX2 CMake option), SSE2 on any other x86-64 build, and the
/// scalar reference elsewhere. The SIMD paths are bit-for-bit equivalent to
/// the scalar reference — same comparison predicates, same IEEE operation
/// order in the sphere distance, no FMA contraction (the TU is built with
/// -ffp-contract=off) — which tests/box_kernels_test.cc enforces over
/// adversarial box populations. Queries therefore return identical results
/// whichever path is compiled in.
///
/// Which instruction set the dispatching kernels were compiled for:
/// "avx2", "sse2", or "scalar". Benchmarks record it in their JSON output.
const char* BoxKernelIsa();

/// Scalar reference for IntersectsBatch (see aabb.h): tests `count` boxes
/// laid out `stride` bytes apart against `query`, writing 0/1 into `hits`.
/// Matches Aabb::Intersects exactly for a non-empty `query`, including the
/// "empty boxes intersect nothing" rule.
void IntersectsBatchScalar(const char* boxes, size_t stride, size_t count,
                           const Aabb& query, uint8_t* hits);

/// Structure-of-arrays view of a node page's entry MBRs: six contiguous
/// double lanes (lo.x of every entry, then lo.y, ... then hi.z), padded to a
/// multiple of four entries with canonical empty boxes so the vector kernels
/// need no scalar tail. `Assign` transposes the strided AoS page layout
/// (e.g. the RTreeEntry slots of an object page) into the lanes; the buffer
/// is reusable across pages and grows to the largest fanout seen.
class SoaBoxes {
 public:
  /// Transposes `count` boxes laid out `stride` bytes apart (Aabb object
  /// layout: lo.x lo.y lo.z hi.x hi.y hi.z as doubles) into the six lanes.
  void Assign(const char* boxes, size_t stride, size_t count);

  size_t count() const { return count_; }
  /// count() rounded up to a multiple of the vector width; the kernels
  /// write this many hit bytes (padding lanes always report 0).
  size_t padded_count() const { return padded_; }

  /// Lane base pointers: axis 0..2, lo or hi.
  const double* lo(int axis) const { return lanes_.data() + axis * padded_; }
  const double* hi(int axis) const {
    return lanes_.data() + (3 + axis) * padded_;
  }

 private:
  size_t count_ = 0;
  size_t padded_ = 0;
  std::vector<double> lanes_;  // 6 segments of padded_ doubles
};

/// Gates every box of `soa` against `query`: hits[i] = 1 iff box i is
/// non-empty and intersects (Aabb::Intersects semantics). Writes
/// soa.padded_count() bytes.
void IntersectsSoa(const SoaBoxes& soa, const Aabb& query, uint8_t* hits);
void IntersectsSoaScalar(const SoaBoxes& soa, const Aabb& query,
                         uint8_t* hits);

/// Gates every box of `soa` against the closed ball around `center`:
/// hits[i] = 1 iff box i is non-empty and its min distance to `center` is
/// <= radius — exactly Aabb::IntersectsSphere (same operation order:
/// gap = max(max(lo-p, p-hi), 0) per axis, d2 = ((gx*gx + gy*gy) + gz*gz),
/// d2 <= radius*radius). Writes soa.padded_count() bytes.
void SphereGateSoa(const SoaBoxes& soa, const Vec3& center, double radius,
                   uint8_t* hits);
void SphereGateSoaScalar(const SoaBoxes& soa, const Vec3& center,
                         double radius, uint8_t* hits);

}  // namespace flat

#endif  // FLAT_GEOMETRY_BOX_KERNELS_H_
