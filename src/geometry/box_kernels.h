#ifndef FLAT_GEOMETRY_BOX_KERNELS_H_
#define FLAT_GEOMETRY_BOX_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/aabb.h"
#include "geometry/vec3.h"

namespace flat {

/// Vectorized MBR gate kernels for the crawl and seed hot paths.
///
/// Every kernel here exists in two forms: a branch-free scalar reference
/// (`...Scalar`, always compiled) and a dispatching entry point that runs
/// the widest instruction set selected at *compile time* — AVX2 when the
/// kernel translation unit is built with `-mavx2` (the default via the
/// FLAT_SIMD_AVX2 CMake option), SSE2 on any other x86-64 build, and the
/// scalar reference elsewhere. The SIMD paths are bit-for-bit equivalent to
/// the scalar reference — same comparison predicates, same IEEE operation
/// order in the sphere distance, no FMA contraction (the TU is built with
/// -ffp-contract=off) — which tests/box_kernels_test.cc enforces over
/// adversarial box populations. Queries therefore return identical results
/// whichever path is compiled in.
///
/// Which instruction set the dispatching kernels were compiled for:
/// "avx2", "sse2", or "scalar". Benchmarks record it in their JSON output.
const char* BoxKernelIsa();

/// Scalar reference for IntersectsBatch (see aabb.h): tests `count` boxes
/// laid out `stride` bytes apart against `query`, writing 0/1 into `hits`.
/// Matches Aabb::Intersects exactly for a non-empty `query`, including the
/// "empty boxes intersect nothing" rule.
void IntersectsBatchScalar(const char* boxes, size_t stride, size_t count,
                           const Aabb& query, uint8_t* hits);

/// Structure-of-arrays view of a node page's entry MBRs: six contiguous
/// double lanes (lo.x of every entry, then lo.y, ... then hi.z), padded to a
/// multiple of four entries with canonical empty boxes so the vector kernels
/// need no scalar tail. `Assign` transposes the strided AoS page layout
/// (e.g. the RTreeEntry slots of an object page) into the lanes; the buffer
/// is reusable across pages and grows to the largest fanout seen.
class SoaBoxes {
 public:
  /// Transposes `count` boxes laid out `stride` bytes apart (Aabb object
  /// layout: lo.x lo.y lo.z hi.x hi.y hi.z as doubles) into the six lanes.
  void Assign(const char* boxes, size_t stride, size_t count);

  size_t count() const { return count_; }
  /// count() rounded up to a multiple of the vector width; the kernels
  /// write this many hit bytes (padding lanes always report 0).
  size_t padded_count() const { return padded_; }

  /// Lane base pointers: axis 0..2, lo or hi.
  const double* lo(int axis) const { return lanes_.data() + axis * padded_; }
  const double* hi(int axis) const {
    return lanes_.data() + (3 + axis) * padded_;
  }

 private:
  size_t count_ = 0;
  size_t padded_ = 0;
  std::vector<double> lanes_;  // 6 segments of padded_ doubles
};

/// Gates every box of `soa` against `query`: hits[i] = 1 iff box i is
/// non-empty and intersects (Aabb::Intersects semantics). Writes
/// soa.padded_count() bytes.
void IntersectsSoa(const SoaBoxes& soa, const Aabb& query, uint8_t* hits);
void IntersectsSoaScalar(const SoaBoxes& soa, const Aabb& query,
                         uint8_t* hits);

/// --- Containment ("covered") gates for aggregate pruning ---
///
/// Counterparts of the intersection gates above with the predicate flipped
/// from "overlaps the query" to "lies fully inside the query":
/// covered[i] = 1 iff box i is non-empty and query.Contains(box i) (per
/// Aabb::Contains on a non-empty box: lo >= query.lo and hi <= query.hi on
/// every axis). An empty or NaN query covers nothing; empty boxes report 0
/// (a covered verdict licenses skipping work for the box's *contents*, and
/// an empty box has none worth certifying). The aggregate-pruned descent
/// (core/flat_index.cc) adds a covered child's stored subtree count without
/// descending, so a false positive would miscount — these gates are exact
/// for exact boxes and conservative for quantized ones (may under-trigger,
/// never over-trigger). SIMD forms are bit-for-bit identical to the scalar
/// references, like every kernel in this header.

/// Scalar reference: tests `count` boxes laid out `stride` bytes apart
/// (Aabb object layout) against `query`, writing 0/1 into `covered`.
void ContainsBatchScalar(const char* boxes, size_t stride, size_t count,
                         const Aabb& query, uint8_t* covered);
void ContainsBatch(const char* boxes, size_t stride, size_t count,
                   const Aabb& query, uint8_t* covered);

/// SoA form over the same lanes as IntersectsSoa. Writes
/// soa.padded_count() bytes; padding lanes (canonical empty boxes) are 0.
void ContainsSoa(const SoaBoxes& soa, const Aabb& query, uint8_t* covered);
void ContainsSoaScalar(const SoaBoxes& soa, const Aabb& query,
                       uint8_t* covered);

/// Gates every box of `soa` against the closed ball around `center`:
/// hits[i] = 1 iff box i is non-empty and its min distance to `center` is
/// <= radius — exactly Aabb::IntersectsSphere (same operation order:
/// gap = max(max(lo-p, p-hi), 0) per axis, d2 = ((gx*gx + gy*gy) + gz*gz),
/// d2 <= radius*radius). Writes soa.padded_count() bytes.
void SphereGateSoa(const SoaBoxes& soa, const Vec3& center, double radius,
                   uint8_t* hits);
void SphereGateSoaScalar(const SoaBoxes& soa, const Vec3& center,
                         double radius, uint8_t* hits);

/// --- Quantized (16-bit fixed-point) gates for compressed node pages ---
///
/// Compressed interior pages (rtree/node.h, docs/file_format.md §2.1) store
/// the node's exact box once and each child MBR as six u16 cell indexes on a
/// 65536-cell grid spanning that box. Quantization always rounds *outward*
/// (lo floors, hi ceils, each widened by one extra cell), so a quantized box
/// contains its exact box and an integer gate can produce false positives
/// but never a false negative: a spurious hit descends one child too many
/// and is resolved by the exact gates at the seed-leaf / object level, while
/// a miss would lose results and is impossible by construction.
///
/// The extra one-cell widening is what makes the scheme robust: the cell
/// function floor((x - origin) * inv) is evaluated on the write side (page
/// packing) and the read side (query gating). Both call the functions below
/// — compiled once, in this TU, with -ffp-contract=off — so they agree
/// bit-for-bit; the widening additionally absorbs a one-cell discrepancy
/// should the two sides ever be compiled apart. Cost: ~3e-5 of the node
/// extent of slack per side, far below any realistic MBR tolerance.

/// Highest cell index on the quantization grid (cells per axis - 1).
inline constexpr uint32_t kQuantMaxCell = 65535;

/// The grid spanned by a node's exact box: per-axis origin and inverse cell
/// width (kQuantMaxCell / extent; 0 on degenerate axes, where every
/// coordinate lands in cell 0 and every quantized range overlaps — still
/// conservative). `never` is set for the canonical empty box: nothing can be
/// quantized into an empty grid, so gates report no hits.
struct QuantGrid {
  double origin[3] = {0.0, 0.0, 0.0};
  double inv[3] = {0.0, 0.0, 0.0};
  bool never = false;
};

QuantGrid MakeQuantGrid(const Aabb& node_box);

/// Cell index of coordinate `x` on `axis`, rounded down (Down) or up (Up) by
/// one extra cell beyond the containing cell and clamped to
/// [0, kQuantMaxCell]. Down is used for lo corners, Up for hi corners —
/// outward on both the write and the read side.
uint16_t QuantizeDown(const QuantGrid& grid, int axis, double x);
uint16_t QuantizeUp(const QuantGrid& grid, int axis, double x);

/// A query box quantized once per node into that node's grid; the per-child
/// gate is then six u16 compares. `never` short-circuits to zero hits: the
/// query or the node box is empty (empty boxes intersect nothing).
struct QuantizedQueryBox {
  uint16_t lo[3] = {0, 0, 0};
  uint16_t hi[3] = {0, 0, 0};
  bool never = false;
};

QuantizedQueryBox QuantizeQuery(const Aabb& node_box, const Aabb& query);

/// Structure-of-arrays view of a compressed node's quantized child MBRs: six
/// contiguous u16 lanes (lo.x of every child, then lo.y, ... then hi.z),
/// padded to a multiple of sixteen children so the widest vector kernel
/// needs no scalar tail. The buffer is reusable across pages (CrawlScratch
/// keeps one per thread) and grows to the largest fanout seen.
class QuantizedSoa {
 public:
  /// Transposes `count` quantized slots laid out `stride` bytes apart into
  /// the lanes. Each slot must begin with six u16s in the order
  /// lo.x lo.y lo.z hi.x hi.y hi.z (the QuantizedSlot layout of
  /// rtree/entry.h; trailing slot bytes — the child PageId — are ignored).
  void Assign(const char* slots, size_t stride, size_t count);

  size_t count() const { return count_; }
  /// count() rounded up to a multiple of sixteen; the kernels write this
  /// many hit bytes (padding lanes always report 0).
  size_t padded_count() const { return padded_; }

  /// Lane base pointers: axis 0..2, lo or hi.
  const uint16_t* lo(int axis) const { return lanes_.data() + axis * padded_; }
  const uint16_t* hi(int axis) const {
    return lanes_.data() + (3 + axis) * padded_;
  }

 private:
  size_t count_ = 0;
  size_t padded_ = 0;
  std::vector<uint16_t> lanes_;  // 6 segments of padded_ u16s
};

/// Gates every quantized child of `soa` against `query`:
/// hits[i] = 1 iff ranges overlap on all three axes
/// (lo[a] <= query.hi[a] && hi[a] >= query.lo[a]), or 0 everywhere when
/// query.never is set. Writes soa.padded_count() bytes; padding lanes are 0.
/// The dispatching form and the scalar reference are bit-for-bit identical
/// (pure integer compares — no rounding modes to diverge on).
void IntersectsQuantizedSoa(const QuantizedSoa& soa,
                            const QuantizedQueryBox& query, uint8_t* hits);
void IntersectsQuantizedSoaScalar(const QuantizedSoa& soa,
                                  const QuantizedQueryBox& query,
                                  uint8_t* hits);

/// Containment thresholds for quantized children: a slot is certified
/// covered iff slot.lo[a] >= lo[a] and slot.hi[a] <= hi[a] on every axis.
/// The thresholds are computed against the node's *conservative
/// dequantization* (CompressedNodeView::ChildBoxAt — the outward-widened box
/// guaranteed to contain the child's exact MBR): lo[a] is the smallest cell
/// whose dequantized lo corner is >= query.lo, hi[a] the largest cell whose
/// dequantized hi corner is <= query.hi. Certified therefore implies
/// dequantized box ⊆ query ⊆-transitively exact MBR ⊆ query — exactness can
/// only be *under*-reported (a covered child may fail certification near the
/// query faces and be descended exactly instead; it can never be certified
/// spuriously). `never` is set when no cell can qualify: empty query, empty
/// or non-finite node box.
struct QuantizedCoverBox {
  uint16_t lo[3] = {0, 0, 0};
  uint16_t hi[3] = {0, 0, 0};
  bool never = false;
};

QuantizedCoverBox QuantizeCoverQuery(const Aabb& node_box, const Aabb& query);

/// Certifies every quantized child of `soa` against `cover`:
/// covered[i] = 1 iff cover.lo[a] <= slot.lo[a] and slot.hi[a] <= cover.hi[a]
/// on all three axes, or 0 everywhere when cover.never is set. Writes
/// soa.padded_count() bytes; padding lanes are 0. The dispatching form and
/// the scalar reference are bit-for-bit identical (pure integer compares).
void ContainsQuantizedSoa(const QuantizedSoa& soa,
                          const QuantizedCoverBox& cover, uint8_t* covered);
void ContainsQuantizedSoaScalar(const QuantizedSoa& soa,
                                const QuantizedCoverBox& cover,
                                uint8_t* covered);

}  // namespace flat

#endif  // FLAT_GEOMETRY_BOX_KERNELS_H_
