#ifndef FLAT_GEOMETRY_VEC3_H_
#define FLAT_GEOMETRY_VEC3_H_

#include <algorithm>
#include <cmath>
#include <ostream>

namespace flat {

/// A point/vector in 3-D space. All coordinates are double precision, matching
/// the paper's experimental setup ("double precision floating point numbers to
/// represent the coordinates of the MBRs").
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double px, double py, double pz) : x(px), y(py), z(pz) {}

  /// Component access by axis index (0 = x, 1 = y, 2 = z).
  constexpr double operator[](int axis) const {
    return axis == 0 ? x : (axis == 1 ? y : z);
  }

  /// Mutable component access by axis index.
  double& At(int axis) { return axis == 0 ? x : (axis == 1 ? y : z); }

  constexpr Vec3 operator+(const Vec3& o) const {
    return Vec3(x + o.x, y + o.y, z + o.z);
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return Vec3(x - o.x, y - o.y, z - o.z);
  }
  constexpr Vec3 operator*(double s) const { return Vec3(x * s, y * s, z * s); }
  constexpr Vec3 operator/(double s) const { return Vec3(x / s, y / s, z / s); }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
  constexpr bool operator!=(const Vec3& o) const { return !(*this == o); }

  constexpr double Dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }

  constexpr Vec3 Cross(const Vec3& o) const {
    return Vec3(y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x);
  }

  double Norm() const { return std::sqrt(Dot(*this)); }

  constexpr double SquaredNorm() const { return Dot(*this); }

  /// Returns this vector scaled to unit length; the zero vector is returned
  /// unchanged.
  Vec3 Normalized() const {
    double n = Norm();
    return n > 0.0 ? (*this) / n : *this;
  }

  static constexpr Vec3 Min(const Vec3& a, const Vec3& b) {
    return Vec3(std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z));
  }
  static constexpr Vec3 Max(const Vec3& a, const Vec3& b) {
    return Vec3(std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z));
  }
};

inline constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

}  // namespace flat

#endif  // FLAT_GEOMETRY_VEC3_H_
