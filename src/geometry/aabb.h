#ifndef FLAT_GEOMETRY_AABB_H_
#define FLAT_GEOMETRY_AABB_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <ostream>

#include "geometry/vec3.h"

namespace flat {

/// Axis-aligned minimum bounding rectangle (the paper's "MBR") in 3-D.
///
/// An Aabb is *empty* when lo > hi on any axis; `Aabb()` constructs the
/// canonical empty box which behaves as the identity for `Union` and
/// intersects nothing. Degenerate (zero-extent) boxes are valid and represent
/// points or axis-aligned segments/rectangles.
class Aabb {
 public:
  /// Constructs the canonical empty box.
  constexpr Aabb()
      : lo_(std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()),
        hi_(-std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()) {}

  constexpr Aabb(const Vec3& lo, const Vec3& hi) : lo_(lo), hi_(hi) {}

  /// The box covering exactly one point.
  static constexpr Aabb FromPoint(const Vec3& p) { return Aabb(p, p); }

  /// The box centered at `c` with half-extent `h` on each axis.
  static constexpr Aabb FromCenterHalfExtents(const Vec3& c, const Vec3& h) {
    return Aabb(c - h, c + h);
  }

  /// The box covering both corner points regardless of their ordering.
  static constexpr Aabb FromCorners(const Vec3& a, const Vec3& b) {
    return Aabb(Vec3::Min(a, b), Vec3::Max(a, b));
  }

  constexpr const Vec3& lo() const { return lo_; }
  constexpr const Vec3& hi() const { return hi_; }

  constexpr bool IsEmpty() const {
    return lo_.x > hi_.x || lo_.y > hi_.y || lo_.z > hi_.z;
  }

  constexpr Vec3 Center() const { return (lo_ + hi_) * 0.5; }

  /// Per-axis extent; zero vector for empty boxes.
  constexpr Vec3 Extents() const {
    return IsEmpty() ? Vec3() : hi_ - lo_;
  }

  constexpr double Volume() const {
    if (IsEmpty()) return 0.0;
    Vec3 e = hi_ - lo_;
    return e.x * e.y * e.z;
  }

  constexpr double SurfaceArea() const {
    if (IsEmpty()) return 0.0;
    Vec3 e = hi_ - lo_;
    return 2.0 * (e.x * e.y + e.y * e.z + e.z * e.x);
  }

  /// Sum of the three edge lengths ("margin" in R*-tree terminology).
  constexpr double Margin() const {
    if (IsEmpty()) return 0.0;
    Vec3 e = hi_ - lo_;
    return e.x + e.y + e.z;
  }

  /// Index of the axis with the largest extent (ties favor lower axes).
  int LongestAxis() const {
    Vec3 e = Extents();
    if (e.x >= e.y && e.x >= e.z) return 0;
    return e.y >= e.z ? 1 : 2;
  }

  constexpr bool Contains(const Vec3& p) const {
    return p.x >= lo_.x && p.x <= hi_.x && p.y >= lo_.y && p.y <= hi_.y &&
           p.z >= lo_.z && p.z <= hi_.z;
  }

  /// True iff `o` lies entirely inside this box. Every box contains the empty
  /// box.
  constexpr bool Contains(const Aabb& o) const {
    if (o.IsEmpty()) return true;
    if (IsEmpty()) return false;
    return o.lo_.x >= lo_.x && o.hi_.x <= hi_.x && o.lo_.y >= lo_.y &&
           o.hi_.y <= hi_.y && o.lo_.z >= lo_.z && o.hi_.z <= hi_.z;
  }

  /// Closed-interval intersection test: boxes sharing only a face, edge or
  /// corner *do* intersect. This is the adjacency notion FLAT's neighbor
  /// computation relies on (partitions touching along a face are neighbors).
  constexpr bool Intersects(const Aabb& o) const {
    if (IsEmpty() || o.IsEmpty()) return false;
    return lo_.x <= o.hi_.x && hi_.x >= o.lo_.x && lo_.y <= o.hi_.y &&
           hi_.y >= o.lo_.y && lo_.z <= o.hi_.z && hi_.z >= o.lo_.z;
  }

  /// Grows this box to cover `p`.
  void ExpandToInclude(const Vec3& p) {
    lo_ = Vec3::Min(lo_, p);
    hi_ = Vec3::Max(hi_, p);
  }

  /// Grows this box to cover `o` ("stretching" in Algorithm 1).
  void ExpandToInclude(const Aabb& o) {
    if (o.IsEmpty()) return;
    lo_ = Vec3::Min(lo_, o.lo_);
    hi_ = Vec3::Max(hi_, o.hi_);
  }

  /// Returns this box expanded by `delta` on every side.
  Aabb Inflated(double delta) const {
    if (IsEmpty()) return *this;
    Vec3 d(delta, delta, delta);
    return Aabb(lo_ - d, hi_ + d);
  }

  static Aabb Union(const Aabb& a, const Aabb& b) {
    Aabb r = a;
    r.ExpandToInclude(b);
    return r;
  }

  /// Geometric intersection; empty if the boxes do not overlap.
  static Aabb Intersection(const Aabb& a, const Aabb& b) {
    if (!a.Intersects(b)) return Aabb();
    return Aabb(Vec3::Max(a.lo_, b.lo_), Vec3::Min(a.hi_, b.hi_));
  }

  /// Extra volume `Union(*this, o)` has over this box — the R-tree insertion
  /// "enlargement" heuristic.
  double Enlargement(const Aabb& o) const {
    return Union(*this, o).Volume() - Volume();
  }

  /// Squared Euclidean distance from `p` to the closest point of this box
  /// (zero when `p` is inside). Infinity for the empty box.
  double DistanceSquaredTo(const Vec3& p) const {
    if (IsEmpty()) return std::numeric_limits<double>::infinity();
    double d2 = 0.0;
    for (int axis = 0; axis < 3; ++axis) {
      const double below = lo_[axis] - p[axis];
      const double above = p[axis] - hi_[axis];
      const double gap = std::max({below, above, 0.0});
      d2 += gap * gap;
    }
    return d2;
  }

  /// True iff this box intersects the closed ball around `center`.
  bool IntersectsSphere(const Vec3& center, double radius) const {
    return DistanceSquaredTo(center) <= radius * radius;
  }

  /// Volume of overlap with `o` (zero when disjoint).
  double OverlapVolume(const Aabb& o) const {
    return Intersection(*this, o).Volume();
  }

  constexpr bool operator==(const Aabb& o) const {
    if (IsEmpty() && o.IsEmpty()) return true;
    return lo_ == o.lo_ && hi_ == o.hi_;
  }
  constexpr bool operator!=(const Aabb& o) const { return !(*this == o); }

 private:
  Vec3 lo_;
  Vec3 hi_;
};

inline std::ostream& operator<<(std::ostream& os, const Aabb& b) {
  return os << "[" << b.lo() << " .. " << b.hi() << "]";
}

/// Batched intersection gate for contiguous record MBRs: tests `count` boxes
/// laid out `stride` bytes apart starting at `boxes`, each in the Aabb object
/// layout (lo.x lo.y lo.z hi.x hi.y hi.z as doubles — e.g. the RTreeEntry
/// slots of an object page). Sets hits[i] to 1 iff box i is non-empty and
/// intersects `query`, exactly matching Aabb::Intersects for a non-empty
/// `query`. Implemented in geometry/box_kernels.cc with SSE2/AVX2 vector
/// gates (compile-time selected, bit-identical to the scalar reference —
/// see geometry/box_kernels.h for the kernel family and the SoA variants).
void IntersectsBatch(const char* boxes, size_t stride, size_t count,
                     const Aabb& query, uint8_t* hits);

}  // namespace flat

#endif  // FLAT_GEOMETRY_AABB_H_
