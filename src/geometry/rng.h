#ifndef FLAT_GEOMETRY_RNG_H_
#define FLAT_GEOMETRY_RNG_H_

#include <cstdint>
#include <random>

#include "geometry/aabb.h"
#include "geometry/vec3.h"

namespace flat {

/// Deterministic random-number helper used by the data generators and query
/// workloads. Thin wrapper over std::mt19937_64 with geometry-flavored
/// convenience draws; identical seeds reproduce identical data sets across
/// runs, which the benchmark harness relies on.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Normal draw.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniform point inside `box`.
  Vec3 PointIn(const Aabb& box) {
    return Vec3(Uniform(box.lo().x, box.hi().x),
                Uniform(box.lo().y, box.hi().y),
                Uniform(box.lo().z, box.hi().z));
  }

  /// Uniform direction on the unit sphere.
  Vec3 UnitVector() {
    // Marsaglia rejection sampling.
    while (true) {
      double a = Uniform(-1.0, 1.0);
      double b = Uniform(-1.0, 1.0);
      double s = a * a + b * b;
      if (s >= 1.0 || s == 0.0) continue;
      double r = 2.0 * std::sqrt(1.0 - s);
      return Vec3(a * r, b * r, 1.0 - 2.0 * s);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace flat

#endif  // FLAT_GEOMETRY_RNG_H_
