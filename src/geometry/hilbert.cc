#include "geometry/hilbert.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace flat {
namespace {

constexpr int kDims = 3;

// Converts the "transposed" Hilbert representation (one bit-interleaved word
// per dimension) into coordinates, and vice versa. This is the Skilling
// variant of the Butz algorithm (AIP Conf. Proc. 707, 2004): O(bits * dims)
// with no lookup tables.
void TransposeToAxes(uint32_t coords[kDims], int bits) {
  uint32_t n = 2u << (bits - 1);
  // Gray decode by H ^ (H/2).
  uint32_t t = coords[kDims - 1] >> 1;
  for (int i = kDims - 1; i > 0; --i) coords[i] ^= coords[i - 1];
  coords[0] ^= t;
  // Undo excess work.
  for (uint32_t q = 2; q != n; q <<= 1) {
    uint32_t p = q - 1;
    for (int i = kDims - 1; i >= 0; --i) {
      if (coords[i] & q) {
        coords[0] ^= p;  // invert
      } else {
        t = (coords[0] ^ coords[i]) & p;
        coords[0] ^= t;
        coords[i] ^= t;
      }
    }
  }
}

void AxesToTranspose(uint32_t coords[kDims], int bits) {
  uint32_t m = 1u << (bits - 1);
  // Inverse undo.
  for (uint32_t q = m; q > 1; q >>= 1) {
    uint32_t p = q - 1;
    for (int i = 0; i < kDims; ++i) {
      if (coords[i] & q) {
        coords[0] ^= p;
      } else {
        uint32_t t = (coords[0] ^ coords[i]) & p;
        coords[0] ^= t;
        coords[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < kDims; ++i) coords[i] ^= coords[i - 1];
  uint32_t t = 0;
  for (uint32_t q = m; q > 1; q >>= 1) {
    if (coords[kDims - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < kDims; ++i) coords[i] ^= t;
}

// Interleaves the transposed representation into a single index: bit b of
// dimension i of the transpose becomes bit (b*kDims + (kDims-1-i)) of the key.
uint64_t InterleaveTranspose(const uint32_t coords[kDims], int bits) {
  uint64_t d = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < kDims; ++i) {
      d = (d << 1) | ((coords[i] >> b) & 1u);
    }
  }
  return d;
}

void DeinterleaveTranspose(uint64_t d, int bits, uint32_t coords[kDims]) {
  for (int i = 0; i < kDims; ++i) coords[i] = 0;
  for (int b = 0; b < bits; ++b) {
    for (int i = kDims - 1; i >= 0; --i) {
      coords[i] |= static_cast<uint32_t>(d & 1u) << b;
      d >>= 1;
    }
  }
}

}  // namespace

uint64_t Hilbert3D::Encode(uint32_t x, uint32_t y, uint32_t z, int bits) {
  assert(bits >= 1 && bits <= kMaxBits);
  uint32_t coords[kDims] = {x, y, z};
  AxesToTranspose(coords, bits);
  return InterleaveTranspose(coords, bits);
}

void Hilbert3D::Decode(uint64_t d, int bits, uint32_t* x, uint32_t* y,
                       uint32_t* z) {
  assert(bits >= 1 && bits <= kMaxBits);
  uint32_t coords[kDims];
  DeinterleaveTranspose(d, bits, coords);
  TransposeToAxes(coords, bits);
  *x = coords[0];
  *y = coords[1];
  *z = coords[2];
}

uint64_t Hilbert3D::EncodePoint(const Vec3& p, const Aabb& bounds, int bits) {
  assert(!bounds.IsEmpty());
  uint32_t max_cell = (1u << bits) - 1;
  uint32_t q[kDims];
  for (int axis = 0; axis < kDims; ++axis) {
    double lo = bounds.lo()[axis];
    double hi = bounds.hi()[axis];
    double extent = hi - lo;
    if (extent <= 0.0) {
      q[axis] = 0;
      continue;
    }
    double frac = (p[axis] - lo) / extent;
    frac = std::clamp(frac, 0.0, 1.0);
    q[axis] = std::min(max_cell,
                       static_cast<uint32_t>(frac * (max_cell + 1.0)));
  }
  return Encode(q[0], q[1], q[2], bits);
}

}  // namespace flat
