// SIMD + scalar implementations of the MBR gate kernels. This translation
// unit is compiled with -mavx2 -ffp-contract=off when the FLAT_SIMD_AVX2
// CMake option is on (the default); without it, the x86-64 SSE2 baseline or
// the plain scalar path is selected. All SIMD code lives here so the rest of
// the library builds with the project-wide flags and stays bit-identical
// regardless of the kernel ISA. -ffp-contract=off matters: the sphere gate
// must round exactly like Aabb::DistanceSquaredTo (mul then add, no FMA).
#include "geometry/box_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#endif

namespace flat {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One strided AoS box gate, shared by the scalar kernels: the same predicate
// as Aabb::Intersects in one branch-free expression (the empty-box checks
// lo <= hi fold into the comparison chain).
inline uint8_t GateOneBox(const double* b, const Aabb& q) {
  const int hit = (b[0] <= b[3]) & (b[1] <= b[4]) & (b[2] <= b[5]) &
                  (b[0] <= q.hi().x) & (b[3] >= q.lo().x) &
                  (b[1] <= q.hi().y) & (b[4] >= q.lo().y) &
                  (b[2] <= q.hi().z) & (b[5] >= q.lo().z);
  return static_cast<uint8_t>(hit);
}

// One strided AoS containment gate: non-empty box fully inside `q`. Every
// comparison is false on NaN and an empty query admits no non-empty box
// (lo >= q.lo && hi <= q.hi && lo <= hi forces q.lo <= q.hi), so no special
// cases are needed.
inline uint8_t CoverOneBox(const double* b, const Aabb& q) {
  const int covered = (b[0] <= b[3]) & (b[1] <= b[4]) & (b[2] <= b[5]) &
                      (b[0] >= q.lo().x) & (b[3] <= q.hi().x) &
                      (b[1] >= q.lo().y) & (b[4] <= q.hi().y) &
                      (b[2] >= q.lo().z) & (b[5] <= q.hi().z);
  return static_cast<uint8_t>(covered);
}

}  // namespace

const char* BoxKernelIsa() {
#if defined(__AVX2__)
  return "avx2";
#elif defined(__SSE2__) || defined(_M_X64)
  return "sse2";
#else
  return "scalar";
#endif
}

void IntersectsBatchScalar(const char* boxes, size_t stride, size_t count,
                           const Aabb& query, uint8_t* hits) {
  for (size_t i = 0; i < count; ++i) {
    double b[6];  // lo.x lo.y lo.z hi.x hi.y hi.z
    std::memcpy(b, boxes + i * stride, sizeof(b));
    hits[i] = GateOneBox(b, query);
  }
}

void IntersectsBatch(const char* boxes, size_t stride, size_t count,
                     const Aabb& query, uint8_t* hits) {
#if defined(__AVX2__)
  // One box per iteration, vector ops across its six doubles. Lane maps:
  //   L  = [lo.x lo.y lo.z hi.x]   (load at byte 0)
  //   H  = [lo.z hi.x hi.y hi.z]   (load at byte 16; stays inside the box)
  //   Hs = [hi.x hi.y hi.z lo.z]   (H rotated down one lane)
  // so lanes 0..2 of L/Hs line up as lo/hi per axis; lane 3 is junk and the
  // movemask is masked to the low three bits. _CMP_*_OQ compares are false
  // on NaN, exactly like the scalar <= / >=.
  const __m256d qh = _mm256_set_pd(kInf, query.hi().z, query.hi().y,
                                   query.hi().x);
  const __m256d ql = _mm256_set_pd(-kInf, query.lo().z, query.lo().y,
                                   query.lo().x);
  for (size_t i = 0; i < count; ++i) {
    const double* b = reinterpret_cast<const double*>(boxes + i * stride);
    const __m256d lo = _mm256_loadu_pd(b);
    const __m256d h = _mm256_loadu_pd(b + 2);
    const __m256d hs = _mm256_permute4x64_pd(h, _MM_SHUFFLE(0, 3, 2, 1));
    const __m256d c1 = _mm256_cmp_pd(lo, qh, _CMP_LE_OQ);
    const __m256d c2 = _mm256_cmp_pd(hs, ql, _CMP_GE_OQ);
    const __m256d c3 = _mm256_cmp_pd(lo, hs, _CMP_LE_OQ);  // empty check
    const int m = _mm256_movemask_pd(_mm256_and_pd(_mm256_and_pd(c1, c2), c3));
    hits[i] = static_cast<uint8_t>((m & 7) == 7);
  }
#elif defined(__SSE2__) || defined(_M_X64)
  // x and y axes in one 2-lane vector, z axis scalar.
  const __m128d qh_xy = _mm_set_pd(query.hi().y, query.hi().x);
  const __m128d ql_xy = _mm_set_pd(query.lo().y, query.lo().x);
  const double qhz = query.hi().z, qlz = query.lo().z;
  for (size_t i = 0; i < count; ++i) {
    const double* b = reinterpret_cast<const double*>(boxes + i * stride);
    const __m128d lo_xy = _mm_loadu_pd(b);          // [lo.x lo.y]
    const __m128d mid = _mm_loadu_pd(b + 2);        // [lo.z hi.x]
    const __m128d hi_yz = _mm_loadu_pd(b + 4);      // [hi.y hi.z]
    const __m128d hi_xy = _mm_shuffle_pd(mid, hi_yz, 0b01);  // [hi.x hi.y]
    const __m128d c1 = _mm_cmple_pd(lo_xy, qh_xy);
    const __m128d c2 = _mm_cmpge_pd(hi_xy, ql_xy);
    const __m128d c3 = _mm_cmple_pd(lo_xy, hi_xy);  // empty check, x/y
    const int mxy =
        _mm_movemask_pd(_mm_and_pd(_mm_and_pd(c1, c2), c3));
    const double loz = b[2], hiz = b[5];
    const int hz = (loz <= hiz) & (loz <= qhz) & (hiz >= qlz);
    hits[i] = static_cast<uint8_t>((mxy == 3) & hz);
  }
#else
  IntersectsBatchScalar(boxes, stride, count, query, hits);
#endif
}

void ContainsBatchScalar(const char* boxes, size_t stride, size_t count,
                         const Aabb& query, uint8_t* covered) {
  for (size_t i = 0; i < count; ++i) {
    double b[6];  // lo.x lo.y lo.z hi.x hi.y hi.z
    std::memcpy(b, boxes + i * stride, sizeof(b));
    covered[i] = CoverOneBox(b, query);
  }
}

void ContainsBatch(const char* boxes, size_t stride, size_t count,
                   const Aabb& query, uint8_t* covered) {
#if defined(__AVX2__)
  // Same lane maps as IntersectsBatch (L = lo corners + hi.x, Hs = hi
  // corners + lo.z) with the predicates flipped to containment. Lane 3 is
  // junk: ql/qh carry ∓inf there so it always passes, and the movemask is
  // masked to the low three bits anyway.
  const __m256d qh = _mm256_set_pd(kInf, query.hi().z, query.hi().y,
                                   query.hi().x);
  const __m256d ql = _mm256_set_pd(-kInf, query.lo().z, query.lo().y,
                                   query.lo().x);
  for (size_t i = 0; i < count; ++i) {
    const double* b = reinterpret_cast<const double*>(boxes + i * stride);
    const __m256d lo = _mm256_loadu_pd(b);
    const __m256d h = _mm256_loadu_pd(b + 2);
    const __m256d hs = _mm256_permute4x64_pd(h, _MM_SHUFFLE(0, 3, 2, 1));
    const __m256d c1 = _mm256_cmp_pd(lo, ql, _CMP_GE_OQ);
    const __m256d c2 = _mm256_cmp_pd(hs, qh, _CMP_LE_OQ);
    const __m256d c3 = _mm256_cmp_pd(lo, hs, _CMP_LE_OQ);  // empty check
    const int m = _mm256_movemask_pd(_mm256_and_pd(_mm256_and_pd(c1, c2), c3));
    covered[i] = static_cast<uint8_t>((m & 7) == 7);
  }
#elif defined(__SSE2__) || defined(_M_X64)
  const __m128d qh_xy = _mm_set_pd(query.hi().y, query.hi().x);
  const __m128d ql_xy = _mm_set_pd(query.lo().y, query.lo().x);
  const double qhz = query.hi().z, qlz = query.lo().z;
  for (size_t i = 0; i < count; ++i) {
    const double* b = reinterpret_cast<const double*>(boxes + i * stride);
    const __m128d lo_xy = _mm_loadu_pd(b);          // [lo.x lo.y]
    const __m128d mid = _mm_loadu_pd(b + 2);        // [lo.z hi.x]
    const __m128d hi_yz = _mm_loadu_pd(b + 4);      // [hi.y hi.z]
    const __m128d hi_xy = _mm_shuffle_pd(mid, hi_yz, 0b01);  // [hi.x hi.y]
    const __m128d c1 = _mm_cmpge_pd(lo_xy, ql_xy);
    const __m128d c2 = _mm_cmple_pd(hi_xy, qh_xy);
    const __m128d c3 = _mm_cmple_pd(lo_xy, hi_xy);  // empty check, x/y
    const int mxy = _mm_movemask_pd(_mm_and_pd(_mm_and_pd(c1, c2), c3));
    const double loz = b[2], hiz = b[5];
    const int cz = (loz <= hiz) & (loz >= qlz) & (hiz <= qhz);
    covered[i] = static_cast<uint8_t>((mxy == 3) & cz);
  }
#else
  ContainsBatchScalar(boxes, stride, count, query, covered);
#endif
}

void SoaBoxes::Assign(const char* boxes, size_t stride, size_t count) {
  count_ = count;
  padded_ = (count + 3) & ~size_t{3};
  lanes_.resize(6 * padded_);
  double* lox = lanes_.data();
  double* loy = lox + padded_;
  double* loz = loy + padded_;
  double* hix = loz + padded_;
  double* hiy = hix + padded_;
  double* hiz = hiy + padded_;
  size_t i = 0;
#if defined(__AVX2__)
  // Transpose four boxes at a time: two overlapping 4-lane loads per box
  // (both stay inside the 48-byte box image) and two 4x4 double transposes.
  for (; i + 4 <= count; i += 4) {
    const double* b0 = reinterpret_cast<const double*>(boxes + i * stride);
    const double* b1 = reinterpret_cast<const double*>(
        boxes + (i + 1) * stride);
    const double* b2 = reinterpret_cast<const double*>(
        boxes + (i + 2) * stride);
    const double* b3 = reinterpret_cast<const double*>(
        boxes + (i + 3) * stride);
    const __m256d r0 = _mm256_loadu_pd(b0), r1 = _mm256_loadu_pd(b1);
    const __m256d r2 = _mm256_loadu_pd(b2), r3 = _mm256_loadu_pd(b3);
    __m256d t0 = _mm256_unpacklo_pd(r0, r1);
    __m256d t1 = _mm256_unpackhi_pd(r0, r1);
    __m256d t2 = _mm256_unpacklo_pd(r2, r3);
    __m256d t3 = _mm256_unpackhi_pd(r2, r3);
    _mm256_storeu_pd(lox + i, _mm256_permute2f128_pd(t0, t2, 0x20));
    _mm256_storeu_pd(loy + i, _mm256_permute2f128_pd(t1, t3, 0x20));
    _mm256_storeu_pd(loz + i, _mm256_permute2f128_pd(t0, t2, 0x31));
    _mm256_storeu_pd(hix + i, _mm256_permute2f128_pd(t1, t3, 0x31));
    const __m256d s0 = _mm256_loadu_pd(b0 + 2), s1 = _mm256_loadu_pd(b1 + 2);
    const __m256d s2 = _mm256_loadu_pd(b2 + 2), s3 = _mm256_loadu_pd(b3 + 2);
    t0 = _mm256_unpacklo_pd(s0, s1);   // columns lo.z / hi.y
    t1 = _mm256_unpackhi_pd(s0, s1);   // columns hi.x / hi.z
    t2 = _mm256_unpacklo_pd(s2, s3);
    t3 = _mm256_unpackhi_pd(s2, s3);
    _mm256_storeu_pd(hiy + i, _mm256_permute2f128_pd(t0, t2, 0x31));
    _mm256_storeu_pd(hiz + i, _mm256_permute2f128_pd(t1, t3, 0x31));
  }
#endif
  for (; i < count; ++i) {
    double b[6];
    std::memcpy(b, boxes + i * stride, sizeof(b));
    lox[i] = b[0];
    loy[i] = b[1];
    loz[i] = b[2];
    hix[i] = b[3];
    hiy[i] = b[4];
    hiz[i] = b[5];
  }
  for (i = count; i < padded_; ++i) {
    // Canonical empty boxes: every kernel's empty check zeroes these lanes.
    lox[i] = loy[i] = loz[i] = kInf;
    hix[i] = hiy[i] = hiz[i] = -kInf;
  }
}

void IntersectsSoaScalar(const SoaBoxes& soa, const Aabb& query,
                         uint8_t* hits) {
  const double* lox = soa.lo(0);
  const double* loy = soa.lo(1);
  const double* loz = soa.lo(2);
  const double* hix = soa.hi(0);
  const double* hiy = soa.hi(1);
  const double* hiz = soa.hi(2);
  for (size_t i = 0; i < soa.padded_count(); ++i) {
    const int hit =
        (lox[i] <= hix[i]) & (loy[i] <= hiy[i]) & (loz[i] <= hiz[i]) &
        (lox[i] <= query.hi().x) & (hix[i] >= query.lo().x) &
        (loy[i] <= query.hi().y) & (hiy[i] >= query.lo().y) &
        (loz[i] <= query.hi().z) & (hiz[i] >= query.lo().z);
    hits[i] = static_cast<uint8_t>(hit);
  }
}

void IntersectsSoa(const SoaBoxes& soa, const Aabb& query, uint8_t* hits) {
#if defined(__AVX2__)
  const __m256d qhx = _mm256_set1_pd(query.hi().x);
  const __m256d qhy = _mm256_set1_pd(query.hi().y);
  const __m256d qhz = _mm256_set1_pd(query.hi().z);
  const __m256d qlx = _mm256_set1_pd(query.lo().x);
  const __m256d qly = _mm256_set1_pd(query.lo().y);
  const __m256d qlz = _mm256_set1_pd(query.lo().z);
  for (size_t i = 0; i < soa.padded_count(); i += 4) {
    const __m256d lox = _mm256_loadu_pd(soa.lo(0) + i);
    const __m256d loy = _mm256_loadu_pd(soa.lo(1) + i);
    const __m256d loz = _mm256_loadu_pd(soa.lo(2) + i);
    const __m256d hix = _mm256_loadu_pd(soa.hi(0) + i);
    const __m256d hiy = _mm256_loadu_pd(soa.hi(1) + i);
    const __m256d hiz = _mm256_loadu_pd(soa.hi(2) + i);
    __m256d m = _mm256_and_pd(_mm256_cmp_pd(lox, hix, _CMP_LE_OQ),
                              _mm256_cmp_pd(loy, hiy, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(loz, hiz, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(lox, qhx, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(hix, qlx, _CMP_GE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(loy, qhy, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(hiy, qly, _CMP_GE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(loz, qhz, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(hiz, qlz, _CMP_GE_OQ));
    const int mask = _mm256_movemask_pd(m);
    hits[i + 0] = static_cast<uint8_t>(mask & 1);
    hits[i + 1] = static_cast<uint8_t>((mask >> 1) & 1);
    hits[i + 2] = static_cast<uint8_t>((mask >> 2) & 1);
    hits[i + 3] = static_cast<uint8_t>((mask >> 3) & 1);
  }
#elif defined(__SSE2__) || defined(_M_X64)
  const __m128d qhx = _mm_set1_pd(query.hi().x);
  const __m128d qhy = _mm_set1_pd(query.hi().y);
  const __m128d qhz = _mm_set1_pd(query.hi().z);
  const __m128d qlx = _mm_set1_pd(query.lo().x);
  const __m128d qly = _mm_set1_pd(query.lo().y);
  const __m128d qlz = _mm_set1_pd(query.lo().z);
  for (size_t i = 0; i < soa.padded_count(); i += 2) {
    const __m128d lox = _mm_loadu_pd(soa.lo(0) + i);
    const __m128d loy = _mm_loadu_pd(soa.lo(1) + i);
    const __m128d loz = _mm_loadu_pd(soa.lo(2) + i);
    const __m128d hix = _mm_loadu_pd(soa.hi(0) + i);
    const __m128d hiy = _mm_loadu_pd(soa.hi(1) + i);
    const __m128d hiz = _mm_loadu_pd(soa.hi(2) + i);
    __m128d m = _mm_and_pd(_mm_cmple_pd(lox, hix), _mm_cmple_pd(loy, hiy));
    m = _mm_and_pd(m, _mm_cmple_pd(loz, hiz));
    m = _mm_and_pd(m, _mm_cmple_pd(lox, qhx));
    m = _mm_and_pd(m, _mm_cmpge_pd(hix, qlx));
    m = _mm_and_pd(m, _mm_cmple_pd(loy, qhy));
    m = _mm_and_pd(m, _mm_cmpge_pd(hiy, qly));
    m = _mm_and_pd(m, _mm_cmple_pd(loz, qhz));
    m = _mm_and_pd(m, _mm_cmpge_pd(hiz, qlz));
    const int mask = _mm_movemask_pd(m);
    hits[i + 0] = static_cast<uint8_t>(mask & 1);
    hits[i + 1] = static_cast<uint8_t>((mask >> 1) & 1);
  }
#else
  IntersectsSoaScalar(soa, query, hits);
#endif
}

void ContainsSoaScalar(const SoaBoxes& soa, const Aabb& query,
                       uint8_t* covered) {
  const double* lox = soa.lo(0);
  const double* loy = soa.lo(1);
  const double* loz = soa.lo(2);
  const double* hix = soa.hi(0);
  const double* hiy = soa.hi(1);
  const double* hiz = soa.hi(2);
  for (size_t i = 0; i < soa.padded_count(); ++i) {
    const int cov =
        (lox[i] <= hix[i]) & (loy[i] <= hiy[i]) & (loz[i] <= hiz[i]) &
        (lox[i] >= query.lo().x) & (hix[i] <= query.hi().x) &
        (loy[i] >= query.lo().y) & (hiy[i] <= query.hi().y) &
        (loz[i] >= query.lo().z) & (hiz[i] <= query.hi().z);
    covered[i] = static_cast<uint8_t>(cov);
  }
}

void ContainsSoa(const SoaBoxes& soa, const Aabb& query, uint8_t* covered) {
#if defined(__AVX2__)
  const __m256d qhx = _mm256_set1_pd(query.hi().x);
  const __m256d qhy = _mm256_set1_pd(query.hi().y);
  const __m256d qhz = _mm256_set1_pd(query.hi().z);
  const __m256d qlx = _mm256_set1_pd(query.lo().x);
  const __m256d qly = _mm256_set1_pd(query.lo().y);
  const __m256d qlz = _mm256_set1_pd(query.lo().z);
  for (size_t i = 0; i < soa.padded_count(); i += 4) {
    const __m256d lox = _mm256_loadu_pd(soa.lo(0) + i);
    const __m256d loy = _mm256_loadu_pd(soa.lo(1) + i);
    const __m256d loz = _mm256_loadu_pd(soa.lo(2) + i);
    const __m256d hix = _mm256_loadu_pd(soa.hi(0) + i);
    const __m256d hiy = _mm256_loadu_pd(soa.hi(1) + i);
    const __m256d hiz = _mm256_loadu_pd(soa.hi(2) + i);
    __m256d m = _mm256_and_pd(_mm256_cmp_pd(lox, hix, _CMP_LE_OQ),
                              _mm256_cmp_pd(loy, hiy, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(loz, hiz, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(lox, qlx, _CMP_GE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(hix, qhx, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(loy, qly, _CMP_GE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(hiy, qhy, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(loz, qlz, _CMP_GE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(hiz, qhz, _CMP_LE_OQ));
    const int mask = _mm256_movemask_pd(m);
    covered[i + 0] = static_cast<uint8_t>(mask & 1);
    covered[i + 1] = static_cast<uint8_t>((mask >> 1) & 1);
    covered[i + 2] = static_cast<uint8_t>((mask >> 2) & 1);
    covered[i + 3] = static_cast<uint8_t>((mask >> 3) & 1);
  }
#elif defined(__SSE2__) || defined(_M_X64)
  const __m128d qhx = _mm_set1_pd(query.hi().x);
  const __m128d qhy = _mm_set1_pd(query.hi().y);
  const __m128d qhz = _mm_set1_pd(query.hi().z);
  const __m128d qlx = _mm_set1_pd(query.lo().x);
  const __m128d qly = _mm_set1_pd(query.lo().y);
  const __m128d qlz = _mm_set1_pd(query.lo().z);
  for (size_t i = 0; i < soa.padded_count(); i += 2) {
    const __m128d lox = _mm_loadu_pd(soa.lo(0) + i);
    const __m128d loy = _mm_loadu_pd(soa.lo(1) + i);
    const __m128d loz = _mm_loadu_pd(soa.lo(2) + i);
    const __m128d hix = _mm_loadu_pd(soa.hi(0) + i);
    const __m128d hiy = _mm_loadu_pd(soa.hi(1) + i);
    const __m128d hiz = _mm_loadu_pd(soa.hi(2) + i);
    __m128d m = _mm_and_pd(_mm_cmple_pd(lox, hix), _mm_cmple_pd(loy, hiy));
    m = _mm_and_pd(m, _mm_cmple_pd(loz, hiz));
    m = _mm_and_pd(m, _mm_cmpge_pd(lox, qlx));
    m = _mm_and_pd(m, _mm_cmple_pd(hix, qhx));
    m = _mm_and_pd(m, _mm_cmpge_pd(loy, qly));
    m = _mm_and_pd(m, _mm_cmple_pd(hiy, qhy));
    m = _mm_and_pd(m, _mm_cmpge_pd(loz, qlz));
    m = _mm_and_pd(m, _mm_cmple_pd(hiz, qhz));
    const int mask = _mm_movemask_pd(m);
    covered[i + 0] = static_cast<uint8_t>(mask & 1);
    covered[i + 1] = static_cast<uint8_t>((mask >> 1) & 1);
  }
#else
  ContainsSoaScalar(soa, query, covered);
#endif
}

void SphereGateSoaScalar(const SoaBoxes& soa, const Vec3& center,
                         double radius, uint8_t* hits) {
  const double* lox = soa.lo(0);
  const double* loy = soa.lo(1);
  const double* loz = soa.lo(2);
  const double* hix = soa.hi(0);
  const double* hiy = soa.hi(1);
  const double* hiz = soa.hi(2);
  const double r2 = radius * radius;
  for (size_t i = 0; i < soa.padded_count(); ++i) {
    const int nonempty =
        (lox[i] <= hix[i]) & (loy[i] <= hiy[i]) & (loz[i] <= hiz[i]);
    if (!nonempty) {
      hits[i] = 0;
      continue;
    }
    // Exactly Aabb::DistanceSquaredTo: per-axis gap = max(max(lo - p,
    // p - hi), 0), accumulated x then y then z. No FMA (see file comment).
    const double gx =
        std::max(std::max(lox[i] - center.x, center.x - hix[i]), 0.0);
    const double gy =
        std::max(std::max(loy[i] - center.y, center.y - hiy[i]), 0.0);
    const double gz =
        std::max(std::max(loz[i] - center.z, center.z - hiz[i]), 0.0);
    const double d2 = gx * gx + gy * gy + gz * gz;
    hits[i] = static_cast<uint8_t>(d2 <= r2);
  }
}

void SphereGateSoa(const SoaBoxes& soa, const Vec3& center, double radius,
                   uint8_t* hits) {
#if defined(__AVX2__)
  const __m256d px = _mm256_set1_pd(center.x);
  const __m256d py = _mm256_set1_pd(center.y);
  const __m256d pz = _mm256_set1_pd(center.z);
  const __m256d r2 = _mm256_set1_pd(radius * radius);
  const __m256d zero = _mm256_setzero_pd();
  for (size_t i = 0; i < soa.padded_count(); i += 4) {
    const __m256d lox = _mm256_loadu_pd(soa.lo(0) + i);
    const __m256d loy = _mm256_loadu_pd(soa.lo(1) + i);
    const __m256d loz = _mm256_loadu_pd(soa.lo(2) + i);
    const __m256d hix = _mm256_loadu_pd(soa.hi(0) + i);
    const __m256d hiy = _mm256_loadu_pd(soa.hi(1) + i);
    const __m256d hiz = _mm256_loadu_pd(soa.hi(2) + i);
    const __m256d gx = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(lox, px), _mm256_sub_pd(px, hix)), zero);
    const __m256d gy = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(loy, py), _mm256_sub_pd(py, hiy)), zero);
    const __m256d gz = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(loz, pz), _mm256_sub_pd(pz, hiz)), zero);
    const __m256d d2 = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(gx, gx), _mm256_mul_pd(gy, gy)),
        _mm256_mul_pd(gz, gz));
    __m256d m = _mm256_and_pd(_mm256_cmp_pd(lox, hix, _CMP_LE_OQ),
                              _mm256_cmp_pd(loy, hiy, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(loz, hiz, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_cmp_pd(d2, r2, _CMP_LE_OQ));
    const int mask = _mm256_movemask_pd(m);
    hits[i + 0] = static_cast<uint8_t>(mask & 1);
    hits[i + 1] = static_cast<uint8_t>((mask >> 1) & 1);
    hits[i + 2] = static_cast<uint8_t>((mask >> 2) & 1);
    hits[i + 3] = static_cast<uint8_t>((mask >> 3) & 1);
  }
#elif defined(__SSE2__) || defined(_M_X64)
  const __m128d px = _mm_set1_pd(center.x);
  const __m128d py = _mm_set1_pd(center.y);
  const __m128d pz = _mm_set1_pd(center.z);
  const __m128d r2 = _mm_set1_pd(radius * radius);
  const __m128d zero = _mm_setzero_pd();
  for (size_t i = 0; i < soa.padded_count(); i += 2) {
    const __m128d lox = _mm_loadu_pd(soa.lo(0) + i);
    const __m128d loy = _mm_loadu_pd(soa.lo(1) + i);
    const __m128d loz = _mm_loadu_pd(soa.lo(2) + i);
    const __m128d hix = _mm_loadu_pd(soa.hi(0) + i);
    const __m128d hiy = _mm_loadu_pd(soa.hi(1) + i);
    const __m128d hiz = _mm_loadu_pd(soa.hi(2) + i);
    const __m128d gx = _mm_max_pd(
        _mm_max_pd(_mm_sub_pd(lox, px), _mm_sub_pd(px, hix)), zero);
    const __m128d gy = _mm_max_pd(
        _mm_max_pd(_mm_sub_pd(loy, py), _mm_sub_pd(py, hiy)), zero);
    const __m128d gz = _mm_max_pd(
        _mm_max_pd(_mm_sub_pd(loz, pz), _mm_sub_pd(pz, hiz)), zero);
    const __m128d d2 =
        _mm_add_pd(_mm_add_pd(_mm_mul_pd(gx, gx), _mm_mul_pd(gy, gy)),
                   _mm_mul_pd(gz, gz));
    __m128d m = _mm_and_pd(_mm_cmple_pd(lox, hix), _mm_cmple_pd(loy, hiy));
    m = _mm_and_pd(m, _mm_cmple_pd(loz, hiz));
    m = _mm_and_pd(m, _mm_cmple_pd(d2, r2));
    const int mask = _mm_movemask_pd(m);
    hits[i + 0] = static_cast<uint8_t>(mask & 1);
    hits[i + 1] = static_cast<uint8_t>((mask >> 1) & 1);
  }
#else
  SphereGateSoaScalar(soa, center, radius, hits);
#endif
}

namespace {

// Raw (unwidened) cell of `x` on one grid axis: floor((x - origin) * inv)
// clamped to [0, kQuantMaxCell]. The !(t > 0) form sends NaN (degenerate
// 0 * inf products) and negatives to cell 0. Weakly monotone in x: sub and
// mul are correctly rounded and inv >= 0, so the FP result is monotone, and
// clamp + floor preserve that — the property the conservativeness argument
// in box_kernels.h rests on.
inline int RawCell(double origin, double inv, double x) {
  const double t = (x - origin) * inv;
  if (!(t > 0.0)) return 0;
  if (t >= static_cast<double>(kQuantMaxCell)) {
    return static_cast<int>(kQuantMaxCell);
  }
  return static_cast<int>(t);
}

}  // namespace

QuantGrid MakeQuantGrid(const Aabb& node_box) {
  QuantGrid grid;
  grid.never = node_box.IsEmpty();
  for (int axis = 0; axis < 3; ++axis) {
    grid.origin[axis] = node_box.lo()[axis];
    const double extent = node_box.hi()[axis] - node_box.lo()[axis];
    // Degenerate (zero-width) axes and non-finite extents quantize every
    // coordinate into cell 0 via inv = 0; with the one-cell widening below,
    // every range on such an axis becomes [0, 1] and always overlaps —
    // conservative, never wrong. Denormal extents may overflow inv to +inf,
    // which RawCell's clamp handles (cell 0 at the origin, top cell above).
    grid.inv[axis] =
        extent > 0.0 ? static_cast<double>(kQuantMaxCell) / extent : 0.0;
  }
  return grid;
}

uint16_t QuantizeDown(const QuantGrid& grid, int axis, double x) {
  const int cell = RawCell(grid.origin[axis], grid.inv[axis], x) - 1;
  return static_cast<uint16_t>(cell < 0 ? 0 : cell);
}

uint16_t QuantizeUp(const QuantGrid& grid, int axis, double x) {
  const int cell = RawCell(grid.origin[axis], grid.inv[axis], x) + 1;
  return static_cast<uint16_t>(
      cell > static_cast<int>(kQuantMaxCell) ? kQuantMaxCell : cell);
}

QuantizedQueryBox QuantizeQuery(const Aabb& node_box, const Aabb& query) {
  QuantizedQueryBox q;
  const QuantGrid grid = MakeQuantGrid(node_box);
  q.never = grid.never || query.IsEmpty();
  if (q.never) return q;  // lo/hi stay 0: deterministic, unused
  for (int axis = 0; axis < 3; ++axis) {
    q.lo[axis] = QuantizeDown(grid, axis, query.lo()[axis]);
    q.hi[axis] = QuantizeUp(grid, axis, query.hi()[axis]);
  }
  return q;
}

void QuantizedSoa::Assign(const char* slots, size_t stride, size_t count) {
  count_ = count;
  padded_ = (count + 15) & ~size_t{15};
  lanes_.resize(6 * padded_);
  uint16_t* lanes[6];
  for (int lane = 0; lane < 6; ++lane) {
    lanes[lane] = lanes_.data() + lane * padded_;
  }
  for (size_t i = 0; i < count; ++i) {
    uint16_t v[6];  // lo.x lo.y lo.z hi.x hi.y hi.z
    std::memcpy(v, slots + i * stride, sizeof(v));
    for (int lane = 0; lane < 6; ++lane) lanes[lane][i] = v[lane];
  }
  for (size_t i = count; i < padded_; ++i) {
    // Inverted sentinel ranges; the kernels zero the padding bytes anyway,
    // this just keeps the lanes deterministic.
    lanes[0][i] = lanes[1][i] = lanes[2][i] = 0xFFFF;
    lanes[3][i] = lanes[4][i] = lanes[5][i] = 0;
  }
}

void IntersectsQuantizedSoaScalar(const QuantizedSoa& soa,
                                  const QuantizedQueryBox& query,
                                  uint8_t* hits) {
  const size_t padded = soa.padded_count();
  if (padded == 0) return;  // empty node: no hit bytes to write (hits may
                            // be null — memset requires a valid pointer)
  if (query.never) {
    std::memset(hits, 0, padded);
    return;
  }
  const uint16_t* lox = soa.lo(0);
  const uint16_t* loy = soa.lo(1);
  const uint16_t* loz = soa.lo(2);
  const uint16_t* hix = soa.hi(0);
  const uint16_t* hiy = soa.hi(1);
  const uint16_t* hiz = soa.hi(2);
  for (size_t i = 0; i < soa.count(); ++i) {
    const int hit = (lox[i] <= query.hi[0]) & (hix[i] >= query.lo[0]) &
                    (loy[i] <= query.hi[1]) & (hiy[i] >= query.lo[1]) &
                    (loz[i] <= query.hi[2]) & (hiz[i] >= query.lo[2]);
    hits[i] = static_cast<uint8_t>(hit);
  }
  std::memset(hits + soa.count(), 0, padded - soa.count());
}

void IntersectsQuantizedSoa(const QuantizedSoa& soa,
                            const QuantizedQueryBox& query, uint8_t* hits) {
#if defined(__AVX2__) || defined(__SSE2__) || defined(_M_X64)
  const size_t padded = soa.padded_count();
  if (padded == 0) return;  // see the scalar variant
  if (query.never) {
    std::memset(hits, 0, padded);
    return;
  }
#endif
#if defined(__AVX2__)
  // SSE/AVX have no unsigned 16-bit compare; XOR with 0x8000 maps the
  // unsigned order onto the signed one, then a child fails iff
  // lo > q.hi or q.lo > hi on any axis.
  const __m256i bias = _mm256_set1_epi16(static_cast<int16_t>(0x8000));
  const __m256i zero = _mm256_setzero_si256();
  __m256i qhi[3], qlo[3];
  for (int a = 0; a < 3; ++a) {
    qhi[a] = _mm256_set1_epi16(static_cast<int16_t>(query.hi[a] ^ 0x8000));
    qlo[a] = _mm256_set1_epi16(static_cast<int16_t>(query.lo[a] ^ 0x8000));
  }
  for (size_t i = 0; i < padded; i += 16) {
    __m256i fail = zero;
    for (int a = 0; a < 3; ++a) {
      const __m256i lo = _mm256_xor_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(soa.lo(a) + i)),
          bias);
      const __m256i hi = _mm256_xor_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(soa.hi(a) + i)),
          bias);
      fail = _mm256_or_si256(fail, _mm256_cmpgt_epi16(lo, qhi[a]));
      fail = _mm256_or_si256(fail, _mm256_cmpgt_epi16(qlo[a], hi));
    }
    // Two movemask bits per u16 lane; bit 2k is lane k's low byte.
    const int mask = _mm256_movemask_epi8(_mm256_cmpeq_epi16(fail, zero));
    for (int k = 0; k < 16; ++k) {
      hits[i + k] = static_cast<uint8_t>((mask >> (2 * k)) & 1);
    }
  }
  std::memset(hits + soa.count(), 0, padded - soa.count());
#elif defined(__SSE2__) || defined(_M_X64)
  const __m128i bias = _mm_set1_epi16(static_cast<int16_t>(0x8000));
  const __m128i zero = _mm_setzero_si128();
  __m128i qhi[3], qlo[3];
  for (int a = 0; a < 3; ++a) {
    qhi[a] = _mm_set1_epi16(static_cast<int16_t>(query.hi[a] ^ 0x8000));
    qlo[a] = _mm_set1_epi16(static_cast<int16_t>(query.lo[a] ^ 0x8000));
  }
  for (size_t i = 0; i < padded; i += 8) {
    __m128i fail = zero;
    for (int a = 0; a < 3; ++a) {
      const __m128i lo = _mm_xor_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(soa.lo(a) + i)),
          bias);
      const __m128i hi = _mm_xor_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(soa.hi(a) + i)),
          bias);
      fail = _mm_or_si128(fail, _mm_cmpgt_epi16(lo, qhi[a]));
      fail = _mm_or_si128(fail, _mm_cmpgt_epi16(qlo[a], hi));
    }
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi16(fail, zero));
    for (int k = 0; k < 8; ++k) {
      hits[i + k] = static_cast<uint8_t>((mask >> (2 * k)) & 1);
    }
  }
  std::memset(hits + soa.count(), 0, padded - soa.count());
#else
  IntersectsQuantizedSoaScalar(soa, query, hits);
#endif
}

namespace {

// The read-side dequantization corners, formula-identical to
// CompressedNodeView::ChildBoxAt (rtree/node.h): the outward-widened box
// those corners span is guaranteed to contain the child's exact MBR, so a
// cell certified here certifies the exact MBR too. OuterLo is weakly
// monotone in the cell (integer-by-double multiply and the add are
// correctly rounded, cell_width >= 0); OuterHi is weakly monotone on the
// linear region c <= kQuantMaxCell - 3 for the same reason, and the
// threshold search below treats the node_hi clamp at the top separately
// rather than assuming monotonicity across that seam.
inline double OuterLo(double origin, double cell_width, uint32_t c) {
  return c <= 2 ? origin : origin + static_cast<int>(c - 2) * cell_width;
}

inline double OuterHi(double origin, double node_hi, double cell_width,
                      uint32_t c) {
  return c + 2 >= kQuantMaxCell
             ? node_hi
             : origin + static_cast<int>(c + 2) * cell_width;
}

}  // namespace

QuantizedCoverBox QuantizeCoverQuery(const Aabb& node_box, const Aabb& query) {
  QuantizedCoverBox cover;
  cover.never = node_box.IsEmpty() || query.IsEmpty();
  if (cover.never) return cover;
  for (int axis = 0; axis < 3; ++axis) {
    const double origin = node_box.lo()[axis];
    const double node_hi = node_box.hi()[axis];
    const double cell =
        (node_hi - origin) / static_cast<double>(kQuantMaxCell);
    const double qlo = query.lo()[axis];
    const double qhi = query.hi()[axis];
    if (!std::isfinite(cell) || !(cell >= 0.0)) {
      cover.never = true;  // non-finite node box: nothing is certifiable
      return cover;
    }

    // Smallest cell whose dequantized lo corner clears query.lo. OuterLo is
    // weakly monotone over the whole range, so a binary search finds the
    // threshold; infeasible (or NaN query corner — every compare false)
    // means no cell qualifies on this axis.
    if (!(OuterLo(origin, cell, kQuantMaxCell) >= qlo)) {
      cover.never = true;
      return cover;
    }
    uint32_t lo = 0, hi = kQuantMaxCell;
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (OuterLo(origin, cell, mid) >= qlo) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    cover.lo[axis] = static_cast<uint16_t>(lo);

    // Largest cell whose dequantized hi corner stays under query.hi. Search
    // the linear region [0, kQuantMaxCell - 3] (monotone), then admit the
    // clamped top cells only if node_hi itself qualifies AND the whole
    // linear region does — cells between the two regions must not sneak
    // through uncertified.
    constexpr uint32_t kLinearTop = kQuantMaxCell - 3;
    if (!(OuterHi(origin, node_hi, cell, 0) <= qhi)) {
      cover.never = true;
      return cover;
    }
    lo = 0;
    hi = kLinearTop;
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo + 1) / 2;
      if (OuterHi(origin, node_hi, cell, mid) <= qhi) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    cover.hi[axis] = (lo == kLinearTop && node_hi <= qhi)
                         ? static_cast<uint16_t>(kQuantMaxCell)
                         : static_cast<uint16_t>(lo);
  }
  return cover;
}

void ContainsQuantizedSoaScalar(const QuantizedSoa& soa,
                                const QuantizedCoverBox& cover,
                                uint8_t* covered) {
  const size_t padded = soa.padded_count();
  if (padded == 0) return;  // empty node: no bytes to write (see the
                            // intersection gate)
  if (cover.never) {
    std::memset(covered, 0, padded);
    return;
  }
  const uint16_t* lox = soa.lo(0);
  const uint16_t* loy = soa.lo(1);
  const uint16_t* loz = soa.lo(2);
  const uint16_t* hix = soa.hi(0);
  const uint16_t* hiy = soa.hi(1);
  const uint16_t* hiz = soa.hi(2);
  for (size_t i = 0; i < soa.count(); ++i) {
    const int cov = (lox[i] >= cover.lo[0]) & (hix[i] <= cover.hi[0]) &
                    (loy[i] >= cover.lo[1]) & (hiy[i] <= cover.hi[1]) &
                    (loz[i] >= cover.lo[2]) & (hiz[i] <= cover.hi[2]);
    covered[i] = static_cast<uint8_t>(cov);
  }
  std::memset(covered + soa.count(), 0, padded - soa.count());
}

void ContainsQuantizedSoa(const QuantizedSoa& soa,
                          const QuantizedCoverBox& cover, uint8_t* covered) {
#if defined(__AVX2__) || defined(__SSE2__) || defined(_M_X64)
  const size_t padded = soa.padded_count();
  if (padded == 0) return;  // see the scalar variant
  if (cover.never) {
    std::memset(covered, 0, padded);
    return;
  }
#endif
#if defined(__AVX2__)
  // Unsigned compares via the XOR-0x8000 bias, like the intersection gate:
  // a child fails certification iff lo < cover.lo or hi > cover.hi on any
  // axis.
  const __m256i bias = _mm256_set1_epi16(static_cast<int16_t>(0x8000));
  const __m256i zero = _mm256_setzero_si256();
  __m256i clo[3], chi[3];
  for (int a = 0; a < 3; ++a) {
    clo[a] = _mm256_set1_epi16(static_cast<int16_t>(cover.lo[a] ^ 0x8000));
    chi[a] = _mm256_set1_epi16(static_cast<int16_t>(cover.hi[a] ^ 0x8000));
  }
  for (size_t i = 0; i < padded; i += 16) {
    __m256i fail = zero;
    for (int a = 0; a < 3; ++a) {
      const __m256i lo = _mm256_xor_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(soa.lo(a) + i)),
          bias);
      const __m256i hi = _mm256_xor_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(soa.hi(a) + i)),
          bias);
      fail = _mm256_or_si256(fail, _mm256_cmpgt_epi16(clo[a], lo));
      fail = _mm256_or_si256(fail, _mm256_cmpgt_epi16(hi, chi[a]));
    }
    const int mask = _mm256_movemask_epi8(_mm256_cmpeq_epi16(fail, zero));
    for (int k = 0; k < 16; ++k) {
      covered[i + k] = static_cast<uint8_t>((mask >> (2 * k)) & 1);
    }
  }
  std::memset(covered + soa.count(), 0, padded - soa.count());
#elif defined(__SSE2__) || defined(_M_X64)
  const __m128i bias = _mm_set1_epi16(static_cast<int16_t>(0x8000));
  const __m128i zero = _mm_setzero_si128();
  __m128i clo[3], chi[3];
  for (int a = 0; a < 3; ++a) {
    clo[a] = _mm_set1_epi16(static_cast<int16_t>(cover.lo[a] ^ 0x8000));
    chi[a] = _mm_set1_epi16(static_cast<int16_t>(cover.hi[a] ^ 0x8000));
  }
  for (size_t i = 0; i < padded; i += 8) {
    __m128i fail = zero;
    for (int a = 0; a < 3; ++a) {
      const __m128i lo = _mm_xor_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(soa.lo(a) + i)),
          bias);
      const __m128i hi = _mm_xor_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(soa.hi(a) + i)),
          bias);
      fail = _mm_or_si128(fail, _mm_cmpgt_epi16(clo[a], lo));
      fail = _mm_or_si128(fail, _mm_cmpgt_epi16(hi, chi[a]));
    }
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi16(fail, zero));
    for (int k = 0; k < 8; ++k) {
      covered[i + k] = static_cast<uint8_t>((mask >> (2 * k)) & 1);
    }
  }
  std::memset(covered + soa.count(), 0, padded - soa.count());
#else
  ContainsQuantizedSoaScalar(soa, cover, covered);
#endif
}

}  // namespace flat
