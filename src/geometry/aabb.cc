#include "geometry/aabb.h"

namespace flat {
static_assert(sizeof(Aabb) == 6 * sizeof(double),
              "Aabb must stay a plain 6-double layout; the storage layer "
              "serializes it by memcpy and the box kernels read it as six "
              "doubles");
// IntersectsBatch lives in geometry/box_kernels.cc, the one translation
// unit compiled with the SIMD flags.
}  // namespace flat
