#include "geometry/aabb.h"

#include <cstring>

namespace flat {
static_assert(sizeof(Aabb) == 6 * sizeof(double),
              "Aabb must stay a plain 6-double layout; the storage layer "
              "serializes it by memcpy and IntersectsBatch reads it as six "
              "doubles");

void IntersectsBatch(const char* boxes, size_t stride, size_t count,
                     const Aabb& query, uint8_t* hits) {
  const double qlx = query.lo().x, qly = query.lo().y, qlz = query.lo().z;
  const double qhx = query.hi().x, qhy = query.hi().y, qhz = query.hi().z;
  for (size_t i = 0; i < count; ++i) {
    double b[6];  // lo.x lo.y lo.z hi.x hi.y hi.z
    std::memcpy(b, boxes + i * stride, sizeof(b));
    // Same predicate as Aabb::Intersects, as one branch-free expression: the
    // empty-box checks (lo <= hi per axis) fold into the comparison chain.
    const int hit = (b[0] <= b[3]) & (b[1] <= b[4]) & (b[2] <= b[5]) &
                    (b[0] <= qhx) & (b[3] >= qlx) & (b[1] <= qhy) &
                    (b[4] >= qly) & (b[2] <= qhz) & (b[5] >= qlz);
    hits[i] = static_cast<uint8_t>(hit);
  }
}
}  // namespace flat
