#include "geometry/aabb.h"

// Aabb is header-only; this translation unit exists so the geometry library
// has an archive member even on toolchains that strip header-only targets.
namespace flat {
static_assert(sizeof(Aabb) == 6 * sizeof(double),
              "Aabb must stay a plain 6-double layout; the storage layer "
              "serializes it by memcpy");
}  // namespace flat
