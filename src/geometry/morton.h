#ifndef FLAT_GEOMETRY_MORTON_H_
#define FLAT_GEOMETRY_MORTON_H_

#include <cstdint>

#include "geometry/aabb.h"
#include "geometry/vec3.h"

namespace flat {

/// 3-D Morton (Z-order) curve utilities (Morton, 1966 — reference [18]).
///
/// Z-order is the classic alternative to Hilbert packing; the paper notes STR
/// preserves locality better than both. We provide it for the bulkload-quality
/// ablation bench.
class Morton3D {
 public:
  static constexpr int kMaxBits = 21;

  /// Interleaves the low `bits` of each coordinate: bit b of x lands at
  /// position 3b, y at 3b+1, z at 3b+2.
  static uint64_t Encode(uint32_t x, uint32_t y, uint32_t z,
                         int bits = kMaxBits);

  /// Inverse of Encode.
  static void Decode(uint64_t code, uint32_t* x, uint32_t* y, uint32_t* z,
                     int bits = kMaxBits);

  /// Quantizes `p` within `bounds` (2^bits cells per axis) and encodes it.
  static uint64_t EncodePoint(const Vec3& p, const Aabb& bounds,
                              int bits = kMaxBits);
};

}  // namespace flat

#endif  // FLAT_GEOMETRY_MORTON_H_
