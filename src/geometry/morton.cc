#include "geometry/morton.h"

#include <algorithm>
#include <cassert>

namespace flat {
namespace {

// Spreads the low 21 bits of v so consecutive bits end up 3 apart.
uint64_t SpreadBits(uint64_t v) {
  v &= 0x1fffff;  // 21 bits
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

uint32_t CompactBits(uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffULL;
  v = (v ^ (v >> 32)) & 0x1fffff;
  return static_cast<uint32_t>(v);
}

}  // namespace

uint64_t Morton3D::Encode(uint32_t x, uint32_t y, uint32_t z, int bits) {
  assert(bits >= 1 && bits <= kMaxBits);
  uint32_t mask = bits >= 32 ? ~0u : ((1u << bits) - 1);
  return SpreadBits(x & mask) | (SpreadBits(y & mask) << 1) |
         (SpreadBits(z & mask) << 2);
}

void Morton3D::Decode(uint64_t code, uint32_t* x, uint32_t* y, uint32_t* z,
                      int bits) {
  assert(bits >= 1 && bits <= kMaxBits);
  uint32_t mask = bits >= 32 ? ~0u : ((1u << bits) - 1);
  *x = CompactBits(code) & mask;
  *y = CompactBits(code >> 1) & mask;
  *z = CompactBits(code >> 2) & mask;
}

uint64_t Morton3D::EncodePoint(const Vec3& p, const Aabb& bounds, int bits) {
  assert(!bounds.IsEmpty());
  uint32_t max_cell = (1u << bits) - 1;
  uint32_t q[3];
  for (int axis = 0; axis < 3; ++axis) {
    double lo = bounds.lo()[axis];
    double extent = bounds.hi()[axis] - lo;
    if (extent <= 0.0) {
      q[axis] = 0;
      continue;
    }
    double frac = std::clamp((p[axis] - lo) / extent, 0.0, 1.0);
    q[axis] =
        std::min(max_cell, static_cast<uint32_t>(frac * (max_cell + 1.0)));
  }
  return Encode(q[0], q[1], q[2], bits);
}

}  // namespace flat
