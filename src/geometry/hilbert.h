#ifndef FLAT_GEOMETRY_HILBERT_H_
#define FLAT_GEOMETRY_HILBERT_H_

#include <array>
#include <cstdint>

#include "geometry/aabb.h"
#include "geometry/vec3.h"

namespace flat {

/// 3-D Hilbert space-filling curve utilities.
///
/// The Hilbert R-Tree bulkloader (Kamel & Faloutsos, VLDB '94 — reference [12]
/// in the paper) sorts elements by the Hilbert value of their MBR center so
/// that consecutive elements are spatially close. We implement the classic
/// Butz/Lawder transpose algorithm for arbitrary precision up to 21 bits per
/// axis (63-bit keys).
class Hilbert3D {
 public:
  /// Maximum supported bits per axis so the derived key fits in 64 bits.
  static constexpr int kMaxBits = 21;

  /// Encodes discrete coordinates into a Hilbert curve index. Each coordinate
  /// must be < 2^bits; `bits` must be in [1, kMaxBits].
  static uint64_t Encode(uint32_t x, uint32_t y, uint32_t z, int bits);

  /// Inverse of Encode.
  static void Decode(uint64_t d, int bits, uint32_t* x, uint32_t* y,
                     uint32_t* z);

  /// Maps a point in `bounds` to its Hilbert index after quantizing each axis
  /// into 2^bits cells. Points outside `bounds` are clamped. Degenerate axes
  /// (zero extent) quantize to cell 0.
  static uint64_t EncodePoint(const Vec3& p, const Aabb& bounds,
                              int bits = kMaxBits);
};

}  // namespace flat

#endif  // FLAT_GEOMETRY_HILBERT_H_
