#include "core/partitioner.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/grid_join.h"
#include "parallel/parallel_sort.h"
#include "parallel/thread_pool.h"
#include "rtree/pack.h"

namespace flat {
namespace {

// Boundary between two adjacent chunks on `axis`: midway between the last
// center of the left chunk and the first center of the right chunk. Using
// element centers keeps every element's center inside its own tile.
double ChunkBoundary(const std::vector<RTreeEntry>& elements, size_t left_last,
                     size_t right_first, int axis) {
  return 0.5 * (elements[left_last].box.Center()[axis] +
                elements[right_first].box.Center()[axis]);
}

// Splits [begin, end) into chunks of `chunk_size` and reports, for chunk k,
// its [lo, hi] interval on `axis` such that consecutive chunks share
// boundaries and the outermost chunks extend to [axis_lo, axis_hi].
struct Chunk {
  size_t begin;
  size_t end;
  double lo;
  double hi;
};

std::vector<Chunk> MakeChunks(const std::vector<RTreeEntry>& elements,
                              size_t begin, size_t end, size_t chunk_size,
                              int axis, double axis_lo, double axis_hi) {
  std::vector<Chunk> chunks;
  double lo = axis_lo;
  for (size_t s = begin; s < end; s += chunk_size) {
    const size_t e = std::min(end, s + chunk_size);
    double hi = e < end ? ChunkBoundary(elements, e - 1, e, axis) : axis_hi;
    // Guard against non-monotone boundaries when many centers coincide.
    hi = std::max(hi, lo);
    chunks.push_back({s, e, lo, hi});
    lo = hi;
  }
  if (!chunks.empty()) chunks.back().hi = std::max(axis_hi, chunks.back().lo);
  return chunks;
}

}  // namespace

std::vector<PartitionInfo> StrPartition(std::vector<RTreeEntry>* elements,
                                        uint32_t page_capacity,
                                        const Aabb& universe,
                                        ThreadPool* pool) {
  assert(page_capacity >= 1);
  std::vector<PartitionInfo> partitions;
  const size_t n = elements->size();
  if (n == 0) return partitions;

  // pn = cbrt(size / pagesize) partitions per dimension (Algorithm 1).
  const size_t total_pages = (n + page_capacity - 1) / page_capacity;
  const size_t sx = CeilCbrt(total_pages);
  const size_t x_chunk = (n + sx - 1) / sx;

  ParallelSort(pool, elements->begin(), elements->end(), EntryCenterOrder{0});
  const std::vector<Chunk> x_chunks = MakeChunks(
      *elements, 0, n, x_chunk, 0, universe.lo().x, universe.hi().x);

  // y pass: the x-slabs are independent ranges, sorted in parallel.
  ParallelFor(pool, x_chunks.size(), /*grain=*/1, [&](size_t, size_t s) {
    std::sort(elements->begin() + x_chunks[s].begin,
              elements->begin() + x_chunks[s].end, EntryCenterOrder{1});
  });

  // Collect every y-run (with its owning x-slab) so the z pass can sort all
  // runs in one parallel sweep.
  struct Run {
    size_t x_index;
    Chunk y;
  };
  std::vector<Run> runs;
  for (size_t s = 0; s < x_chunks.size(); ++s) {
    const Chunk& xc = x_chunks[s];
    const size_t m = xc.end - xc.begin;
    const size_t slab_pages = (m + page_capacity - 1) / page_capacity;
    const size_t sy = CeilSqrt(slab_pages);
    const size_t y_chunk = (m + sy - 1) / sy;
    for (const Chunk& yc : MakeChunks(*elements, xc.begin, xc.end, y_chunk, 1,
                                      universe.lo().y, universe.hi().y)) {
      runs.push_back({s, yc});
    }
  }

  // z pass: sort each run, split it into page-sized z-chunks, and emit the
  // run's partitions (tile, page MBR, stretched partition MBR). Runs write
  // into their own slot, then concatenate in run order, so the partition
  // sequence matches the serial construction exactly.
  std::vector<std::vector<PartitionInfo>> per_run(runs.size());
  ParallelFor(pool, runs.size(), /*grain=*/1, [&](size_t, size_t r) {
    const Chunk& xc = x_chunks[runs[r].x_index];
    const Chunk& yc = runs[r].y;
    std::sort(elements->begin() + yc.begin, elements->begin() + yc.end,
              EntryCenterOrder{2});
    const std::vector<Chunk> z_chunks =
        MakeChunks(*elements, yc.begin, yc.end, page_capacity, 2,
                   universe.lo().z, universe.hi().z);
    per_run[r].reserve(z_chunks.size());
    for (const Chunk& zc : z_chunks) {
      PartitionInfo partition;
      partition.first = static_cast<uint32_t>(zc.begin);
      partition.count = static_cast<uint32_t>(zc.end - zc.begin);
      partition.tile =
          Aabb(Vec3(xc.lo, yc.lo, zc.lo), Vec3(xc.hi, yc.hi, zc.hi));
      Aabb page_mbr;
      for (size_t i = zc.begin; i < zc.end; ++i) {
        page_mbr.ExpandToInclude((*elements)[i].box);
      }
      partition.page_mbr = page_mbr;
      partition.partition_mbr = partition.tile;
      partition.partition_mbr.ExpandToInclude(page_mbr);  // stretch
      per_run[r].push_back(std::move(partition));
    }
  });
  for (std::vector<PartitionInfo>& run_partitions : per_run) {
    for (PartitionInfo& partition : run_partitions) {
      partitions.push_back(std::move(partition));
    }
  }
  return partitions;
}

void ComputeNeighbors(std::vector<PartitionInfo>* partitions,
                      ThreadPool* pool) {
  std::vector<Aabb> boxes;
  boxes.reserve(partitions->size());
  for (const PartitionInfo& p : *partitions) {
    boxes.push_back(p.partition_mbr);
  }
  // Algorithm 1 inserts all partition MBRs "into a temporary R-Tree, used
  // solely to compute the neighborhood information"; the grid join computes
  // the identical relation without putting a tree build on the critical
  // path, and probes the partitions in parallel.
  std::vector<std::vector<uint32_t>> neighbors;
  GridIntersectionJoin(boxes, pool, &neighbors);
  for (size_t i = 0; i < partitions->size(); ++i) {
    (*partitions)[i].neighbors = std::move(neighbors[i]);
  }
}

uint64_t TotalNeighborPointers(const std::vector<PartitionInfo>& partitions) {
  uint64_t total = 0;
  for (const PartitionInfo& p : partitions) total += p.neighbors.size();
  return total;
}

}  // namespace flat
