#ifndef FLAT_CORE_METADATA_H_
#define FLAT_CORE_METADATA_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "geometry/aabb.h"
#include "storage/page.h"

namespace flat {

/// Address of a metadata record: the seed-tree leaf page holding it plus the
/// slot within that page. Neighbor pointers are stored in this form, so
/// following a pointer is a single (usually cached) page read.
struct RecordRef {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  bool valid() const { return page != kInvalidPageId; }

  /// Dense key for visited-set bookkeeping during the crawl.
  uint64_t Key() const { return (static_cast<uint64_t>(page) << 16) | slot; }

  bool operator==(const RecordRef& o) const {
    return page == o.page && slot == o.slot;
  }
};

/// On-page neighbor pointer: page id in the low 20 bits' complement —
/// packed as page:20 | slot:12. Bounds the seed tree to 2^20 leaf pages and
/// 2^12 records per leaf; plenty at any page size this library supports, and
/// half the footprint of a (u32, u16, pad) triple. Matching the paper's
/// space accounting (Section V-B.2 packs "as many records as possible" per
/// leaf) matters: metadata reads during the crawl scale inversely with
/// records-per-leaf.
inline constexpr size_t kNeighborRefSize = 4;
inline constexpr uint32_t kMaxSeedLeafPages = 1u << 20;
inline constexpr uint32_t kMaxRecordsPerLeaf = 1u << 12;

inline uint32_t PackNeighborRef(const RecordRef& ref) {
  return (ref.page << 12) | (ref.slot & 0xfff);
}

inline RecordRef UnpackNeighborRef(uint32_t packed) {
  return RecordRef{packed >> 12, static_cast<uint16_t>(packed & 0xfff)};
}

/// Metadata MBRs are stored as float32 ("for an MBR/axis aligned box it is 6
/// floats/doubles" — Section V-B.3); they are *rounded outward* on write so
/// every intersection decision made from the compressed form is
/// conservative: a float MBR may admit a spurious page read or neighbor
/// expansion but can never miss one. Element MBRs on object pages stay
/// double precision, so results are exact.
struct PackedAabb {
  float lo[3];
  float hi[3];

  static PackedAabb FromAabb(const Aabb& box) {
    PackedAabb p;
    for (int axis = 0; axis < 3; ++axis) {
      p.lo[axis] = std::nextafterf(static_cast<float>(box.lo()[axis]),
                                   -std::numeric_limits<float>::infinity());
      p.hi[axis] = std::nextafterf(static_cast<float>(box.hi()[axis]),
                                   std::numeric_limits<float>::infinity());
    }
    return p;
  }

  Aabb ToAabb() const {
    return Aabb(Vec3(lo[0], lo[1], lo[2]), Vec3(hi[0], hi[1], hi[2]));
  }
};

static_assert(sizeof(PackedAabb) == 24);

/// Fixed part of a metadata record: page MBR (24) + partition MBR (24) +
/// object PageId (4) + neighbor count (4).
inline constexpr size_t kRecordFixedSize = 2 * sizeof(PackedAabb) + 8;

/// Per-record slot-directory cost in the leaf header.
inline constexpr size_t kSlotDirEntrySize = 2;

/// Leaf header: u16 record count + padding to 8 bytes.
inline constexpr size_t kSeedLeafHeaderSize = 8;

/// Bytes a record with `neighbor_count` pointers occupies on a seed leaf,
/// including its slot-directory entry.
inline constexpr size_t RecordFootprint(size_t neighbor_count) {
  return kSlotDirEntrySize + kRecordFixedSize +
         neighbor_count * kNeighborRefSize;
}

/// Read-only view of one serialized metadata record.
class MetadataRecordView {
 public:
  explicit MetadataRecordView(const char* data) : data_(data) {}

  Aabb page_mbr() const {
    PackedAabb p;
    std::memcpy(&p, data_, sizeof(p));
    return p.ToAabb();
  }

  Aabb partition_mbr() const {
    PackedAabb p;
    std::memcpy(&p, data_ + sizeof(PackedAabb), sizeof(p));
    return p.ToAabb();
  }

  PageId object_page() const {
    uint32_t v;
    std::memcpy(&v, data_ + 2 * sizeof(PackedAabb), sizeof(v));
    return v;
  }

  uint32_t neighbor_count() const {
    uint32_t v;
    std::memcpy(&v, data_ + 2 * sizeof(PackedAabb) + 4, sizeof(v));
    return v;
  }

  RecordRef NeighborAt(uint32_t i) const {
    uint32_t packed;
    std::memcpy(&packed, data_ + kRecordFixedSize + i * kNeighborRefSize,
                sizeof(packed));
    return UnpackNeighborRef(packed);
  }

 private:
  const char* data_;
};

/// Read-only view of a seed-tree leaf page: a slot directory over variable-
/// size metadata records.
class SeedLeafView {
 public:
  explicit SeedLeafView(const char* data) : data_(data) {}

  uint16_t count() const {
    uint16_t v;
    std::memcpy(&v, data_, sizeof(v));
    return v;
  }

  MetadataRecordView RecordAt(uint16_t slot) const {
    uint16_t offset;
    std::memcpy(&offset, data_ + kSeedLeafHeaderSize + slot * 2,
                sizeof(offset));
    return MetadataRecordView(data_ + offset);
  }

 private:
  const char* data_;
};

/// In-memory form of a record while the seed index is being built.
struct MetadataRecordDraft {
  Aabb page_mbr;
  Aabb partition_mbr;
  PageId object_page = kInvalidPageId;
  std::vector<RecordRef> neighbors;
};

/// Serializes `records` into one seed-leaf page image (`data`, `page_size`
/// bytes). The caller guarantees the records fit (see RecordFootprint).
void WriteSeedLeaf(char* data, uint32_t page_size,
                   const std::vector<MetadataRecordDraft>& records);

}  // namespace flat

#endif  // FLAT_CORE_METADATA_H_
